package bertha_bench

import (
	"context"
	"testing"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/wire"
)

// batchDrain releases everything the peer receives, using the vectored
// receive path so the drain keeps up with batched senders.
func batchDrain(srv core.Conn) {
	ctx := context.Background()
	bufs := make([]*wire.Buf, 64)
	for {
		n, err := core.RecvBufs(ctx, srv, bufs)
		if err != nil {
			return
		}
		core.ReleaseAll(bufs[:n])
	}
}

// batchEchoLoop reflects bursts back through the stack: drain a burst,
// return the burst, one vectored call each way.
func batchEchoLoop(srv core.Conn) {
	ctx := context.Background()
	bufs := make([]*wire.Buf, 64)
	for {
		n, err := core.RecvBufs(ctx, srv, bufs)
		if err != nil {
			return
		}
		if core.SendBufs(ctx, srv, bufs[:n]) != nil {
			return
		}
	}
}

// BenchmarkStackSendBatch32 is BenchmarkStackSend through the vectored
// path: 32-message bursts via core.SendBufs over the same 3-deep stack.
// b.N counts messages, so ns/op is directly comparable with
// BenchmarkStackSend — the PR 5 acceptance floor is ≥2x the messages/sec
// (≤½ the ns/op) at 0 allocs/op.
func BenchmarkStackSendBatch32(b *testing.B) {
	const burst = 32
	cli, srv := newStackPair(b)
	go batchDrain(srv)

	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)
	out := make([]*wire.Buf, burst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		n := burst
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			out[j] = wire.NewBufFrom(headroom, payload)
		}
		if err := core.SendBufs(ctx, cli, out[:n]); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// BenchmarkStackSendBatch8 sweeps the small-burst point of the same
// path for the EXPERIMENTS.md record.
func BenchmarkStackSendBatch8(b *testing.B) {
	const burst = 8
	cli, srv := newStackPair(b)
	go batchDrain(srv)

	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)
	out := make([]*wire.Buf, burst)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += burst {
		n := burst
		if rem := b.N - i; rem < n {
			n = rem
		}
		for j := 0; j < n; j++ {
			out[j] = wire.NewBufFrom(headroom, payload)
		}
		if err := core.SendBufs(ctx, cli, out[:n]); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// TestStackBatchAllocs is the allocation gate for the vectored path: a
// full 32-message burst round trip — SendBufs with header stamping in
// one pass, batched echo on the peer, RecvBufs drain — must stay at or
// below 2 allocations per *burst* (steady state measures 0; the budget
// absorbs a GC emptying the pools mid-run). Everything is preallocated:
// the burst slices live outside the measured window, the buffers are
// pooled, and the transport's mmsg scratch and RawConn callbacks are
// created once at first use.
func TestStackBatchAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const burst = 32
	cli, srv := newStackPair(t)
	go batchEchoLoop(srv)

	// A deadline-free context keeps the transport's ctx watcher off the
	// hot path; a lost datagram is covered by the suite timeout.
	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)
	out := make([]*wire.Buf, burst)
	in := make([]*wire.Buf, burst)

	roundTrip := func() {
		for i := range out {
			out[i] = wire.NewBufFrom(headroom, payload)
		}
		if err := core.SendBufs(ctx, cli, out); err != nil {
			t.Errorf("send burst: %v", err)
			return
		}
		got := 0
		for got < burst {
			n, err := core.RecvBufs(ctx, cli, in[:burst-got])
			if err != nil {
				t.Errorf("recv burst: %v", err)
				return
			}
			for _, b := range in[:n] {
				if b.Len() != len(payload) {
					t.Errorf("echo len = %d, want %d", b.Len(), len(payload))
				}
			}
			core.ReleaseAll(in[:n])
			got += n
		}
	}
	roundTrip() // warm the pools and the transport's batch scratch
	if t.Failed() {
		t.FailNow()
	}

	avg := testing.AllocsPerRun(50, roundTrip)
	if t.Failed() {
		t.FailNow()
	}
	if avg > 2 {
		t.Fatalf("32-burst round trip allocates %.2f objects/burst, budget is 2", avg)
	}
}
