// Command bertha-kv runs the sharded key-value store of Listing 4/5
// over real UDP sockets, as a server or a client.
//
// Server (Listing 4): one process, one goroutine-worker per shard, a
// canonical Bertha endpoint with the sharding chunnel, and per-shard
// listeners for client-push traffic:
//
//	bertha-kv -serve -listen 127.0.0.1:9000 -shards 3
//
// Client (Listing 5): declares no chunnels; the sharding behaviour is
// dictated by the server. With -push the client links the client-push
// implementation and negotiation routes requests directly to shards:
//
//	bertha-kv -connect 127.0.0.1:9000 put mykey myvalue
//	bertha-kv -connect 127.0.0.1:9000 -push get mykey
//	bertha-kv -connect 127.0.0.1:9000 -ycsb 10000
//
// With -trace on both sides, negotiation inserts the trace chunnel and
// sampled requests carry an in-band trace context; each hop's spans
// land in that process's flight-recorder ring, queryable on the server
// at the telemetry endpoint's ?spans= view (and the metrics at
// ?format=prom). -trace-rate overrides the default 1/128 sampling.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/bertha/transport"
	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/chunnels/traced"
	"github.com/bertha-net/bertha/internal/kv"
	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/ycsb"
)

func main() {
	var (
		serve     = flag.Bool("serve", false, "run the sharded server")
		listen    = flag.String("listen", "127.0.0.1:9000", "server canonical UDP address")
		shards    = flag.Int("shards", 3, "shard count (server)")
		connect   = flag.String("connect", "", "server address to connect to (client)")
		push      = flag.Bool("push", false, "client links the client-push sharding implementation")
		ycsbN     = flag.Int("ycsb", 0, "run N YCSB-A operations instead of a single command")
		records   = flag.Int("records", 1000, "YCSB keyspace size")
		telemAddr = flag.String("telemetry", "", "HTTP address serving "+telemetry.Endpoint+" (server; empty disables)")
		traceOn   = flag.Bool("trace", false, "enable in-band message tracing on this endpoint's connections")
		traceRate = flag.Float64("trace-rate", 0, "tracing sample rate in (0,1] (0 selects the default 1/128)")
	)
	flag.Parse()

	var traceOpts []bertha.Option
	if *traceOn {
		traceOpts = append(traceOpts, bertha.WithTracing(bertha.TraceConfig{SampleRate: *traceRate}))
	}

	switch {
	case *serve:
		if *telemAddr != "" {
			errCh := make(chan error, 1)
			telemetry.Serve(*telemAddr, telemetry.Default(), errCh)
			select {
			case err := <-errCh:
				fail(fmt.Errorf("telemetry endpoint: %w", err))
			case <-time.After(100 * time.Millisecond):
				fmt.Printf("bertha-kv: telemetry at http://%s%s\n", *telemAddr, telemetry.Endpoint)
			}
		}
		if err := runServer(*listen, *shards, traceOpts); err != nil {
			fail(err)
		}
	case *connect != "":
		if err := runClient(*connect, *push, *ycsbN, *records, traceOpts, flag.Args()); err != nil {
			fail(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "bertha-kv: pass -serve or -connect; see -h")
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "bertha-kv: %v\n", err)
	os.Exit(1)
}

func runServer(listen string, nshards int, traceOpts []bertha.Option) error {
	ctx := context.Background()
	srv, err := kv.NewServer(nshards)
	if err != nil {
		return err
	}
	defer srv.Close()

	host, _ := os.Hostname()
	var shardAddrs []bertha.Addr
	for i := 0; i < nshards; i++ {
		l, err := transport.ListenUDP(host, "127.0.0.1:0")
		if err != nil {
			return err
		}
		shardAddrs = append(shardAddrs, l.Addr())
		srv.ServeShard(i, l)
		fmt.Printf("bertha-kv: shard %d at %s\n", i, l.Addr().Addr)
	}

	reg := bertha.NewRegistry()
	shard.RegisterServer(reg)
	x := shard.RegisterXDP(reg)
	traced.Register(reg)
	env := bertha.NewEnv(host)
	env.SetDialer(&transport.MultiDialer{HostID: host})
	env.Provide(shard.EnvQueues, srv.Queues())

	ep, err := bertha.New("my-kv-srv",
		bertha.Wrap(bertha.Shard(shardAddrs, kv.ShardFunc(nshards))),
		append([]bertha.Option{bertha.WithRegistry(reg), bertha.WithEnv(env)}, traceOpts...)...)
	if err != nil {
		return err
	}
	base, err := transport.ListenUDP(host, listen)
	if err != nil {
		return err
	}
	nl, err := ep.Listen(ctx, base)
	if err != nil {
		return err
	}
	fmt.Printf("bertha-kv: canonical address %s (%d shards)\n", base.Addr().Addr, nshards)
	go func() {
		for {
			if _, err := nl.Accept(ctx); err != nil {
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("bertha-kv: served %d keys, xdp steered %d packets; shutting down\n",
		srv.TotalKeys(), x.Hook().Stats().Redirected)
	return nil
}

func runClient(addr string, push bool, ycsbN, records int, traceOpts []bertha.Option, args []string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	host, _ := os.Hostname()
	reg := bertha.NewRegistry()
	if push {
		shard.RegisterClient(reg)
	}
	// Always offer the trace chunnel so a tracing server can negotiate
	// it in; without -trace this side still forwards contexts but never
	// originates them.
	traced.Register(reg)
	env := bertha.NewEnv(host + "-client")
	env.SetDialer(&transport.MultiDialer{HostID: env.Host})
	ep, err := bertha.New("client_conn", bertha.Wrap(),
		append([]bertha.Option{bertha.WithRegistry(reg), bertha.WithEnv(env)}, traceOpts...)...)
	if err != nil {
		return err
	}
	raw, err := transport.DialUDP(env.Host, addr)
	if err != nil {
		return err
	}
	conn, err := ep.Connect(ctx, raw)
	if err != nil {
		return err
	}
	cli := kv.NewClient(conn)
	defer cli.Close()

	if ycsbN > 0 {
		return runYCSB(ctx, cli, ycsbN, records)
	}
	if len(args) == 0 {
		return fmt.Errorf("no command; use get/put/update/delete or -ycsb N")
	}
	switch strings.ToLower(args[0]) {
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: get <key>")
		}
		v, err := cli.Get(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", v)
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: put <key> <value>")
		}
		return cli.Put(ctx, args[1], []byte(args[2]))
	case "update":
		if len(args) != 3 {
			return fmt.Errorf("usage: update <key> <value>")
		}
		return cli.Update(ctx, args[1], []byte(args[2]))
	case "delete":
		if len(args) != 2 {
			return fmt.Errorf("usage: delete <key>")
		}
		return cli.Delete(ctx, args[1])
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}

func runYCSB(ctx context.Context, cli *kv.Client, n, records int) error {
	gen, err := ycsb.NewGenerator(ycsb.Config{
		Workload: ycsb.WorkloadA, Records: records,
		Dist: ycsb.Uniform, OverrideDist: true,
		ValueSize: 100, Seed: time.Now().UnixNano(),
	})
	if err != nil {
		return err
	}
	// Preload through the wire so the experiment is self-contained.
	for _, k := range gen.InitialKeys() {
		if err := cli.Put(ctx, k, []byte("init")); err != nil {
			return fmt.Errorf("preload %s: %w", k, err)
		}
	}
	rec := stats.NewRecorder(n)
	start := time.Now()
	for i := 0; i < n; i++ {
		op := gen.Next()
		t0 := time.Now()
		switch op.Kind {
		case ycsb.Read:
			_, err = cli.Get(ctx, op.Key)
		default:
			err = cli.Update(ctx, op.Key, op.Value)
		}
		if err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
		rec.Record(time.Since(t0))
	}
	elapsed := time.Since(start)
	s := rec.Summarize()
	fmt.Printf("ycsb-a: %d ops in %v (%.0f ops/s)\n", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	fmt.Printf("latency µs: p50=%.1f p95=%.1f p99=%.1f\n", s.P50, s.P95, s.P99)
	return nil
}
