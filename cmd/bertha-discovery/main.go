// Command bertha-discovery runs a standalone Bertha discovery service
// (§4.2) over UDP. Offload developers, operators, and administrators
// register accelerated chunnel implementations with it; Bertha runtimes
// query it during connection negotiation.
//
// Usage:
//
//	bertha-discovery [-listen 127.0.0.1:7777] [-telemetry 127.0.0.1:7778]
//
// The telemetry endpoint serves the registry snapshot as JSON by
// default, Prometheus text exposition at ?format=prom, and — when a
// co-resident Bertha endpoint has tracing enabled — reassembled span
// trees at ?spans=<traceID|all>. Process-health gauges (goroutines,
// heap in use, outstanding pooled buffers, open connections) refresh on
// every scrape.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/bertha-net/bertha/bertha/transport"
	"github.com/bertha-net/bertha/internal/discovery"
	"github.com/bertha-net/bertha/internal/telemetry"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "UDP address to serve on")
	telemAddr := flag.String("telemetry", "", "HTTP address serving "+telemetry.Endpoint+" (empty disables)")
	flag.Parse()

	if *telemAddr != "" {
		errCh := make(chan error, 1)
		telemetry.Serve(*telemAddr, telemetry.Default(), errCh)
		select {
		case err := <-errCh:
			fmt.Fprintf(os.Stderr, "bertha-discovery: telemetry endpoint: %v\n", err)
			os.Exit(1)
		case <-time.After(100 * time.Millisecond):
			fmt.Printf("bertha-discovery: telemetry at http://%s%s (JSON; ?format=prom for Prometheus)\n",
				*telemAddr, telemetry.Endpoint)
		}
	}

	l, err := transport.ListenUDP("", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bertha-discovery: %v\n", err)
		os.Exit(1)
	}
	svc := discovery.NewService()
	srv := discovery.Serve(svc, l)
	fmt.Printf("bertha-discovery: serving on %s\n", l.Addr().Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("bertha-discovery: shutting down")
	srv.Close()
}
