// Command bertha-discovery runs a standalone Bertha discovery service
// (§4.2) over UDP. Offload developers, operators, and administrators
// register accelerated chunnel implementations with it; Bertha runtimes
// query it during connection negotiation.
//
// Usage:
//
//	bertha-discovery [-listen 127.0.0.1:7777]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/bertha-net/bertha/bertha/transport"
	"github.com/bertha-net/bertha/internal/discovery"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7777", "UDP address to serve on")
	flag.Parse()

	l, err := transport.ListenUDP("", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bertha-discovery: %v\n", err)
		os.Exit(1)
	}
	svc := discovery.NewService()
	srv := discovery.Serve(svc, l)
	fmt.Printf("bertha-discovery: serving on %s\n", l.Addr().Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("bertha-discovery: shutting down")
	srv.Close()
}
