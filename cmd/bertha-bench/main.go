// Command bertha-bench regenerates the paper's evaluation (§5): every
// table and figure has a subcommand that builds the workload, runs the
// sweep, and prints the corresponding rows.
//
// Usage:
//
//	bertha-bench [flags] <experiment> [<experiment>...]
//
// Experiments:
//
//	fig2       §3.1 Chunnel DAG construction
//	fig3       container networking latency (Figure 3)
//	fig4       dynamic name resolution timeline (Figure 4)
//	fig5       sharding scenarios (Figure 5)
//	opt        §6 pipeline reordering / TLS fusion ablation
//	consensus  ordered-multicast sequencer placement ablation
//	stack      zero-copy buffer path: allocs/op + latency per round trip
//	batch      vectored SendBufs/RecvBufs burst sweep vs per-message loop
//	connections reactor runtime connection-scaling sweep (1k→100k with -full)
//	all        everything above, in order
//
// Several experiments may be named in one invocation; with -json each
// prints its own JSON document in order (a JSON stream).
//
// The -full flag runs paper-scale parameters (Figure 3: 10000
// connections; Figure 5: 300000 requests); the default is a quick run.
// The -json flag switches the stack experiment to machine-readable
// output, reporting allocations/op and bytes/op alongside the latency
// percentiles. The -telemetry flag adds an instrumented stack scenario
// and prints the per-chunnel latency attribution (which layer owns what
// share of the send-path p95). The -trace flag adds a traced scenario:
// sampled requests carry an in-band trace context, every layer records
// spans, and the output reassembles them into per-message trees whose
// per-hop exclusive latencies telescope to the measured end-to-end
// latency (printed as a waterfall plus attribution table).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/bertha-net/bertha/internal/analysis/vetversion"
	"github.com/bertha-net/bertha/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run paper-scale parameters (slower)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON (stack experiment)")
	telem := flag.Bool("telemetry", false, "instrument every stack layer and print the per-chunnel latency attribution (stack experiment)")
	trace := flag.Bool("trace", false, "run the stack experiment with in-band message tracing and print the reassembled per-hop waterfall and exclusive-latency attribution")
	showVersion := flag.Bool("version", false, "print version (module + vet-suite revision) and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bertha-bench [-full] [-json] [-telemetry] [-trace] {fig2|fig3|fig4|fig5|opt|consensus|stack|batch|coalesce|connections|all}...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *showVersion {
		// Numbers are only comparable across runs vetted by the same rule
		// set, so the benchmark binary stamps the berthavet suite revision
		// alongside the module version.
		fmt.Printf("bertha-bench %s\n", vetversion.String())
		return
	}
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	fig3 := bench.Fig3Config{}
	fig4 := bench.Fig4Config{}
	fig5 := bench.Fig5Config{}
	cons := bench.ConsensusConfig{}
	stack := bench.StackConfig{JSON: *jsonOut, Telemetry: *telem, Tracing: *trace}
	batch := bench.BatchConfig{JSON: *jsonOut}
	coalesce := bench.CoalesceConfig{JSON: *jsonOut}
	connections := bench.ConnectionsConfig{JSON: *jsonOut}
	if *full {
		fig3.Connections = 10000
		fig5.Requests = 300000
		fig5.Concurrency = []int{1, 4, 16, 64, 128}
		fig4.Duration = 8 * time.Second
		cons.Ops = 2000
		stack.Messages = 50000
		batch.Messages = 65536
		coalesce.Messages = 65536
		connections.Counts = []int{1000, 10000, 100000}
	} else {
		fig4.Duration = 4 * time.Second
		fig4.LocalStartAt = 2 * time.Second
	}

	var run func(name string) error
	run = func(name string) error {
		switch name {
		case "fig2":
			bench.Fig2(os.Stdout)
			return nil
		case "fig3":
			return bench.Fig3(os.Stdout, fig3)
		case "fig4":
			return bench.Fig4(os.Stdout, fig4)
		case "fig5":
			return bench.Fig5(os.Stdout, fig5)
		case "opt":
			return bench.Opt(os.Stdout)
		case "consensus":
			return bench.Consensus(os.Stdout, cons)
		case "stack":
			return bench.Stack(os.Stdout, stack)
		case "batch":
			return bench.Batch(os.Stdout, batch)
		case "coalesce":
			return bench.Coalesce(os.Stdout, coalesce)
		case "connections":
			return bench.Connections(os.Stdout, connections)
		case "all":
			for _, n := range []string{"fig2", "fig3", "fig4", "fig5", "opt", "consensus", "stack", "batch", "coalesce", "connections"} {
				if err := run(n); err != nil {
					return fmt.Errorf("%s: %w", n, err)
				}
				fmt.Println()
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}
	for _, name := range flag.Args() {
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "bertha-bench: %v\n", err)
			os.Exit(1)
		}
	}
}
