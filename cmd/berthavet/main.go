// Command berthavet runs the bertha static-analysis suite: callgraph
// (per-package call graph with bounded devirtualization, feeding the
// others), bufown (linear wire.Buf ownership with inferred
// borrow/transfer summaries), overhead (Prepend totals vs declared
// SendOverhead), lockdisc (mutexes across blocking conn calls, lock
// ordering, and module-global deadlock cycles), ctxflow (context
// propagation and timer lifetimes), golife (goroutine shutdown edges,
// WaitGroup pairing, and spawns through helper wrappers), speccheck
// (spec stacks evaluated against the chunnel registry), atomdisc
// (sync/atomic access discipline), and batchcontract (the
// SendBufs/RecvBufs batch contract).
//
// Analyzers exchange cross-package facts: standalone mode propagates
// them in dependency order within one process (independent packages in
// parallel waves), vettool mode serializes them through the .vetx
// files the go command threads between units.
//
// Standalone:
//
//	go run ./cmd/berthavet ./...
//	go run ./cmd/berthavet -json ./...        # machine-readable findings
//	go run ./cmd/berthavet -sarif ./...       # SARIF 2.1.0 for code scanning
//	go run ./cmd/berthavet -diff HEAD~1 ./... # only findings on changed lines
//
// As a vettool:
//
//	go build -o /tmp/berthavet ./cmd/berthavet
//	go vet -vettool=/tmp/berthavet ./...
//
// Exit status is 0 when the tree is clean, 2 when diagnostics were
// reported, 1 on operational failure.
package main

import (
	"os"

	"github.com/bertha-net/bertha/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
