// Command berthavet runs the bertha static-analysis suite: bufown
// (linear wire.Buf ownership), overhead (Prepend totals vs declared
// SendOverhead), lockdisc (mutexes across blocking conn calls and lock
// ordering), ctxflow (context propagation and timer lifetimes), golife
// (goroutine shutdown edges and WaitGroup pairing), and speccheck
// (spec stacks evaluated against the chunnel registry).
//
// Analyzers exchange cross-package facts: standalone mode propagates
// them in dependency order within one process, vettool mode serializes
// them through the .vetx files the go command threads between units.
//
// Standalone:
//
//	go run ./cmd/berthavet ./...
//	go run ./cmd/berthavet -json ./...   # machine-readable findings
//
// As a vettool:
//
//	go build -o /tmp/berthavet ./cmd/berthavet
//	go vet -vettool=/tmp/berthavet ./...
//
// Exit status is 0 when the tree is clean, 2 when diagnostics were
// reported, 1 on operational failure.
package main

import (
	"os"

	"github.com/bertha-net/bertha/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
