// Command berthavet runs the bertha static-analysis suite: bufown
// (linear wire.Buf ownership), overhead (Prepend totals vs declared
// SendOverhead), and lockdisc (mutexes across blocking conn calls and
// lock ordering).
//
// Standalone:
//
//	go run ./cmd/berthavet ./...
//
// As a vettool:
//
//	go build -o /tmp/berthavet ./cmd/berthavet
//	go vet -vettool=/tmp/berthavet ./...
//
// Exit status is 0 when the tree is clean, 2 when diagnostics were
// reported, 1 on operational failure.
package main

import (
	"os"

	"github.com/bertha-net/bertha/internal/analysis/driver"
)

func main() {
	os.Exit(driver.Main(os.Args[1:], os.Stdout, os.Stderr))
}
