package bertha_bench

import (
	"context"
	"testing"

	"github.com/bertha-net/bertha/internal/chunnels/framing"
	"github.com/bertha-net/bertha/internal/chunnels/serialize"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// newStackPair builds the 3-deep serialize→framing→udp benchmark stack
// on both ends of a connected loopback UDP socket pair. Connected
// sockets (not the demultiplexing listener) keep the receive path free
// of per-datagram source-address allocations.
func newStackPair(tb testing.TB) (cli, srv core.Conn) {
	return newStackPairTelemetry(tb, nil)
}

// newStackPairTelemetry is newStackPair with every layer of the client
// stack wrapped in telemetry instrumentation recording into reg. A nil
// reg leaves the stack bare. The server side stays uninstrumented so
// the echo peer's cost doesn't leak into the client's measurement.
func newStackPairTelemetry(tb testing.TB, reg *telemetry.Registry) (cli, srv core.Conn) {
	tb.Helper()
	a, b, err := transport.UDPPair("cli", "srv")
	if err != nil {
		tb.Fatalf("udp pair: %v", err)
	}
	instr := func(c core.Conn, chunnelType, impl string) core.Conn {
		if reg == nil {
			return c
		}
		return core.Instrument(c, reg.Conn(chunnelType, impl))
	}
	wrap := func(c core.Conn, instrumented bool) core.Conn {
		if instrumented {
			c = instr(c, "transport", "udp")
		}
		f, err := framing.New(c, framing.DefaultMaxFrame)
		if err != nil {
			tb.Fatalf("framing: %v", err)
		}
		if instrumented {
			f = instr(f, "http2", "http2/sw")
		}
		s, err := serialize.New(f, serialize.FormatBincode)
		if err != nil {
			tb.Fatalf("serialize: %v", err)
		}
		return instr(s, "serialize", "serialize/bincode")
	}
	cli, srv = wrap(a, true), wrap(b, false)
	tb.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// echoLoop reflects every message back through the stack without
// copying: the received buffer's trimmed headers become exactly the
// headroom the reply's headers prepend into.
func echoLoop(srv core.Conn) {
	ctx := context.Background()
	for {
		b, err := core.RecvBuf(ctx, srv)
		if err != nil {
			return
		}
		if err := core.SendBuf(ctx, srv, b); err != nil {
			return
		}
	}
}

// BenchmarkStackSend measures the send path of the 3-deep stack: one
// pooled buffer per message, headers prepended in place, released at the
// socket. A background drain keeps the peer's kernel buffer empty.
func BenchmarkStackSend(b *testing.B) {
	cli, srv := newStackPair(b)
	go func() {
		ctx := context.Background()
		for {
			m, err := core.RecvBuf(ctx, srv)
			if err != nil {
				return
			}
			m.Release()
		}
	}()

	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := wire.NewBufFrom(headroom, payload)
		if err := core.SendBuf(ctx, cli, m); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// BenchmarkStackRecv measures the receive path of the 3-deep stack: the
// transport's pooled buffer travels up with headers trimmed in place.
// The peer sends exactly one message per iteration (lock-step, so
// loopback UDP never drops).
func BenchmarkStackRecv(b *testing.B) {
	cli, srv := newStackPair(b)
	req := make(chan struct{})
	go func() {
		ctx := context.Background()
		payload := make([]byte, 64)
		headroom := core.HeadroomOf(srv)
		for range req {
			m := wire.NewBufFrom(headroom, payload)
			if core.SendBuf(ctx, srv, m) != nil {
				return
			}
		}
	}()
	defer close(req)

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req <- struct{}{}
		m, err := core.RecvBuf(ctx, cli)
		if err != nil {
			b.Fatalf("recv: %v", err)
		}
		m.Release()
	}
}

// TestStackRoundTripAllocs is the tier-1 regression gate for the pooled
// buffer path: a full round trip over the serialize→framing→udp stack —
// send with header prepends, zero-copy echo on the peer, receive with
// header trims — must stay at or below 2 allocations, down from ~8 with
// the copy-per-layer implementation. In steady state it measures 0; the
// budget of 2 absorbs a GC emptying the pools mid-run.
func TestStackRoundTripAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cli, srv := newStackPair(t)
	go echoLoop(srv)

	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)

	roundTrip := func() {
		m := wire.NewBufFrom(headroom, payload)
		if err := core.SendBuf(ctx, cli, m); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		r, err := core.RecvBuf(ctx, cli)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if r.Len() != len(payload) {
			t.Errorf("echo len = %d, want %d", r.Len(), len(payload))
		}
		r.Release()
	}
	roundTrip() // warm the buffer pools before measuring

	avg := testing.AllocsPerRun(100, roundTrip)
	if t.Failed() {
		t.FailNow()
	}
	if avg > 2 {
		t.Fatalf("stack round trip allocates %.2f objects/op, budget is 2", avg)
	}
}

// BenchmarkStackSendInstrumented is BenchmarkStackSend with telemetry
// recording at every layer: three ConnMetrics (serialize, http2,
// transport) each taking two timestamps and a handful of atomic adds
// per message. The alloc column must read 0 — instrumentation rides the
// pooled-buffer path without touching the heap.
func BenchmarkStackSendInstrumented(b *testing.B) {
	cli, srv := newStackPairTelemetry(b, telemetry.New())
	go func() {
		ctx := context.Background()
		for {
			m, err := core.RecvBuf(ctx, srv)
			if err != nil {
				return
			}
			m.Release()
		}
	}()

	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := wire.NewBufFrom(headroom, payload)
		if err := core.SendBuf(ctx, cli, m); err != nil {
			b.Fatalf("send: %v", err)
		}
	}
}

// BenchmarkStackRecvInstrumented is BenchmarkStackRecv with telemetry
// recording at every layer of the receiving stack.
func BenchmarkStackRecvInstrumented(b *testing.B) {
	cli, srv := newStackPairTelemetry(b, telemetry.New())
	req := make(chan struct{})
	go func() {
		ctx := context.Background()
		payload := make([]byte, 64)
		headroom := core.HeadroomOf(srv)
		for range req {
			m := wire.NewBufFrom(headroom, payload)
			if core.SendBuf(ctx, srv, m) != nil {
				return
			}
		}
	}()
	defer close(req)

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req <- struct{}{}
		m, err := core.RecvBuf(ctx, cli)
		if err != nil {
			b.Fatalf("recv: %v", err)
		}
		m.Release()
	}
}

// TestStackRoundTripAllocsInstrumented is TestStackRoundTripAllocs with
// telemetry enabled on every client layer. The budget stays at 2: the
// instrumentation is atomic adds against preallocated ConnMetrics, so
// enabling it must not cost a single extra allocation (steady state
// measures 0). It also cross-checks that the metrics actually recorded.
func TestStackRoundTripAllocsInstrumented(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	reg := telemetry.New()
	cli, srv := newStackPairTelemetry(t, reg)
	go echoLoop(srv)

	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(cli)

	roundTrip := func() {
		m := wire.NewBufFrom(headroom, payload)
		if err := core.SendBuf(ctx, cli, m); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		r, err := core.RecvBuf(ctx, cli)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if r.Len() != len(payload) {
			t.Errorf("echo len = %d, want %d", r.Len(), len(payload))
		}
		r.Release()
	}
	roundTrip() // warm the buffer pools before measuring

	const runs = 100
	avg := testing.AllocsPerRun(runs, roundTrip)
	if t.Failed() {
		t.FailNow()
	}
	if avg > 2 {
		t.Fatalf("instrumented stack round trip allocates %.2f objects/op, budget is 2", avg)
	}

	// Every layer must have observed every round trip.
	snap := reg.Snapshot()
	if len(snap.Conns) != 3 {
		t.Fatalf("instrumented layers = %d, want 3", len(snap.Conns))
	}
	for _, c := range snap.Conns {
		if c.Sends < runs || c.Recvs < runs {
			t.Errorf("%s/%s recorded %d sends / %d recvs, want ≥%d",
				c.Chunnel, c.Impl, c.Sends, c.Recvs, runs)
		}
	}
}
