module github.com/bertha-net/bertha

go 1.22
