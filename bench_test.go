// Package bertha_bench holds the testing.B benchmarks that regenerate
// the paper's evaluation, one benchmark (family) per table and figure:
//
//	BenchmarkFig3*        — Figure 3, container networking
//	BenchmarkFig4*        — Figure 4, dynamic name resolution
//	BenchmarkFig5*        — Figure 5, sharding scenarios
//	BenchmarkOptimizer*   — §6 DAG optimization
//	BenchmarkConsensus*   — Listing 2 sequencer placement
//
// plus micro-benchmarks for the substrate costs the design decisions in
// DESIGN.md rest on (codec, ARQ, XDP steering, negotiation).
//
// Run: go test -bench=. -benchmem
package bertha_bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"github.com/bertha-net/bertha/bertha"
	btransport "github.com/bertha-net/bertha/bertha/transport"
	"github.com/bertha-net/bertha/internal/chunnels/anycast"
	"github.com/bertha-net/bertha/internal/chunnels/localfast"
	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/chunnels/reliable"
	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/discovery"
	"github.com/bertha-net/bertha/internal/kv"
	"github.com/bertha-net/bertha/internal/rsm"
	"github.com/bertha-net/bertha/internal/simnet"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
	"github.com/bertha-net/bertha/internal/xdp"
	"github.com/bertha-net/bertha/internal/ycsb"
)

// ---------- Figure 3: container networking ----------

// echoServe pumps echo on every accepted conn.
func echoServe(ctx context.Context, l core.Listener) {
	go func() {
		for {
			conn, err := l.Accept(ctx)
			if err != nil {
				return
			}
			go func(conn core.Conn) {
				defer conn.Close()
				for {
					m, err := conn.Recv(ctx)
					if err != nil {
						return
					}
					if err := conn.Send(ctx, m); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

func benchPing(b *testing.B, conn core.Conn, size int) {
	ctx := context.Background()
	payload := make([]byte, size)
	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.Send(ctx, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Recv(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3PingUDP measures request latency through the loopback
// network stack (Figure 3's baseline).
func BenchmarkFig3PingUDP(b *testing.B) {
	for _, size := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			l, err := btransport.ListenUDP("h", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			echoServe(ctx, l)
			conn, err := btransport.DialUDP("h", l.Addr().Addr)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			benchPing(b, conn, size)
		})
	}
}

// BenchmarkFig3PingUnix measures request latency over hardcoded UNIX
// sockets (Figure 3's specialized implementation).
func BenchmarkFig3PingUnix(b *testing.B) {
	for _, size := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			path := filepath.Join(b.TempDir(), "bench.sock")
			l, err := btransport.ListenUnix("h", path)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			echoServe(ctx, l)
			conn, err := btransport.DialUnix("h", path)
			if err != nil {
				b.Fatal(err)
			}
			defer conn.Close()
			benchPing(b, conn, size)
		})
	}
}

// fig3Bertha builds the localfast server and returns a connect func.
func fig3BerthaSetup(b *testing.B, ctx context.Context) func() core.Conn {
	b.Helper()
	regS, regC := bertha.NewRegistry(), bertha.NewRegistry()
	localfast.Register(regS)
	localfast.Register(regC)
	ipcPath := filepath.Join(b.TempDir(), "ipc.sock")
	ipcL, err := btransport.ListenUnix("h", ipcPath)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { ipcL.Close() })
	envS := bertha.NewEnv("h")
	envS.Provide(localfast.EnvListener, ipcL)
	envS.SetDialer(&btransport.MultiDialer{HostID: "h"})
	envC := bertha.NewEnv("h")
	envC.SetDialer(&btransport.MultiDialer{HostID: "h"})
	srv, err := bertha.New("container-app", bertha.Wrap(bertha.LocalOrRemote()),
		bertha.WithRegistry(regS), bertha.WithEnv(envS))
	if err != nil {
		b.Fatal(err)
	}
	base, err := btransport.ListenUDP("h", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { nl.Close() })
	echoServe(ctx, nl)
	cli, err := bertha.New("client", bertha.Wrap(), bertha.WithRegistry(regC), bertha.WithEnv(envC))
	if err != nil {
		b.Fatal(err)
	}
	addr := base.Addr().Addr
	return func() core.Conn {
		raw, err := btransport.DialUDP("h", addr)
		if err != nil {
			b.Fatal(err)
		}
		conn, err := cli.Connect(ctx, raw)
		if err != nil {
			b.Fatal(err)
		}
		return conn
	}
}

// BenchmarkFig3PingBertha measures request latency over a negotiated
// Bertha connection that spliced onto the UNIX fast path.
func BenchmarkFig3PingBertha(b *testing.B) {
	for _, size := range []int{128, 1024, 8192} {
		b.Run(fmt.Sprintf("%dB", size), func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			conn := fig3BerthaSetup(b, ctx)()
			defer conn.Close()
			benchPing(b, conn, size)
		})
	}
}

// BenchmarkFig3Establishment measures connection-establishment cost:
// Bertha pays the negotiation round trips the paper reports.
func BenchmarkFig3Establishment(b *testing.B) {
	b.Run("udp", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		l, _ := btransport.ListenUDP("h", "127.0.0.1:0")
		defer l.Close()
		echoServe(ctx, l)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conn, err := btransport.DialUDP("h", l.Addr().Addr)
			if err != nil {
				b.Fatal(err)
			}
			conn.Close()
		}
	})
	b.Run("bertha", func(b *testing.B) {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		connect := fig3BerthaSetup(b, ctx)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			connect().Close()
		}
	})
}

// ---------- Figure 4: dynamic name resolution ----------

// remoteDelayConn models network distance on top of a real socket.
type remoteDelayConn struct {
	core.Conn
	delay time.Duration
}

func (d remoteDelayConn) Send(ctx context.Context, p []byte) error {
	time.Sleep(d.delay)
	return d.Conn.Send(ctx, p)
}

func (d remoteDelayConn) Recv(ctx context.Context) ([]byte, error) {
	m, err := d.Conn.Recv(ctx)
	if err != nil {
		return nil, err
	}
	time.Sleep(d.delay)
	return m, nil
}

// BenchmarkFig4DynamicResolution measures resolve+connect+RPC with the
// anycast directory when the nearest instance is local vs remote. The
// remote instance carries a simulated 500 µs network distance each way,
// as in the Figure 4 harness.
func BenchmarkFig4DynamicResolution(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dir := anycast.NewLocalDirectory(discovery.NewService())

	remoteL, _ := btransport.ListenUDP("far", "127.0.0.1:0")
	defer remoteL.Close()
	echoServe(ctx, remoteL)
	dir.Advertise(ctx, "svc", anycast.Instance{Name: "remote", Addr: remoteL.Addr(), Cost: 10}, time.Hour)

	localPath := filepath.Join(b.TempDir(), "local.sock")
	localL, _ := btransport.ListenUnix("near", localPath)
	defer localL.Close()
	echoServe(ctx, localL)

	base := &btransport.MultiDialer{HostID: "near"}
	dialer := core.DialerFunc(func(ctx context.Context, addr core.Addr) (core.Conn, error) {
		conn, err := base.Dial(ctx, addr)
		if err != nil {
			return nil, err
		}
		if addr.Net == "udp" { // the remote instance is across the network
			return remoteDelayConn{Conn: conn, delay: 500 * time.Microsecond}, nil
		}
		return conn, nil
	})
	r := &anycast.Resolver{
		Directory: dir,
		Strategy:  anycast.Nearest{},
		Dialer:    dialer,
		FromHost:  "near",
	}
	rpc := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			conn, _, err := r.Dial(ctx, "svc")
			if err != nil {
				b.Fatal(err)
			}
			if err := conn.Send(ctx, []byte("ping")); err != nil {
				b.Fatal(err)
			}
			if _, err := conn.Recv(ctx); err != nil {
				b.Fatal(err)
			}
			conn.Close()
		}
	}
	b.Run("remote-only", rpc)
	dir.Advertise(ctx, "svc", anycast.Instance{Name: "local", Addr: localL.Addr(), Cost: 1}, time.Hour)
	b.Run("local-appeared", rpc)
}

// ---------- Figure 5: sharding ----------

// fig5Bench wires one scenario and returns a loaded kv client.
func fig5Bench(b *testing.B, push, registerXDP bool, policy core.Policy) *kv.Client {
	b.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	b.Cleanup(cancel)
	pn := transport.NewPipeNetwork()
	const nshards = 3
	srv, err := kv.NewServer(nshards)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	var addrs []core.Addr
	for i := 0; i < nshards; i++ {
		l, _ := pn.Listen("s", fmt.Sprintf("shard%d", i))
		addrs = append(addrs, l.Addr())
		srv.ServeShard(i, l)
	}
	regS := bertha.NewRegistry()
	shard.RegisterServer(regS)
	if registerXDP {
		shard.RegisterXDP(regS)
	}
	envS := bertha.NewEnv("s")
	envS.SetDialer(&transport.MultiDialer{HostID: "s", Pipe: pn})
	envS.Provide(shard.EnvQueues, srv.Queues())
	opts := []bertha.Option{bertha.WithRegistry(regS), bertha.WithEnv(envS)}
	if policy != nil {
		opts = append(opts, bertha.WithPolicy(policy))
	}
	ep, err := bertha.New("kv", bertha.Wrap(bertha.Shard(addrs, kv.ShardFunc(nshards))), opts...)
	if err != nil {
		b.Fatal(err)
	}
	base, _ := pn.Listen("s", "kv")
	nl, err := ep.Listen(ctx, base)
	if err != nil {
		b.Fatal(err)
	}
	go func() {
		for {
			if _, err := nl.Accept(ctx); err != nil {
				return
			}
		}
	}()
	gen, _ := ycsb.NewGenerator(ycsb.Config{Workload: ycsb.WorkloadA, Records: 1000,
		Dist: ycsb.Uniform, OverrideDist: true, Seed: 1})
	srv.Preload(gen.InitialKeys(), []byte("v"))

	regC := bertha.NewRegistry()
	if push {
		shard.RegisterClient(regC)
	}
	envC := bertha.NewEnv("c")
	envC.SetDialer(&transport.MultiDialer{HostID: "c", Pipe: pn})
	cliEp, _ := bertha.New("cli", bertha.Wrap(), bertha.WithRegistry(regC), bertha.WithEnv(envC))
	raw, _ := pn.DialFrom(ctx, "c", core.Addr{Net: "pipe", Addr: "kv"})
	conn, err := cliEp.Connect(ctx, raw)
	if err != nil {
		b.Fatal(err)
	}
	cli := kv.NewClient(conn)
	b.Cleanup(func() { cli.Close() })
	return cli
}

// BenchmarkFig5Sharding measures per-op latency for the Figure 5
// scenarios (YCSB-A uniform, 3 shards).
func BenchmarkFig5Sharding(b *testing.B) {
	scenarios := []struct {
		name   string
		push   bool
		xdp    bool
		policy core.Policy
	}{
		{"client-push", true, true, nil},
		{"server-xdp", false, true, nil},
		{"server-fallback", false, false, core.PreferImpl(shard.ImplServer)},
	}
	for _, sc := range scenarios {
		sc := sc
		b.Run(sc.name, func(b *testing.B) {
			cli := fig5Bench(b, sc.push, sc.xdp, sc.policy)
			ctx := context.Background()
			gen, _ := ycsb.NewGenerator(ycsb.Config{Workload: ycsb.WorkloadA, Records: 1000,
				Dist: ycsb.Uniform, OverrideDist: true, Seed: 2, ValueSize: 100})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				op := gen.Next()
				var err error
				if op.Kind == ycsb.Read {
					_, err = cli.Get(ctx, op.Key)
				} else {
					err = cli.Update(ctx, op.Key, op.Value)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------- §6 optimizer ----------

// BenchmarkOptimizerReorder measures the optimizer pass itself.
func BenchmarkOptimizerReorder(b *testing.B) {
	reg := core.NewRegistry()
	reg.SetTypeMeta("encrypt", core.TypeMeta{Commutes: []string{"http2"}})
	reg.AddFusion("encrypt", "reliable", "tls")
	o := core.NewOptimizer(reg)
	cands := map[string][]core.Candidate{
		"encrypt":  {{Offer: core.ImplOffer{Name: "e/nic", Type: "encrypt", Location: core.LocSmartNIC}}},
		"http2":    {{Offer: core.ImplOffer{Name: "h/sw", Type: "http2"}}},
		"reliable": {{Offer: core.ImplOffer{Name: "r/nic", Type: "reliable", Location: core.LocSmartNIC}}},
		"tls":      {{Offer: core.ImplOffer{Name: "t/nic", Type: "tls", Location: core.LocSmartNIC}}},
	}
	nodes := []spec.Node{spec.New("encrypt"), spec.New("http2"), spec.New("reliable")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Apply(nodes, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------- Listing 2: consensus sequencer placement ----------

// BenchmarkConsensusInvoke measures RSM invocation latency with the
// sequencer in the switch vs on the lead replica.
func BenchmarkConsensusInvoke(b *testing.B) {
	for _, variant := range []struct {
		name       string
		withSwitch bool
	}{{"switch-sequencer", true}, {"host-sequencer", false}} {
		variant := variant
		b.Run(variant.name, func(b *testing.B) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cli := consensusBench(b, ctx, variant.withSwitch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cli.Invoke(ctx, []byte(strconv.Itoa(i))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func consensusBench(b *testing.B, ctx context.Context, withSwitch bool) *rsm.Client {
	b.Helper()
	net := simnet.New()
	b.Cleanup(net.Close)
	sw, _ := net.AddSwitch("tor", 16)
	hosts := []string{"r1", "r2", "r3"}
	hostObjs := map[string]*simnet.Host{}
	for _, h := range append(append([]string{}, hosts...), "cli") {
		host, err := net.AddHost(h, sw, simnet.LinkConfig{Latency: 50 * time.Microsecond})
		if err != nil {
			b.Fatal(err)
		}
		hostObjs[h] = host
	}
	const gid = "bench"
	for _, h := range hosts {
		reg := bertha.NewRegistry()
		swImpl, hostImpl := mcast.Register(reg)
		impl := hostImpl
		if withSwitch {
			impl = swImpl
		}
		env := bertha.NewEnv(h)
		env.Provide(mcast.EnvHost, hostObjs[h])
		if withSwitch {
			env.Provide(mcast.EnvSwitch, sw)
		}
		env.SetDialer(hostObjs[h].Dialer())
		if err := impl.EnsureReplica(env, gid, hosts); err != nil {
			b.Fatal(err)
		}
		deliveries, _ := impl.Deliveries(gid)
		rep := rsm.NewReplica(rsm.Func(func(op []byte) []byte { return op }))
		go rep.Run(ctx, deliveries)
		ep, _ := bertha.New("r-"+h, bertha.Wrap(bertha.OrderedMcast(gid, hosts)),
			bertha.WithRegistry(reg), bertha.WithEnv(env))
		base, _ := hostObjs[h].Listen("rsm")
		nl, _ := ep.Listen(ctx, base)
		go func() {
			for {
				if _, err := nl.Accept(ctx); err != nil {
					return
				}
			}
		}()
	}
	reg := bertha.NewRegistry()
	mcast.Register(reg)
	env := bertha.NewEnv("cli")
	env.SetDialer(hostObjs["cli"].Dialer())
	ep, _ := bertha.New("cli", bertha.Wrap(), bertha.WithRegistry(reg), bertha.WithEnv(env))
	var raws []core.Conn
	for _, h := range hosts {
		raw, err := hostObjs["cli"].Dial(ctx, hostObjs[h].Addr("rsm"))
		if err != nil {
			b.Fatal(err)
		}
		raws = append(raws, raw)
	}
	conn, err := ep.ConnectMulti(ctx, raws)
	if err != nil {
		b.Fatal(err)
	}
	cli := rsm.NewClient(conn, 2)
	b.Cleanup(func() { cli.Close() })
	return cli
}

// ---------- substrate micro-benchmarks ----------

// BenchmarkWireCodec measures the binary codec round trip.
func BenchmarkWireCodec(b *testing.B) {
	payload := make([]byte, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := wire.NewEncoder(nil)
		e.PutUint64(uint64(i))
		e.PutString("key-field-here")
		e.PutBytes(payload)
		d := wire.NewDecoder(e.Bytes())
		d.Uint64()
		_ = d.String()
		d.Bytes()
		if d.Err() != nil {
			b.Fatal(d.Err())
		}
	}
}

// BenchmarkARQThroughput measures the reliability chunnel on a clean
// in-process link.
func BenchmarkARQThroughput(b *testing.B) {
	ctx := context.Background()
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 4096)
	a, _ := reliable.New(ra, reliable.Config{Window: 512})
	c, _ := reliable.New(rb, reliable.Config{Window: 512})
	defer a.Close()
	defer c.Close()
	payload := make([]byte, 1024)
	b.SetBytes(1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < b.N; i++ {
			if _, err := c.Recv(ctx); err != nil {
				return
			}
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
	<-done
}

// BenchmarkXDPSteer measures the simulated XDP steering program per
// packet — the cost the server-accelerated scenario pays per request.
func BenchmarkXDPSteer(b *testing.B) {
	hook := xdp.NewHook("bench")
	hook.Attach(xdp.SteerProgram("steer", xdp.FieldHash{Offset: 10, Length: 12, Shards: 3}))
	pkt := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := xdp.Packet{Data: pkt}
		if v := hook.Run(&p); v != xdp.Redirect {
			b.Fatal(v)
		}
	}
}

// BenchmarkNegotiation measures full connection establishment
// (ClientHello/ServerHello over an in-process link) — the fixed cost
// Figure 3 reports as two extra round trips.
func BenchmarkNegotiation(b *testing.B) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	regS, regC := bertha.NewRegistry(), bertha.NewRegistry()
	bertha.RegisterStandard(regS)
	bertha.RegisterStandard(regC)
	pn := transport.NewPipeNetwork()
	srv, _ := bertha.New("srv", bertha.Wrap(bertha.Reliable()), bertha.WithRegistry(regS))
	base, _ := pn.Listen("h", "svc")
	nl, _ := srv.Listen(ctx, base)
	go func() {
		for {
			if _, err := nl.Accept(ctx); err != nil {
				return
			}
		}
	}()
	cli, _ := bertha.New("cli", bertha.Wrap(), bertha.WithRegistry(regC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := pn.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
		if err != nil {
			b.Fatal(err)
		}
		conn, err := cli.Connect(ctx, raw)
		if err != nil {
			b.Fatal(err)
		}
		conn.Close()
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
