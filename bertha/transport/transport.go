// Package transport exposes Bertha's base transports: the connections a
// chunnel stack composes over. Applications create a base listener or
// connection here and hand it to bertha.Endpoint.Listen / Connect.
package transport

import (
	itransport "github.com/bertha-net/bertha/internal/transport"
)

// MaxDatagram is the largest message the socket transports accept.
const MaxDatagram = itransport.MaxDatagram

// Socket transports (real kernel sockets).
var (
	// ListenUDP binds a demultiplexing UDP listener ("127.0.0.1:0" for
	// an ephemeral port). hostID labels the host for locality decisions.
	ListenUDP = itransport.ListenUDP
	// DialUDP opens a connected UDP datagram connection.
	DialUDP = itransport.DialUDP
	// ListenUnix binds a UNIX datagram listener at a socket path.
	ListenUnix = itransport.ListenUnix
	// DialUnix opens a connected UNIX datagram connection.
	DialUnix = itransport.DialUnix
)

// In-process transports (tests, single-process deployments).
var (
	// Pipe returns a connected in-process pair.
	Pipe = itransport.Pipe
	// NewPipeNetwork returns an in-process network of named listeners.
	NewPipeNetwork = itransport.NewPipeNetwork
	// Lossy wraps a connection with drops/dups/reordering for testing.
	Lossy = itransport.Lossy
)

// Aliased types.
type (
	// PipeNetwork is an in-process datagram network.
	PipeNetwork = itransport.PipeNetwork
	// MultiDialer routes Dial calls by address network.
	MultiDialer = itransport.MultiDialer
	// LossConfig parameterizes a Lossy wrapper.
	LossConfig = itransport.LossConfig
)
