package bertha_test

import (
	"context"
	"testing"
	"time"

	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// TestGlossaryCoverage is the Table 1 check: every glossary term maps to
// exported API surface.
func TestGlossaryCoverage(t *testing.T) {
	// Chunnel — a DAG node.
	n := bertha.Reliable()
	if n.Type != "reliable" {
		t.Errorf("chunnel node: %+v", n)
	}
	// Chunnel DAG — a Stack built with Wrap.
	s := bertha.Wrap(bertha.Serialize(), bertha.Reliable())
	if s.String() == "" || len(s.Nodes) != 2 {
		t.Errorf("chunnel DAG: %s", s)
	}
	// Scope — placement constraint.
	scoped := bertha.LocalOrRemote().WithScope(bertha.ScopeHost)
	if scoped.Scope != bertha.ScopeHost {
		t.Error("scope constraint")
	}
	// Fallback Impl. / Offload — implementations in a registry.
	reg := bertha.NewRegistry()
	bertha.RegisterStandard(reg)
	if _, err := reg.Fallback("reliable"); err != nil {
		t.Errorf("fallback impl: %v", err)
	}
	for _, typ := range []string{"serialize", "reliable", "ordering", "compress",
		"encrypt", "http2", "ipc", "passthrough", "shard", "lb", "ordered_mcast"} {
		if impls := reg.ImplsFor(typ); len(impls) == 0 {
			t.Errorf("no implementation registered for %q", typ)
		}
	}
}

func TestQuickstartShape(t *testing.T) {
	// The README quickstart, end to end over an in-process transport.
	ctx := ctxT(t)
	regS, regC := bertha.NewRegistry(), bertha.NewRegistry()
	bertha.RegisterStandard(regS)
	bertha.RegisterStandard(regC)

	pn := transport.NewPipeNetwork()
	srv, err := bertha.New("quickstart-server",
		bertha.Wrap(bertha.Serialize(), bertha.Reliable()),
		bertha.WithRegistry(regS))
	if err != nil {
		t.Fatal(err)
	}
	base, _ := pn.Listen("srvhost", "svc")
	nl, err := srv.Listen(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		conn, err := nl.Accept(ctx)
		if err != nil {
			return
		}
		for {
			m, err := conn.Recv(ctx)
			if err != nil {
				return
			}
			conn.Send(ctx, append([]byte("echo: "), m...))
		}
	}()

	cli, err := bertha.New("quickstart-client", bertha.Wrap(), bertha.WithRegistry(regC))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := pn.DialFrom(ctx, "clihost", bertha.Addr{Net: "pipe", Addr: "svc"})
	conn, err := cli.Connect(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(ctx, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Recv(ctx)
	if err != nil || string(m) != "echo: hello" {
		t.Fatalf("recv: %q %v", m, err)
	}
}

func TestRegisterChunnelDefaultRegistry(t *testing.T) {
	// RegisterChunnel targets the process-wide registry; use a unique
	// type to avoid collisions with other tests.
	err := bertha.RegisterChunnel(&fakeImpl{info: bertha.ImplInfo{
		Name: "testonly/fb", Type: "testonly",
		Endpoint: bertha.EndpointBoth, Location: bertha.LocUserspace,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bertha.DefaultRegistry().Fallback("testonly"); err != nil {
		t.Error(err)
	}
	// Duplicate registration errors.
	if err := bertha.RegisterChunnel(&fakeImpl{info: bertha.ImplInfo{
		Name: "testonly/fb", Type: "testonly",
	}}); err == nil {
		t.Error("duplicate registration accepted")
	}
}

type fakeImpl struct {
	info bertha.ImplInfo
}

func (f *fakeImpl) Info() bertha.ImplInfo { return f.info }
func (f *fakeImpl) Init(ctx context.Context, env *bertha.Env, args []wire.Value) error {
	return nil
}
func (f *fakeImpl) Teardown(ctx context.Context, env *bertha.Env) error { return nil }
func (f *fakeImpl) Wrap(ctx context.Context, conn bertha.Conn, args, params []wire.Value, side bertha.Side, env *bertha.Env) (bertha.Conn, error) {
	return conn, nil
}
