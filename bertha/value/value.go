// Package value exposes Bertha's serializable tagged value type, used
// for chunnel constructor arguments and negotiation parameters. Custom
// chunnel implementations accept and produce these values.
package value

import (
	"github.com/bertha-net/bertha/internal/wire"
)

// Value is a serializable tagged union (nil, bool, int, uint, float,
// string, bytes, list, map).
type Value = wire.Value

// Kind tags a Value's dynamic type.
type Kind = wire.Kind

// Constructors.
var (
	// Nil returns the nil value.
	Nil = wire.Nil
	// Bool wraps a boolean.
	Bool = wire.Bool
	// Int wraps a signed integer.
	Int = wire.Int
	// Uint wraps an unsigned integer.
	Uint = wire.Uint
	// Float wraps a float64.
	Float = wire.Float
	// Str wraps a string.
	Str = wire.Str
	// Bytes wraps a byte slice.
	Bytes = wire.BytesVal
	// List wraps a list of values.
	List = wire.List
	// Map wraps a string-keyed map of values.
	Map = wire.Map
)
