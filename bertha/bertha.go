// Package bertha is the public interface of the Bertha network API
// (Narayan et al., HotNets '20): a userspace connection library, similar
// in role to UNIX sockets, in which applications declare the
// communication-oriented functions of a connection as a DAG of Chunnels
// and the runtime binds each Chunnel to the best available
// implementation — host software fallback, kernel datapath, SmartNIC, or
// programmable switch — when the connection is established.
//
// Creating an endpoint mirrors the paper's §3.1 interface:
//
//	srv, err := bertha.New("my-kv-srv",
//	    bertha.Wrap(bertha.Shard(shards, shardFn), bertha.Reliable()))
//	listener, err := srv.Listen(ctx, baseListener)
//
// and a client that inherits the server's chunnels (Listing 5):
//
//	cli, err := bertha.New("client_conn", bertha.Wrap())
//	conn, err := cli.Connect(ctx, rawConn)
//
// Fallback implementations are registered when the application launches
// (Listing 5 line 2): RegisterStandard installs the fallbacks for every
// chunnel shipped in this repository. Accelerated implementations are
// registered with the discovery service by operators and offload
// developers, and picked up by negotiation with no application changes.
package bertha

import (
	"context"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/compress"
	"github.com/bertha-net/bertha/internal/chunnels/crypt"
	"github.com/bertha-net/bertha/internal/chunnels/framing"
	"github.com/bertha-net/bertha/internal/chunnels/lb"
	"github.com/bertha-net/bertha/internal/chunnels/localfast"
	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/chunnels/ordering"
	"github.com/bertha-net/bertha/internal/chunnels/reliable"
	"github.com/bertha-net/bertha/internal/chunnels/serialize"
	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/chunnels/traced"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/xdp"
)

// Core connection types (Table 1 glossary: these are the API's nouns).
type (
	// Conn is a connected, message-oriented Bertha connection.
	Conn = core.Conn
	// Listener accepts negotiated connections.
	Listener = core.Listener
	// Addr identifies an endpoint across transports.
	Addr = core.Addr
	// Dialer opens base-transport connections.
	Dialer = core.Dialer
	// Endpoint is the Bertha equivalent of a socket (§3.1).
	Endpoint = core.Endpoint
	// Option configures an Endpoint.
	Option = core.Option
	// Env is the execution environment handed to implementations.
	Env = core.Env
	// Registry holds chunnel implementations (Table 1 "Fallback Impl.").
	Registry = core.Registry
	// Impl is a chunnel implementation (Table 1 "Offload" when
	// accelerated, "Fallback Impl." when host software).
	Impl = core.Impl
	// ImplInfo describes an implementation.
	ImplInfo = core.ImplInfo
	// Policy ranks candidate implementations during negotiation (§4.3).
	Policy = core.Policy
	// Side distinguishes the connecting from the listening endpoint.
	Side = core.Side
	// DiscoveryClient is the runtime's view of the discovery service.
	DiscoveryClient = core.DiscoveryClient
	// CoalesceConfig parameterizes send-side coalescing (WithCoalescing).
	CoalesceConfig = core.CoalesceConfig
	// TraceConfig parameterizes in-band message tracing (WithTracing).
	TraceConfig = core.TraceConfig
	// HopStat is one layer's exclusive-latency rollup (ConnHopStats).
	HopStat = core.HopStat
	// ReactorConfig parameterizes the sharded reactor runtime
	// (WithReactor): the listener-side event-loop datapath.
	ReactorConfig = core.ReactorConfig
	// ReactorStats is a reactor listener's accounting snapshot
	// (connections, goroutines, ring occupancy, memory).
	ReactorStats = core.ReactorStats

	// Stack is a Chunnel DAG (Table 1 "Chunnel DAG").
	Stack = spec.Stack
	// Node is one chunnel in a DAG (Table 1 "Chunnel").
	Node = spec.Node
	// Scope constrains where a chunnel runs (Table 1 "Scope").
	Scope = spec.Scope
	// EndpointReq declares which sides must run a chunnel.
	EndpointReq = spec.Endpoint

	// FieldHash is the declarative shard function: hash of a fixed
	// payload field, modulo the shard count (Listing 4's shard_fn).
	FieldHash = xdp.FieldHash
)

// Scope values (bertha::scope::*).
const (
	ScopeAny         = spec.ScopeAny
	ScopeApplication = spec.ScopeApplication
	ScopeHost        = spec.ScopeHost
	ScopeLocalNet    = spec.ScopeLocalNet
	ScopeGlobal      = spec.ScopeGlobal
)

// Endpoint requirements (bertha::endpoints::*).
const (
	EndpointEither = spec.EndpointEither
	EndpointClient = spec.EndpointClient
	EndpointServer = spec.EndpointServer
	EndpointBoth   = spec.EndpointBoth
)

// New creates a connection endpoint — the equivalent of
// bertha::new(name, wrap!(...)).
func New(name string, stack *Stack, opts ...Option) (*Endpoint, error) {
	return core.NewEndpoint(name, stack, opts...)
}

// Wrap builds a Chunnel DAG from nodes in application-to-transport
// order: Wrap(a, b, c) is wrap!(a |> b |> c). Wrap() is the empty DAG a
// Listing 5 client uses to inherit the server's chunnels.
func Wrap(nodes ...Node) *Stack {
	return spec.Seq(nodes...)
}

// Select builds a branching node resolved during negotiation.
func Select(typ string, branches ...*Stack) Node {
	return spec.Select(typ, nil, branches...)
}

// Endpoint options, re-exported.
var (
	// WithRegistry uses an explicit registry instead of the default.
	WithRegistry = core.WithRegistry
	// WithDiscovery attaches a discovery client (§4.2).
	WithDiscovery = core.WithDiscovery
	// WithPolicy overrides the selection policy (§4.3).
	WithPolicy = core.WithPolicy
	// WithEnv supplies the execution environment.
	WithEnv = core.WithEnv
	// WithOptimizer enables §6 DAG optimization passes.
	WithOptimizer = core.WithOptimizer
	// WithTelemetry records this endpoint's metrics and negotiation
	// traces into an explicit telemetry registry instead of the
	// process-wide default (telemetry.Default()).
	WithTelemetry = core.WithTelemetry
	// WithCoalescing wraps the endpoint's connections in a send-side
	// coalescer: per-message sends under sustained load are gathered
	// into bursts that ride the vectored datapath, idle connections
	// keep the direct path. The zero CoalesceConfig selects the
	// defaults (50µs flush budget, 64-message bursts).
	WithCoalescing = core.WithCoalescing
	// WithTracing enables in-band message tracing on connections this
	// endpoint negotiates: sampled messages carry a 16-byte trace
	// context across the wire, every stack layer records spans into the
	// telemetry registry's flight-recorder ring, and the full journey is
	// queryable via the telemetry endpoint's ?spans= view. Both peers
	// must register the trace chunnel (RegisterStandard does); a peer
	// without it silently degrades to untraced connections. The zero
	// TraceConfig samples 1 in 128 messages into a 4096-span ring.
	WithTracing = core.WithTracing
	// WithReactor shapes the sharded reactor runtime of demultiplexing
	// datagram listeners this endpoint wraps: the number of reactor
	// goroutines draining the shared socket and the per-connection
	// receive-ring depth. The zero ReactorConfig selects the defaults
	// (GOMAXPROCS shards, 1024-slot rings). Listeners whose base
	// transport has no reactor (pipes) ignore it.
	WithReactor = core.WithReactor
)

// ConnHopStats reports a negotiated connection's per-layer exclusive
// send-latency rollup (outermost first), the attribution that tells an
// operator — or a renegotiation policy — which layer owns the latency.
// It needs tracing enabled (WithTracing) to have data to fold; without
// it, or on non-negotiated conns, it returns nil.
func ConnHopStats(conn Conn) []HopStat { return core.ConnHopStats(conn) }

// Flush pushes a coalescing connection's pending sends to the wire
// (WithCoalescing); on any other connection it is a no-op. Callers with
// a latency-critical message send it and then Flush.
func Flush(ctx context.Context, conn Conn) error {
	return core.Flush(ctx, conn)
}

// Policies, re-exported.
var (
	// DefaultPolicy prefers client-provided implementations, then
	// higher priority (the paper's prototype policy).
	DefaultPolicy = core.DefaultPolicy
	// PreferLocation prefers implementations at a location.
	PreferLocation = core.PreferLocation
	// PreferImpl pins a named implementation when available.
	PreferImpl = core.PreferImpl
	// PreferSide prefers implementations instantiated at a side.
	PreferSide = core.PreferSide
)

// Sides.
const (
	SideClient = core.SideClient
	SideServer = core.SideServer
)

// Implementation locations.
const (
	LocUserspace = core.LocUserspace
	LocKernel    = core.LocKernel
	LocSmartNIC  = core.LocSmartNIC
	LocSwitch    = core.LocSwitch
)

// DefaultRegistry returns the process-wide implementation registry.
func DefaultRegistry() *Registry { return core.DefaultRegistry() }

// NewRegistry returns an empty registry (endpoints with isolated
// implementation sets, mainly for tests and multi-tenant processes).
func NewRegistry() *Registry { return core.NewRegistry() }

// NewEnv returns an execution environment with a host identity.
func NewEnv(host string) *Env { return core.NewEnv(host) }

// NewOptimizer returns a §6 DAG optimizer over a registry's metadata.
func NewOptimizer(reg *Registry) *core.Optimizer { return core.NewOptimizer(reg) }

// RegisterChunnel registers a fallback implementation with the default
// registry — Listing 5 line 2:
//
//	bertha::register_chunnel("reliable", ReliableChunnel, endpoints::Both, scope::Application)
func RegisterChunnel(impl Impl) error {
	return core.DefaultRegistry().Register(impl)
}

// RegisterStandard installs the host-fallback implementations of every
// chunnel shipped with this repository into reg (the default registry
// when reg is nil): serialization, reliability, ordering, compression,
// encryption, framing, the local fast-path, sharding (server fallback),
// load balancing (both sides), ordered multicast (host sequencer), and
// the trace pseudo-chunnel (inert until an endpoint opts in with
// WithTracing).
func RegisterStandard(reg *Registry) {
	if reg == nil {
		reg = core.DefaultRegistry()
	}
	serialize.Register(reg)
	reliable.Register(reg)
	ordering.Register(reg)
	compress.Register(reg)
	crypt.Register(reg)
	framing.Register(reg)
	localfast.Register(reg)
	shard.RegisterServer(reg)
	lb.RegisterClient(reg)
	lb.RegisterServer(reg)
	mcast.RegisterHost(reg)
	traced.Register(reg)
}

// Chunnel DAG node constructors, one per shipped chunnel type.

// Serialize declares the serialization chunnel (§3.2): the connection
// carries typed objects encoded with the named format.
func Serialize() Node { return serialize.Node(serialize.FormatBincode) }

// Reliable declares the reliability chunnel (Listing 5's
// ReliableChunnel): exactly-once in-order delivery.
func Reliable() Node { return reliable.Node() }

// ReliableWith declares reliability with an explicit window and
// retransmission timeout.
func ReliableWith(window int, rto time.Duration) Node {
	return reliable.NodeWith(window, rto)
}

// Ordered declares in-order (but not reliable) delivery.
func Ordered() Node { return ordering.Node() }

// Compress declares per-message compression at the given DEFLATE level.
func Compress(level int) Node { return compress.Node(level) }

// Encrypt declares AES-GCM encryption with a pre-shared key.
func Encrypt(key []byte) Node { return crypt.Node(key) }

// HTTP2 declares stream framing with the given maximum frame size.
func HTTP2(maxFrame int) Node { return framing.Node(maxFrame) }

// LocalOrRemote declares the container fast-path of Listing 1: IPC when
// the peer is host-local, datagrams otherwise.
func LocalOrRemote() Node { return localfast.Node() }

// Shard declares the sharding chunnel of Listing 4: requests steered
// among shard addresses by a declarative shard function.
func Shard(shards []Addr, fn FieldHash) Node { return shard.Node(shards, fn) }

// LB declares the load-balancing chunnel over backend addresses.
func LB(backends []Addr) Node { return lb.Node(backends) }

// OrderedMcast declares the ordered multicast chunnel of Listing 2 for
// a replica group.
func OrderedMcast(group string, replicaHosts []string) Node {
	return mcast.Node(group, replicaHosts)
}
