package xdp

import (
	"context"
	"hash/fnv"
	"sync"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// RxPath pumps a base connection's receive stream through a hook and
// routes packets by verdict:
//
//   - Pass    → delivered through PassConn (the normal userspace path)
//   - Redirect→ pushed to the selected redirect queue
//   - Tx      → sent back out the base connection
//   - Drop    → discarded
//
// This is the simulated equivalent of attaching an XDP program to the
// NIC the base connection reads from: redirected packets never cross the
// userspace boundary.
type RxPath struct {
	base   core.Conn
	hook   *Hook
	queues []chan []byte
	pass   chan []byte

	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
}

// queueLen is the per-queue buffered packet capacity; overflow drops
// (datagram semantics, like a full NIC ring).
const queueLen = 4096

// NewRxPath starts the receive pump on base with nqueues redirect
// queues. Close the RxPath (not base directly) to stop.
func NewRxPath(base core.Conn, hook *Hook, nqueues int) *RxPath {
	ctx, cancel := context.WithCancel(context.Background())
	r := &RxPath{
		base:   base,
		hook:   hook,
		queues: make([]chan []byte, nqueues),
		pass:   make(chan []byte, queueLen),
		cancel: cancel,
		done:   make(chan struct{}),
	}
	for i := range r.queues {
		r.queues[i] = make(chan []byte, queueLen)
	}
	go r.pump(ctx)
	return r
}

// pump drains the base connection in MaxBurst-sized bursts: one
// vectored receive fills the burst (blocking only for the first
// packet), one RunBurst call produces every verdict, and one routing
// pass disposes of them. Received buffers are detached — queue
// consumers hold plain []byte with no pool obligations.
func (r *RxPath) pump(ctx context.Context) {
	defer close(r.done)
	var (
		bufs     [MaxBurst]*wire.Buf
		pkts     [MaxBurst]Packet
		verdicts [MaxBurst]Verdict
	)
	for {
		n, err := core.RecvBufs(ctx, r.base, bufs[:])
		if err != nil {
			return
		}
		for i := 0; i < n; i++ {
			pkts[i] = Packet{Data: bufs[i].Detach()}
			bufs[i] = nil
		}
		r.hook.RunBurst(pkts[:n], verdicts[:n])
		for i := 0; i < n; i++ {
			pkt := &pkts[i]
			switch verdicts[i] {
			case Pass:
				select {
				case r.pass <- pkt.Data:
				default: // queue full: drop
				}
			case Redirect:
				q := pkt.RedirectQueue()
				if q >= 0 && q < len(r.queues) {
					select {
					case r.queues[q] <- pkt.Data:
					default: // ring full: drop
					}
				}
			case Tx:
				// Bounce back out the interface (best effort).
				_ = r.base.Send(ctx, pkt.Data)
			case Drop, Aborted:
				// Discarded.
			}
			pkt.Data = nil
		}
	}
}

// Queue returns the i-th redirect queue. Receivers consume raw packets.
func (r *RxPath) Queue(i int) <-chan []byte { return r.queues[i] }

// Send transmits a packet out the base connection — how a shard worker
// consuming a redirect queue answers clients without re-traversing the
// stack.
func (r *RxPath) Send(ctx context.Context, p []byte) error {
	return r.base.Send(ctx, p)
}

// PassConn returns the userspace view of the path: a core.Conn whose
// Recv yields only packets the program passed up the stack.
func (r *RxPath) PassConn() core.Conn {
	return &passConn{r: r}
}

// Close stops the pump and closes the base connection.
func (r *RxPath) Close() error {
	var err error
	r.once.Do(func() {
		r.cancel()
		err = r.base.Close()
		<-r.done
	})
	return err
}

type passConn struct {
	r *RxPath
}

func (c *passConn) Send(ctx context.Context, p []byte) error {
	return c.r.base.Send(ctx, p)
}

func (c *passConn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case p := <-c.r.pass:
		return p, nil
	case <-c.r.done:
		// Drain anything the pump left behind before reporting closed.
		select {
		case p := <-c.r.pass:
			return p, nil
		default:
			return nil, core.ErrClosed
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *passConn) LocalAddr() core.Addr  { return c.r.base.LocalAddr() }
func (c *passConn) RemoteAddr() core.Addr { return c.r.base.RemoteAddr() }
func (c *passConn) Close() error          { return c.r.Close() }

// FieldHash is the declarative shard-function specification used by the
// stock steering program: shard = fnv1a(payload[Offset:Offset+Length]) %
// Shards. It matches the paper's Listing 4 example
// (hash(p.payload[10..14]) % 3) and, unlike an opaque Go closure, can be
// shipped to a remote or offloaded implementation during negotiation.
type FieldHash struct {
	// Offset is the byte offset of the key field within the payload.
	Offset int
	// Length is the field length in bytes (0 means "to end of payload").
	Length int
	// Shards is the modulus.
	Shards int
}

// Apply computes the shard index for a payload. Packets shorter than the
// field hash whatever bytes exist past Offset; packets shorter than
// Offset map to shard 0.
func (f FieldHash) Apply(payload []byte) int {
	if f.Shards <= 1 {
		return 0
	}
	if f.Offset >= len(payload) {
		return 0
	}
	end := len(payload)
	if f.Length > 0 && f.Offset+f.Length < end {
		end = f.Offset + f.Length
	}
	h := fnv.New32a()
	h.Write(payload[f.Offset:end])
	return int(h.Sum32() % uint32(f.Shards))
}

// Counter map slot names used by SteerProgram.
const (
	// MapRxCount is the array map counting processed packets per shard.
	MapRxCount = "rx_count"
)

// SteerProgram builds the stock sharding program: redirect each packet to
// queue FieldHash(payload), counting per-shard packets in the rx_count
// array map — the Go analog of the paper's 200-line XDP sharding program.
func SteerProgram(name string, fh FieldHash) *Program {
	p := &Program{Name: name}
	p.Fn = func(m *MapSet, pkt *Packet) Verdict {
		shard := fh.Apply(pkt.Data)
		m.Array(MapRxCount, fh.Shards).Add(shard, 1)
		pkt.SetRedirect(shard)
		return Redirect
	}
	return p
}
