package xdp

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/transport"
)

func TestVerdictNames(t *testing.T) {
	for v := Pass; v <= Aborted; v++ {
		if len(v.String()) == 0 || v.String()[0] == 'V' {
			t.Errorf("verdict %d missing name: %s", v, v)
		}
	}
	if Verdict(99).String() != "Verdict(99)" {
		t.Error("unknown verdict rendering")
	}
}

func TestArrayMap(t *testing.T) {
	a := NewArrayMap(4)
	if a.Len() != 4 {
		t.Fatalf("len %d", a.Len())
	}
	a.Set(1, 10)
	if a.Get(1) != 10 {
		t.Error("set/get")
	}
	if a.Add(1, 5) != 15 || a.Get(1) != 15 {
		t.Error("add")
	}
	// Out-of-range access mirrors failed BPF lookups: no panic.
	if a.Get(-1) != 0 || a.Get(99) != 0 {
		t.Error("oob get")
	}
	a.Set(99, 1)
	if a.Add(99, 1) != 0 {
		t.Error("oob add")
	}
	if NewArrayMap(0).Len() != 1 {
		t.Error("minimum size")
	}
}

func TestHashMap(t *testing.T) {
	h := NewHashMap()
	h.Put([]byte("k"), []byte("v1"))
	got, ok := h.Get([]byte("k"))
	if !ok || string(got) != "v1" {
		t.Fatal("put/get")
	}
	// Values are copies: mutation must not leak in either direction.
	got[0] = 'X'
	if again, _ := h.Get([]byte("k")); string(again) != "v1" {
		t.Error("Get must return a copy")
	}
	src := []byte("v2")
	h.Put([]byte("k2"), src)
	src[0] = 'X'
	if v, _ := h.Get([]byte("k2")); string(v) != "v2" {
		t.Error("Put must copy")
	}
	if h.Len() != 2 {
		t.Errorf("len %d", h.Len())
	}
	h.Delete([]byte("k"))
	if _, ok := h.Get([]byte("k")); ok {
		t.Error("delete")
	}
}

func TestMapSetNamedAccess(t *testing.T) {
	m := NewMapSet()
	a1 := m.Array("counts", 3)
	a2 := m.Array("counts", 999) // size ignored on reopen
	if a1 != a2 || a1.Len() != 3 {
		t.Error("array map identity")
	}
	h1 := m.Hash("table")
	h2 := m.Hash("table")
	if h1 != h2 {
		t.Error("hash map identity")
	}
}

func TestHookAttachDetach(t *testing.T) {
	h := NewHook("xdp:eth0")
	if _, ok := h.Attached(); ok {
		t.Error("fresh hook should be empty")
	}
	// No program: everything passes.
	if v := h.Run(&Packet{Data: []byte("x")}); v != Pass {
		t.Errorf("no-program verdict: %s", v)
	}
	prog := &Program{Name: "drop-all", Fn: func(m *MapSet, p *Packet) Verdict { return Drop }}
	if err := h.Attach(prog); err != nil {
		t.Fatal(err)
	}
	if name, ok := h.Attached(); !ok || name != "drop-all" {
		t.Error("attached name")
	}
	if err := h.Attach(prog); err == nil {
		t.Error("double attach should fail")
	}
	if v := h.Run(&Packet{Data: []byte("x")}); v != Drop {
		t.Errorf("verdict: %s", v)
	}
	st := h.Stats()
	if st.Processed != 1 || st.Dropped != 1 {
		t.Errorf("stats: %+v", st)
	}
	if err := h.Detach(); err != nil {
		t.Fatal(err)
	}
	if err := h.Detach(); err == nil {
		t.Error("double detach should fail")
	}
	if err := h.Attach(&Program{Name: "nil"}); err == nil {
		t.Error("nil-fn program should be rejected")
	}
}

func TestHookFaultingProgramAborts(t *testing.T) {
	h := NewHook("xdp:eth0")
	h.Attach(&Program{Name: "crash", Fn: func(m *MapSet, p *Packet) Verdict {
		panic("bad program")
	}})
	if v := h.Run(&Packet{Data: []byte("x")}); v != Aborted {
		t.Errorf("verdict: %s", v)
	}
	if h.Stats().Aborted != 1 {
		t.Errorf("stats: %+v", h.Stats())
	}
	// Unknown verdict values are also aborted.
	h.Detach()
	h.Attach(&Program{Name: "weird", Fn: func(m *MapSet, p *Packet) Verdict { return Verdict(42) }})
	if v := h.Run(&Packet{Data: []byte("x")}); v != Aborted {
		t.Errorf("verdict: %s", v)
	}
}

func TestFieldHashApply(t *testing.T) {
	fh := FieldHash{Offset: 2, Length: 4, Shards: 3}
	payload := []byte{0, 1, 'k', 'e', 'y', '1', 9, 9}
	got := fh.Apply(payload)
	if got < 0 || got >= 3 {
		t.Fatalf("out of range: %d", got)
	}
	// Deterministic.
	for i := 0; i < 10; i++ {
		if fh.Apply(payload) != got {
			t.Fatal("non-deterministic")
		}
	}
	// Same key bytes, different surroundings: same shard.
	other := []byte{7, 7, 'k', 'e', 'y', '1', 0, 0}
	if fh.Apply(other) != got {
		t.Error("shard must depend only on the key field")
	}
	// Short packets.
	if fh.Apply([]byte{1}) != 0 {
		t.Error("short packet maps to shard 0")
	}
	if fh.Apply(nil) != 0 {
		t.Error("empty packet maps to shard 0")
	}
	// Truncated field hashes what exists.
	if v := fh.Apply([]byte{0, 1, 'k'}); v < 0 || v >= 3 {
		t.Error("truncated field")
	}
	// Degenerate configs.
	if (FieldHash{Shards: 1}).Apply(payload) != 0 {
		t.Error("single shard")
	}
	if (FieldHash{Shards: 0}).Apply(payload) != 0 {
		t.Error("zero shards")
	}
}

func TestQuickFieldHashInRange(t *testing.T) {
	f := func(payload []byte, off, length uint8, shards uint8) bool {
		fh := FieldHash{Offset: int(off), Length: int(length), Shards: int(shards)}
		got := fh.Apply(payload)
		if fh.Shards <= 1 {
			return got == 0
		}
		return got >= 0 && got < fh.Shards
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSteerProgramDistributionAndCounts(t *testing.T) {
	fh := FieldHash{Offset: 0, Length: 8, Shards: 3}
	prog := SteerProgram("steer", fh)
	h := NewHook("xdp:eth0")
	h.Attach(prog)

	perShard := map[int]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		pkt := Packet{Data: []byte(fmt.Sprintf("key%05d", i))}
		if v := h.Run(&pkt); v != Redirect {
			t.Fatalf("verdict: %s", v)
		}
		perShard[pkt.RedirectQueue()]++
	}
	if len(perShard) != 3 {
		t.Fatalf("shards used: %v", perShard)
	}
	for s, c := range perShard {
		if c < n/6 || c > n/2 {
			t.Errorf("shard %d badly balanced: %d of %d", s, c, n)
		}
	}
	counts := prog.Maps.Array(MapRxCount, 3)
	total := counts.Get(0) + counts.Get(1) + counts.Get(2)
	if total != n {
		t.Errorf("rx_count total %d, want %d", total, n)
	}
	if h.Stats().Redirected != n {
		t.Errorf("hook stats: %+v", h.Stats())
	}
}

func TestRxPathRouting(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	near, far := transport.Pipe(core.Addr{Addr: "nic"}, core.Addr{Addr: "wire"}, 64)
	hook := NewHook("xdp:sim0")
	// Route by first byte: 'P' pass, 'D' drop, 'T' tx, else redirect to
	// queue data[0]%2.
	hook.Attach(&Program{Name: "router", Fn: func(m *MapSet, p *Packet) Verdict {
		if len(p.Data) == 0 {
			return Drop
		}
		switch p.Data[0] {
		case 'P':
			return Pass
		case 'D':
			return Drop
		case 'T':
			p.Data[0] = 't' // rewrite before bounce
			return Tx
		default:
			p.SetRedirect(int(p.Data[0]) % 2)
			return Redirect
		}
	}})
	rx := NewRxPath(near, hook, 2)
	defer rx.Close()
	pass := rx.PassConn()

	// Pass path.
	far.Send(ctx, []byte("P hello"))
	if m, err := pass.Recv(ctx); err != nil || string(m) != "P hello" {
		t.Fatalf("pass: %q %v", m, err)
	}
	// Tx path: rewritten packet comes back to the far side.
	far.Send(ctx, []byte("T bounce"))
	if m, err := far.Recv(ctx); err != nil || string(m) != "t bounce" {
		t.Fatalf("tx: %q %v", m, err)
	}
	// Redirect path: byte 0x00 -> queue 0, 0x01 -> queue 1.
	far.Send(ctx, []byte{0x00, 'a'})
	far.Send(ctx, []byte{0x01, 'b'})
	select {
	case m := <-rx.Queue(0):
		if m[1] != 'a' {
			t.Errorf("queue0: %v", m)
		}
	case <-ctx.Done():
		t.Fatal("queue0 timeout")
	}
	select {
	case m := <-rx.Queue(1):
		if m[1] != 'b' {
			t.Errorf("queue1: %v", m)
		}
	case <-ctx.Done():
		t.Fatal("queue1 timeout")
	}
	// Drop path: nothing arrives anywhere; verify via stats.
	far.Send(ctx, []byte("D gone"))
	deadline := time.Now().Add(2 * time.Second)
	for hook.Stats().Dropped == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if hook.Stats().Dropped != 1 {
		t.Errorf("drop stats: %+v", hook.Stats())
	}
	// Worker reply path.
	if err := rx.Send(ctx, []byte("reply")); err != nil {
		t.Fatal(err)
	}
	if m, err := far.Recv(ctx); err != nil || string(m) != "reply" {
		t.Fatalf("reply: %q %v", m, err)
	}
}

func TestRxPathCloseUnblocksPassConn(t *testing.T) {
	near, _ := transport.Pipe(core.Addr{}, core.Addr{}, 4)
	hook := NewHook("x")
	rx := NewRxPath(near, hook, 1)
	pass := rx.PassConn()
	done := make(chan error, 1)
	go func() {
		_, err := pass.Recv(context.Background())
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	rx.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("recv after close returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("PassConn.Recv did not unblock on close")
	}
	if err := rx.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestRxPathConcurrentShardConsumers(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	near, far := transport.Pipe(core.Addr{}, core.Addr{}, 1024)
	hook := NewHook("xdp:kv")
	fh := FieldHash{Offset: 0, Length: 4, Shards: 3}
	hook.Attach(SteerProgram("steer", fh))
	rx := NewRxPath(near, hook, 3)
	defer rx.Close()

	const n = 300
	var wg sync.WaitGroup
	var mu sync.Mutex
	received := 0
	stop := make(chan struct{})
	var stopOnce sync.Once
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for {
				select {
				case pkt := <-rx.Queue(q):
					if want := fh.Apply(pkt); want != q {
						t.Errorf("packet %q on queue %d, want %d", pkt, q, want)
					}
					mu.Lock()
					received++
					done := received == n
					mu.Unlock()
					if done {
						stopOnce.Do(func() { close(stop) })
						return
					}
				case <-stop:
					return
				case <-ctx.Done():
					return
				}
			}
		}(q)
	}
	for i := 0; i < n; i++ {
		if err := far.Send(ctx, []byte(fmt.Sprintf("%04d-payload", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if received != n {
		t.Errorf("received %d of %d", received, n)
	}
}
