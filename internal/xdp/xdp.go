// Package xdp simulates an XDP-style kernel datapath in pure Go: small
// programs attached to a receive hook examine each arriving packet before
// the userspace stack sees it and return a verdict — pass it up, drop it,
// bounce it back out the interface, or redirect it to a queue.
//
// The paper's sharding evaluation (§5, Figure 5) uses a 200-line XDP
// program in C that steers key-value requests to the right shard before
// they reach the server process. This package reproduces the programming
// model (programs, maps, verdicts, per-program statistics mirroring
// BPF's) and — critically for the experiment's shape — its cost model:
// a redirect happens in the receive path with no re-serialization and no
// extra traversal of the network stack, whereas a userspace fallback must
// receive, decode, re-encode, and re-send.
//
// Substitution note (DESIGN.md §1): programs are Go functions rather than
// verified BPF bytecode; the architectural slot (examine-and-steer below
// the userspace boundary) is what the experiments exercise.
package xdp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/telemetry"
)

// Verdict is a program's decision for one packet.
type Verdict uint8

// Verdicts, mirroring XDP_PASS / XDP_DROP / XDP_TX / XDP_REDIRECT.
const (
	// Pass delivers the packet up the normal stack.
	Pass Verdict = iota
	// Drop discards the packet.
	Drop
	// Tx transmits the (possibly rewritten) packet back out the hook's
	// interface.
	Tx
	// Redirect delivers the packet to the queue selected with
	// Packet.SetRedirect.
	Redirect
	// Aborted indicates a program error; the packet is dropped and the
	// abort counter incremented.
	Aborted
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Pass:
		return "PASS"
	case Drop:
		return "DROP"
	case Tx:
		return "TX"
	case Redirect:
		return "REDIRECT"
	case Aborted:
		return "ABORTED"
	default:
		return fmt.Sprintf("Verdict(%d)", uint8(v))
	}
}

// Packet is the program's view of one in-flight packet. Programs may
// rewrite Data in place (e.g. port rewriting) but must keep datagram
// boundaries.
type Packet struct {
	// Data is the packet payload as received.
	Data []byte
	// queue is the redirect target selected by the program.
	queue int
}

// SetRedirect selects the redirect queue; the program should then return
// Redirect.
func (p *Packet) SetRedirect(queue int) { p.queue = queue }

// RedirectQueue returns the selected redirect target.
func (p *Packet) RedirectQueue() int { return p.queue }

// ProgramFn is the body of an XDP program: examine (and possibly rewrite)
// the packet, consult maps, return a verdict.
type ProgramFn func(m *MapSet, pkt *Packet) Verdict

// Program pairs a program body with its maps, like a loaded BPF object.
type Program struct {
	// Name identifies the program in statistics and configuration logs.
	Name string
	// Fn is the program body.
	Fn ProgramFn
	// Maps is the program's map set (created on first use when nil).
	Maps *MapSet
}

// ensureMaps lazily allocates the map set.
func (p *Program) ensureMaps() *MapSet {
	if p.Maps == nil {
		p.Maps = NewMapSet()
	}
	return p.Maps
}

// MapSet holds a program's named maps, the analog of a BPF object's .maps
// section.
type MapSet struct {
	mu     sync.RWMutex
	arrays map[string]*ArrayMap
	hashes map[string]*HashMap
}

// NewMapSet returns an empty map set.
func NewMapSet() *MapSet {
	return &MapSet{arrays: map[string]*ArrayMap{}, hashes: map[string]*HashMap{}}
}

// Array returns the named array map, creating it with the given size on
// first access. Subsequent accesses ignore size.
func (m *MapSet) Array(name string, size int) *ArrayMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.arrays[name]
	if !ok {
		a = NewArrayMap(size)
		m.arrays[name] = a
	}
	return a
}

// Hash returns the named hash map, creating it on first access.
func (m *MapSet) Hash(name string) *HashMap {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hashes[name]
	if !ok {
		h = NewHashMap()
		m.hashes[name] = h
	}
	return h
}

// ArrayMap is a fixed-size array of uint64 slots with atomic access —
// the BPF_MAP_TYPE_ARRAY analog (e.g. packet counters).
type ArrayMap struct {
	slots []atomic.Uint64
}

// NewArrayMap returns an array map with n slots (minimum 1).
func NewArrayMap(n int) *ArrayMap {
	if n < 1 {
		n = 1
	}
	return &ArrayMap{slots: make([]atomic.Uint64, n)}
}

// Len returns the slot count.
func (a *ArrayMap) Len() int { return len(a.slots) }

// Get reads slot i (0 when out of range, mirroring a failed lookup).
func (a *ArrayMap) Get(i int) uint64 {
	if i < 0 || i >= len(a.slots) {
		return 0
	}
	return a.slots[i].Load()
}

// Set writes slot i; out-of-range writes are ignored.
func (a *ArrayMap) Set(i int, v uint64) {
	if i >= 0 && i < len(a.slots) {
		a.slots[i].Store(v)
	}
}

// Add atomically adds delta to slot i and returns the new value.
func (a *ArrayMap) Add(i int, delta uint64) uint64 {
	if i < 0 || i >= len(a.slots) {
		return 0
	}
	return a.slots[i].Add(delta)
}

// HashMap is a bytes-keyed map with copy-on-write values — the
// BPF_MAP_TYPE_HASH analog.
type HashMap struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewHashMap returns an empty hash map.
func NewHashMap() *HashMap { return &HashMap{m: map[string][]byte{}} }

// Get returns a copy of the value for key.
func (h *HashMap) Get(key []byte) ([]byte, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	v, ok := h.m[string(key)]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stores a copy of value under key.
func (h *HashMap) Put(key, value []byte) {
	v := make([]byte, len(value))
	copy(v, value)
	h.mu.Lock()
	h.m[string(key)] = v
	h.mu.Unlock()
}

// Delete removes key.
func (h *HashMap) Delete(key []byte) {
	h.mu.Lock()
	delete(h.m, string(key))
	h.mu.Unlock()
}

// Len returns the entry count.
func (h *HashMap) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.m)
}

// Stats counts per-verdict packet dispositions for an attached program,
// the analog of bpftool prog stats.
type Stats struct {
	Processed  atomic.Uint64
	Passed     atomic.Uint64
	Dropped    atomic.Uint64
	Txed       atomic.Uint64
	Redirected atomic.Uint64
	Aborted    atomic.Uint64
}

// Snapshot returns a plain-value copy.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Processed:  s.Processed.Load(),
		Passed:     s.Passed.Load(),
		Dropped:    s.Dropped.Load(),
		Txed:       s.Txed.Load(),
		Redirected: s.Redirected.Load(),
		Aborted:    s.Aborted.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	Processed, Passed, Dropped, Txed, Redirected, Aborted uint64
}

// Hook errors.
var (
	// ErrProgramAttached indicates the hook already has a program.
	ErrProgramAttached = errors.New("xdp: program already attached")
	// ErrNoProgram indicates Detach on an empty hook.
	ErrNoProgram = errors.New("xdp: no program attached")
)

// Hook is an attachment point in a receive path (one per simulated
// interface). At most one program is attached at a time, mirroring
// driver-mode XDP.
type Hook struct {
	// Name identifies the hook, e.g. "xdp:eth0".
	Name string

	mu    sync.RWMutex
	prog  *Program
	stats *Stats
}

// NewHook returns an empty hook.
func NewHook(name string) *Hook { return &Hook{Name: name} }

// Attach loads a program onto the hook.
func (h *Hook) Attach(p *Program) error {
	if p == nil || p.Fn == nil {
		return errors.New("xdp: nil program")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.prog != nil {
		return fmt.Errorf("%w: %s has %s", ErrProgramAttached, h.Name, h.prog.Name)
	}
	p.ensureMaps()
	h.prog = p
	h.stats = &Stats{}
	return nil
}

// Detach unloads the current program.
func (h *Hook) Detach() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.prog == nil {
		return fmt.Errorf("%w: %s", ErrNoProgram, h.Name)
	}
	h.prog = nil
	return nil
}

// Attached reports whether a program is loaded and its name.
func (h *Hook) Attached() (string, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.prog == nil {
		return "", false
	}
	return h.prog.Name, true
}

// RegisterTelemetry publishes the hook's per-verdict counters as probes
// in reg, named "xdp/<hook name>/<verdict>". Stats() remains the
// bpftool-style direct readout; the probes surface the same counters in
// the process snapshot (/debug/bertha) without a second set of atomics
// on the datapath. Probes read the *current* program's stats; after a
// detach/attach cycle they follow the new program, like bpftool.
func (h *Hook) RegisterTelemetry(reg *telemetry.Registry) {
	read := func(pick func(StatsSnapshot) uint64) func() uint64 {
		return func() uint64 { return pick(h.Stats()) }
	}
	prefix := "xdp/" + h.Name + "/"
	reg.RegisterProbe(prefix+"processed", read(func(s StatsSnapshot) uint64 { return s.Processed }))
	reg.RegisterProbe(prefix+"pass", read(func(s StatsSnapshot) uint64 { return s.Passed }))
	reg.RegisterProbe(prefix+"drop", read(func(s StatsSnapshot) uint64 { return s.Dropped }))
	reg.RegisterProbe(prefix+"tx", read(func(s StatsSnapshot) uint64 { return s.Txed }))
	reg.RegisterProbe(prefix+"redirect", read(func(s StatsSnapshot) uint64 { return s.Redirected }))
	reg.RegisterProbe(prefix+"aborted", read(func(s StatsSnapshot) uint64 { return s.Aborted }))
}

// Stats returns the current program's statistics (zero snapshot when no
// program is attached).
func (h *Hook) Stats() StatsSnapshot {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.stats == nil {
		return StatsSnapshot{}
	}
	return h.stats.Snapshot()
}

// runProg executes the program body on one packet, converting panics to
// Aborted (a faulting program must not take down the datapath).
func runProg(prog *Program, pkt *Packet) (v Verdict) {
	defer func() {
		if recover() != nil {
			v = Aborted
		}
	}()
	return prog.Fn(prog.Maps, pkt)
}

// Run executes the attached program on one packet and returns the verdict
// (Pass when no program is attached, mirroring an interface with no XDP
// program). The packet's Data may have been rewritten in place.
func (h *Hook) Run(pkt *Packet) Verdict {
	h.mu.RLock()
	prog, stats := h.prog, h.stats
	h.mu.RUnlock()
	if prog == nil {
		return Pass
	}
	stats.Processed.Add(1)
	v := runProg(prog, pkt)
	switch v {
	case Pass:
		stats.Passed.Add(1)
	case Drop:
		stats.Dropped.Add(1)
	case Tx:
		stats.Txed.Add(1)
	case Redirect:
		stats.Redirected.Add(1)
	default:
		stats.Aborted.Add(1)
		v = Aborted
	}
	return v
}

// MaxBurst is the largest packet burst RunBurst (and the RxPath pump)
// processes per program snapshot and statistics pass.
const MaxBurst = 64

// RunBurst executes the attached program on every packet in pkts,
// writing each packet's verdict into verdicts (which must be at least
// len(pkts) long). The program snapshot is taken once for the burst and
// per-verdict statistics are tallied locally, then added to the shared
// atomics in a single pass — a burst costs one RLock and at most six
// atomic adds however many packets it carries. With no program attached
// every packet Passes.
func (h *Hook) RunBurst(pkts []Packet, verdicts []Verdict) {
	h.mu.RLock()
	prog, stats := h.prog, h.stats
	h.mu.RUnlock()
	if prog == nil {
		for i := range pkts {
			verdicts[i] = Pass
		}
		return
	}
	var passed, dropped, txed, redirected, aborted uint64
	for i := range pkts {
		v := runProg(prog, &pkts[i])
		switch v {
		case Pass:
			passed++
		case Drop:
			dropped++
		case Tx:
			txed++
		case Redirect:
			redirected++
		default:
			aborted++
			v = Aborted
		}
		verdicts[i] = v
	}
	stats.Processed.Add(uint64(len(pkts)))
	if passed > 0 {
		stats.Passed.Add(passed)
	}
	if dropped > 0 {
		stats.Dropped.Add(dropped)
	}
	if txed > 0 {
		stats.Txed.Add(txed)
	}
	if redirected > 0 {
		stats.Redirected.Add(redirected)
	}
	if aborted > 0 {
		stats.Aborted.Add(aborted)
	}
}
