package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPercentileExactValues(t *testing.T) {
	r := NewRecorder(0)
	for i := 1; i <= 100; i++ {
		r.RecordMicros(float64(i))
	}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 100}, {50, 50.5}, {25, 25.75}, {75, 75.25},
	}
	for _, c := range cases {
		if got := r.Percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%.0f = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleSample(t *testing.T) {
	r := NewRecorder(0)
	r.Record(42 * time.Microsecond)
	for _, p := range []float64{0, 5, 50, 95, 100} {
		if got := r.Percentile(p); got != 42 {
			t.Errorf("p%.0f = %g, want 42", p, got)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	r := NewRecorder(0)
	if !math.IsNaN(r.Percentile(50)) || !math.IsNaN(r.Mean()) {
		t.Error("empty recorder should return NaN")
	}
	s := r.Summarize()
	if s.Count != 0 || !math.IsNaN(s.P50) {
		t.Error("empty summary")
	}
}

func TestRecorderInterleavedRecordAndQuery(t *testing.T) {
	r := NewRecorder(0)
	r.RecordMicros(10)
	if r.Percentile(50) != 10 {
		t.Fatal("first query")
	}
	r.RecordMicros(30)
	r.RecordMicros(20) // out of order: sort flag must reset
	if got := r.Percentile(100); got != 30 {
		t.Errorf("max after re-record = %g, want 30", got)
	}
	if got := r.Percentile(0); got != 10 {
		t.Errorf("min after re-record = %g, want 10", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.RecordMicros(float64(i))
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Errorf("count = %d, want 8000", r.Count())
	}
}

func TestMergeAndSummary(t *testing.T) {
	a, b := NewRecorder(0), NewRecorder(0)
	for i := 0; i < 50; i++ {
		a.RecordMicros(float64(i))
		b.RecordMicros(float64(i + 50))
	}
	a.Merge(b)
	s := a.Summarize()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Mean != 49.5 {
		t.Errorf("mean %g", s.Mean)
	}
	if s.P50 != 49.5 {
		t.Errorf("p50 %g", s.P50)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Errorf("summary string: %s", s.String())
	}
}

// Property: interpolated percentile lies within [min, max] and is monotone
// in p; p0/p100 equal exact min/max.
func TestQuickPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		n := 1 + rng.Intn(200)
		r := NewRecorder(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
			r.RecordMicros(vals[i])
		}
		sort.Float64s(vals)
		if r.Percentile(0) != vals[0] || r.Percentile(100) != vals[n-1] {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := r.Percentile(p)
			if v < prev || v < vals[0] || v > vals[n-1] {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the interpolated percentile is close to the nearest-rank value
// for large n.
func TestQuickPercentileVsNearestRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		n := 100 + rng.Intn(400)
		r := NewRecorder(n)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 100
			r.RecordMicros(vals[i])
		}
		sort.Float64s(vals)
		for _, p := range []float64{5, 25, 50, 75, 95} {
			idx := int(p / 100 * float64(n-1))
			got := r.Percentile(p)
			// Interpolated value must lie between neighbors of the rank.
			lo, hi := vals[idx], vals[minInt(idx+1, n-1)]
			if got < lo-1e-9 || got > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestTimeSeriesBinning(t *testing.T) {
	start := time.Unix(0, 0)
	ts := NewTimeSeries(start)
	// Seconds 0–3: 100µs latency; seconds 4–7: 10µs (the Figure 4 shape).
	for s := 0; s < 8; s++ {
		lat := 100 * time.Microsecond
		if s >= 4 {
			lat = 10 * time.Microsecond
		}
		for k := 0; k < 5; k++ {
			ts.RecordAt(start.Add(time.Duration(s)*time.Second+time.Duration(k)*100*time.Millisecond), lat)
		}
	}
	bins := ts.Bin(8*time.Second, time.Second)
	if len(bins) != 8 {
		t.Fatalf("bins = %d", len(bins))
	}
	for i := 0; i < 4; i++ {
		if bins[i] != 100 {
			t.Errorf("bin %d = %g, want 100", i, bins[i])
		}
	}
	for i := 4; i < 8; i++ {
		if bins[i] != 10 {
			t.Errorf("bin %d = %g, want 10", i, bins[i])
		}
	}
}

func TestTimeSeriesEmptyBinsAndOutOfRange(t *testing.T) {
	start := time.Unix(0, 0)
	ts := NewTimeSeries(start)
	ts.RecordAt(start.Add(500*time.Millisecond), time.Microsecond)
	ts.RecordAt(start.Add(100*time.Second), time.Microsecond) // beyond range: ignored
	bins := ts.Bin(3*time.Second, time.Second)
	if len(bins) != 3 {
		t.Fatalf("bins = %d", len(bins))
	}
	if bins[0] != 1 {
		t.Errorf("bin 0 = %g", bins[0])
	}
	if !math.IsNaN(bins[1]) || !math.IsNaN(bins[2]) {
		t.Error("empty bins should be NaN")
	}
}

func TestTimeSeriesBinPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero width")
		}
	}()
	NewTimeSeries(time.Now()).Bin(time.Second, 0)
}

func TestTableRender(t *testing.T) {
	tb := NewTable("latency", "scenario", "p50", "p95")
	tb.AddRow("client-push", 12.5, 30.0)
	tb.AddRow("fallback", 99.0, 250.25)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"## latency", "scenario", "client-push", "12.5", "250.2", "fallback"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if len(tb.Rows()) != 2 {
		t.Errorf("rows = %d", len(tb.Rows()))
	}
}

// TestTableFloatGolden pins the width-aware float rendering: small
// values keep the one-decimal form, values past seven integer digits
// switch to scientific notation instead of blowing out their column,
// and non-finite values render as names.
func TestTableFloatGolden(t *testing.T) {
	tb := NewTable("counters", "name", "value")
	tb.AddRow("small", 12.5)
	tb.AddRow("seven-digits", 9999999.4)
	tb.AddRow("eight-digits", 12345678.0)
	tb.AddRow("huge", 123456789012.0)
	tb.AddRow("negative-huge", -98765432.1)
	tb.AddRow("nan", math.NaN())
	var sb strings.Builder
	tb.Render(&sb)
	// The renderer pads every cell to the column width; strip the
	// trailing pad so the golden stays readable.
	lines := strings.Split(sb.String(), "\n")
	for i, l := range lines {
		lines[i] = strings.TrimRight(l, " ")
	}
	got := strings.Join(lines, "\n")

	const want = `## counters
name           value
-------------------------
small          12.5
seven-digits   9999999.4
eight-digits   1.235e+07
huge           1.235e+11
negative-huge  -9.877e+07
nan            NaN
`
	if got != want {
		t.Errorf("table render mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestBoxplotRow(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.RecordMicros(float64(i))
	}
	row := BoxplotRow("x", r.Summarize())
	if len(row) != 7 || row[0] != "x" || row[1] != 100 {
		t.Errorf("boxplot row: %v", row)
	}
}
