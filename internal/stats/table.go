package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table renders fixed-width experiment output: a header row, aligned
// columns, and an optional title. It exists so every experiment in
// cmd/bertha-bench prints rows in the same shape the paper's plots report.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells are formatted with %v; float64 cells are
// rendered width-aware via formatFloat.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// formatFloat renders a float cell with one decimal place while the
// integer part fits in seven digits, and compact scientific notation
// beyond that — a cumulative byte counter rendered as
// "123456789012.0" would otherwise blow out its column and misalign
// the whole table. Non-finite values render as their names rather
// than as digits.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 0):
		return fmt.Sprintf("%v", v)
	case math.Abs(v) >= 1e7:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Rows returns the formatted rows added so far.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n", t.Title)
	}
	var hdr strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			hdr.WriteString("  ")
		}
		fmt.Fprintf(&hdr, "%-*s", widths[i], c)
	}
	fmt.Fprintln(w, hdr.String())
	fmt.Fprintln(w, strings.Repeat("-", len(hdr.String())))
	for _, row := range t.rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			width := len(cell)
			if i < len(widths) {
				width = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		fmt.Fprintln(w, b.String())
	}
}

// BoxplotRow formats a Summary as table cells: n, p5, p25, p50, p75, p95.
func BoxplotRow(label string, s Summary) []any {
	return []any{label, s.Count, s.P5, s.P25, s.P50, s.P75, s.P95}
}
