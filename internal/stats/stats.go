// Package stats provides latency recording and summarization for the
// Bertha benchmark harness: exact percentiles over recorded samples,
// boxplot-style summary rows (p5/p25/p50/p75/p95 as in the paper's
// Figure 3), time series binning (Figure 4), and fixed-width table
// rendering for experiment output.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Recorder accumulates duration samples. It is safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	samples []float64 // microseconds
	sorted  bool
}

// NewRecorder returns an empty Recorder with capacity for n samples.
func NewRecorder(n int) *Recorder {
	return &Recorder{samples: make([]float64, 0, n)}
}

// Record adds one latency sample.
func (r *Recorder) Record(d time.Duration) {
	r.mu.Lock()
	r.samples = append(r.samples, float64(d.Nanoseconds())/1e3)
	r.sorted = false
	r.mu.Unlock()
}

// RecordMicros adds one latency sample expressed in microseconds.
func (r *Recorder) RecordMicros(us float64) {
	r.mu.Lock()
	r.samples = append(r.samples, us)
	r.sorted = false
	r.mu.Unlock()
}

// Count returns the number of recorded samples.
func (r *Recorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// Merge appends all samples from o.
func (r *Recorder) Merge(o *Recorder) {
	o.mu.Lock()
	src := append([]float64(nil), o.samples...)
	o.mu.Unlock()
	r.mu.Lock()
	r.samples = append(r.samples, src...)
	r.sorted = false
	r.mu.Unlock()
}

func (r *Recorder) ensureSorted() {
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) in microseconds
// using linear interpolation between closest ranks. Returns NaN when no
// samples have been recorded.
func (r *Recorder) Percentile(p float64) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.percentileLocked(p)
}

func (r *Recorder) percentileLocked(p float64) float64 {
	n := len(r.samples)
	if n == 0 {
		return math.NaN()
	}
	r.ensureSorted()
	if p <= 0 {
		return r.samples[0]
	}
	if p >= 100 {
		return r.samples[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return r.samples[lo]
	}
	frac := rank - float64(lo)
	return r.samples[lo]*(1-frac) + r.samples[hi]*frac
}

// Mean returns the arithmetic mean in microseconds (NaN if empty).
func (r *Recorder) Mean() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

// Min returns the smallest sample (NaN if empty).
func (r *Recorder) Min() float64 { return r.Percentile(0) }

// Max returns the largest sample (NaN if empty).
func (r *Recorder) Max() float64 { return r.Percentile(100) }

// Summary is a boxplot-style five-number summary plus count and mean,
// matching the paper's Figure 3 presentation (median, box p25–p75,
// whiskers p5–p95). All latencies are in microseconds.
type Summary struct {
	Count int
	Mean  float64
	P5    float64
	P25   float64
	P50   float64
	P75   float64
	P95   float64
	P99   float64
}

// Summarize computes the five-number summary of the recorded samples.
func (r *Recorder) Summarize() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Summary{
		Count: len(r.samples),
		Mean:  r.meanLocked(),
		P5:    r.percentileLocked(5),
		P25:   r.percentileLocked(25),
		P50:   r.percentileLocked(50),
		P75:   r.percentileLocked(75),
		P95:   r.percentileLocked(95),
		P99:   r.percentileLocked(99),
	}
}

func (r *Recorder) meanLocked() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range r.samples {
		sum += v
	}
	return sum / float64(len(r.samples))
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p5=%.1f p25=%.1f p50=%.1f p75=%.1f p95=%.1f p99=%.1f",
		s.Count, s.Mean, s.P5, s.P25, s.P50, s.P75, s.P95, s.P99)
}

// TimePoint is one sample in a time series: an offset from the series
// start and a latency in microseconds.
type TimePoint struct {
	At      time.Duration
	Latency float64
}

// TimeSeries records (time, latency) pairs for Figure-4-style plots.
// It is safe for concurrent use.
type TimeSeries struct {
	mu     sync.Mutex
	start  time.Time
	points []TimePoint
}

// NewTimeSeries returns a TimeSeries anchored at start.
func NewTimeSeries(start time.Time) *TimeSeries {
	return &TimeSeries{start: start}
}

// RecordAt adds a point with an explicit timestamp.
func (ts *TimeSeries) RecordAt(at time.Time, latency time.Duration) {
	ts.mu.Lock()
	ts.points = append(ts.points, TimePoint{At: at.Sub(ts.start), Latency: float64(latency.Nanoseconds()) / 1e3})
	ts.mu.Unlock()
}

// Points returns a copy of the recorded points sorted by time.
func (ts *TimeSeries) Points() []TimePoint {
	ts.mu.Lock()
	out := append([]TimePoint(nil), ts.points...)
	ts.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Bin groups the points into fixed-width time bins and returns, per bin,
// the median latency. Empty bins produce NaN. The returned slice has
// ceil(total/width) entries.
func (ts *TimeSeries) Bin(total, width time.Duration) []float64 {
	if width <= 0 {
		panic("stats: non-positive bin width")
	}
	nbins := int((total + width - 1) / width)
	bins := make([][]float64, nbins)
	for _, p := range ts.Points() {
		i := int(p.At / width)
		if i < 0 || i >= nbins {
			continue
		}
		bins[i] = append(bins[i], p.Latency)
	}
	out := make([]float64, nbins)
	for i, b := range bins {
		if len(b) == 0 {
			out[i] = math.NaN()
			continue
		}
		sort.Float64s(b)
		out[i] = b[len(b)/2]
	}
	return out
}
