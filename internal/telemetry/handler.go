package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"

	"github.com/bertha-net/bertha/internal/telemetry/tracing"
)

// Endpoint is the conventional introspection path daemons mount the
// handler on.
const Endpoint = "/debug/bertha"

// Handler returns an http.Handler serving the registry's snapshot as an
// indented JSON document: per-chunnel-type, per-implementation counters
// and latency quantiles, named counters and probes, and the retained
// negotiation trace events. With ?format=text it renders the fixed-width
// table dump, with ?format=prom the Prometheus text exposition. With
// ?spans=<hex trace ID> (or ?spans= / ?spans=all for every retained
// trace) it instead serves the reassembled message-trace trees from the
// tracing span ring.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if spansQ, ok := req.URL.Query()["spans"]; ok {
			serveSpans(w, r, spansQ)
			return
		}
		snap := r.Snapshot()
		switch req.URL.Query().Get("format") {
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			snap.WriteProm(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			// Headers are gone; nothing useful left to report.
			return
		}
	})
}

// spansDoc is the ?spans= response document.
type spansDoc struct {
	// Enabled is false when the registry has no span ring (tracing off).
	Enabled bool `json:"enabled"`
	// SpanTotal is the number of spans ever recorded.
	SpanTotal uint64 `json:"span_total"`
	// Traces are the reassembled trees, most recent first.
	Traces []tracing.Tree `json:"traces"`
}

func serveSpans(w http.ResponseWriter, r *Registry, q []string) {
	doc := spansDoc{Traces: []tracing.Tree{}}
	if ring := r.Spans(); ring != nil {
		doc.Enabled = true
		doc.SpanTotal = ring.Total()
		trees := tracing.BuildTrees(ring.Snapshot())
		filter := ""
		if len(q) > 0 {
			filter = q[0]
		}
		if filter != "" && filter != "all" {
			if id, err := strconv.ParseUint(filter, 16, 64); err == nil {
				for _, t := range trees {
					if t.TraceID == id {
						doc.Traces = append(doc.Traces, t)
					}
				}
			} else {
				http.Error(w, "spans: want a hex trace ID or \"all\"", http.StatusBadRequest)
				return
			}
		} else {
			doc.Traces = trees
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// Serve mounts the registry's handler on Endpoint and serves HTTP on
// addr in a background goroutine. It returns the server so callers can
// Close it, and reports a startup error through errCh (nil channel:
// errors are dropped). It exists so the daemons' -telemetry flag is one
// call.
func Serve(addr string, r *Registry, errCh chan<- error) *http.Server {
	mux := http.NewServeMux()
	mux.Handle(Endpoint, Handler(r))
	srv := &http.Server{Addr: addr, Handler: mux}
	//bertha:daemon telemetry endpoint serves for the process lifetime; Close shuts it down
	go func() {
		err := srv.ListenAndServe()
		if errCh != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}()
	return srv
}
