package telemetry

import (
	"encoding/json"
	"net/http"
)

// Endpoint is the conventional introspection path daemons mount the
// handler on.
const Endpoint = "/debug/bertha"

// Handler returns an http.Handler serving the registry's snapshot as an
// indented JSON document: per-chunnel-type, per-implementation counters
// and latency quantiles, named counters and probes, and the retained
// negotiation trace events. With ?format=text it renders the fixed-width
// table dump instead.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			// Headers are gone; nothing useful left to report.
			return
		}
	})
}

// Serve mounts the registry's handler on Endpoint and serves HTTP on
// addr in a background goroutine. It returns the server so callers can
// Close it, and reports a startup error through errCh (nil channel:
// errors are dropped). It exists so the daemons' -telemetry flag is one
// call.
func Serve(addr string, r *Registry, errCh chan<- error) *http.Server {
	mux := http.NewServeMux()
	mux.Handle(Endpoint, Handler(r))
	srv := &http.Server{Addr: addr, Handler: mux}
	//bertha:daemon telemetry endpoint serves for the process lifetime; Close shuts it down
	go func() {
		err := srv.ListenAndServe()
		if errCh != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}()
	return srv
}
