package telemetry

import (
	"math"
	"testing"
	"time"
)

func TestQuantileEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if !math.IsNaN(s.Quantile(q)) {
			t.Fatalf("empty histogram Quantile(%v) = %v, want NaN", q, s.Quantile(q))
		}
		if !math.IsNaN(s.ValueQuantile(q)) {
			t.Fatalf("empty histogram ValueQuantile(%v) = %v, want NaN", q, s.ValueQuantile(q))
		}
	}
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.ValueMean()) {
		t.Fatal("empty histogram mean must be NaN")
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All mass in one bucket: every quantile interpolates within the
	// bucket's [lo, hi) range, so p0..p100 stay inside [lo/1e3, hi/1e3]µs.
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1500 * time.Nanosecond) // bucket [1024, 2048)ns
	}
	s := h.Snapshot()
	lo, hi := 1024.0/1e3, 2048.0/1e3
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
		v := s.Quantile(q)
		if v < lo || v > hi {
			t.Fatalf("single-bucket Quantile(%v) = %vµs, want within [%v, %v]", q, v, lo, hi)
		}
	}
	if p0, p100 := s.Quantile(0), s.Quantile(1); p0 > p100 {
		t.Fatalf("quantiles not monotone: p0=%v > p100=%v", p0, p100)
	}
}

func TestQuantileExtremes(t *testing.T) {
	// Two well-separated buckets: q=0 must land in the low one, q=1 in
	// the high one, and out-of-range q must clamp rather than panic.
	var h Histogram
	h.Observe(1 * time.Microsecond)   // ~2^10 ns
	h.Observe(1 * time.Millisecond)   // ~2^20 ns
	h.Observe(100 * time.Millisecond) // ~2^27 ns
	s := h.Snapshot()
	if p0 := s.Quantile(0); p0 > 2.048 {
		t.Fatalf("Quantile(0) = %vµs, want inside the lowest hit bucket", p0)
	}
	if p1 := s.Quantile(1); p1 < 1000 {
		t.Fatalf("Quantile(1) = %vµs, want inside the highest hit bucket", p1)
	}
	if s.Quantile(-0.5) != s.Quantile(0) || s.Quantile(2) != s.Quantile(1) {
		t.Fatal("out-of-range q must clamp to [0, 1]")
	}
}

func TestQuantileZeroBucket(t *testing.T) {
	// Exact-zero observations live in bucket 0 with bounds [0, 0]: a
	// histogram of only zeros reads back 0 at every quantile.
	var h Histogram
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 1} {
		if v := s.Quantile(q); v != 0 {
			t.Fatalf("all-zero histogram Quantile(%v) = %v, want 0", q, v)
		}
	}
	// Negative durations clamp to zero rather than corrupting a bucket.
	h.Observe(-time.Second)
	if got := h.Snapshot().Buckets[0]; got != 11 {
		t.Fatalf("negative observation landed outside bucket 0: bucket0=%d", got)
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// The top bucket (index 64) catches durations with the high bit set;
	// quantiles over it must return finite values, not overflow to +Inf.
	var h Histogram
	h.ObserveValue(math.MaxUint64) // bits.Len64 = 64
	s := h.Snapshot()
	if s.Buckets[histBuckets-1] != 1 {
		t.Fatalf("MaxUint64 not in overflow bucket: %v", s.Buckets)
	}
	for _, q := range []float64{0, 0.5, 1} {
		v := s.ValueQuantile(q)
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Fatalf("overflow-bucket ValueQuantile(%v) = %v, want finite positive", q, v)
		}
	}
}

func TestValueQuantileUnits(t *testing.T) {
	// ValueQuantile must read back in raw units (no ns→µs division):
	// batch sizes of 8 must quantile near 8, not 0.008.
	var h Histogram
	for i := 0; i < 50; i++ {
		h.ObserveValue(8) // bucket [8, 16)
	}
	s := h.Snapshot()
	if p50 := s.ValueQuantile(0.5); p50 < 8 || p50 > 16 {
		t.Fatalf("ValueQuantile(0.5) = %v, want within the [8, 16) bucket", p50)
	}
	if m := s.ValueMean(); m != 8 {
		t.Fatalf("ValueMean = %v, want 8", m)
	}
}

func TestHopExclEWMA(t *testing.T) {
	var m ConnMetrics
	if _, _, ok := m.HopExcl(); ok {
		t.Fatal("HopExcl ok before any fold")
	}
	m.FoldHopExcl(10, 20)
	p50, p95, ok := m.HopExcl()
	if !ok || p50 != 10 || p95 != 20 {
		t.Fatalf("first fold must seed the EWMA: %v %v %v", p50, p95, ok)
	}
	m.FoldHopExcl(20, 40)
	p50, _, _ = m.HopExcl()
	if p50 != 10+hopEWMAAlpha*(20-10) {
		t.Fatalf("EWMA fold = %v, want %v", p50, 10+hopEWMAAlpha*(20-10))
	}
	m.FoldHopExcl(math.NaN(), 1) // must be ignored
	if v, _, _ := m.HopExcl(); math.IsNaN(v) {
		t.Fatal("NaN fold poisoned the EWMA")
	}
}
