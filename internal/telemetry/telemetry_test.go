package telemetry

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/testutil"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("x") != c {
		t.Error("Counter is not idempotent per name")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)                // bucket 1: [1,2)
	h.Observe(3)                // bucket 2: [2,4)
	h.Observe(1024)             // bucket 11: [1024,2048)
	h.Observe(-5 * time.Second) // clamps to zero
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Buckets[0] != 2 {
		t.Errorf("zero bucket = %d, want 2", s.Buckets[0])
	}
	if s.Buckets[1] != 1 || s.Buckets[2] != 1 || s.Buckets[11] != 1 {
		t.Errorf("buckets = %v", s.Buckets[:12])
	}
	if s.Sum != 1+3+1024 {
		t.Errorf("sum = %d, want 1028", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations of ~1µs, 10 of ~1ms: p50 must sit in the µs
	// bucket and p99.9-ish territory in the ms bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	s := h.Snapshot()
	p50 := s.Quantile(0.50)
	if p50 < 0.5 || p50 > 2.1 {
		t.Errorf("p50 = %.2fµs, want ~1µs", p50)
	}
	p999 := s.Quantile(0.9999)
	if p999 < 500 || p999 > 2100 {
		t.Errorf("p99.99 = %.2fµs, want ~1000µs", p999)
	}
	if q := s.Quantile(1); math.IsNaN(q) || q < p50 {
		t.Errorf("p100 = %.2f, want ≥ p50", q)
	}
	mean := s.Mean()
	want := (1000.0*1000 + 10*1000000) / 1010.0 / 1e3
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("mean = %.3fµs, want %.3f", mean, want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Mean()) {
		t.Error("empty histogram must report NaN")
	}
	if hs := histStats(s); hs.P50 != 0 || hs.Mean != 0 {
		t.Errorf("histStats of empty = %+v, want zeros (JSON-safe)", hs)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	sum := h.Summary()
	if sum.Count != 100 {
		t.Errorf("summary count = %d", sum.Count)
	}
	if sum.P50 <= sum.P5 || sum.P95 < sum.P50 {
		t.Errorf("summary quantiles not ordered: %+v", sum)
	}
}

func TestTraceRing(t *testing.T) {
	tr := NewTrace(4)
	now := time.Unix(1700000000, 0)
	tr.clock = func() time.Time { return now }
	for i := 0; i < 6; i++ {
		tr.Record(TraceEvent{Kind: TraceImplChosen, Detail: string(rune('a' + i))})
	}
	if tr.Total() != 6 {
		t.Fatalf("total = %d, want 6", tr.Total())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained = %d, want 4", len(evs))
	}
	// Oldest first, sequence numbers survive the wrap.
	for i, ev := range evs {
		if ev.Seq != uint64(2+i) {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, 2+i)
		}
		if !ev.At.Equal(now) {
			t.Errorf("event %d not stamped", i)
		}
	}
	if evs[0].Detail != "c" || evs[3].Detail != "f" {
		t.Errorf("ring order wrong: %q..%q", evs[0].Detail, evs[3].Detail)
	}
}

func TestTraceEventString(t *testing.T) {
	ev := TraceEvent{Seq: 3, Endpoint: "kv", Side: "server", Kind: TraceImplChosen,
		Chunnel: "shard", Impl: "shard/xdp", Micros: 12.5, Detail: "priority=20"}
	s := ev.String()
	for _, want := range []string{"#3", "kv/server", "impl-chosen", "shard=shard/xdp", "12.5µs", "priority=20"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSnapshotAndHandler(t *testing.T) {
	r := New()
	r.Counter("transport/udp/datagrams_sent").Add(42)
	r.Gauge("conns").Set(3)
	r.Histogram("hello_rtt").Observe(80 * time.Microsecond)
	r.RegisterProbe("xdp/rx/redirect", func() uint64 { return 7 })
	m := r.Conn("shard", "shard/xdp")
	m.RecordSend(100, 5*time.Microsecond, nil)
	m.RecordRecv(60, 8*time.Microsecond, nil)
	m.RecordSend(0, 0, errors.New("boom")) // errors counted separately
	r.Trace().Record(TraceEvent{Endpoint: "kv", Side: "server", Kind: TraceConnected})

	snap := r.Snapshot()
	if snap.Counters["transport/udp/datagrams_sent"] != 42 {
		t.Errorf("counter missing from snapshot: %v", snap.Counters)
	}
	if snap.Counters["xdp/rx/redirect"] != 7 {
		t.Errorf("probe missing from snapshot: %v", snap.Counters)
	}
	if len(snap.Conns) != 1 || snap.Conns[0].Sends != 1 || snap.Conns[0].SendErrs != 1 {
		t.Errorf("conn stats wrong: %+v", snap.Conns)
	}
	if snap.TraceTotal != 1 || len(snap.Trace) != 1 {
		t.Errorf("trace missing: total=%d len=%d", snap.TraceTotal, len(snap.Trace))
	}

	// JSON endpoint round-trips and is well-formed.
	req := httptest.NewRequest("GET", Endpoint, nil)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var decoded Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("endpoint emitted malformed JSON: %v", err)
	}
	if decoded.Counters["transport/udp/datagrams_sent"] != 42 {
		t.Errorf("decoded counters = %v", decoded.Counters)
	}

	// Text dump renders the same data as tables.
	req = httptest.NewRequest("GET", Endpoint+"?format=text", nil)
	rec = httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{"telemetry: counters", "transport/udp/datagrams_sent", "shard/xdp", "negotiation trace"} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}
}

// TestObserveAllocs pins the hot path at zero allocations: counters,
// gauges, histograms, and the full per-message ConnMetrics record.
func TestObserveAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	m := r.Conn("serialize", "serialize/bincode")
	avg := testing.AllocsPerRun(500, func() {
		c.Inc()
		g.Add(1)
		h.Observe(3 * time.Microsecond)
		m.RecordSend(64, 2*time.Microsecond, nil)
		m.RecordRecv(64, 2*time.Microsecond, nil)
	})
	if avg != 0 {
		t.Fatalf("telemetry hot path allocates %.2f objects/op, want 0", avg)
	}
}
