package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// DefaultTraceLen is the trace ring capacity: enough to hold the full
// negotiation history of a burst of connection setups without growing.
const DefaultTraceLen = 256

// Trace event kinds, in rough lifecycle order. Negotiation is the
// control path — it already allocates for hellos and stacks — so trace
// recording favours structure over allocation thrift.
const (
	// TraceOfferSent: a client sent its ClientHello (offers + spec).
	TraceOfferSent = "offer-sent"
	// TraceHelloRecv: a server received a ClientHello.
	TraceHelloRecv = "client-hello"
	// TraceServerHello: a client received the ServerHello; Micros is the
	// hello round-trip time (the paper's Figure 3 establishment cost).
	TraceServerHello = "server-hello"
	// TraceImplChosen: negotiation bound a chunnel type to an
	// implementation; Detail carries the ranking inputs (priority,
	// location, providing side).
	TraceImplChosen = "impl-chosen"
	// TraceFallback: the preferred candidate was dropped (resource claim
	// failed, parameters unobtainable) and the policy re-ran.
	TraceFallback = "fallback"
	// TraceBatchPath: stack assembly measured the contiguous batch-aware
	// segment; Detail reports how many layers a vectored SendBufs burst
	// traverses before degrading to per-message sends.
	TraceBatchPath = "batch-path"
	// TraceConnected: stack assembly completed; Detail lists the stack.
	TraceConnected = "connected"
	// TraceFailed: negotiation or assembly failed; Detail is the error.
	TraceFailed = "negotiation-failed"
	// TraceTeardown: a managed connection closed and its implementations
	// were torn down.
	TraceTeardown = "teardown"
)

// TraceEvent is one structured negotiation event.
type TraceEvent struct {
	// Seq is a monotonically increasing sequence number (assigned by the
	// ring; survives wrap-around, so readers can detect gaps).
	Seq uint64 `json:"seq"`
	// At is the event time (assigned by the ring when zero).
	At time.Time `json:"at"`
	// Endpoint is the local endpoint's debugging name.
	Endpoint string `json:"endpoint"`
	// Side is "client" or "server".
	Side string `json:"side"`
	// Kind is one of the Trace* constants.
	Kind string `json:"kind"`
	// Chunnel is the chunnel type, when the event concerns one node.
	Chunnel string `json:"chunnel,omitempty"`
	// Impl is the implementation, when one has been chosen.
	Impl string `json:"impl,omitempty"`
	// Detail carries free-form context (ranking, error text, stack).
	Detail string `json:"detail,omitempty"`
	// Micros is an associated duration in microseconds (hello RTT), 0
	// when not applicable.
	Micros float64 `json:"micros,omitempty"`
}

// String renders the event on one line.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("#%d %s %s/%s %s", e.Seq, e.At.Format("15:04:05.000"), e.Endpoint, e.Side, e.Kind)
	if e.Chunnel != "" {
		s += " " + e.Chunnel
	}
	if e.Impl != "" {
		s += "=" + e.Impl
	}
	if e.Micros > 0 {
		s += fmt.Sprintf(" %.1fµs", e.Micros)
	}
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Trace is a bounded ring of TraceEvents: the last N events are kept,
// older ones are overwritten. It is safe for concurrent use.
type Trace struct {
	mu    sync.Mutex
	buf   []TraceEvent
	next  uint64 // total events ever recorded
	clock func() time.Time
}

// NewTrace returns a ring holding the last n events (minimum 1).
func NewTrace(n int) *Trace {
	if n < 1 {
		n = 1
	}
	return &Trace{buf: make([]TraceEvent, n), clock: time.Now}
}

// Record appends one event, stamping Seq and (when zero) At.
func (t *Trace) Record(ev TraceEvent) {
	t.mu.Lock()
	ev.Seq = t.next
	if ev.At.IsZero() {
		ev.At = t.clock()
	}
	t.buf[t.next%uint64(len(t.buf))] = ev
	t.next++
	t.mu.Unlock()
}

// Total returns how many events have ever been recorded (≥ len(Events())).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.buf))
	start := uint64(0)
	count := t.next
	if t.next > n {
		start = t.next - n
		count = n
	}
	out := make([]TraceEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, t.buf[(start+i)%n])
	}
	return out
}
