package tracing

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a span.
type Kind uint8

// Span kinds.
const (
	// KindSend is a send-path span: the layer's inclusive time from the
	// moment a sampled message entered it until the layer below returned.
	KindSend Kind = iota
	// KindRecv is a receive-path span: the layer's inclusive time,
	// including blocking for the message to arrive.
	KindRecv
	// KindFwd is an in-network forwarding span (a simnet switch hop).
	KindFwd
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindFwd:
		return "fwd"
	default:
		return "unknown"
	}
}

// Span is one recorded event: a sampled message passing one layer (or
// one switch) in one direction.
type Span struct {
	// TraceID groups the spans of one message's journey.
	TraceID uint64 `json:"trace_id"`
	// Kind is the span direction: send, recv, or fwd.
	Kind Kind `json:"-"`
	// KindName is Kind's name, for the JSON document.
	KindName string `json:"kind"`
	// Layer and Impl identify the recording stack layer, in the same
	// vocabulary as telemetry.ConnMetrics ("transport"/"udp",
	// "serialize"/"serialize/bincode", "switch"/<switch name>).
	Layer string `json:"layer"`
	Impl  string `json:"impl"`
	// Start is the span start in nanoseconds since the Unix epoch.
	Start int64 `json:"start_ns"`
	// Dur is the span's inclusive duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
	// Bytes is the payload size (summed over a burst).
	Bytes int `json:"bytes"`
	// Count is the number of messages the span covers: 1 for per-message
	// sends, the burst element count for one vectored call.
	Count int `json:"count"`
	// Hop is the wire context's hop count when the span was recorded.
	Hop int `json:"hop"`
	// Err marks a failed operation.
	Err bool `json:"err,omitempty"`
}

// End returns the span's end time in nanoseconds since the epoch.
func (s Span) End() int64 { return s.Start + s.Dur }

// slot is one ring entry, written under a per-slot seqlock: seq is
// bumped to odd before the payload stores and to even after, so a reader
// that observes an unchanged even seq saw a consistent span. All fields
// are word-sized atomics — recording never takes a lock and never
// allocates.
type slot struct {
	seq   atomic.Uint64
	id    atomic.Uint64
	start atomic.Uint64 // unix nanoseconds
	dur   atomic.Uint64 // nanoseconds
	meta  atomic.Uint64 // packed kind/hop/err/label/count
	bytes atomic.Uint64
}

// meta packing: count in bits 0..23, label index 24..39, hop 40..47,
// kind 48..49, err 50.
func packMeta(kind Kind, hop uint8, errFlag bool, label uint16, count int) uint64 {
	if count < 0 {
		count = 0
	}
	if count > 1<<24-1 {
		count = 1<<24 - 1
	}
	m := uint64(count) | uint64(label)<<24 | uint64(hop)<<40 | uint64(kind&3)<<48
	if errFlag {
		m |= 1 << 50
	}
	return m
}

func unpackMeta(m uint64) (kind Kind, hop uint8, errFlag bool, label uint16, count int) {
	return Kind(m >> 48 & 3), uint8(m >> 40), m&(1<<50) != 0, uint16(m >> 24), int(m & (1<<24 - 1))
}

// SpanRing is a bounded per-host flight recorder: the last N spans are
// kept, older ones overwritten. Writers are lock-free; labels (layer,
// impl string pairs) are interned once at stack-assembly time so the
// record path stores only a small integer.
type SpanRing struct {
	slots []slot
	next  atomic.Uint64 // total spans ever recorded

	mu       sync.Mutex
	labels   []label
	labelIdx map[label]uint16
}

type label struct{ layer, impl string }

// NewSpanRing returns a ring holding the last n spans (minimum 16).
func NewSpanRing(n int) *SpanRing {
	if n < 16 {
		n = 16
	}
	return &SpanRing{
		slots:    make([]slot, n),
		labelIdx: make(map[label]uint16),
	}
}

// Cap returns the ring capacity in spans.
func (r *SpanRing) Cap() int { return len(r.slots) }

// Total returns how many spans have ever been recorded.
func (r *SpanRing) Total() uint64 { return r.next.Load() }

// Handle interns a (layer, impl) label and returns a recording handle
// bound to it. Call at stack-assembly time, never per message; Record on
// the returned handle is the zero-allocation hot path. The zero Handle
// is inert: Record on it is a no-op.
func (r *SpanRing) Handle(layer, impl string) Handle {
	if r == nil {
		return Handle{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := label{layer, impl}
	idx, ok := r.labelIdx[k]
	if !ok {
		if len(r.labels) >= 1<<16 {
			return Handle{} // label table full: drop rather than misattribute
		}
		idx = uint16(len(r.labels))
		r.labels = append(r.labels, k)
		r.labelIdx[k] = idx
	}
	return Handle{ring: r, label: idx}
}

// labelAt resolves an interned label index.
func (r *SpanRing) labelAt(i uint16) (layer, impl string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if int(i) >= len(r.labels) {
		return "?", "?"
	}
	l := r.labels[i]
	return l.layer, l.impl
}

// Handle is a preallocated recording endpoint: the ring plus an interned
// label. Handles are values; copy freely.
type Handle struct {
	ring  *SpanRing
	label uint16
}

// Active reports whether the handle records anywhere.
func (h Handle) Active() bool { return h.ring != nil }

// Record appends one span. It is lock-free and allocation-free: one slot
// claim plus six word-sized atomic stores under a per-slot seqlock.
// Concurrent writers that lap the ring onto the same slot can tear each
// other's span; the seqlock makes readers detect and skip such slots.
func (h Handle) Record(kind Kind, id uint64, start time.Time, dur time.Duration, bytes, count int, hop uint8, errFlag bool) {
	r := h.ring
	if r == nil {
		return
	}
	i := (r.next.Add(1) - 1) % uint64(len(r.slots))
	s := &r.slots[i]
	s.seq.Add(1) // odd: write in progress
	s.id.Store(id)
	s.start.Store(uint64(start.UnixNano()))
	s.dur.Store(uint64(dur.Nanoseconds()))
	s.meta.Store(packMeta(kind, hop, errFlag, h.label, count))
	s.bytes.Store(uint64(bytes))
	s.seq.Add(1) // even: published
}

// Snapshot copies the retained spans, oldest first by start time. It
// allocates (the snapshot slice and label strings are materialized
// here) — this is the only allocating operation in the package and runs
// off the data path.
func (r *SpanRing) Snapshot() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		for attempt := 0; attempt < 3; attempt++ {
			seq := s.seq.Load()
			if seq == 0 || seq&1 == 1 {
				break // never written, or write in progress
			}
			id := s.id.Load()
			start := s.start.Load()
			dur := s.dur.Load()
			meta := s.meta.Load()
			bytes := s.bytes.Load()
			if s.seq.Load() != seq {
				continue // torn by a concurrent writer: retry
			}
			kind, hop, errFlag, labelIdx, count := unpackMeta(meta)
			layer, impl := r.labelAt(labelIdx)
			out = append(out, Span{
				TraceID:  id,
				Kind:     kind,
				KindName: kind.String(),
				Layer:    layer,
				Impl:     impl,
				Start:    int64(start),
				Dur:      int64(dur),
				Bytes:    int(bytes),
				Count:    count,
				Hop:      int(hop),
				Err:      errFlag,
			})
			break
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
