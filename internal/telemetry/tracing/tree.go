package tracing

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Hop is one layer crossing within a reassembled trace, annotated with
// its exclusive latency share.
type Hop struct {
	Kind     Kind   `json:"-"`
	KindName string `json:"kind"`
	Layer    string `json:"layer"`
	Impl     string `json:"impl"`
	// Start/Dur are the span's inclusive window (unix nanoseconds).
	Start int64 `json:"start_ns"`
	Dur   int64 `json:"dur_ns"`
	// Excl is the time attributed to this hop alone: inclusive duration
	// minus the inclusive duration of the next layer down (sends), or the
	// gap since the previous layer finished (recvs). The first recv hop's
	// exclusive time includes network propagation.
	Excl  int64 `json:"excl_ns"`
	Bytes int   `json:"bytes"`
	Count int   `json:"count"`
	HopNo int   `json:"hop"`
	Err   bool  `json:"err,omitempty"`
}

// Tree is all spans of one trace ID, ordered send-path outermost-first,
// then switch forwards, then recv-path innermost-first — the message's
// journey in time order.
type Tree struct {
	TraceID uint64 `json:"trace_id"`
	Hops    []Hop  `json:"hops"`
	// Complete reports that both a send-side and a recv-side span are
	// present, so EndToEnd and the exclusive breakdown are meaningful.
	Complete bool `json:"complete"`
	// EndToEnd is outermost-send start to outermost-recv end, in
	// nanoseconds. By construction the hops' exclusive latencies
	// telescope: they sum exactly to EndToEnd on a complete tree.
	EndToEnd int64 `json:"end_to_end_ns"`
	// ExclSum is the sum of per-hop exclusive latencies — equals EndToEnd
	// up to clamping of clock-skewed negative gaps.
	ExclSum int64 `json:"excl_sum_ns"`
}

// BuildTrees reassembles spans (from any number of rings — merge the
// snapshots first) into one tree per trace ID, most recent first.
//
// Attribution is by telescoping: send spans nest (each layer's inclusive
// time contains the layer below), so a send hop's exclusive time is its
// duration minus the next-inner duration and the innermost send keeps
// its full duration; switch forwards count whole; recv spans are ordered
// by completion time and each hop's exclusive time is the gap since the
// previous one completed, with the first recv hop absorbing network
// propagation. The sum of exclusive times therefore equals the outermost
// send start → outermost recv end span exactly (negative gaps from clock
// skew are clamped to zero and show up as ExclSum < EndToEnd).
func BuildTrees(spans []Span) []Tree {
	byID := make(map[uint64][]Span)
	for _, s := range spans {
		if s.TraceID == 0 {
			continue
		}
		byID[s.TraceID] = append(byID[s.TraceID], s)
	}
	trees := make([]Tree, 0, len(byID))
	for id, ss := range byID {
		trees = append(trees, buildTree(id, ss))
	}
	sort.Slice(trees, func(i, j int) bool {
		si, sj := int64(0), int64(0)
		if len(trees[i].Hops) > 0 {
			si = trees[i].Hops[0].Start
		}
		if len(trees[j].Hops) > 0 {
			sj = trees[j].Hops[0].Start
		}
		if si != sj {
			return si > sj
		}
		return trees[i].TraceID < trees[j].TraceID
	})
	return trees
}

func buildTree(id uint64, ss []Span) Tree {
	var sends, fwds, recvs []Span
	for _, s := range ss {
		switch s.Kind {
		case KindSend:
			sends = append(sends, s)
		case KindFwd:
			fwds = append(fwds, s)
		case KindRecv:
			recvs = append(recvs, s)
		}
	}
	// Send spans nest: outermost starts first. Recv spans complete
	// innermost-first, and start times include blocking, so order recvs
	// by end.
	sort.Slice(sends, func(i, j int) bool { return sends[i].Start < sends[j].Start })
	sort.Slice(fwds, func(i, j int) bool { return fwds[i].Start < fwds[j].Start })
	sort.Slice(recvs, func(i, j int) bool { return recvs[i].End() < recvs[j].End() })

	t := Tree{TraceID: id, Complete: len(sends) > 0 && len(recvs) > 0}
	hops := make([]Hop, 0, len(ss))

	var fwdTotal int64
	for _, f := range fwds {
		fwdTotal += f.Dur
	}

	for i, s := range sends {
		excl := s.Dur
		if i+1 < len(sends) {
			excl = clampNS(s.Dur - sends[i+1].Dur)
		}
		hops = append(hops, hopOf(s, excl))
	}
	for _, f := range fwds {
		hops = append(hops, hopOf(f, f.Dur))
	}
	for i, s := range recvs {
		var excl int64
		if i == 0 {
			if len(sends) > 0 {
				// First recv completion minus send completion minus
				// switch time: transport + network propagation + the
				// innermost recv layer's own work.
				excl = clampNS(s.End() - sends[0].End() - fwdTotal)
			} else {
				excl = s.Dur
			}
		} else {
			excl = clampNS(s.End() - recvs[i-1].End())
		}
		hops = append(hops, hopOf(s, excl))
	}
	t.Hops = hops
	for _, h := range hops {
		t.ExclSum += h.Excl
	}
	if t.Complete {
		t.EndToEnd = clampNS(recvs[len(recvs)-1].End() - sends[0].Start)
	}
	return t
}

func hopOf(s Span, excl int64) Hop {
	return Hop{
		Kind:     s.Kind,
		KindName: s.Kind.String(),
		Layer:    s.Layer,
		Impl:     s.Impl,
		Start:    s.Start,
		Dur:      s.Dur,
		Excl:     excl,
		Bytes:    s.Bytes,
		Count:    s.Count,
		HopNo:    s.Hop,
		Err:      s.Err,
	}
}

func clampNS(ns int64) int64 {
	if ns < 0 {
		return 0
	}
	return ns
}

// WriteWaterfall renders the tree as a text timeline: one row per hop
// with a bar positioned by start offset and scaled by inclusive
// duration, plus the exclusive share.
func (t Tree) WriteWaterfall(w io.Writer) {
	if len(t.Hops) == 0 {
		fmt.Fprintf(w, "trace %016x: no spans\n", t.TraceID)
		return
	}
	origin := t.Hops[0].Start
	var end int64
	for _, h := range t.Hops {
		if h.Start < origin {
			origin = h.Start
		}
		if e := h.Start + h.Dur; e > end {
			end = e
		}
	}
	total := end - origin
	if total <= 0 {
		total = 1
	}
	status := "complete"
	if !t.Complete {
		status = "partial"
	}
	fmt.Fprintf(w, "trace %016x  (%s, end-to-end %.1fµs, Σexcl %.1fµs)\n",
		t.TraceID, status, float64(t.EndToEnd)/1e3, float64(t.ExclSum)/1e3)
	const cols = 40
	for _, h := range t.Hops {
		off := int(float64(h.Start-origin) / float64(total) * cols)
		width := int(float64(h.Dur) / float64(total) * cols)
		if width < 1 {
			width = 1
		}
		if off > cols-1 {
			off = cols - 1
		}
		if off+width > cols {
			width = cols - off
		}
		bar := strings.Repeat(" ", off) + strings.Repeat("█", width) +
			strings.Repeat(" ", cols-off-width)
		mark := ""
		if h.Err {
			mark = " !err"
		}
		fmt.Fprintf(w, "  %-4s %-9s %-18s |%s| %8.1fµs excl %7.1fµs  %dB×%d%s\n",
			h.KindName, h.Layer, h.Impl, bar,
			float64(h.Dur)/1e3, float64(h.Excl)/1e3, h.Bytes, h.Count, mark)
	}
}

// String renders the waterfall to a string.
func (t Tree) String() string {
	var b strings.Builder
	t.WriteWaterfall(&b)
	return b.String()
}
