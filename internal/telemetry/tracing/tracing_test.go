package tracing

import (
	"strings"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	var buf [ContextSize]byte
	EncodeContext(buf[:], 0xDEADBEEFCAFE, 42, 3)
	n, id, span, hop, sampled, ok := ParseContext(buf[:])
	if !ok || !sampled {
		t.Fatalf("ParseContext: ok=%v sampled=%v", ok, sampled)
	}
	if n != ContextSize || id != 0xDEADBEEFCAFE || span != 42 || hop != 3 {
		t.Fatalf("round trip mismatch: n=%d id=%x span=%d hop=%d", n, id, span, hop)
	}
}

func TestContextUnsampledMarker(t *testing.T) {
	p := []byte{FlagUnsampled, 0xFF, 0xFF}
	n, _, _, _, sampled, ok := ParseContext(p)
	if !ok || sampled || n != MarkerSize {
		t.Fatalf("marker parse: n=%d sampled=%v ok=%v", n, sampled, ok)
	}
}

func TestContextForeignBytes(t *testing.T) {
	// Payloads not starting with the magic nibble must be left alone.
	for _, p := range [][]byte{nil, {0x00}, {0x7F, 1, 2}, {0xB2}, {0xB1, 1, 2}} {
		if n, _, _, _, _, ok := ParseContext(p); ok || n != 0 {
			t.Fatalf("ParseContext(%x) = n=%d ok=%v, want rejection", p, n, ok)
		}
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("NewTraceID returned 0")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestSamplerRate(t *testing.T) {
	s := NewSampler(1.0 / 8)
	hits := 0
	for i := 0; i < 800; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("1/8 sampler hit %d of 800, want exactly 100 (deterministic every-Nth)", hits)
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("rate-1 sampler skipped a send")
		}
	}
}

func TestRingRecordSnapshot(t *testing.T) {
	r := NewSpanRing(64)
	h := r.Handle("transport", "udp")
	start := time.Unix(100, 0)
	h.Record(KindSend, 7, start, 5*time.Microsecond, 128, 1, 0, false)
	h.Record(KindRecv, 7, start.Add(10*time.Microsecond), 3*time.Microsecond, 128, 1, 1, true)
	if r.Total() != 2 {
		t.Fatalf("Total = %d, want 2", r.Total())
	}
	spans := r.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(spans))
	}
	s := spans[0]
	if s.TraceID != 7 || s.Kind != KindSend || s.Layer != "transport" || s.Impl != "udp" ||
		s.Dur != 5000 || s.Bytes != 128 || s.Count != 1 || s.Err {
		t.Fatalf("send span mismatch: %+v", s)
	}
	if !spans[1].Err || spans[1].Hop != 1 || spans[1].Kind != KindRecv {
		t.Fatalf("recv span mismatch: %+v", spans[1])
	}
}

func TestRingWrap(t *testing.T) {
	r := NewSpanRing(16)
	h := r.Handle("l", "i")
	for i := 0; i < 40; i++ {
		h.Record(KindSend, uint64(i+1), time.Unix(int64(i), 0), time.Microsecond, 1, 1, 0, false)
	}
	if r.Total() != 40 {
		t.Fatalf("Total = %d, want 40", r.Total())
	}
	spans := r.Snapshot()
	if len(spans) != 16 {
		t.Fatalf("Snapshot retained %d, want ring size 16", len(spans))
	}
	// The retained window is the most recent 16 records.
	for _, s := range spans {
		if s.TraceID < 25 {
			t.Fatalf("span %d survived a wrap that should have evicted it", s.TraceID)
		}
	}
}

func TestRingLabelInterning(t *testing.T) {
	r := NewSpanRing(16)
	h1 := r.Handle("a", "b")
	h2 := r.Handle("a", "b")
	if h1 != h2 {
		t.Fatal("same label interned twice")
	}
	var zero Handle
	if zero.Active() {
		t.Fatal("zero handle claims active")
	}
	zero.Record(KindSend, 1, time.Now(), 0, 0, 1, 0, false) // must not panic
}

func TestRecordAllocs(t *testing.T) {
	r := NewSpanRing(256)
	h := r.Handle("transport", "udp")
	start := time.Unix(1, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Record(KindSend, 99, start, time.Microsecond, 64, 1, 0, false)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func TestBuildTreesTelescoping(t *testing.T) {
	// Client stack: serialize(40µs) ⊃ framing(30µs) ⊃ transport(10µs),
	// switch forward 5µs, server stack completes transport→framing→
	// serialize at 70, 80, 100µs.
	us := func(n int64) int64 { return n * 1000 }
	spans := []Span{
		{TraceID: 1, Kind: KindSend, Layer: "serialize", Impl: "bincode", Start: us(0), Dur: us(40), Bytes: 100, Count: 1},
		{TraceID: 1, Kind: KindSend, Layer: "http2", Impl: "framing", Start: us(5), Dur: us(30), Bytes: 110, Count: 1},
		{TraceID: 1, Kind: KindSend, Layer: "transport", Impl: "udp", Start: us(10), Dur: us(10), Bytes: 120, Count: 1},
		{TraceID: 1, Kind: KindFwd, Layer: "switch", Impl: "sw0", Start: us(45), Dur: us(5), Bytes: 120, Count: 1, Hop: 1},
		{TraceID: 1, Kind: KindRecv, Layer: "trace", Impl: "trace/inline", Start: us(55), Dur: us(15), Bytes: 120, Count: 1},
		{TraceID: 1, Kind: KindRecv, Layer: "http2", Impl: "framing", Start: us(55), Dur: us(25), Bytes: 110, Count: 1},
		{TraceID: 1, Kind: KindRecv, Layer: "serialize", Impl: "bincode", Start: us(55), Dur: us(45), Bytes: 100, Count: 1},
	}
	trees := BuildTrees(spans)
	if len(trees) != 1 {
		t.Fatalf("BuildTrees produced %d trees, want 1", len(trees))
	}
	tr := trees[0]
	if !tr.Complete {
		t.Fatal("tree with both sides marked incomplete")
	}
	// End-to-end: recv serialize ends at 100µs, send serialize starts at 0.
	if tr.EndToEnd != us(100) {
		t.Fatalf("EndToEnd = %dns, want 100µs", tr.EndToEnd)
	}
	// Telescoping: Σ excl must equal end-to-end exactly.
	if tr.ExclSum != tr.EndToEnd {
		t.Fatalf("ExclSum %dns != EndToEnd %dns — telescoping broken", tr.ExclSum, tr.EndToEnd)
	}
	// Spot-check attribution: serialize send excl = 40-30 = 10µs;
	// transport send keeps its full 10µs; first recv (ends 70µs) gets
	// 70 - 40(send end) - 5(switch) = 25µs.
	want := map[string]int64{"serialize/send": us(10), "http2/send": us(20), "transport/send": us(10), "switch/fwd": us(5)}
	for _, h := range tr.Hops {
		k := h.Layer + "/" + h.KindName
		if w, ok := want[k]; ok && h.Excl != w {
			t.Fatalf("hop %s excl = %dns, want %dns", k, h.Excl, w)
		}
		if h.Layer == "trace" && h.Kind == KindRecv && h.Excl != us(25) {
			t.Fatalf("first recv excl = %dns, want 25µs", h.Excl)
		}
	}
}

func TestBuildTreesPartial(t *testing.T) {
	spans := []Span{
		{TraceID: 2, Kind: KindSend, Layer: "transport", Impl: "udp", Start: 0, Dur: 1000, Count: 1},
	}
	trees := BuildTrees(spans)
	if len(trees) != 1 || trees[0].Complete {
		t.Fatalf("send-only trace should build one partial tree, got %+v", trees)
	}
	if trees[0].EndToEnd != 0 {
		t.Fatal("partial tree must not claim an end-to-end latency")
	}
}

func TestWaterfallRender(t *testing.T) {
	spans := []Span{
		{TraceID: 3, Kind: KindSend, Layer: "transport", Impl: "udp", Start: 0, Dur: 1000, Bytes: 64, Count: 1},
		{TraceID: 3, Kind: KindRecv, Layer: "transport", Impl: "udp", Start: 2000, Dur: 500, Bytes: 64, Count: 1},
	}
	trees := BuildTrees(spans)
	out := trees[0].String()
	for _, frag := range []string{"trace 0000000000000003", "complete", "send", "recv", "udp"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("waterfall missing %q:\n%s", frag, out)
		}
	}
}

func TestConfigFill(t *testing.T) {
	var c Config
	c.Fill()
	if c.SampleRate != DefaultSampleRate || c.RingSize != DefaultRingSize {
		t.Fatalf("Fill gave %+v", c)
	}
	c2 := Config{SampleRate: 0.5, RingSize: 128}
	c2.Fill()
	if c2.SampleRate != 0.5 || c2.RingSize != 128 {
		t.Fatalf("Fill clobbered explicit values: %+v", c2)
	}
}
