// Package tracing is the distributed half of the telemetry story: where
// package telemetry aggregates per-layer counters on one host, tracing
// follows individual sampled messages down the sender's chunnel stack,
// across the wire (or a simnet switch), and up the receiver's stack.
//
// The pieces:
//
//   - A 16-byte wire context (trace ID, parent span, sampled bit, hop
//     count) that the trace chunnel serializes into wire.Buf headroom on
//     sampled sends and parses back on the receive side. Unsampled
//     messages pay a single marker byte so the receiver can always tell
//     whether a context is present.
//   - A lock-free per-host SpanRing modeled on telemetry's negotiation
//     Trace ring: fixed slots written under a per-slot seqlock, labels
//     interned at stack-assembly time, so recording a span is a handful
//     of atomic stores — zero allocations on the data path.
//   - Tree reassembly (tree.go): spans from any number of rings, grouped
//     by trace ID and ordered by time, become one waterfall per message
//     with per-hop exclusive latency that sums (telescopes) to the
//     end-to-end latency.
//
// The package is dependency-free (stdlib only) so transports, simnet,
// and core can all record spans without import cycles.
package tracing

import (
	"encoding/binary"
	"math"
	"sync/atomic"
	"time"
)

// Wire context layout, stamped into headroom below every chunnel header
// (immediately after the mux tag byte, where a switch can peek at it):
//
//	byte  0     flags: 0xB1 sampled (full context), 0xB0 unsampled marker
//	bytes 1-8   trace ID, little endian
//	bytes 9-12  parent span ID, little endian
//	byte  13    hop count, incremented by in-network forwarders
//	bytes 14-15 reserved (zero)
//
// The 0xB_ magic nibble lets forwarding elements distinguish traced
// traffic from arbitrary payload bytes cheaply; switch-side mutation is
// additionally gated on explicit opt-in (simnet Network.EnableTracing)
// so a false positive can never corrupt an untraced workload.
const (
	// ContextSize is the serialized size of a sampled trace context.
	ContextSize = 16
	// MarkerSize is the serialized size of the unsampled marker.
	MarkerSize = 1
	// FlagSampled is the flags byte of a full 16-byte context.
	FlagSampled = 0xB1
	// FlagUnsampled is the one-byte marker on unsampled messages.
	FlagUnsampled = 0xB0
	// IDOffset is the byte offset of the trace ID within the context.
	IDOffset = 1
	// HopOffset is the byte offset of the hop count within the context.
	HopOffset = 13
)

// EncodeContext writes a sampled 16-byte context into dst (len ≥
// ContextSize).
func EncodeContext(dst []byte, id uint64, span uint32, hop uint8) {
	dst[0] = FlagSampled
	binary.LittleEndian.PutUint64(dst[IDOffset:], id)
	binary.LittleEndian.PutUint32(dst[9:], span)
	dst[HopOffset] = hop
	dst[14] = 0
	dst[15] = 0
}

// ParseContext inspects p's leading trace context. n is the number of
// bytes the context occupies (to TrimFront); ok is false when p carries
// neither a context nor a marker — the peer does not run the trace
// chunnel, and p must be left untouched.
func ParseContext(p []byte) (n int, id uint64, span uint32, hop uint8, sampled, ok bool) {
	if len(p) >= MarkerSize && p[0] == FlagUnsampled {
		return MarkerSize, 0, 0, 0, false, true
	}
	if len(p) >= ContextSize && p[0] == FlagSampled {
		return ContextSize, binary.LittleEndian.Uint64(p[IDOffset:]),
			binary.LittleEndian.Uint32(p[9:]), p[HopOffset], true, true
	}
	return 0, 0, 0, 0, false, false
}

// idCounter seeds trace-ID generation; splitmix64 whitens the sequence
// so IDs from different processes started at different times do not
// collide in the low bits.
var idCounter atomic.Uint64

func init() {
	idCounter.Store(uint64(time.Now().UnixNano()))
}

// NewTraceID returns a new process-unique trace ID. It is a single
// atomic add plus arithmetic — safe on the send hot path.
func NewTraceID() uint64 {
	x := idCounter.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1 // 0 means "no trace"
	}
	return x
}

// Defaults for Config.
const (
	// DefaultSampleRate samples roughly one message in 128.
	DefaultSampleRate = 1.0 / 128
	// DefaultRingSize retains the last 4096 spans per host.
	DefaultRingSize = 4096
)

// Config parameterizes tracing on one endpoint.
type Config struct {
	// SampleRate is the fraction of application sends stamped with a
	// trace context, realized as deterministic every-Nth sampling.
	// Values ≥ 1 trace every send; ≤ 0 selects DefaultSampleRate.
	SampleRate float64
	// RingSize is the span-ring capacity in spans; ≤ 0 selects
	// DefaultRingSize.
	RingSize int
}

// Fill replaces zero fields with the defaults.
func (c *Config) Fill() {
	if c.SampleRate <= 0 {
		c.SampleRate = DefaultSampleRate
	}
	if c.RingSize <= 0 {
		c.RingSize = DefaultRingSize
	}
}

// Sampler makes the per-send head decision: deterministic every-Nth
// sampling via one atomic add, so the unsampled path costs a single
// uncontended RMW and never allocates.
type Sampler struct {
	interval uint64
	n        atomic.Uint64
}

// NewSampler returns a sampler realizing rate as every-round(1/rate)th.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 {
		rate = DefaultSampleRate
	}
	interval := uint64(1)
	if rate < 1 {
		interval = uint64(math.Round(1 / rate))
		if interval < 1 {
			interval = 1
		}
	}
	return &Sampler{interval: interval}
}

// Sample reports whether the next send should carry a trace context.
func (s *Sampler) Sample() bool {
	if s.interval == 1 {
		return true
	}
	return s.n.Add(1)%s.interval == 0
}
