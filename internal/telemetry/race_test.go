package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentObserveAndSnapshot hammers one registry from 16 writer
// goroutines — counters, histograms, per-conn records, and trace events
// — while a reader concurrently snapshots. Run under -race -count=2 in
// CI; the assertions below check nothing is lost once the writers stop.
func TestConcurrentObserveAndSnapshot(t *testing.T) {
	const (
		writers = 16
		perG    = 2000
	)
	r := New()
	c := r.Counter("hammered")
	h := r.Histogram("hammered_lat")
	m := r.Conn("encrypt", "encrypt/aesgcm")

	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Reader: snapshot continuously while writers run. Results are
	// discarded; the race detector is the assertion.
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				_ = snap.Counters["hammered"]
				for _, cs := range snap.Conns {
					_ = cs.SendLatency.P95
				}
			}
		}
	}()
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				h.Observe(time.Duration(i%100) * time.Microsecond)
				m.RecordSend(64, time.Microsecond, nil)
				m.RecordRecv(64, time.Microsecond, nil)
				if i%100 == 0 {
					r.Trace().Record(TraceEvent{Kind: TraceConnected, Detail: "hammer"})
					// Get-or-create races against other writers too.
					r.Counter("hammered").Add(0)
				}
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	readerWG.Wait()

	const total = writers * perG
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	snap := r.Snapshot()
	if len(snap.Conns) != 1 {
		t.Fatalf("conns = %d, want 1", len(snap.Conns))
	}
	cs := snap.Conns[0]
	if cs.Sends != total || cs.Recvs != total {
		t.Errorf("sends/recvs = %d/%d, want %d", cs.Sends, cs.Recvs, total)
	}
	if cs.SendBytes != total*64 {
		t.Errorf("send bytes = %d, want %d", cs.SendBytes, total*64)
	}
	wantTrace := uint64(writers * (perG / 100))
	if snap.TraceTotal != wantTrace {
		t.Errorf("trace total = %d, want %d", snap.TraceTotal, wantTrace)
	}
	if len(snap.Trace) != DefaultTraceLen {
		t.Errorf("retained trace = %d, want ring capacity %d", len(snap.Trace), DefaultTraceLen)
	}
}
