package telemetry

import (
	"io"
	"math"
	"sort"

	"github.com/bertha-net/bertha/internal/stats"
)

// Snapshot is a point-in-time copy of a Registry, shaped for JSON
// encoding (the /debug/bertha document) and table rendering.
type Snapshot struct {
	// Counters merges named counters and registered probes.
	Counters map[string]uint64 `json:"counters"`
	// Gauges are the named gauge levels.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms are the named free-standing histograms.
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	// Conns are the per-(chunnel type, impl) data-plane metrics, sorted
	// by chunnel then impl.
	Conns []ConnStats `json:"chunnels"`
	// Trace is the retained negotiation event ring, oldest first.
	Trace []TraceEvent `json:"trace"`
	// TraceTotal is the number of events ever recorded (events beyond
	// len(Trace) have been overwritten).
	TraceTotal uint64 `json:"trace_total"`
	// SpanTotal is the number of message spans ever recorded into the
	// tracing ring; absent when tracing is not enabled. The spans
	// themselves are served by /debug/bertha?spans=.
	SpanTotal uint64 `json:"span_total,omitempty"`
}

// HistogramStats is a histogram readout in microseconds.
type HistogramStats struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_us"`
	P50   float64 `json:"p50_us"`
	P95   float64 `json:"p95_us"`
	P99   float64 `json:"p99_us"`

	// raw keeps the full bucket array for renderings that need more than
	// the quantile digest (the Prometheus exposition's cumulative
	// _bucket series). Unexported so the JSON document stays small.
	raw HistogramSnapshot
}

// BatchStats is a burst-size readout in messages per vectored call,
// present only for connections that saw SendBufs/RecvBufs traffic.
type BatchStats struct {
	// Bursts is the number of vectored calls recorded.
	Bursts uint64 `json:"bursts"`
	// Mean, P50, and P95 are burst sizes in messages.
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// ConnStats is one (chunnel type, impl) pair's data-plane readout.
type ConnStats struct {
	Chunnel     string         `json:"chunnel"`
	Impl        string         `json:"impl"`
	Sends       uint64         `json:"sends"`
	Recvs       uint64         `json:"recvs"`
	SendBytes   uint64         `json:"send_bytes"`
	RecvBytes   uint64         `json:"recv_bytes"`
	SendErrs    uint64         `json:"send_errors"`
	RecvErrs    uint64         `json:"recv_errors"`
	SendLatency HistogramStats `json:"send_latency_us"`
	RecvLatency HistogramStats `json:"recv_latency_us"`
	// SendBatch and RecvBatch are the realized burst-size distributions,
	// nil when no vectored traffic was recorded.
	SendBatch *BatchStats `json:"send_batch,omitempty"`
	RecvBatch *BatchStats `json:"recv_batch,omitempty"`
	// HopExclP50/P95 are the exclusive-latency EWMA rollup (µs) folded
	// from traced messages; absent until tracing observes this layer.
	HopExclP50 float64 `json:"hop_excl_p50_us,omitempty"`
	HopExclP95 float64 `json:"hop_excl_p95_us,omitempty"`
}

// histStats converts a snapshot, mapping NaN (empty histogram) to 0 so
// the JSON encoding never fails.
func histStats(s HistogramSnapshot) HistogramStats {
	z := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return HistogramStats{
		Count: s.Count,
		Mean:  z(s.Mean()),
		P50:   z(s.Quantile(0.50)),
		P95:   z(s.Quantile(0.95)),
		P99:   z(s.Quantile(0.99)),
		raw:   s,
	}
}

// batchStats converts a value-histogram snapshot into a burst-size
// readout, returning nil when no bursts were recorded so the field
// stays out of the JSON document.
func batchStats(s HistogramSnapshot) *BatchStats {
	if s.Count == 0 {
		return nil
	}
	z := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return v
	}
	return &BatchStats{
		Bursts: s.Count,
		Mean:   z(s.ValueMean()),
		P50:    z(s.ValueQuantile(0.50)),
		P95:    z(s.ValueQuantile(0.95)),
	}
}

// Snapshot copies the registry's current state. Probes run under the
// registry lock; they must be plain atomic loads.
func (r *Registry) Snapshot() Snapshot {
	// Refresh health gauges first: Gauge takes the registry lock itself.
	r.refreshHealth()
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)+len(r.probes)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramStats, len(r.hists)),
		Conns:      make([]ConnStats, 0, len(r.conns)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fn := range r.probes {
		s.Counters[name] = fn()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gprobes {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = histStats(h.Snapshot())
	}
	for _, m := range r.conns {
		cs := ConnStats{
			Chunnel:     m.Chunnel,
			Impl:        m.Impl,
			Sends:       m.Sends.Value(),
			Recvs:       m.Recvs.Value(),
			SendBytes:   m.SendBytes.Value(),
			RecvBytes:   m.RecvBytes.Value(),
			SendErrs:    m.SendErrs.Value(),
			RecvErrs:    m.RecvErrs.Value(),
			SendLatency: histStats(m.SendLatency.Snapshot()),
			RecvLatency: histStats(m.RecvLatency.Snapshot()),
			SendBatch:   batchStats(m.SendBatch.Snapshot()),
			RecvBatch:   batchStats(m.RecvBatch.Snapshot()),
		}
		if p50, p95, ok := m.HopExcl(); ok {
			cs.HopExclP50, cs.HopExclP95 = p50, p95
		}
		s.Conns = append(s.Conns, cs)
	}
	trace := r.trace
	spans := r.spans
	r.mu.Unlock()
	if spans != nil {
		s.SpanTotal = spans.Total()
	}

	sort.Slice(s.Conns, func(i, j int) bool {
		if s.Conns[i].Chunnel != s.Conns[j].Chunnel {
			return s.Conns[i].Chunnel < s.Conns[j].Chunnel
		}
		return s.Conns[i].Impl < s.Conns[j].Impl
	})
	// The trace ring has its own lock; read it outside ours.
	s.Trace = trace.Events()
	s.TraceTotal = trace.Total()
	return s
}

// WriteText renders the snapshot as fixed-width tables in the same
// shape as the benchmark harness output: one table of counters, one of
// per-chunnel data-plane metrics, and the retained trace events.
func (s Snapshot) WriteText(w io.Writer) {
	if len(s.Counters) > 0 {
		ct := stats.NewTable("telemetry: counters", "name", "value")
		for _, name := range sortedKeys(s.Counters) {
			ct.AddRow(name, s.Counters[name])
		}
		ct.Render(w)
		io.WriteString(w, "\n")
	}
	if len(s.Gauges) > 0 {
		gt := stats.NewTable("telemetry: gauges", "name", "value")
		for _, name := range sortedKeys(s.Gauges) {
			gt.AddRow(name, s.Gauges[name])
		}
		gt.Render(w)
		io.WriteString(w, "\n")
	}
	if len(s.Conns) > 0 {
		tt := stats.NewTable("telemetry: per-chunnel data plane (latency µs, inclusive of layers below)",
			"chunnel", "impl", "sends", "recvs", "errs", "send p50", "send p95", "send p99", "recv p95")
		for _, c := range s.Conns {
			tt.AddRow(c.Chunnel, c.Impl, c.Sends, c.Recvs, c.SendErrs+c.RecvErrs,
				c.SendLatency.P50, c.SendLatency.P95, c.SendLatency.P99, c.RecvLatency.P95)
		}
		tt.Render(w)
		io.WriteString(w, "\n")
	}
	batched := false
	for _, c := range s.Conns {
		if c.SendBatch != nil || c.RecvBatch != nil {
			batched = true
			break
		}
	}
	if batched {
		bt := stats.NewTable("telemetry: batch sizes (messages per vectored call)",
			"chunnel", "impl", "dir", "bursts", "mean", "p50", "p95")
		for _, c := range s.Conns {
			if c.SendBatch != nil {
				bt.AddRow(c.Chunnel, c.Impl, "send", c.SendBatch.Bursts, c.SendBatch.Mean, c.SendBatch.P50, c.SendBatch.P95)
			}
			if c.RecvBatch != nil {
				bt.AddRow(c.Chunnel, c.Impl, "recv", c.RecvBatch.Bursts, c.RecvBatch.Mean, c.RecvBatch.P50, c.RecvBatch.P95)
			}
		}
		bt.Render(w)
		io.WriteString(w, "\n")
	}
	if len(s.Trace) > 0 {
		et := stats.NewTable("telemetry: negotiation trace (oldest first)",
			"seq", "endpoint", "side", "kind", "chunnel", "impl", "µs", "detail")
		for _, e := range s.Trace {
			et.AddRow(e.Seq, e.Endpoint, e.Side, e.Kind, e.Chunnel, e.Impl, e.Micros, e.Detail)
		}
		et.Render(w)
	}
}
