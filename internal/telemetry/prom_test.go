package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/telemetry/tracing"
)

func TestWritePromShapes(t *testing.T) {
	r := New()
	r.SetHealthGauges(false)
	r.Counter("transport/udp/datagrams_sent").Add(7)
	r.Gauge("queue/depth").Set(3)
	h := r.Histogram("negotiate/rtt")
	h.Observe(10 * time.Microsecond)
	h.Observe(20 * time.Microsecond)
	m := r.Conn("transport", "udp")
	m.RecordSend(100, 5*time.Microsecond, nil)
	m.FoldHopExcl(4, 9)

	var b strings.Builder
	r.Snapshot().WriteProm(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE bertha_transport_udp_datagrams_sent_total counter",
		"bertha_transport_udp_datagrams_sent_total 7",
		"# TYPE bertha_queue_depth gauge",
		"bertha_queue_depth 3",
		"# TYPE bertha_negotiate_rtt histogram",
		"bertha_negotiate_rtt_bucket{le=\"+Inf\"} 2",
		"bertha_negotiate_rtt_count 2",
		"bertha_conn_sends_total{chunnel=\"transport\",impl=\"udp\"} 1",
		"bertha_conn_send_bytes_total{chunnel=\"transport\",impl=\"udp\"} 100",
		"bertha_conn_send_latency_ns_bucket{chunnel=\"transport\",impl=\"udp\",le=\"+Inf\"} 1",
		"bertha_conn_hop_excl_p50_us{chunnel=\"transport\",impl=\"udp\"} 4",
		"bertha_conn_hop_excl_p95_us{chunnel=\"transport\",impl=\"udp\"} 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// Histogram buckets must be cumulative: the +Inf bucket equals the
	// count, and every line is either a comment or name{labels} value.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestHealthGauges(t *testing.T) {
	r := New()
	s := r.Snapshot()
	for _, g := range []string{"process/goroutines", "process/heap_inuse_bytes", "wire/bufs_outstanding"} {
		if _, ok := s.Gauges[g]; !ok {
			t.Fatalf("health gauge %q missing from snapshot: %v", g, s.Gauges)
		}
	}
	if s.Gauges["process/goroutines"] <= 0 {
		t.Fatalf("goroutine gauge = %d, want > 0", s.Gauges["process/goroutines"])
	}
	if s.Gauges["process/heap_inuse_bytes"] <= 0 {
		t.Fatal("heap gauge not refreshed")
	}
	r.SetHealthGauges(false)
	r2 := New()
	r2.SetHealthGauges(false)
	if s2 := r2.Snapshot(); len(s2.Gauges) != 0 {
		t.Fatalf("health gauges written despite SetHealthGauges(false): %v", s2.Gauges)
	}
}

func TestHandlerPromAndSpans(t *testing.T) {
	r := New()
	r.SetHealthGauges(false)
	r.Counter("x/y").Inc()
	ring := r.EnableSpans(64)
	h := ring.Handle("transport", "udp")
	start := time.Now()
	h.Record(tracing.KindSend, 0xAB, start, time.Microsecond, 10, 1, 0, false)
	h.Record(tracing.KindRecv, 0xAB, start.Add(2*time.Microsecond), time.Microsecond, 10, 1, 1, false)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return b.String()
	}

	if out := get("?format=prom"); !strings.Contains(out, "bertha_x_y_total 1") ||
		!strings.Contains(out, "bertha_trace_spans_total 2") {
		t.Fatalf("prom endpoint:\n%s", out)
	}
	if out := get("?spans=all"); !strings.Contains(out, "\"enabled\": true") ||
		!strings.Contains(out, "\"trace_id\": 171") || !strings.Contains(out, "\"complete\": true") {
		t.Fatalf("spans endpoint:\n%s", out)
	}
	if out := get("?spans=ab"); !strings.Contains(out, "\"trace_id\": 171") {
		t.Fatalf("spans filter by hex ID:\n%s", out)
	}
	if out := get("?spans=ffff"); strings.Contains(out, "\"trace_id\"") {
		t.Fatalf("spans filter must exclude other IDs:\n%s", out)
	}
	// Default JSON document still works and carries span_total.
	if out := get(""); !strings.Contains(out, "\"span_total\": 2") {
		t.Fatalf("snapshot JSON missing span_total:\n%s", out)
	}
}
