// Package telemetry is the runtime observability core: dependency-free,
// zero-allocation metrics (atomic counters and gauges, lock-free
// log₂-bucketed latency histograms) plus a bounded ring of structured
// negotiation trace events.
//
// The paper's central claim (§4) is that the *runtime* — not the
// application — decides per connection which implementation of each
// Chunnel runs and where. This package makes that decision, and the
// live behaviour of the chosen stack, visible: core.assemble wraps every
// resolved chunnel layer in an instrumented connection that records
// sends/recvs/bytes/errors/latency into a ConnMetrics preallocated here,
// and negotiation emits trace events (offer sent, hello round trip,
// implementation chosen with its ranking, fallback taken, teardown) into
// the registry's ring.
//
// Hot-path discipline: Counter.Add, Gauge.Set, and Histogram.Observe
// are single atomic operations on memory preallocated at registration
// time — no map lookups, no locks, no allocation. The repository's
// AllocsPerRun gates run with instrumentation enabled and still measure
// 0 allocs/op. Readers (Snapshot, the /debug/bertha handler) may
// allocate freely; they run off the data path.
package telemetry

import (
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bertha-net/bertha/internal/stats"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/wire"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; obtain shared named instances from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, active connections).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the histogram bucket count: bucket 0 holds exact-zero
// observations and bucket b (1 ≤ b ≤ 64) holds durations in
// [2^(b-1), 2^b) nanoseconds, so the full range of time.Duration fits
// with no clamping arithmetic on the hot path.
const histBuckets = 65

// Histogram is a lock-free log₂-bucketed latency histogram. Observe is
// one bit-length computation plus two atomic adds; quantile readouts
// interpolate within the hit bucket and are intended for off-path
// consumers (snapshots, the HTTP handler).
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bits.Len64(uint64(ns))].Add(1)
	h.sum.Add(uint64(ns))
	h.count.Add(1)
}

// ObserveValue records one unitless value (e.g. a batch size in
// messages) into the same log₂ buckets. Readouts of a value histogram
// use ValueMean / ValueQuantile, which do not apply the nanosecond→µs
// conversion of the duration readouts.
func (h *Histogram) ObserveValue(v uint64) {
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a consistent-enough copy for rendering. Buckets are
// loaded individually (not atomically as a set); concurrent writers can
// skew a bucket by a few in-flight observations, which is fine for
// monitoring output.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// Summary renders the histogram as the repository's standard
// stats.Summary (count, mean, p5/p25/p50/p75/p95/p99 in microseconds),
// so telemetry readouts reuse the same summarization and table shapes
// as the benchmark harness.
func (h *Histogram) Summary() stats.Summary { return h.Snapshot().Summary() }

// HistogramSnapshot is an immutable copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64 // nanoseconds
	Buckets [histBuckets]uint64
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) in microseconds,
// interpolating linearly within the hit bucket. Returns NaN when empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var seen float64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if rank < seen+float64(n) {
			lo, hi := bucketBounds(b)
			frac := (rank - seen + 0.5) / float64(n)
			return (lo + (hi-lo)*frac) / 1e3
		}
		seen += float64(n)
	}
	// rank == count-1 lands in the last non-empty bucket.
	for b := histBuckets - 1; b >= 0; b-- {
		if s.Buckets[b] != 0 {
			_, hi := bucketBounds(b)
			return hi / 1e3
		}
	}
	return math.NaN()
}

// bucketBounds returns bucket b's nanosecond range [lo, hi).
func bucketBounds(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 0
	}
	return math.Ldexp(1, b-1), math.Ldexp(1, b)
}

// Mean returns the mean in microseconds (NaN when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count) / 1e3
}

// ValueMean returns the mean in the histogram's raw units — the readout
// for histograms fed with ObserveValue (NaN when empty).
func (s HistogramSnapshot) ValueMean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.Count)
}

// ValueQuantile returns the q-th quantile in the histogram's raw units —
// the readout for histograms fed with ObserveValue.
func (s HistogramSnapshot) ValueQuantile(q float64) float64 {
	return s.Quantile(q) * 1e3
}

// Summary renders the snapshot as a stats.Summary in microseconds.
func (s HistogramSnapshot) Summary() stats.Summary {
	return stats.Summary{
		Count: int(s.Count),
		Mean:  s.Mean(),
		P5:    s.Quantile(0.05),
		P25:   s.Quantile(0.25),
		P50:   s.Quantile(0.50),
		P75:   s.Quantile(0.75),
		P95:   s.Quantile(0.95),
		P99:   s.Quantile(0.99),
	}
}

// ConnMetrics aggregates the data-plane counters for one
// (chunnel type, implementation) pair. The runtime preallocates one per
// pair at stack-assembly time and the instrumented connection holds a
// direct pointer, so the per-message cost is a handful of atomic adds —
// never a map lookup.
type ConnMetrics struct {
	// Chunnel is the chunnel type ("serialize", "http2", "transport").
	Chunnel string
	// Impl is the implementation chosen by negotiation
	// ("serialize/bincode", "shard/xdp", "udp").
	Impl string

	Sends     Counter
	Recvs     Counter
	SendBytes Counter
	RecvBytes Counter
	SendErrs  Counter
	RecvErrs  Counter
	// SendLatency and RecvLatency are inclusive of every layer below
	// this one: a layer's exclusive cost is its latency minus its inner
	// neighbour's. RecvLatency includes time blocked waiting for the
	// next message.
	SendLatency Histogram
	RecvLatency Histogram
	// SendBatch and RecvBatch record the realized burst sizes (messages
	// per SendBufs/RecvBufs call) as value histograms; per-message
	// SendBuf/RecvBuf traffic does not feed them, so their counts are
	// the number of vectored calls, not messages.
	SendBatch Histogram
	RecvBatch Histogram

	// hopExclP50/hopExclP95 are EWMAs of this layer's *exclusive*
	// send-path latency in microseconds (its inclusive latency minus the
	// next-inner layer's), folded in by managedConn.HopStats. Stored as
	// math.Float64bits; zero means never folded. This is the per-hop
	// signal a renegotiation policy consumes: a rising exclusive p95 on
	// one layer fingers that layer, where the inclusive histograms blame
	// everything beneath it too.
	hopExclP50 atomic.Uint64
	hopExclP95 atomic.Uint64
}

// hopEWMAAlpha weights new hop-exclusive observations: small enough to
// smooth scheduling noise, large enough that a sustained regression
// moves the rollup within tens of folds.
const hopEWMAAlpha = 0.2

// FoldHopExcl folds one exclusive-latency observation pair (µs) into
// the EWMA rollup. Racing folds may drop an update; the rollup is a
// monitoring signal, not an accounting ledger.
func (m *ConnMetrics) FoldHopExcl(p50, p95 float64) {
	if math.IsNaN(p50) || math.IsNaN(p95) || p50 < 0 || p95 < 0 {
		return
	}
	fold := func(a *atomic.Uint64, v float64) {
		old := a.Load()
		if old == 0 {
			a.Store(math.Float64bits(v))
			return
		}
		prev := math.Float64frombits(old)
		a.Store(math.Float64bits(prev + hopEWMAAlpha*(v-prev)))
	}
	fold(&m.hopExclP50, p50)
	fold(&m.hopExclP95, p95)
}

// HopExcl returns the exclusive-latency EWMA rollup in microseconds;
// ok is false before the first fold.
func (m *ConnMetrics) HopExcl() (p50, p95 float64, ok bool) {
	b50, b95 := m.hopExclP50.Load(), m.hopExclP95.Load()
	if b50 == 0 && b95 == 0 {
		return 0, 0, false
	}
	return math.Float64frombits(b50), math.Float64frombits(b95), true
}

// RecordSend records one send outcome of n bytes taking d.
func (m *ConnMetrics) RecordSend(n int, d time.Duration, err error) {
	if err != nil {
		m.SendErrs.Inc()
		return
	}
	m.Sends.Inc()
	m.SendBytes.Add(uint64(n))
	m.SendLatency.Observe(d)
}

// RecordRecv records one receive outcome of n bytes taking d.
func (m *ConnMetrics) RecordRecv(n int, d time.Duration, err error) {
	if err != nil {
		m.RecvErrs.Inc()
		return
	}
	m.Recvs.Inc()
	m.RecvBytes.Add(uint64(n))
	m.RecvLatency.Observe(d)
}

// RecordSendBatch records one SendBufs outcome: sent messages totalling
// bytes payload bytes, taking d. A partially sent burst (sent > 0 with a
// non-nil err) counts its transmitted prefix and the error.
func (m *ConnMetrics) RecordSendBatch(sent, bytes int, d time.Duration, err error) {
	if err != nil {
		m.SendErrs.Inc()
	}
	if sent <= 0 {
		return
	}
	m.Sends.Add(uint64(sent))
	m.SendBytes.Add(uint64(bytes))
	m.SendLatency.Observe(d)
	m.SendBatch.ObserveValue(uint64(sent))
}

// RecordRecvBatch records one RecvBufs outcome of n messages totalling
// bytes payload bytes, taking d.
func (m *ConnMetrics) RecordRecvBatch(n, bytes int, d time.Duration, err error) {
	if err != nil {
		m.RecvErrs.Inc()
		return
	}
	if n <= 0 {
		return
	}
	m.Recvs.Add(uint64(n))
	m.RecvBytes.Add(uint64(bytes))
	m.RecvLatency.Observe(d)
	m.RecvBatch.ObserveValue(uint64(n))
}

// connKey identifies a ConnMetrics in the registry.
type connKey struct {
	chunnel, impl string
}

// Registry holds a process's (or one endpoint's) metrics: named
// counters, gauges, and histograms; read-only probes over pre-existing
// atomic counters; per-(chunnel, impl) connection metrics; and the
// negotiation trace ring. Registration takes the registry lock; the
// returned metric objects are lock-free.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	probes   map[string]func() uint64
	gprobes  map[string]func() int64
	conns    map[connKey]*ConnMetrics
	trace    *Trace
	spans    *tracing.SpanRing

	// healthOn enables the process-health gauges (goroutines, heap,
	// outstanding pooled buffers, open connections) refreshed on every
	// Snapshot. On by default; tests that count gauges can turn it off.
	healthOn atomic.Bool
}

// New returns an empty registry with a trace ring of DefaultTraceLen
// events.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		probes:   make(map[string]func() uint64),
		gprobes:  make(map[string]func() int64),
		conns:    make(map[connKey]*ConnMetrics),
		trace:    NewTrace(DefaultTraceLen),
	}
	r.healthOn.Store(true)
	return r
}

// defaultRegistry is the process-wide registry used by endpoints unless
// overridden, and by packages that keep process-wide counters
// (transport datagram counts, framing dropped streams).
var defaultRegistry = New()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Call at
// setup time and retain the pointer; do not call on a hot path.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterProbe publishes a read-only counter function under name —
// the hook for pre-existing ad-hoc atomic counters (XDP verdict counts,
// simnet forwarded packets) that are owned elsewhere. Probes are read
// at snapshot time only; re-registering a name replaces the probe.
func (r *Registry) RegisterProbe(name string, fn func() uint64) {
	r.mu.Lock()
	r.probes[name] = fn
	r.mu.Unlock()
}

// RegisterGaugeProbe publishes a read-only level function under name:
// the gauge analog of RegisterProbe, for instantaneous quantities owned
// elsewhere (reactor connection counts, ring occupancy). The value
// surfaces among the snapshot's Gauges; it is read at snapshot time
// only and must be a cheap lock-free computation. Re-registering a name
// replaces the probe.
func (r *Registry) RegisterGaugeProbe(name string, fn func() int64) {
	r.mu.Lock()
	r.gprobes[name] = fn
	r.mu.Unlock()
}

// Conn returns the shared ConnMetrics for a (chunnel type,
// implementation) pair, creating it on first use. Metrics aggregate
// across every connection bound to the same pair. Call at stack
// assembly, never per message.
func (r *Registry) Conn(chunnelType, implName string) *ConnMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	k := connKey{chunnelType, implName}
	m, ok := r.conns[k]
	if !ok {
		m = &ConnMetrics{Chunnel: chunnelType, Impl: implName}
		r.conns[k] = m
	}
	return m
}

// Trace returns the registry's negotiation trace ring.
func (r *Registry) Trace() *Trace { return r.trace }

// EnableSpans creates (or returns) the registry's message-span ring of
// capacity n — the per-host flight recorder distributed tracing records
// into. Idempotent: the first caller's capacity wins.
func (r *Registry) EnableSpans(n int) *tracing.SpanRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.spans == nil {
		r.spans = tracing.NewSpanRing(n)
	}
	return r.spans
}

// Spans returns the message-span ring, nil when tracing was never
// enabled on this registry.
func (r *Registry) Spans() *tracing.SpanRing {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.spans
}

// SetHealthGauges toggles the snapshot-time process-health gauges.
func (r *Registry) SetHealthGauges(on bool) { r.healthOn.Store(on) }

// refreshHealth updates the process-health gauges. Called by Snapshot
// before it takes the registry lock (Gauge locks internally).
func (r *Registry) refreshHealth() {
	if !r.healthOn.Load() {
		return
	}
	r.Gauge("process/goroutines").Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	r.Gauge("process/heap_inuse_bytes").Set(int64(ms.HeapInuse))
	r.Gauge("wire/bufs_outstanding").Set(wire.BufsOutstanding())
}

// sortedKeys returns map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
