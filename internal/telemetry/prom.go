// Prometheus text-exposition rendering of a Snapshot, so standard
// scrapers can consume /debug/bertha?format=prom without adding a
// client-library dependency. The format is the stable text/plain
// version 0.0.4 exposition: # TYPE lines, one sample per line,
// histograms as cumulative _bucket series plus _sum/_count.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// promName sanitizes a registry name ("transport/udp/datagrams_sent")
// into a Prometheus metric name ("bertha_transport_udp_datagrams_sent").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("bertha_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel escapes a label value per the exposition format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// writePromHist renders one histogram as cumulative buckets in raw
// nanosecond (or raw-value) units. Only buckets that received
// observations emit a series, plus the +Inf catch-all; cumulative
// counts make sparse emission valid exposition.
func writePromHist(w io.Writer, name, labels string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		_, hi := bucketBounds(b)
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, hi, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %d\n", name, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, s.Sum)
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.Count)
	}
}

// WriteProm renders the snapshot in Prometheus text exposition format.
// Counters get a _total suffix; histograms emit their full log₂ bucket
// arrays as cumulative _bucket series with nanosecond (duration
// histograms) or raw-unit (value histograms) upper bounds.
func (s Snapshot) WriteProm(w io.Writer) {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		writePromHist(w, promName(name), "", s.Histograms[name].raw)
	}

	// Per-(chunnel, impl) data-plane series, labeled.
	connCounter := func(metric string, get func(ConnStats) uint64) {
		n := "bertha_conn_" + metric + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n", n)
		for _, c := range s.Conns {
			fmt.Fprintf(w, "%s{chunnel=\"%s\",impl=\"%s\"} %d\n",
				n, promLabel(c.Chunnel), promLabel(c.Impl), get(c))
		}
	}
	if len(s.Conns) > 0 {
		connCounter("sends", func(c ConnStats) uint64 { return c.Sends })
		connCounter("recvs", func(c ConnStats) uint64 { return c.Recvs })
		connCounter("send_bytes", func(c ConnStats) uint64 { return c.SendBytes })
		connCounter("recv_bytes", func(c ConnStats) uint64 { return c.RecvBytes })
		connCounter("send_errors", func(c ConnStats) uint64 { return c.SendErrs })
		connCounter("recv_errors", func(c ConnStats) uint64 { return c.RecvErrs })
		for _, c := range s.Conns {
			labels := fmt.Sprintf("chunnel=\"%s\",impl=\"%s\"", promLabel(c.Chunnel), promLabel(c.Impl))
			if c.SendLatency.Count > 0 {
				writePromHist(w, "bertha_conn_send_latency_ns", labels, c.SendLatency.raw)
			}
			if c.RecvLatency.Count > 0 {
				writePromHist(w, "bertha_conn_recv_latency_ns", labels, c.RecvLatency.raw)
			}
		}
		hopAny := false
		for _, c := range s.Conns {
			if c.HopExclP50 != 0 || c.HopExclP95 != 0 {
				hopAny = true
				break
			}
		}
		if hopAny {
			for _, q := range []struct {
				suffix string
				get    func(ConnStats) float64
			}{
				{"p50", func(c ConnStats) float64 { return c.HopExclP50 }},
				{"p95", func(c ConnStats) float64 { return c.HopExclP95 }},
			} {
				n := "bertha_conn_hop_excl_" + q.suffix + "_us"
				fmt.Fprintf(w, "# TYPE %s gauge\n", n)
				for _, c := range s.Conns {
					v := q.get(c)
					if v == 0 || math.IsNaN(v) {
						continue
					}
					fmt.Fprintf(w, "%s{chunnel=\"%s\",impl=\"%s\"} %g\n",
						n, promLabel(c.Chunnel), promLabel(c.Impl), v)
				}
			}
		}
	}

	fmt.Fprintf(w, "# TYPE bertha_negotiation_trace_events_total counter\nbertha_negotiation_trace_events_total %d\n", s.TraceTotal)
	if s.SpanTotal > 0 {
		fmt.Fprintf(w, "# TYPE bertha_trace_spans_total counter\nbertha_trace_spans_total %d\n", s.SpanTotal)
	}
}
