package spec

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/bertha-net/bertha/internal/wire"
)

// fig2Stack builds the DAG from paper §3.1 / Figure 2:
// wrap!(A(arg) |> B(B::args([C(), D()]))).
func fig2Stack() *Stack {
	return Seq(
		New("A", wire.Int(7)),
		Select("B", nil, Seq(New("C")), Seq(New("D"))),
	)
}

func TestWrapNotationRendering(t *testing.T) {
	s := fig2Stack()
	got := s.String()
	want := "wrap!(A(7) |> B([C, D]))"
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if Seq().String() != "wrap!()" {
		t.Errorf("empty stack renders %q", Seq().String())
	}
}

func TestScopeRendering(t *testing.T) {
	s := Seq(New("localfast").WithScope(ScopeHost))
	if got := s.String(); got != "wrap!(localfast@host)" {
		t.Errorf("scoped render: %s", got)
	}
}

func TestTypesCollection(t *testing.T) {
	s := fig2Stack().Then(New("A")) // duplicate A: should appear once
	got := s.Types()
	want := []string{"A", "B", "C", "D"}
	if len(got) != len(want) {
		t.Fatalf("Types() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Types()[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	if err := fig2Stack().Validate(); err != nil {
		t.Errorf("fig2 stack should validate: %v", err)
	}
	if err := (*Stack)(nil).Validate(); err != nil {
		t.Errorf("nil stack should validate: %v", err)
	}
	if err := Seq(New("")).Validate(); !errors.Is(err, ErrEmptyType) {
		t.Errorf("empty type: %v", err)
	}
	bad := Seq(New("x"))
	bad.Nodes[0].Scope = Scope(99)
	if err := bad.Validate(); !errors.Is(err, ErrBadScope) {
		t.Errorf("bad scope: %v", err)
	}
	if err := Seq(Select("b", nil, Seq())).Validate(); !errors.Is(err, ErrEmptyBranch) {
		t.Errorf("empty branch: %v", err)
	}
	deep := Seq(New("leaf"))
	for i := 0; i < MaxDepth+2; i++ {
		deep = Seq(Select("sel", nil, deep))
	}
	if err := deep.Validate(); !errors.Is(err, ErrTooDeep) {
		t.Errorf("deep nesting: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []*Stack{
		nil,
		Seq(),
		fig2Stack(),
		Seq(New("shard", wire.List(wire.Str("s1"), wire.Str("s2")), wire.Uint(3)), New("reliable")),
		Seq(New("x").WithScope(ScopeApplication)),
	}
	for _, s := range cases {
		e := wire.NewEncoder(nil)
		s.Encode(e)
		d := wire.NewDecoder(e.Bytes())
		got := DecodeStack(d)
		if err := d.Finish(); err != nil {
			t.Fatalf("decode %s: %v", s.String(), err)
		}
		if !got.Equal(s) {
			t.Errorf("round trip %s -> %s", s, got)
		}
	}
}

func TestDecodeHostileInputNoPanic(t *testing.T) {
	f := func(buf []byte) bool {
		d := wire.NewDecoder(buf)
		DecodeStack(d)
		return true // must not panic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHashStability(t *testing.T) {
	h1 := fig2Stack().Hash()
	h2 := fig2Stack().Hash()
	if h1 != h2 {
		t.Error("hash not stable across constructions")
	}
	if h1 == Seq(New("A", wire.Int(8))).Hash() {
		t.Error("different args should hash differently")
	}
	if len(h1) != 16 {
		t.Errorf("hash length %d", len(h1))
	}
}

func TestEqualDistinguishesScopes(t *testing.T) {
	a := Seq(New("x"))
	b := Seq(New("x").WithScope(ScopeHost))
	if a.Equal(b) {
		t.Error("scope must participate in equality")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := fig2Stack()
	c := s.Clone()
	if !c.Equal(s) {
		t.Fatal("clone not equal")
	}
	c.Nodes[0].Type = "Z"
	c.Nodes[1].Branches[0].Nodes[0].Type = "Q"
	if s.Nodes[0].Type != "A" || s.Nodes[1].Branches[0].Nodes[0].Type != "C" {
		t.Error("clone shares storage with original")
	}
	if (*Stack)(nil).Clone() != nil {
		t.Error("nil clone")
	}
}

func TestScopeAndEndpointNames(t *testing.T) {
	for s := ScopeAny; s <= ScopeGlobal; s++ {
		if strings.HasPrefix(s.String(), "Scope(") || !s.Valid() {
			t.Errorf("scope %d: %s valid=%t", s, s, s.Valid())
		}
	}
	if Scope(77).Valid() || !strings.HasPrefix(Scope(77).String(), "Scope(") {
		t.Error("invalid scope handling")
	}
	for e := EndpointEither; e <= EndpointBoth; e++ {
		if strings.HasPrefix(e.String(), "Endpoint(") || !e.Valid() {
			t.Errorf("endpoint %d: %s valid=%t", e, e, e.Valid())
		}
	}
	if Endpoint(77).Valid() {
		t.Error("invalid endpoint handling")
	}
}

// randomStack generates an arbitrary valid stack for property testing.
func randomStack(r *rand.Rand, depth int) *Stack {
	n := 1 + r.Intn(3)
	st := &Stack{}
	for i := 0; i < n; i++ {
		node := New(string(rune('a'+r.Intn(26))), wire.Int(int64(r.Intn(10))))
		node.Scope = Scope(r.Intn(5))
		if depth < 2 && r.Intn(4) == 0 {
			node.Branches = []*Stack{randomStack(r, depth+1), randomStack(r, depth+1)}
		}
		st.Nodes = append(st.Nodes, node)
	}
	return st
}

// Property: canonical encoding round-trips and hash equality matches
// structural equality.
func TestQuickCanonicalEncoding(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		s := randomStack(r, 0)
		if s.Validate() != nil {
			return false
		}
		e := wire.NewEncoder(nil)
		s.Encode(e)
		d := wire.NewDecoder(e.Bytes())
		got := DecodeStack(d)
		if d.Finish() != nil || !got.Equal(s) || got.Hash() != s.Hash() {
			return false
		}
		// Clone equality.
		return s.Clone().Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
