package spec

import (
	"testing"

	"github.com/bertha-net/bertha/internal/wire"
)

// FuzzStackEncodeDecode fuzzes the wire round trip: any byte string the
// decoder accepts must re-encode to a form that decodes to a
// structurally equal stack, and that canonical form must be a fixed
// point of encode∘decode. The seed corpus covers the shapes negotiation
// actually exchanges, including nested Select branches near MaxDepth.
func FuzzStackEncodeDecode(f *testing.F) {
	seed := func(s *Stack) {
		e := wire.NewEncoder(nil)
		s.Encode(e)
		f.Add(e.Bytes())
	}
	seed(nil)
	seed(Seq(New("serialize"), New("reliable")))
	seed(fig2Stack())
	seed(Seq(New("x").WithScope(ScopeApplication), New("shard", wire.Uint(3))))
	inner := Seq(Select("pick", nil, Seq(New("udp")), Seq(New("tcp").WithScope(ScopeHost))))
	seed(Seq(Select("outer", nil, inner, Seq(Select("pick", nil, Seq(New("dpdk")), inner)))))
	deep := Seq(New("leaf"))
	for i := 0; i < MaxDepth; i++ {
		deep = Seq(Select("sel", nil, deep))
	}
	seed(deep)

	f.Fuzz(func(t *testing.T, data []byte) {
		d := wire.NewDecoder(data)
		s1 := DecodeStack(d)
		if d.Finish() != nil {
			return // rejected input: only well-formed encodings round-trip
		}
		e1 := wire.NewEncoder(nil)
		s1.Encode(e1)
		d2 := wire.NewDecoder(e1.Bytes())
		s2 := DecodeStack(d2)
		if err := d2.Finish(); err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v\ninput: %x", err, data)
		}
		if !s2.Equal(s1) {
			t.Fatalf("round trip changed stack: %s -> %s\ninput: %x", s1, s2, data)
		}
		e2 := wire.NewEncoder(nil)
		s2.Encode(e2)
		if string(e2.Bytes()) != string(e1.Bytes()) {
			t.Fatalf("canonical encoding is not a fixed point\ninput: %x", data)
		}
	})
}
