// Package spec defines the Chunnel DAG: the application's declaration of
// which communication-oriented functions a connection endpoint uses
// (paper §3.1, Figure 2, Table 1 "Chunnel DAG").
//
// A Stack is a sequence of Nodes applied outermost-first: data the
// application sends passes through the first node, then the second, and so
// on down to the base transport; received data travels the reverse path.
// The Rust prototype writes this as
//
//	wrap!(A(arg) |> B(B::args([C(), D()])))
//
// which in this package is
//
//	spec.Seq(spec.New("A", arg), spec.Select("B", nil, spec.Seq(spec.New("C")), spec.Seq(spec.New("D"))))
//
// Branching and merging are performed through Select nodes whose branches
// are themselves Stacks; the branch taken is resolved during connection
// negotiation. Subgraphs may carry scoping constraints restricting where
// their chunnels are implemented (§3.1, Table 1 "Scope").
package spec

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"github.com/bertha-net/bertha/internal/wire"
)

// Scope constrains where a chunnel may be implemented (Table 1). Scopes are
// ordered by breadth: a narrower requirement admits fewer locations.
type Scope uint8

// Scope values.
const (
	// ScopeAny places no constraint on where the chunnel runs.
	ScopeAny Scope = iota
	// ScopeApplication requires the implementation to run inside the
	// application process (bertha::scope::Application).
	ScopeApplication
	// ScopeHost requires the implementation to run on the same host as the
	// application (userspace, kernel datapath, or SmartNIC).
	ScopeHost
	// ScopeLocalNet admits in-network implementations within the local
	// network (e.g. a top-of-rack programmable switch).
	ScopeLocalNet
	// ScopeGlobal admits any location, including other networks.
	ScopeGlobal
)

// String returns the scope's name.
func (s Scope) String() string {
	switch s {
	case ScopeAny:
		return "any"
	case ScopeApplication:
		return "application"
	case ScopeHost:
		return "host"
	case ScopeLocalNet:
		return "localnet"
	case ScopeGlobal:
		return "global"
	default:
		return fmt.Sprintf("Scope(%d)", uint8(s))
	}
}

// Valid reports whether s is a defined scope.
func (s Scope) Valid() bool { return s <= ScopeGlobal }

// Endpoint declares which connection endpoints must run an implementation
// of a chunnel for it to function (§4.2, e.g. bertha::endpoints::Both for
// a reliability chunnel that needs logic at sender and receiver).
type Endpoint uint8

// Endpoint values.
const (
	// EndpointEither means one endpoint suffices (either side).
	EndpointEither Endpoint = iota
	// EndpointClient means the chunnel runs at the connecting side.
	EndpointClient
	// EndpointServer means the chunnel runs at the listening side.
	EndpointServer
	// EndpointBoth means both endpoints must run the chunnel.
	EndpointBoth
)

// String returns the endpoint requirement's name.
func (e Endpoint) String() string {
	switch e {
	case EndpointEither:
		return "either"
	case EndpointClient:
		return "client"
	case EndpointServer:
		return "server"
	case EndpointBoth:
		return "both"
	default:
		return fmt.Sprintf("Endpoint(%d)", uint8(e))
	}
}

// Valid reports whether e is a defined endpoint requirement.
func (e Endpoint) Valid() bool { return e <= EndpointBoth }

// Node is one vertex in a Chunnel DAG: a chunnel type, its constructor
// arguments, an optional scope constraint, and, for select nodes, the
// candidate branches.
type Node struct {
	// Type is the chunnel type name, e.g. "shard" or "reliable".
	Type string
	// Args are the constructor arguments forwarded to whichever
	// implementation negotiation selects (§3.1).
	Args []wire.Value
	// Scope constrains where this node (and, for a select node, its
	// branches) may be implemented. ScopeAny means unconstrained.
	Scope Scope
	// Branches, when non-empty, makes this a select node: negotiation
	// resolves it to exactly one branch stack (dataflow-style branching,
	// §3.1). A plain sequence node has no branches.
	Branches []*Stack
}

// New constructs a sequence node of the given chunnel type.
func New(typ string, args ...wire.Value) Node {
	return Node{Type: typ, Args: args}
}

// Select constructs a select node: a chunnel type that chooses among
// branch stacks at negotiation time (e.g. B(B::args([C(), D()]))).
func Select(typ string, args []wire.Value, branches ...*Stack) Node {
	return Node{Type: typ, Args: args, Branches: branches}
}

// WithScope returns a copy of the node carrying a scope constraint.
func (n Node) WithScope(s Scope) Node {
	n.Scope = s
	return n
}

// IsSelect reports whether the node has branches to resolve.
func (n Node) IsSelect() bool { return len(n.Branches) > 0 }

// Stack is a sequence of nodes applied outermost-first.
type Stack struct {
	Nodes []Node
}

// Seq builds a Stack from nodes in application-to-transport order, the
// equivalent of wrap!(a |> b |> c).
func Seq(nodes ...Node) *Stack {
	return &Stack{Nodes: nodes}
}

// Empty reports whether the stack declares no chunnels (Listing 5's client
// passes wrap!() and inherits the server's chunnels).
func (s *Stack) Empty() bool { return s == nil || len(s.Nodes) == 0 }

// Then appends nodes, returning the stack for chaining.
func (s *Stack) Then(nodes ...Node) *Stack {
	s.Nodes = append(s.Nodes, nodes...)
	return s
}

// Types returns the distinct chunnel type names used anywhere in the
// stack, including inside select branches, in first-appearance order.
func (s *Stack) Types() []string {
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	var walk func(st *Stack)
	walk = func(st *Stack) {
		if st == nil {
			return
		}
		for _, n := range st.Nodes {
			if !seen[n.Type] {
				seen[n.Type] = true
				out = append(out, n.Type)
			}
			for _, b := range n.Branches {
				walk(b)
			}
		}
	}
	walk(s)
	return out
}

// ConcreteTypes returns the chunnel types that need implementations:
// every type in the stack except the select-node combinator types
// themselves (their branches are included). Select types only need a
// resolver, not an implementation.
func (s *Stack) ConcreteTypes() []string {
	if s == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	var walk func(st *Stack)
	walk = func(st *Stack) {
		if st == nil {
			return
		}
		for _, n := range st.Nodes {
			if n.IsSelect() {
				for _, b := range n.Branches {
					walk(b)
				}
				continue
			}
			if !seen[n.Type] {
				seen[n.Type] = true
				out = append(out, n.Type)
			}
		}
	}
	walk(s)
	return out
}

// String renders the stack in wrap! notation.
func (s *Stack) String() string {
	if s.Empty() {
		return "wrap!()"
	}
	return "wrap!(" + s.render() + ")"
}

func (s *Stack) render() string {
	parts := make([]string, 0, len(s.Nodes))
	for _, n := range s.Nodes {
		parts = append(parts, n.render())
	}
	return strings.Join(parts, " |> ")
}

func (n Node) render() string {
	var b strings.Builder
	b.WriteString(n.Type)
	if len(n.Args) > 0 || len(n.Branches) > 0 {
		b.WriteByte('(')
		for i, a := range n.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		if len(n.Branches) > 0 {
			if len(n.Args) > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('[')
			for i, br := range n.Branches {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(br.render())
			}
			b.WriteByte(']')
		}
		b.WriteByte(')')
	}
	if n.Scope != ScopeAny {
		fmt.Fprintf(&b, "@%s", n.Scope)
	}
	return b.String()
}

// Validation errors.
var (
	// ErrEmptyType indicates a node without a chunnel type name.
	ErrEmptyType = errors.New("spec: node with empty chunnel type")
	// ErrTooDeep indicates branch nesting beyond MaxDepth.
	ErrTooDeep = errors.New("spec: branch nesting too deep")
	// ErrBadScope indicates an undefined scope value.
	ErrBadScope = errors.New("spec: invalid scope")
	// ErrEmptyBranch indicates a select node with an empty branch stack.
	ErrEmptyBranch = errors.New("spec: select node with empty branch")
)

// MaxDepth bounds select-branch nesting. DAGs are trees by construction
// (acyclic), so depth is the only structural hazard.
const MaxDepth = 8

// Validate checks structural well-formedness: nonempty type names, defined
// scopes, bounded nesting, and nonempty branches.
func (s *Stack) Validate() error {
	return s.validate(0)
}

func (s *Stack) validate(depth int) error {
	if s == nil {
		return nil
	}
	if depth > MaxDepth {
		return ErrTooDeep
	}
	for i, n := range s.Nodes {
		if n.Type == "" {
			return fmt.Errorf("%w (position %d)", ErrEmptyType, i)
		}
		if !n.Scope.Valid() {
			return fmt.Errorf("%w: %d on %q", ErrBadScope, n.Scope, n.Type)
		}
		for j, b := range n.Branches {
			if b.Empty() {
				return fmt.Errorf("%w: %q branch %d", ErrEmptyBranch, n.Type, j)
			}
			if err := b.validate(depth + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// Encode appends the canonical encoding of the stack. Two structurally
// equal stacks produce identical bytes, so negotiation compares Hash
// values to test DAG compatibility.
func (s *Stack) Encode(e *wire.Encoder) {
	if s == nil {
		e.PutLen(0)
		return
	}
	e.PutLen(len(s.Nodes))
	for _, n := range s.Nodes {
		n.encode(e)
	}
}

func (n Node) encode(e *wire.Encoder) {
	e.PutString(n.Type)
	e.PutLen(len(n.Args))
	for _, a := range n.Args {
		a.Encode(e)
	}
	e.PutUint8(uint8(n.Scope))
	e.PutLen(len(n.Branches))
	for _, b := range n.Branches {
		b.Encode(e)
	}
}

// DecodeStack reads a Stack from the decoder.
func DecodeStack(d *wire.Decoder) *Stack {
	return decodeStack(d, 0)
}

func decodeStack(d *wire.Decoder, depth int) *Stack {
	if depth > MaxDepth {
		d.Fail(ErrTooDeep)
		return nil
	}
	n := d.Len()
	if d.Err() != nil {
		return nil
	}
	st := &Stack{Nodes: make([]Node, 0, n)}
	for i := 0; i < n; i++ {
		node := decodeNode(d, depth)
		if d.Err() != nil {
			return nil
		}
		st.Nodes = append(st.Nodes, node)
	}
	return st
}

func decodeNode(d *wire.Decoder, depth int) Node {
	var n Node
	n.Type = d.String()
	na := d.Len()
	if d.Err() != nil {
		return n
	}
	n.Args = make([]wire.Value, 0, na)
	for i := 0; i < na; i++ {
		n.Args = append(n.Args, wire.DecodeValue(d))
		if d.Err() != nil {
			return n
		}
	}
	n.Scope = Scope(d.Uint8())
	nb := d.Len()
	if d.Err() != nil {
		return n
	}
	for i := 0; i < nb; i++ {
		b := decodeStack(d, depth+1)
		if d.Err() != nil {
			return n
		}
		n.Branches = append(n.Branches, b)
	}
	return n
}

// Hash returns a stable hex digest of the stack's canonical encoding.
func (s *Stack) Hash() string {
	e := wire.NewEncoder(nil)
	s.Encode(e)
	sum := sha256.Sum256(e.Bytes())
	return hex.EncodeToString(sum[:8])
}

// Equal reports structural equality via canonical encodings.
func (s *Stack) Equal(o *Stack) bool {
	ea, eb := wire.NewEncoder(nil), wire.NewEncoder(nil)
	s.Encode(ea)
	o.Encode(eb)
	return string(ea.Bytes()) == string(eb.Bytes())
}

// Clone returns a deep copy of the stack.
func (s *Stack) Clone() *Stack {
	if s == nil {
		return nil
	}
	out := &Stack{Nodes: make([]Node, len(s.Nodes))}
	for i, n := range s.Nodes {
		cn := Node{Type: n.Type, Scope: n.Scope}
		cn.Args = append([]wire.Value(nil), n.Args...)
		for _, b := range n.Branches {
			cn.Branches = append(cn.Branches, b.Clone())
		}
		out.Nodes[i] = cn
	}
	return out
}
