//go:build race

// Package testutil holds small helpers shared by tests, notably the
// race-detector flag that allocation-count assertions key off: the race
// runtime instruments allocations, so AllocsPerRun budgets only hold in
// plain builds.
package testutil

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = true
