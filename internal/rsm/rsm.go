// Package rsm implements a replicated state machine over the ordered
// multicast chunnel, in the style of the network-assisted consensus
// designs the paper cites (Speculative Paxos, NOPaxos): the network (or
// a host sequencer fallback) totally orders client operations; replicas
// apply them speculatively in that order and reply directly to clients;
// a client accepts a result once a quorum of replicas report the same
// value for its operation.
//
// Gap slots (multicasts no replica received) are applied as no-ops, so
// replicas remain in identical states.
package rsm

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/core"
)

// opIDLen is the client-generated operation identifier length.
const opIDLen = 16

// StateMachine is the application logic replicated across the group.
// Apply must be deterministic: equal op sequences must produce equal
// results and states.
type StateMachine interface {
	Apply(op []byte) (result []byte)
}

// Func adapts a function to StateMachine.
type Func func(op []byte) []byte

// Apply implements StateMachine.
func (f Func) Apply(op []byte) []byte { return f(op) }

// Replica consumes a group's ordered deliveries and applies them to the
// state machine, answering clients with [opID][result].
type Replica struct {
	sm StateMachine

	mu      sync.Mutex
	applied uint64
	digest  [32]byte // running state digest for divergence checks
}

// NewReplica wraps a state machine.
func NewReplica(sm StateMachine) *Replica {
	return &Replica{sm: sm}
}

// Applied returns how many slots (ops and gaps) have been applied.
func (r *Replica) Applied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

// Digest returns a running hash over the applied op sequence — equal
// across replicas exactly when they applied the same ops in the same
// order.
func (r *Replica) Digest() [32]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.digest
}

// Run applies deliveries until the channel closes or ctx ends.
func (r *Replica) Run(ctx context.Context, deliveries <-chan mcast.Delivery) {
	for {
		select {
		case <-ctx.Done():
			return
		case d, ok := <-deliveries:
			if !ok {
				return
			}
			r.step(ctx, d)
		}
	}
}

func (r *Replica) step(ctx context.Context, d mcast.Delivery) {
	r.mu.Lock()
	r.applied++
	if d.Gap {
		// No-op slot: fold the gap into the digest so all replicas agree.
		r.digest = sha256.Sum256(append(r.digest[:], 0xFF))
		r.mu.Unlock()
		return
	}
	h := sha256.New()
	h.Write(r.digest[:])
	h.Write(d.Payload)
	copy(r.digest[:], h.Sum(nil))
	r.mu.Unlock()

	if len(d.Payload) < opIDLen {
		return // malformed op: applied as digest-only
	}
	opID := d.Payload[:opIDLen]
	result := r.sm.Apply(d.Payload[opIDLen:])
	if d.Reply != nil {
		out := make([]byte, opIDLen+len(result))
		copy(out, opID)
		copy(out[opIDLen:], result)
		_ = d.Reply(ctx, out)
	}
}

// Client invokes operations on the replicated service through an
// ordered-multicast connection.
type Client struct {
	conn core.Conn
	// Quorum is how many matching replies complete an invocation
	// (typically a majority of the replica group).
	Quorum int

	mu      sync.Mutex
	pending map[string]chan []byte

	ctx    context.Context
	cancel context.CancelFunc
	once   sync.Once
}

// NewClient wraps an ordered-multicast connection with the given quorum
// size.
func NewClient(conn core.Conn, quorum int) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		conn:    conn,
		Quorum:  quorum,
		pending: map[string]chan []byte{},
		ctx:     ctx,
		cancel:  cancel,
	}
	go c.pump()
	return c
}

func (c *Client) pump() {
	for {
		m, err := c.conn.Recv(c.ctx)
		if err != nil {
			c.mu.Lock()
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		if len(m) < opIDLen {
			continue
		}
		id := string(m[:opIDLen])
		c.mu.Lock()
		ch := c.pending[id]
		c.mu.Unlock()
		if ch != nil {
			result := append([]byte(nil), m[opIDLen:]...)
			select {
			case ch <- result:
			default: // late replies beyond the buffer are dropped
			}
		}
	}
}

// Invoke multicasts one operation and waits for Quorum matching replies,
// returning the agreed result.
func (c *Client) Invoke(ctx context.Context, op []byte) ([]byte, error) {
	var id [opIDLen]byte
	if _, err := rand.Read(id[:]); err != nil {
		return nil, err
	}
	ch := make(chan []byte, 8)
	c.mu.Lock()
	c.pending[string(id[:])] = ch
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.pending, string(id[:]))
		c.mu.Unlock()
	}()

	frame := make([]byte, opIDLen+len(op))
	copy(frame, id[:])
	copy(frame[opIDLen:], op)
	if err := c.conn.Send(ctx, frame); err != nil {
		return nil, err
	}

	counts := map[string]int{}
	for {
		select {
		case result, ok := <-ch:
			if !ok {
				return nil, core.ErrClosed
			}
			counts[string(result)]++
			if counts[string(result)] >= c.Quorum {
				return result, nil
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("rsm: no quorum for op: %w", ctx.Err())
		case <-c.ctx.Done():
			return nil, core.ErrClosed
		}
	}
}

// Close shuts the client and its connection.
func (c *Client) Close() error {
	c.once.Do(c.cancel)
	return c.conn.Close()
}
