package rsm_test

import (
	"bytes"
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/mcast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/rsm"
	"github.com/bertha-net/bertha/internal/simnet"
	"github.com/bertha-net/bertha/internal/spec"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// counterSM is a deterministic state machine: ops are "add N"; results
// report the running total.
func counterSM() (rsm.StateMachine, *int64) {
	var total int64
	var mu sync.Mutex
	return rsm.Func(func(op []byte) []byte {
		n, _ := strconv.ParseInt(string(op), 10, 64)
		mu.Lock()
		total += n
		v := total
		mu.Unlock()
		return []byte(strconv.FormatInt(v, 10))
	}), &total
}

const gid = "rsm1"

var hosts = []string{"r1", "r2", "r3"}

type cluster struct {
	net      *simnet.Network
	hostMap  map[string]*simnet.Host
	replicas map[string]*rsm.Replica
}

// startCluster deploys the 3-replica RSM on a switch fabric.
func startCluster(t *testing.T, withSwitch bool) *cluster {
	t.Helper()
	ctx := ctxT(t)
	c := &cluster{
		net:      simnet.New(),
		hostMap:  map[string]*simnet.Host{},
		replicas: map[string]*rsm.Replica{},
	}
	t.Cleanup(c.net.Close)
	sw, _ := c.net.AddSwitch("tor", 16)
	for _, h := range append(append([]string{}, hosts...), "cli") {
		host, err := c.net.AddHost(h, sw, simnet.LinkConfig{Latency: 100 * time.Microsecond})
		if err != nil {
			t.Fatal(err)
		}
		c.hostMap[h] = host
	}
	for _, h := range hosts {
		h := h
		reg := core.NewRegistry()
		swImpl, hostImpl := mcast.Register(reg)
		impl := hostImpl
		if withSwitch {
			impl = swImpl
		}
		env := core.NewEnv(h)
		env.Provide(mcast.EnvHost, c.hostMap[h])
		if withSwitch {
			env.Provide(mcast.EnvSwitch, sw)
		}
		env.SetDialer(c.hostMap[h].Dialer())
		if err := impl.EnsureReplica(env, gid, hosts); err != nil {
			t.Fatal(err)
		}
		sm, _ := counterSM()
		rep := rsm.NewReplica(sm)
		c.replicas[h] = rep
		deliveries, _ := impl.Deliveries(gid)
		go rep.Run(ctx, deliveries)

		ep, _ := core.NewEndpoint("rsm-"+h, spec.Seq(mcast.Node(gid, hosts)),
			core.WithRegistry(reg), core.WithEnv(env))
		base, _ := c.hostMap[h].Listen("rsm")
		nl, _ := ep.Listen(ctx, base)
		go func() {
			for {
				if _, err := nl.Accept(ctx); err != nil {
					return
				}
			}
		}()
	}
	return c
}

func (c *cluster) client(t *testing.T) *rsm.Client {
	t.Helper()
	ctx := ctxT(t)
	reg := core.NewRegistry()
	mcast.Register(reg)
	env := core.NewEnv("cli")
	env.SetDialer(c.hostMap["cli"].Dialer())
	ep, _ := core.NewEndpoint("ordered-multicast-client", spec.Seq(),
		core.WithRegistry(reg), core.WithEnv(env))
	var raws []core.Conn
	for _, h := range hosts {
		raw, err := c.hostMap["cli"].Dial(ctx, c.hostMap[h].Addr("rsm"))
		if err != nil {
			t.Fatal(err)
		}
		raws = append(raws, raw)
	}
	conn, err := ep.ConnectMulti(ctx, raws)
	if err != nil {
		t.Fatal(err)
	}
	cli := rsm.NewClient(conn, 2) // majority of 3
	t.Cleanup(func() { cli.Close() })
	return cli
}

func TestRSMLinearCounter(t *testing.T) {
	for name, withSwitch := range map[string]bool{"switch": true, "host": false} {
		withSwitch := withSwitch
		t.Run(name, func(t *testing.T) {
			ctx := ctxT(t)
			c := startCluster(t, withSwitch)
			cli := c.client(t)
			sum := int64(0)
			for i := 1; i <= 20; i++ {
				sum += int64(i)
				res, err := cli.Invoke(ctx, []byte(strconv.Itoa(i)))
				if err != nil {
					t.Fatalf("invoke %d: %v", i, err)
				}
				if string(res) != strconv.FormatInt(sum, 10) {
					t.Fatalf("invoke %d: result %s, want %d", i, res, sum)
				}
			}
		})
	}
}

func TestRSMReplicasStayIdentical(t *testing.T) {
	ctx := ctxT(t)
	c := startCluster(t, true)

	// Two concurrent clients race increments; replica digests must agree.
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := c.client(t)
			for i := 0; i < 15; i++ {
				if _, err := cli.Invoke(ctx, []byte(strconv.Itoa(g*100+i))); err != nil {
					t.Errorf("client %d op %d: %v", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	time.Sleep(300 * time.Millisecond) // let all replicas drain

	var digests [][32]byte
	for _, h := range hosts {
		if got := c.replicas[h].Applied(); got < 30 {
			t.Fatalf("replica %s applied %d of 30", h, got)
		}
		digests = append(digests, c.replicas[h].Digest())
	}
	for i := 1; i < len(digests); i++ {
		if !bytes.Equal(digests[0][:], digests[i][:]) {
			t.Fatalf("replica %s diverged from %s", hosts[i], hosts[0])
		}
	}
}

func TestRSMQuorumToleratesSlowReplica(t *testing.T) {
	// With quorum 2 of 3, results return even if one replica is slow;
	// here all are healthy, but the client must not wait for the third.
	ctx := ctxT(t)
	c := startCluster(t, true)
	cli := c.client(t)
	start := time.Now()
	for i := 0; i < 10; i++ {
		if _, err := cli.Invoke(ctx, []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("10 invocations took %v", elapsed)
	}
}

func TestRSMInvokeFailsWithoutQuorumBeforeDeadline(t *testing.T) {
	ctx := ctxT(t)
	c := startCluster(t, true)
	conn := func() core.Conn {
		reg := core.NewRegistry()
		mcast.Register(reg)
		env := core.NewEnv("cli")
		env.SetDialer(c.hostMap["cli"].Dialer())
		ep, _ := core.NewEndpoint("cli", spec.Seq(), core.WithRegistry(reg), core.WithEnv(env))
		var raws []core.Conn
		for _, h := range hosts {
			raw, _ := c.hostMap["cli"].Dial(ctx, c.hostMap[h].Addr("rsm"))
			raws = append(raws, raw)
		}
		cc, err := ep.ConnectMulti(ctx, raws)
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}()
	// Quorum 4 > 3 replicas: can never be met.
	cli := rsm.NewClient(conn, 4)
	defer cli.Close()
	ictx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()
	if _, err := cli.Invoke(ictx, []byte("1")); err == nil {
		t.Error("quorum 4 of 3 should time out")
	}
}

func TestFuncAdapter(t *testing.T) {
	sm := rsm.Func(func(op []byte) []byte { return append(op, '!') })
	if string(sm.Apply([]byte("x"))) != "x!" {
		t.Error("Func adapter")
	}
}
