package kv_test

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/kv"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
	"github.com/bertha-net/bertha/internal/ycsb"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRequestCodecRoundTrip(t *testing.T) {
	cases := []kv.Request{
		{ID: 1, Op: kv.OpGet, Key: "000000000042"},
		{ID: 2, Op: kv.OpPut, Key: "k1", Value: []byte("hello")},
		{ID: 1 << 60, Op: kv.OpUpdate, Key: "x", Value: bytes.Repeat([]byte{7}, 500)},
		{ID: 0, Op: kv.OpDelete, Key: ""},
	}
	for _, r := range cases {
		e := wire.NewEncoder(nil)
		if err := kv.EncodeRequest(e, r); err != nil {
			t.Fatal(err)
		}
		got, err := kv.DecodeRequest(e.Bytes())
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		wantKey, _ := kv.PadKey(r.Key)
		if got.ID != r.ID || got.Op != r.Op || got.Key != wantKey || !bytes.Equal(got.Value, r.Value) {
			t.Errorf("round trip: %+v -> %+v", r, got)
		}
	}
}

func TestKeyAtFixedOffset(t *testing.T) {
	// The paper's shard function inspects payload[KeyOffset:]; the codec
	// must put the key exactly there.
	e := wire.NewEncoder(nil)
	kv.EncodeRequest(e, kv.Request{ID: 9, Op: kv.OpGet, Key: "000000001234"})
	raw := e.Bytes()
	if got := string(raw[kv.KeyOffset : kv.KeyOffset+kv.KeyLen]); got != "000000001234" {
		t.Errorf("key at offset %d: %q", kv.KeyOffset, got)
	}
}

func TestRequestCodecErrors(t *testing.T) {
	e := wire.NewEncoder(nil)
	if err := kv.EncodeRequest(e, kv.Request{Key: "this key is way too long"}); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := kv.DecodeRequest([]byte{1, 2, 3}); err == nil {
		t.Error("short request accepted")
	}
	// Invalid op.
	e.Reset()
	e.PutUint64(1)
	e.PutUint8(99)
	e.PutUint8(0)
	e.PutRaw(make([]byte, kv.KeyLen))
	if _, err := kv.DecodeRequest(e.Bytes()); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestResponseCodecRoundTrip(t *testing.T) {
	f := func(id uint64, status uint8, value []byte) bool {
		r := kv.Response{ID: id, Status: kv.Status(status % 3), Value: value}
		e := wire.NewEncoder(nil)
		kv.EncodeResponse(e, r)
		got, err := kv.DecodeResponse(e.Bytes())
		return err == nil && got.ID == r.ID && got.Status == r.Status && bytes.Equal(got.Value, r.Value)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := kv.DecodeResponse([]byte{1}); err == nil {
		t.Error("short response accepted")
	}
}

func TestStoreOperations(t *testing.T) {
	s := kv.NewStore()
	key, _ := kv.PadKey("k")
	if resp := s.Apply(kv.Request{ID: 1, Op: kv.OpGet, Key: key}); resp.Status != kv.StatusNotFound {
		t.Errorf("get missing: %s", resp.Status)
	}
	if resp := s.Apply(kv.Request{ID: 2, Op: kv.OpUpdate, Key: key, Value: []byte("v")}); resp.Status != kv.StatusNotFound {
		t.Errorf("update missing: %s", resp.Status)
	}
	if resp := s.Apply(kv.Request{ID: 3, Op: kv.OpPut, Key: key, Value: []byte("v1")}); resp.Status != kv.StatusOK {
		t.Errorf("put: %s", resp.Status)
	}
	if resp := s.Apply(kv.Request{ID: 4, Op: kv.OpGet, Key: key}); resp.Status != kv.StatusOK || string(resp.Value) != "v1" {
		t.Errorf("get: %s %q", resp.Status, resp.Value)
	}
	if resp := s.Apply(kv.Request{ID: 5, Op: kv.OpUpdate, Key: key, Value: []byte("v2")}); resp.Status != kv.StatusOK {
		t.Errorf("update: %s", resp.Status)
	}
	if resp := s.Apply(kv.Request{ID: 6, Op: kv.OpGet, Key: key}); string(resp.Value) != "v2" {
		t.Errorf("get after update: %q", resp.Value)
	}
	if resp := s.Apply(kv.Request{ID: 7, Op: kv.OpDelete, Key: key}); resp.Status != kv.StatusOK {
		t.Errorf("delete: %s", resp.Status)
	}
	if s.Len() != 0 {
		t.Errorf("len after delete: %d", s.Len())
	}
	if resp := s.Apply(kv.Request{ID: 8, Op: kv.Op(99), Key: key}); resp.Status != kv.StatusBadRequest {
		t.Errorf("bad op: %s", resp.Status)
	}
}

func TestStoreValueIsolation(t *testing.T) {
	s := kv.NewStore()
	key, _ := kv.PadKey("k")
	val := []byte("original")
	s.Apply(kv.Request{Op: kv.OpPut, Key: key, Value: val})
	val[0] = 'X' // caller mutation must not leak in
	resp := s.Apply(kv.Request{Op: kv.OpGet, Key: key})
	if string(resp.Value) != "original" {
		t.Error("store shares storage with caller")
	}
	resp.Value[0] = 'Y' // reader mutation must not leak back
	if again := s.Apply(kv.Request{Op: kv.OpGet, Key: key}); string(again.Value) != "original" {
		t.Error("store shares storage with reader")
	}
}

func TestHandleRawMalformed(t *testing.T) {
	s := kv.NewStore()
	resp := s.HandleRaw([]byte{1, 2})
	r, err := kv.DecodeResponse(resp)
	if err != nil || r.Status != kv.StatusBadRequest {
		t.Errorf("malformed request handling: %+v %v", r, err)
	}
}

// startServer builds a 3-shard KV server over a pipe network, with both
// server-side shard impls and the canonical bertha listener.
func startServer(t *testing.T, pn *transport.PipeNetwork, policy core.Policy) (addrs []core.Addr, srv *kv.Server) {
	t.Helper()
	ctx := ctxT(t)
	const nshards = 3
	srv, err := kv.NewServer(nshards)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for i := 0; i < nshards; i++ {
		l, err := pn.Listen("srvhost", fmt.Sprintf("kv-shard%d", i))
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, l.Addr())
		srv.ServeShard(i, l)
	}

	regS := core.NewRegistry()
	shard.RegisterServer(regS)
	shard.RegisterXDP(regS)
	envS := core.NewEnv("srvhost")
	envS.SetDialer(&transport.MultiDialer{HostID: "srvhost", Pipe: pn})
	envS.Provide(shard.EnvQueues, srv.Queues())

	opts := []core.Option{core.WithRegistry(regS), core.WithEnv(envS)}
	if policy != nil {
		opts = append(opts, core.WithPolicy(policy))
	}
	ep, err := core.NewEndpoint("my-kv-srv", spec.Seq(shard.Node(addrs, kv.ShardFunc(nshards))), opts...)
	if err != nil {
		t.Fatal(err)
	}
	base, err := pn.Listen("srvhost", "kv-canonical")
	if err != nil {
		t.Fatal(err)
	}
	nl, err := ep.Listen(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			if _, err := nl.Accept(ctx); err != nil {
				return
			}
		}
	}()
	return addrs, srv
}

func dialKV(t *testing.T, pn *transport.PipeNetwork, withPush bool) *kv.Client {
	t.Helper()
	ctx := ctxT(t)
	regC := core.NewRegistry()
	if withPush {
		shard.RegisterClient(regC)
	}
	envC := core.NewEnv("clihost")
	envC.SetDialer(&transport.MultiDialer{HostID: "clihost", Pipe: pn})
	ep, err := core.NewEndpoint("kv-client", spec.Seq(), core.WithRegistry(regC), core.WithEnv(envC))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := pn.DialFrom(ctx, "clihost", core.Addr{Net: "pipe", Addr: "kv-canonical"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := ep.Connect(ctx, raw)
	if err != nil {
		t.Fatal(err)
	}
	c := kv.NewClient(conn)
	t.Cleanup(func() { c.Close() })
	return c
}

func scenarios() map[string]struct {
	policy core.Policy
	push   bool
} {
	return map[string]struct {
		policy core.Policy
		push   bool
	}{
		"client-push":     {nil, true},
		"server-xdp":      {nil, false},
		"server-fallback": {core.PreferImpl(shard.ImplServer), false},
	}
}

func TestKVEndToEndAllScenarios(t *testing.T) {
	for name, sc := range scenarios() {
		sc := sc
		t.Run(name, func(t *testing.T) {
			ctx := ctxT(t)
			pn := transport.NewPipeNetwork()
			_, srv := startServer(t, pn, sc.policy)
			cli := dialKV(t, pn, sc.push)

			if err := cli.Put(ctx, "000000000001", []byte("one")); err != nil {
				t.Fatal(err)
			}
			got, err := cli.Get(ctx, "000000000001")
			if err != nil || string(got) != "one" {
				t.Fatalf("get: %q %v", got, err)
			}
			if err := cli.Update(ctx, "000000000001", []byte("uno")); err != nil {
				t.Fatal(err)
			}
			if got, _ := cli.Get(ctx, "000000000001"); string(got) != "uno" {
				t.Fatalf("after update: %q", got)
			}
			if _, err := cli.Get(ctx, "000000009999"); err == nil {
				t.Error("get of missing key should fail")
			}
			if err := cli.Delete(ctx, "000000000001"); err != nil {
				t.Fatal(err)
			}
			if srv.TotalKeys() != 0 {
				t.Errorf("keys after delete: %d", srv.TotalKeys())
			}
		})
	}
}

func TestKVShardPlacement(t *testing.T) {
	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	_, srv := startServer(t, pn, nil)
	cli := dialKV(t, pn, true)

	const n = 90
	for i := 0; i < n; i++ {
		if err := cli.Put(ctx, ycsb.Key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Every key must live on exactly the shard the shard function says.
	total := 0
	for i := 0; i < srv.NumShards(); i++ {
		total += srv.Shard(i).Len()
		if srv.Shard(i).Len() == 0 {
			t.Errorf("shard %d is empty: keys not spread", i)
		}
	}
	if total != n {
		t.Errorf("total keys %d, want %d", total, n)
	}
	for i := 0; i < n; i++ {
		idx, _ := kv.ShardOf(ycsb.Key(i), srv.NumShards())
		key, _ := kv.PadKey(ycsb.Key(i))
		if resp := srv.Shard(idx).Apply(kv.Request{Op: kv.OpGet, Key: key}); resp.Status != kv.StatusOK {
			t.Errorf("key %s not on predicted shard %d", key, idx)
		}
	}
}

func TestKVConcurrentClients(t *testing.T) {
	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	startServer(t, pn, nil)

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cli := dialKV(t, pn, g%2 == 0) // mixed: half push, half server-side
			for i := 0; i < 50; i++ {
				key := ycsb.Key(g*1000 + i)
				if err := cli.Put(ctx, key, []byte{byte(g), byte(i)}); err != nil {
					errs <- fmt.Errorf("client %d put %d: %w", g, i, err)
					return
				}
				v, err := cli.Get(ctx, key)
				if err != nil || !bytes.Equal(v, []byte{byte(g), byte(i)}) {
					errs <- fmt.Errorf("client %d get %d: %q %v", g, i, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestYCSBWorkloadAgainstServer(t *testing.T) {
	ctx := ctxT(t)
	pn := transport.NewPipeNetwork()
	_, srv := startServer(t, pn, nil)

	gen, err := ycsb.NewGenerator(ycsb.Config{
		Workload: ycsb.WorkloadA, Records: 200,
		Dist: ycsb.Uniform, OverrideDist: true,
		ValueSize: 64, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Preload(gen.InitialKeys(), bytes.Repeat([]byte{1}, 64)); err != nil {
		t.Fatal(err)
	}
	if srv.TotalKeys() != 200 {
		t.Fatalf("preload: %d keys", srv.TotalKeys())
	}

	cli := dialKV(t, pn, true)
	for i := 0; i < 500; i++ {
		op := gen.Next()
		switch op.Kind {
		case ycsb.Read:
			if _, err := cli.Get(ctx, op.Key); err != nil {
				t.Fatalf("op %d read %s: %v", i, op.Key, err)
			}
		case ycsb.Update:
			if err := cli.Update(ctx, op.Key, op.Value); err != nil {
				t.Fatalf("op %d update %s: %v", i, op.Key, err)
			}
		}
	}
}
