package kv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// Client issues requests over a (negotiated) connection, correlating
// concurrent responses by request id. It is safe for concurrent use, so
// a single connection can carry many in-flight operations — required for
// the §5 closed-loop load generators.
type Client struct {
	conn core.Conn

	nextID  atomic.Uint64
	mu      sync.Mutex
	pending map[uint64]chan Response

	ctx    context.Context
	cancel context.CancelFunc
	once   sync.Once
	encMu  sync.Mutex
	enc    *wire.Encoder
}

// NewClient wraps a connection and starts the response pump.
func NewClient(conn core.Conn) *Client {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan Response{},
		ctx:     ctx,
		cancel:  cancel,
		enc:     wire.NewEncoder(nil),
	}
	go c.pump()
	return c
}

func (c *Client) pump() {
	for {
		p, err := c.conn.Recv(c.ctx)
		if err != nil {
			// Fail all waiters.
			c.mu.Lock()
			for id, ch := range c.pending {
				close(ch)
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		resp, err := DecodeResponse(p)
		if err != nil {
			continue // malformed response: drop
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// Do issues one operation and waits for its response.
func (c *Client) Do(ctx context.Context, op Op, key string, value []byte) (Response, error) {
	id := c.nextID.Add(1)
	ch := make(chan Response, 1)
	c.mu.Lock()
	c.pending[id] = ch
	c.mu.Unlock()

	c.encMu.Lock()
	c.enc.Reset()
	err := EncodeRequest(c.enc, Request{ID: id, Op: op, Key: key, Value: value})
	var buf []byte
	if err == nil {
		buf = append([]byte(nil), c.enc.Bytes()...)
	}
	c.encMu.Unlock()
	if err != nil {
		c.drop(id)
		return Response{}, err
	}
	if err := c.conn.Send(ctx, buf); err != nil {
		c.drop(id)
		return Response{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return Response{}, core.ErrClosed
		}
		return resp, nil
	case <-ctx.Done():
		c.drop(id)
		return Response{}, ctx.Err()
	case <-c.ctx.Done():
		return Response{}, core.ErrClosed
	}
}

func (c *Client) drop(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Get reads a key.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.Do(ctx, OpGet, key, nil)
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case StatusOK:
		return resp.Value, nil
	case StatusNotFound:
		return nil, fmt.Errorf("kv: %q not found", key)
	default:
		return nil, fmt.Errorf("kv: get %q: %s", key, resp.Status)
	}
}

// Put writes a key.
func (c *Client) Put(ctx context.Context, key string, value []byte) error {
	resp, err := c.Do(ctx, OpPut, key, value)
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: put %q: %s", key, resp.Status)
	}
	return nil
}

// Update rewrites an existing key.
func (c *Client) Update(ctx context.Context, key string, value []byte) error {
	resp, err := c.Do(ctx, OpUpdate, key, value)
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: update %q: %s", key, resp.Status)
	}
	return nil
}

// Delete removes a key.
func (c *Client) Delete(ctx context.Context, key string) error {
	resp, err := c.Do(ctx, OpDelete, key, nil)
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("kv: delete %q: %s", key, resp.Status)
	}
	return nil
}

// Close shuts the client and its connection.
func (c *Client) Close() error {
	c.once.Do(c.cancel)
	return c.conn.Close()
}
