package kv

import (
	"context"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/chunnels/shard"
	"github.com/bertha-net/bertha/internal/core"
)

// Server is the sharded key-value server: one Store and one worker per
// shard. Each worker serves requests from two sources, matching the §5
// deployment variants:
//
//   - its shard listener — direct connections from client-push clients
//     and forwarded requests from the server-fallback steering proxy;
//   - its steered queue — requests redirected by the XDP steering
//     program in the receive path.
type Server struct {
	shards []*Store
	queues []chan shard.Steered

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// queueDepth is the per-shard steered-queue capacity.
const queueDepth = 8192

// NewServer creates a server with nshards shards.
func NewServer(nshards int) (*Server, error) {
	if nshards <= 0 {
		return nil, fmt.Errorf("kv: invalid shard count %d", nshards)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{ctx: ctx, cancel: cancel}
	for i := 0; i < nshards; i++ {
		s.shards = append(s.shards, NewStore())
		s.queues = append(s.queues, make(chan shard.Steered, queueDepth))
	}
	// Steered-queue workers.
	for i := range s.queues {
		s.wg.Add(1)
		go s.queueWorker(i)
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Shard exposes a shard's store (for preloading and verification).
func (s *Server) Shard(i int) *Store { return s.shards[i] }

// Queues returns the per-shard steered queues, provided to the shard
// chunnel's XDP implementation through Env (shard.EnvQueues).
func (s *Server) Queues() []chan shard.Steered { return s.queues }

// ServeShard accepts direct connections for shard i on l until the
// server closes. Each connection's requests are applied to the shard's
// store and answered in place.
func (s *Server) ServeShard(i int, l core.Listener) {
	if i < 0 || i >= len(s.shards) {
		panic(fmt.Sprintf("kv: shard %d out of range", i))
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := l.Accept(s.ctx)
			if err != nil {
				return
			}
			s.wg.Add(1)
			go func(conn core.Conn) {
				defer s.wg.Done()
				defer conn.Close()
				for {
					p, err := conn.Recv(s.ctx)
					if err != nil {
						return
					}
					if err := conn.Send(s.ctx, s.shards[i].HandleRaw(p)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
}

func (s *Server) queueWorker(i int) {
	defer s.wg.Done()
	for {
		select {
		case st := <-s.queues[i]:
			resp := s.shards[i].HandleRaw(st.Payload)
			if st.Reply != nil {
				_ = st.Reply(s.ctx, resp)
			}
		case <-s.ctx.Done():
			return
		}
	}
}

// Preload inserts keys directly (bypassing the wire) for benchmark
// setup. Keys are padded and routed to their shard's store.
func (s *Server) Preload(keys []string, value []byte) error {
	for _, k := range keys {
		padded, err := PadKey(k)
		if err != nil {
			return err
		}
		idx, err := ShardOf(k, len(s.shards))
		if err != nil {
			return err
		}
		s.shards[idx].Apply(Request{Op: OpPut, Key: padded, Value: value})
	}
	return nil
}

// TotalKeys sums keys across shards.
func (s *Server) TotalKeys() int {
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}

// Close stops all workers and waits for them.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}
