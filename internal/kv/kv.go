// Package kv implements the sharded key-value store of Listing 4/5 and
// the §5 sharding evaluation: a hashmap-backed store partitioned into
// shards (one worker per shard, the paper's thread-per-shard layout),
// serving Get/Put/Update over the repo's binary wire format atop
// datagram connections.
//
// The wire format places the key at a fixed offset so declarative shard
// functions (and their XDP/switch offloads) can steer requests without
// parsing: requests are
//
//	[id u64][op u8][pad u8][key KeyLen bytes][value ...]
//
// making the key bytes live at offset 10 — matching the paper's example
// shard function hash(p.payload[10..14]).
package kv

import (
	"errors"
	"fmt"

	"github.com/bertha-net/bertha/internal/wire"
	"github.com/bertha-net/bertha/internal/xdp"
)

// KeyLen is the fixed key width. Keys shorter than KeyLen are
// zero-padded on the left; longer keys are invalid.
const KeyLen = 12

// KeyOffset is the byte offset of the key within a request, fixed by
// the wire layout above.
const KeyOffset = 10

// Op codes.
type Op uint8

// Operations.
const (
	// OpGet reads a key.
	OpGet Op = iota + 1
	// OpPut writes a key (creates or replaces).
	OpPut
	// OpUpdate rewrites an existing key (fails when absent) — the YCSB
	// "update" verb.
	OpUpdate
	// OpDelete removes a key.
	OpDelete
)

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Status codes.
type Status uint8

// Response statuses.
const (
	// StatusOK indicates success; Get responses carry the value.
	StatusOK Status = iota
	// StatusNotFound indicates the key does not exist.
	StatusNotFound
	// StatusBadRequest indicates a malformed request.
	StatusBadRequest
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBadRequest:
		return "BAD_REQUEST"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Request is one client operation.
type Request struct {
	ID    uint64
	Op    Op
	Key   string
	Value []byte
}

// Response is the store's answer.
type Response struct {
	ID     uint64
	Status Status
	Value  []byte
}

// ErrBadKey indicates a key longer than KeyLen.
var ErrBadKey = errors.New("kv: key exceeds fixed width")

// PadKey left-pads a key to KeyLen with zero bytes.
func PadKey(key string) (string, error) {
	if len(key) > KeyLen {
		return "", fmt.Errorf("%w: %q (%d > %d)", ErrBadKey, key, len(key), KeyLen)
	}
	if len(key) == KeyLen {
		return key, nil
	}
	pad := make([]byte, KeyLen-len(key))
	return string(pad) + key, nil
}

// EncodeRequest appends the fixed-layout request encoding.
func EncodeRequest(e *wire.Encoder, r Request) error {
	key, err := PadKey(r.Key)
	if err != nil {
		return err
	}
	e.PutUint64(r.ID)
	e.PutUint8(uint8(r.Op))
	e.PutUint8(0) // pad: key lands at KeyOffset
	e.PutRaw([]byte(key))
	e.PutRaw(r.Value)
	return nil
}

// DecodeRequest parses a fixed-layout request.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < KeyOffset+KeyLen {
		return Request{}, fmt.Errorf("kv: short request (%d bytes)", len(p))
	}
	d := wire.NewDecoder(p)
	r := Request{
		ID: d.Uint64(),
		Op: Op(d.Uint8()),
	}
	d.Uint8() // pad
	r.Key = string(d.Raw(KeyLen))
	val := d.Raw(d.Remaining())
	if len(val) > 0 {
		r.Value = append([]byte(nil), val...)
	}
	if err := d.Finish(); err != nil {
		return Request{}, err
	}
	if r.Op < OpGet || r.Op > OpDelete {
		return Request{}, fmt.Errorf("kv: invalid op %d", r.Op)
	}
	return r, nil
}

// EncodeResponse appends the response encoding.
func EncodeResponse(e *wire.Encoder, r Response) {
	e.PutUint64(r.ID)
	e.PutUint8(uint8(r.Status))
	e.PutRaw(r.Value)
}

// DecodeResponse parses a response.
func DecodeResponse(p []byte) (Response, error) {
	if len(p) < 9 {
		return Response{}, fmt.Errorf("kv: short response (%d bytes)", len(p))
	}
	d := wire.NewDecoder(p)
	r := Response{
		ID:     d.Uint64(),
		Status: Status(d.Uint8()),
	}
	val := d.Raw(d.Remaining())
	if len(val) > 0 {
		r.Value = append([]byte(nil), val...)
	}
	return r, d.Finish()
}

// ShardFunc returns the declarative shard function for nshards: the
// paper's hash(payload[KeyOffset:KeyOffset+KeyLen]) % nshards.
func ShardFunc(nshards int) xdp.FieldHash {
	return xdp.FieldHash{Offset: KeyOffset, Length: KeyLen, Shards: nshards}
}

// ShardOf computes the shard index of a key under nshards.
func ShardOf(key string, nshards int) (int, error) {
	padded, err := PadKey(key)
	if err != nil {
		return 0, err
	}
	probe := make([]byte, KeyOffset+KeyLen)
	copy(probe[KeyOffset:], padded)
	return ShardFunc(nshards).Apply(probe), nil
}
