package kv

import (
	"sync"

	"github.com/bertha-net/bertha/internal/wire"
)

// Store is one shard's hashmap (the paper's store uses Rust's standard
// hashmap; this is Go's, guarded for concurrent access).
type Store struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{m: make(map[string][]byte)}
}

// Len returns the number of keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// Apply executes one request against the store.
func (s *Store) Apply(r Request) Response {
	switch r.Op {
	case OpGet:
		s.mu.RLock()
		v, ok := s.m[r.Key]
		s.mu.RUnlock()
		if !ok {
			return Response{ID: r.ID, Status: StatusNotFound}
		}
		out := make([]byte, len(v))
		copy(out, v)
		return Response{ID: r.ID, Status: StatusOK, Value: out}
	case OpPut:
		v := make([]byte, len(r.Value))
		copy(v, r.Value)
		s.mu.Lock()
		s.m[r.Key] = v
		s.mu.Unlock()
		return Response{ID: r.ID, Status: StatusOK}
	case OpUpdate:
		v := make([]byte, len(r.Value))
		copy(v, r.Value)
		s.mu.Lock()
		_, ok := s.m[r.Key]
		if ok {
			s.m[r.Key] = v
		}
		s.mu.Unlock()
		if !ok {
			return Response{ID: r.ID, Status: StatusNotFound}
		}
		return Response{ID: r.ID, Status: StatusOK}
	case OpDelete:
		s.mu.Lock()
		_, ok := s.m[r.Key]
		delete(s.m, r.Key)
		s.mu.Unlock()
		if !ok {
			return Response{ID: r.ID, Status: StatusNotFound}
		}
		return Response{ID: r.ID, Status: StatusOK}
	default:
		return Response{ID: r.ID, Status: StatusBadRequest}
	}
}

// HandleRaw decodes a raw request, applies it, and returns the encoded
// response — the common path for every delivery mechanism (direct
// connections, steered queues, forwarded packets).
func (s *Store) HandleRaw(p []byte) []byte {
	e := wire.NewEncoder(nil)
	req, err := DecodeRequest(p)
	if err != nil {
		// Echo the (possible) id with a bad-request status.
		var id uint64
		if len(p) >= 8 {
			d := wire.NewDecoder(p)
			id = d.Uint64()
		}
		EncodeResponse(e, Response{ID: id, Status: StatusBadRequest})
		return append([]byte(nil), e.Bytes()...)
	}
	EncodeResponse(e, s.Apply(req))
	return append([]byte(nil), e.Bytes()...)
}
