// Package simnet is an in-memory network fabric: named hosts attached to
// switches over FIFO links with configurable latency and loss, and
// switches carrying match-action pipelines that can host in-network
// chunnel offloads (shard steering, multicast sequencing).
//
// It substitutes for the paper's hardware testbed (DESIGN.md §1): the
// Tofino-class programmable switch becomes a Switch with a bounded
// match-action table that chunnel implementations program during Init —
// the same architectural slot, with resource accounting that feeds the
// discovery service's claim mechanism.
//
// Addresses use network "sim": sim://<host>/<host>:<service>.
package simnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
)

// Packet is one in-flight datagram.
type Packet struct {
	Src, Dst core.Addr
	Payload  []byte
}

// clone deep-copies the packet (actions may rewrite).
func (p Packet) clone() Packet {
	buf := make([]byte, len(p.Payload))
	copy(buf, p.Payload)
	return Packet{Src: p.Src, Dst: p.Dst, Payload: buf}
}

// Network is the fabric: hosts, switches, and the links between them.
type Network struct {
	mu       sync.Mutex
	hosts    map[string]*Host
	switches map[string]*Switch
	closed   bool

	// spans, when set via EnableTracing, receives per-switch forwarding
	// spans for sampled traced frames.
	spans *tracing.SpanRing
}

// New returns an empty network.
func New() *Network {
	return &Network{hosts: map[string]*Host{}, switches: map[string]*Switch{}}
}

// Close tears down all hosts, switches, and links.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	hosts := make([]*Host, 0, len(n.hosts))
	for _, h := range n.hosts {
		hosts = append(hosts, h)
	}
	switches := make([]*Switch, 0, len(n.switches))
	for _, s := range n.switches {
		switches = append(switches, s)
	}
	n.mu.Unlock()
	for _, h := range hosts {
		h.close()
	}
	for _, s := range switches {
		s.close()
	}
}

// AddSwitch creates a switch with the given match-action table capacity
// (entries). Capacity gates offload installation: a chunnel whose entries
// do not fit falls back to software (§2, §6 "the switch only has capacity
// for one").
func (n *Network) AddSwitch(name string, tableCapacity int) (*Switch, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.switches[name]; dup {
		return nil, fmt.Errorf("simnet: switch %q exists", name)
	}
	s := &Switch{
		net:      n,
		name:     name,
		capacity: tableCapacity,
		groups:   map[string][]core.Addr{},
		inbox:    make(chan Packet, 8192),
		done:     make(chan struct{}),
	}
	n.switches[name] = s
	if n.spans != nil {
		s.setTraceRing(n.spans)
	}
	go s.forwardLoop()
	return s, nil
}

// LinkConfig describes a host's uplink to its switch.
type LinkConfig struct {
	// Latency is the one-way host↔switch propagation delay.
	Latency time.Duration
	// Bandwidth is the link rate in bytes per second; each packet adds
	// a serialization delay of len/Bandwidth and packets queue FIFO
	// behind each other's transmission. Zero means infinite bandwidth.
	Bandwidth int64
	// LossProb is the probability a packet is dropped on this link.
	LossProb float64
	// Seed makes loss deterministic.
	Seed int64
}

// AddHost creates a host attached to sw.
func (n *Network) AddHost(name string, sw *Switch, cfg LinkConfig) (*Host, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.hosts[name]; dup {
		return nil, fmt.Errorf("simnet: host %q exists", name)
	}
	h := &Host{
		net:      n,
		name:     name,
		sw:       sw,
		services: map[string]*svcListener{},
		done:     make(chan struct{}),
	}
	h.up = newWire(cfg, sw.deliverFromHost)
	h.down = newWire(cfg, h.deliver)
	n.hosts[name] = h
	return h, nil
}

func (n *Network) host(name string) (*Host, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.hosts[name]
	return h, ok
}

// wire is a FIFO delay line: packets emerge in send order after their
// serialization delay (len/bandwidth, queued behind earlier packets)
// plus the propagation latency, with probabilistic loss.
type wire struct {
	cfg     LossySchedule
	deliver func(Packet)
	ch      chan timedPacket
	done    chan struct{}
	once    sync.Once

	txMu       sync.Mutex
	bandwidth  int64
	lastDepart time.Time
}

// LossySchedule bundles latency and seeded loss.
type LossySchedule struct {
	Latency time.Duration
	Loss    float64
	rng     *rand.Rand
	mu      sync.Mutex
}

func (s *LossySchedule) drop() bool {
	if s.Loss <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64() < s.Loss
}

type timedPacket struct {
	at  time.Time
	pkt Packet
}

func newWire(cfg LinkConfig, deliver func(Packet)) *wire {
	w := &wire{
		cfg:       LossySchedule{Latency: cfg.Latency, Loss: cfg.LossProb, rng: rand.New(rand.NewSource(cfg.Seed))},
		deliver:   deliver,
		ch:        make(chan timedPacket, 8192),
		done:      make(chan struct{}),
		bandwidth: cfg.Bandwidth,
	}
	go w.run()
	return w
}

// spinThreshold is how much of each delay is busy-waited: Go timers
// carry platform slack on the order of a millisecond, which would
// swamp sub-millisecond link latencies. Sleeping the bulk and spinning
// the tail keeps delivery times accurate to a few microseconds.
const spinThreshold = 500 * time.Microsecond

func (w *wire) run() {
	for {
		select {
		case tp := <-w.ch:
			if d := time.Until(tp.at); d > 0 {
				if d > spinThreshold {
					select {
					case <-time.After(d - spinThreshold):
					case <-w.done:
						return
					}
				}
				for time.Now().Before(tp.at) {
					runtime.Gosched()
				}
			}
			w.deliver(tp.pkt)
		case <-w.done:
			return
		}
	}
}

func (w *wire) send(pkt Packet) {
	if w.cfg.drop() {
		return
	}
	now := time.Now()
	depart := now
	if w.bandwidth > 0 {
		tx := time.Duration(int64(len(pkt.Payload)) * int64(time.Second) / w.bandwidth)
		w.txMu.Lock()
		start := now
		if w.lastDepart.After(start) {
			start = w.lastDepart // queue behind the packet ahead
		}
		depart = start.Add(tx)
		w.lastDepart = depart
		w.txMu.Unlock()
	}
	select {
	case w.ch <- timedPacket{at: depart.Add(w.cfg.Latency), pkt: pkt}:
	default: // wire saturated: drop (datagram semantics)
	}
}

func (w *wire) close() { w.once.Do(func() { close(w.done) }) }
