package simnet

import (
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/telemetry/tracing"
)

// TestSwitchForwardingSpans: a sampled data frame crossing a switch with
// tracing enabled records a fwd span and gets its in-band hop count
// incremented; unsampled and untagged frames pass through untouched.
func TestSwitchForwardingSpans(t *testing.T) {
	ctx := ctxT(t)
	n, _, hs := star(t, 0, "a", "b")
	ring := tracing.NewSpanRing(64)
	n.EnableTracing(ring)

	l, err := hs["b"].Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	if err != nil {
		t.Fatal(err)
	}

	// A sampled data frame: mux tag, trace context (hop 0), payload.
	const traceID = 0xBEEFCAFE
	frame := make([]byte, 1+tracing.ContextSize+4)
	frame[0] = dataTag
	tracing.EncodeContext(frame[1:], traceID, 7, 0)
	copy(frame[1+tracing.ContextSize:], "data")
	if err := cli.Send(ctx, frame); err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := srv.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, id, span, hop, sampled, ok := tracing.ParseContext(got[1:])
	if !ok || !sampled || id != traceID || span != 7 {
		t.Fatalf("context mangled in transit: id=%x span=%d sampled=%v ok=%v", id, span, sampled, ok)
	}
	if hop != 1 {
		t.Fatalf("switch did not bump hop count: got %d, want 1", hop)
	}
	if string(got[1+tracing.ContextSize:]) != "data" {
		t.Fatalf("payload corrupted: %q", got)
	}

	// An unsampled marker frame and an untagged frame record nothing and
	// arrive byte-identical.
	if err := cli.Send(ctx, []byte{dataTag, tracing.FlagUnsampled, 'x'}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(ctx, []byte("no tag here")); err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(ctx); err != nil || string(m[1:]) != string([]byte{tracing.FlagUnsampled, 'x'}) {
		t.Fatalf("marker frame: %q %v", m, err)
	}
	if m, err := srv.Recv(ctx); err != nil || string(m) != "no tag here" {
		t.Fatalf("untagged frame: %q %v", m, err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for ring.Total() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	spans := ring.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("recorded %d spans, want exactly 1 (sampled frame only): %+v", len(spans), spans)
	}
	s := spans[0]
	if s.Kind != tracing.KindFwd || s.TraceID != traceID || s.Layer != "switch" || s.Impl != "tor" {
		t.Fatalf("fwd span wrong: %+v", s)
	}
	if s.Hop != 1 || s.Count != 1 {
		t.Fatalf("fwd span hop/count: %+v", s)
	}
}

// TestSwitchTracingLateSwitch: switches added after EnableTracing
// inherit the ring.
func TestSwitchTracingLateSwitch(t *testing.T) {
	n := New()
	t.Cleanup(n.Close)
	ring := tracing.NewSpanRing(16)
	n.EnableTracing(ring)
	sw, err := n.AddSwitch("late", 4)
	if err != nil {
		t.Fatal(err)
	}
	if h := sw.fwd.Load(); h == nil || !h.Active() {
		t.Fatal("late-added switch did not inherit the trace ring")
	}
}
