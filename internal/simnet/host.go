package simnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/core"
	wbuf "github.com/bertha-net/bertha/internal/wire"
)

// Host is a machine on the fabric. Services listen at
// sim://<host>/<host>:<service>; each outbound connection gets a unique
// source address so replies demultiplex correctly.
type Host struct {
	net  *Network
	name string
	sw   *Switch

	up   *wire // host -> switch
	down *wire // switch -> host

	mu       sync.Mutex
	services map[string]*svcListener
	flows    map[string]*hostConn // by local flow address
	nextFlow atomic.Uint64
	done     chan struct{}
	once     sync.Once
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Switch returns the switch the host is attached to.
func (h *Host) Switch() *Switch { return h.sw }

// Addr returns the fabric address for a service on this host.
func (h *Host) Addr(service string) core.Addr {
	return core.Addr{Net: "sim", Host: h.name, Addr: h.name + ":" + service}
}

// Listen binds a demultiplexing listener for the named service.
func (h *Host) Listen(service string) (core.Listener, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.services[service]; dup {
		return nil, fmt.Errorf("simnet: service %q already bound on %s", service, h.name)
	}
	l := &svcListener{
		host:   h,
		addr:   h.Addr(service),
		peers:  map[string]*hostConn{},
		accept: make(chan *hostConn, 256),
		closed: make(chan struct{}),
	}
	h.services[service] = l
	return l, nil
}

// Dial opens a connection to a service address anywhere on the fabric.
func (h *Host) Dial(ctx context.Context, addr core.Addr) (core.Conn, error) {
	if addr.Net != "sim" {
		return nil, fmt.Errorf("simnet: cannot dial %q address %s", addr.Net, addr)
	}
	flow := fmt.Sprintf("%s:flow%d", h.name, h.nextFlow.Add(1))
	conn := &hostConn{
		host:   h,
		local:  core.Addr{Net: "sim", Host: h.name, Addr: flow},
		remote: addr,
		recv:   make(chan *wbuf.Buf, 1024),
		closed: make(chan struct{}),
	}
	h.mu.Lock()
	if h.flows == nil {
		h.flows = map[string]*hostConn{}
	}
	h.flows[flow] = conn
	h.mu.Unlock()
	return conn, nil
}

// Dialer returns a core.Dialer for this host.
func (h *Host) Dialer() core.Dialer {
	return core.DialerFunc(h.Dial)
}

// send pushes a packet onto the uplink.
func (h *Host) send(pkt Packet) {
	h.up.send(pkt)
}

// deliver routes an arriving packet to a flow or service listener.
func (h *Host) deliver(pkt Packet) {
	h.mu.Lock()
	// Outbound flow reply?
	if conn, ok := h.flows[pkt.Dst.Addr]; ok {
		h.mu.Unlock()
		conn.push(pkt.Payload)
		return
	}
	// Service?
	service := ""
	if i := len(h.name) + 1; len(pkt.Dst.Addr) > i && pkt.Dst.Addr[:i] == h.name+":" {
		service = pkt.Dst.Addr[i:]
	}
	l, ok := h.services[service]
	h.mu.Unlock()
	if !ok {
		return // no listener: drop
	}
	l.deliver(pkt)
}

func (h *Host) close() {
	h.once.Do(func() {
		close(h.done)
		h.up.close()
		h.down.close()
		h.mu.Lock()
		for _, l := range h.services {
			l.closeLocked()
		}
		for _, c := range h.flows {
			c.closePeer()
		}
		h.mu.Unlock()
	})
}

func (h *Host) dropFlow(flow string) {
	h.mu.Lock()
	delete(h.flows, flow)
	h.mu.Unlock()
}

func (h *Host) dropService(service string) {
	h.mu.Lock()
	delete(h.services, service)
	h.mu.Unlock()
}

// svcListener demultiplexes arriving packets by source address.
type svcListener struct {
	host *Host
	addr core.Addr

	mu     sync.Mutex
	peers  map[string]*hostConn
	accept chan *hostConn
	closed chan struct{}
	once   sync.Once
}

func (l *svcListener) deliver(pkt Packet) {
	key := pkt.Src.String()
	l.mu.Lock()
	conn, ok := l.peers[key]
	if !ok {
		conn = &hostConn{
			host:     l.host,
			local:    l.addr,
			remote:   pkt.Src,
			recv:     make(chan *wbuf.Buf, 1024),
			closed:   make(chan struct{}),
			listener: l,
		}
		l.peers[key] = conn
		select {
		case l.accept <- conn:
		default:
			delete(l.peers, key)
			l.mu.Unlock()
			return // accept backlog full
		}
	}
	l.mu.Unlock()
	conn.push(pkt.Payload)
}

func (l *svcListener) Accept(ctx context.Context) (core.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *svcListener) Addr() core.Addr { return l.addr }

func (l *svcListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		service := ""
		if i := len(l.host.name) + 1; len(l.addr.Addr) > i {
			service = l.addr.Addr[i:]
		}
		l.host.dropService(service)
		l.mu.Lock()
		for _, c := range l.peers {
			c.closePeer()
		}
		l.mu.Unlock()
	})
	return nil
}

func (l *svcListener) closeLocked() {
	l.once.Do(func() {
		close(l.closed)
		for _, c := range l.peers {
			c.closePeer()
		}
	})
}

func (l *svcListener) dropPeer(key string) {
	l.mu.Lock()
	delete(l.peers, key)
	l.mu.Unlock()
}

// hostConn is a connected fabric endpoint (either a dialed flow or a
// listener's per-peer connection).
type hostConn struct {
	host          *Host
	local, remote core.Addr
	recv          chan *wbuf.Buf
	closed        chan struct{}
	once          sync.Once
	listener      *svcListener // nil for dialed flows
}

// push copies an arriving packet payload into a pooled buffer. Packet
// payloads stay plain []byte on the fabric itself because switches may
// duplicate a packet to several ports; only the final per-host copy is
// pooled.
func (c *hostConn) push(p []byte) {
	b := wbuf.NewBufFrom(wbuf.DefaultHeadroom, p)
	select {
	case c.recv <- b:
	default:
		b.Release() // receiver overrun: drop
	}
}

func (c *hostConn) Send(ctx context.Context, p []byte) error {
	select {
	case <-c.closed:
		return core.ErrClosed
	default:
	}
	buf := make([]byte, len(p))
	copy(buf, p)
	c.host.send(Packet{Src: c.local, Dst: c.remote, Payload: buf})
	return nil
}

// SendBuf copies into a fabric packet (packets may be duplicated by
// switches, so they cannot carry pooled buffers) and releases b.
func (c *hostConn) SendBuf(ctx context.Context, b *wbuf.Buf) error {
	err := c.Send(ctx, b.Bytes())
	b.Release()
	return err
}

// SendBufs injects the burst onto the fabric with one closed-state
// check up front. Each message is still copied into its own Packet
// (switches may duplicate packets across ports); all buffers are
// released here.
func (c *hostConn) SendBufs(ctx context.Context, bs []*wbuf.Buf) error {
	select {
	case <-c.closed:
		core.ReleaseAll(bs)
		return &core.BatchError{Sent: 0, Err: core.ErrClosed}
	default:
	}
	for _, b := range bs {
		p := b.Bytes()
		buf := make([]byte, len(p))
		copy(buf, p)
		c.host.send(Packet{Src: c.local, Dst: c.remote, Payload: buf})
		b.Release()
	}
	return nil
}

// RecvBufs blocks for the first message, then drains whatever the
// fabric has already delivered to this endpoint's queue.
func (c *hostConn) RecvBufs(ctx context.Context, into []*wbuf.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	into[0] = b
	n := 1
	for n < len(into) {
		select {
		case b := <-c.recv:
			into[n] = b
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Headroom: transports terminate the stack, no headers below.
func (c *hostConn) Headroom() int { return 0 }

func (c *hostConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf implements core.BufConn.
func (c *hostConn) RecvBuf(ctx context.Context) (*wbuf.Buf, error) {
	select {
	case b := <-c.recv:
		return b, nil
	default:
	}
	select {
	case b := <-c.recv:
		return b, nil
	case <-c.closed:
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *hostConn) LocalAddr() core.Addr  { return c.local }
func (c *hostConn) RemoteAddr() core.Addr { return c.remote }

func (c *hostConn) Close() error {
	c.once.Do(func() {
		close(c.closed)
		if c.listener != nil {
			c.listener.dropPeer(c.remote.String())
		} else {
			c.host.dropFlow(c.local.Addr)
		}
	})
	return nil
}

func (c *hostConn) closePeer() {
	c.once.Do(func() { close(c.closed) })
}
