package simnet

import (
	"context"
	"encoding/binary"
	"fmt"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// star builds a one-switch network with the given hosts.
func star(t *testing.T, latency time.Duration, hosts ...string) (*Network, *Switch, map[string]*Host) {
	t.Helper()
	n := New()
	t.Cleanup(n.Close)
	sw, err := n.AddSwitch("tor", 16)
	if err != nil {
		t.Fatal(err)
	}
	hs := map[string]*Host{}
	for _, name := range hosts {
		h, err := n.AddHost(name, sw, LinkConfig{Latency: latency})
		if err != nil {
			t.Fatal(err)
		}
		hs[name] = h
	}
	return n, sw, hs
}

func TestBasicDeliveryAndEcho(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, 0, "a", "b")
	l, err := hs["b"].Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(ctx, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(ctx); err != nil || string(m) != "ping" {
		t.Fatalf("recv: %q %v", m, err)
	}
	if err := srv.Send(ctx, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	if m, err := cli.Recv(ctx); err != nil || string(m) != "pong" {
		t.Fatalf("reply: %q %v", m, err)
	}
	// Host identity flows through addresses.
	if !cli.LocalAddr().SameHost(core.Addr{Host: "a"}) {
		t.Errorf("local addr: %s", cli.LocalAddr())
	}
}

func TestLatencyIsImposed(t *testing.T) {
	ctx := ctxT(t)
	const lat = 20 * time.Millisecond
	_, _, hs := star(t, lat, "a", "b")
	l, _ := hs["b"].Listen("svc")
	cli, _ := hs["a"].Dial(ctx, hs["b"].Addr("svc"))

	start := time.Now()
	cli.Send(ctx, []byte("x"))
	srv, _ := l.Accept(ctx)
	if _, err := srv.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// One-way = uplink + downlink = 2 * lat.
	if elapsed < 2*lat {
		t.Errorf("one-way delivery took %v, want >= %v", elapsed, 2*lat)
	}
	if elapsed > 10*lat {
		t.Errorf("delivery suspiciously slow: %v", elapsed)
	}
}

func TestFIFOOrdering(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, time.Millisecond, "a", "b")
	l, _ := hs["b"].Listen("svc")
	cli, _ := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	const n = 100
	for i := 0; i < n; i++ {
		cli.Send(ctx, []byte{byte(i)})
	}
	srv, _ := l.Accept(ctx)
	for i := 0; i < n; i++ {
		m, err := srv.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if m[0] != byte(i) {
			t.Fatalf("out of order: got %d at position %d", m[0], i)
		}
	}
}

func TestLinkLoss(t *testing.T) {
	ctx := ctxT(t)
	n := New()
	t.Cleanup(n.Close)
	sw, _ := n.AddSwitch("tor", 4)
	a, _ := n.AddHost("a", sw, LinkConfig{LossProb: 0.5, Seed: 11})
	b, _ := n.AddHost("b", sw, LinkConfig{})
	l, _ := b.Listen("svc")
	cli, _ := a.Dial(ctx, b.Addr("svc"))
	const sent = 200
	for i := 0; i < sent; i++ {
		cli.Send(ctx, []byte{byte(i)})
	}
	srv, _ := l.Accept(ctx)
	got := 0
	for {
		rctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
		_, err := srv.Recv(rctx)
		cancel()
		if err != nil {
			break
		}
		got++
	}
	if got == 0 || got >= sent {
		t.Errorf("loss 0.5 delivered %d of %d", got, sent)
	}
}

func TestSwitchMatchActionRewrite(t *testing.T) {
	ctx := ctxT(t)
	_, sw, hs := star(t, 0, "a", "b", "c")
	// Steer every packet destined to b's service onto c instead.
	err := sw.InstallEntry(&Entry{
		Name: "steer-b-to-c",
		Match: func(pkt *Packet) bool {
			return pkt.Dst == hs["b"].Addr("svc")
		},
		Action: func(s *Switch, pkt Packet) []Packet {
			pkt.Dst = hs["c"].Addr("svc")
			return []Packet{pkt}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	lc, _ := hs["c"].Listen("svc")
	cli, _ := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	cli.Send(ctx, []byte("redirected"))
	srv, err := lc.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := srv.Recv(ctx); err != nil || string(m) != "redirected" {
		t.Fatalf("recv: %q %v", m, err)
	}
	// Removing the entry restores direct delivery.
	if err := sw.RemoveEntry("steer-b-to-c"); err != nil {
		t.Fatal(err)
	}
	lb, _ := hs["b"].Listen("svc")
	cli.Send(ctx, []byte("direct"))
	srvB, err := lb.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := srvB.Recv(ctx); err != nil || string(m) != "direct" {
		t.Fatalf("direct: %q %v", m, err)
	}
}

func TestSwitchTableCapacity(t *testing.T) {
	n := New()
	t.Cleanup(n.Close)
	sw, _ := n.AddSwitch("tor", 3)
	mk := func(name string, cost int) *Entry {
		return &Entry{Name: name, Cost: cost, Match: func(*Packet) bool { return false }}
	}
	if err := sw.InstallEntry(mk("e1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := sw.InstallEntry(mk("e2", 2)); err == nil {
		t.Error("capacity 3 should reject cost 2+2")
	}
	if err := sw.InstallEntry(mk("e3", 1)); err != nil {
		t.Errorf("cost 1 should fit: %v", err)
	}
	if err := sw.InstallEntry(mk("e1", 1)); err == nil {
		t.Error("duplicate name should be rejected")
	}
	total, used := sw.Capacity()
	if total != 3 || used != 3 {
		t.Errorf("capacity: %d/%d", used, total)
	}
	if err := sw.RemoveEntry("e1"); err != nil {
		t.Fatal(err)
	}
	if _, used := sw.Capacity(); used != 1 {
		t.Errorf("used after remove: %d", used)
	}
	if err := sw.RemoveEntry("missing"); err == nil {
		t.Error("removing unknown entry should fail")
	}
	if err := sw.InstallEntry(&Entry{Name: "bad"}); err == nil {
		t.Error("entry without Match should be rejected")
	}
}

func TestSwitchEntryPriority(t *testing.T) {
	ctx := ctxT(t)
	_, sw, hs := star(t, 0, "a", "b")
	hits := make(chan string, 4)
	matchAll := func(*Packet) bool { return true }
	record := func(tag string) func(s *Switch, pkt Packet) []Packet {
		return func(s *Switch, pkt Packet) []Packet {
			hits <- tag
			return []Packet{pkt}
		}
	}
	sw.InstallEntry(&Entry{Name: "low", Priority: 1, Match: matchAll, Action: record("low")})
	sw.InstallEntry(&Entry{Name: "high", Priority: 10, Match: matchAll, Action: record("high")})

	l, _ := hs["b"].Listen("svc")
	cli, _ := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	cli.Send(ctx, []byte("x"))
	srv, _ := l.Accept(ctx)
	srv.Recv(ctx)
	select {
	case tag := <-hits:
		if tag != "high" {
			t.Errorf("matched %q, want high-priority entry", tag)
		}
	default:
		t.Error("no entry matched")
	}
}

func TestMulticastGroupFanOut(t *testing.T) {
	ctx := ctxT(t)
	_, sw, hs := star(t, 0, "cli", "r1", "r2", "r3")
	var members []core.Addr
	var listeners []core.Listener
	for _, r := range []string{"r1", "r2", "r3"} {
		l, _ := hs[r].Listen("rsm")
		listeners = append(listeners, l)
		members = append(members, hs[r].Addr("rsm"))
	}
	sw.AddGroup("g1", members)
	if len(sw.Group("g1")) != 3 {
		t.Fatal("group membership")
	}

	cli, _ := hs["cli"].Dial(ctx, sw.GroupAddr("g1"))
	cli.Send(ctx, []byte("op1"))
	for i, l := range listeners {
		conn, err := l.Accept(ctx)
		if err != nil {
			t.Fatalf("replica %d accept: %v", i, err)
		}
		if m, err := conn.Recv(ctx); err != nil || string(m) != "op1" {
			t.Fatalf("replica %d: %q %v", i, m, err)
		}
		// Replicas can reply unicast to the sender.
		conn.Send(ctx, []byte(fmt.Sprintf("ack%d", i)))
	}
	acks := map[string]bool{}
	for i := 0; i < 3; i++ {
		m, err := cli.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		acks[string(m)] = true
	}
	if len(acks) != 3 {
		t.Errorf("acks: %v", acks)
	}
	sw.RemoveGroup("g1")
	if len(sw.Group("g1")) != 0 {
		t.Error("group removal")
	}
}

// TestSequencerStamping models the NOPaxos-style in-switch sequencer: a
// match-action entry stamps a monotonically increasing sequence number
// into every group-addressed packet, so all replicas see the same order.
func TestSequencerStamping(t *testing.T) {
	ctx := ctxT(t)
	_, sw, hs := star(t, 0, "c1", "c2", "r1", "r2")
	var members []core.Addr
	var listeners []core.Listener
	for _, r := range []string{"r1", "r2"} {
		l, _ := hs[r].Listen("rsm")
		listeners = append(listeners, l)
		members = append(members, hs[r].Addr("rsm"))
	}
	sw.AddGroup("g", members)
	// Sequencer entry: stamp seq into bytes [0:8) of a reserved header.
	sw.InstallEntry(&Entry{
		Name: "sequencer:g",
		Match: func(pkt *Packet) bool {
			gid, ok := groupID(pkt.Dst)
			return ok && gid == "g" && len(pkt.Payload) >= 8
		},
		Action: func(s *Switch, pkt Packet) []Packet {
			binary.LittleEndian.PutUint64(pkt.Payload[:8], s.NextSeq())
			return []Packet{pkt}
		},
	})

	// Two clients race multicasts.
	c1, _ := hs["c1"].Dial(ctx, sw.GroupAddr("g"))
	c2, _ := hs["c2"].Dial(ctx, sw.GroupAddr("g"))
	const per = 20
	for i := 0; i < per; i++ {
		msg := make([]byte, 9)
		msg[8] = byte(i)
		c1.Send(ctx, msg)
		c2.Send(ctx, msg)
	}

	// Every replica must observe the identical sequence order.
	orders := make([][]uint64, 2)
	for ri, l := range listeners {
		conn, err := l.Accept(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen := map[uint64]bool{}
		// Each replica receives from both clients through one listener
		// conn per client source; accept the second conn too and pump
		// both into one channel.
		conn2, err := l.Accept(ctx)
		if err != nil {
			t.Fatal(err)
		}
		msgs := make(chan []byte, 4*per)
		for _, c := range []core.Conn{conn, conn2} {
			c := c
			go func() {
				for {
					m, err := c.Recv(ctx)
					if err != nil {
						return
					}
					msgs <- m
				}
			}()
		}
		for i := 0; i < 2*per; i++ {
			var m []byte
			select {
			case m = <-msgs:
			case <-time.After(3 * time.Second):
				t.Fatalf("replica %d msg %d: timeout", ri, i)
			}
			seq := binary.LittleEndian.Uint64(m[:8])
			if seq == 0 || seen[seq] {
				t.Fatalf("replica %d: bad/dup seq %d", ri, seq)
			}
			seen[seq] = true
			orders[ri] = append(orders[ri], seq)
		}
	}
	// Same multiset of sequence numbers at both replicas, 1..2*per.
	for ri, ord := range orders {
		if len(ord) != 2*per {
			t.Fatalf("replica %d saw %d msgs", ri, len(ord))
		}
	}
}

func TestDialUnknownHostDrops(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, 0, "a")
	cli, _ := hs["a"].Dial(ctx, core.Addr{Net: "sim", Host: "ghost", Addr: "ghost:svc"})
	// Send succeeds (datagram), nothing crashes, nothing arrives.
	if err := cli.Send(ctx, []byte("void")); err != nil {
		t.Fatal(err)
	}
	if _, err := hs["a"].Dial(ctx, core.Addr{Net: "udp", Addr: "1.2.3.4:1"}); err == nil {
		t.Error("dialing a non-sim address should fail")
	}
}

func TestDuplicateBindings(t *testing.T) {
	n := New()
	t.Cleanup(n.Close)
	sw, _ := n.AddSwitch("s", 1)
	if _, err := n.AddSwitch("s", 1); err == nil {
		t.Error("duplicate switch")
	}
	h, _ := n.AddHost("h", sw, LinkConfig{})
	if _, err := n.AddHost("h", sw, LinkConfig{}); err == nil {
		t.Error("duplicate host")
	}
	if _, err := h.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Listen("x"); err == nil {
		t.Error("duplicate service")
	}
}

func TestListenerCloseReleasesService(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, 0, "a", "b")
	l, _ := hs["b"].Listen("svc")
	l.Close()
	if _, err := l.Accept(ctx); err != core.ErrClosed {
		t.Errorf("accept after close: %v", err)
	}
	// Service name is free again.
	if _, err := hs["b"].Listen("svc"); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestConnCloseSemantics(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, 0, "a", "b")
	l, _ := hs["b"].Listen("svc")
	cli, _ := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	cli.Send(ctx, []byte("x"))
	srv, _ := l.Accept(ctx)
	srv.Recv(ctx)
	cli.Close()
	if err := cli.Send(ctx, []byte("y")); err != core.ErrClosed {
		t.Errorf("send after close: %v", err)
	}
	if err := cli.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestBandwidthSerializationDelay(t *testing.T) {
	ctx := ctxT(t)
	n := New()
	t.Cleanup(n.Close)
	sw, _ := n.AddSwitch("tor", 4)
	// 1 MB/s uplink: a 100 KB packet takes 100 ms to serialize.
	a, _ := n.AddHost("a", sw, LinkConfig{Bandwidth: 1 << 20})
	b, _ := n.AddHost("b", sw, LinkConfig{})
	l, _ := b.Listen("svc")
	cli, _ := a.Dial(ctx, b.Addr("svc"))

	payload := make([]byte, 100<<10)
	start := time.Now()
	cli.Send(ctx, payload)
	srv, _ := l.Accept(ctx)
	if _, err := srv.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want := time.Duration(float64(100<<10) / float64(1<<20) * float64(time.Second)) // ≈97.6ms
	if elapsed < want/2 {
		t.Errorf("delivery took %v, expected >= ~%v of serialization delay", elapsed, want)
	}
	if elapsed > 5*want {
		t.Errorf("delivery suspiciously slow: %v", elapsed)
	}

	// FIFO queuing: two packets back to back arrive roughly one
	// serialization delay apart.
	cli.Send(ctx, payload)
	t0 := time.Now()
	cli.Send(ctx, payload)
	srv.Recv(ctx)
	srv.Recv(ctx)
	gap := time.Since(t0)
	if gap < 80*time.Millisecond {
		t.Errorf("second packet arrived after %v, expected queuing behind the first", gap)
	}
}

func TestZeroBandwidthMeansInfinite(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, 0, "a", "b")
	l, _ := hs["b"].Listen("svc")
	cli, _ := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	start := time.Now()
	cli.Send(ctx, make([]byte, 1<<20)) // 1 MB, no bandwidth limit
	srv, _ := l.Accept(ctx)
	if _, err := srv.Recv(ctx); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("unlimited link took %v for 1MB", elapsed)
	}
}
