package simnet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
)

// Entry is one match-action table entry. Actions may rewrite the packet,
// fan it out (multicast, mirroring), or drop it (empty output).
type Entry struct {
	// Name identifies the entry for removal and resource accounting.
	Name string
	// Cost is the table space the entry consumes.
	Cost int
	// Priority orders evaluation; higher first. The first matching entry's
	// action runs (single-table model).
	Priority int
	// Match reports whether the entry applies to the packet.
	Match func(pkt *Packet) bool
	// Action transforms the packet into zero or more output packets. A
	// nil Action forwards the packet unchanged.
	Action func(sw *Switch, pkt Packet) []Packet
}

// Switch is a store-and-forward element with a bounded match-action
// pipeline, multicast group table, and a hardware sequencer counter —
// the in-network offload location (the paper's Tofino/P4 slot).
type Switch struct {
	net      *Network
	name     string
	capacity int

	mu      sync.Mutex
	entries []*Entry
	used    int
	groups  map[string][]core.Addr

	seq atomic.Uint64

	// fwd, when the network has tracing enabled, records one forwarding
	// span per sampled traced frame the switch processes.
	fwd atomic.Pointer[tracing.Handle]

	inbox chan Packet
	done  chan struct{}
	once  sync.Once

	// ForwardedPackets counts packets the switch has forwarded, for
	// tests and the bench harness.
	ForwardedPackets atomic.Uint64
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Capacity returns the total and used table capacity.
func (s *Switch) Capacity() (total, used int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.capacity, s.used
}

// InstallEntry programs a table entry, consuming Cost units of capacity.
// It fails when capacity is exhausted — the condition that forces
// negotiation to fall back to software implementations.
func (s *Switch) InstallEntry(e *Entry) error {
	if e == nil || e.Name == "" || e.Match == nil {
		return fmt.Errorf("simnet: invalid table entry")
	}
	cost := e.Cost
	if cost <= 0 {
		cost = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.entries {
		if have.Name == e.Name {
			return fmt.Errorf("simnet: entry %q already installed on %s", e.Name, s.name)
		}
	}
	if s.used+cost > s.capacity {
		return fmt.Errorf("simnet: switch %s table full (%d/%d, need %d)", s.name, s.used, s.capacity, cost)
	}
	s.used += cost
	s.entries = append(s.entries, e)
	sort.SliceStable(s.entries, func(i, j int) bool {
		return s.entries[i].Priority > s.entries[j].Priority
	})
	return nil
}

// HasEntry reports whether a table entry with the given name is
// installed.
func (s *Switch) HasEntry(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.entries {
		if e.Name == name {
			return true
		}
	}
	return false
}

// RemoveEntry uninstalls a table entry and releases its capacity.
func (s *Switch) RemoveEntry(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, e := range s.entries {
		if e.Name == name {
			cost := e.Cost
			if cost <= 0 {
				cost = 1
			}
			s.used -= cost
			s.entries = append(s.entries[:i], s.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("simnet: entry %q not installed on %s", name, s.name)
}

// AddGroup programs a multicast group: packets addressed to
// sim://<switch>/mcast:<gid> are replicated to every member address.
func (s *Switch) AddGroup(gid string, members []core.Addr) {
	s.mu.Lock()
	s.groups[gid] = append([]core.Addr(nil), members...)
	s.mu.Unlock()
}

// RemoveGroup deletes a multicast group.
func (s *Switch) RemoveGroup(gid string) {
	s.mu.Lock()
	delete(s.groups, gid)
	s.mu.Unlock()
}

// Group returns a copy of the group membership.
func (s *Switch) Group(gid string) []core.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.Addr(nil), s.groups[gid]...)
}

// NextSeq atomically increments and returns the switch's sequencer
// counter — the hardware resource NOPaxos-style ordered multicast uses.
func (s *Switch) NextSeq() uint64 { return s.seq.Add(1) }

// GroupAddr returns the group's fabric address.
func (s *Switch) GroupAddr(gid string) core.Addr {
	return core.Addr{Net: "sim", Host: s.name, Addr: "mcast:" + gid}
}

// deliverFromHost is the ingress from host uplinks.
func (s *Switch) deliverFromHost(pkt Packet) {
	select {
	case s.inbox <- pkt:
	default: // switch buffer overrun: drop
	}
}

func (s *Switch) forwardLoop() {
	for {
		select {
		case pkt := <-s.inbox:
			s.process(pkt)
		case <-s.done:
			return
		}
	}
}

// process runs the match-action pipeline and forwards the results. A
// sampled traced frame additionally records a forwarding span covering
// the whole pipeline and gets its in-band hop count bumped before any
// action runs, so rewrites and multicast replication all carry it.
func (s *Switch) process(pkt Packet) {
	var (
		traceH     *tracing.Handle
		traceID    uint64
		traceHop   uint8
		traceStart time.Time
		traced     bool
	)
	if h := s.fwd.Load(); h != nil && h.Active() {
		if id, _, ok := peekTrace(pkt.Payload); ok {
			traceStart = time.Now()
			traceH, traceID, traced = h, id, true
			traceHop = bumpHop(pkt.Payload)
		}
	}

	s.mu.Lock()
	var matched *Entry
	for _, e := range s.entries {
		if e.Match(&pkt) {
			matched = e
			break
		}
	}
	s.mu.Unlock()

	outs := []Packet{pkt}
	if matched != nil && matched.Action != nil {
		outs = matched.Action(s, pkt)
	}
	for _, out := range outs {
		s.emit(out)
	}
	if traced {
		traceH.Record(tracing.KindFwd, traceID, traceStart,
			time.Since(traceStart), len(pkt.Payload), len(outs), traceHop, false)
	}
}

// emit resolves multicast groups and forwards to destination hosts.
func (s *Switch) emit(pkt Packet) {
	if gid, ok := groupID(pkt.Dst); ok && pkt.Dst.Host == s.name {
		for _, member := range s.Group(gid) {
			cp := pkt.clone()
			cp.Dst = member
			s.emit(cp)
		}
		return
	}
	host, ok := s.net.host(pkt.Dst.Host)
	if !ok {
		return // unroutable: drop
	}
	s.ForwardedPackets.Add(1)
	host.down.send(pkt)
}

func groupID(a core.Addr) (string, bool) {
	const prefix = "mcast:"
	if len(a.Addr) > len(prefix) && a.Addr[:len(prefix)] == prefix {
		return a.Addr[len(prefix):], true
	}
	return "", false
}

func (s *Switch) close() {
	s.once.Do(func() { close(s.done) })
}
