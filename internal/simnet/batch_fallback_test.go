package simnet

import (
	"context"
	"errors"
	"testing"

	"github.com/bertha-net/bertha/internal/core"
	wbuf "github.com/bertha-net/bertha/internal/wire"
)

// perMsgConn hides the simulated connection's buffer and batch fast
// paths (interface embedding exposes only core.Conn), forcing
// core.SendBufs through its per-message fallback loop, and fails every
// send after the first failAfter successes.
type perMsgConn struct {
	core.Conn
	sent      int
	failAfter int
	err       error
}

func (f *perMsgConn) Send(ctx context.Context, p []byte) error {
	if f.sent >= f.failAfter {
		return f.err
	}
	if err := f.Conn.Send(ctx, p); err != nil {
		return err
	}
	f.sent++
	return nil
}

// bufReleased reports whether b was released (any access after
// Release/Detach panics).
func bufReleased(b *wbuf.Buf) (released bool) {
	defer func() {
		if recover() != nil {
			released = true
		}
	}()
	b.Len()
	return false
}

// TestSendBufsFallbackReleasesUnsentTail mirrors the transport-package
// regression test over a simulated-fabric connection: the core.SendBufs
// fallback loop must release the unsent tail and report an accurate
// Sent count when a mid-burst send fails.
func TestSendBufsFallbackReleasesUnsentTail(t *testing.T) {
	ctx := ctxT(t)
	_, _, hs := star(t, 0, "a", "b")
	l, err := hs["b"].Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := hs["a"].Dial(ctx, hs["b"].Addr("svc"))
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	boom := errors.New("boom")
	f := &perMsgConn{Conn: cli, failAfter: 3, err: boom}

	// WrapBuf adopts unpooled backings, so a released probe buffer can
	// never be resurrected by the connection's own pool traffic.
	bs := make([]*wbuf.Buf, 6)
	for i := range bs {
		bs[i] = wbuf.WrapBuf([]byte{byte(i)})
	}
	sendErr := core.SendBufs(ctx, f, bs)

	var be *core.BatchError
	if !errors.As(sendErr, &be) {
		t.Fatalf("SendBufs error = %v, want *core.BatchError", sendErr)
	}
	if be.Sent != 3 {
		t.Fatalf("BatchError.Sent = %d, want 3", be.Sent)
	}
	if !errors.Is(sendErr, boom) {
		t.Fatalf("BatchError does not unwrap to the send error: %v", sendErr)
	}
	for i, b := range bs {
		if !bufReleased(b) {
			t.Fatalf("bs[%d] was not released", i)
		}
	}
	srv, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		m, err := srv.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(m) != 1 || m[0] != byte(i) {
			t.Fatalf("recv %d = %v, want [%d]", i, m, i)
		}
	}
}
