package simnet

import (
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
)

// dataTag mirrors the core mux data-frame tag byte. The switch peeks at
// frames the way real in-network hardware would — by fixed offset, not
// by running the endpoint stack — so the constant is duplicated here
// rather than exported from core.
const dataTag byte = 0x01

// EnableTracing makes every switch in the fabric record a forwarding
// span into ring for each sampled data frame it forwards, incrementing
// the in-band hop count so endpoints can tell how many fabric elements
// a message crossed. Switches added later inherit the ring.
func (n *Network) EnableTracing(ring *tracing.SpanRing) {
	n.mu.Lock()
	n.spans = ring
	switches := make([]*Switch, 0, len(n.switches))
	for _, s := range n.switches {
		switches = append(switches, s)
	}
	n.mu.Unlock()
	for _, s := range switches {
		s.setTraceRing(ring)
	}
}

func (s *Switch) setTraceRing(ring *tracing.SpanRing) {
	h := ring.Handle("switch", s.name)
	s.fwd.Store(&h)
}

// peekTrace inspects a data frame for a sampled in-band trace context:
// the mux tag byte followed by the trace chunnel's header, which
// negotiation pins to the innermost slot precisely so it lands at a
// fixed wire offset the fabric can parse.
func peekTrace(p []byte) (id uint64, hop uint8, ok bool) {
	if len(p) < 1+tracing.ContextSize || p[0] != dataTag {
		return 0, 0, false
	}
	_, id, _, hop, sampled, valid := tracing.ParseContext(p[1:])
	if !valid || !sampled {
		return 0, 0, false
	}
	return id, hop, true
}

// bumpHop increments the context's hop count in place. The switch owns
// the packet's payload (hosts copy on send), so the rewrite is safe.
func bumpHop(p []byte) uint8 {
	p[1+tracing.HopOffset]++
	return p[1+tracing.HopOffset]
}
