// Package callgraph builds a module-wide static call graph for the
// berthavet suite: class-hierarchy analysis over static calls, plus
// bounded devirtualization of interface-method calls (core.BufConn /
// core.BatchConn and any other module-declared interface) against the
// named types visible in the analyzed package's import closure.
//
// The graph is the reusable layer the interprocedural analyzers ride:
//
//   - bufown orders its summary inference bottom-up over the graph's
//     strongly connected components, so an unannotated helper's
//     transfer/borrow behavior is known before its callers are judged;
//   - lockdisc chains held-lock sets through call edges (including
//     devirtualized ones) to build the module-global lock-order graph;
//   - golife follows `go wrapper()` launches through helper calls to
//     find the forever-loop at the end of the chain.
//
// Per package, the analyzer exports a CallGraphFact so importers can
// walk a dependency's edges without re-analyzing it — the facts model
// of golang.org/x/tools/go/analysis, applied to the graph itself.
//
// Soundness caveats (documented, deliberate): calls through function
// values, reflection, and method values are not edges; interface calls
// whose visible implementation count exceeds DevirtLimit resolve to no
// edges (analyses must stay conservative at such sites).
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
)

// DevirtLimit bounds interface-call devirtualization: a call site whose
// interface has more visible implementations than this resolves to none
// (the fan-out would drown the analyses in spurious edges).
const DevirtLimit = 16

// A Ref addresses a function across packages: the package's import path
// plus the object key ("F" or "T.M") the fact store uses.
type Ref struct {
	Pkg string
	Obj string
}

// A CallEdge is one call site recorded in a CallGraphFact.
type CallEdge struct {
	// Callee is the target: a concrete function, or — when Iface is
	// set — the interface method the call goes through.
	Callee Ref
	// Iface marks a call through an interface method; consumers
	// devirtualize it against the implementations they can see.
	Iface bool
	// Go marks a `go` launch rather than a plain call.
	Go bool
	// Pos is the call site as "file:line".
	Pos string
}

// A FuncInfo is one function's outgoing edges in a CallGraphFact.
type FuncInfo struct {
	Obj   string
	Calls []CallEdge
}

// CallGraphFact is the per-package fact: every declared function's
// statically resolvable outgoing calls.
type CallGraphFact struct {
	Funcs []FuncInfo
}

// AFact marks CallGraphFact as a fact type.
func (*CallGraphFact) AFact() {}

// Analyzer builds and exports the package's call graph. It runs first
// in the suite so same-package analyzers can import the fact the same
// way importers do.
var Analyzer = &analysis.Analyzer{
	Name:      "callgraph",
	Doc:       "build the module call graph (static calls + bounded interface devirtualization) and export it as a fact",
	Run:       run,
	FactTypes: []analysis.Fact{(*CallGraphFact)(nil)},
}

func run(pass *analysis.Pass) error {
	g := Build(pass)
	fact := &CallGraphFact{}
	for _, n := range g.Nodes {
		fi := FuncInfo{Obj: analysis.ObjectKey(n.Fn)}
		if fi.Obj == "" {
			continue
		}
		for _, s := range n.Sites {
			callee := s.Callee
			if callee.Pkg() == nil {
				continue
			}
			obj := analysis.ObjectKey(callee)
			if obj == "" {
				continue
			}
			pos := pass.Fset.Position(s.Pos)
			fi.Calls = append(fi.Calls, CallEdge{
				Callee: Ref{Pkg: callee.Pkg().Path(), Obj: obj},
				Iface:  s.Iface,
				Go:     s.Go,
				Pos:    pos.Filename + ":" + itoa(pos.Line),
			})
		}
		fact.Funcs = append(fact.Funcs, fi)
	}
	sort.Slice(fact.Funcs, func(i, j int) bool { return fact.Funcs[i].Obj < fact.Funcs[j].Obj })
	pass.ExportPackageFact(fact)
	return nil
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// A Graph is the in-memory call graph of one package under analysis.
type Graph struct {
	// Nodes holds one node per declared function with a body, in
	// source order.
	Nodes []*Node
	// ByFunc indexes nodes by their types.Func.
	ByFunc map[*types.Func]*Node

	pass       *Pass
	implCache  map[*types.Interface][]*types.Func
	implNumber map[*types.Interface]bool
}

// Pass is the subset of analysis.Pass the builder needs — an interface
// so tests can drive the builder without a full pass.
type Pass = analysis.Pass

// A Node is one declared function and its outgoing call sites.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Sites are the function's call sites, in source order, including
	// calls made inside function literals declared in its body (the
	// literal runs with the function's obligations for our analyses).
	Sites []*Site
}

// A Site is one call.
type Site struct {
	// Callee is the static target, or the interface method for an
	// interface call.
	Callee *types.Func
	Iface  bool
	Go     bool
	Pos    token.Pos
	// Call is the call expression itself.
	Call *ast.CallExpr
}

// Build constructs the package's call graph.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{
		ByFunc:     map[*types.Func]*Node{},
		pass:       pass,
		implCache:  map[*types.Interface][]*types.Func{},
		implNumber: map[*types.Interface]bool{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{Fn: fn, Decl: fd}
			collectSites(pass.TypesInfo, fd.Body, false, &n.Sites)
			g.Nodes = append(g.Nodes, n)
			g.ByFunc[fn] = n
		}
	}
	return g
}

// collectSites walks a body collecting call sites. inGo marks nodes
// syntactically inside a `go` call expression's function position.
func collectSites(info *types.Info, body ast.Node, inGo bool, out *[]*Site) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if s := classify(info, n.Call); s != nil {
				s.Go = true
				*out = append(*out, s)
			}
			// Arguments and nested literals still execute / get called.
			for _, a := range n.Call.Args {
				collectSites(info, a, false, out)
			}
			if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				collectSites(info, fl.Body, false, out)
			}
			return false
		case *ast.CallExpr:
			if s := classify(info, n); s != nil {
				*out = append(*out, s)
			}
			return true
		}
		return true
	})
}

// classify resolves one call expression to a site, or nil when the
// callee is not statically addressable (func value, builtin, etc.).
func classify(info *types.Info, call *ast.CallExpr) *Site {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return &Site{Callee: fn, Pos: call.Pos(), Call: call}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		iface := false
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if _, isIface := recv.Underlying().(*types.Interface); isIface {
				iface = true
			}
		}
		return &Site{Callee: fn, Iface: iface, Pos: call.Pos(), Call: call}
	}
	return nil
}

// SCCs returns the graph's strongly connected components over
// same-package static call edges, bottom-up: every component appears
// after the components it calls into. This is the order summary
// inference wants — callees are summarized before their callers.
func (g *Graph) SCCs() [][]*Node {
	// Tarjan. Emission order (root-finished) is reverse-topological on
	// the condensation, i.e. callees first.
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	var sccs [][]*Node
	next := 0
	var strong func(v *Node)
	strong = func(v *Node) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, s := range v.Sites {
			w, ok := g.ByFunc[s.Callee]
			if !ok {
				continue
			}
			if _, seen := index[w]; !seen {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, comp)
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccs
}

// Devirtualize resolves an interface-method call site to the concrete
// methods of every implementation visible from the pass: named types of
// the package under analysis plus those of the module (and testdata)
// packages in its import closure. It returns nil when the fan-out
// exceeds DevirtLimit or the method is not an interface method.
func (g *Graph) Devirtualize(ifaceFn *types.Func) []*types.Func {
	sig, ok := ifaceFn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if impls, ok := g.implCache[iface]; ok {
		if g.implNumber[iface] {
			return lookupMethods(impls, ifaceFn)
		}
		return nil
	}
	var implTypes []types.Type
	overflow := false
	consider := func(obj types.Object) {
		tn, ok := obj.(*types.TypeName)
		if !ok || tn.IsAlias() {
			return
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			return
		}
		if types.Implements(named, iface) {
			implTypes = append(implTypes, named)
		} else if types.Implements(types.NewPointer(named), iface) {
			implTypes = append(implTypes, types.NewPointer(named))
		} else {
			return
		}
		if len(implTypes) > DevirtLimit {
			overflow = true
		}
	}
	scan := func(pkg *types.Package) {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			consider(scope.Lookup(name))
			if overflow {
				return
			}
		}
	}
	scan(g.pass.Pkg)
	seen := map[string]bool{g.pass.Pkg.Path(): true}
	var walk func(pkg *types.Package)
	walk = func(pkg *types.Package) {
		for _, imp := range pkg.Imports() {
			if seen[imp.Path()] || overflow {
				continue
			}
			seen[imp.Path()] = true
			if moduleLike(imp.Path()) {
				scan(imp)
			}
			walk(imp)
		}
	}
	walk(g.pass.Pkg)
	if overflow {
		g.implNumber[iface] = false
		g.implCache[iface] = nil
		return nil
	}
	// Cache the concrete method funcs for this interface.
	var methods []*types.Func
	for _, t := range implTypes {
		obj, _, _ := types.LookupFieldOrMethod(t, true, ifaceFn.Pkg(), ifaceFn.Name())
		if m, ok := obj.(*types.Func); ok {
			methods = append(methods, m)
		}
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].FullName() < methods[j].FullName() })
	g.implNumber[iface] = true
	g.implCache[iface] = methods
	return lookupMethods(methods, ifaceFn)
}

func lookupMethods(methods []*types.Func, ifaceFn *types.Func) []*types.Func {
	out := make([]*types.Func, 0, len(methods))
	for _, m := range methods {
		if m.Name() == ifaceFn.Name() {
			out = append(out, m)
		}
	}
	return out
}

// moduleLike reports whether an import path belongs to the analyzed
// module or a testdata corpus rather than the standard library: module
// paths carry a dot in their first segment, corpora use the synthesized
// "testdata/" prefix. Devirtualization only scans these — conn
// implementations live in the module, and walking every stdlib scope
// would be pure overhead.
func moduleLike(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return strings.Contains(first, ".") || first == "testdata" || first == "internal"
}
