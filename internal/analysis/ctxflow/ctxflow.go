// Package ctxflow checks that cancellation actually flows: a function
// that receives a context.Context and then blocks must consume that
// context — by passing it down, selecting on Done(), or reading its
// deadline — or the goroutine ignores shutdown exactly when it matters.
//
// Diagnostic categories:
//
//	dropped-ctx  a function receives a ctx it never consumes, yet its
//	             body (or a callee known to block) performs a blocking
//	             operation the ctx should bound
//	background   context.Background()/TODO() passed directly as a call
//	             argument in non-main code, detaching the call from the
//	             caller's cancellation (wrapping it in context.With* to
//	             mint a lifecycle root is fine)
//	timer-leak   a time.NewTimer/NewTicker whose Stop is never called
//	             and which never escapes the function
//
// Blocking operations are unguarded channel sends/receives (a select
// with a default or a ctx.Done() case is not blocking-without-ctx),
// time.Sleep, and calls to functions known to block without consuming a
// context — same-package callees by direct analysis, cross-package
// callees through the exported BlocksFact, so the check crosses package
// boundaries transitively.
//
// Detection is reachability-aware: each function body is lowered to a
// control-flow graph (internal/analysis/cfg) and blocking operations or
// timer creations in unreachable blocks — code after a return or panic,
// after an exit-less `for {}`, or after a `select {}` — are ignored.
// The pre-CFG walker counted those dead sites and flagged functions
// that can never actually block.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/cfg"
)

// BlocksFact marks a function that performs a blocking operation
// without consuming any context.Context: callers holding a ctx must
// treat calling it as a blocking operation of their own.
type BlocksFact struct {
	// Op names the blocking operation, e.g. "channel receive" or
	// "time.Sleep", for caller-side diagnostics.
	Op string
}

// AFact marks BlocksFact as a fact type.
func (*BlocksFact) AFact() {}

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name:      "ctxflow",
	Doc:       "check that context cancellation flows through blocking calls (dropped ctx, detached Background, leaked timers)",
	Run:       run,
	FactTypes: []analysis.Fact{(*BlocksFact)(nil)},
}

// funcInfo is what one pass learns about one declared function.
type funcInfo struct {
	decl *ast.FuncDecl
	// ctxVar is the context.Context parameter, nil if none (or blank).
	ctxVar *types.Var
	// consumesCtx reports whether ctxVar appears anywhere in the body.
	consumesCtx bool
	// block is the first directly-blocking operation in the body, nil
	// if none.
	block *blockSite
	// calls lists same-package callees invoked outside nested function
	// literals, for the transitive fixpoint.
	calls []*types.Func
	// dead holds the source spans of CFG-unreachable code; blocking
	// operations inside them never execute and are not counted.
	dead []cfg.Span
}

// reachable reports whether pos lies outside every dead span.
func (fi *funcInfo) reachable(pos token.Pos) bool {
	for _, sp := range fi.dead {
		if sp.Contains(pos) {
			return false
		}
	}
	return true
}

// blockSite is one blocking operation.
type blockSite struct {
	pos token.Pos
	op  string
}

func run(pass *analysis.Pass) error {
	isMain := pass.Pkg.Name() == "main"
	infos := map[*types.Func]*funcInfo{}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := analyzeFunc(pass, fd)
			infos[fn] = fi
			order = append(order, fn)
		}
	}

	// Propagate "blocks without ctx" through the same-package call
	// graph to a fixpoint: a function that calls a blocker (and has no
	// ctx of its own to consume) is itself a blocker.
	blocks := map[*types.Func]*blockSite{}
	for fn, fi := range infos {
		if fi.block != nil && !fi.consumesCtx {
			blocks[fn] = fi.block
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fi := range infos {
			if blocks[fn] != nil || fi.consumesCtx {
				continue
			}
			for _, callee := range fi.calls {
				if site := blocks[callee]; site != nil {
					blocks[fn] = &blockSite{pos: site.pos, op: "call to " + callee.Name() + " (" + site.op + ")"}
					changed = true
					break
				}
			}
		}
	}

	// Export facts for functions that block without consuming a ctx, so
	// importing packages treat calls to them as blocking operations.
	for fn, site := range blocks {
		pass.ExportObjectFact(fn, &BlocksFact{Op: site.op})
	}

	// dropped-ctx: a ctx parameter that is never consumed while the
	// function blocks — directly, via a same-package callee, or via a
	// cross-package callee with a BlocksFact.
	for _, fn := range order {
		fi := infos[fn]
		if fi.ctxVar == nil || fi.consumesCtx {
			continue
		}
		site := fi.block
		if site == nil {
			for _, callee := range fi.calls {
				if s := blocks[callee]; s != nil {
					site = &blockSite{pos: fi.decl.Name.Pos(), op: "call to " + callee.Name() + " (" + s.op + ")"}
					break
				}
			}
		}
		if site == nil {
			site = factBlockSite(pass, fi)
		}
		if site != nil {
			pass.Reportf(fi.decl.Name.Pos(), "dropped-ctx",
				"%s receives ctx %q but never consumes it, yet blocks via %s; pass the ctx down, select on its Done, or drop the parameter",
				fn.Name(), fi.ctxVar.Name(), site.op)
		}
	}

	// background: Background/TODO handed straight to a callee.
	if !isMain {
		for _, f := range pass.Files {
			checkBackground(pass, f)
		}
	}
	return nil
}

// factBlockSite looks for a cross-package callee carrying a BlocksFact.
func factBlockSite(pass *analysis.Pass, fi *funcInfo) *blockSite {
	var site *blockSite
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if site != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if !fi.reachable(call.Pos()) {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == pass.Pkg {
			return true
		}
		var bf BlocksFact
		if pass.ImportObjectFact(fn, &bf) {
			site = &blockSite{pos: call.Pos(), op: "call to " + fn.Pkg().Name() + "." + fn.Name() + " (" + bf.Op + ")"}
			return false
		}
		return true
	})
	return site
}

// analyzeFunc computes one function's ctx parameter, ctx consumption,
// first blocking operation, and same-package callees. Timer leaks are
// reported as a side effect.
func analyzeFunc(pass *analysis.Pass, fd *ast.FuncDecl) *funcInfo {
	fi := &funcInfo{decl: fd, dead: cfg.New(fd.Body).UnreachableSpans()}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				v, ok := pass.TypesInfo.Defs[name].(*types.Var)
				if ok && analysis.IsContext(v.Type()) && name.Name != "_" {
					fi.ctxVar = v
				}
			}
		}
	}
	checkTimerLeaks(pass, fd.Body, fi)
	walkBody(pass, fd.Body, fi, false)
	return fi
}

// walkBody scans stmts for ctx consumption, blocking operations, and
// same-package calls. inGuardedSelect marks nodes under a select arm
// whose select has a default or a ctx.Done() case.
func walkBody(pass *analysis.Pass, body *ast.BlockStmt, fi *funcInfo, inGuardedSelect bool) {
	var walk func(n ast.Node, guarded bool)
	walk = func(n ast.Node, guarded bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			// A nested literal is its own execution context for
			// blocking purposes, but uses of the outer ctx inside it
			// still count as consumption (e.g. go func(){ <-ctx.Done() }).
			if fi.ctxVar != nil && usesVar(pass.TypesInfo, n.Body, fi.ctxVar) {
				fi.consumesCtx = true
			}
			return
		case *ast.Ident:
			if fi.ctxVar != nil && pass.TypesInfo.Uses[n] == fi.ctxVar {
				fi.consumesCtx = true
			}
			return
		case *ast.SelectStmt:
			g := guarded || selectGuarded(pass, n)
			for _, cl := range n.Body.List {
				cc := cl.(*ast.CommClause)
				if cc.Comm != nil {
					walk(cc.Comm, g)
				}
				for _, s := range cc.Body {
					walk(s, g)
				}
			}
			return
		case *ast.SendStmt:
			if !guarded {
				fi.noteBlock(n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !guarded {
				fi.noteBlock(n.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !guarded {
					fi.noteBlock(n.Pos(), "range over channel")
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil {
				if isPkgFunc(fn, "time", "Sleep") && !guarded {
					fi.noteBlock(n.Pos(), "time.Sleep")
				}
				if fn.Pkg() == pass.Pkg {
					fi.calls = append(fi.calls, fn)
				}
			}
		}
		// Generic recursion over children.
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || m == nil {
				return m == n
			}
			walk(m, guarded)
			return false
		})
	}
	for _, s := range body.List {
		walk(s, inGuardedSelect)
	}
}

// noteBlock records the first blocking operation. Sites in
// CFG-unreachable code never execute and are ignored.
func (fi *funcInfo) noteBlock(pos token.Pos, op string) {
	if fi.block == nil && fi.reachable(pos) {
		fi.block = &blockSite{pos: pos, op: op}
	}
}

// selectGuarded reports whether a select is non-blocking (default arm)
// or shutdown-aware (a case receiving from a Done() channel).
func selectGuarded(pass *analysis.Pass, sel *ast.SelectStmt) bool {
	for _, cl := range sel.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default arm: non-blocking
		}
		var recv ast.Expr
		switch comm := cc.Comm.(type) {
		case *ast.ExprStmt:
			recv = comm.X
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				recv = comm.Rhs[0]
			}
		}
		ue, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || ue.Op != token.ARROW {
			continue
		}
		if call, ok := ast.Unparen(ue.X).(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				return true // case <-something.Done():
			}
		}
	}
	return false
}

// usesVar reports whether v is referenced anywhere under n.
func usesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// checkBackground reports Background/TODO contexts passed directly as
// call arguments: the callee runs detached from every cancellation the
// caller participates in. Minting a lifecycle root via context.With* is
// the accepted pattern and is exempt.
func checkBackground(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.TypesInfo, call)
		if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "context" {
			return true // context.WithCancel(context.Background()) etc.
		}
		for _, arg := range call.Args {
			ac, ok := ast.Unparen(arg).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeFunc(pass.TypesInfo, ac)
			if fn == nil || !isPkgFunc(fn, "context", "Background") && !isPkgFunc(fn, "context", "TODO") {
				continue
			}
			name := "Background"
			if fn.Name() == "TODO" {
				name = "TODO"
			}
			pass.Reportf(arg.Pos(), "background",
				"context.%s() passed directly to a call detaches it from cancellation; thread a caller ctx or mint a bounded lifecycle root with context.With*", name)
		}
		return true
	})
}

// checkTimerLeaks reports time.NewTimer/NewTicker results that are
// neither stopped nor escape the function. Creations in unreachable
// code never run, so they cannot leak.
func checkTimerLeaks(pass *analysis.Pass, body *ast.BlockStmt, fi *funcInfo) {
	created := map[*types.Var]*timerSite{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !fi.reachable(as.Pos()) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		switch {
		case isPkgFunc(fn, "time", "NewTimer"):
			created[v] = &timerSite{pos: as.Pos(), kind: "time.NewTimer"}
		case isPkgFunc(fn, "time", "NewTicker"):
			created[v] = &timerSite{pos: as.Pos(), kind: "time.NewTicker"}
		}
		return true
	})
	if len(created) == 0 {
		return
	}
	// A timer is fine if any use is a .Stop() call, or it escapes: is
	// returned, stored, or passed onward.
	stopped := map[*types.Var]bool{}
	escaped := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && created[v] != nil {
						stopped[v] = true
					}
				}
			}
			for _, arg := range n.Args {
				markVar(pass.TypesInfo, arg, created, escaped)
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				markVar(pass.TypesInfo, r, created, escaped)
			}
		case *ast.AssignStmt:
			// Re-assignment of the timer into anything (field, map,
			// another variable) counts as an escape.
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) {
					if _, isIdent := n.Lhs[i].(*ast.Ident); isIdent {
						if _, fromCall := ast.Unparen(rhs).(*ast.CallExpr); fromCall {
							continue // the creation itself
						}
					}
				}
				markVar(pass.TypesInfo, rhs, created, escaped)
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				markVar(pass.TypesInfo, val, created, escaped)
			}
		}
		return true
	})
	for v, tm := range created {
		if !stopped[v] && !escaped[v] {
			pass.Reportf(tm.pos, "timer-leak",
				"%s %q is never stopped; its goroutine (and channel) outlive this function — defer %s.Stop()",
				tm.kind, v.Name(), v.Name())
		}
	}
}

// timerSite is one time.NewTimer/NewTicker creation.
type timerSite struct {
	pos  token.Pos
	kind string
}

// markVar marks a created timer variable referenced by x as escaped.
func markVar(info *types.Info, x ast.Expr, created map[*types.Var]*timerSite, escaped map[*types.Var]bool) {
	if id, ok := ast.Unparen(x).(*ast.Ident); ok {
		if v, ok := info.Uses[id].(*types.Var); ok {
			if _, tracked := created[v]; tracked {
				escaped[v] = true
			}
		}
	}
}

// calleeFunc resolves the called function when statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is <pkg>.<name> at package level.
func isPkgFunc(fn *types.Func, pkg, name string) bool {
	return fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}
