package ctxflow_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "ctxflow_a", ctxflow.Analyzer, "ctxflow_dep")
}

// TestCtxflowCFGPrecision pins the reachability filtering of the CFG
// port: blocking operations in dead code no longer flag dropped-ctx,
// while reachable ones still do.
func TestCtxflowCFGPrecision(t *testing.T) {
	analysistest.Run(t, "ctxflow_cfg", ctxflow.Analyzer)
}
