package ctxflow_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "ctxflow_a", ctxflow.Analyzer, "ctxflow_dep")
}
