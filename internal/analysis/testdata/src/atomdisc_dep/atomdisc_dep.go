// Package dep is the dependency side of the atomdisc cross-package
// corpus: it updates exported fields with sync/atomic, which publishes
// them in an AtomicFieldsFact for importers to respect.
package dep

import "sync/atomic"

// Counter exposes two stat fields updated atomically.
type Counter struct {
	Hits int64
	//bertha:racy best-effort stat, importers may read it torn
	Approx int64

	internal int64
}

// Inc bumps the strict counter.
func (c *Counter) Inc() { atomic.AddInt64(&c.Hits, 1) }

// Bump bumps the best-effort counter.
func (c *Counter) Bump() { atomic.AddInt64(&c.Approx, 1) }

// touch keeps the unexported field atomically maintained; unexported
// fields never enter the fact (importers cannot reach them).
func (c *Counter) touch() { atomic.AddInt64(&c.internal, 1) }
