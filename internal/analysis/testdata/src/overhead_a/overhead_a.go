// Package overhead_a is the golden corpus for the overhead analyzer.
// The package registers one ImplInfo declaring SendOverhead 4; every
// SendBuf send path is checked against that bound.
package overhead_a

import (
	"context"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

const headerLen = 4

func info() core.ImplInfo {
	return core.ImplInfo{
		Name:         "overhead_a/test",
		Type:         "overhead_a",
		SendOverhead: headerLen,
	}
}

// okConn prepends exactly the declared bound: clean.
type okConn struct{ next core.BufConn }

func (c *okConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	hdr := b.Prepend(headerLen)
	hdr[0] = 1
	return c.next.SendBuf(ctx, b)
}

// overConn prepends a two-part header totalling 9 bytes worst-case —
// more than the declared 4.
type overConn struct{ next core.BufConn }

func (c *overConn) SendBuf(ctx context.Context, b *wire.Buf) error { // want `exceeds`
	b.Prepend(8)
	if b.Len() > 1024 {
		b.Prepend(1)
	}
	return c.next.SendBuf(ctx, b)
}

// loopConn prepends inside a loop: no static bound exists.
type loopConn struct{ next core.BufConn }

func (c *loopConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	for i := 0; i < 3; i++ {
		b.Prepend(1) // want `unbounded`
	}
	return c.next.SendBuf(ctx, b)
}

// varConn prepends a runtime-computed size with no annotation.
type varConn struct {
	next core.BufConn
	n    int
}

func (c *varConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	b.Prepend(c.n) // want `nonconst`
	return c.next.SendBuf(ctx, b)
}

// annotatedConn bounds its runtime-computed prepend with an annotation,
// and the bound fits the declaration: clean.
type annotatedConn struct {
	next core.BufConn
	n    int
}

func (c *annotatedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	b.Prepend(c.n) //bertha:overhead 4
	return c.next.SendBuf(ctx, b)
}

// helperConn forwards the Buf to a same-package helper whose prepend
// counts toward the caller's total.
type helperConn struct{ next core.BufConn }

func (c *helperConn) SendBuf(ctx context.Context, b *wire.Buf) error { // want `exceeds`
	stamp(b)
	b.Prepend(2)
	return c.next.SendBuf(ctx, b)
}

func stamp(b *wire.Buf) {
	hdr := b.Prepend(4)
	hdr[0] = 0xbe
}

// batchOkConn stamps each element of the burst with exactly the
// declared bound: per-element Prepends in a range over the burst are
// bounded, not "unbounded", and the path stays clean.
type batchOkConn struct{ next core.BufConn }

func (c *batchOkConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		hdr := b.Prepend(headerLen)
		hdr[0] = 1
	}
	return nil
}

// batchOverConn stacks two per-element headers totalling 6 bytes —
// more than the declared 4 — across two passes over the same burst.
type batchOverConn struct{ next core.BufConn }

func (c *batchOverConn) SendBufs(ctx context.Context, bs []*wire.Buf) error { // want `exceeds`
	for _, b := range bs {
		b.Prepend(4)
	}
	for _, b := range bs {
		b.Prepend(2)
	}
	return nil
}

// batchVarConn prepends a runtime-computed size per element with no
// annotation: same nonconst rule as the single-message path.
type batchVarConn struct {
	next core.BufConn
	n    int
}

func (c *batchVarConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		b.Prepend(c.n) // want `nonconst`
	}
	return nil
}
