// Package atomdisc_cross consumes dep's AtomicFieldsFact: plain
// access to a field the dependency maintains atomically is flagged
// here, in the importing package.
package atomdisc_cross

import (
	"sync/atomic"

	dep "testdata/atomdisc_dep"
)

func readRaw(c *dep.Counter) int64 {
	return c.Hits // want `mixed-access`
}

func writeRaw(c *dep.Counter) {
	c.Hits = 0 // want `mixed-access`
}

func readAtomic(c *dep.Counter) int64 {
	return atomic.LoadInt64(&c.Hits)
}

// readApprox is clean: dep declared the field //bertha:racy, so it
// never entered the fact.
func readApprox(c *dep.Counter) int64 {
	return c.Approx
}

// readLocal documents its own reason at the use site.
func readLocal(c *dep.Counter) int64 {
	//bertha:racy snapshot for the expvar dump, staleness is fine
	return c.Hits
}
