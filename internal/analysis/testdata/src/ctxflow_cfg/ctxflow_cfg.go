// Package ctxflow_cfg pins the reachability filtering the CFG engine
// added to ctxflow: blocking operations and timer creations in dead
// code never execute, so they must not count against a function. Each
// "clean" function here was a false positive under the pre-CFG walker;
// the `want` cases prove the live-code rules still fire.
package ctxflow_cfg

import (
	"context"
	"time"
)

// deadReceive blocks only in code behind an unconditional return: the
// pre-CFG walker counted the dead `<-ch` and flagged dropped-ctx.
func deadReceive(ctx context.Context, ch chan int) {
	if len(ch) == 0 {
		return
	}
	return
	<-ch // unreachable: not a blocking operation of this function
}

// deadAfterPanic blocks only after a panic terminates the path.
func deadAfterPanic(ctx context.Context, ch chan int) {
	panic("unreachable below")
	<-ch
}

// deadTimer creates a ticker in unreachable code: nothing ever runs, so
// nothing leaks.
func deadTimer(done chan struct{}) {
	close(done)
	return
	t := time.NewTicker(time.Second)
	_ = t
}

// liveReceive is the positive control: the same receive, reachable.
func liveReceive(ctx context.Context, ch chan int) { // want `dropped-ctx`
	<-ch
}

// liveTimer is the positive control for the timer rule.
func liveTimer(ch chan int) {
	t := time.NewTicker(time.Second) // want `timer-leak`
	select {
	case <-t.C:
	case <-ch:
	}
}
