// Package seeded_tailleak is a deliberately broken batch send path
// used by the driver tests to prove the CI gate trips on both batch
// contract clauses: a mid-burst failure that abandons the unsent tail,
// and a BatchError whose Sent count disagrees with the released
// suffix. If a chunnel like this ever lands in a real package,
// batchcontract (and the berthavet CI job) fails the build.
package seeded_tailleak

import (
	"context"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

type leakyBatch struct{ inner core.Conn }

// SendBufs abandons bs[i+1:] when element i fails: the error return
// neither releases nor transfers the unsent tail.
func (c *leakyBatch) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		if err := core.SendBuf(ctx, c.inner, b); err != nil {
			return err // tail leaked here
		}
	}
	return nil
}

type liarBatch struct{ inner core.Conn }

// SendBufs releases from i (so element i was NOT consumed by the send)
// but reports Sent: i+1 — the caller would double-count the failed
// message when it resumes the burst.
func (c *liarBatch) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for i := range bs {
		if err := core.SendBuf(ctx, c.inner, bs[i]); err != nil {
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i + 1, Err: err}
		}
	}
	return nil
}
