// Package bufown_dep is the dependency corpus for bufown's
// cross-package fact tests: its analysis exports a BorrowsFact for
// Peek, which the main corpus then imports.
package bufown_dep

import "github.com/bertha-net/bertha/internal/wire"

// Peek inspects the Buf without taking ownership.
//
//bertha:borrows b
func Peek(b *wire.Buf) int {
	return b.Len()
}

// Sink takes ownership of the Buf and consumes it.
func Sink(b *wire.Buf) {
	b.Release()
}
