// Package ctxflow_a is the golden corpus for the ctxflow analyzer:
// dropped contexts, detached Background calls, and leaked timers, plus
// the negative space around each rule.
package ctxflow_a

import (
	"context"
	"time"

	dep "testdata/ctxflow_dep"
)

// ---- dropped-ctx ----

// DropDirect takes a ctx, ignores it, and blocks on the channel.
func DropDirect(ctx context.Context, ch chan int) int { // want `dropped-ctx`
	return <-ch
}

// DropSleep takes a ctx, ignores it, and sleeps.
func DropSleep(ctx context.Context) { // want `dropped-ctx`
	time.Sleep(time.Second)
}

// blockHelper blocks with no ctx of its own: fine here, but it makes
// same-package callers holding a ctx blockers too.
func blockHelper(ch chan int) int {
	return <-ch
}

// DropViaCallee blocks through a same-package helper.
func DropViaCallee(ctx context.Context, ch chan int) int { // want `dropped-ctx`
	return blockHelper(ch)
}

// DropViaFact blocks through a cross-package callee whose BlocksFact
// was exported when the dependency corpus was analyzed.
func DropViaFact(ctx context.Context, ch chan int) int { // want `dropped-ctx`
	return dep.BlockingWait(ch)
}

// OkSelectDone consumes the ctx in a select arm.
func OkSelectDone(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// OkPassDown forwards the ctx to a consumer.
func OkPassDown(ctx context.Context, ch chan int) int {
	return OkSelectDone(ctx, ch)
}

// OkNonBlocking holds a ctx but never blocks, so not consuming it is
// harmless.
func OkNonBlocking(ctx context.Context, n int) int {
	return n * 2
}

// OkGuardedSelect polls: a select with a default arm does not block.
func OkGuardedSelect(ctx context.Context, ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// OkCtxInGoroutine consumes the ctx inside a launched literal.
func OkCtxInGoroutine(ctx context.Context, ch chan int) {
	go func() {
		select {
		case <-ch:
		case <-ctx.Done():
		}
	}()
}

// ---- background ----

type sender interface {
	Send(ctx context.Context, b []byte) error
}

// Detached hands a fresh Background context to a send, detaching it
// from every cancellation the caller participates in.
func Detached(s sender) error {
	return s.Send(context.Background(), nil) // want `background`
}

// DetachedTODO does the same with TODO.
func DetachedTODO(s sender) error {
	return s.Send(context.TODO(), nil) // want `background`
}

// OkLifecycleRoot mints a cancellable root: passing Background to the
// context package itself is the accepted pattern.
func OkLifecycleRoot() (context.Context, context.CancelFunc) {
	return context.WithCancel(context.Background())
}

// OkBoundedRoot bounds the detached call with a timeout root.
func OkBoundedRoot(s sender) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return s.Send(ctx, nil)
}

// ---- timer-leak ----

// LeakTimer never stops the timer.
func LeakTimer(ch chan int) int {
	t := time.NewTimer(time.Second) // want `timer-leak`
	select {
	case v := <-ch:
		return v
	case <-t.C:
		return 0
	}
}

// LeakTicker never stops the ticker.
func LeakTicker(done chan struct{}) {
	tick := time.NewTicker(time.Millisecond) // want `timer-leak`
	for {
		select {
		case <-tick.C:
		case <-done:
			return
		}
	}
}

// OkStopped defers Stop.
func OkStopped(ch chan int) int {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case v := <-ch:
		return v
	case <-t.C:
		return 0
	}
}

// OkEscapes hands the timer to its caller, which owns stopping it.
func OkEscapes() *time.Timer {
	t := time.NewTimer(time.Second)
	return t
}
