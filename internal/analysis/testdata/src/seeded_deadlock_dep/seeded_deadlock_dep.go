// Package seeded_deadlock_dep is half of a deliberately deadlockable
// pair used by the driver tests: it acquires its own lock and then
// calls out through an interface nothing in this package implements,
// so the hazard is invisible to any single-package analysis. The
// importing half (seeded_deadlock) closes the lock-order cycle.
package seeded_deadlock_dep

import "sync"

// Resolver is the fallback lookup the registry consults on a miss.
type Resolver interface {
	Resolve(name string) int
}

// Registry maps names to ids under mu, deferring misses to a fallback.
type Registry struct {
	mu       sync.Mutex
	names    map[string]int
	fallback Resolver
}

// New builds a registry with the given fallback.
func New(fallback Resolver) *Registry {
	return &Registry{names: map[string]int{}, fallback: fallback}
}

// Find returns the id for name, consulting the fallback on a miss —
// while still holding mu. The interface call with the lock held is
// exported as an unresolved LockCall; only an importer that implements
// Resolver can see where it lands.
func (r *Registry) Find(name string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.names[name]; ok {
		return id
	}
	return r.fallback.Resolve(name)
}
