// Package ctxflow_dep is the dependency corpus for the ctxflow golden
// tests: it exports functions that block without consuming a context,
// so analyzing it records BlocksFacts the ctxflow_a corpus consumes
// across the package boundary.
package ctxflow_dep

import "time"

// BlockingWait blocks on the channel with no context parameter: legal
// here, but callers holding a ctx must treat calling it as blocking.
func BlockingWait(ch chan int) int {
	return <-ch
}

// Sleepy blocks in time.Sleep.
func Sleepy() {
	time.Sleep(10 * time.Millisecond)
}

// Poll does not block: its select has a default arm.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}
