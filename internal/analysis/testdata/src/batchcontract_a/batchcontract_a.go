// Package batchcontract_a is the golden corpus for the batchcontract
// analyzer. The clean functions mirror the real implementations in
// the tree (the UDP single-element degradation, the pipe suffix
// release, whole-burst delegation, shard sub-burst splitting); the
// `want` cases break each contract clause in the smallest way.
package batchcontract_a

import (
	"context"
	"errors"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

var errDown = errors.New("down")

// ---- tail-leak ----

// tailLeak forgets the unsent tail when a mid-burst send fails.
type tailLeak struct{ inner core.Conn }

func (c *tailLeak) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		if err := core.SendBuf(ctx, c.inner, b); err != nil {
			return err // want `tail-leak`
		}
	}
	return nil
}

// tailClean releases the strict tail and counts honestly — the
// core.SendBufs fallback-loop pattern (Sent may be one less than the
// released start because the failed element was consumed separately).
type tailClean struct{ inner core.Conn }

func (c *tailClean) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for i, b := range bs {
		if err := core.SendBuf(ctx, c.inner, b); err != nil {
			core.ReleaseAll(bs[i+1:])
			return &core.BatchError{Sent: i, Err: err}
		}
	}
	return nil
}

// delegate hands the whole burst down: the delegation call is the
// coverage, including for the error it returns.
type delegate struct{ inner core.Conn }

func (c *delegate) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	return core.SendBufs(ctx, c.inner, bs)
}

// single degrades a one-element burst to a single send — the UDP
// transport pattern. bs[0] covers the burst only because the
// len(bs) == 1 branch proved there is nothing behind it.
type single struct{ inner core.Conn }

func (c *single) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	if len(bs) == 0 {
		return nil
	}
	if len(bs) == 1 {
		if err := core.SendBuf(ctx, c.inner, bs[0]); err != nil {
			return &core.BatchError{Sent: 0, Err: err}
		}
		return nil
	}
	core.ReleaseAll(bs)
	return errDown
}

// unguarded does the same single send without the length proof: for
// any burst longer than one, everything behind bs[0] leaks.
type unguarded struct{ inner core.Conn }

func (c *unguarded) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	if err := core.SendBuf(ctx, c.inner, bs[0]); err != nil {
		return err // want `tail-leak`
	}
	return nil
}

// shardStyle splits the burst into sub-bursts; the bounded slice does
// not cover the tail, the explicit ReleaseAll(bs[j:]) does.
type shardStyle struct{ shards []core.Conn }

func (c *shardStyle) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	sent := 0
	i := 0
	for i < len(bs) {
		j := i + 1
		for j < len(bs) && sameShard(bs[i], bs[j]) {
			j++
		}
		if err := core.SendBufs(ctx, c.shards[0], bs[i:j]); err != nil {
			core.ReleaseAll(bs[j:])
			return &core.BatchError{Sent: sent + core.BatchSent(err), Err: err}
		}
		sent += j - i
		i = j
	}
	return nil
}

// shardLeak makes the classic splitting mistake: the failed sub-burst
// cleaned up after itself, but bs[j:] — the part never attempted — is
// abandoned. A bounded slice is not suffix coverage.
type shardLeak struct{ shards []core.Conn }

func (c *shardLeak) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	i := 0
	for i < len(bs) {
		j := i + 1
		for j < len(bs) && sameShard(bs[i], bs[j]) {
			j++
		}
		if err := core.SendBufs(ctx, c.shards[0], bs[i:j]); err != nil {
			return err // want `tail-leak`
		}
		i = j
	}
	return nil
}

func sameShard(a, b *wire.Buf) bool { return a.Len() == b.Len() }

// refined enqueues the burst; the trailing `return err` is provably
// nil (the non-nil case returned above), so it is a success path and
// needs no coverage of its own.
type refined struct {
	q []*wire.Buf //bertha:queue drained by the flush path, which owns the release
}

func (c *refined) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	err := ctx.Err()
	if err != nil {
		core.ReleaseAll(bs)
		return &core.BatchError{Sent: 0, Err: err}
	}
	c.q = append(c.q, bs...)
	return err
}

// refinedBad returns a possibly non-nil error with nothing consuming
// the burst on that path.
type refinedBad struct{ inner core.Conn }

func (c *refinedBad) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	err := ctx.Err()
	return err // want `tail-leak`
}

// ---- sent-miscount ----

// overcount releases from i but claims i+1 went out: the caller would
// double-count the failed message.
type overcount struct{ inner core.Conn }

func (c *overcount) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for i := range bs {
		if err := core.SendBuf(ctx, c.inner, bs[i]); err != nil {
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i + 1, Err: err} // want `sent-miscount`
		}
	}
	return nil
}

// undercount releases the strict tail but reports two fewer than were
// transmitted.
type undercount struct{ inner core.Conn }

func (c *undercount) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for i := range bs {
		if err := core.SendBuf(ctx, c.inner, bs[i]); err != nil {
			core.ReleaseAll(bs[i+1:])
			return &core.BatchError{Sent: i - 1, Err: err} // want `sent-miscount`
		}
	}
	return nil
}

// ---- recv-partial ----

type recvPartial struct{ inner core.Conn }

func (c *recvPartial) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	b, err := core.RecvBuf(ctx, c.inner)
	if err != nil {
		return 0, err
	}
	into[0] = b
	if b.Len() == 0 {
		return 1, errDown // want `recv-partial`
	}
	return 1, nil
}

// ---- use-after-send (caller side) ----

func readAfterSend(ctx context.Context, conn core.BatchConn, bs []*wire.Buf) int {
	if err := conn.SendBufs(ctx, bs); err != nil {
		return 0
	}
	return bs[0].Len() // want `use-after-send`
}

// nilAfterFlush is the coalescer pattern: element stores, index-only
// ranges, and len stay legal after the handoff.
func nilAfterFlush(ctx context.Context, conn core.BatchConn, bs []*wire.Buf) int {
	conn.SendBufs(ctx, bs)
	for i := range bs {
		bs[i] = nil
	}
	return len(bs)
}

func doubleRelease(bs []*wire.Buf) {
	core.ReleaseAll(bs)
	core.ReleaseAll(bs) // want `use-after-send`
}

func rangeAfterSend(ctx context.Context, conn core.BatchConn, bs []*wire.Buf) int {
	conn.SendBufs(ctx, bs)
	n := 0
	for _, b := range bs { // want `use-after-send`
		if b != nil {
			n++
		}
	}
	return n
}

func resliceAfterSend(ctx context.Context, conn core.BatchConn, bs []*wire.Buf) {
	conn.SendBufs(ctx, bs)
	core.ReleaseAll(bs[1:]) // want `use-after-send`
}

// pathSensitive sends on one arm only; the other arm still owns the
// burst and may read it.
func pathSensitive(ctx context.Context, conn core.BatchConn, bs []*wire.Buf, flush bool) int {
	if flush {
		conn.SendBufs(ctx, bs)
		return 0
	}
	return bs[0].Len()
}

// rebound forgets the old burst when the variable is rebound.
func rebound(ctx context.Context, conn core.BatchConn, bs []*wire.Buf) int {
	conn.SendBufs(ctx, bs)
	bs = make([]*wire.Buf, 4)
	return bs[0].Len()
}
