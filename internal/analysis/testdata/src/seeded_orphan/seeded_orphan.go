// Package seeded_orphan is a deliberately leaky goroutine launch used
// by the driver tests to prove the CI gate trips: a receive pump with
// no quit edge, the exact shape of bug the golife analyzer exists to
// stop. If a change like this ever lands in a real package, berthavet
// (and the berthavet CI job) fails the build.
package seeded_orphan

type pump struct {
	in chan []byte
	fn func([]byte)
}

// Start launches the dispatch loop with no shutdown edge: nothing ever
// closes in, and the loop has no ctx/quit case, so the goroutine — and
// everything it captures — outlives every owner of the pump.
func (p *pump) Start() {
	go func() {
		for {
			m := <-p.in
			p.fn(m)
		}
	}()
}
