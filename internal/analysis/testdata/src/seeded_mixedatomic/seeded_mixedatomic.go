// Package seeded_mixedatomic is a deliberately racy counter used by
// the driver tests to prove the CI gate trips on a mixed atomic/plain
// field access: the hot path increments with sync/atomic while a
// stats accessor reads the same word with a plain load. On weak
// memory models that read can observe a torn or stale value; atomdisc
// must reject it.
package seeded_mixedatomic

import "sync/atomic"

type meter struct {
	sent int64
}

// Record is the datapath side: lock-free atomic increment.
func (m *meter) Record(n int64) {
	atomic.AddInt64(&m.sent, n)
}

// Snapshot is the seeded bug: a plain read of an atomically written
// field, bypassing the happens-before edge the datapath relies on.
func (m *meter) Snapshot() int64 {
	return m.sent // plain read of an atomic field
}
