// Package bufown_ring is the golden corpus for the SPSC/MPSC-ring
// transfer idiom: a //bertha:queue annotation on a slice of slot
// structs (each pairing a *wire.Buf with its sequence bookkeeping)
// sanctions stores into the element's Buf field, exactly as it
// sanctions stores into a []*wire.Buf element. The drain side — a pop
// returning a nil-able Buf — hands ownership to the popper's caller.
package bufown_ring

import (
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/wire"
)

// ring is the reactor receive-ring shape: slot sequence numbers plus
// the transferred buffer, with the slot slice declared as a queue.
type ring struct {
	mask  uint64
	slots []slot //bertha:queue drained by pop, whose callers own the release
	head  atomic.Uint64
	tail  atomic.Uint64
}

type slot struct {
	seq atomic.Uint64
	b   *wire.Buf
}

// push transfers b into the claimed slot: the store into the annotated
// field's element is the sanctioned handoff. The full-ring path
// consumes b internally so callers only account the drop.
func (r *ring) push(b *wire.Buf) bool {
	h := r.head.Load()
	for {
		s := &r.slots[h&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == h:
			if r.head.CompareAndSwap(h, h+1) {
				r.slots[h&r.mask].b = b // fine: //bertha:queue slot field
				s.seq.Store(h + 1)
				return true
			}
			h = r.head.Load()
		case seq < h:
			b.Release()
			return false
		default:
			h = r.head.Load()
		}
	}
}

// pop returns the next buffer (nil when empty); the caller owns it.
func (r *ring) pop() *wire.Buf {
	t := r.tail.Load()
	s := &r.slots[t&r.mask]
	if s.seq.Load() != t+1 {
		return nil
	}
	b := s.b
	s.b = nil
	s.seq.Store(t + r.mask + 1)
	r.tail.Store(t + 1)
	return b
}

// drain is the close-time sweep: pop until empty, releasing each.
func (r *ring) drain() {
	for {
		b := r.pop()
		if b == nil {
			break
		}
		b.Release()
	}
}

// unannotated is the same shape without the //bertha:queue marker:
// storing into its element's Buf field is an unsanctioned escape.
type unannotated struct {
	slots []slot
}

// pushUnannotated must flag: the slot slice is not a declared queue, so
// the analyzer cannot see who releases the stored buffer.
func (u *unannotated) pushUnannotated(i int, b *wire.Buf) {
	u.slots[i].b = b // want `transfer`
}

// aliasStoreNotSanctioned pins the documented limit of the idiom: the
// store must index the annotated field directly — a pointer alias to
// the slot is not tracked, so the transfer needs its own annotation.
func (r *ring) aliasStoreNotSanctioned(i int, b *wire.Buf) {
	s := &r.slots[i]
	s.b = b // want `transfer`
}
