// Package seeded_helperleak leaks a pooled buffer through an
// unannotated helper. Before summary inference, the helper call was
// conservatively read as an ownership transfer and the caller's missing
// Release went unnoticed; the inferred borrow summary keeps ownership
// with the caller, so the gate trips on the leak.
package seeded_helperleak

import "github.com/bertha-net/bertha/internal/wire"

// checksum inspects the buffer without consuming it. It carries no
// //bertha:borrows annotation: bufown's summary inference learns the
// parameter is borrowed from the dataflow alone.
func checksum(b *wire.Buf) byte {
	var sum byte
	for _, c := range b.Bytes() {
		sum ^= c
	}
	return sum
}

// Fingerprint wraps the input in a pooled buffer, hands it to the
// unannotated helper, and returns without releasing it — the buffer is
// still owned here when the function ends.
func Fingerprint(p []byte) byte {
	b := wire.NewBufFrom(0, p)
	return checksum(b)
} // leaked: b was borrowed back, never released
