// Package seeded_deadlock closes the lock-order cycle the dependency
// package opens: Get holds Table.mu and acquires Registry.mu through
// Registry.Find, while the registry's fallback path holds Registry.mu
// and acquires Table.mu through Table.Resolve. Neither package's code
// is wrong in isolation — the deadlock exists only in the composition,
// which is exactly what the interprocedural lockdisc pass must catch.
package seeded_deadlock

import (
	"sync"

	dep "testdata/seeded_deadlock_dep"
)

// Table is a local name cache backed by the shared registry.
type Table struct {
	mu    sync.Mutex
	local map[string]int
	reg   *dep.Registry
}

// Resolve implements dep.Resolver: it answers fallback lookups under
// the table's own lock.
func (t *Table) Resolve(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.local[name]
}

// Get consults the registry while holding the table lock. Two
// goroutines — one here, one in Registry.Find taking the fallback
// path — acquire {Table.mu, Registry.mu} in opposite orders.
func (t *Table) Get(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.Find(name)
}
