// Package bufown_a is the golden corpus for the bufown analyzer: each
// // want comment pins one diagnostic; lines without a comment must stay
// clean.
package bufown_a

import (
	"context"
	"errors"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

var errShort = errors.New("short")

// useAfterRelease reads a Buf after its terminal Release.
func useAfterRelease(b *wire.Buf) int {
	b.Release()
	return b.Len() // want `use-after-release`
}

// doubleRelease releases the same Buf twice on one path.
func doubleRelease(b *wire.Buf) {
	b.Release()
	b.Release() // want `double-release`
}

// leakOnError returns early on a validation failure without consuming
// the Buf it already owns — the classic leak-on-error path.
func leakOnError(ctx context.Context, c core.BufConn) error {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return err // fine: b is nil when err != nil
	}
	if b.Len() < 4 {
		return errShort // want `leak`
	}
	return c.SendBuf(ctx, b)
}

// leakAtEnd drops an owned Buf on the floor at function end.
func leakAtEnd(headroom int) {
	b := wire.NewBuf(headroom, 64)
	_ = b.Len()
} // want `leak`

// storeWithoutAnnotation transfers ownership into a map without the
// required //bertha:transfers marker.
func storeWithoutAnnotation(m map[int]*wire.Buf, b *wire.Buf) {
	m[0] = b // want `transfer`
}

// detachWithoutAnnotation removes a Buf from pooling silently.
func detachWithoutAnnotation(b *wire.Buf) []byte {
	return b.Detach() // want `transfer`
}

// annotatedTransfer is the sanctioned form: ownership leaves through an
// annotated statement, so no diagnostic fires.
func annotatedTransfer(m map[int]*wire.Buf, b *wire.Buf) {
	m[0] = b //bertha:transfers retransmit-queue keeps it
}

// borrows b: the caller keeps ownership, the callee only reads.
//
//bertha:borrows b
func peek(b *wire.Buf) int { return b.Len() }

// borrowedCallKeepsOwnership shows a borrowing callee does not consume:
// the caller still releases, with no double-release or leak.
func borrowedCallKeepsOwnership(headroom int) int {
	b := wire.NewBuf(headroom, 16)
	n := peek(b)
	b.Release()
	return n
}

// deferredRelease consumes via defer on every path.
func deferredRelease(ctx context.Context, c core.BufConn) (int, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	defer b.Release()
	if b.Len() == 0 {
		return 0, errShort
	}
	return b.Len(), nil
}

// sendConsumes transfers ownership to the conn on both branches.
func sendConsumes(ctx context.Context, c core.BufConn, fast bool, b *wire.Buf) error {
	if fast {
		return c.SendBuf(ctx, b)
	}
	return core.SendBuf(ctx, c, b)
}

// releasedOnAllPaths branches but consumes everywhere: clean.
func releasedOnAllPaths(b *wire.Buf, keep bool) []byte {
	if keep {
		return b.CopyOut()
	}
	b.Release()
	return nil
}

// loopIterationLeak acquires a fresh Buf each iteration and never
// consumes it before the next one arrives.
func loopIterationLeak(ctx context.Context, c core.BufConn, n int) {
	for i := 0; i < n; i++ {
		b, err := c.RecvBuf(ctx)
		if err != nil {
			return
		}
		_ = b.Len()
	} // want `leak`
}

// useAfterDetach detaches (annotated) and then touches the dead Buf.
func useAfterDetach(b *wire.Buf) int {
	raw := b.Detach() //bertha:transfers caller keeps the raw bytes
	_ = raw
	return b.Len() // want `use-after-release`
}

// recvIntoSlice is the RecvBufs contract: storing an owned Buf into an
// element of a []*wire.Buf parameter hands it to the caller — the store
// is the transfer and needs no annotation.
func recvIntoSlice(ctx context.Context, c core.BufConn, into []*wire.Buf) (int, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	into[0] = b // fine: the caller owns the slice and receives the Buf
	return 1, nil
}

// storeIntoLocalSlice is NOT the RecvBufs shape: the slice is local, so
// the store still needs a //bertha:transfers annotation.
func storeIntoLocalSlice(ctx context.Context, c core.BufConn) error {
	pend := make([]*wire.Buf, 1)
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return err
	}
	pend[0] = b // want `transfer`
	_ = pend
	return nil
}

// nilCheckedHelper returns an owned Buf on one branch and nil on the
// other; the caller's fallthrough after `if msg != nil { return }`
// carries no ownership and must not flag as a leak.
func nilCheckedHelper(ctx context.Context, c core.BufConn) (*wire.Buf, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	if b.Len() < 2 {
		b.Release()
		return nil, nil
	}
	return b, nil
}

// nilRefinedLoop is the batch-decode shape: each iteration either
// returns the completed message or continues with msg == nil. Clean.
func nilRefinedLoop(ctx context.Context, c core.BufConn) (*wire.Buf, error) {
	for {
		msg, err := nilCheckedHelper(ctx, c)
		if err != nil {
			return nil, err
		}
		if msg != nil {
			return msg, nil
		}
	}
}

// coalesceQueue is the send-coalescer shape: the annotated field is a
// declared send queue, so enqueue stores and appends transfer ownership
// to the drain path without per-statement annotations.
type coalesceQueue struct {
	pending []*wire.Buf //bertha:queue drained by flush, which releases
	n       int
}

// enqueueStore stores into the declared queue: sanctioned, no
// annotation needed at the statement.
func (q *coalesceQueue) enqueueStore(ctx context.Context, c core.BufConn) error {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return err
	}
	q.pending[q.n] = b // fine: //bertha:queue field, drain releases
	q.n++
	return nil
}

// enqueueAppend appends onto the declared queue: the enqueue form of
// the same sanctioned transfer.
func (q *coalesceQueue) enqueueAppend(ctx context.Context, c core.BufConn) error {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return err
	}
	q.pending = append(q.pending, b) // fine: //bertha:queue field
	return nil
}

// plainQueue has no //bertha:queue annotation: stores into and appends
// onto its slice field remain unsanctioned transfers.
type plainQueue struct {
	pending []*wire.Buf
	n       int
}

func (q *plainQueue) storeUnsanctioned(ctx context.Context, c core.BufConn) error {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return err
	}
	q.pending[q.n] = b // want `transfer`
	q.n++
	return nil
}

func (q *plainQueue) appendUnsanctioned(ctx context.Context, c core.BufConn) error {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return err
	}
	q.pending = append(q.pending, b) // want `transfer`
	return nil
}
