// Package seeded_leak is a deliberately buggy chunnel send path used by
// the driver tests to prove the CI gate trips: if a change like this
// ever lands in a real package, berthavet (and the berthavet CI job)
// fails the build.
package seeded_leak

import (
	"context"
	"errors"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

var errTooBig = errors.New("message too large")

type leakyConn struct{ next core.BufConn }

// SendBuf leaks b on the validation-failure path: the early return
// neither releases nor transfers the pooled buffer.
func (c *leakyConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	if b.Len() > 1<<16 {
		return errTooBig // leaked here
	}
	return c.next.SendBuf(ctx, b)
}
