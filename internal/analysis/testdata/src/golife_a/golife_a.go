// Package golife_a is the golden corpus for the golife analyzer:
// orphan goroutine launches, WaitGroup misuse, and unbounded daemon
// spawning, plus the shutdown edges that make launches legal.
package golife_a

import (
	"context"
	"sync"

	dep "testdata/golife_dep"
)

// ---- orphan ----

// OrphanLit launches a literal that can never leave its loop.
func OrphanLit(ch chan int) {
	go func() { // want `orphan`
		for {
			<-ch
		}
	}()
}

// forever is a local daemon body.
func forever(ch chan int) {
	for {
		<-ch
	}
}

// OrphanDecl launches a same-package function that loops forever.
func OrphanDecl(ch chan int) {
	go forever(ch) // want `orphan`
}

// OrphanFact launches a cross-package function whose LoopsForeverFact
// was exported when the dependency corpus was analyzed.
func OrphanFact(ch chan int) {
	go dep.Forever(ch) // want `orphan`
}

// runLoop delegates to forever: launching runLoop launches the loop.
func runLoop(ch chan int) {
	forever(ch)
}

// OrphanWrapped launches a same-package wrapper around a forever loop;
// the call-graph closure sees through the delegation.
func OrphanWrapped(ch chan int) {
	go runLoop(ch) // want `orphan`
}

// OrphanWrappedFact launches a cross-package wrapper whose
// LoopsForeverFact came from the dependency's call-graph closure.
func OrphanWrappedFact(ch chan int) {
	go dep.ForeverWrapper(ch) // want `orphan`
}

// OkQuitCase has a shutdown edge: the quit arm returns.
func OkQuitCase(ch chan int, quit chan struct{}) {
	go func() {
		for {
			select {
			case <-ch:
			case <-quit:
				return
			}
		}
	}()
}

// OkCtxDone exits on cancellation.
func OkCtxDone(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ch:
			case <-ctx.Done():
				return
			}
		}
	}()
}

// OkRange drains until the channel closes: close(ch) is the edge.
func OkRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

// OkBounded leaves the loop through a conditional break.
func OkBounded(ch chan int) {
	go func() {
		for {
			if v := <-ch; v < 0 {
				break
			}
		}
	}()
}

// OkDeclaredDaemon is exempt: the launch is a declared daemon.
func OkDeclaredDaemon(ch chan int) {
	go func() { //bertha:daemon golden-test fixture: intentional pump
		for {
			<-ch
		}
	}()
}

// ---- waitgroup ----

// WgAddInside calls Add from inside the launched goroutine, racing
// with Wait; Done is then also unmatched at launch time.
func WgAddInside() {
	var wg sync.WaitGroup
	go func() {
		wg.Add(1) // want `waitgroup`
		wg.Done() // want `waitgroup`
	}()
	wg.Wait()
}

// WgNoAdd calls Done on a WaitGroup no Add precedes.
func WgNoAdd() {
	var wg sync.WaitGroup
	go func() {
		defer wg.Done() // want `waitgroup`
	}()
	wg.Wait()
}

// OkWg is the canonical pairing: Add before the launch, Done inside.
func OkWg(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// ---- spawn-in-loop ----

// SpawnLoop starts a fresh daemon per iteration of an unbounded loop:
// the goroutine population grows without bound.
func SpawnLoop(ch chan int) {
	for {
		dep.StartDaemon(ch) // want `spawn-in-loop`
		<-ch
	}
}

// SpawnLoopWrapped calls a constructor that spawns its daemon through
// an unexported helper: the transitive SpawnsFact still flags it.
func SpawnLoopWrapped(ch chan int) {
	for {
		dep.StartViaHelper(ch) // want `spawn-in-loop`
		<-ch
	}
}

// OkSpawnBounded spawns inside a loop that exits.
func OkSpawnBounded(ch chan int, n int) {
	for i := 0; i < n; i++ {
		dep.StartDaemon(ch)
	}
}

// OkNonDaemonLoop calls a cross-package function that launches nothing
// unbounded.
func OkNonDaemonLoop(ch chan int, quit chan struct{}) {
	for {
		select {
		case <-ch:
			dep.Drain(ch)
		case <-quit:
			return
		}
	}
}
