// Package golife_dep is the dependency corpus for the golife golden
// tests: analyzing it exports LoopsForeverFact for Forever and a
// SpawnsFact for StartDaemon, which golife_a consumes across the
// package boundary.
package golife_dep

// Forever loops with no exit edge: launching it on a goroutine creates
// a daemon, which the exported LoopsForeverFact tells callers.
func Forever(ch chan int) {
	for {
		<-ch
	}
}

// StartDaemon launches a declared daemon per call; its SpawnsFact
// records Daemon=true so unbounded callers are flagged.
func StartDaemon(ch chan int) {
	//bertha:daemon golden-test fixture: a declared process-lifetime pump
	go Forever(ch)
}

// Drain exits when the channel closes: not a daemon.
func Drain(ch chan int) {
	for range ch {
	}
}
