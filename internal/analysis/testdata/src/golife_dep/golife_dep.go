// Package golife_dep is the dependency corpus for the golife golden
// tests: analyzing it exports LoopsForeverFact for Forever and a
// SpawnsFact for StartDaemon, which golife_a consumes across the
// package boundary.
package golife_dep

// Forever loops with no exit edge: launching it on a goroutine creates
// a daemon, which the exported LoopsForeverFact tells callers.
func Forever(ch chan int) {
	for {
		<-ch
	}
}

// StartDaemon launches a declared daemon per call; its SpawnsFact
// records Daemon=true so unbounded callers are flagged.
func StartDaemon(ch chan int) {
	//bertha:daemon golden-test fixture: a declared process-lifetime pump
	go Forever(ch)
}

// launch is the unexported helper that does the actual spawn for
// StartViaHelper.
func launch(ch chan int) {
	//bertha:daemon golden-test fixture: a pump started via a helper
	go Forever(ch)
}

// StartViaHelper delegates the launch to a helper; the call-graph
// propagation still exports a SpawnsFact with Daemon=true for it.
func StartViaHelper(ch chan int) {
	launch(ch)
}

// ForeverWrapper never returns — it delegates to Forever. The
// call-graph closure exports LoopsForeverFact for the wrapper too.
func ForeverWrapper(ch chan int) {
	Forever(ch)
}

// Drain exits when the channel closes: not a daemon.
func Drain(ch chan int) {
	for range ch {
	}
}
