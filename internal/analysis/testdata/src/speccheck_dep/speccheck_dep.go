// Package speccheck_dep is the dependency corpus for the speccheck
// golden tests: its ImplInfo literals and RegisterResolver call are the
// registry knowledge — and its builder functions the NodeFacts — that
// speccheck_a consumes across the package boundary.
package speccheck_dep

import (
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
)

// Infos declares the fixture's implementations: "good" in userspace,
// "switchy" only on an in-network switch.
var Infos = []core.ImplInfo{
	{Name: "good/sw", Type: "good", Location: core.LocUserspace},
	{Name: "switchy/tor", Type: "switchy", Location: core.LocSwitch},
}

// Register installs the fixture's select resolver.
func Register(reg *core.Registry) {
	reg.RegisterResolver("pick", nil)
}

// GoodNode returns a constant-shaped node, exercising cross-package
// NodeFact evaluation.
func GoodNode() spec.Node {
	return spec.New("good")
}

// PickNode returns a select over the two registered types.
func PickNode() spec.Node {
	return spec.Select("pick", nil,
		spec.Seq(spec.New("good")),
		spec.Seq(spec.New("switchy")),
	)
}
