// Package overhead_trace is the overhead analyzer's corpus for the
// trace pseudo-chunnel's wire format: a context-stamping layer whose
// send path prepends either the full 16-byte sampled context or the
// 1-byte unsampled marker. The declared SendOverhead must cover the
// worst case (16); a declaration copied from the marker path — the
// mistake this corpus pins — under-reports by 15 bytes and negotiation
// would assemble stacks with too little headroom.
package overhead_trace

import (
	"context"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

const (
	contextSize = 16
	markerSize  = 1
)

// info under-declares: 8 bytes, below the sampled path's worst case.
func info() core.ImplInfo {
	return core.ImplInfo{
		Name:         "trace/underdeclared",
		Type:         "trace",
		SendOverhead: 8,
	}
}

// stampConn mirrors the real traced chunnel's send path: a branch that
// prepends the full context for sampled buffers and the marker for the
// rest. The worst case is 16 bytes — over the declared 8.
type stampConn struct{ next core.BufConn }

func (c *stampConn) SendBuf(ctx context.Context, b *wire.Buf) error { // want `exceeds`
	if _, _, _, ok := b.Trace(); ok {
		b.Prepend(contextSize)
	} else {
		b.Prepend(markerSize)[0] = 0xB0
	}
	return c.next.SendBuf(ctx, b)
}

// markerOnlyConn never stamps the full context; its 1-byte worst case
// fits the declaration and the path stays clean.
type markerOnlyConn struct{ next core.BufConn }

func (c *markerOnlyConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	b.Prepend(markerSize)[0] = 0xB0
	return c.next.SendBuf(ctx, b)
}

// batchStampConn stamps every element of a burst with the sampled
// context: the per-element worst case — not the burst sum — is what
// counts, and 16 still exceeds the declared 8.
type batchStampConn struct{ next core.BufConn }

func (c *batchStampConn) SendBufs(ctx context.Context, bs []*wire.Buf) error { // want `exceeds`
	for _, b := range bs {
		b.Prepend(contextSize)
	}
	return nil
}
