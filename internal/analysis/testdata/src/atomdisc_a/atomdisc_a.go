// Package atomdisc_a is the golden corpus for the atomdisc analyzer:
// mixed atomic/plain field access, 64-bit alignment of function-style
// atomics under 32-bit layout, by-value copies of atomic-bearing
// structs, and the //bertha:racy escape hatch.
package atomdisc_a

import "sync/atomic"

// ---- mixed-access ----

type counter struct {
	hits int64
	name string
}

func (c *counter) inc() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counter) okAtomic() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) badRead() int64 {
	return c.hits // want `mixed-access`
}

func (c *counter) badWrite() {
	c.hits = 0 // want `mixed-access`
}

func (c *counter) badIncrement() {
	c.hits++ // want `mixed-access`
}

// rename touches a field nobody accesses atomically: plain is fine.
func (c *counter) rename(s string) {
	c.name = s
}

// snapshotLocked documents why its plain read is safe.
func (c *counter) snapshotLocked() int64 {
	//bertha:racy caller holds the registry mutex, writers are parked
	return c.hits
}

// badCompareRead hides the plain read inside an atomic call: only the
// address argument is the sanctioned access, the old-value argument is
// a plain read.
func (c *counter) badCompareRead() {
	atomic.CompareAndSwapInt64(&c.hits, c.hits, 0) // want `mixed-access`
}

// gauge opts its field out wholesale at the declaration.
type gauge struct {
	//bertha:racy monitoring-only stat, torn reads are acceptable
	val int64
}

func (g *gauge) bump()       { atomic.AddInt64(&g.val, 1) }
func (g *gauge) read() int64 { return g.val }

// ---- atomic-align ----

// misaligned puts the 64-bit field at offset 4 under 32-bit layout.
type misaligned struct {
	ready bool
	n     int64
}

func (m *misaligned) add() {
	atomic.AddInt64(&m.n, 1) // want `atomic-align`
}

// aligned leads with the 64-bit field: offset 0 everywhere.
type aligned struct {
	n     int64
	ready bool
}

func (a *aligned) add() {
	atomic.AddInt64(&a.n, 1)
}

// inner is misaligned when embedded by value after a 4-byte field.
type inner struct {
	pad uint32
	n   int64
}

type outer struct {
	in inner
}

func (o *outer) add() {
	atomic.AddInt64(&o.in.n, 1) // want `atomic-align`
}

// alignedInner behind a pointer is fine regardless of where the
// pointer field itself sits: the indirection starts a fresh
// 64-bit-aligned allocation.
type alignedInner struct {
	n int64
}

type outerPtr struct {
	pad uint32
	in  *alignedInner
}

func (o *outerPtr) add() {
	atomic.AddInt64(&o.in.n, 1)
}

// ---- atomic-copy ----

type stats struct {
	ops atomic.Int64
}

func (s stats) badLoad() int64 { // want `atomic-copy`
	return s.ops.Load()
}

func (s *stats) goodLoad() int64 {
	return s.ops.Load()
}

func consume(s stats) {}

func callCopies(s *stats) {
	consume(*s) // want `atomic-copy`
	cp := *s    // want `atomic-copy`
	_ = cp
}

// freshValues shows the exemptions: zero values and composite
// literals are births, not copies of live state.
func freshValues() *stats {
	var s stats
	t := stats{}
	_ = t
	return &s
}

// fnStats carries atomic state through function-style atomics on a
// plain field rather than a typed atomic.
type fnStats struct {
	hits int64
}

func (f *fnStats) inc() { atomic.AddInt64(&f.hits, 1) }

func copyFnStats(f *fnStats) {
	snap := *f // want `atomic-copy`
	_ = snap
}
