// Package bufown_cross exercises bufown's cross-package fact path: the
// dependency corpus exported a BorrowsFact for Peek, so calls into it
// leave ownership with the caller, while unmarked callees take it.
package bufown_cross

import (
	dep "testdata/bufown_dep"

	"github.com/bertha-net/bertha/internal/wire"
)

// crossBorrowStillOwned: the borrowing callee (known only through its
// imported BorrowsFact) leaves ownership here, so the caller must still
// release — and doing so is neither a double-release nor a leak.
func crossBorrowStillOwned(headroom int) int {
	b := wire.NewBuf(headroom, 16)
	n := dep.Peek(b)
	b.Release()
	return n
}

// crossBorrowLeak: the borrowing callee does not consume the Buf, so
// dropping it afterwards leaks — visible only because the fact says the
// call was not a transfer.
func crossBorrowLeak(headroom int) {
	b := wire.NewBuf(headroom, 16)
	_ = dep.Peek(b)
} // want `leak`

// crossTransferConsumes: an unmarked cross-package callee takes
// ownership, exactly as before facts existed.
func crossTransferConsumes(headroom int) {
	b := wire.NewBuf(headroom, 16)
	dep.Sink(b)
}
