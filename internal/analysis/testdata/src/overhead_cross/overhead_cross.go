// Package overhead_cross exercises overhead's cross-package fact path:
// the dependency corpus exported CostFacts for its helpers, and calls
// into them are charged against this package's declared bound.
package overhead_cross

import (
	"context"

	dep "testdata/overhead_dep"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

const headerLen = 4

func info() core.ImplInfo {
	return core.ImplInfo{
		Name:         "overhead_cross/test",
		Type:         "overhead_cross",
		SendOverhead: headerLen,
	}
}

// crossConn forwards to a cross-package helper whose CostFact charges 4
// bytes, plus 2 locally: 6 exceeds the declared 4.
type crossConn struct{ next core.BufConn }

func (c *crossConn) SendBuf(ctx context.Context, b *wire.Buf) error { // want `exceeds`
	dep.Stamp(b)
	b.Prepend(2)
	return c.next.SendBuf(ctx, b)
}

// crossOkConn stays within the bound: Stamp's 4 fact-charged bytes are
// exactly the declaration.
type crossOkConn struct{ next core.BufConn }

func (c *crossOkConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	dep.Stamp(b)
	return c.next.SendBuf(ctx, b)
}

// crossAnnotatedConn charges Tag's annotated 2-byte bound through its
// fact plus 2 locally: exactly 4, clean.
type crossAnnotatedConn struct {
	next core.BufConn
	n    int
}

func (c *crossAnnotatedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	dep.Tag(b, c.n)
	b.Prepend(2)
	return c.next.SendBuf(ctx, b)
}
