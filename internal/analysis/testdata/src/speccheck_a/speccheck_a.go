// Package speccheck_a is the golden corpus for the speccheck analyzer:
// Chunnel DAG construction defects caught at analysis time against the
// registry knowledge the dependency corpus contributes.
package speccheck_a

import (
	"github.com/bertha-net/bertha/bertha"
	"github.com/bertha-net/bertha/internal/spec"

	dep "testdata/speccheck_dep"
)

// Ok negotiates a stack of known types; the select resolver and both
// branch implementations are registered by the dependency corpus.
func Ok() {
	stack := spec.Seq(dep.GoodNode(), dep.PickNode())
	_, _ = bertha.New("ok", stack)
}

// Unknown declares a chunnel type nothing implements.
func Unknown() {
	stack := spec.Seq(spec.New("mystery"))
	_, _ = bertha.New("u", stack) // want `unknown-type`
}

// UnknownSelect uses a select type with no registered resolver.
func UnknownSelect() {
	stack := spec.Seq(spec.Select("chooser", nil,
		spec.Seq(spec.New("good")),
		spec.Seq(spec.New("switchy")),
	))
	_, _ = bertha.New("us", stack) // want `unknown-type`
}

// Scoped constrains "switchy" — whose only implementation runs on a
// switch — to the application process.
func Scoped() {
	stack := spec.Seq(spec.New("switchy").WithScope(spec.ScopeApplication))
	_, _ = bertha.New("s", stack) // want `scope`
}

// OkScope pairs a host constraint with a userspace implementation.
func OkScope() {
	stack := spec.Seq(spec.New("good").WithScope(spec.ScopeHost))
	_, _ = bertha.New("os", stack)
}

// Dup repeats a type in one sequence with no optimizer to dedupe it.
func Dup() {
	stack := spec.Seq(spec.New("good"), spec.New("good"))
	_, _ = bertha.New("d", stack) // want `dup-type`
}

// OkDupOptimized is the same stack, legalized by the optimizer's
// eliminate pass.
func OkDupOptimized(reg *bertha.Registry) {
	stack := spec.Seq(spec.New("good"), spec.New("good"))
	_, _ = bertha.New("d2", stack, bertha.WithOptimizer(bertha.NewOptimizer(reg)))
}

// EmptyBranch builds a select with a branch negotiation could never
// resolve to; reported at the construction site.
func EmptyBranch() spec.Node {
	return spec.Select("pick", nil,
		spec.Seq(spec.New("good")),
		spec.Seq(), // want `empty-branch`
	)
}

// EmptyType builds a node with no chunnel type name.
func EmptyType() spec.Node {
	return spec.New("") // want `empty-type`
}

// TooDeep nests selects past spec.MaxDepth; Validate would reject the
// stack at runtime, speccheck at analysis time.
func TooDeep() {
	stack := spec.Seq(
		spec.Select("pick", nil, spec.Seq(
			spec.Select("pick", nil, spec.Seq(
				spec.Select("pick", nil, spec.Seq(
					spec.Select("pick", nil, spec.Seq(
						spec.Select("pick", nil, spec.Seq(
							spec.Select("pick", nil, spec.Seq(
								spec.Select("pick", nil, spec.Seq(
									spec.Select("pick", nil, spec.Seq(
										spec.Select("pick", nil, spec.Seq(spec.New("good"))),
									)),
								)),
							)),
						)),
					)),
				)),
			)),
		)),
	)
	_, _ = bertha.New("deep", stack) // want `too-deep`
}
