// Package bufown_cfg pins the precision the CFG dataflow engine added
// to bufown. Every "clean" function here was a false positive under the
// pre-CFG recursive walker; the `want` cases are positive controls
// proving the same rules still fire when the bug is real.
package bufown_cfg

import (
	"context"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// releasePrevious is the loop-carried ownership pattern: each iteration
// releases the previous iteration's Buf, and the tail is released after
// the loop. The pre-CFG walker's per-iteration check saw an owned Buf
// at the loop end and flagged a spurious leak; the CFG engine tracks
// the loop-carried alias (`prev`, declared outside the loop) as a
// separate generation and proves every Buf is released exactly once.
func releasePrevious(ctx context.Context, c core.BufConn, n int) error {
	var prev *wire.Buf
	for i := 0; i < n; i++ {
		b, err := c.RecvBuf(ctx)
		if err != nil {
			if prev != nil {
				prev.Release()
			}
			return err
		}
		if prev != nil {
			prev.Release()
		}
		prev = b
	}
	if prev != nil {
		prev.Release()
	}
	return nil
}

// perIterationLeak is the positive control for the same loop shape: no
// loop-carried alias, so the Buf acquired each iteration really is
// overwritten while owned.
func perIterationLeak(ctx context.Context, c core.BufConn, n int) {
	for i := 0; i < n; i++ {
		b, err := c.RecvBuf(ctx)
		if err != nil {
			return
		}
		_ = b.Len()
	} // want `leak`
}

// releaseAfterDeadCode keeps a Release that only looks unreachable to a
// purely syntactic reader: the `continue` path re-acquires, and the Buf
// held across the back edge is consumed on every live path.
func releaseAfterDeadCode(ctx context.Context, c core.BufConn, n int) error {
	for i := 0; i < n; i++ {
		b, err := c.RecvBuf(ctx)
		if err != nil {
			return err
		}
		if b.Len() == 0 {
			b.Release()
			continue
		}
		if err := c.SendBuf(ctx, b); err != nil {
			return err
		}
	}
	return nil
}

// branchConsumedSwap releases on one arm and sends on the other, with
// the arms swapped relative to declaration order — pure path tracking,
// no single linear order consumes the Buf.
func branchConsumedSwap(ctx context.Context, c core.BufConn, fast bool, b *wire.Buf) error {
	if !fast {
		b.Release()
		return nil
	}
	return c.SendBuf(ctx, b)
}

// leakOnOneArm is the positive control: the slow arm forgets the Buf.
func leakOnOneArm(ctx context.Context, c core.BufConn, fast bool, b *wire.Buf) error {
	if !fast {
		return nil // want `leak`
	}
	return c.SendBuf(ctx, b)
}

// unreachableUse puts the only use-after-release in code the CFG proves
// dead: the reporting pass walks live blocks only, so a statement after
// the return never fires a diagnostic.
func unreachableUse(b *wire.Buf) int {
	n := b.Len()
	b.Release()
	return n
	_ = b.Len() // unreachable: never executes, so no use-after-release
	panic("unreachable")
}
