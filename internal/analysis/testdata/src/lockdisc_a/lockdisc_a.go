// Package lockdisc_a is the golden corpus for the lockdisc analyzer.
package lockdisc_a

import (
	"context"
	"sync"
)

// fakeConn has the blocking data-plane shape lockdisc guards.
type fakeConn struct{}

func (fakeConn) Send(ctx context.Context, p []byte) error { return nil }
func (fakeConn) Recv(ctx context.Context) ([]byte, error) { return nil, nil }

type peer struct {
	mu   sync.Mutex
	wmu  sync.Mutex
	smu  sync.RWMutex
	conn fakeConn
	out  chan int
}

// sendUnderLock holds mu across a blocking conn call.
func (p *peer) sendUnderLock(ctx context.Context, msg []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn.Send(ctx, msg) // want `across-send`
}

// recvUnderRLock: read locks block writers just the same.
func (p *peer) recvUnderRLock(ctx context.Context) ([]byte, error) {
	p.smu.RLock()
	defer p.smu.RUnlock()
	return p.conn.Recv(ctx) // want `across-send`
}

// sendAfterUnlock releases before the blocking call: clean.
func (p *peer) sendAfterUnlock(ctx context.Context, msg []byte) error {
	p.mu.Lock()
	seq := len(msg)
	p.mu.Unlock()
	_ = seq
	return p.conn.Send(ctx, msg)
}

// chanSendUnderLock blocks on a channel while holding mu.
func (p *peer) chanSendUnderLock(v int) {
	p.mu.Lock()
	p.out <- v // want `chan-send`
	p.mu.Unlock()
}

// chanSendNonBlocking uses select-with-default under the lock: clean.
func (p *peer) chanSendNonBlocking(v int) {
	p.mu.Lock()
	select {
	case p.out <- v:
	default:
	}
	p.mu.Unlock()
}

// unlockSendRelock is the sanctioned blocking pattern: clean.
func (p *peer) unlockSendRelock(v int) {
	p.mu.Lock()
	select {
	case p.out <- v:
	default:
		p.mu.Unlock()
		p.out <- v
		p.mu.Lock()
	}
	p.mu.Unlock()
}

// doubleLock re-acquires a mutex already held on the same path.
func (p *peer) doubleLock() {
	p.mu.Lock()
	p.mu.Lock() // want `double-lock`
	p.mu.Unlock()
	p.mu.Unlock()
}

// lockForward acquires mu before wmu.
func (p *peer) lockForward() {
	p.mu.Lock()
	p.wmu.Lock() // want `order`
	p.wmu.Unlock()
	p.mu.Unlock()
}

// lockBackward acquires the same pair in the opposite order; together
// with lockForward this is a deadlock-shaped inversion.
func (p *peer) lockBackward() {
	p.wmu.Lock()
	p.mu.Lock()
	p.mu.Unlock()
	p.wmu.Unlock()
}
