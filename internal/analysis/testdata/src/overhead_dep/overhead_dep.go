// Package overhead_dep is the dependency corpus for overhead's
// cross-package fact tests. It registers no ImplInfo, so its own
// analysis reports nothing — but it still exports CostFacts for the
// helpers below, which the main corpus charges against its bound.
package overhead_dep

import "github.com/bertha-net/bertha/internal/wire"

// Stamp prepends a 4-byte magic to the frame.
func Stamp(b *wire.Buf) {
	hdr := b.Prepend(4)
	hdr[0] = 0xbe
}

// Tag's cost comes from its annotation, not its body.
//
//bertha:overhead 2
func Tag(b *wire.Buf, n int) {
	hdr := b.Prepend(n) //bertha:overhead 2
	_ = hdr
}
