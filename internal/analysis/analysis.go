// Package analysis is a dependency-free re-implementation of the core of
// golang.org/x/tools/go/analysis, sized for this repository: an Analyzer
// is a named check over one type-checked package, a Pass is one run of an
// analyzer, and diagnostics carry a category so golden tests and CI can
// assert on the exact rule that fired.
//
// The suite exists because the zero-copy data plane (internal/wire,
// core.BufConn) is governed by conventions the compiler cannot see:
// linear Buf ownership, declared SendOverhead bounds, and no blocking
// conn calls under a mutex. The analyzers in the sub-packages (bufown,
// overhead, lockdisc) prove those conventions at build time; cmd/berthavet
// is the multichecker that runs them standalone or as a `go vet -vettool`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis/vetversion"
)

// SuiteRevision identifies the vet-suite rule set; the canonical value
// lives in the dependency-free vetversion package so binaries can stamp
// it without linking the framework. Bump it whenever an analyzer's
// diagnostics change so `go vet` re-runs cached packages and `-version`
// output reflects the rules in force.
const SuiteRevision = vetversion.Suite

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the analyzer's command-line and diagnostic prefix, e.g.
	// "bufown".
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
	// FactTypes lists exemplar values (pointers to zero structs) of
	// every Fact type this analyzer exports or imports, so the driver
	// can gob-register them for the .vetx round-trip.
	FactTypes []Fact
}

// A Diagnostic is one finding.
type Diagnostic struct {
	// Pos is where the finding anchors.
	Pos token.Pos
	// End is the exclusive end of the source range the finding covers
	// (token.NoPos when the analyzer reported a point, not a range).
	// SARIF output turns a valid End into endLine/endColumn so code
	// scanning underlines the whole expression.
	End token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Category names the specific rule, e.g. "use-after-release".
	Category string
	// Message is the human-readable finding.
	Message string
}

// A Pass is one analyzer run over one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the run-wide fact store: facts of already-analyzed
	// dependency packages are read from it, and facts about this
	// package are exported into it. Nil when the driver runs without
	// cross-package facts (then Import*Fact reports no facts and
	// Export*Fact is a no-op).
	Facts *FactStore

	diags   []Diagnostic
	ignores map[string]map[int]bool // filename -> line -> suppressed (built lazily)
}

// Reportf records a diagnostic unless a //berthavet:ignore directive
// suppresses it on that line.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.ReportRangef(pos, token.NoPos, category, format, args...)
}

// ReportNodef records a diagnostic anchored to a node's full source
// range, so SARIF consumers can underline the offending expression
// rather than a single column.
func (p *Pass) ReportNodef(n ast.Node, category, format string, args ...any) {
	p.ReportRangef(n.Pos(), n.End(), category, format, args...)
}

// ReportRangef records a diagnostic covering [pos, end) unless a
// //berthavet:ignore directive suppresses it on pos's line. end may be
// token.NoPos for point diagnostics.
func (p *Pass) ReportRangef(pos, end token.Pos, category, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position.Filename, position.Line) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		End:      end,
		Analyzer: p.Analyzer.Name,
		Category: category,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings recorded so far, in file/line order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool {
		pi, pj := p.Fset.Position(p.diags[i].Pos), p.Fset.Position(p.diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return p.diags
}

// suppressed reports whether a //berthavet:ignore directive on the given
// line names this analyzer (or "all").
func (p *Pass) suppressed(filename string, line int) bool {
	if p.ignores == nil {
		p.ignores = map[string]map[int]bool{}
		for _, f := range p.Files {
			tf := p.Fset.File(f.Pos())
			if tf == nil {
				continue
			}
			lines := map[int]bool{}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//berthavet:ignore")
					if !ok {
						continue
					}
					names := strings.Fields(rest)
					match := len(names) == 0
					for _, n := range names {
						if n == p.Analyzer.Name || n == "all" {
							match = true
						}
					}
					if match {
						lines[p.Fset.Position(c.Pos()).Line] = true
					}
				}
			}
			p.ignores[tf.Name()] = lines
		}
	}
	return p.ignores[filename][line]
}

// Run applies an analyzer to a package and returns its diagnostics.
// facts may be nil for a fact-free run.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, facts *FactStore) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info, Facts: facts}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return pass.Diagnostics(), nil
}

// ---- type recognition helpers shared by the analyzers ----

// wirePkg reports whether pkg is the repository's internal/wire package
// (matched by path suffix so forks and testdata loads both qualify).
func wirePkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/wire" || strings.HasSuffix(pkg.Path(), "/internal/wire"))
}

// corePkg reports whether pkg is the repository's internal/core package.
func corePkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/core" || strings.HasSuffix(pkg.Path(), "/internal/core"))
}

// IsWirePackage reports whether the package under analysis is
// internal/wire itself (whose Buf methods implement, rather than obey,
// the ownership discipline).
func IsWirePackage(pkg *types.Package) bool { return wirePkg(pkg) }

// IsBufPtr reports whether t is *wire.Buf.
func IsBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buf" && wirePkg(obj.Pkg())
}

// IsBufSlice reports whether t is []*wire.Buf — the burst type the
// batch data plane moves through SendBufs/RecvBufs.
func IsBufSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	return ok && IsBufPtr(sl.Elem())
}

// IsBufSlotSlice reports whether t is a slice of slot structs carrying
// a *wire.Buf field — the SPSC/MPSC ring shape, where each element
// pairs a buffer with its slot bookkeeping (sequence numbers). A
// //bertha:queue annotation on such a field sanctions stores into the
// element's Buf field the same way it sanctions stores into a
// []*wire.Buf element.
func IsBufSlotSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	st, ok := sl.Elem().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if IsBufPtr(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// IsImplInfo reports whether t is core.ImplInfo.
func IsImplInfo(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ImplInfo" && corePkg(obj.Pkg())
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ConnMethodNames are the blocking data-plane calls of core.Conn /
// core.BufConn / core.BatchConn that lockdisc guards and bufown treats
// as ownership transfer points.
var ConnMethodNames = map[string]bool{
	"Send": true, "Recv": true, "SendBuf": true, "RecvBuf": true,
	"SendBufs": true, "RecvBufs": true,
}

// ConnCallName classifies a call expression as a data-plane conn call:
// a method named Send/Recv/SendBuf/RecvBuf (or the batch variants
// SendBufs/RecvBufs) whose first parameter is a context.Context, or the
// package helpers core.SendBuf / core.RecvBuf / core.SendBufs /
// core.RecvBufs. It returns the display name ("conn.SendBuf",
// "core.RecvBufs") and true when the call matches.
func ConnCallName(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if !ConnMethodNames[name] {
		return "", false
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !IsContext(sig.Params().At(0).Type()) {
		return "", false
	}
	if sig.Recv() == nil {
		// Package-level helper: only the core send/recv helpers qualify.
		if corePkg(fn.Pkg()) && (name == "SendBuf" || name == "RecvBuf" ||
			name == "SendBufs" || name == "RecvBufs") {
			return "core." + name, true
		}
		return "", false
	}
	return "conn." + name, true
}

// ---- //bertha: annotations ----

// Annotations is the per-file index of //bertha: directives.
//
//	//bertha:owns b      (func doc)  parameter b is owned by the callee [default]
//	//bertha:borrows b   (func doc)  parameter b is borrowed: the callee must
//	                                 not release it and callers keep ownership
//	//bertha:transfers   (stmt line) ownership intentionally leaves this
//	                                 function at this statement
//	//bertha:overhead N  (stmt line or func doc) bound, in bytes, for a
//	                                 prepend the analyzer cannot fold to a
//	                                 constant
//	//bertha:daemon why  (stmt line) the goroutine launched here is an
//	                                 intentional process-lifetime daemon
//	                                 with no shutdown edge
//	//bertha:queue why   (struct field) the []*wire.Buf field is a send
//	                                 queue: stores into and appends onto
//	                                 it are sanctioned ownership
//	                                 transfers, with release deferred to
//	                                 the draining code
//	//bertha:racy why    (stmt line or struct field) the mixed
//	                                 atomic/plain access here (or to this
//	                                 field) is intentional — e.g. a field
//	                                 written plainly before the struct is
//	                                 published, or a stats snapshot that
//	                                 tolerates tearing
type Annotations struct {
	fset *token.FileSet
	// transfers, overheads, daemons, queues, and racys are keyed by
	// "file:line".
	transfers map[string]bool
	overheads map[string]int
	daemons   map[string]bool
	queues    map[string]bool
	racys     map[string]bool
}

// CollectAnnotations indexes every //bertha: comment in the files.
func CollectAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, transfers: map[string]bool{}, overheads: map[string]int{}, daemons: map[string]bool{}, queues: map[string]bool{}, racys: map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//bertha:")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				// Register under the comment's own line (trailing form)
				// and the next line (directive-above-statement form).
				keys := []string{
					pos.Filename + ":" + strconv.Itoa(pos.Line),
					pos.Filename + ":" + strconv.Itoa(pos.Line+1),
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				switch fields[0] {
				case "transfers":
					for _, key := range keys {
						a.transfers[key] = true
					}
				case "daemon":
					for _, key := range keys {
						a.daemons[key] = true
					}
				case "queue":
					for _, key := range keys {
						a.queues[key] = true
					}
				case "racy":
					for _, key := range keys {
						a.racys[key] = true
					}
				case "overhead":
					if len(fields) > 1 {
						if n, err := strconv.Atoi(fields[1]); err == nil {
							for _, key := range keys {
								a.overheads[key] = n
							}
						}
					}
				}
			}
		}
	}
	return a
}

func (a *Annotations) key(pos token.Pos) string {
	p := a.fset.Position(pos)
	return p.Filename + ":" + strconv.Itoa(p.Line)
}

// TransfersAt reports whether a //bertha:transfers directive covers the
// line containing pos.
func (a *Annotations) TransfersAt(pos token.Pos) bool { return a.transfers[a.key(pos)] }

// OverheadAt returns the declared byte bound on the line containing pos.
func (a *Annotations) OverheadAt(pos token.Pos) (int, bool) {
	n, ok := a.overheads[a.key(pos)]
	return n, ok
}

// DaemonAt reports whether a //bertha:daemon directive covers the line
// containing pos.
func (a *Annotations) DaemonAt(pos token.Pos) bool { return a.daemons[a.key(pos)] }

// QueueAt reports whether a //bertha:queue directive covers the line
// containing pos (a struct-field declaration).
func (a *Annotations) QueueAt(pos token.Pos) bool { return a.queues[a.key(pos)] }

// RacyAt reports whether a //bertha:racy directive covers the line
// containing pos — either an access site or a struct-field declaration.
func (a *Annotations) RacyAt(pos token.Pos) bool { return a.racys[a.key(pos)] }

// FuncDirective scans a function's doc comment for a //bertha:<verb>
// directive naming ident (e.g. verb "borrows", ident "b").
func FuncDirective(doc *ast.CommentGroup, verb, ident string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//bertha:"+verb)
		if !ok {
			continue
		}
		for _, f := range strings.Fields(rest) {
			if f == ident {
				return true
			}
		}
	}
	return false
}

// FuncOverhead scans a function's doc comment for //bertha:overhead N.
func FuncOverhead(doc *ast.CommentGroup) (int, bool) {
	if doc == nil {
		return 0, false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//bertha:overhead")
		if !ok {
			continue
		}
		fields := strings.Fields(rest)
		if len(fields) > 0 {
			if n, err := strconv.Atoi(fields[0]); err == nil {
				return n, true
			}
		}
	}
	return 0, false
}
