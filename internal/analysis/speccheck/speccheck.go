// Package speccheck evaluates Chunnel DAG construction — the
// spec.New / spec.Seq / spec.Select / WithScope call trees that build a
// *spec.Stack — at analysis time, and checks the result against the
// registry knowledge it gathers from core.ImplInfo literals and
// RegisterResolver calls across the whole build.
//
// Structural defects are reported at the construction site in any
// package:
//
//	empty-type    spec.New("") — a node with no chunnel type name
//	empty-branch  a select branch that is an empty stack (an empty
//	              Wrap() is only legal at the top level of a client)
//
// Registry-dependent defects are reported only where a stack reaches a
// negotiation sink (bertha.New / core.NewEndpoint), because only a
// stack that is actually negotiated needs implementations; illustrative
// stacks (the paper's A |> B([C, D]) figure) may use fictional types:
//
//	unknown-type  a concrete node whose type has no registered
//	              implementation, or a select node with no resolver
//	scope         a node whose scope constraint excludes every
//	              registered implementation's location
//	dup-type      the same chunnel type twice in one sequence level
//	              (waived when the endpoint enables the optimizer,
//	              whose eliminate pass dedupes)
//	too-deep      select nesting beyond spec.MaxDepth
//
// The evaluator follows constants, single-assignment locals, and —
// via facts — functions that return a constant-shaped Node or Stack:
// analyzing internal/chunnels/reliable exports a NodeFact for
// reliable.Node, so bertha.Reliable() (which returns it) earns one
// too, and a stack built from bertha helpers in an example package
// evaluates fully. Registrations travel the same way: a RegistryFact
// per package records the ImplInfo literals and resolver registrations
// it contains, and a sink package consults every fact in its import
// closure.
package speccheck

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
)

// SpecNode is the serializable shape of one evaluated DAG node.
type SpecNode struct {
	// Known is false for nodes the evaluator could not resolve; such
	// nodes are skipped by every check rather than guessed at.
	Known bool
	// Type is the chunnel type name ("" only when unknown or defective).
	Type string
	// Scope is the numeric spec.Scope constraint (0 = ScopeAny).
	Scope uint8
	// Select marks a branching node; Branches holds its alternatives.
	Select   bool
	Branches []SpecStack
}

// SpecStack is the serializable shape of an evaluated stack.
type SpecStack struct {
	Nodes []SpecNode
}

// NodeFact marks a function that returns a constant-shaped spec.Node.
type NodeFact struct{ Node SpecNode }

// AFact marks NodeFact as a fact type.
func (*NodeFact) AFact() {}

// StackFact marks a function that returns a constant-shaped *spec.Stack.
type StackFact struct{ Stack SpecStack }

// AFact marks StackFact as a fact type.
func (*StackFact) AFact() {}

// RegImpl records one registered implementation: its chunnel type and
// numeric core.Location.
type RegImpl struct {
	Type     string
	Location uint8
}

// RegistryFact is the package fact summarizing the chunnel
// implementations (core.ImplInfo literals) and select resolvers
// (RegisterResolver calls) a package contributes to the registry.
type RegistryFact struct {
	Impls   []RegImpl
	Selects []string
}

// AFact marks RegistryFact as a fact type.
func (*RegistryFact) AFact() {}

// maxDepth mirrors spec.MaxDepth, the runtime bound on select nesting.
const maxDepth = 8

// Analyzer is the speccheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "speccheck",
	Doc:  "evaluate Chunnel DAG construction against the registered implementations and their scopes",
	Run:  run,
	FactTypes: []analysis.Fact{
		(*NodeFact)(nil), (*StackFact)(nil), (*RegistryFact)(nil),
	},
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	c.exportRegistry()
	c.exportBuilders()
	c.loadRegistry()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			c.checkConstruction(call)
			c.checkSink(call)
			return true
		})
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	impls   map[string][]uint8 // chunnel type -> registered locations
	selects map[string]bool    // select types with a resolver
	// locals caches, per enclosing function, the single-assignment
	// local variable initializers the evaluator may follow.
	locals map[*types.Var]ast.Expr
}

// ---- registry knowledge ----

// exportRegistry scans this package for core.ImplInfo composite
// literals and RegisterResolver calls and exports them as the package's
// RegistryFact.
func (c *checker) exportRegistry() {
	var fact RegistryFact
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := c.pass.TypesInfo.Types[n]
				if !ok || !analysis.IsImplInfo(tv.Type) {
					return true
				}
				impl := RegImpl{}
				known := false
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					switch key.Name {
					case "Type":
						if s, ok := c.constString(kv.Value); ok {
							impl.Type, known = s, true
						}
					case "Location":
						if v, ok := c.constUint(kv.Value); ok {
							impl.Location = v
						}
					}
				}
				if known && impl.Type != "" {
					fact.Impls = append(fact.Impls, impl)
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "RegisterResolver" || len(n.Args) < 1 {
					return true
				}
				if s, ok := c.constString(n.Args[0]); ok && s != "" {
					fact.Selects = append(fact.Selects, s)
				}
			}
			return true
		})
	}
	if len(fact.Impls) > 0 || len(fact.Selects) > 0 {
		c.pass.ExportPackageFact(&fact)
	}
}

// loadRegistry merges this package's registrations with every
// RegistryFact in the import closure.
func (c *checker) loadRegistry() {
	c.impls = map[string][]uint8{}
	c.selects = map[string]bool{}
	add := func(fact *RegistryFact) {
		for _, impl := range fact.Impls {
			c.impls[impl.Type] = append(c.impls[impl.Type], impl.Location)
		}
		for _, s := range fact.Selects {
			c.selects[s] = true
		}
	}
	var own RegistryFact
	if c.pass.ImportPackageFact(c.pass.Pkg, &own) {
		add(&own)
	}
	for _, pf := range c.pass.AllPackageFacts() {
		if pf.Path == c.pass.Pkg.Path() {
			continue
		}
		if rf, ok := pf.Fact.(*RegistryFact); ok {
			add(rf)
		}
	}
}

// allowedBy mirrors core.Location.AllowedBy over the numeric constant
// values the type checker supplied (spec.Scope* / core.Loc* iota order).
func allowedBy(loc uint8, scope uint8) bool {
	const (
		scopeApplication = 1
		scopeHost        = 2
		locUserspace     = 0
		locSwitch        = 3
	)
	switch scope {
	case scopeApplication:
		return loc == locUserspace
	case scopeHost:
		return loc != locSwitch
	default: // any, localnet, global
		return true
	}
}

// ---- builder facts ----

// exportBuilders records a NodeFact/StackFact for each function in this
// package whose body returns a constant-shaped spec.Node or *spec.Stack,
// iterating to a fixpoint so helpers that call other local helpers
// resolve too.
func (c *checker) exportBuilders() {
	type builder struct {
		fn  *types.Func
		ret ast.Expr
	}
	var builders []builder
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
				continue
			}
			ret := soleReturn(fd.Body)
			if ret == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			builders = append(builders, builder{fn, ret})
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range builders {
			rt := b.fn.Type().(*types.Signature).Results().At(0).Type()
			switch {
			case isSpecNodeType(rt):
				var have NodeFact
				if c.pass.ImportObjectFact(b.fn, &have) {
					continue
				}
				if node, ok := c.evalNode(b.ret); ok && node.Known {
					c.pass.ExportObjectFact(b.fn, &NodeFact{Node: node})
					changed = true
				}
			case isSpecStackPtr(rt):
				var have StackFact
				if c.pass.ImportObjectFact(b.fn, &have) {
					continue
				}
				if st, ok := c.evalStack(b.ret); ok {
					c.pass.ExportObjectFact(b.fn, &StackFact{Stack: *st})
					changed = true
				}
			}
		}
	}
}

// soleReturn returns the expression of the body's single top-level
// return statement, or nil when the body's shape is anything else.
func soleReturn(body *ast.BlockStmt) ast.Expr {
	if len(body.List) != 1 {
		return nil
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	return ret.Results[0]
}

// ---- structural checks (any construction site) ----

func (c *checker) checkConstruction(call *ast.CallExpr) {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil || !specPkg(fn.Pkg()) && !berthaPkg(fn.Pkg()) {
		return
	}
	switch fn.Name() {
	case "New":
		if !specPkg(fn.Pkg()) || len(call.Args) == 0 {
			return
		}
		if s, ok := c.constString(call.Args[0]); ok && s == "" {
			c.pass.Reportf(call.Args[0].Pos(), "empty-type",
				"chunnel node with empty type name never matches an implementation")
		}
	case "Select":
		if call.Ellipsis.IsValid() {
			return
		}
		branches := call.Args[1:] // bertha.Select(typ, branches...)
		if specPkg(fn.Pkg()) && len(call.Args) >= 2 {
			branches = call.Args[2:] // spec.Select(typ, args, branches...)
		}
		for _, b := range branches {
			if st, ok := c.evalStack(b); ok && len(st.Nodes) == 0 {
				c.pass.Reportf(b.Pos(), "empty-branch",
					"select branch is an empty stack; negotiation cannot resolve to nothing")
			}
		}
	}
}

// ---- sink checks ----

// checkSink evaluates stack arguments at negotiation entry points.
func (c *checker) checkSink(call *ast.CallExpr) {
	fn := calleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	isSink := (fn.Name() == "New" && berthaPkg(fn.Pkg())) ||
		(fn.Name() == "NewEndpoint" && corePkg(fn.Pkg()))
	if !isSink {
		return
	}
	optimized := false
	for _, a := range call.Args {
		if isOptimizerOption(a) {
			optimized = true
		}
	}
	for _, a := range call.Args {
		tv, ok := c.pass.TypesInfo.Types[a]
		if !ok || !isSpecStackPtr(tv.Type) {
			continue
		}
		st, ok := c.evalStack(a)
		if !ok {
			continue
		}
		c.checkStack(a, st, 0, optimized)
	}
}

// isOptimizerOption reports whether the sink argument enables the §6
// optimizer (whose eliminate pass legalizes duplicate sequence types).
func isOptimizerOption(a ast.Expr) bool {
	call, ok := ast.Unparen(a).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "WithOptimizer"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "WithOptimizer"
	}
	return false
}

// checkStack applies the registry-dependent checks to an evaluated
// stack reaching a sink, reporting at the sink argument's position.
func (c *checker) checkStack(at ast.Expr, st *SpecStack, depth int, optimized bool) {
	if depth > maxDepth {
		c.pass.Reportf(at.Pos(), "too-deep",
			"select nesting exceeds spec.MaxDepth (%d); Validate will reject this stack", maxDepth)
		return
	}
	seen := map[string]bool{}
	for _, n := range st.Nodes {
		if !n.Known || n.Type == "" {
			continue
		}
		if !optimized && seen[n.Type] {
			c.pass.Reportf(at.Pos(), "dup-type",
				"chunnel type %q appears twice in one sequence; enable the optimizer or drop the duplicate", n.Type)
		}
		seen[n.Type] = true
		if len(c.impls) == 0 {
			continue // no registry knowledge loaded: stay silent
		}
		locs, registered := c.impls[n.Type]
		if n.Select {
			if !c.selects[n.Type] && !registered {
				c.pass.Reportf(at.Pos(), "unknown-type",
					"select type %q has no registered resolver", n.Type)
			}
		} else if !registered {
			c.pass.Reportf(at.Pos(), "unknown-type",
				"chunnel type %q has no registered implementation", n.Type)
		}
		if registered && n.Scope != 0 {
			any := false
			for _, loc := range locs {
				if allowedBy(loc, n.Scope) {
					any = true
					break
				}
			}
			if !any {
				c.pass.Reportf(at.Pos(), "scope",
					"scope constraint on %q excludes every registered implementation's location", n.Type)
			}
		}
		for i := range n.Branches {
			c.checkStack(at, &n.Branches[i], depth+1, optimized)
		}
	}
}

// ---- the evaluator ----

// evalStack resolves expr to a stack shape when it is built from Seq /
// Wrap / a single-assignment local / a fact-known builder call.
func (c *checker) evalStack(expr ast.Expr) (*SpecStack, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		if init := c.localInit(e); init != nil {
			return c.evalStack(init)
		}
		return nil, false
	case *ast.CallExpr:
		fn := calleeFunc(c.pass.TypesInfo, e)
		if fn == nil {
			return nil, false
		}
		if e.Ellipsis.IsValid() {
			return nil, false // forwarded slice: element exprs not visible
		}
		if (fn.Name() == "Seq" && specPkg(fn.Pkg())) ||
			(fn.Name() == "Wrap" && berthaPkg(fn.Pkg())) {
			st := &SpecStack{}
			for _, a := range e.Args {
				node, ok := c.evalNode(a)
				if !ok {
					node = SpecNode{} // keep position, mark unknown
				}
				st.Nodes = append(st.Nodes, node)
			}
			return st, true
		}
		var sf StackFact
		if c.pass.ImportObjectFact(fn, &sf) {
			return &sf.Stack, true
		}
	}
	return nil, false
}

// evalNode resolves expr to a node shape: spec.New / spec.Select /
// bertha.Select / Node.WithScope / a fact-known builder call.
func (c *checker) evalNode(expr ast.Expr) (SpecNode, bool) {
	expr = ast.Unparen(expr)
	switch e := expr.(type) {
	case *ast.Ident:
		if init := c.localInit(e); init != nil {
			return c.evalNode(init)
		}
	case *ast.CallExpr:
		fn := calleeFunc(c.pass.TypesInfo, e)
		if fn == nil || e.Ellipsis.IsValid() {
			return SpecNode{}, false
		}
		switch {
		case fn.Name() == "New" && specPkg(fn.Pkg()) && len(e.Args) >= 1:
			typ, ok := c.constString(e.Args[0])
			if !ok {
				return SpecNode{}, false
			}
			return SpecNode{Known: true, Type: typ}, true
		case fn.Name() == "Select" && (specPkg(fn.Pkg()) || berthaPkg(fn.Pkg())) && len(e.Args) >= 1:
			typ, ok := c.constString(e.Args[0])
			if !ok {
				return SpecNode{}, false
			}
			node := SpecNode{Known: true, Type: typ, Select: true}
			branches := e.Args[1:]
			if specPkg(fn.Pkg()) && len(e.Args) >= 2 {
				branches = e.Args[2:] // skip the args parameter
			}
			for _, b := range branches {
				if st, ok := c.evalStack(b); ok {
					node.Branches = append(node.Branches, *st)
				} else {
					node.Branches = append(node.Branches, SpecStack{Nodes: []SpecNode{{}}})
				}
			}
			return node, true
		case fn.Name() == "WithScope" && specPkg(fn.Pkg()):
			sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
			if !ok {
				return SpecNode{}, false
			}
			node, ok := c.evalNode(sel.X)
			if !ok || len(e.Args) != 1 {
				return SpecNode{}, false
			}
			if v, ok := c.constUint(e.Args[0]); ok {
				node.Scope = v
			}
			return node, true
		default:
			var nf NodeFact
			if c.pass.ImportObjectFact(fn, &nf) {
				return nf.Node, true
			}
		}
	}
	return SpecNode{}, false
}

// localInit returns the initializer of a function-local variable that
// is assigned exactly once (at its := definition), nil otherwise.
func (c *checker) localInit(id *ast.Ident) ast.Expr {
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if c.locals == nil {
		c.buildLocals()
	}
	return c.locals[v]
}

// buildLocals indexes, across all files, locals defined by a 1:1 `:=`
// and never reassigned.
func (c *checker) buildLocals() {
	c.locals = map[*types.Var]ast.Expr{}
	assigned := map[*types.Var]int{}
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				if ok {
					for _, lhs := range as.Lhs {
						if id, isID := lhs.(*ast.Ident); isID {
							if v, isVar := defOrUse(c.pass.TypesInfo, id).(*types.Var); isVar {
								assigned[v] += 2 // multi-value: never follow
							}
						}
					}
				}
				return true
			}
			for i, lhs := range as.Lhs {
				id, isID := lhs.(*ast.Ident)
				if !isID {
					continue
				}
				v, isVar := defOrUse(c.pass.TypesInfo, id).(*types.Var)
				if !isVar {
					continue
				}
				assigned[v]++
				if _, dup := c.locals[v]; !dup {
					c.locals[v] = as.Rhs[i]
				}
			}
			return true
		})
	}
	for v, n := range assigned {
		if n != 1 {
			delete(c.locals, v)
		}
	}
}

func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// ---- constants and type tests ----

func (c *checker) constString(expr ast.Expr) (string, bool) {
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func (c *checker) constUint(expr ast.Expr) (uint8, bool) {
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, ok := constant.Uint64Val(constant.ToInt(tv.Value))
	if !ok {
		return 0, false
	}
	return uint8(v), true
}

func specPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/spec" || strings.HasSuffix(pkg.Path(), "/internal/spec"))
}

func corePkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/core" || strings.HasSuffix(pkg.Path(), "/internal/core"))
}

func berthaPkg(pkg *types.Package) bool {
	return pkg != nil && strings.HasSuffix(pkg.Path(), "/bertha")
}

func isSpecNodeType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Node" && specPkg(named.Obj().Pkg())
}

func isSpecStackPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Stack" && specPkg(named.Obj().Pkg())
}

// calleeFunc resolves the statically-known called function.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
