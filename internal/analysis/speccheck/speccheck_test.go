package speccheck_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/speccheck"
)

func TestSpeccheck(t *testing.T) {
	analysistest.Run(t, "speccheck_a", speccheck.Analyzer, "speccheck_dep")
}
