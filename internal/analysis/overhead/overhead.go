// Package overhead checks that each chunnel implementation's send path
// prepends no more bytes than its registered core.ImplInfo declares in
// SendOverhead — the bound core/runtime's assemble sums into
// Env.StackHeadroom. If a SendBuf prepends more than declared, the
// stack under-allocates headroom and every send falls off the zero-copy
// fast path (or worse, reallocates mid-stack).
//
// Diagnostic categories:
//
//	exceeds   worst-case Prepend total on a SendBuf path is greater than
//	          the package's declared SendOverhead
//	unbounded a Prepend executes inside a loop, so no static bound exists
//	nonconst  a Prepend size cannot be folded to a constant and carries
//	          no //bertha:overhead N annotation
//
// Prepends whose size is not a compile-time constant can be bounded with
// //bertha:overhead N on the statement line (or the line above).
//
// Batch send paths are held to the same per-message bound: in a
// SendBufs body, a Prepend applied to the element variable of a range
// loop over the burst parameter executes once per element, so it counts
// per-element against SendOverhead instead of tripping the unbounded
// rule.
package overhead

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"github.com/bertha-net/bertha/internal/analysis"
)

// CostFact records the worst-case bytes a function prepends to each of
// its *wire.Buf parameters, letting callers in other packages charge
// cross-package helper calls against their own SendOverhead bound.
type CostFact struct {
	// Costs[i] is the worst-case prepend total applied to parameter i
	// (receiver excluded); non-Buf positions hold zero.
	Costs []int
}

// AFact marks CostFact as a fact type.
func (*CostFact) AFact() {}

// Analyzer is the overhead pass.
var Analyzer = &analysis.Analyzer{
	Name:      "overhead",
	Doc:       "bound worst-case Prepend bytes on chunnel send paths against declared SendOverhead",
	Run:       run,
	FactTypes: []analysis.Fact{(*CostFact)(nil)},
}

type implDecl struct {
	name     string
	overhead int
	pos      token.Pos
}

func run(pass *analysis.Pass) error {
	impls := collectImpls(pass)
	w := &walker{
		pass:  pass,
		ann:   analysis.CollectAnnotations(pass.Fset, pass.Files),
		decls: map[*types.Func]*ast.FuncDecl{},
		memo:  map[memoKey]int{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					w.decls[fn] = fd
				}
			}
		}
	}
	if len(impls) > 0 {
		// The bound every send path must respect: the largest declared
		// SendOverhead in the package (packages register one impl today;
		// max keeps multi-impl packages conservative rather than wrong).
		bound := impls[0]
		for _, im := range impls[1:] {
			if im.overhead > bound.overhead {
				bound = im
			}
		}
		for _, f := range pass.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Recv == nil {
					continue
				}
				switch fd.Name.Name {
				case "SendBuf":
					buf := bufParam(pass, fd)
					if buf == nil {
						continue
					}
					total := w.costFunc(fd, buf)
					if total > bound.overhead {
						pass.Reportf(fd.Name.Pos(), "exceeds",
							"SendBuf prepends up to %d bytes but ImplInfo %q declares SendOverhead %d; raise the declaration or shrink the header",
							total, bound.name, bound.overhead)
					}
				case "SendBufs":
					// The batch path must respect the same per-message
					// bound: each element of the burst gets at most
					// SendOverhead bytes of headers.
					slice := bufSliceParam(pass, fd)
					if slice == nil {
						continue
					}
					total := w.costBatch(fd, slice)
					if total > bound.overhead {
						pass.Reportf(fd.Name.Pos(), "exceeds",
							"SendBufs prepends up to %d bytes per element but ImplInfo %q declares SendOverhead %d; raise the declaration or shrink the header",
							total, bound.name, bound.overhead)
					}
				}
			}
		}
	}
	w.exportCosts()
	return nil
}

// exportCosts publishes a CostFact for every function that prepends
// into a *wire.Buf parameter, so cross-package callers can charge the
// call against their own bound. Costing here is quiet: packages with no
// registered impl are not report targets (the bound check above, when
// it ran, already reported in loud mode first).
func (w *walker) exportCosts() {
	w.quiet = true
	for fn, fd := range w.decls {
		if fd.Body == nil {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		costs := make([]int, sig.Params().Len())
		any := false
		for i := 0; i < sig.Params().Len(); i++ {
			if !analysis.IsBufPtr(sig.Params().At(i).Type()) {
				continue
			}
			if n := w.costCallee(fn, i); n > 0 {
				costs[i] = n
				any = true
			}
		}
		if any {
			w.pass.ExportObjectFact(fn, &CostFact{Costs: costs})
		}
	}
}

// collectImpls finds core.ImplInfo composite literals and folds their
// Name and SendOverhead fields to constants.
func collectImpls(pass *analysis.Pass) []implDecl {
	var impls []implDecl
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[cl]
			if !ok || !analysis.IsImplInfo(tv.Type) {
				return true
			}
			im := implDecl{name: "?", overhead: -1, pos: cl.Pos()}
			for _, el := range cl.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				val := pass.TypesInfo.Types[kv.Value].Value
				switch key.Name {
				case "Name":
					if val != nil && val.Kind() == constant.String {
						im.name = constant.StringVal(val)
					}
				case "SendOverhead":
					if n, exact := foldInt(val); exact {
						im.overhead = n
					} else {
						pass.Reportf(kv.Value.Pos(), "nonconst",
							"SendOverhead of impl %q is not a compile-time constant; the analyzer cannot bound the send path", im.name)
					}
				}
			}
			if im.overhead < 0 {
				im.overhead = 0 // absent field: zero value, still checked
			}
			impls = append(impls, im)
			return true
		})
	}
	return impls
}

func foldInt(v constant.Value) (int, bool) {
	if v == nil {
		return 0, false
	}
	n, exact := constant.Int64Val(constant.ToInt(v))
	if !exact {
		return 0, false
	}
	return int(n), true
}

// bufSliceParam returns the []*wire.Buf parameter of a SendBufs
// declaration.
func bufSliceParam(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && analysis.IsBufSlice(v.Type()) {
				return v
			}
		}
	}
	return nil
}

// costBatch computes the worst-case bytes a SendBufs body prepends to
// any single element of its burst parameter. Each range loop over the
// burst visits every element once, so a Prepend there is per-element
// bounded — not "unbounded" — and loops are summed because each one
// stacks more header onto the same messages.
func (w *walker) costBatch(fd *ast.FuncDecl, slice *types.Var) int {
	if n, ok := analysis.FuncOverhead(fd.Doc); ok {
		return n
	}
	total := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !exprUsesVar(w.pass.TypesInfo, rs.X, slice) {
			return true
		}
		val, ok := rs.Value.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.pass.TypesInfo.Defs[val].(*types.Var)
		if !ok || !analysis.IsBufPtr(v.Type()) {
			return true
		}
		c := &coster{w: w, buf: v, aliases: map[*types.Var]bool{v: true}}
		total += c.block(rs.Body.List)
		return false
	})
	return total
}

// exprUsesVar reports whether x mentions v (directly or through a
// reslice like bs[i:]).
func exprUsesVar(info *types.Info, x ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(x, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if u, ok := info.Uses[id].(*types.Var); ok && u == v {
				found = true
			}
		}
		return !found
	})
	return found
}

// bufParam returns the *wire.Buf parameter of a SendBuf declaration.
func bufParam(pass *analysis.Pass, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && analysis.IsBufPtr(v.Type()) {
				return v
			}
		}
	}
	return nil
}

type memoKey struct {
	fn  *types.Func
	arg int
}

type walker struct {
	pass  *analysis.Pass
	ann   *analysis.Annotations
	decls map[*types.Func]*ast.FuncDecl
	memo  map[memoKey]int
	stack []memoKey // recursion guard
	quiet bool      // fact-export costing: compute totals, suppress reports
}

// costFunc computes the worst-case bytes fd prepends to buf.
func (w *walker) costFunc(fd *ast.FuncDecl, buf *types.Var) int {
	// A //bertha:overhead N doc directive asserts the whole function's
	// bound, overriding the body analysis.
	if n, ok := analysis.FuncOverhead(fd.Doc); ok {
		return n
	}
	c := &coster{w: w, buf: buf, aliases: map[*types.Var]bool{buf: true}}
	return c.block(fd.Body.List)
}

// coster computes worst-case prepend totals for one function frame.
type coster struct {
	w       *walker
	buf     *types.Var
	aliases map[*types.Var]bool
	inLoop  bool
}

func (c *coster) block(stmts []ast.Stmt) int {
	total := 0
	for _, s := range stmts {
		total += c.stmt(s)
	}
	return total
}

func (c *coster) stmt(s ast.Stmt) int {
	switch s := s.(type) {
	case nil:
		return 0
	case *ast.ExprStmt:
		return c.expr(s.X)
	case *ast.AssignStmt:
		total := 0
		// Track aliases of the buf parameter so nb := b still counts.
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) {
				if rid, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident); ok {
					if v, ok := c.w.pass.TypesInfo.Uses[rid].(*types.Var); ok && c.aliases[v] {
						if lv, ok := lhs.(*ast.Ident); ok {
							if lvv, ok := c.w.pass.TypesInfo.Defs[lv].(*types.Var); ok {
								c.aliases[lvv] = true
							}
						}
					}
				}
			}
		}
		for _, r := range s.Rhs {
			total += c.expr(r)
		}
		return total
	case *ast.ReturnStmt:
		total := 0
		for _, r := range s.Results {
			total += c.expr(r)
		}
		return total
	case *ast.BlockStmt:
		return c.block(s.List)
	case *ast.IfStmt:
		total := c.stmt(s.Init)
		total += c.expr(s.Cond)
		then := c.block(s.Body.List)
		els := 0
		if s.Else != nil {
			els = c.stmt(s.Else)
		}
		return total + max(then, els)
	case *ast.ForStmt:
		return c.loop(func() int {
			t := c.stmt(s.Init) + c.expr(s.Cond) + c.stmt(s.Post)
			return t + c.block(s.Body.List)
		})
	case *ast.RangeStmt:
		return c.loop(func() int {
			return c.expr(s.X) + c.block(s.Body.List)
		})
	case *ast.SwitchStmt:
		total := c.stmt(s.Init) + c.expr(s.Tag)
		worst := 0
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				worst = max(worst, c.block(cc.Body))
			}
		}
		return total + worst
	case *ast.TypeSwitchStmt:
		total := c.stmt(s.Init) + c.stmt(s.Assign)
		worst := 0
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CaseClause); ok {
				worst = max(worst, c.block(cc.Body))
			}
		}
		return total + worst
	case *ast.SelectStmt:
		worst := 0
		for _, cs := range s.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok {
				worst = max(worst, c.stmt(cc.Comm)+c.block(cc.Body))
			}
		}
		return worst
	case *ast.DeferStmt:
		return c.expr(s.Call)
	case *ast.GoStmt:
		return c.expr(s.Call)
	case *ast.SendStmt:
		return c.expr(s.Chan) + c.expr(s.Value)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt)
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		return 0
	}
	return 0
}

func (c *coster) loop(body func() int) int {
	saved := c.inLoop
	c.inLoop = true
	t := body()
	c.inLoop = saved
	return t
}

// expr returns the worst-case prepend bytes executed by x.
func (c *coster) expr(x ast.Expr) int {
	if x == nil {
		return 0
	}
	total := 0
	ast.Inspect(x, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		total += c.call(call)
		return false // c.call recursed into arguments itself
	})
	return total
}

func (c *coster) call(call *ast.CallExpr) int {
	total := 0
	for _, arg := range call.Args {
		total += c.expr(arg)
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		total += c.expr(sel.X)
		if sel.Sel.Name == "Prepend" && c.isBufAlias(sel.X) {
			return total + c.prepend(call)
		}
	} else {
		total += c.expr(call.Fun)
	}
	// Call forwarding the buf: charge the callee's cost — computed
	// directly for same-package callees, from its exported CostFact for
	// cross-package ones.
	if fn := c.calleeFunc(call); fn != nil {
		for i, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if v, ok := c.w.pass.TypesInfo.Uses[id].(*types.Var); ok && c.aliases[v] {
					if fn.Pkg() == c.w.pass.Pkg {
						total += c.w.costCallee(fn, i)
					} else {
						var cf CostFact
						if c.w.pass.ImportObjectFact(fn, &cf) && i < len(cf.Costs) {
							total += cf.Costs[i]
						}
					}
				}
			}
		}
	}
	return total
}

// prepend folds one b.Prepend(n) call to its byte count.
func (c *coster) prepend(call *ast.CallExpr) int {
	n := 0
	if len(call.Args) == 1 {
		if v, exact := foldInt(c.w.pass.TypesInfo.Types[call.Args[0]].Value); exact {
			n = v
		} else if a, ok := c.w.ann.OverheadAt(call.Pos()); ok {
			n = a
		} else {
			if !c.w.quiet {
				c.w.pass.Reportf(call.Pos(), "nonconst",
					"Prepend size is not a compile-time constant; annotate the statement with //bertha:overhead N to bound it")
			}
			return 0
		}
	}
	if c.inLoop {
		// An annotation on a looped prepend asserts the loop total.
		if _, ok := c.w.ann.OverheadAt(call.Pos()); !ok {
			if !c.w.quiet {
				c.w.pass.Reportf(call.Pos(), "unbounded",
					"Prepend inside a loop has no static bound; annotate the statement with //bertha:overhead N for the loop total")
			}
			return 0
		}
	}
	return n
}

func (c *coster) isBufAlias(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := c.w.pass.TypesInfo.Uses[id].(*types.Var)
	return ok && c.aliases[v]
}

func (c *coster) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := c.w.pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := c.w.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// costCallee computes (memoized) the worst-case prepend bytes a
// same-package callee applies to its i-th argument.
func (w *walker) costCallee(fn *types.Func, argIndex int) int {
	key := memoKey{fn, argIndex}
	if n, ok := w.memo[key]; ok {
		return n
	}
	for _, k := range w.stack {
		if k == key {
			return 0 // recursion: treat as zero rather than diverge
		}
	}
	fd, ok := w.decls[fn]
	if !ok || fd.Body == nil {
		return 0
	}
	if n, ok := analysis.FuncOverhead(fd.Doc); ok {
		w.memo[key] = n
		return n
	}
	// Map argIndex to the parameter variable.
	var param *types.Var
	idx := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if idx == argIndex {
					if v, ok := w.pass.TypesInfo.Defs[name].(*types.Var); ok && analysis.IsBufPtr(v.Type()) {
						param = v
					}
				}
				idx++
			}
		}
	}
	if param == nil {
		w.memo[key] = 0
		return 0
	}
	w.stack = append(w.stack, key)
	c := &coster{w: w, buf: param, aliases: map[*types.Var]bool{param: true}}
	n := c.block(fd.Body.List)
	w.stack = w.stack[:len(w.stack)-1]
	w.memo[key] = n
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
