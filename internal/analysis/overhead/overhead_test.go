package overhead_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/overhead"
)

func TestOverhead(t *testing.T) {
	analysistest.Run(t, "overhead_a", overhead.Analyzer)
}

func TestOverheadCrossPackage(t *testing.T) {
	analysistest.Run(t, "overhead_cross", overhead.Analyzer, "overhead_dep")
}

// TestOverheadTrace pins the trace chunnel's wire format: a context
// stamper declaring less SendOverhead than its sampled worst case (16
// bytes) must be flagged, so the real implementation's declaration
// cannot silently drift below the format it writes.
func TestOverheadTrace(t *testing.T) {
	analysistest.Run(t, "overhead_trace", overhead.Analyzer)
}
