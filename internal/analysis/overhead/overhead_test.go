package overhead_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/overhead"
)

func TestOverhead(t *testing.T) {
	analysistest.Run(t, "overhead_a", overhead.Analyzer)
}

func TestOverheadCrossPackage(t *testing.T) {
	analysistest.Run(t, "overhead_cross", overhead.Analyzer, "overhead_dep")
}
