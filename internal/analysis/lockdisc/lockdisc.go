// Package lockdisc checks lock discipline around the blocking data
// plane: no sync.Mutex/RWMutex may be held across a conn Send/Recv/
// SendBuf/RecvBuf call or a blocking channel send, no mutex may be
// acquired twice on one path, and paired mutexes must be acquired in a
// consistent order everywhere in the package.
//
// Diagnostic categories:
//
//	across-send  a mutex is held across a blocking conn call
//	chan-send    a mutex is held across a channel send (use the
//	             unlock-send-relock pattern or a select with default)
//	order        two mutexes are acquired in both (A,B) and (B,A) order
//	             somewhere in the package
//	double-lock  a mutex is acquired while already held on the same path
//
//	deadlock     a lock-order cycle closes through calls — possibly
//	             across functions and packages (see interproc.go)
//
// The per-function analysis is path-insensitive at joins (a mutex
// counts as held after a branch only if every arm holds it). `defer
// mu.Unlock()` keeps the mutex held for the rest of the function, which
// is the point: the data-plane calls it covers execute under the lock.
// On top of it, interproc.go chains held-lock sets through calls using
// the module call graph and each package's exported LockOrderFact,
// turning the order check whole-module.
package lockdisc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/bertha-net/bertha/internal/analysis"
)

// Analyzer is the lockdisc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockdisc",
	Doc:       "flag mutexes held across blocking conn calls, inconsistent lock ordering, and cross-package lock-order cycles",
	Run:       run,
	FactTypes: []analysis.Fact{(*LockOrderFact)(nil)},
}

// held maps a lock's source expression (e.g. "c.mu") to where it was
// acquired on the current path.
type held map[string]token.Pos

func (h held) clone() held {
	c := make(held, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only locks held on both paths.
func (h held) intersect(o held) held {
	c := held{}
	for k, v := range h {
		if _, ok := o[k]; ok {
			c[k] = v
		}
	}
	return c
}

func (h held) keys() []string {
	ks := make([]string, 0, len(h))
	for k := range h {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// orderEdge records that `second` was acquired while `first` was held.
type orderEdge struct{ first, second string }

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass, orders: map[orderEdge]token.Pos{},
		globalOf: map[string]string{}, moduleOf: map[string]string{}}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			w.cur = &funcRec{fn: fn, acquires: map[string]token.Pos{}}
			w.recs = append(w.recs, w.cur)
			w.stmtList(fd.Body.List, held{})
		}
	}
	w.cur = nil
	// Inconsistent acquisition order: both (A,B) and (B,A) observed.
	reported := map[orderEdge]bool{}
	var edges []orderEdge
	for e := range w.orders {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].first != edges[j].first {
			return edges[i].first < edges[j].first
		}
		return edges[i].second < edges[j].second
	})
	for _, e := range edges {
		inv := orderEdge{e.second, e.first}
		if invPos, ok := w.orders[inv]; ok && !reported[e] && !reported[inv] {
			reported[e], reported[inv] = true, true
			pass.Reportf(w.orders[e], "order",
				"locks %s and %s are acquired in both orders (inverse order at %s); pick one order to avoid deadlock",
				e.first, e.second, pass.Fset.Position(invPos))
		}
	}
	// Interprocedural pass: transitive acquire sets, cross-package
	// cycle detection, and the LockOrderFact export.
	if fact := w.interproc(); fact != nil {
		pass.ExportPackageFact(fact)
	}
	return nil
}

type walker struct {
	pass     *analysis.Pass
	orders   map[orderEdge]token.Pos
	globalOf map[string]string // local lock key -> global identity
	moduleOf map[string]string // local lock key -> module-global lock ID
	// cur is the record of the function (or literal) being walked;
	// recs accumulates every record for the interprocedural pass.
	cur  *funcRec
	recs []*funcRec
	// moduleEdges are the direct (inline) acquisition-order edges seen
	// by this pass, keyed by module-global lock IDs.
	moduleEdges []modEdge
	// deferring marks walking of a deferred call: its calls record an
	// empty held set (the locks held at the defer statement are not
	// necessarily held when the deferred call finally runs).
	deferring bool
}

// nested walks a function literal or deferred call under its own
// record, so its acquisitions never count toward the enclosing
// function's synchronous transitive set.
func (w *walker) nested(fn func()) {
	prev := w.cur
	w.cur = &funcRec{acquires: map[string]token.Pos{}}
	w.recs = append(w.recs, w.cur)
	fn()
	w.cur = prev
}

// curName names the current function for witness text.
func (w *walker) curName() string {
	if w.cur != nil && w.cur.fn != nil {
		return w.cur.fn.Name()
	}
	return "func literal"
}

func (w *walker) stmtList(list []ast.Stmt, h held) held {
	for _, s := range list {
		h = w.stmt(s, h)
	}
	return h
}

// stmt threads the held-lock set through one statement.
func (w *walker) stmt(s ast.Stmt, h held) held {
	switch s := s.(type) {
	case nil:
		return h
	case *ast.ExprStmt:
		return w.expr(s.X, h)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			h = w.expr(r, h)
		}
		return h
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			h = w.expr(r, h)
		}
		return h
	case *ast.BlockStmt:
		return w.stmtList(s.List, h)
	case *ast.IfStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		h = w.expr(s.Cond, h)
		hThen := w.stmtList(s.Body.List, h.clone())
		hElse := h.clone()
		if s.Else != nil {
			hElse = w.stmt(s.Else, hElse)
		}
		return hThen.intersect(hElse)
	case *ast.ForStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		h = w.expr(s.Cond, h)
		hBody := w.stmtList(s.Body.List, h.clone())
		if s.Post != nil {
			w.stmt(s.Post, hBody)
		}
		return h
	case *ast.RangeStmt:
		h = w.expr(s.X, h)
		w.stmtList(s.Body.List, h.clone())
		return h
	case *ast.SwitchStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		h = w.expr(s.Tag, h)
		return w.clauses(s.Body, h)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			h = w.stmt(s.Init, h)
		}
		h = w.stmt(s.Assign, h)
		return w.clauses(s.Body, h)
	case *ast.SelectStmt:
		return w.clauses(s.Body, h)
	case *ast.DeferStmt:
		// defer mu.Unlock() does NOT release for our purposes: the lock
		// stays held for the remainder of the function body.
		if key, op, ok := w.lockOp(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			_ = key
			return h
		}
		w.nested(func() {
			w.deferring = true
			w.expr(s.Call, h)
			w.deferring = false
		})
		return h
	case *ast.GoStmt:
		// The goroutine body runs later, without our locks.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.nested(func() { w.stmtList(fl.Body.List, held{}) })
		}
		for _, a := range s.Call.Args {
			h = w.expr(a, h)
		}
		return h
	case *ast.SendStmt:
		h = w.expr(s.Chan, h)
		h = w.expr(s.Value, h)
		if len(h) > 0 {
			w.pass.Reportf(s.Arrow, "chan-send",
				"blocking channel send while holding %v; unlock first (see the unlock-send-relock pattern) or use a select with default",
				h.keys())
		}
		return h
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, h)
	case *ast.IncDecStmt:
		return w.expr(s.X, h)
	}
	return h
}

// clauses analyzes switch/select bodies; the result is the intersection
// of the per-clause lock sets.
func (w *walker) clauses(body *ast.BlockStmt, h held) held {
	var outs []held
	for _, cs := range body.List {
		hc := h.clone()
		switch cs := cs.(type) {
		case *ast.CaseClause:
			for _, x := range cs.List {
				hc = w.expr(x, hc)
			}
			hc = w.stmtList(cs.Body, hc)
		case *ast.CommClause:
			if cs.Comm != nil {
				// A blocking comm op under a lock is only safe in a
				// select with default; the select itself may block.
				hc = w.commStmt(cs, hc, hasDefault(body))
			}
			hc = w.stmtList(cs.Body, hc)
		}
		outs = append(outs, hc)
	}
	if len(outs) == 0 {
		return h
	}
	out := outs[0]
	for _, o := range outs[1:] {
		out = out.intersect(o)
	}
	return out
}

// commStmt handles a select communication clause: a send case in a
// select without default is still a blocking send under the lock.
func (w *walker) commStmt(cs *ast.CommClause, h held, nonBlocking bool) held {
	if snd, ok := cs.Comm.(*ast.SendStmt); ok {
		h = w.expr(snd.Chan, h)
		h = w.expr(snd.Value, h)
		if len(h) > 0 && !nonBlocking {
			w.pass.Reportf(snd.Arrow, "chan-send",
				"blocking channel send (select without default) while holding %v", h.keys())
		}
		return h
	}
	return w.stmt(cs.Comm, h)
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// expr scans an expression for lock operations and blocking conn calls.
func (w *walker) expr(x ast.Expr, h held) held {
	if x == nil {
		return h
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Runs later (or inline, but with its own lock tracking).
			w.nested(func() { w.stmtList(n.Body.List, held{}) })
			return false
		case *ast.CallExpr:
			if lk, op, ok := w.lockOp(n); ok {
				switch op {
				case "Lock", "RLock":
					if prev, already := h[lk.local]; already {
						w.pass.Reportf(n.Pos(), "double-lock",
							"%s is acquired while already held (first acquired at %s): self-deadlock",
							lk.local, w.pass.Fset.Position(prev))
					}
					for other, otherGlobal := range w.globals(h) {
						if other != lk.local && otherGlobal != lk.global {
							edge := orderEdge{otherGlobal, lk.global}
							if _, ok := w.orders[edge]; !ok {
								w.orders[edge] = n.Pos()
							}
						}
					}
					// Module-graph bookkeeping: the acquisition itself
					// (seed of the transitive set) and direct order
					// edges keyed by module-global identity.
					if w.cur != nil {
						if _, ok := w.cur.acquires[lk.module]; !ok {
							w.cur.acquires[lk.module] = n.Pos()
						}
						for otherLocal := range h {
							if om := w.moduleOf[otherLocal]; om != "" && om != lk.module && otherLocal != lk.local {
								w.moduleEdges = append(w.moduleEdges, modEdge{
									first: om, second: lk.module, pos: n.Pos(), direct: true,
									why: fmt.Sprintf("%s acquires %s then %s", w.curName(), om, lk.module),
								})
							}
						}
					}
					h[lk.local] = n.Pos()
					w.globalOf[lk.local] = lk.global
					w.moduleOf[lk.local] = lk.module
				case "Unlock", "RUnlock":
					delete(h, lk.local)
				}
				return true
			}
			if name, ok := analysis.ConnCallName(w.pass.TypesInfo, n); ok && len(h) > 0 {
				w.pass.Reportf(n.Pos(), "across-send",
					"%s called while holding %v; blocking conn calls must not run under a mutex",
					name, h.keys())
			}
			// Record the call for the interprocedural pass: the callee
			// may acquire locks of its own, which makes every lock held
			// here order-before them.
			if w.cur != nil {
				if callee, iface := calleeOf(w.pass.TypesInfo, n); callee != nil {
					var heldIDs []string
					if !w.deferring {
						for local := range h {
							if m := w.moduleOf[local]; m != "" {
								heldIDs = append(heldIDs, m)
							}
						}
						sort.Strings(heldIDs)
					}
					w.cur.calls = append(w.cur.calls, callRec{
						callee: callee, iface: iface, held: heldIDs, pos: n.Pos(),
					})
				}
			}
		}
		return true
	})
	return h
}

// lockKey identifies a lock three ways: local is the source expression
// (path-sensitive within one function), global is a package-wide
// identity (Type.field for struct mutexes) used for order checking so
// c.sendMu in one method and a.sendMu in another compare equal, and
// module is the package-qualified form of global used by the
// interprocedural graph so the same field compares equal across
// packages.
type lockKey struct {
	local  string
	global string
	module string
}

// globals annotates each held local key with its global identity.
func (w *walker) globals(h held) map[string]string {
	out := make(map[string]string, len(h))
	for local := range h {
		g := local
		if gk, ok := w.globalOf[local]; ok {
			g = gk
		}
		out[local] = g
	}
	return out
}

// lockOp recognizes calls to sync.(RW)Mutex Lock/RLock/Unlock/RUnlock
// (including promoted methods of embedded mutexes).
func (w *walker) lockOp(call *ast.CallExpr) (lockKey, string, bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return lockKey{}, "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockKey{}, "", false
	}
	fn, isFn := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, "", false
	}
	lk := lockKey{local: types.ExprString(sel.X), global: types.ExprString(sel.X)}
	lk.module = w.pass.Pkg.Path() + "." + lk.global
	// For x.field mutexes, key the order graph by the owner's type name
	// so the same struct field matches across methods with different
	// receiver names (and, module-qualified, across packages).
	if owner, ok := sel.X.(*ast.SelectorExpr); ok {
		if tv, ok := w.pass.TypesInfo.Types[owner.X]; ok {
			t := tv.Type
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				lk.global = named.Obj().Name() + "." + owner.Sel.Name
				if named.Obj().Pkg() != nil {
					lk.module = named.Obj().Pkg().Path() + "." + lk.global
				}
			}
		}
	}
	return lk, name, true
}

// calleeOf resolves a call expression to its static or interface-method
// callee, mirroring the callgraph classifier.
func calleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, false
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil, false
		}
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return fn, true
			}
		}
		return fn, false
	}
	return nil, false
}
