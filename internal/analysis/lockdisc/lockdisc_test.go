package lockdisc_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/lockdisc"
)

func TestLockdisc(t *testing.T) {
	analysistest.Run(t, "lockdisc_a", lockdisc.Analyzer)
}
