package lockdisc

import (
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
)

// siblingFacts models the unreportable split: pkg a orders X before Y,
// pkg b orders Y before X, and neither imports the other.
func siblingFacts() []analysis.PackageFact {
	return []analysis.PackageFact{
		{Path: "m/a", Fact: &LockOrderFact{Edges: []LockEdge{
			{First: "m/core.X.mu", Second: "m/core.Y.mu", Pos: "a.go:10",
				Why: "A holds m/core.X.mu and calls F, which acquires m/core.Y.mu"},
		}}},
		{Path: "m/b", Fact: &LockOrderFact{Edges: []LockEdge{
			{First: "m/core.Y.mu", Second: "m/core.X.mu", Pos: "b.go:20",
				Why: "B holds m/core.Y.mu and calls G, which acquires m/core.X.mu"},
		}}},
	}
}

// TestModuleDeadlocksSiblingCycle: with no import relation between the
// edge owners, the driver-level assembly must report the cycle exactly
// once, naming both locks in the witness.
func TestModuleDeadlocksSiblingCycle(t *testing.T) {
	sees := func(a, b string) bool { return a == b }
	findings := ModuleDeadlocks(siblingFacts(), sees)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(findings), findings)
	}
	msg := findings[0].Message
	if !strings.Contains(msg, "m/core.X.mu") || !strings.Contains(msg, "m/core.Y.mu") {
		t.Errorf("witness does not name both locks: %s", msg)
	}
	if findings[0].Pos == "" {
		t.Errorf("finding carries no witness position")
	}
}

// TestModuleDeadlocksSeenCycleSkipped: when some package's analysis saw
// every edge owner (b imports a), the per-package pass already reported
// the cycle and the driver must stay silent.
func TestModuleDeadlocksSeenCycleSkipped(t *testing.T) {
	sees := func(a, b string) bool { return a == b || (a == "m/b" && b == "m/a") }
	if findings := ModuleDeadlocks(siblingFacts(), sees); len(findings) != 0 {
		t.Errorf("cycle visible to m/b reported again at module level: %+v", findings)
	}
}

// TestModuleDeadlocksNoCycle: a consistent module-wide order produces
// nothing.
func TestModuleDeadlocksNoCycle(t *testing.T) {
	facts := []analysis.PackageFact{
		{Path: "m/a", Fact: &LockOrderFact{Edges: []LockEdge{
			{First: "m/core.X.mu", Second: "m/core.Y.mu", Pos: "a.go:10", Why: "w1"},
		}}},
		{Path: "m/b", Fact: &LockOrderFact{Edges: []LockEdge{
			{First: "m/core.Y.mu", Second: "m/core.Z.mu", Pos: "b.go:20", Why: "w2"},
		}}},
	}
	sees := func(a, b string) bool { return a == b }
	if findings := ModuleDeadlocks(facts, sees); len(findings) != 0 {
		t.Errorf("acyclic order graph reported: %+v", findings)
	}
}
