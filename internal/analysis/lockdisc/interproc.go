// Interprocedural lock-order analysis: the module-global deadlock
// check.
//
// The per-package walker (lockdisc.go) sees each function's direct
// acquisitions. This file chains them through calls: every function
// gets a transitive acquire set (the locks it may take, directly or
// through any callee), computed bottom-up over the package call graph
// with cross-package callees resolved through LockOrderFact — the
// summary each package exports for its functions. Holding lock A while
// calling a function whose transitive set contains B is an order edge
// A→B exactly as if the acquisition were inline.
//
// Interface calls are devirtualized through the callgraph package's
// bounded CHA. A call that cannot be devirtualized in its own package
// (the interface has no visible implementations there — the
// registry/callback pattern) is exported unresolved, with the held-lock
// set at the call site; an importing package retries it against its
// richer type environment, which is where the classic two-package
// deadlock closes: pkg A holds A.mu calling an interface method, pkg B
// implements it taking B.mu, and B also calls back into A under B.mu.
//
// Cycles in the assembled edge graph are reported as "deadlock"
// diagnostics with the full witness path. A pass only reports cycles
// that use at least one edge it produced itself, so a cycle is reported
// exactly once no matter how many packages can see it; plain
// two-function inverse pairs inside one package keep the existing
// "order" category. The standalone driver additionally assembles every
// package's exported edges into one module-global graph to catch
// cycles between sibling packages no single pass can see.
package lockdisc

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/callgraph"
)

// A LockCall is a call site exported unresolved: an interface-method
// call the defining package could not devirtualize, with the locks held
// around it. Importers retry it against their own type environments.
type LockCall struct {
	// CalleePkg/CalleeObj name the interface method ("Iface.Method").
	CalleePkg string
	CalleeObj string
	// Held lists the module-global lock IDs held at the call.
	Held []string
	// Caller names the calling function for witness text.
	Caller string
	// Pos is the call site as "file:line".
	Pos string
}

// A LockEdge is one order-graph edge: Second was (or may be) acquired
// while First was held.
type LockEdge struct {
	First  string
	Second string
	// Pos is the witness position as "file:line".
	Pos string
	// Why is the human-readable derivation for the diagnostic path.
	Why string
}

// A LockFunc is one function's exported summary.
type LockFunc struct {
	Obj string
	// Acquires is the transitive acquire set: module-global IDs of
	// every lock the function may take, directly or through callees.
	Acquires []string
	// Calls holds the function's unresolved interface calls.
	Calls []LockCall
}

// LockOrderFact is the per-package lock-order summary: every analyzed
// function's transitive acquires plus the order edges the package
// derived. Edges accumulate per package, not transitively — importers
// see dependency edges through their own fact closure.
type LockOrderFact struct {
	Funcs []LockFunc
	Edges []LockEdge
}

// AFact marks LockOrderFact as a fact type.
func (*LockOrderFact) AFact() {}

// funcRec is the walker's per-function record feeding the summary
// computation.
type funcRec struct {
	fn       *types.Func
	acquires map[string]token.Pos // module lock ID -> first acquisition
	calls    []callRec
}

// callRec is one recorded call site.
type callRec struct {
	callee *types.Func
	iface  bool
	held   []string // module lock IDs held at the call
	pos    token.Pos
}

// modEdge is an order edge discovered by this pass, with a real
// token.Pos for reporting.
type modEdge struct {
	first, second string
	pos           token.Pos
	why           string
	direct        bool // acquired inline rather than derived through a call
}

// interproc runs the summary computation and deadlock check after the
// walker has recorded every function. It returns the fact to export.
func (w *walker) interproc() *LockOrderFact {
	g := callgraph.Build(w.pass)
	pos := func(p token.Pos) string {
		position := w.pass.Fset.Position(p)
		return fmt.Sprintf("%s:%d", position.Filename, position.Line)
	}

	// Index local records and imported summaries.
	local := map[*types.Func]*funcRec{}
	for _, rec := range w.recs {
		if rec.fn != nil {
			local[rec.fn] = rec
		}
	}
	imported := map[string]*LockOrderFact{}
	importedFact := func(pkg *types.Package) *LockOrderFact {
		if f, ok := imported[pkg.Path()]; ok {
			return f
		}
		var fact LockOrderFact
		if !w.pass.ImportPackageFact(pkg, &fact) {
			imported[pkg.Path()] = nil
			return nil
		}
		imported[pkg.Path()] = &fact
		return &fact
	}
	factAcquires := func(fn *types.Func) []string {
		if fn.Pkg() == nil {
			return nil
		}
		fact := importedFact(fn.Pkg())
		if fact == nil {
			return nil
		}
		key := analysis.ObjectKey(fn)
		for _, lf := range fact.Funcs {
			if lf.Obj == key {
				return lf.Acquires
			}
		}
		return nil
	}

	// Transitive acquire sets: a worklist fixpoint over local records;
	// cross-package callees contribute their exported (already
	// transitive) sets, interface callees the union of their visible
	// implementations. Unresolvable callees contribute nothing — the
	// conservative direction for order edges is "no edge" plus an
	// exported retry.
	ta := map[*types.Func]map[string]bool{}
	for fn, rec := range local {
		set := map[string]bool{}
		for id := range rec.acquires {
			set[id] = true
		}
		ta[fn] = set
	}
	var calleeAcquires func(c callRec) ([]string, bool)
	calleeAcquires = func(c callRec) ([]string, bool) {
		if c.iface {
			// Zero candidates is the registry/callback pattern — the
			// implementation lives in an importer we cannot see — and
			// counts as unresolved just like a CHA overflow.
			impls := g.Devirtualize(c.callee)
			if len(impls) == 0 {
				return nil, false
			}
			var out []string
			for _, impl := range impls {
				ids, _ := calleeAcquires(callRec{callee: impl})
				out = append(out, ids...)
			}
			return out, true
		}
		if set, ok := ta[c.callee]; ok {
			ids := make([]string, 0, len(set))
			for id := range set {
				ids = append(ids, id)
			}
			return ids, true
		}
		return factAcquires(c.callee), true
	}
	for changed := true; changed; {
		changed = false
		for fn, rec := range local {
			for _, c := range rec.calls {
				ids, _ := calleeAcquires(c)
				for _, id := range ids {
					if !ta[fn][id] {
						ta[fn][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge assembly: the pass's own edges (real positions, reportable)
	// plus dependency edges (witness strings only).
	var mine []modEdge
	mine = append(mine, w.moduleEdges...)
	var unresolved []LockCall
	for _, rec := range w.recs {
		name := "func"
		if rec.fn != nil {
			name = rec.fn.Name()
		}
		for _, c := range rec.calls {
			ids, resolved := calleeAcquires(c)
			if !resolved && len(c.held) > 0 {
				key := analysis.ObjectKey(c.callee)
				if key != "" && c.callee.Pkg() != nil {
					unresolved = append(unresolved, LockCall{
						CalleePkg: c.callee.Pkg().Path(),
						CalleeObj: key,
						Held:      append([]string(nil), c.held...),
						Caller:    name,
						Pos:       pos(c.pos),
					})
				}
				continue
			}
			for _, a := range c.held {
				for _, b := range ids {
					if a == b {
						continue
					}
					mine = append(mine, modEdge{
						first: a, second: b, pos: c.pos,
						why: fmt.Sprintf("%s holds %s and calls %s, which acquires %s",
							name, a, c.callee.Name(), b),
					})
				}
			}
		}
	}

	// Retry dependencies' unresolved interface calls against this
	// package's type environment — the cross-package closing move.
	for _, pf := range w.pass.AllPackageFacts() {
		if pf.Path == w.pass.Pkg.Path() {
			continue
		}
		fact, ok := pf.Fact.(*LockOrderFact)
		if !ok {
			continue
		}
		for _, lf := range fact.Funcs {
			for _, c := range lf.Calls {
				m := w.lookupIfaceMethod(c.CalleePkg, c.CalleeObj)
				if m == nil {
					continue
				}
				impls := g.Devirtualize(m)
				for _, impl := range impls {
					var ids []string
					if set, ok := ta[impl]; ok {
						for id := range set {
							ids = append(ids, id)
						}
					} else {
						ids = factAcquires(impl)
					}
					implPos := token.NoPos
					if n, ok := g.ByFunc[impl]; ok {
						implPos = n.Decl.Pos()
					}
					for _, a := range c.Held {
						for _, b := range ids {
							if a == b {
								continue
							}
							mine = append(mine, modEdge{
								first: a, second: b, pos: implPos,
								why: fmt.Sprintf("%s (%s) holds %s and calls %s, implemented by %s, which acquires %s",
									c.Caller, pf.Path, a, c.CalleeObj, impl.FullName(), b),
							})
						}
					}
				}
			}
		}
	}

	// Dependency edges, for cycle context.
	var theirs []LockEdge
	for _, pf := range w.pass.AllPackageFacts() {
		if pf.Path == w.pass.Pkg.Path() {
			continue
		}
		if fact, ok := pf.Fact.(*LockOrderFact); ok {
			theirs = append(theirs, fact.Edges...)
		}
	}

	w.reportCycles(mine, theirs)

	// Build the fact: per-function transitive sets, unresolved calls,
	// and this pass's edges.
	fact := &LockOrderFact{}
	for _, rec := range w.recs {
		if rec.fn == nil {
			continue
		}
		key := analysis.ObjectKey(rec.fn)
		if key == "" {
			continue
		}
		set := ta[rec.fn]
		if len(set) == 0 {
			continue
		}
		ids := make([]string, 0, len(set))
		for id := range set {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		lf := LockFunc{Obj: key, Acquires: ids}
		for _, c := range unresolved {
			if c.Caller == rec.fn.Name() {
				lf.Calls = append(lf.Calls, c)
			}
		}
		fact.Funcs = append(fact.Funcs, lf)
	}
	sort.Slice(fact.Funcs, func(i, j int) bool { return fact.Funcs[i].Obj < fact.Funcs[j].Obj })
	seenEdge := map[[2]string]bool{}
	for _, e := range mine {
		k := [2]string{e.first, e.second}
		if seenEdge[k] {
			continue
		}
		seenEdge[k] = true
		fact.Edges = append(fact.Edges, LockEdge{First: e.first, Second: e.second, Pos: pos(e.pos), Why: e.why})
	}
	sort.Slice(fact.Edges, func(i, j int) bool {
		if fact.Edges[i].First != fact.Edges[j].First {
			return fact.Edges[i].First < fact.Edges[j].First
		}
		return fact.Edges[i].Second < fact.Edges[j].Second
	})
	if len(fact.Funcs) == 0 && len(fact.Edges) == 0 {
		return nil
	}
	return fact
}

// lookupIfaceMethod resolves an exported (pkg, "Iface.Method") ref back
// to the interface method object through the import closure.
func (w *walker) lookupIfaceMethod(pkgPath, obj string) *types.Func {
	dot := strings.IndexByte(obj, '.')
	if dot < 0 {
		return nil
	}
	typeName, methName := obj[:dot], obj[dot+1:]
	var pkg *types.Package
	if w.pass.Pkg.Path() == pkgPath {
		pkg = w.pass.Pkg
	}
	seen := map[string]bool{}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if seen[imp.Path()] || pkg != nil {
				continue
			}
			seen[imp.Path()] = true
			if imp.Path() == pkgPath {
				pkg = imp
				return
			}
			walk(imp)
		}
	}
	walk(w.pass.Pkg)
	if pkg == nil {
		return nil
	}
	tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return nil
	}
	if _, isIface := tn.Type().Underlying().(*types.Interface); !isIface {
		return nil
	}
	m, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, methName)
	fn, _ := m.(*types.Func)
	return fn
}

// reportCycles finds lock-order cycles in the combined edge graph and
// reports each cycle that uses at least one of this pass's own edges —
// the ownership rule that makes every cycle report exactly once across
// the module. Two-edge cycles made of two direct local edges are left
// to the classic "order" check.
func (w *walker) reportCycles(mine []modEdge, theirs []LockEdge) {
	adj := map[string]map[string]edgeInfo{}
	add := func(a, b string, info edgeInfo) {
		if adj[a] == nil {
			adj[a] = map[string]edgeInfo{}
		}
		if _, ok := adj[a][b]; !ok {
			adj[a][b] = info
		}
	}
	for _, e := range theirs {
		add(e.First, e.Second, edgeInfo{why: e.Why})
	}
	for _, e := range mine {
		add(e.first, e.second, edgeInfo{why: e.why, direct: e.direct, local: true, pos: e.pos})
	}
	reported := map[string]bool{}
	for _, e := range mine {
		// Find a path back from e.second to e.first; with edge e that is
		// a cycle this pass owns.
		path := shortestPath(adj, e.second, e.first)
		if path == nil {
			continue
		}
		cycle := append([]string{e.first}, path...)
		// Canonical key: rotate to the smallest node.
		canon := canonicalCycle(cycle[:len(cycle)-1])
		if reported[canon] {
			continue
		}
		reported[canon] = true
		info := adj[e.first][e.second]
		if len(cycle) == 3 { // A -> B -> A
			back := adj[e.second][e.first]
			if info.direct && back.direct && back.local {
				continue // the intra-package "order" check owns this pair
			}
		}
		var whys []string
		for i := 0; i+1 < len(cycle); i++ {
			whys = append(whys, adj[cycle[i]][cycle[i+1]].why)
		}
		w.pass.Reportf(e.pos, "deadlock",
			"lock-order cycle %s: %s; a concurrent interleaving of these paths deadlocks",
			strings.Join(cycle, " -> "), strings.Join(whys, "; "))
	}
}

// edgeInfo carries one order edge's provenance through cycle search.
type edgeInfo struct {
	why    string
	direct bool
	local  bool
	pos    token.Pos
}

// shortestPath returns the node sequence from src to dst (inclusive of
// both, src first) or nil when unreachable.
func shortestPath(adj map[string]map[string]edgeInfo, src, dst string) []string {
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			var path []string
			for at := dst; ; at = prev[at] {
				path = append([]string{at}, path...)
				if at == src {
					return path
				}
			}
		}
		var nexts []string
		for m := range adj[n] {
			if _, seen := prev[m]; !seen {
				nexts = append(nexts, m)
			}
		}
		sort.Strings(nexts)
		for _, m := range nexts {
			prev[m] = n
			queue = append(queue, m)
		}
	}
	return nil
}

// canonicalCycle renders a cycle's nodes rotated to start at the
// lexicographically smallest, for dedup.
func canonicalCycle(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	out := append(append([]string(nil), nodes[min:]...), nodes[:min]...)
	return strings.Join(out, "->")
}
