// Module-global deadlock assembly: the driver-side completion of the
// interprocedural lock-order check.
//
// Per-package passes report every cycle some pass can see whole — its
// own edges plus its dependencies' (interproc.go). What no pass can see
// is a cycle split between sibling packages: pkg A orders X before Y,
// pkg B orders Y before X, and neither imports the other. Both edge
// sets still reach the standalone driver's shared fact store, so after
// the last package the driver hands every exported LockOrderFact to
// ModuleDeadlocks, which assembles the one module-global order graph
// and reports exactly the cycles the per-package ownership rule let
// through.
package lockdisc

import (
	"fmt"
	"sort"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
)

// A ModuleFinding is one driver-level deadlock candidate: a lock-order
// cycle assembled from several packages' exported edges.
type ModuleFinding struct {
	// Pos is the witness position of one cycle edge as "file:line"
	// (the form LockEdge carries); it may be empty for edges derived
	// without a local position.
	Pos string
	// Message is the full diagnostic text with the witness path.
	Message string
}

// moduleEdgeRec is one exported edge plus every package that owns it.
type moduleEdgeRec struct {
	LockEdge
	owners []string
}

// ModuleDeadlocks assembles every package's exported lock-order edges
// into one graph and returns the cycles no per-package pass reported.
// sees(a, b) reports whether package a's analysis saw package b's facts
// (b == a or a imports b transitively); a cycle is skipped when some
// single package sees the owners of all its edges — that package's own
// pass already reported it.
func ModuleDeadlocks(facts []analysis.PackageFact, sees func(a, b string) bool) []ModuleFinding {
	edges := map[[2]string]*moduleEdgeRec{}
	var viewers []string
	for _, pf := range facts {
		fact, ok := pf.Fact.(*LockOrderFact)
		if !ok {
			continue
		}
		viewers = append(viewers, pf.Path)
		for _, e := range fact.Edges {
			k := [2]string{e.First, e.Second}
			rec, ok := edges[k]
			if !ok {
				rec = &moduleEdgeRec{LockEdge: e}
				edges[k] = rec
			}
			rec.owners = append(rec.owners, pf.Path)
		}
	}
	adj := map[string]map[string]edgeInfo{}
	for k, rec := range edges {
		if adj[k[0]] == nil {
			adj[k[0]] = map[string]edgeInfo{}
		}
		adj[k[0]][k[1]] = edgeInfo{why: rec.Why}
	}

	var keys [][2]string
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	var findings []ModuleFinding
	reported := map[string]bool{}
	for _, k := range keys {
		path := shortestPath(adj, k[1], k[0])
		if path == nil {
			continue
		}
		cycle := append([]string{k[0]}, path...)
		canon := canonicalCycle(cycle[:len(cycle)-1])
		if reported[canon] {
			continue
		}
		reported[canon] = true
		// Skip cycles some single pass saw whole: for each candidate
		// viewer, every cycle edge must have at least one owner the
		// viewer's analysis imported facts from.
		cycleEdges := make([][2]string, 0, len(cycle)-1)
		for i := 0; i+1 < len(cycle); i++ {
			cycleEdges = append(cycleEdges, [2]string{cycle[i], cycle[i+1]})
		}
		seen := false
		for _, v := range viewers {
			all := true
			for _, ck := range cycleEdges {
				ok := false
				for _, owner := range edges[ck].owners {
					if sees(v, owner) {
						ok = true
						break
					}
				}
				if !ok {
					all = false
					break
				}
			}
			if all {
				seen = true
				break
			}
		}
		if seen {
			continue
		}
		var whys []string
		for _, ck := range cycleEdges {
			whys = append(whys, edges[ck].Why)
		}
		findings = append(findings, ModuleFinding{
			Pos: edges[cycleEdges[0]].Pos,
			Message: fmt.Sprintf(
				"lock-order cycle %s: %s; a concurrent interleaving of these paths deadlocks",
				strings.Join(cycle, " -> "), strings.Join(whys, "; ")),
		})
	}
	return findings
}
