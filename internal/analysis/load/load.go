// Package load turns Go packages into type-checked syntax trees using
// only the standard library: file selection via go/build, parsing via
// go/parser, and dependency import via compiler export data produced by
// `go list -export` (the same build-cache artifacts `go vet` feeds its
// vettool). It is the loader beneath cmd/berthavet and the analyzer
// golden tests, standing in for golang.org/x/tools/go/packages, which
// this repository deliberately does not depend on.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// ModuleRoot locates the enclosing module root (the directory holding
// go.mod) starting from dir.
func ModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("load: no go.mod above %s", abs)
		}
		d = parent
	}
}

// goList runs `go list` in dir with the given format and patterns and
// returns non-empty output lines.
func goList(dir, format string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-f", format}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			msg = strings.TrimSpace(string(ee.Stderr))
		}
		return nil, fmt.Errorf("load: go list %s: %s", strings.Join(patterns, " "), msg)
	}
	var lines []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			lines = append(lines, l)
		}
	}
	return lines, nil
}

// ExportMap builds an import-path → export-data-file map for the
// transitive dependencies of the patterns (compiling them if needed).
// The map is what the export importer resolves stdlib and intra-module
// imports from.
func ExportMap(modRoot string, patterns ...string) (map[string]string, error) {
	lines, err := goList(modRoot, `{{if .Export}}{{.ImportPath}}={{.Export}}{{end}}`,
		append([]string{"-deps", "-export"}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(lines))
	for _, l := range lines {
		if i := strings.IndexByte(l, '='); i > 0 {
			exports[l[:i]] = l[i+1:]
		}
	}
	if len(exports) == 0 {
		return nil, fmt.Errorf("load: go list -export produced no export data for %v", patterns)
	}
	return exports, nil
}

// ResolvePatterns expands go package patterns (./..., import paths) into
// (dir, importPath) pairs. Arguments naming existing directories that go
// list cannot resolve (e.g. testdata trees) are returned with a
// synthesized import path.
func ResolvePatterns(modRoot string, patterns []string) ([][2]string, error) {
	var pkgs [][2]string
	var listable []string
	for _, p := range patterns {
		if st, err := os.Stat(p); err == nil && st.IsDir() && underTestdata(p) {
			abs, _ := filepath.Abs(p)
			pkgs = append(pkgs, [2]string{abs, "testdata/" + filepath.Base(abs)})
			continue
		}
		listable = append(listable, p)
	}
	if len(listable) > 0 {
		lines, err := goList(modRoot, `{{if .GoFiles}}{{.Dir}}{{"\x01"}}{{.ImportPath}}{{end}}`, listable)
		if err != nil {
			return nil, err
		}
		for _, l := range lines {
			parts := strings.SplitN(l, "\x01", 2)
			if len(parts) == 2 {
				pkgs = append(pkgs, [2]string{parts[0], parts[1]})
			}
		}
	}
	return pkgs, nil
}

func underTestdata(path string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		return false
	}
	for _, seg := range strings.Split(filepath.ToSlash(abs), "/") {
		if seg == "testdata" {
			return true
		}
	}
	return false
}

// exportImporter resolves imports from compiler export data, with the
// slow-but-pure source importer as fallback for standard-library
// packages missing from the export map.
type exportImporter struct {
	exports  map[string]string
	extra    map[string]*types.Package
	gc       types.Importer
	source   types.Importer
	fset     *token.FileSet
	imported map[string]*types.Package
}

func newExportImporter(fset *token.FileSet, exports map[string]string, extra map[string]*types.Package) *exportImporter {
	ei := &exportImporter{exports: exports, extra: extra, fset: fset, imported: map[string]*types.Package{}}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	ei.gc = importer.ForCompiler(fset, "gc", lookup)
	ei.source = importer.ForCompiler(fset, "source", nil)
	return ei
}

func (ei *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ei.extra[path]; ok {
		return pkg, nil
	}
	if pkg, ok := ei.imported[path]; ok {
		return pkg, nil
	}
	pkg, err := ei.gc.Import(path)
	if err != nil && !strings.Contains(path, ".") {
		// Stdlib package outside the repo's dependency closure (possible
		// for testdata-only imports): type-check it from GOROOT source.
		pkg, err = ei.source.Import(path)
	}
	if err != nil {
		return nil, err
	}
	ei.imported[path] = pkg
	return pkg, nil
}

// Dir parses and type-checks the package in dir (non-test files only,
// honoring build constraints) against the given export map.
func Dir(dir, importPath string, exports map[string]string) (*Package, error) {
	return NewLoader(exports).Dir(dir, importPath)
}

// A Loader type-checks multiple packages against one shared importer
// and FileSet, so a named type resolved while loading one package is
// identical (pointer-equal) when a later package mentions it. The
// golden-test harness needs this to load a dependency corpus and then a
// main corpus that imports it.
type Loader struct {
	fset *token.FileSet
	imp  *exportImporter
}

// NewLoader returns a Loader resolving imports from the export map.
func NewLoader(exports map[string]string) *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: newExportImporter(fset, exports, map[string]*types.Package{})}
}

// Add registers a previously loaded package under importPath, letting
// subsequent loads import it by that path even though no export data
// exists for it (testdata corpora).
func (l *Loader) Add(importPath string, pkg *types.Package) {
	l.imp.extra[importPath] = pkg
}

// Dir parses and type-checks the package in dir through this loader.
func (l *Loader) Dir(dir, importPath string) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", dir, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	return check(l.fset, files, importPath, l.imp)
}

// Files parses and type-checks an explicit file list as one package —
// the entry point for `go vet -vettool` mode, where the go command
// supplies the exact file set and export map.
func Files(importPath string, goFiles []string, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		files = append(files, f)
	}
	return check(fset, files, importPath, newExportImporter(fset, exports, nil))
}

func check(fset *token.FileSet, files []*ast.File, importPath string, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var firstErr error
	conf := &types.Config{
		Importer: imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := conf.Check(importPath, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("load: typecheck %s: %w", importPath, firstErr)
	}
	dir := ""
	if len(files) > 0 {
		dir = filepath.Dir(fset.Position(files[0].Pos()).Filename)
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// Patterns loads every package matched by the patterns: the one-call
// convenience used by the standalone driver and the repo-clean test.
func Patterns(modRoot string, patterns ...string) ([]*Package, error) {
	exportPatterns := append([]string{"./..."}, nil...)
	exports, err := ExportMap(modRoot, exportPatterns...)
	if err != nil {
		return nil, err
	}
	resolved, err := ResolvePatterns(modRoot, patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(resolved))
	for _, dp := range resolved {
		pkg, err := Dir(dp[0], dp[1], exports)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
