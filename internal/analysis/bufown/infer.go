// Borrow-summary inference: learning //bertha:borrows instead of
// requiring it.
//
// A helper that only inspects a *wire.Buf parameter — logs its length,
// hashes its payload, peeks at a header — borrows it: the caller still
// owns the Buf afterward and must release it. Before inference, either
// the helper carried a //bertha:borrows annotation or the analysis
// assumed the call consumed the Buf, silently forgiving a caller that
// never released it.
//
// Inference runs the same CFG ownership dataflow the reporting pass
// uses, silently, over every function in bottom-up SCC order of the
// package call graph (internal/analysis/callgraph): a callee's summary
// exists before any caller is summarized, so borrows chain through
// layers of helpers. A parameter is inferred borrowed when no exit path
// releases, stores, transfers, or returns it — ownership demonstrably
// never leaves the caller. Recursive (same-SCC) and statically
// unresolvable callees are assumed consuming, which errs toward the
// quieter, pre-inference behavior.
//
// Inferred borrows merge into the exported BorrowsFact, so
// cross-package callers hold the same obligations as local ones.
package bufown

import (
	"go/ast"
	"go/types"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/callgraph"
	"github.com/bertha-net/bertha/internal/analysis/cfg"
)

// inferBorrows computes the package's borrowed-parameter summaries,
// keyed by function, with parameter indices counted across all
// parameters (receiver excluded) to match BorrowsFact.
func inferBorrows(pass *analysis.Pass, ann *analysis.Annotations, decls map[*types.Func]*ast.FuncDecl, queues map[*types.Var]bool, sinks *sinkSet) map[*types.Func]map[int]bool {
	g := callgraph.Build(pass)
	inferred := map[*types.Func]map[int]bool{}
	for _, scc := range g.SCCs() {
		for _, node := range scc {
			fd := node.Decl
			if fd.Type.Params == nil {
				continue
			}
			hasBuf := false
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok && analysis.IsBufPtr(v.Type()) {
						hasBuf = true
					}
				}
			}
			if !hasBuf {
				continue
			}
			fa := &funcAnalysis{
				pass:     pass,
				ann:      ann,
				decls:    decls,
				queues:   queues,
				sinks:    sinks,
				inferred: inferred,
			}
			consumed := fa.summarizeFunc(fd)
			if consumed == nil {
				continue // fixpoint bailed or no exit reached: no summary
			}
			var borrowed map[int]bool
			idx := 0
			for _, field := range fd.Type.Params.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok &&
						analysis.IsBufPtr(v.Type()) && !consumed[idx] {
						if borrowed == nil {
							borrowed = map[int]bool{}
						}
						borrowed[idx] = true
					}
					idx++
				}
			}
			if borrowed != nil {
				inferred[node.Fn] = borrowed
			}
		}
	}
	return inferred
}

// summarizeFunc runs the ownership dataflow with reporting off and
// returns, per parameter index, whether any exit path consumed that
// parameter's Buf. It returns nil when the fixpoint did not converge or
// no exit was reachable — callers must then assume every parameter is
// consumed.
func (fa *funcAnalysis) summarizeFunc(fd *ast.FuncDecl) map[int]bool {
	e0 := newEnv()
	fa.bindParams(fd.Type, fd.Doc, e0)
	paramCells := map[*cell]int{}
	idx := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := fa.info().Defs[name].(*types.Var); ok {
				if c, ok := e0.vars[v]; ok {
					paramCells[c] = idx
				}
			}
			idx++
		}
	}
	if len(paramCells) == 0 {
		return map[int]bool{}
	}
	consumed := map[int]bool{}
	exited := false
	fa.summarize = func(e *env) {
		exited = true
		for c, i := range paramCells {
			switch e.state(c) {
			case stReleased, stEscaped, stMaybe:
				consumed[i] = true
			}
			if e.def[c] {
				consumed[i] = true
			}
		}
	}
	g := cfg.New(fd.Body)
	flow := &cfg.Flow[*env]{
		Entry:    func() *env { return e0.clone() },
		Clone:    func(e *env) *env { return e.clone() },
		Merge:    func(dst, src *env) bool { return dst.mergeFrom(src) },
		Transfer: func(n ast.Node, e *env) { fa.transfer(n, e) },
		Refine:   func(cond ast.Expr, branch bool, e *env) { fa.refine(cond, branch, e) },
	}
	in, ok := flow.Forward(g)
	if !ok {
		return nil
	}
	// Replay each reachable block so return statements hit the
	// summarize hook with their path's converged state.
	for _, b := range g.Blocks {
		s, live := in[b]
		if !live {
			continue
		}
		s = s.clone()
		for _, n := range b.Nodes {
			fa.transfer(n, s)
		}
	}
	if s, ok := in[g.Exit]; ok {
		fa.exitCheck(s, fd.Body.Rbrace)
	}
	if !exited {
		return nil
	}
	return consumed
}
