package bufown_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, "bufown_a", bufown.Analyzer)
}

// TestBufownRingQueue pins the SPSC-ring transfer idiom: //bertha:queue
// on a slice of Buf-carrying slot structs sanctions stores into the
// element's Buf field, while unannotated slot slices and pointer-alias
// stores still flag.
func TestBufownRingQueue(t *testing.T) {
	analysistest.Run(t, "bufown_ring", bufown.Analyzer)
}

func TestBufownCrossPackage(t *testing.T) {
	analysistest.Run(t, "bufown_cross", bufown.Analyzer, "bufown_dep")
}

// TestBufownCFGPrecision pins the path-sensitivity of the CFG port:
// loop-carried release patterns that the pre-CFG walker flagged as
// leaks must be clean, while the seeded positive controls still fire.
func TestBufownCFGPrecision(t *testing.T) {
	analysistest.Run(t, "bufown_cfg", bufown.Analyzer)
}
