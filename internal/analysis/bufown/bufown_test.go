package bufown_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/bufown"
)

func TestBufown(t *testing.T) {
	analysistest.Run(t, "bufown_a", bufown.Analyzer)
}

func TestBufownCrossPackage(t *testing.T) {
	analysistest.Run(t, "bufown_cross", bufown.Analyzer, "bufown_dep")
}
