// Package bufown checks the linear ownership discipline of *wire.Buf
// values: every Buf acquired by a function (from a constructor, a
// RecvBuf, or an owned parameter) must leave it exactly once on every
// path — via Release/CopyOut, an annotated Detach or store
// (//bertha:transfers), a call that takes ownership, or a return.
//
// Diagnostic categories:
//
//	use-after-release  a Buf is used after Release/CopyOut/Detach
//	double-release     a Buf is released twice on one path
//	leak               a path returns without consuming an owned Buf
//	transfer           ownership leaves through Detach or a store into a
//	                   longer-lived structure without //bertha:transfers
//
// Parameters of type *wire.Buf are owned by the callee by default;
// //bertha:borrows <name> in the function's doc comment marks a
// parameter the caller retains. The internal/wire package itself is
// exempt: its methods implement the discipline rather than obey it.
//
// The batch path follows the same discipline element-wise: a
// []*wire.Buf argument to SendBufs transfers every element to the
// callee, and a RecvBufs-style method storing into an element of a
// []*wire.Buf parameter hands that Buf to the caller — the store is the
// sanctioned transfer and needs no annotation.
//
// Send queues (the coalescer pattern) are declared at the field: a
// []*wire.Buf struct field annotated //bertha:queue <why> is a queue
// whose drain path owns the release, so stores into its elements and
// appends onto it are sanctioned ownership transfers — per-statement
// //bertha:transfers annotations are not required at each enqueue site.
// Stores into unannotated fields remain transfer diagnostics.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bertha-net/bertha/internal/analysis"
)

// BorrowsFact marks a function's //bertha:borrows parameters for
// cross-package callers: an argument passed at one of these positions
// stays owned by the caller instead of transferring to the callee.
type BorrowsFact struct {
	// Params holds the borrowed parameter indices (receiver excluded).
	Params []int
}

// AFact marks BorrowsFact as a fact type.
func (*BorrowsFact) AFact() {}

// Analyzer is the bufown pass.
var Analyzer = &analysis.Analyzer{
	Name:      "bufown",
	Doc:       "check linear ownership of wire.Buf values (release/transfer exactly once per path)",
	Run:       run,
	FactTypes: []analysis.Fact{(*BorrowsFact)(nil)},
}

// st is the abstract ownership state of one Buf cell.
type st uint8

const (
	stUntracked st = iota // borrowed, nil, or of unknown provenance
	stOwned               // this function must consume it
	stReleased            // terminally consumed by Release/CopyOut/Detach
	stEscaped             // ownership transferred (call arg, return, store, capture)
	stMaybe               // owned on some paths, consumed on others
)

// A cell is one tracked Buf value; aliased variables share a cell.
type cell struct {
	name  string
	pos   token.Pos
	depth int // loop nesting level at creation
}

// env maps variables to cells and cells to states along one path.
type env struct {
	vars map[*types.Var]*cell
	st   map[*cell]st
	def  map[*cell]bool // has a deferred Release/CopyOut
	// pair links an error variable to the Buf cell produced by the same
	// call (b, err := RecvBuf(...)): on the err != nil branch the Buf is
	// nil by convention and ownership evaporates.
	pair map[*types.Var]*cell
}

func newEnv() *env {
	return &env{
		vars: map[*types.Var]*cell{},
		st:   map[*cell]st{},
		def:  map[*cell]bool{},
		pair: map[*types.Var]*cell{},
	}
}

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.st {
		c.st[k] = v
	}
	for k, v := range e.def {
		c.def[k] = v
	}
	for k, v := range e.pair {
		c.pair[k] = v
	}
	return c
}

func (e *env) state(c *cell) st {
	if s, ok := e.st[c]; ok {
		return s
	}
	return stUntracked
}

// merge folds b into a at a control-flow join.
func (e *env) merge(b *env) {
	for v, c := range b.vars {
		if _, ok := e.vars[v]; !ok {
			e.vars[v] = c
		}
	}
	seen := map[*cell]bool{}
	for _, c := range e.vars {
		if seen[c] {
			continue
		}
		seen[c] = true
		e.st[c] = mergeState(e.state(c), b.state(c))
	}
	for c := range b.def {
		e.def[c] = true
	}
	for v, c := range b.pair {
		if prev, ok := e.pair[v]; ok && prev != c {
			delete(e.pair, v)
		} else {
			e.pair[v] = c
		}
	}
}

func mergeState(a, b st) st {
	if a == b {
		return a
	}
	if a == stUntracked || b == stUntracked {
		return stUntracked
	}
	// released+escaped: consumed either way; anything involving owned or
	// maybe stays conditional.
	if (a == stReleased || a == stEscaped) && (b == stReleased || b == stEscaped) {
		return stEscaped
	}
	return stMaybe
}

func run(pass *analysis.Pass) error {
	if analysis.IsWirePackage(pass.Pkg) {
		return nil
	}
	ann := analysis.CollectAnnotations(pass.Fset, pass.Files)
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	// Index the //bertha:queue-annotated []*wire.Buf struct fields:
	// enqueue stores into them are sanctioned transfers.
	queues := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok &&
						analysis.IsBufSlice(v.Type()) && ann.QueueAt(name.Pos()) {
						queues[v] = true
					}
				}
			}
			return true
		})
	}
	// Publish each function's borrowed Buf parameters so callers in
	// other packages keep ownership instead of assuming a transfer.
	for fn, fd := range decls {
		if fd.Type.Params == nil {
			continue
		}
		var borrowed []int
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok &&
					analysis.IsBufPtr(v.Type()) &&
					analysis.FuncDirective(fd.Doc, "borrows", name.Name) {
					borrowed = append(borrowed, idx)
				}
				idx++
			}
		}
		if len(borrowed) > 0 {
			pass.ExportObjectFact(fn, &BorrowsFact{Params: borrowed})
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fa := &funcAnalysis{pass: pass, ann: ann, decls: decls, queues: queues}
			fa.runFunc(fd.Type, fd.Doc, fd.Body)
		}
	}
	return nil
}

type funcAnalysis struct {
	pass  *analysis.Pass
	ann   *analysis.Annotations
	decls map[*types.Func]*ast.FuncDecl
	depth int // current loop nesting
	// intoParams holds the function's []*wire.Buf parameters. A store
	// into an element of one is the RecvBufs contract — ownership moves
	// to the caller through the slice — so it consumes the Buf without
	// needing a //bertha:transfers annotation.
	intoParams map[*types.Var]bool
	// queues holds the package's //bertha:queue struct fields: stores
	// into and appends onto a queue are likewise sanctioned transfers
	// (the drain path owns the release).
	queues map[*types.Var]bool
}

func (fa *funcAnalysis) info() *types.Info { return fa.pass.TypesInfo }

// runFunc analyzes one function or function literal body.
func (fa *funcAnalysis) runFunc(ft *ast.FuncType, doc *ast.CommentGroup, body *ast.BlockStmt) {
	e := newEnv()
	fa.bindParams(ft, doc, e)
	if !fa.stmtList(body.List, e) {
		fa.exitCheck(e, body.Rbrace)
	}
}

func (fa *funcAnalysis) bindParams(ft *ast.FuncType, doc *ast.CommentGroup, e *env) {
	if ft.Params == nil {
		return
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			v, ok := fa.info().Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if analysis.IsBufSlice(v.Type()) {
				if fa.intoParams == nil {
					fa.intoParams = map[*types.Var]bool{}
				}
				fa.intoParams[v] = true
				continue
			}
			if !analysis.IsBufPtr(v.Type()) {
				continue
			}
			if analysis.FuncDirective(doc, "borrows", name.Name) {
				continue
			}
			c := &cell{name: name.Name, pos: name.Pos(), depth: fa.depth}
			e.vars[v] = c
			e.st[c] = stOwned
		}
	}
}

// isIntoStore reports whether lhs indexes one of the function's
// []*wire.Buf parameters — the caller-visible slot a RecvBufs-style
// method hands received buffers back through.
func (fa *funcAnalysis) isIntoStore(lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return false
	}
	v := fa.identVar(id)
	return v != nil && fa.intoParams[v]
}

// queueField returns the //bertha:queue-annotated field x resolves to,
// or nil.
func (fa *funcAnalysis) queueField(x ast.Expr) *types.Var {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if v, ok := fa.info().Uses[sel.Sel].(*types.Var); ok && fa.queues[v] {
		return v
	}
	return nil
}

// isQueueStore reports whether lhs indexes a //bertha:queue field — the
// coalescer enqueue, where the queue's drain path owns the release.
func (fa *funcAnalysis) isQueueStore(lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	return ok && fa.queueField(ix.X) != nil
}

// exitCheck reports owned cells still live when a path leaves the
// function.
func (fa *funcAnalysis) exitCheck(e *env, at token.Pos) {
	seen := map[*cell]bool{}
	for _, c := range e.vars {
		if seen[c] || e.def[c] {
			continue
		}
		seen[c] = true
		switch e.state(c) {
		case stOwned:
			fa.pass.Reportf(at, "leak",
				"pooled Buf %q (acquired at line %d) is not released, transferred, or returned on this path",
				c.name, fa.pass.Fset.Position(c.pos).Line)
		case stMaybe:
			fa.pass.Reportf(at, "leak",
				"pooled Buf %q (acquired at line %d) may leak: consumed on some paths into this exit but not all",
				c.name, fa.pass.Fset.Position(c.pos).Line)
		}
	}
}

// loopExitCheck reports Bufs created inside the current loop body that
// are still owned when the iteration ends.
func (fa *funcAnalysis) loopExitCheck(e *env, at token.Pos) {
	seen := map[*cell]bool{}
	for _, c := range e.vars {
		if seen[c] || e.def[c] || c.depth < fa.depth {
			continue
		}
		seen[c] = true
		if e.state(c) == stOwned {
			fa.pass.Reportf(at, "leak",
				"pooled Buf %q (acquired at line %d) leaks at the end of each loop iteration",
				c.name, fa.pass.Fset.Position(c.pos).Line)
		}
	}
}

// scrubDeeper drops bindings for cells created inside a loop body that
// just went out of scope.
func (fa *funcAnalysis) scrubDeeper(e *env) {
	for v, c := range e.vars {
		if c.depth > fa.depth {
			delete(e.vars, v)
		}
	}
}

func (fa *funcAnalysis) stmtList(list []ast.Stmt, e *env) bool {
	for _, s := range list {
		if fa.stmt(s, e) {
			return true
		}
	}
	return false
}

// stmt analyzes one statement; the result reports whether the path
// terminates (return, panic, break/continue, infinite loop).
func (fa *funcAnalysis) stmt(s ast.Stmt, e *env) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		fa.expr(s.X, e)
		return isTerminalCall(s.X)
	case *ast.AssignStmt:
		fa.assign(s, e)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					fa.bindIdent(name, rhs, e)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c := fa.trackedIdent(r, e); c != nil {
				fa.useCheck(r.Pos(), c, e)
				e.st[c] = stEscaped
				continue
			}
			fa.expr(r, e)
		}
		fa.exitCheck(e, s.Pos())
		return true
	case *ast.BlockStmt:
		return fa.stmtList(s.List, e)
	case *ast.IfStmt:
		if s.Init != nil {
			fa.stmt(s.Init, e)
		}
		fa.expr(s.Cond, e)
		eThen := e.clone()
		eElse := e.clone()
		// if err != nil: the paired Buf is nil on the error branch, so
		// ownership applies only on the success branch (and vice versa
		// for err == nil).
		if errVar, isNeq, ok := errNilCond(fa.info(), s.Cond); ok {
			if c, paired := e.pair[errVar]; paired {
				errEnv, okEnv := eThen, eElse
				if !isNeq {
					errEnv, okEnv = eElse, eThen
				}
				if errEnv.state(c) == stOwned {
					errEnv.st[c] = stUntracked
				}
				delete(errEnv.pair, errVar)
				delete(okEnv.pair, errVar)
			}
		}
		// if b != nil: on the nil branch the Buf carries no ownership
		// (Release is nil-safe and there is nothing to leak), so a
		// helper returning (msg, nil, nil) for "parked" — the batch
		// decode shape — doesn't flag the fallthrough path.
		if bufVar, isNeq, ok := bufNilCond(fa.info(), s.Cond); ok {
			if c := e.vars[bufVar]; c != nil {
				nilEnv := eElse
				if !isNeq {
					nilEnv = eThen
				}
				if s := nilEnv.state(c); s == stOwned || s == stMaybe {
					nilEnv.st[c] = stUntracked
				}
			}
		}
		tTerm := fa.stmtList(s.Body.List, eThen)
		eTerm := false
		if s.Else != nil {
			eTerm = fa.stmt(s.Else, eElse)
		}
		switch {
		case tTerm && eTerm:
			return true
		case tTerm:
			*e = *eElse
		case eTerm:
			*e = *eThen
		default:
			eThen.merge(eElse)
			*e = *eThen
		}
	case *ast.ForStmt:
		if s.Init != nil {
			fa.stmt(s.Init, e)
		}
		if s.Cond != nil {
			fa.expr(s.Cond, e)
		}
		fa.depth++
		eBody := e.clone()
		term := fa.stmtList(s.Body.List, eBody)
		if !term {
			fa.loopExitCheck(eBody, s.Body.Rbrace)
		}
		if s.Post != nil {
			fa.stmt(s.Post, eBody)
		}
		fa.depth--
		infinite := s.Cond == nil && !hasLoopExit(s.Body)
		if !term {
			fa.scrubDeeper(eBody)
			e.merge(eBody)
		}
		return infinite
	case *ast.RangeStmt:
		fa.expr(s.X, e)
		// Loop variables of Buf type come from a container the loop does
		// not own: bind untracked so Release in the body is accepted.
		for _, lv := range []ast.Expr{s.Key, s.Value} {
			if id, ok := lv.(*ast.Ident); ok && lv != nil {
				if v, ok := fa.info().Defs[id].(*types.Var); ok && analysis.IsBufPtr(v.Type()) {
					delete(e.vars, v)
				}
			}
		}
		fa.depth++
		eBody := e.clone()
		term := fa.stmtList(s.Body.List, eBody)
		if !term {
			fa.loopExitCheck(eBody, s.Body.Rbrace)
		}
		fa.depth--
		if !term {
			fa.scrubDeeper(eBody)
			e.merge(eBody)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			fa.stmt(s.Init, e)
		}
		if s.Tag != nil {
			fa.expr(s.Tag, e)
		}
		return fa.caseClauses(s.Body, e, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			fa.stmt(s.Init, e)
		}
		fa.stmt(s.Assign, e)
		return fa.caseClauses(s.Body, e, false)
	case *ast.SelectStmt:
		return fa.caseClauses(s.Body, e, true)
	case *ast.DeferStmt:
		fa.deferStmt(s, e)
	case *ast.GoStmt:
		fa.expr(s.Call, e)
	case *ast.SendStmt:
		fa.expr(s.Chan, e)
		if c := fa.trackedIdent(s.Value, e); c != nil {
			fa.consumeStore(s.Value.Pos(), c, e, "channel send")
		} else {
			fa.expr(s.Value, e)
		}
	case *ast.BranchStmt:
		if s.Tok == token.BREAK || s.Tok == token.CONTINUE {
			if fa.depth > 0 {
				fa.loopExitCheck(e, s.Pos())
			}
			return true
		}
		return s.Tok == token.GOTO
	case *ast.LabeledStmt:
		return fa.stmt(s.Stmt, e)
	case *ast.IncDecStmt:
		fa.expr(s.X, e)
	}
	return false
}

// caseClauses handles switch/type-switch/select bodies: each clause is
// analyzed from the pre-state and the surviving states are merged.
func (fa *funcAnalysis) caseClauses(body *ast.BlockStmt, e *env, isSelect bool) bool {
	var outs []*env
	hasDefault := false
	for _, cs := range body.List {
		ec := e.clone()
		var stmts []ast.Stmt
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, x := range cs.List {
				fa.expr(x, ec)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				fa.stmt(cs.Comm, ec)
			}
			stmts = cs.Body
		}
		if !fa.stmtList(stmts, ec) {
			outs = append(outs, ec)
		}
	}
	// A select blocks until some case runs; a switch without a default
	// can fall through unchanged.
	exhaustive := isSelect || hasDefault
	if len(outs) == 0 {
		return exhaustive && len(body.List) > 0
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged.merge(o)
	}
	if !exhaustive {
		merged.merge(e)
	}
	*e = *merged
	return false
}

func (fa *funcAnalysis) deferStmt(s *ast.DeferStmt, e *env) {
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
		if c := fa.trackedIdent(sel.X, e); c != nil {
			switch sel.Sel.Name {
			case "Release", "CopyOut":
				e.def[c] = true
				return
			}
		}
	}
	fa.expr(s.Call, e)
}

// assign handles := and = statements: alias propagation, new owned
// cells from Buf-returning calls, and the transfer rule for stores.
func (fa *funcAnalysis) assign(s *ast.AssignStmt, e *env) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// b, err := f(ctx) and friends: classify once, bind each LHS.
		fa.expr(s.Rhs[0], e)
		_, fromCall := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		var bufCell *cell
		var errVar *types.Var
		for _, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				fa.storeNonIdentLHS(lhs, e)
				continue
			}
			if c := fa.bindVar(id, fromCall, e); c != nil {
				bufCell = c
			}
			if v := fa.identVar(id); v != nil && isErrorType(v.Type()) {
				delete(e.pair, v)
				errVar = v
			}
		}
		if bufCell != nil && errVar != nil {
			e.pair[errVar] = bufCell
		}
		return
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		if id, ok := lhs.(*ast.Ident); ok {
			fa.bindIdent(id, rhs, e)
			continue
		}
		// Store target: m[k] = b, x.f = b, *p = b.
		if c := fa.trackedIdent(rhs, e); c != nil {
			if fa.isIntoStore(lhs) || fa.isQueueStore(lhs) {
				// into[i] = b inside a RecvBufs-shaped method (the slice
				// belongs to the caller) or q[i] = b onto a declared
				// //bertha:queue field (the drain path releases): the
				// store IS the transfer.
				fa.useCheck(rhs.Pos(), c, e)
				e.st[c] = stEscaped
			} else {
				fa.consumeStore(rhs.Pos(), c, e, "store")
			}
		} else if rhs != nil {
			fa.expr(rhs, e)
		}
		fa.storeNonIdentLHS(lhs, e)
	}
}

// storeNonIdentLHS evaluates the subexpressions of a non-identifier
// assignment target for use checks.
func (fa *funcAnalysis) storeNonIdentLHS(lhs ast.Expr, e *env) {
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		fa.expr(lhs.X, e)
		fa.expr(lhs.Index, e)
	case *ast.SelectorExpr:
		fa.expr(lhs.X, e)
	case *ast.StarExpr:
		fa.expr(lhs.X, e)
	}
}

// bindIdent binds one identifier from one RHS expression.
func (fa *funcAnalysis) bindIdent(id *ast.Ident, rhs ast.Expr, e *env) {
	v := fa.identVar(id)
	if v == nil || !analysis.IsBufPtr(v.Type()) {
		if v != nil {
			delete(e.pair, v) // a reassigned error no longer guards its Buf
		}
		if rhs != nil {
			fa.expr(rhs, e)
		}
		return
	}
	if rhs == nil {
		delete(e.vars, v) // var b *wire.Buf — nil until assigned
		return
	}
	if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if c := fa.trackedIdentVar(rid, e); c != nil {
			fa.useCheck(rid.Pos(), c, e)
			e.vars[v] = c // alias: both names share the cell
			return
		}
		delete(e.vars, v)
		return
	}
	fa.expr(rhs, e)
	_, fromCall := ast.Unparen(rhs).(*ast.CallExpr)
	fa.bindVarAt(v, id, fromCall, e)
}

func (fa *funcAnalysis) bindVar(id *ast.Ident, fromCall bool, e *env) *cell {
	v := fa.identVar(id)
	if v == nil || !analysis.IsBufPtr(v.Type()) {
		return nil
	}
	return fa.bindVarAt(v, id, fromCall, e)
}

func (fa *funcAnalysis) bindVarAt(v *types.Var, id *ast.Ident, fromCall bool, e *env) *cell {
	if !fromCall {
		// Map reads, channel receives, field loads, type assertions:
		// provenance unknown, do not track.
		delete(e.vars, v)
		return nil
	}
	c := &cell{name: id.Name, pos: id.Pos(), depth: fa.depth}
	e.vars[v] = c
	e.st[c] = stOwned
	return c
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// identVar resolves an identifier to its variable (definition or use).
func (fa *funcAnalysis) identVar(id *ast.Ident) *types.Var {
	if v, ok := fa.info().Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := fa.info().Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// trackedIdent returns the cell behind x when x is a tracked Buf
// identifier.
func (fa *funcAnalysis) trackedIdent(x ast.Expr, e *env) *cell {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	return fa.trackedIdentVar(id, e)
}

func (fa *funcAnalysis) trackedIdentVar(id *ast.Ident, e *env) *cell {
	v := fa.identVar(id)
	if v == nil {
		return nil
	}
	return e.vars[v]
}

// useCheck reports use of a definitely-released Buf.
func (fa *funcAnalysis) useCheck(pos token.Pos, c *cell, e *env) {
	if e.state(c) == stReleased {
		fa.pass.Reportf(pos, "use-after-release",
			"use of Buf %q after it was released or detached", c.name)
		e.st[c] = stUntracked // silence cascading reports
	}
}

// consumeStore applies the transfer rule: storing an owned Buf into a
// longer-lived structure needs a //bertha:transfers annotation.
func (fa *funcAnalysis) consumeStore(pos token.Pos, c *cell, e *env, kind string) {
	fa.useCheck(pos, c, e)
	if s := e.state(c); s == stOwned || s == stMaybe {
		if !fa.ann.TransfersAt(pos) {
			fa.pass.Reportf(pos, "transfer",
				"ownership of Buf %q leaves this function via %s; annotate the statement with //bertha:transfers or release a copy", c.name, kind)
		}
	}
	e.st[c] = stEscaped
}

// expr walks an expression, applying use checks and consumption.
func (fa *funcAnalysis) expr(x ast.Expr, e *env) {
	switch x := x.(type) {
	case nil:
	case *ast.Ident:
		if c := fa.trackedIdentVar(x, e); c != nil {
			fa.useCheck(x.Pos(), c, e)
		}
	case *ast.CallExpr:
		fa.call(x, e)
	case *ast.ParenExpr:
		fa.expr(x.X, e)
	case *ast.SelectorExpr:
		fa.expr(x.X, e)
	case *ast.StarExpr:
		fa.expr(x.X, e)
	case *ast.UnaryExpr:
		fa.expr(x.X, e)
	case *ast.BinaryExpr:
		fa.expr(x.X, e)
		fa.expr(x.Y, e)
	case *ast.IndexExpr:
		fa.expr(x.X, e)
		fa.expr(x.Index, e)
	case *ast.SliceExpr:
		fa.expr(x.X, e)
		fa.expr(x.Low, e)
		fa.expr(x.High, e)
		fa.expr(x.Max, e)
	case *ast.TypeAssertExpr:
		fa.expr(x.X, e)
	case *ast.KeyValueExpr:
		fa.expr(x.Value, e)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if c := fa.trackedIdent(val, e); c != nil {
				fa.consumeStore(val.Pos(), c, e, "composite literal")
				continue
			}
			fa.expr(val, e)
		}
	case *ast.FuncLit:
		fa.funcLit(x, e)
	}
}

// call handles method calls on Bufs, ownership-transferring arguments,
// and builtins.
func (fa *funcAnalysis) call(x *ast.CallExpr, e *env) {
	// Terminal methods on a tracked receiver.
	if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
		if c := fa.trackedIdent(sel.X, e); c != nil {
			switch sel.Sel.Name {
			case "Release":
				if e.state(c) == stReleased {
					fa.pass.Reportf(x.Pos(), "double-release",
						"Buf %q is released twice on this path", c.name)
				} else if e.def[c] {
					fa.pass.Reportf(x.Pos(), "double-release",
						"Buf %q has a deferred release; this explicit Release runs first and double-releases", c.name)
				}
				e.st[c] = stReleased
				fa.evalArgs(x, e)
				return
			case "CopyOut":
				fa.useCheck(x.Pos(), c, e)
				e.st[c] = stReleased
				fa.evalArgs(x, e)
				return
			case "Detach":
				fa.useCheck(x.Pos(), c, e)
				if !fa.ann.TransfersAt(x.Pos()) {
					fa.pass.Reportf(x.Pos(), "transfer",
						"Detach removes Buf %q from pooling; annotate the statement with //bertha:transfers", c.name)
				}
				e.st[c] = stReleased
				fa.evalArgs(x, e)
				return
			default:
				// Any other method (Bytes, Len, Prepend, ...) is a use.
				fa.useCheck(sel.X.Pos(), c, e)
			}
		} else {
			fa.expr(sel.X, e)
		}
	} else {
		// Builtins take no ownership except append, which stores.
		if id, ok := x.Fun.(*ast.Ident); ok {
			if _, isBuiltin := fa.info().Uses[id].(*types.Builtin); isBuiltin {
				if id.Name == "append" {
					queueAppend := len(x.Args) > 0 && fa.queueField(x.Args[0]) != nil
					for i, arg := range x.Args {
						if c := fa.trackedIdent(arg, e); c != nil && i > 0 {
							if queueAppend {
								// Appending onto a //bertha:queue field is
								// the enqueue form of the sanctioned
								// transfer.
								fa.useCheck(arg.Pos(), c, e)
								e.st[c] = stEscaped
							} else {
								fa.consumeStore(arg.Pos(), c, e, "append")
							}
							continue
						}
						fa.expr(arg, e)
					}
				} else {
					fa.evalArgs(x, e)
				}
				return
			}
		}
		fa.expr(x.Fun, e)
	}
	// Ordinary call: a *wire.Buf argument transfers ownership to the
	// callee unless the callee borrows it.
	callee := fa.calleeFunc(x)
	for i, arg := range x.Args {
		if c := fa.trackedIdent(arg, e); c != nil {
			fa.useCheck(arg.Pos(), c, e)
			if !fa.calleeBorrows(callee, i) {
				if s := e.state(c); s == stOwned || s == stMaybe || s == stUntracked {
					e.st[c] = stEscaped
				}
			}
			continue
		}
		fa.expr(arg, e)
	}
}

func (fa *funcAnalysis) evalArgs(x *ast.CallExpr, e *env) {
	for _, arg := range x.Args {
		fa.expr(arg, e)
	}
}

// calleeFunc resolves the called function when statically known.
func (fa *funcAnalysis) calleeFunc(x *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		if fn, ok := fa.info().Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := fa.info().Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeBorrows reports whether the callee's i-th parameter is marked
// //bertha:borrows — same-package callees by their doc comment,
// cross-package callees through the BorrowsFact their own analysis
// exported.
func (fa *funcAnalysis) calleeBorrows(fn *types.Func, i int) bool {
	if fn == nil {
		return false
	}
	if fd, ok := fa.decls[fn]; ok {
		if fd.Type.Params == nil {
			return false
		}
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if idx == i {
					return analysis.FuncDirective(fd.Doc, "borrows", name.Name)
				}
				idx++
			}
		}
		return false
	}
	var bf BorrowsFact
	if fa.pass.ImportObjectFact(fn, &bf) {
		for _, p := range bf.Params {
			if p == i {
				return true
			}
		}
	}
	return false
}

// funcLit marks captured owned Bufs as escaped (the closure owns them
// now) and analyzes the literal's body as its own function.
func (fa *funcAnalysis) funcLit(fl *ast.FuncLit, e *env) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := fa.info().Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if c, ok := e.vars[v]; ok {
			if s := e.state(c); s == stOwned || s == stMaybe {
				e.st[c] = stEscaped
			}
		}
		return true
	})
	sub := &funcAnalysis{pass: fa.pass, ann: fa.ann, decls: fa.decls, queues: fa.queues}
	sub.runFunc(fl.Type, nil, fl.Body)
}

// errNilCond matches conditions of the form `err != nil` / `err == nil`
// over a plain error variable.
func errNilCond(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return nil, false, false
	}
	return v, be.Op == token.NEQ, true
}

// bufNilCond matches conditions of the form `b != nil` / `b == nil`
// over a plain *wire.Buf variable.
func bufNilCond(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !analysis.IsBufPtr(v.Type()) {
		return nil, false, false
	}
	return v, be.Op == token.NEQ, true
}

func isNilIdent(x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	return ok && id.Name == "nil"
}

// isTerminalCall recognizes statements that end the path: panic and the
// conventional process-exit helpers.
func isTerminalCall(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
			if pkg, ok := fun.X.(*ast.Ident); ok {
				return pkg.Name == "os" || pkg.Name == "log" || pkg.Name == "runtime"
			}
		}
	}
	return false
}

// hasLoopExit reports whether a loop body contains an unlabeled break
// or a goto that can leave a `for {}` loop.
func hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node, inNested bool)
	walk = func(n ast.Node, inNested bool) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.BranchStmt:
			if n.Tok == token.GOTO {
				found = true
			}
			if n.Tok == token.BREAK && (!inNested || n.Label != nil) {
				found = true
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Unlabeled break inside these targets them, not our loop.
			ast.Inspect(n, func(m ast.Node) bool {
				if b, ok := m.(*ast.BranchStmt); ok && b.Label != nil && b.Tok == token.BREAK {
					found = true
				}
				return !found
			})
			return
		case *ast.FuncLit:
			return
		}
		// Generic recursion over children.
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			walk(m, inNested)
			return false
		})
	}
	for _, s := range body.List {
		walk(s, false)
	}
	return found
}
