// Package bufown checks the linear ownership discipline of *wire.Buf
// values: every Buf acquired by a function (from a constructor, a
// RecvBuf, or an owned parameter) must leave it exactly once on every
// path — via Release/CopyOut, an annotated Detach or store
// (//bertha:transfers), a call that takes ownership, or a return.
//
// Diagnostic categories:
//
//	use-after-release  a Buf is used after Release/CopyOut/Detach
//	double-release     a Buf is released twice on one path
//	leak               a path returns without consuming an owned Buf
//	transfer           ownership leaves through Detach or a store into a
//	                   longer-lived structure without //bertha:transfers
//
// Parameters of type *wire.Buf are owned by the callee by default;
// //bertha:borrows <name> in the function's doc comment marks a
// parameter the caller retains. The internal/wire package itself is
// exempt: its methods implement the discipline rather than obey it.
//
// Interprocedural summaries are inferred rather than declared wherever
// the code already proves them (see infer.go and sinks.go): a helper
// that never consumes a Buf parameter on any exit path is learned as
// borrowing it — bottom-up over the SCCs of the package call graph
// (internal/analysis/callgraph), so borrows chain through helper
// layers — and a struct field the package demonstrably drains (channel
// receive, map read, range) is a learned sink whose stores are
// sanctioned transfers, replacing most per-statement
// //bertha:transfers annotations. Both summaries export as facts
// (BorrowsFact, SinksFact) so cross-package callers see them too.
//
// The batch path follows the same discipline element-wise: a
// []*wire.Buf argument to SendBufs transfers every element to the
// callee, and a RecvBufs-style method storing into an element of a
// []*wire.Buf parameter hands that Buf to the caller — the store is the
// sanctioned transfer and needs no annotation.
//
// Send queues (the coalescer pattern) are declared at the field: a
// []*wire.Buf struct field annotated //bertha:queue <why> is a queue
// whose drain path owns the release, so stores into its elements and
// appends onto it are sanctioned ownership transfers — per-statement
// //bertha:transfers annotations are not required at each enqueue site.
// Stores into unannotated fields remain transfer diagnostics.
//
// The analysis is path-sensitive: each function body is lowered to a
// control-flow graph (internal/analysis/cfg) and the ownership lattice
// is driven to a fixpoint over it, with `err != nil` / `b != nil`
// branch conditions refining the state along each edge. Buf cells are
// keyed by acquisition site; when a loop re-acquires at a site whose
// previous Buf is still held by a loop-carried alias (the
// release-the-previous-iteration pattern), the old value moves to a
// per-site shadow cell so both generations track independently —
// which is exactly the case the pre-CFG walker flagged as a spurious
// per-iteration leak. Per-iteration leaks are detected on the loop
// back edge: a Buf acquired inside the loop, still owned, and
// referenced only by variables local to the loop cannot survive the
// next iteration's re-acquisition.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/cfg"
)

// BorrowsFact marks a function's //bertha:borrows parameters for
// cross-package callers: an argument passed at one of these positions
// stays owned by the caller instead of transferring to the callee.
type BorrowsFact struct {
	// Params holds the borrowed parameter indices (receiver excluded).
	Params []int
}

// AFact marks BorrowsFact as a fact type.
func (*BorrowsFact) AFact() {}

// Analyzer is the bufown pass.
var Analyzer = &analysis.Analyzer{
	Name:      "bufown",
	Doc:       "check linear ownership of wire.Buf values (release/transfer exactly once per path)",
	Run:       run,
	FactTypes: []analysis.Fact{(*BorrowsFact)(nil), (*SinksFact)(nil)},
}

// st is the abstract ownership state of one Buf cell.
type st uint8

const (
	stUntracked st = iota // borrowed, nil, or of unknown provenance
	stOwned               // this function must consume it
	stReleased            // terminally consumed by Release/CopyOut/Detach
	stEscaped             // ownership transferred (call arg, return, store, capture)
	stMaybe               // owned on some paths, consumed on others
)

// A cell is one tracked Buf value; aliased variables share a cell.
// Cells are keyed by acquisition site so the fixpoint has a finite
// abstraction; shadow marks the previous-generation cell of a site
// whose value survived a loop-carried re-acquisition.
type cell struct {
	name   string
	pos    token.Pos
	shadow bool
}

// env maps variables to cells and cells to states along one path.
type env struct {
	vars map[*types.Var]*cell
	st   map[*cell]st
	def  map[*cell]bool // has a deferred Release/CopyOut
	// pair links an error variable to the Buf cell produced by the same
	// call (b, err := RecvBuf(...)): on the err != nil branch the Buf is
	// nil by convention and ownership evaporates.
	pair map[*types.Var]*cell
	// pairDead tombstones error variables whose pairings conflicted at a
	// join, so the merge stays monotone across fixpoint iterations.
	pairDead map[*types.Var]bool
}

func newEnv() *env {
	return &env{
		vars:     map[*types.Var]*cell{},
		st:       map[*cell]st{},
		def:      map[*cell]bool{},
		pair:     map[*types.Var]*cell{},
		pairDead: map[*types.Var]bool{},
	}
}

func (e *env) clone() *env {
	c := newEnv()
	for k, v := range e.vars {
		c.vars[k] = v
	}
	for k, v := range e.st {
		c.st[k] = v
	}
	for k, v := range e.def {
		c.def[k] = v
	}
	for k, v := range e.pair {
		c.pair[k] = v
	}
	for k, v := range e.pairDead {
		c.pairDead[k] = v
	}
	return c
}

func (e *env) state(c *cell) st {
	if s, ok := e.st[c]; ok {
		return s
	}
	return stUntracked
}

// mergeFrom folds b into e at a control-flow join and reports whether e
// changed — the fixpoint's revisit signal. It is monotone: vars, def,
// and pairDead only grow, and per-cell states climb the merge lattice.
func (e *env) mergeFrom(b *env) bool {
	changed := false
	for v, c := range b.vars {
		if _, ok := e.vars[v]; !ok {
			e.vars[v] = c
			changed = true
		}
	}
	cells := map[*cell]bool{}
	for c := range e.st {
		cells[c] = true
	}
	for c := range b.st {
		cells[c] = true
	}
	for c := range cells {
		if m := mergeState(e.state(c), b.state(c)); m != e.state(c) {
			e.st[c] = m
			changed = true
		}
	}
	for c := range b.def {
		if !e.def[c] {
			e.def[c] = true
			changed = true
		}
	}
	for v := range b.pairDead {
		if !e.pairDead[v] {
			e.pairDead[v] = true
			delete(e.pair, v)
			changed = true
		}
	}
	for v, c := range b.pair {
		if e.pairDead[v] {
			continue
		}
		if prev, ok := e.pair[v]; ok {
			if prev != c {
				delete(e.pair, v)
				e.pairDead[v] = true
				changed = true
			}
		} else {
			e.pair[v] = c
			changed = true
		}
	}
	return changed
}

func mergeState(a, b st) st {
	if a == b {
		return a
	}
	if a == stUntracked || b == stUntracked {
		return stUntracked
	}
	// released+escaped: consumed either way; anything involving owned or
	// maybe stays conditional.
	if (a == stReleased || a == stEscaped) && (b == stReleased || b == stEscaped) {
		return stEscaped
	}
	return stMaybe
}

func run(pass *analysis.Pass) error {
	if analysis.IsWirePackage(pass.Pkg) {
		return nil
	}
	ann := analysis.CollectAnnotations(pass.Fset, pass.Files)
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	// Index the //bertha:queue-annotated struct fields: enqueue stores
	// into them are sanctioned transfers. Two shapes qualify: a plain
	// []*wire.Buf (the coalescer's pending queue) and a slice of slot
	// structs each carrying a *wire.Buf field (the reactor's receive
	// ring, where slots pair the buffer with sequence bookkeeping).
	queues := map[*types.Var]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok &&
						(analysis.IsBufSlice(v.Type()) || analysis.IsBufSlotSlice(v.Type())) &&
						ann.QueueAt(name.Pos()) {
						queues[v] = true
					}
				}
			}
			return true
		})
	}
	// Learn the package's summaries before judging anyone: sink fields
	// from drain witnesses, borrowed parameters from the silent
	// bottom-up dataflow over the call graph.
	sinks, sinkFact := collectSinks(pass)
	inferred := inferBorrows(pass, ann, decls, queues, sinks)
	if sinkFact != nil {
		pass.ExportPackageFact(sinkFact)
	}
	// Publish each function's borrowed Buf parameters — declared and
	// inferred alike — so callers in other packages keep ownership
	// instead of assuming a transfer.
	for fn, fd := range decls {
		if fd.Type.Params == nil {
			continue
		}
		borrowedSet := map[int]bool{}
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok &&
					analysis.IsBufPtr(v.Type()) &&
					analysis.FuncDirective(fd.Doc, "borrows", name.Name) {
					borrowedSet[idx] = true
				}
				idx++
			}
		}
		for i := range inferred[fn] {
			borrowedSet[i] = true
		}
		if len(borrowedSet) > 0 {
			borrowed := make([]int, 0, len(borrowedSet))
			for i := range borrowedSet {
				borrowed = append(borrowed, i)
			}
			sort.Ints(borrowed)
			pass.ExportObjectFact(fn, &BorrowsFact{Params: borrowed})
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			fa := &funcAnalysis{pass: pass, ann: ann, decls: decls, queues: queues,
				sinks: sinks, inferred: inferred, fn: fn}
			fa.runFunc(fd.Type, fd.Doc, fd.Body)
		}
	}
	return nil
}

type funcAnalysis struct {
	pass  *analysis.Pass
	ann   *analysis.Annotations
	decls map[*types.Func]*ast.FuncDecl
	// fn is the declared function under analysis (nil for function
	// literals and summary runs); its own inferred borrows key off it.
	fn *types.Func
	// sinks holds the package's inferred sink fields: stores into them
	// are sanctioned transfers like //bertha:queue stores.
	sinks *sinkSet
	// inferred holds the package's learned borrow summaries, consulted
	// by calleeBorrows alongside declared directives and facts.
	inferred map[*types.Func]map[int]bool
	// summarize, when set, runs in place of exit diagnostics: the
	// inference pass records per-parameter consumption instead of
	// reporting leaks.
	summarize func(*env)
	// intoParams holds the function's []*wire.Buf parameters. A store
	// into an element of one is the RecvBufs contract — ownership moves
	// to the caller through the slice — so it consumes the Buf without
	// needing a //bertha:transfers annotation.
	intoParams map[*types.Var]bool
	// queues holds the package's //bertha:queue struct fields: stores
	// into and appends onto a queue are likewise sanctioned transfers
	// (the drain path owns the release).
	queues map[*types.Var]bool
	// cells and shadows key Buf cells by acquisition site so every
	// fixpoint iteration rebinds the same abstract value.
	cells   map[token.Pos]*cell
	shadows map[token.Pos]*cell
	// report gates diagnostics: the fixpoint runs silent, then one
	// reporting pass replays the converged states.
	report bool
	// loopReported records cells already flagged as per-iteration leaks
	// so function-exit checks do not re-report them.
	loopReported map[*cell]bool
}

func (fa *funcAnalysis) info() *types.Info { return fa.pass.TypesInfo }

// cellAt returns the (stable) cell for an acquisition site.
func (fa *funcAnalysis) cellAt(name string, pos token.Pos) *cell {
	if fa.cells == nil {
		fa.cells = map[token.Pos]*cell{}
	}
	if c, ok := fa.cells[pos]; ok {
		return c
	}
	c := &cell{name: name, pos: pos}
	fa.cells[pos] = c
	return c
}

// shadowAt returns the previous-generation cell for a site.
func (fa *funcAnalysis) shadowAt(c *cell) *cell {
	if fa.shadows == nil {
		fa.shadows = map[token.Pos]*cell{}
	}
	if s, ok := fa.shadows[c.pos]; ok {
		return s
	}
	s := &cell{name: c.name, pos: c.pos, shadow: true}
	fa.shadows[c.pos] = s
	return s
}

// runFunc analyzes one function or function literal body.
func (fa *funcAnalysis) runFunc(ft *ast.FuncType, doc *ast.CommentGroup, body *ast.BlockStmt) {
	e0 := newEnv()
	fa.bindParams(ft, doc, e0)
	g := cfg.New(body)
	flow := &cfg.Flow[*env]{
		Entry:    func() *env { return e0.clone() },
		Clone:    func(e *env) *env { return e.clone() },
		Merge:    func(dst, src *env) bool { return dst.mergeFrom(src) },
		Transfer: func(n ast.Node, e *env) { fa.transfer(n, e) },
		Refine:   func(cond ast.Expr, branch bool, e *env) { fa.refine(cond, branch, e) },
	}
	in, ok := flow.Forward(g)
	if !ok {
		return // fixpoint budget exhausted: stay silent rather than guess
	}
	fa.report = true
	fa.loopReported = map[*cell]bool{}
	// Pass 1: loop back edges — per-iteration leaks must be known before
	// the main pass so later return/exit checks skip those cells.
	for _, b := range g.Blocks {
		s, live := in[b]
		if !live {
			continue
		}
		hasBack := false
		for _, ed := range b.Succs {
			if ed.Back {
				hasBack = true
			}
		}
		if !hasBack {
			continue
		}
		fa.report = false
		out := s.clone()
		for _, n := range b.Nodes {
			fa.transfer(n, out)
		}
		fa.report = true
		for _, ed := range b.Succs {
			if ed.Back {
				fa.loopBackCheck(out, ed.Loop)
			}
		}
	}
	// Pass 2: replay every reachable block with reporting on. Return
	// statements run their own exit checks inside transfer.
	for _, b := range g.Blocks {
		s, live := in[b]
		if !live {
			continue
		}
		s = s.clone()
		for _, n := range b.Nodes {
			fa.transfer(n, s)
		}
	}
	// The implicit return: falling off the end of the body.
	if s, ok := in[g.Exit]; ok {
		fa.exitCheck(s, body.Rbrace)
	}
}

func (fa *funcAnalysis) bindParams(ft *ast.FuncType, doc *ast.CommentGroup, e *env) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			i := idx
			idx++
			v, ok := fa.info().Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if analysis.IsBufSlice(v.Type()) {
				if fa.intoParams == nil {
					fa.intoParams = map[*types.Var]bool{}
				}
				fa.intoParams[v] = true
				continue
			}
			if !analysis.IsBufPtr(v.Type()) {
				continue
			}
			if analysis.FuncDirective(doc, "borrows", name.Name) {
				continue
			}
			if m, ok := fa.inferred[fa.fn]; ok && m[i] {
				// Learned borrow: the caller keeps ownership, so this
				// function has no obligation to track.
				continue
			}
			c := fa.cellAt(name.Name, name.Pos())
			e.vars[v] = c
			e.st[c] = stOwned
		}
	}
}

// transfer advances the ownership state across one CFG node.
func (fa *funcAnalysis) transfer(n ast.Node, e *env) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		fa.expr(n.X, e)
	case *ast.AssignStmt:
		fa.assign(n, e)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					fa.bindIdent(name, rhs, e)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			if c := fa.trackedIdent(r, e); c != nil {
				fa.useCheck(r.Pos(), c, e)
				e.st[c] = stEscaped
				continue
			}
			fa.expr(r, e)
		}
		if fa.report || fa.summarize != nil {
			fa.exitCheck(e, n.Pos())
		}
	case *ast.DeferStmt:
		fa.deferStmt(n, e)
	case *ast.GoStmt:
		fa.expr(n.Call, e)
	case *ast.SendStmt:
		fa.expr(n.Chan, e)
		if c := fa.trackedIdent(n.Value, e); c != nil {
			if fa.sinks.isSinkSel(n.Chan) {
				// Send into an inferred sink channel: the receive side
				// we witnessed draining it owns the release.
				fa.useCheck(n.Value.Pos(), c, e)
				e.st[c] = stEscaped
			} else {
				fa.consumeStore(n.Value.Pos(), c, e, "channel send")
			}
		} else {
			fa.expr(n.Value, e)
		}
	case *ast.IncDecStmt:
		fa.expr(n.X, e)
	case *ast.RangeStmt:
		// Loop-head marker: the iteration variables come from a container
		// the loop does not own — bind untracked so Release in the body
		// is accepted. (The range expression is its own node.)
		for _, lv := range []ast.Expr{n.Key, n.Value} {
			if id, ok := lv.(*ast.Ident); ok {
				if v, ok := fa.info().Defs[id].(*types.Var); ok && analysis.IsBufPtr(v.Type()) {
					delete(e.vars, v)
				}
			}
		}
	case ast.Expr:
		// Branch conditions, switch tags, case expressions.
		fa.expr(n, e)
	}
}

// refine specializes the state along a conditional edge — the
// path-sensitivity the CFG engine buys.
func (fa *funcAnalysis) refine(cond ast.Expr, branch bool, e *env) {
	// if err != nil: the paired Buf is nil on the error branch, so
	// ownership applies only on the success branch (and vice versa for
	// err == nil).
	if errVar, isNeq, ok := errNilCond(fa.info(), cond); ok {
		if c, paired := e.pair[errVar]; paired {
			if branch == isNeq { // the error branch
				if e.state(c) == stOwned {
					e.st[c] = stUntracked
				}
			}
			delete(e.pair, errVar)
		}
	}
	// if b != nil: on the nil branch the Buf carries no ownership
	// (Release is nil-safe and there is nothing to leak), so a helper
	// returning (msg, nil, nil) for "parked" — the batch decode shape —
	// doesn't flag the fallthrough path.
	if bufVar, isNeq, ok := bufNilCond(fa.info(), cond); ok {
		if c := e.vars[bufVar]; c != nil {
			if branch != isNeq { // the nil branch
				if s := e.state(c); s == stOwned || s == stMaybe {
					e.st[c] = stUntracked
				}
			}
		}
	}
}

// isIntoStore reports whether lhs indexes one of the function's
// []*wire.Buf parameters — the caller-visible slot a RecvBufs-style
// method hands received buffers back through.
func (fa *funcAnalysis) isIntoStore(lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(ix.X).(*ast.Ident)
	if !ok {
		return false
	}
	v := fa.identVar(id)
	return v != nil && fa.intoParams[v]
}

// queueField returns the //bertha:queue-annotated field x resolves to,
// or nil.
func (fa *funcAnalysis) queueField(x ast.Expr) *types.Var {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if v, ok := fa.info().Uses[sel.Sel].(*types.Var); ok && fa.queues[v] {
		return v
	}
	return nil
}

// isQueueStore reports whether lhs stores into a //bertha:queue field —
// an enqueue, where the queue's drain path owns the release. Two store
// shapes are sanctioned: `q.pending[i] = b` on a []*wire.Buf queue, and
// `r.slots[i].b = b` on a slot-struct ring (the element's Buf field,
// indexed through the annotated field directly — a pointer alias to the
// slot is not tracked).
func (fa *funcAnalysis) isQueueStore(lhs ast.Expr) bool {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.IndexExpr:
		return fa.queueField(l.X) != nil
	case *ast.SelectorExpr:
		ix, ok := ast.Unparen(l.X).(*ast.IndexExpr)
		if !ok || fa.queueField(ix.X) == nil {
			return false
		}
		if v, ok := fa.info().Uses[l.Sel].(*types.Var); ok {
			return analysis.IsBufPtr(v.Type())
		}
	}
	return false
}

// isSinkStore reports whether lhs indexes an inferred sink field — a
// reassembly or pending map whose drain path the package demonstrates.
func (fa *funcAnalysis) isSinkStore(lhs ast.Expr) bool {
	ix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	return ok && fa.sinks.isSinkSel(ix.X)
}

// sanctionedAppend handles `slot = append(src, b, ...)` where slot is a
// sanctioned container (a caller's slice param element, a queue, or an
// inferred sink): the appended Bufs transfer to the container's drain
// path. It reports whether it handled the statement.
func (fa *funcAnalysis) sanctionedAppend(lhs, rhs ast.Expr, e *env) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := fa.info().Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if !(fa.isIntoStore(lhs) || fa.isQueueStore(lhs) || fa.isSinkStore(lhs) || fa.sinks.isSinkSel(lhs)) {
		return false
	}
	for i, arg := range call.Args {
		if c := fa.trackedIdent(arg, e); c != nil && i > 0 {
			fa.useCheck(arg.Pos(), c, e)
			e.st[c] = stEscaped
			continue
		}
		fa.expr(arg, e)
	}
	return true
}

// exitCheck reports owned cells still live when a path leaves the
// function.
func (fa *funcAnalysis) exitCheck(e *env, at token.Pos) {
	if fa.summarize != nil {
		fa.summarize(e)
		return
	}
	if !fa.report {
		return
	}
	seen := map[*cell]bool{}
	for _, c := range e.vars {
		if seen[c] || e.def[c] || fa.loopReported[c] {
			continue
		}
		seen[c] = true
		switch e.state(c) {
		case stOwned:
			fa.pass.Reportf(at, "leak",
				"pooled Buf %q (acquired at line %d) is not released, transferred, or returned on this path",
				c.name, fa.pass.Fset.Position(c.pos).Line)
		case stMaybe:
			fa.pass.Reportf(at, "leak",
				"pooled Buf %q (acquired at line %d) may leak: consumed on some paths into this exit but not all",
				c.name, fa.pass.Fset.Position(c.pos).Line)
		}
	}
}

// loopBackCheck runs at a loop back edge: a Buf acquired inside the
// loop, still owned, and referenced only by variables declared inside
// the loop is overwritten by the next iteration — a per-iteration leak.
// A loop-carried alias declared outside the loop (the release-previous
// pattern) keeps the value reachable, so it is exempt: whether IT leaks
// is decided at function exit.
func (fa *funcAnalysis) loopBackCheck(e *env, loop ast.Stmt) {
	var rbrace token.Pos
	switch l := loop.(type) {
	case *ast.ForStmt:
		rbrace = l.Body.Rbrace
	case *ast.RangeStmt:
		rbrace = l.Body.Rbrace
	default:
		return
	}
	inLoop := func(p token.Pos) bool { return p >= loop.Pos() && p < loop.End() }
	seen := map[*cell]bool{}
	for _, c := range e.vars {
		if seen[c] || fa.loopReported[c] || e.def[c] {
			continue
		}
		seen[c] = true
		if e.state(c) != stOwned || !inLoop(c.pos) {
			continue
		}
		escapes := false
		for v, vc := range e.vars {
			if vc == c && !inLoop(v.Pos()) {
				escapes = true
			}
		}
		if escapes {
			continue
		}
		fa.loopReported[c] = true
		fa.pass.Reportf(rbrace, "leak",
			"pooled Buf %q (acquired at line %d) leaks at the end of each loop iteration",
			c.name, fa.pass.Fset.Position(c.pos).Line)
	}
}

func (fa *funcAnalysis) deferStmt(s *ast.DeferStmt, e *env) {
	if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
		if c := fa.trackedIdent(sel.X, e); c != nil {
			switch sel.Sel.Name {
			case "Release", "CopyOut":
				e.def[c] = true
				return
			}
		}
	}
	fa.expr(s.Call, e)
}

// assign handles := and = statements: alias propagation, new owned
// cells from Buf-returning calls, and the transfer rule for stores.
func (fa *funcAnalysis) assign(s *ast.AssignStmt, e *env) {
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		// b, err := f(ctx) and friends: classify once, bind each LHS.
		fa.expr(s.Rhs[0], e)
		_, fromCall := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		var bufCell *cell
		var errVar *types.Var
		for _, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				fa.storeNonIdentLHS(lhs, e)
				continue
			}
			if c := fa.bindVar(id, fromCall, e); c != nil {
				bufCell = c
			}
			if v := fa.identVar(id); v != nil && isErrorType(v.Type()) {
				delete(e.pair, v)
				errVar = v
			}
		}
		if bufCell != nil && errVar != nil && !e.pairDead[errVar] {
			e.pair[errVar] = bufCell
		}
		return
	}
	for i, lhs := range s.Lhs {
		var rhs ast.Expr
		if i < len(s.Rhs) {
			rhs = s.Rhs[i]
		}
		if id, ok := lhs.(*ast.Ident); ok {
			fa.bindIdent(id, rhs, e)
			continue
		}
		// Store target: m[k] = b, x.f = b, *p = b.
		if c := fa.trackedIdent(rhs, e); c != nil {
			if fa.isIntoStore(lhs) || fa.isQueueStore(lhs) || fa.isSinkStore(lhs) {
				// into[i] = b inside a RecvBufs-shaped method (the slice
				// belongs to the caller), q[i] = b onto a declared
				// //bertha:queue field, or m[k] = b into an inferred sink
				// (the drain path releases): the store IS the transfer.
				fa.useCheck(rhs.Pos(), c, e)
				e.st[c] = stEscaped
			} else {
				fa.consumeStore(rhs.Pos(), c, e, "store")
			}
		} else if rhs != nil {
			if !fa.sanctionedAppend(lhs, rhs, e) {
				fa.expr(rhs, e)
			}
		}
		fa.storeNonIdentLHS(lhs, e)
	}
}

// storeNonIdentLHS evaluates the subexpressions of a non-identifier
// assignment target for use checks.
func (fa *funcAnalysis) storeNonIdentLHS(lhs ast.Expr, e *env) {
	switch lhs := lhs.(type) {
	case *ast.IndexExpr:
		fa.expr(lhs.X, e)
		fa.expr(lhs.Index, e)
	case *ast.SelectorExpr:
		fa.expr(lhs.X, e)
	case *ast.StarExpr:
		fa.expr(lhs.X, e)
	}
}

// bindIdent binds one identifier from one RHS expression.
func (fa *funcAnalysis) bindIdent(id *ast.Ident, rhs ast.Expr, e *env) {
	v := fa.identVar(id)
	if v == nil || !analysis.IsBufPtr(v.Type()) {
		if v != nil {
			delete(e.pair, v) // a reassigned error no longer guards its Buf
		}
		if rhs != nil {
			fa.expr(rhs, e)
		}
		return
	}
	if rhs == nil {
		delete(e.vars, v) // var b *wire.Buf — nil until assigned
		return
	}
	if rid, ok := ast.Unparen(rhs).(*ast.Ident); ok {
		if c := fa.trackedIdentVar(rid, e); c != nil {
			fa.useCheck(rid.Pos(), c, e)
			e.vars[v] = c // alias: both names share the cell
			return
		}
		delete(e.vars, v)
		return
	}
	fa.expr(rhs, e)
	_, fromCall := ast.Unparen(rhs).(*ast.CallExpr)
	fa.bindVarAt(v, id, fromCall, e)
}

func (fa *funcAnalysis) bindVar(id *ast.Ident, fromCall bool, e *env) *cell {
	v := fa.identVar(id)
	if v == nil || !analysis.IsBufPtr(v.Type()) {
		return nil
	}
	return fa.bindVarAt(v, id, fromCall, e)
}

func (fa *funcAnalysis) bindVarAt(v *types.Var, id *ast.Ident, fromCall bool, e *env) *cell {
	if !fromCall {
		// Map reads, channel receives, field loads, type assertions:
		// provenance unknown, do not track.
		delete(e.vars, v)
		return nil
	}
	c := fa.cellAt(id.Name, id.Pos())
	// Generation split: re-acquiring at a site whose previous value is
	// still held by another variable (the loop-carried release-previous
	// pattern). Move the old value to the site's shadow cell so both
	// generations track independently.
	aliased := false
	for ov, oc := range e.vars {
		if oc == c && ov != v {
			aliased = true
		}
	}
	if aliased {
		sh := fa.shadowAt(c)
		shLive := false
		for ov, oc := range e.vars {
			if oc == sh && ov != v {
				shLive = true
			}
		}
		if shLive {
			// A third generation is live: merge rather than clobber.
			e.st[sh] = mergeState(e.state(sh), e.state(c))
		} else {
			e.st[sh] = e.state(c)
		}
		if e.def[c] {
			e.def[sh] = true
		}
		for ov, oc := range e.vars {
			if oc == c && ov != v {
				e.vars[ov] = sh
			}
		}
		for pv, pc := range e.pair {
			if pc == c {
				e.pair[pv] = sh
			}
		}
	}
	delete(e.def, c) // a fresh Buf has no deferred release yet
	e.vars[v] = c
	e.st[c] = stOwned
	return c
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// identVar resolves an identifier to its variable (definition or use).
func (fa *funcAnalysis) identVar(id *ast.Ident) *types.Var {
	if v, ok := fa.info().Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := fa.info().Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// trackedIdent returns the cell behind x when x is a tracked Buf
// identifier.
func (fa *funcAnalysis) trackedIdent(x ast.Expr, e *env) *cell {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	return fa.trackedIdentVar(id, e)
}

func (fa *funcAnalysis) trackedIdentVar(id *ast.Ident, e *env) *cell {
	v := fa.identVar(id)
	if v == nil {
		return nil
	}
	return e.vars[v]
}

// useCheck reports use of a definitely-released Buf.
func (fa *funcAnalysis) useCheck(pos token.Pos, c *cell, e *env) {
	if e.state(c) == stReleased {
		if fa.report {
			fa.pass.Reportf(pos, "use-after-release",
				"use of Buf %q after it was released or detached", c.name)
		}
		if fa.summarize == nil {
			e.st[c] = stUntracked // silence cascading reports
		}
		// In summary mode the released state must survive uses: it is
		// the evidence the parameter was consumed.
	}
}

// consumeStore applies the transfer rule: storing an owned Buf into a
// longer-lived structure needs a //bertha:transfers annotation.
func (fa *funcAnalysis) consumeStore(pos token.Pos, c *cell, e *env, kind string) {
	fa.useCheck(pos, c, e)
	if s := e.state(c); s == stOwned || s == stMaybe {
		if fa.report && !fa.ann.TransfersAt(pos) {
			fa.pass.Reportf(pos, "transfer",
				"ownership of Buf %q leaves this function via %s; annotate the statement with //bertha:transfers or release a copy", c.name, kind)
		}
	}
	e.st[c] = stEscaped
}

// expr walks an expression, applying use checks and consumption.
func (fa *funcAnalysis) expr(x ast.Expr, e *env) {
	switch x := x.(type) {
	case nil:
	case *ast.Ident:
		if c := fa.trackedIdentVar(x, e); c != nil {
			fa.useCheck(x.Pos(), c, e)
		}
	case *ast.CallExpr:
		fa.call(x, e)
	case *ast.ParenExpr:
		fa.expr(x.X, e)
	case *ast.SelectorExpr:
		fa.expr(x.X, e)
	case *ast.StarExpr:
		fa.expr(x.X, e)
	case *ast.UnaryExpr:
		fa.expr(x.X, e)
	case *ast.BinaryExpr:
		fa.expr(x.X, e)
		fa.expr(x.Y, e)
	case *ast.IndexExpr:
		fa.expr(x.X, e)
		fa.expr(x.Index, e)
	case *ast.SliceExpr:
		fa.expr(x.X, e)
		fa.expr(x.Low, e)
		fa.expr(x.High, e)
		fa.expr(x.Max, e)
	case *ast.TypeAssertExpr:
		fa.expr(x.X, e)
	case *ast.KeyValueExpr:
		fa.expr(x.Value, e)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if c := fa.trackedIdent(val, e); c != nil {
				fa.consumeStore(val.Pos(), c, e, "composite literal")
				continue
			}
			fa.expr(val, e)
		}
	case *ast.FuncLit:
		fa.funcLit(x, e)
	}
}

// call handles method calls on Bufs, ownership-transferring arguments,
// and builtins.
func (fa *funcAnalysis) call(x *ast.CallExpr, e *env) {
	// Terminal methods on a tracked receiver.
	if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
		if c := fa.trackedIdent(sel.X, e); c != nil {
			switch sel.Sel.Name {
			case "Release":
				if fa.report {
					if e.state(c) == stReleased {
						fa.pass.Reportf(x.Pos(), "double-release",
							"Buf %q is released twice on this path", c.name)
					} else if e.def[c] {
						fa.pass.Reportf(x.Pos(), "double-release",
							"Buf %q has a deferred release; this explicit Release runs first and double-releases", c.name)
					}
				}
				e.st[c] = stReleased
				fa.evalArgs(x, e)
				return
			case "CopyOut":
				fa.useCheck(x.Pos(), c, e)
				e.st[c] = stReleased
				fa.evalArgs(x, e)
				return
			case "Detach":
				fa.useCheck(x.Pos(), c, e)
				if fa.report && !fa.ann.TransfersAt(x.Pos()) {
					fa.pass.Reportf(x.Pos(), "transfer",
						"Detach removes Buf %q from pooling; annotate the statement with //bertha:transfers", c.name)
				}
				e.st[c] = stReleased
				fa.evalArgs(x, e)
				return
			default:
				// Any other method (Bytes, Len, Prepend, ...) is a use.
				fa.useCheck(sel.X.Pos(), c, e)
			}
		} else {
			fa.expr(sel.X, e)
		}
	} else {
		// Builtins take no ownership except append, which stores.
		if id, ok := x.Fun.(*ast.Ident); ok {
			if _, isBuiltin := fa.info().Uses[id].(*types.Builtin); isBuiltin {
				if id.Name == "append" {
					queueAppend := len(x.Args) > 0 &&
						(fa.queueField(x.Args[0]) != nil || fa.sinks.isSinkSel(x.Args[0]))
					for i, arg := range x.Args {
						if c := fa.trackedIdent(arg, e); c != nil && i > 0 {
							if queueAppend {
								// Appending onto a //bertha:queue field is
								// the enqueue form of the sanctioned
								// transfer.
								fa.useCheck(arg.Pos(), c, e)
								e.st[c] = stEscaped
							} else {
								fa.consumeStore(arg.Pos(), c, e, "append")
							}
							continue
						}
						fa.expr(arg, e)
					}
				} else {
					fa.evalArgs(x, e)
				}
				return
			}
		}
		fa.expr(x.Fun, e)
	}
	// Ordinary call: a *wire.Buf argument transfers ownership to the
	// callee unless the callee borrows it.
	callee := fa.calleeFunc(x)
	for i, arg := range x.Args {
		if c := fa.trackedIdent(arg, e); c != nil {
			fa.useCheck(arg.Pos(), c, e)
			if !fa.calleeBorrows(callee, i) {
				if s := e.state(c); s == stOwned || s == stMaybe || s == stUntracked {
					e.st[c] = stEscaped
				}
			}
			continue
		}
		fa.expr(arg, e)
	}
}

func (fa *funcAnalysis) evalArgs(x *ast.CallExpr, e *env) {
	for _, arg := range x.Args {
		fa.expr(arg, e)
	}
}

// calleeFunc resolves the called function when statically known.
func (fa *funcAnalysis) calleeFunc(x *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(x.Fun).(type) {
	case *ast.Ident:
		if fn, ok := fa.info().Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := fa.info().Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeBorrows reports whether the callee's i-th parameter is marked
// //bertha:borrows — same-package callees by their doc comment,
// cross-package callees through the BorrowsFact their own analysis
// exported.
func (fa *funcAnalysis) calleeBorrows(fn *types.Func, i int) bool {
	if fn == nil {
		return false
	}
	if m, ok := fa.inferred[fn]; ok && m[i] {
		return true
	}
	if fd, ok := fa.decls[fn]; ok {
		if fd.Type.Params == nil {
			return false
		}
		idx := 0
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if idx == i {
					return analysis.FuncDirective(fd.Doc, "borrows", name.Name)
				}
				idx++
			}
		}
		return false
	}
	var bf BorrowsFact
	if fa.pass.ImportObjectFact(fn, &bf) {
		for _, p := range bf.Params {
			if p == i {
				return true
			}
		}
	}
	return false
}

// funcLit marks captured owned Bufs as escaped (the closure owns them
// now) and analyzes the literal's body as its own function — once, in
// the reporting pass.
func (fa *funcAnalysis) funcLit(fl *ast.FuncLit, e *env) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := fa.info().Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if c, ok := e.vars[v]; ok {
			if s := e.state(c); s == stOwned || s == stMaybe {
				e.st[c] = stEscaped
			}
		}
		return true
	})
	if fa.report {
		sub := &funcAnalysis{pass: fa.pass, ann: fa.ann, decls: fa.decls, queues: fa.queues,
			sinks: fa.sinks, inferred: fa.inferred}
		sub.runFunc(fl.Type, nil, fl.Body)
	}
}

// errNilCond matches conditions of the form `err != nil` / `err == nil`
// over a plain error variable.
func errNilCond(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return nil, false, false
	}
	return v, be.Op == token.NEQ, true
}

// bufNilCond matches conditions of the form `b != nil` / `b == nil`
// over a plain *wire.Buf variable.
func bufNilCond(info *types.Info, cond ast.Expr) (*types.Var, bool, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(x) {
		x, y = y, x
	}
	if !isNilIdent(y) {
		return nil, false, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false, false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || !analysis.IsBufPtr(v.Type()) {
		return nil, false, false
	}
	return v, be.Op == token.NEQ, true
}

func isNilIdent(x ast.Expr) bool {
	id, ok := x.(*ast.Ident)
	return ok && id.Name == "nil"
}
