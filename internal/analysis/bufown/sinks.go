// Sink-field inference: learning the //bertha:transfers sites instead
// of annotating them.
//
// The production pattern behind almost every transfers annotation is
// the same: an owned *wire.Buf is parked in a longer-lived struct field
// — a reassembly map, a pending-retransmit map, a per-peer channel —
// and a drain path elsewhere in the package takes it back out and
// releases it. The store is not a leak; it is the hand-off to the
// drain. This file infers those fields directly:
//
//  1. Candidate fields are struct fields whose type can hold Bufs:
//     chan *wire.Buf, map[K]*wire.Buf, map[K][]*wire.Buf, []*wire.Buf.
//  2. A candidate is "drained" when the package reads Bufs back out of
//     it: a channel receive `<-x.f`, a `range x.f`, or an rvalue index
//     read `x.f[k]` (an index on the left of `=` is a store, not a
//     drain).
//  3. Drained-ness propagates across wired fields: when one local
//     value is stored into several candidate fields (the pipe pattern
//     — `ab := make(chan *wire.Buf); x.send, y.recv = ab, ab`), the
//     fields are unioned, so a send-side field with no local receive
//     inherits the drain witness of the receive-side field it shares a
//     channel with.
//
// Stores into inferred sink fields are sanctioned ownership transfers,
// exactly as if annotated: the drain path owns the release. The
// inferred set is exported as a SinksFact so importing packages
// sanction their stores into the same fields. The deliberate trust is
// the same one //bertha:queue makes: the analysis believes the drain
// path releases what it takes out — it verifies the hand-off, not the
// drain.
package bufown

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"github.com/bertha-net/bertha/internal/analysis"
)

// SinksFact lists a package's inferred Buf sink fields as
// "Type.field" keys, so importing packages sanction stores into them.
type SinksFact struct {
	Fields []string
}

// AFact marks SinksFact as a fact type.
func (*SinksFact) AFact() {}

// sinkCandidateType reports whether a struct field of type t can park
// Bufs for a later drain.
func sinkCandidateType(t types.Type) bool {
	switch t := t.Underlying().(type) {
	case *types.Chan:
		return analysis.IsBufPtr(t.Elem())
	case *types.Map:
		return analysis.IsBufPtr(t.Elem()) || analysis.IsBufSlice(t.Elem())
	case *types.Slice:
		return analysis.IsBufPtr(t.Elem())
	}
	return false
}

// sinkSet resolves field references against the inferred sinks — the
// local package's by object identity, imported packages' through their
// SinksFact.
type sinkSet struct {
	pass     *analysis.Pass
	local    map[*types.Var]bool
	imported map[string]map[string]bool
}

// isSinkSel reports whether sel names an inferred sink field. A nil
// receiver (an analysis run without sink collection) matches nothing.
func (ss *sinkSet) isSinkSel(x ast.Expr) bool {
	if ss == nil {
		return false
	}
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := ss.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return false
	}
	if ss.local[v] {
		return true
	}
	if v.Pkg() == nil || v.Pkg() == ss.pass.Pkg {
		return false
	}
	// Cross-package: resolve "Type.field" against the owning package's
	// exported SinksFact.
	t := ss.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	fields, ok := ss.imported[v.Pkg().Path()]
	if !ok {
		fields = map[string]bool{}
		var sf SinksFact
		if ss.pass.ImportPackageFact(v.Pkg(), &sf) {
			for _, f := range sf.Fields {
				fields[f] = true
			}
		}
		ss.imported[v.Pkg().Path()] = fields
	}
	return fields[named.Obj().Name()+"."+v.Name()]
}

// collectSinks infers the package's sink fields and builds the fact to
// export (nil when nothing was inferred).
func collectSinks(pass *analysis.Pass) (*sinkSet, *SinksFact) {
	info := pass.TypesInfo
	// 1. Candidate fields, keyed for the fact by "Type.field".
	candidates := map[*types.Var]string{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok && sinkCandidateType(v.Type()) {
						candidates[v] = ts.Name.Name + "." + name.Name
					}
				}
			}
			return true
		})
	}
	if len(candidates) == 0 {
		return &sinkSet{pass: pass, imported: map[string]map[string]bool{}}, nil
	}

	fieldOf := func(x ast.Expr) *types.Var {
		sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok {
			if _, isCand := candidates[v]; isCand {
				return v
			}
		}
		return nil
	}
	localVar := func(x ast.Expr) *types.Var {
		id, ok := ast.Unparen(x).(*ast.Ident)
		if !ok {
			return nil
		}
		var v *types.Var
		if dv, ok := info.Defs[id].(*types.Var); ok {
			v = dv
		} else if uv, ok := info.Uses[id].(*types.Var); ok {
			v = uv
		}
		if v == nil || v.IsField() {
			return nil
		}
		return v
	}

	// 2 & 3. One pre-order walk finds drain witnesses and wiring. The
	// AssignStmt case runs before its children, so index stores are
	// known before the IndexExpr case asks.
	drained := map[*types.Var]bool{}
	varFields := map[*types.Var][]*types.Var{}
	for _, f := range pass.Files {
		stores := map[*ast.IndexExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						stores[ix] = true
					}
				}
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						fv := fieldOf(lhs)
						if fv == nil {
							continue
						}
						if lv := localVar(n.Rhs[i]); lv != nil {
							varFields[lv] = append(varFields[lv], fv)
						}
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if fv := fieldOf(n.X); fv != nil {
						drained[fv] = true
					}
				}
			case *ast.RangeStmt:
				if fv := fieldOf(n.X); fv != nil {
					drained[fv] = true
				}
			case *ast.IndexExpr:
				if !stores[n] {
					if fv := fieldOf(n.X); fv != nil {
						drained[fv] = true
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					kid, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					fv, ok := info.Uses[kid].(*types.Var)
					if !ok {
						continue
					}
					if _, isCand := candidates[fv]; !isCand {
						continue
					}
					if lv := localVar(kv.Value); lv != nil {
						varFields[lv] = append(varFields[lv], fv)
					}
				}
			}
			return true
		})
	}

	// Union fields wired through a shared local value; propagate drain
	// witnesses to every member of a union.
	parent := map[*types.Var]*types.Var{}
	var find func(v *types.Var) *types.Var
	find = func(v *types.Var) *types.Var {
		p, ok := parent[v]
		if !ok || p == v {
			return v
		}
		r := find(p)
		parent[v] = r
		return r
	}
	union := func(a, b *types.Var) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, fields := range varFields {
		for _, fv := range fields[1:] {
			union(fields[0], fv)
		}
	}
	rootDrained := map[*types.Var]bool{}
	for v := range drained {
		rootDrained[find(v)] = true
	}

	sinks := map[*types.Var]bool{}
	var keys []string
	for v, key := range candidates {
		if rootDrained[find(v)] {
			sinks[v] = true
			keys = append(keys, key)
		}
	}
	ss := &sinkSet{pass: pass, local: sinks, imported: map[string]map[string]bool{}}
	if len(keys) == 0 {
		return ss, nil
	}
	sort.Strings(keys)
	return ss, &SinksFact{Fields: keys}
}
