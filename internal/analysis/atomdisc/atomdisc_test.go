package atomdisc_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/atomdisc"
)

func TestAtomdisc(t *testing.T) {
	analysistest.Run(t, "atomdisc_a", atomdisc.Analyzer)
}

func TestAtomdiscCrossPackage(t *testing.T) {
	analysistest.Run(t, "atomdisc_cross", atomdisc.Analyzer, "atomdisc_dep")
}
