// Package atomdisc checks the atomic-access discipline around the
// lock-free datapath: a field accessed through sync/atomic anywhere
// must be accessed through sync/atomic everywhere, 64-bit
// function-style atomics must hit 64-bit-aligned addresses under
// 32-bit layout rules, and structs carrying atomic state must not be
// copied by value.
//
// Diagnostic categories:
//
//	mixed-access  a field's address is passed to a sync/atomic
//	              function in one place and the field is read or
//	              written plainly in another; the plain access is a
//	              latent data race (the atomic op provides no
//	              exclusion for non-atomic readers)
//	atomic-align  a 64-bit atomic operates on a field whose offset
//	              from its allocation is not 64-bit aligned under
//	              32-bit (GOARCH=386) layout rules; such an access
//	              faults or silently tears on 32-bit platforms
//	atomic-copy   a struct that carries atomic state (a sync/atomic
//	              typed field, or a field accessed with sync/atomic
//	              functions) is copied by value — a value receiver,
//	              a by-value call argument, or an assignment from an
//	              existing value; the copy races with concurrent
//	              writers and the copied atomics are dead state
//
// Mixed access is checked across packages: the set of atomically
// accessed exported fields of exported types is published as an
// AtomicFieldsFact package fact, and importing packages check their
// plain accesses against it.
//
// //bertha:racy <why> is the escape hatch for intentional mixed
// access (for example a stats field whose readers tolerate torn
// values). On the line before (or on) a plain access it suppresses
// that site; on a field declaration it exempts the field everywhere,
// including from the exported fact.
//
// Creating values is fine: composite literals and zero-value var
// declarations of atomic-bearing types are not copies of live state
// and are never flagged.
package atomdisc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
)

// AtomicFieldsFact lists the exported fields of this package's
// exported struct types whose addresses are passed to sync/atomic
// functions, keyed "TypeName.field". Importing packages flag their own
// plain accesses to these fields. Fields declared //bertha:racy are
// excluded.
type AtomicFieldsFact struct {
	Fields []string
}

// AFact marks AtomicFieldsFact as a fact type.
func (*AtomicFieldsFact) AFact() {}

// Analyzer is the atomdisc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomdisc",
	Doc:       "check atomic-access discipline: no mixed atomic/plain field access, aligned 64-bit atomics, no by-value copies of atomic-bearing structs",
	Run:       run,
	FactTypes: []analysis.Fact{(*AtomicFieldsFact)(nil)},
}

// sizes32 computes layout under the strictest supported rules: on
// 386 the compiler only 32-bit-aligns uint64 fields, so any offset
// not divisible by 8 is a real fault on at least one port.
var sizes32 = types.SizesFor("gc", "386")

// plainSite is one non-atomic access to a tracked field.
type plainSite struct {
	pos   token.Pos
	fld   *types.Var
	write bool
}

type checker struct {
	pass *analysis.Pass
	ann  *analysis.Annotations

	// atomicLocal holds fields whose address this package passes to a
	// sync/atomic function; atomicAll adds fields imported via
	// AtomicFieldsFact from dependencies.
	atomicLocal map[*types.Var]bool
	atomicAll   map[*types.Var]bool

	// atomicArgs marks selector nodes inside the address argument of an
	// atomic call: they are the sanctioned access, not a plain one.
	atomicArgs map[ast.Expr]bool
	// writes marks expressions appearing as assignment targets.
	writes map[ast.Expr]bool

	plains []plainSite
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:        pass,
		ann:         analysis.CollectAnnotations(pass.Fset, pass.Files),
		atomicLocal: map[*types.Var]bool{},
		atomicAll:   map[*types.Var]bool{},
		atomicArgs:  map[ast.Expr]bool{},
		writes:      map[ast.Expr]bool{},
	}

	// Phase 1: collect atomic accesses (checking 64-bit alignment as we
	// go) and every plain field access.
	for _, f := range pass.Files {
		ast.Inspect(f, c.collect)
	}

	// Phase 2: merge imported facts, report mixed accesses, publish the
	// fact, then hunt by-value copies of atomic-bearing structs.
	for fld := range c.atomicLocal {
		c.atomicAll[fld] = true
	}
	c.importFacts()
	c.reportMixed()
	c.exportFact()
	for _, f := range pass.Files {
		ast.Inspect(f, c.copyCheck)
	}
	return nil
}

// collect is the phase-1 visitor. It runs top-down, so a CallExpr is
// seen before the selectors inside its arguments — which lets the
// atomic-argument exemption land before the plain-site walk reaches
// those selectors.
func (c *checker) collect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if name, ok := c.atomicFn(n); ok && len(n.Args) > 0 {
			c.atomicArg(n.Args[0], name, n.Pos())
		}
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			c.writes[ast.Unparen(l)] = true
		}
	case *ast.IncDecStmt:
		c.writes[ast.Unparen(n.X)] = true
	case *ast.SelectorExpr:
		if c.atomicArgs[n] {
			return true
		}
		if fld, ok := c.fieldOf(n); ok {
			c.plains = append(c.plains, plainSite{pos: n.Pos(), fld: fld, write: c.writes[n]})
		}
	}
	return true
}

// atomicFn reports whether call is a package-level sync/atomic
// function (AddInt64, LoadUint32, CompareAndSwapInt64, ...), as
// opposed to a method of the typed atomics, and returns its name.
func (c *checker) atomicFn(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", false
	}
	return fn.Name(), true
}

// atomicArg processes the address argument of a function-style atomic:
// records the field as atomically accessed, exempts the selector chain
// from plain-site collection, and checks 64-bit alignment.
func (c *checker) atomicArg(arg ast.Expr, fnName string, callPos token.Pos) {
	addr, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || addr.Op != token.AND {
		return
	}
	sel, ok := ast.Unparen(addr.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fld, ok := c.fieldOf(sel)
	if !ok {
		return
	}
	ast.Inspect(sel, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok {
			c.atomicArgs[s] = true
		}
		return true
	})
	c.atomicLocal[fld] = true

	if strings.HasSuffix(fnName, "Int64") || strings.HasSuffix(fnName, "Uint64") {
		if off, known := c.chainOffset(sel); known && off%8 != 0 {
			c.pass.Reportf(callPos, "atomic-align",
				"atomic.%s on %s: field sits at offset %d under 32-bit layout, which is not 64-bit aligned — make it the first field or pad the struct",
				fnName, fieldLabel(fld), off)
		}
	}
}

// fieldOf resolves a selector to the struct field it reads or writes.
func (c *checker) fieldOf(sel *ast.SelectorExpr) (*types.Var, bool) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return nil, false
	}
	fld, ok := selection.Obj().(*types.Var)
	return fld, ok
}

// chainOffset returns the byte offset of the field denoted by sel from
// the start of its allocation under 32-bit layout rules. Pointer
// indirections reset the offset: the runtime 64-bit-aligns the first
// word of every allocation and every variable, so only the in-struct
// offsets between the last indirection and the field matter.
func (c *checker) chainOffset(sel *ast.SelectorExpr) (int64, bool) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return 0, false
	}
	var base int64
	recv := selection.Recv()
	if _, viaPtr := recv.Underlying().(*types.Pointer); !viaPtr {
		// Value chain: the base expression's own offset accumulates.
		// Non-selector bases (locals, globals, allocation results) start
		// a fresh 64-bit-aligned span, so they contribute zero.
		if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			if off, ok := c.chainOffset(inner); ok {
				base = off
			}
		}
	}
	t := recv
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	off := base
	for _, idx := range selection.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		off += sizes32.Offsetsof(fields)[idx]
		ft := st.Field(idx).Type()
		if p, ok := ft.Underlying().(*types.Pointer); ok {
			// Promotion through an embedded pointer: fresh allocation.
			off = 0
			t = p.Elem()
		} else {
			t = ft
		}
	}
	return off, true
}

// reportMixed flags every plain access to a field that is atomically
// accessed somewhere — here, or (via facts) in a dependency.
func (c *checker) reportMixed() {
	for _, site := range c.plains {
		if !c.atomicAll[site.fld] {
			continue
		}
		if c.ann.RacyAt(site.pos) {
			continue
		}
		if c.racyField(site.fld) {
			continue
		}
		kind := "read"
		if site.write {
			kind = "write"
		}
		c.pass.Reportf(site.pos, "mixed-access",
			"field %s is updated with sync/atomic elsewhere; this plain %s races with those updates — use the matching atomic op or mark the field //bertha:racy <why>",
			fieldLabel(site.fld), kind)
	}
}

// racyField reports whether the field's declaration carries a
// //bertha:racy annotation. Only decidable for fields declared in the
// package under analysis; imported racy fields were already excluded
// from the dependency's fact.
func (c *checker) racyField(fld *types.Var) bool {
	return fld.Pkg() == c.pass.Pkg && c.ann.RacyAt(fld.Pos())
}

// exportFact publishes the atomically accessed exported fields of
// exported struct types so importing packages can police their own
// plain accesses.
func (c *checker) exportFact() {
	var keys []string
	scope := c.pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fld := st.Field(i)
			if fld.Exported() && c.atomicLocal[fld] && !c.racyField(fld) {
				keys = append(keys, name+"."+fld.Name())
			}
		}
	}
	if len(keys) == 0 {
		return
	}
	sort.Strings(keys)
	c.pass.ExportPackageFact(&AtomicFieldsFact{Fields: keys})
}

// importFacts resolves dependency AtomicFieldsFact entries back to
// field objects and merges them into the tracked set.
func (c *checker) importFacts() {
	for _, pf := range c.pass.AllPackageFacts() {
		fact, ok := pf.Fact.(*AtomicFieldsFact)
		if !ok || pf.Path == c.pass.Pkg.Path() {
			continue
		}
		pkg := findImport(c.pass.Pkg, pf.Path)
		if pkg == nil {
			continue
		}
		for _, key := range fact.Fields {
			typeName, fieldName, ok := strings.Cut(key, ".")
			if !ok {
				continue
			}
			tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if fld := st.Field(i); fld.Name() == fieldName {
					c.atomicAll[fld] = true
				}
			}
		}
	}
}

// findImport walks the import graph for the package with the given
// path.
func findImport(root *types.Package, path string) *types.Package {
	seen := map[*types.Package]bool{}
	var walk func(*types.Package) *types.Package
	walk = func(p *types.Package) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if found := walk(imp); found != nil {
				return found
			}
		}
		return nil
	}
	return walk(root)
}

// ---- atomic-copy ----

// copyCheck is the phase-2 visitor hunting by-value copies of
// atomic-bearing structs.
func (c *checker) copyCheck(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncDecl:
		if n.Recv == nil || len(n.Recv.List) == 0 {
			return true
		}
		rt := c.pass.TypesInfo.TypeOf(n.Recv.List[0].Type)
		if rt == nil {
			return true
		}
		if _, isPtr := rt.Underlying().(*types.Pointer); isPtr {
			return true
		}
		if c.bearsAtomic(rt, nil) && !c.ann.RacyAt(n.Pos()) {
			c.pass.Reportf(n.Recv.List[0].Type.Pos(), "atomic-copy",
				"method %s has a value receiver, but %s carries atomic state; every call copies it and races with concurrent writers — use a pointer receiver",
				n.Name.Name, typeLabel(rt))
		}
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
				continue // `_ = x` discards, it does not copy live state
			}
			c.copySite(rhs)
		}
	case *ast.CallExpr:
		if _, isAtomic := c.atomicFn(n); isAtomic {
			return true
		}
		for _, arg := range n.Args {
			c.copySite(arg)
		}
	}
	return true
}

// copySite flags x if it reads an existing value of an atomic-bearing
// struct type by value. Fresh values — composite literals, calls,
// conversions — are not copies of shared state.
func (c *checker) copySite(x ast.Expr) {
	x = ast.Unparen(x)
	switch x.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	if id, ok := x.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	t := c.pass.TypesInfo.TypeOf(x)
	if t == nil {
		return
	}
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return
	}
	if !c.bearsAtomic(t, nil) {
		return
	}
	if c.ann.RacyAt(x.Pos()) {
		return
	}
	c.pass.Reportf(x.Pos(), "atomic-copy",
		"%s is copied by value but carries atomic state; the copy races with concurrent writers and its atomics go dead — pass a pointer",
		typeLabel(t))
}

// bearsAtomic reports whether t is a struct type carrying atomic
// state: a sync/atomic typed value (atomic.Int64, atomic.Value, ...),
// a field whose address feeds sync/atomic functions, or a value-
// embedded struct that does.
func (c *checker) bearsAtomic(t types.Type, seen map[types.Type]bool) bool {
	if named, ok := t.(*types.Named); ok {
		if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return true
		}
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if c.atomicAll[fld] && !c.racyField(fld) {
			return true
		}
		if c.bearsAtomic(fld.Type(), seen) {
			return true
		}
	}
	return false
}

func isBlank(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && id.Name == "_"
}

// fieldLabel renders a field as Type.field when the declaring struct
// is a named package-scope type, else pkg.field.
func fieldLabel(fld *types.Var) string {
	if pkg := fld.Pkg(); pkg != nil {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == fld {
					return name + "." + fld.Name()
				}
			}
		}
	}
	return fld.Name()
}

// typeLabel names a type compactly for diagnostics.
func typeLabel(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return fmt.Sprintf("%s", t)
}
