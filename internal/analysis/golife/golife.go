// Package golife checks goroutine lifecycle discipline: every `go`
// launch must have a provable shutdown edge. A launched body whose loop
// can run forever with no exit — no loop condition, no return, no break
// out of the loop, no `for range ch` termination-on-close — outlives
// every Close and ctx cancellation in the program. Intentional
// process-lifetime daemons are declared with `//bertha:daemon <reason>`
// on the `go` statement.
//
// Diagnostic categories:
//
//	orphan         a `go` launch whose body loops forever with no exit
//	               edge and no //bertha:daemon declaration
//	waitgroup      sync.WaitGroup misuse around a launch: Add inside
//	               the launched goroutine (races with Wait), or a
//	               local WaitGroup whose Done has no prior Add
//	spawn-in-loop  an unbounded loop calls a function known (via facts)
//	               to launch a daemon goroutine per call, so the
//	               goroutine population grows without bound
//
// The analyzer exports two facts. LoopsForeverFact marks functions
// whose body contains an exit-less unbounded loop, so `go pkg.F()` in
// another package is checked like a local function literal.
// SpawnsFact records the spawn behavior of exported constructors
// (mcast.New, reliable.New, discovery.Serve, ...): how many goroutines
// a call launches and whether any is a daemon, which powers the
// spawn-in-loop check across package boundaries.
//
// Both facts see through helper wrappers via the module call graph
// (internal/analysis/callgraph): a function that synchronously calls a
// forever-looping function is itself forever (so `go runLoop()` is
// caught even when runLoop merely delegates to the loop), and a
// constructor's SpawnsFact counts the goroutines launched by the
// helpers it calls, not just its own `go` statements.
package golife

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/callgraph"
)

// LoopsForeverFact marks a function whose body contains an unbounded
// loop with no exit edge: launching it on a goroutine creates a daemon.
type LoopsForeverFact struct{}

// AFact marks LoopsForeverFact as a fact type.
func (*LoopsForeverFact) AFact() {}

// SpawnsFact records a function's goroutine spawn behavior, exported
// for constructors so callers in other packages know what a call
// launches.
type SpawnsFact struct {
	// Count is the number of `go` statements executed directly by the
	// function (not transitively).
	Count int
	// Daemon reports whether any launched goroutine loops forever with
	// no shutdown edge (after //bertha:daemon declarations).
	Daemon bool
}

// AFact marks SpawnsFact as a fact type.
func (*SpawnsFact) AFact() {}

// Analyzer is the golife pass.
var Analyzer = &analysis.Analyzer{
	Name:      "golife",
	Doc:       "require a provable shutdown edge for every launched goroutine and sane WaitGroup pairing",
	Run:       run,
	FactTypes: []analysis.Fact{(*LoopsForeverFact)(nil), (*SpawnsFact)(nil)},
}

func run(pass *analysis.Pass) error {
	ann := analysis.CollectAnnotations(pass.Fset, pass.Files)
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	g := callgraph.Build(pass)
	// Export LoopsForeverFact for every declared function with an
	// exit-less unbounded loop (callers may `go` them from anywhere) —
	// and, via the call graph, for every wrapper that synchronously
	// calls one: the wrapper never returns either.
	foreverHere := map[*types.Func]bool{}
	for fn, fd := range decls {
		if fd.Body != nil && hasForeverLoop(fd.Body) {
			foreverHere[fn] = true
		}
	}
	foreverFact := map[*types.Func]bool{}
	calleeForever := func(fn *types.Func) bool {
		if foreverHere[fn] {
			return true
		}
		if cached, ok := foreverFact[fn]; ok {
			return cached
		}
		var lf LoopsForeverFact
		got := fn.Pkg() != pass.Pkg && pass.ImportObjectFact(fn, &lf)
		foreverFact[fn] = got
		return got
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if foreverHere[n.Fn] {
				continue
			}
			for _, s := range n.Sites {
				if s.Go || s.Iface {
					continue
				}
				if calleeForever(s.Callee) {
					foreverHere[n.Fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn := range foreverHere {
		pass.ExportObjectFact(fn, &LoopsForeverFact{})
	}

	w := &walker{pass: pass, ann: ann, decls: decls, forever: foreverHere}
	direct := map[*types.Func]spawnInfo{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			spawns, daemon := w.checkFunc(fd)
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				direct[fn] = spawnInfo{count: spawns, daemon: daemon}
			}
		}
	}
	// Propagate spawn behavior bottom-up over the call graph so a
	// constructor that delegates launching to helpers still exports an
	// honest SpawnsFact. An SCC is treated as one unit (recursive
	// helpers share a combined summary).
	trans := map[*types.Func]spawnInfo{}
	for _, scc := range g.SCCs() {
		var total spawnInfo
		for _, n := range scc {
			d := direct[n.Fn]
			total.count += d.count
			total.daemon = total.daemon || d.daemon
			for _, s := range n.Sites {
				if s.Go || s.Iface {
					continue
				}
				if t, ok := trans[s.Callee]; ok {
					total.count += t.count
					total.daemon = total.daemon || t.daemon
				} else if s.Callee.Pkg() != pass.Pkg {
					var sf SpawnsFact
					if pass.ImportObjectFact(s.Callee, &sf) {
						total.count += sf.Count
						total.daemon = total.daemon || sf.Daemon
					}
				}
			}
		}
		if total.count > 1000 {
			total.count = 1000 // saturate: recursion multiplies sites
		}
		for _, n := range scc {
			trans[n.Fn] = total
		}
	}
	for fn, t := range trans {
		if t.count > 0 {
			pass.ExportObjectFact(fn, &SpawnsFact{Count: t.count, Daemon: t.daemon})
		}
	}
	return nil
}

// spawnInfo is a function's spawn summary during propagation.
type spawnInfo struct {
	count  int
	daemon bool
}

type walker struct {
	pass    *analysis.Pass
	ann     *analysis.Annotations
	decls   map[*types.Func]*ast.FuncDecl
	forever map[*types.Func]bool
	// daemonSpawner marks functions that launch a daemon goroutine
	// (annotated or not), for the SpawnsFact export.
}

// checkFunc checks every `go` statement in one declared function and
// returns its direct spawn count and whether any launch is a daemon.
func (w *walker) checkFunc(fd *ast.FuncDecl) (int, bool) {
	spawns := 0
	daemon := false
	// WaitGroup bookkeeping: local wg variables with an Add before the
	// current position.
	added := map[*types.Var]bool{}
	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.CallExpr:
			if v := w.wgMethodRecv(n, "Add"); v != nil {
				added[v] = true
			}
		case *ast.GoStmt:
			spawns++
			if w.checkGo(n, added) {
				daemon = true
			}
			// Still scan the launched body for nested launches'
			// bookkeeping (Adds inside don't count for outer Done
			// pairing, so don't record them in `added`).
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || m == nil {
				return m == n
			}
			scan(m)
			return false
		})
	}
	for _, s := range fd.Body.List {
		scan(s)
	}
	// spawn-in-loop: inside an unbounded exit-less loop, a call to a
	// function whose SpawnsFact (or local analysis) says every call
	// launches a daemon goroutine.
	w.checkSpawnInLoop(fd)
	return spawns, daemon
}

// checkGo checks one `go` statement; it reports whether the launch is a
// daemon (loops forever with no exit), annotated or not.
func (w *walker) checkGo(g *ast.GoStmt, added map[*types.Var]bool) bool {
	daemon := false
	var body *ast.BlockStmt
	isLit := false
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		isLit = true
	default:
		if fn := calleeFunc(w.pass.TypesInfo, g.Call); fn != nil {
			// The forever closure already sees through local wrapper
			// chains; check it before falling back to the decl body.
			if w.forever[fn] {
				daemon = true
			} else if fd, ok := w.decls[fn]; ok && fd.Body != nil {
				body = fd.Body
			} else {
				var lf LoopsForeverFact
				if w.pass.ImportObjectFact(fn, &lf) {
					daemon = true
				}
			}
		}
	}
	if body != nil && hasForeverLoop(body) {
		daemon = true
	}
	if daemon && !w.ann.DaemonAt(g.Pos()) {
		w.pass.Reportf(g.Pos(), "orphan",
			"goroutine launched here loops forever with no shutdown edge (no ctx/quit case, loop condition, or exit); add one or declare //bertha:daemon <reason>")
	}
	// WaitGroup pairing is only judged for literal launches: with
	// `go worker(wg)` the Add conventionally lives in the caller, and
	// worker's own body cannot see it.
	if isLit {
		w.checkWaitGroup(g, body, added)
	}
	return daemon
}

// checkWaitGroup flags Add inside the launched goroutine and Done on a
// local WaitGroup that was never Added before the launch.
func (w *walker) checkWaitGroup(g *ast.GoStmt, body *ast.BlockStmt, added map[*types.Var]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if v := w.wgMethodRecv(call, "Add"); v != nil {
			w.pass.Reportf(call.Pos(), "waitgroup",
				"WaitGroup.Add inside the launched goroutine races with Wait; call Add before the go statement")
		}
		if v := w.wgMethodRecv(call, "Done"); v != nil && isLocalVar(v) && !added[v] {
			w.pass.Reportf(call.Pos(), "waitgroup",
				"goroutine calls %s.Done but no %s.Add precedes the launch in this function", v.Name(), v.Name())
		}
		return true
	})
}

// wgMethodRecv returns the sync.WaitGroup variable when call is
// wg.<name>(...) on an identifier receiver, nil otherwise.
func (w *walker) wgMethodRecv(call *ast.CallExpr, name string) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !isWaitGroup(v.Type()) {
		return nil
	}
	return v
}

// isWaitGroup reports whether t is sync.WaitGroup (or a pointer to it).
func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isLocalVar reports whether v is function-local (not a field or
// package-level variable), where the never-Added check is sound.
func isLocalVar(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() != v.Pkg().Scope()
}

// checkSpawnInLoop reports calls, inside an exit-less unbounded loop,
// to functions that launch a daemon goroutine per call.
func (w *walker) checkSpawnInLoop(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil || hasLoopExit(loop.Body) {
			return true
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(w.pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var sf SpawnsFact
			if fn.Pkg() != w.pass.Pkg {
				if !w.pass.ImportObjectFact(fn, &sf) || !sf.Daemon {
					return true
				}
			} else {
				return true // same-package daemons already flagged at their go site
			}
			w.pass.Reportf(call.Pos(), "spawn-in-loop",
				"%s.%s launches a daemon goroutine per call and runs inside an unbounded loop; the goroutine population grows without bound",
				fn.Pkg().Name(), fn.Name())
			return true
		})
		return true
	})
}

// hasForeverLoop reports whether body contains an unbounded for-loop
// with no exit edge, outside nested function literals.
func hasForeverLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !hasLoopExit(n.Body) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// hasLoopExit reports whether a loop body can leave the loop: an
// unlabeled break at loop level, any labeled break or goto, or a
// return. Unlabeled breaks inside nested for/range/switch/select
// target those statements, not our loop.
func hasLoopExit(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || found {
			return
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
			return
		case *ast.BranchStmt:
			switch n.Tok {
			case token.GOTO:
				found = true
			case token.BREAK:
				found = true // unlabeled at this level targets our loop
			case token.CONTINUE:
			}
			return
		case *ast.ForStmt, *ast.RangeStmt:
			// A nested loop: its unlabeled breaks are its own, but a
			// return or labeled break inside still exits ours.
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.ReturnStmt:
					found = true
				case *ast.BranchStmt:
					if m.Label != nil && (m.Tok == token.BREAK || m.Tok == token.GOTO) {
						found = true
					}
				case *ast.FuncLit:
					return false
				}
				return !found
			})
			return
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			// Unlabeled break targets the switch/select; returns and
			// labeled breaks inside still exit the loop.
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.ReturnStmt:
					found = true
				case *ast.BranchStmt:
					if m.Label != nil && (m.Tok == token.BREAK || m.Tok == token.GOTO) {
						found = true
					}
					if m.Tok == token.GOTO {
						found = true
					}
				case *ast.FuncLit:
					return false
				}
				return !found
			})
			return
		case *ast.FuncLit:
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n || m == nil {
				return m == n
			}
			walk(m)
			return false
		})
	}
	for _, s := range body.List {
		walk(s)
	}
	return found
}

// calleeFunc resolves the called function when statically known.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
