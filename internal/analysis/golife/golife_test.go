package golife_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/golife"
)

func TestGolife(t *testing.T) {
	analysistest.Run(t, "golife_a", golife.Analyzer, "golife_dep")
}
