// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A want comment names one or more expected diagnostics for its line:
//
//	b.Release() // want `double-release`
//	m[k] = b    // want "transfer" "second expectation"
//
// Every diagnostic must match a want on its line and every want must be
// matched by a diagnostic, or the test fails.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/load"
)

// Run loads internal/analysis/testdata/src/<dir> and applies a to it.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgDir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", dir)
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := load.Dir(pkgDir, "testdata/"+dir, exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := lineKey(pos)
		text := fmt.Sprintf("[%s/%s] %s", d.Analyzer, d.Category, d.Message)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(text) {
				wants[key][i] = nil // each want matches one diagnostic
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, text)
		}
	}
	for key, res := range wants {
		for _, w := range res {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q did not fire", key, w)
			}
		}
	}
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants indexes // want comments by file:line.
func collectWants(t *testing.T, pkg *load.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := lineKey(pos)
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}
