// Package analysistest runs an analyzer over a testdata package and
// checks its diagnostics against `// want "regexp"` comments, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A want comment names one or more expected diagnostics for its line:
//
//	b.Release() // want `double-release`
//	m[k] = b    // want "transfer" "second expectation"
//
// Every diagnostic must match a want on its line and every want must be
// matched by a diagnostic, or the test fails.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/load"
)

// Run loads internal/analysis/testdata/src/<dir> and applies a to it.
//
// deps names other testdata corpora to load and analyze first, in
// order, sharing one fact store: facts their analysis exports are
// visible to the main corpus, and the main corpus may import them by
// their synthesized path ("testdata/<dep>"). `// want` expectations are
// checked in the dependency corpora too.
func Run(t *testing.T, dir string, a *analysis.Analyzer, deps ...string) {
	t.Helper()
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	facts := analysis.NewFactStore()
	loader := load.NewLoader(exports)
	for _, dep := range append(deps, dir) {
		pkgDir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", dep)
		pkg, err := loader.Dir(pkgDir, "testdata/"+dep)
		if err != nil {
			t.Fatal(err)
		}
		loader.Add(pkg.ImportPath, pkg.Types)
		diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, facts)
		if err != nil {
			t.Fatal(err)
		}
		checkWants(t, pkg, diags)
	}
}

// checkWants matches diagnostics against the package's `// want`
// expectations, failing on both unexpected and missing findings.
func checkWants(t *testing.T, pkg *load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := lineKey(pos)
		text := fmt.Sprintf("[%s/%s] %s", d.Analyzer, d.Category, d.Message)
		matched := false
		for i, w := range wants[key] {
			if w != nil && w.MatchString(text) {
				wants[key][i] = nil // each want matches one diagnostic
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, text)
		}
	}
	for key, res := range wants {
		for _, w := range res {
			if w != nil {
				t.Errorf("%s: expected diagnostic matching %q did not fire", key, w)
			}
		}
	}
}

func lineKey(pos token.Position) string {
	return fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// collectWants indexes // want comments by file:line.
func collectWants(t *testing.T, pkg *load.Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := lineKey(pos)
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}
