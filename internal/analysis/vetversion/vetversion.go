// Package vetversion carries the berthavet suite revision as a
// dependency-free leaf. Binaries that want to stamp the revision into
// their -version output (berthavet itself, bertha-bench) import this
// package alone, keeping the analysis framework — and its go/types
// machinery — strictly build-time: nothing under internal/analysis is
// linked into the data plane.
package vetversion

import "runtime/debug"

// Suite identifies the vet-suite rule set. Bump it whenever an
// analyzer's rules change: the go command hashes the tool's -V=full
// output into its build cache key, so a bump re-vets every package.
const Suite = "berthavet-2026.08.8"

// String renders "<module version> <suite revision>", e.g.
// "v0.3.0 berthavet-2026.08.3". The module version is "(devel)" for
// plain `go build` working-tree binaries.
func String() string {
	mod := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		mod = bi.Main.Version
	}
	return mod + " " + Suite
}
