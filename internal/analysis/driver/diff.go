package driver

import (
	"bufio"
	"fmt"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Changed-line filtering for `berthavet -diff <git-ref>`: findings are
// restricted to lines the diff against <git-ref> touches, so a large
// pre-existing backlog doesn't drown the findings a change introduces.
// The filter is presentation-only — every package is still fully
// analyzed (facts must flow regardless), only the report is cut down.

// ChangedLines maps slash-separated file paths (as git prints them,
// relative to the repository root) to the set of changed line numbers
// in the new version of each file.
type ChangedLines map[string]map[int]bool

// ParseUnifiedDiff extracts the changed new-file lines from a unified
// diff produced with zero context (`git diff -U0`). Deleted files and
// pure-deletion hunks contribute nothing: there is no new line to
// anchor a finding to.
func ParseUnifiedDiff(r io.Reader) (ChangedLines, error) {
	changed := ChangedLines{}
	var cur string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "+++ "):
			name := strings.TrimPrefix(line, "+++ ")
			if i := strings.IndexByte(name, '\t'); i >= 0 {
				name = name[:i]
			}
			if name == "/dev/null" {
				cur = ""
				continue
			}
			cur = strings.TrimPrefix(name, "b/")
		case strings.HasPrefix(line, "@@ "):
			if cur == "" {
				continue
			}
			start, count, err := parseHunkNewRange(line)
			if err != nil {
				return nil, err
			}
			for i := 0; i < count; i++ {
				if changed[cur] == nil {
					changed[cur] = map[int]bool{}
				}
				changed[cur][start+i] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading diff: %w", err)
	}
	return changed, nil
}

// parseHunkNewRange pulls the new-file range out of a hunk header like
// "@@ -12,0 +13,4 @@ func foo" — start 13, count 4. An omitted count
// means 1; count 0 is a pure deletion.
func parseHunkNewRange(header string) (start, count int, err error) {
	fields := strings.Fields(header)
	for _, f := range fields[1:] {
		if !strings.HasPrefix(f, "+") {
			continue
		}
		spec := strings.TrimPrefix(f, "+")
		count = 1
		if i := strings.IndexByte(spec, ','); i >= 0 {
			if count, err = strconv.Atoi(spec[i+1:]); err != nil {
				return 0, 0, fmt.Errorf("bad hunk header %q: %w", header, err)
			}
			spec = spec[:i]
		}
		if start, err = strconv.Atoi(spec); err != nil {
			return 0, 0, fmt.Errorf("bad hunk header %q: %w", header, err)
		}
		return start, count, nil
	}
	return 0, 0, fmt.Errorf("hunk header %q has no new-file range", header)
}

// Contains reports whether the position (with Filename relative to
// root, any separator) landed on a changed line.
func (c ChangedLines) Contains(root string, pos token.Position) bool {
	rel := pos.Filename
	if filepath.IsAbs(rel) {
		r, err := filepath.Rel(root, rel)
		if err != nil {
			return false
		}
		rel = r
	}
	return c[filepath.ToSlash(rel)][pos.Line]
}

// gitChangedLines shells out to git for the -U0 diff against ref.
func gitChangedLines(root, ref string) (ChangedLines, error) {
	cmd := exec.Command("git", "-C", root, "diff", "-U0", ref, "--")
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff %s: %s", ref, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff %s: %w", ref, err)
	}
	return ParseUnifiedDiff(strings.NewReader(string(out)))
}
