package driver_test

import (
	"go/token"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/driver"
)

const syntheticDiff = `diff --git a/internal/transport/udp.go b/internal/transport/udp.go
index 1111111..2222222 100644
--- a/internal/transport/udp.go
+++ b/internal/transport/udp.go
@@ -40,0 +41,3 @@ func (c *Conn) SendBuf(ctx context.Context, b *wire.Buf) error {
+	if b.Len() > maxDatagram {
+		return errTooBig
+	}
@@ -88 +91 @@ func (c *Conn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
+	b := wire.NewBuf(headroom, maxDatagram)
diff --git a/internal/chunnels/gone.go b/internal/chunnels/gone.go
deleted file mode 100644
index 3333333..0000000
--- a/internal/chunnels/gone.go
+++ /dev/null
@@ -1,10 +0,0 @@
-package chunnels
diff --git a/README.md b/README.md
index 4444444..5555555 100644
--- a/README.md
+++ b/README.md
@@ -12,2 +12,0 @@ Title
`

// TestParseUnifiedDiff pins the -U0 hunk arithmetic: added ranges map
// to exact new-file lines, omitted counts mean one line, deleted files
// and pure-deletion hunks contribute nothing.
func TestParseUnifiedDiff(t *testing.T) {
	changed, err := driver.ParseUnifiedDiff(strings.NewReader(syntheticDiff))
	if err != nil {
		t.Fatal(err)
	}
	udp := changed["internal/transport/udp.go"]
	for _, line := range []int{41, 42, 43, 91} {
		if !udp[line] {
			t.Errorf("udp.go line %d missing from changed set %v", line, udp)
		}
	}
	if len(udp) != 4 {
		t.Errorf("udp.go changed set has %d lines, want 4: %v", len(udp), udp)
	}
	if _, ok := changed["internal/chunnels/gone.go"]; ok {
		t.Error("deleted file must not appear in the changed set")
	}
	if _, ok := changed["README.md"]; ok {
		t.Error("pure-deletion hunk must not produce changed lines")
	}
}

// TestChangedLinesContains pins the position matching used by -diff:
// absolute filenames resolve against the module root, line must match.
func TestChangedLinesContains(t *testing.T) {
	changed, err := driver.ParseUnifiedDiff(strings.NewReader(syntheticDiff))
	if err != nil {
		t.Fatal(err)
	}
	root := "/work/bertha"
	hit := token.Position{Filename: "/work/bertha/internal/transport/udp.go", Line: 42}
	if !changed.Contains(root, hit) {
		t.Errorf("position %v should be in the changed set", hit)
	}
	missLine := token.Position{Filename: "/work/bertha/internal/transport/udp.go", Line: 44}
	if changed.Contains(root, missLine) {
		t.Errorf("line 44 was not changed; filter must drop it")
	}
	missFile := token.Position{Filename: "/work/bertha/internal/transport/pipe.go", Line: 42}
	if changed.Contains(root, missFile) {
		t.Errorf("untouched file matched the changed set")
	}
}
