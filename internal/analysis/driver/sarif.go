package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
)

// SARIF 2.1.0 output for the -sarif flag: the minimal subset GitHub
// code scanning consumes via codeql-action/upload-sarif. One run, one
// rule per analyzer/category pair actually hit, artifact URIs relative
// to the module root so the upload anchors annotations to the checkout.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// sarifFinding pairs a diagnostic with its resolved file position.
// End is the resolved range end when the diagnostic carries one
// (Diagnostic.End); a zero End means point location only.
type sarifFinding struct {
	Pos  token.Position
	End  token.Position
	Diag analysis.Diagnostic
}

// suiteRules enumerates every diagnostic rule the suite can emit, in
// stable order, so the SARIF rule table always describes the whole
// suite — including fact-backed interprocedural rules like
// lockdisc/deadlock (LockOrderFact over the CallGraphFact graph) —
// rather than only the rules a particular run happened to hit.
var suiteRules = []string{
	"bufown/leak",
	"bufown/double-release",
	"bufown/use-after-release",
	"bufown/transfer",
	"overhead/exceeds",
	"overhead/nonconst",
	"overhead/unbounded",
	"lockdisc/across-send",
	"lockdisc/chan-send",
	"lockdisc/order",
	"lockdisc/double-lock",
	"lockdisc/deadlock",
	"ctxflow/background",
	"ctxflow/dropped-ctx",
	"ctxflow/timer-leak",
	"golife/orphan",
	"golife/waitgroup",
	"golife/spawn-in-loop",
	"speccheck/dup-type",
	"speccheck/empty-branch",
	"speccheck/empty-type",
	"speccheck/scope",
	"speccheck/too-deep",
	"speccheck/unknown-type",
	"atomdisc/mixed-access",
	"atomdisc/atomic-align",
	"atomdisc/atomic-copy",
	"batchcontract/tail-leak",
	"batchcontract/sent-miscount",
	"batchcontract/recv-partial",
	"batchcontract/use-after-send",
}

// analyzerDocs maps analyzer name to the first sentence of its Doc,
// used as the SARIF rule description.
func analyzerDocs() map[string]string {
	docs := make(map[string]string, len(Analyzers))
	for _, a := range Analyzers {
		doc := a.Doc
		if i := strings.IndexAny(doc, ".\n"); i >= 0 {
			doc = doc[:i]
		}
		docs[a.Name] = doc
	}
	return docs
}

// region renders a finding's location: always the start line/column,
// plus the end of the diagnostic's source range when one was reported,
// so code-scanning annotations underline the construct rather than a
// single character. A same-position end is dropped as noise.
func region(f sarifFinding) sarifRegion {
	r := sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column}
	if f.End.Line > 0 && f.End.Filename == f.Pos.Filename &&
		(f.End.Line > f.Pos.Line || (f.End.Line == f.Pos.Line && f.End.Column > f.Pos.Column)) {
		r.EndLine = f.End.Line
		r.EndColumn = f.End.Column
	}
	return r
}

// writeSARIF renders the findings as one SARIF 2.1.0 document. Paths
// are made relative to root (the module root) where possible; the suite
// treats every finding as an error because the merge gate does.
func writeSARIF(w io.Writer, root string, findings []sarifFinding) error {
	docs := analyzerDocs()
	ruleIndex := map[string]int{}
	var rules []sarifRule
	addRule := func(id, analyzer string) int {
		idx := len(rules)
		ruleIndex[id] = idx
		desc := docs[analyzer]
		if desc == "" {
			desc = id
		}
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: desc},
		})
		return idx
	}
	for _, id := range suiteRules {
		addRule(id, id[:strings.IndexByte(id, '/')])
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		id := f.Diag.Analyzer + "/" + f.Diag.Category
		idx, ok := ruleIndex[id]
		if !ok {
			idx = addRule(id, f.Diag.Analyzer)
		}
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(root, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:    id,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: f.Diag.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: region(f),
				},
			}},
		})
	}
	if rules == nil {
		rules = []sarifRule{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:    "berthavet",
				Version: Version(),
				Rules:   rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&log); err != nil {
		return fmt.Errorf("encoding SARIF: %w", err)
	}
	return nil
}
