package driver_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/driver"
	"github.com/bertha-net/bertha/internal/analysis/load"
)

// TestRepositoryClean is the merge gate in test form: the entire module
// must produce zero diagnostics. If this fails, either fix the finding
// or annotate an intentional transfer (see DESIGN.md "Statically-checked
// invariants").
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks every package")
	}
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("berthavet ./... = exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSuiteComplete pins the analyzer roster TestRepositoryClean runs:
// dropping an analyzer from the suite must not silently weaken the
// merge gate.
func TestSuiteComplete(t *testing.T) {
	want := []string{"callgraph", "bufown", "overhead", "lockdisc", "ctxflow", "golife", "speccheck", "atomdisc", "batchcontract"}
	have := map[string]bool{}
	for _, a := range driver.Analyzers {
		have[a.Name] = true
	}
	for _, name := range want {
		if !have[name] {
			t.Errorf("analyzer %q missing from driver.Analyzers", name)
		}
	}
	if len(driver.Analyzers) != len(want) {
		t.Errorf("driver.Analyzers has %d analyzers, want %d", len(driver.Analyzers), len(want))
	}
}

// TestSeededLeakFailsTheGate proves the CI job would catch a
// reintroduced Buf leak: the seeded_leak corpus contains exactly the
// error-path leak PR 1 was prone to, and the driver must reject it.
func TestSeededLeakFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "seeded_leak")
	pkg, err := load.Dir(dir, "testdata/seeded_leak", exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("seeded Buf leak produced no diagnostics; the CI gate is toothless")
	}
	leak := false
	for _, d := range diags {
		if d.Analyzer == "bufown" && d.Category == "leak" {
			leak = true
		}
	}
	if !leak {
		t.Errorf("expected a bufown/leak diagnostic, got: %+v", diags)
	}
}

// TestSeededOrphanFailsTheGate proves the gate catches a goroutine with
// no shutdown edge: the seeded_orphan corpus launches a receive loop
// with no quit channel, ctx.Done arm, or closeable range — golife must
// reject it.
func TestSeededOrphanFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "seeded_orphan")
	pkg, err := load.Dir(dir, "testdata/seeded_orphan", exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	orphan := false
	for _, d := range diags {
		if d.Analyzer == "golife" && d.Category == "orphan" {
			orphan = true
		}
	}
	if !orphan {
		t.Errorf("expected a golife/orphan diagnostic, got: %+v", diags)
	}
}

// TestSeededMixedAtomicFailsTheGate proves the gate catches a mixed
// atomic/plain field access: the seeded_mixedatomic corpus increments
// a counter atomically on the datapath but snapshots it with a plain
// load — atomdisc must reject it.
func TestSeededMixedAtomicFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "seeded_mixedatomic")
	pkg, err := load.Dir(dir, "testdata/seeded_mixedatomic", exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	mixed := false
	for _, d := range diags {
		if d.Analyzer == "atomdisc" && d.Category == "mixed-access" {
			mixed = true
		}
	}
	if !mixed {
		t.Errorf("expected an atomdisc/mixed-access diagnostic, got: %+v", diags)
	}
}

// TestSeededTailLeakFailsTheGate proves the gate catches both batch
// contract clauses: the seeded_tailleak corpus abandons the unsent
// tail on a mid-burst failure and miscounts Sent against the released
// suffix — batchcontract must reject both.
func TestSeededTailLeakFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "seeded_tailleak")
	pkg, err := load.Dir(dir, "testdata/seeded_tailleak", exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	var leak, miscount bool
	for _, d := range diags {
		if d.Analyzer == "batchcontract" && d.Category == "tail-leak" {
			leak = true
		}
		if d.Analyzer == "batchcontract" && d.Category == "sent-miscount" {
			miscount = true
		}
	}
	if !leak {
		t.Errorf("expected a batchcontract/tail-leak diagnostic, got: %+v", diags)
	}
	if !miscount {
		t.Errorf("expected a batchcontract/sent-miscount diagnostic, got: %+v", diags)
	}
}

// TestSeededHelperLeakFailsTheGate proves summary inference has teeth:
// the seeded_helperleak corpus drops an owned Buf after handing it to
// an unannotated read-only helper. Only the inferred borrow summary
// keeps ownership with the caller, so only with inference does bufown
// see the leak.
func TestSeededHelperLeakFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "seeded_helperleak")
	pkg, err := load.Dir(dir, "testdata/seeded_helperleak", exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	leak := false
	for _, d := range diags {
		if d.Analyzer == "bufown" && d.Category == "leak" {
			leak = true
		}
	}
	if !leak {
		t.Errorf("expected a bufown/leak diagnostic through the unannotated helper, got: %+v", diags)
	}
}

// TestSeededDeadlockFailsTheGate proves the gate catches a lock-order
// cycle that exists only across two packages: the dependency holds its
// lock across an interface call it cannot resolve, and the importer
// both implements that interface (locking its own mutex) and calls back
// into the dependency with its mutex held. Each package is clean in
// isolation; the composition deadlocks.
func TestSeededDeadlockFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	loader := load.NewLoader(exports)
	facts := analysis.NewFactStore()
	var all []analysis.Diagnostic
	for _, name := range []string{"seeded_deadlock_dep", "seeded_deadlock"} {
		dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", name)
		pkg, err := loader.Dir(dir, "testdata/"+name)
		if err != nil {
			t.Fatal(err)
		}
		loader.Add(pkg.ImportPath, pkg.Types)
		diags, err := driver.RunPackageFacts(pkg, facts)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, diags...)
	}
	deadlock := false
	for _, d := range all {
		if d.Analyzer == "lockdisc" && d.Category == "deadlock" {
			deadlock = true
			if !strings.Contains(d.Message, "Table.mu") || !strings.Contains(d.Message, "Registry.mu") {
				t.Errorf("deadlock witness names the wrong locks: %s", d.Message)
			}
		}
	}
	if !deadlock {
		t.Errorf("expected a lockdisc/deadlock diagnostic for the cross-package cycle, got: %+v", all)
	}
}

// TestVersionFlag pins the -version contract shared with bertha-bench:
// module version plus vet-suite revision.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "berthavet ") || !strings.Contains(out, "berthavet-20") {
		t.Errorf("-version output %q missing tool name or suite revision", out)
	}
}
