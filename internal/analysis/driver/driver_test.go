package driver_test

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/driver"
	"github.com/bertha-net/bertha/internal/analysis/load"
)

// TestRepositoryClean is the merge gate in test form: the entire module
// must produce zero diagnostics. If this fails, either fix the finding
// or annotate an intentional transfer (see DESIGN.md "Statically-checked
// invariants").
func TestRepositoryClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks every package")
	}
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("berthavet ./... = exit %d, want 0\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSeededLeakFailsTheGate proves the CI job would catch a
// reintroduced Buf leak: the seeded_leak corpus contains exactly the
// error-path leak PR 1 was prone to, and the driver must reject it.
func TestSeededLeakFailsTheGate(t *testing.T) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "seeded_leak")
	pkg, err := load.Dir(dir, "testdata/seeded_leak", exports)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := driver.RunPackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("seeded Buf leak produced no diagnostics; the CI gate is toothless")
	}
	leak := false
	for _, d := range diags {
		if d.Analyzer == "bufown" && d.Category == "leak" {
			leak = true
		}
	}
	if !leak {
		t.Errorf("expected a bufown/leak diagnostic, got: %+v", diags)
	}
}

// TestVersionFlag pins the -version contract shared with bertha-bench:
// module version plus vet-suite revision.
func TestVersionFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := driver.Main([]string{"-version"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-version exit %d: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.HasPrefix(out, "berthavet ") || !strings.Contains(out, "berthavet-20") {
		t.Errorf("-version output %q missing tool name or suite revision", out)
	}
}
