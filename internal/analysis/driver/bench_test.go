package driver_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/driver"
	"github.com/bertha-net/bertha/internal/analysis/load"
)

// TestDepWaves pins the wave invariant the parallel driver relies on:
// every package's transitive in-set dependencies live in strictly
// earlier waves, so wave members never race on each other's facts.
func TestDepWaves(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks every package")
	}
	pkgs := loadModule(t)
	waves := driver.DepWaves(driver.SortDeps(pkgs))
	waveOf := map[string]int{}
	for i, wave := range waves {
		for _, p := range wave {
			waveOf[p.ImportPath] = i
		}
	}
	total := 0
	for i, wave := range waves {
		total += len(wave)
		for _, p := range wave {
			for _, imp := range p.Types.Imports() {
				if j, ok := waveOf[imp.Path()]; ok && j >= i {
					t.Errorf("%s (wave %d) depends on %s (wave %d); dependencies must be in earlier waves",
						p.ImportPath, i, imp.Path(), j)
				}
			}
		}
	}
	if total != len(pkgs) {
		t.Errorf("waves hold %d packages, loaded %d", total, len(pkgs))
	}
	if len(waves) >= len(pkgs) && len(pkgs) > 1 {
		t.Errorf("%d packages degenerated into %d waves: no parallelism", len(pkgs), len(waves))
	}
}

// TestAnalyzeMatchesSequential pins that the parallel path finds
// exactly what the sequential per-package path finds over the module:
// nothing, and with the same fact-driven behavior.
func TestAnalyzeMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks every package")
	}
	pkgs := loadModule(t)
	results, err := driver.Analyze(pkgs, analysis.NewFactStore())
	if err != nil {
		t.Fatal(err)
	}
	seq := analysis.NewFactStore()
	i := 0
	for _, pkg := range driver.SortDeps(pkgs) {
		diags, err := driver.RunPackageFacts(pkg, seq)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Pkg.ImportPath != pkg.ImportPath {
			t.Fatalf("result order diverges at %d: %s vs %s", i, results[i].Pkg.ImportPath, pkg.ImportPath)
		}
		if len(results[i].Diags) != len(diags) {
			t.Errorf("%s: parallel found %d diagnostics, sequential %d",
				pkg.ImportPath, len(results[i].Diags), len(diags))
		}
		i++
	}
}

func loadModule(t testing.TB) []*load.Package {
	t.Helper()
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Patterns(modRoot, "./...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// BenchmarkBerthavetSuite measures one full wave-parallel suite run
// over the already-loaded module — the analysis cost CI pays per push,
// excluding parse/typecheck.
func BenchmarkBerthavetSuite(b *testing.B) {
	pkgs := loadModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := driver.Analyze(pkgs, analysis.NewFactStore()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBerthavetSuiteSequential is the no-parallelism baseline for
// BenchmarkBerthavetSuite.
func BenchmarkBerthavetSuiteSequential(b *testing.B) {
	pkgs := loadModule(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts := analysis.NewFactStore()
		for _, pkg := range driver.SortDeps(pkgs) {
			if _, err := driver.RunPackageFacts(pkg, facts); err != nil {
				b.Fatal(err)
			}
		}
	}
}
