package driver_test

import (
	"path/filepath"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/driver"
	"github.com/bertha-net/bertha/internal/analysis/load"
)

// FuzzFactRoundTrip hammers the .vetx fact frames: whatever bytes go
// vet hands us (truncated files, foreign tools' output, corrupted
// cache entries), DecodeVetx must either load cleanly or return an
// error — never panic — and anything it accepts must re-encode.
//
// The seeds are real encoded stores: analyzing corpus packages exports
// at least one instance of every registered AFact type (CallGraphFact,
// BorrowsFact, SinksFact, LockOrderFact, LoopsForeverFact, SpawnsFact,
// ...), so the fuzzer mutates genuine frames rather than guessing the
// gob format from scratch.
func FuzzFactRoundTrip(f *testing.F) {
	modRoot, err := load.ModuleRoot(".")
	if err != nil {
		f.Fatal(err)
	}
	exports, err := load.ExportMap(modRoot, "./...")
	if err != nil {
		f.Fatal(err)
	}
	loader := load.NewLoader(exports)
	facts := analysis.NewFactStore()
	for _, name := range []string{"golife_dep", "seeded_deadlock_dep", "bufown_dep"} {
		dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", name)
		pkg, err := loader.Dir(dir, "testdata/"+name)
		if err != nil {
			continue // corpus may not exist in a trimmed checkout
		}
		loader.Add(pkg.ImportPath, pkg.Types)
		if _, err := driver.RunPackageFacts(pkg, facts); err != nil {
			f.Fatal(err)
		}
		enc, err := facts.EncodeVetx()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
		if len(enc) > 4 {
			f.Add(enc[:len(enc)/2]) // truncated frame
		}
	}
	f.Add([]byte("berthavet-facts\n"))            // magic, no frames
	f.Add([]byte("berthavet-facts\nnot-gob-at")) // magic, garbage body
	f.Add([]byte("berthavet"))                    // pre-fact placeholder
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		store := analysis.NewFactStore()
		if err := store.DecodeVetx(data); err != nil {
			return // malformed input must error, never panic
		}
		if _, err := store.EncodeVetx(); err != nil {
			t.Fatalf("store decoded from %d bytes failed to re-encode: %v", len(data), err)
		}
	})
}
