package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
)

// TestWriteSARIF pins the document shape the upload-sarif CI step
// consumes: schema/version headers, the full suite rule table (every
// rule the suite can emit, hit or not), root-relative forward-slash
// URIs, error-level results, and range-accurate regions.
func TestWriteSARIF(t *testing.T) {
	findings := []sarifFinding{
		{
			Pos: token.Position{Filename: "/mod/internal/core/batch.go", Line: 42, Column: 7},
			End: token.Position{Filename: "/mod/internal/core/batch.go", Line: 42, Column: 23},
			Diag: analysis.Diagnostic{
				Analyzer: "batchcontract", Category: "tail-leak",
				Message: "error path abandons the unsent tail",
			},
		},
		{
			Pos: token.Position{Filename: "/mod/internal/core/stats.go", Line: 9, Column: 2},
			Diag: analysis.Diagnostic{
				Analyzer: "atomdisc", Category: "mixed-access",
				Message: "plain read of atomically accessed field",
			},
		},
		{
			Pos: token.Position{Filename: "/mod/internal/transport/udp.go", Line: 80, Column: 2},
			Diag: analysis.Diagnostic{
				Analyzer: "lockdisc", Category: "deadlock",
				Message: "lock-order cycle A -> B -> A",
			},
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, "/mod", findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "berthavet" {
		t.Errorf("tool name = %q", run.Tool.Driver.Name)
	}
	if got := len(run.Tool.Driver.Rules); got != len(suiteRules) {
		t.Fatalf("got %d rules, want the full suite table of %d", got, len(suiteRules))
	}
	haveRule := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		haveRule[r.ID] = true
	}
	for _, id := range []string{"lockdisc/deadlock", "bufown/leak", "golife/spawn-in-loop"} {
		if !haveRule[id] {
			t.Errorf("rule table is missing %q", id)
		}
	}
	if got := len(run.Results); got != 3 {
		t.Fatalf("got %d results, want 3", got)
	}
	for _, r := range run.Results {
		if run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %q has ruleIndex %d pointing at %q",
				r.RuleID, r.RuleIndex, run.Tool.Driver.Rules[r.RuleIndex].ID)
		}
		if r.Level != "error" {
			t.Errorf("result %q level = %q, want error", r.RuleID, r.Level)
		}
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/batch.go" {
		t.Errorf("uri = %q, want module-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	if loc.Region.EndLine != 42 || loc.Region.EndColumn != 23 {
		t.Errorf("region end = %d:%d, want 42:23 from the diagnostic range", loc.Region.EndLine, loc.Region.EndColumn)
	}
	pointLoc := run.Results[1].Locations[0].PhysicalLocation
	if pointLoc.Region.EndLine != 0 || pointLoc.Region.EndColumn != 0 {
		t.Errorf("point diagnostic grew an end: %+v", pointLoc.Region)
	}
}

// TestSuiteRulesCoverAnalyzers pins that every analyzer that can emit
// diagnostics owns at least one entry in the static SARIF rule table.
func TestSuiteRulesCoverAnalyzers(t *testing.T) {
	covered := map[string]bool{}
	for _, id := range suiteRules {
		covered[id[:strings.IndexByte(id, '/')]] = true
	}
	for _, a := range Analyzers {
		if a.Name == "callgraph" {
			continue // fact-only: feeds the others, reports nothing itself
		}
		if !covered[a.Name] {
			t.Errorf("analyzer %q has no rule in suiteRules", a.Name)
		}
	}
}

// TestSARIFCleanRun pins that a clean tree still yields a well-formed
// document with an empty results array — that is how code scanning
// closes previously reported findings.
func TestSARIFCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks a package")
	}
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-sarif", "./internal/wire/"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-sarif exit %d: %s", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run should have one run with an empty results array: %s", stdout.String())
	}
}

// TestSARIFExclusiveWithJSON pins that the two machine formats cannot
// be interleaved on one stdout stream.
func TestSARIFExclusiveWithJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-json", "-sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Errorf("-json -sarif exit %d, want 1", code)
	}
}
