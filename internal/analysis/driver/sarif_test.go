package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"testing"

	"github.com/bertha-net/bertha/internal/analysis"
)

// TestWriteSARIF pins the document shape the upload-sarif CI step
// consumes: schema/version headers, one rule per analyzer/category
// pair, root-relative forward-slash URIs, and error-level results.
func TestWriteSARIF(t *testing.T) {
	findings := []sarifFinding{
		{
			Pos: token.Position{Filename: "/mod/internal/core/batch.go", Line: 42, Column: 7},
			Diag: analysis.Diagnostic{
				Analyzer: "batchcontract", Category: "tail-leak",
				Message: "error path abandons the unsent tail",
			},
		},
		{
			Pos: token.Position{Filename: "/mod/internal/core/stats.go", Line: 9, Column: 2},
			Diag: analysis.Diagnostic{
				Analyzer: "atomdisc", Category: "mixed-access",
				Message: "plain read of atomically accessed field",
			},
		},
		{
			Pos: token.Position{Filename: "/mod/internal/core/batch.go", Line: 50, Column: 3},
			Diag: analysis.Diagnostic{
				Analyzer: "batchcontract", Category: "tail-leak",
				Message: "second tail leak, same rule",
			},
		},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, "/mod", findings); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "berthavet" {
		t.Errorf("tool name = %q", run.Tool.Driver.Name)
	}
	if got := len(run.Tool.Driver.Rules); got != 2 {
		t.Fatalf("got %d rules, want 2 (duplicate ruleId must not duplicate the rule)", got)
	}
	if run.Tool.Driver.Rules[0].ID != "batchcontract/tail-leak" {
		t.Errorf("rules[0].ID = %q", run.Tool.Driver.Rules[0].ID)
	}
	if got := len(run.Results); got != 3 {
		t.Fatalf("got %d results, want 3", got)
	}
	r := run.Results[0]
	if r.RuleID != "batchcontract/tail-leak" || r.RuleIndex != 0 || r.Level != "error" {
		t.Errorf("results[0] = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/core/batch.go" {
		t.Errorf("uri = %q, want module-relative path", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %+v", loc.Region)
	}
	if run.Results[1].RuleIndex != 1 {
		t.Errorf("results[1].RuleIndex = %d, want 1", run.Results[1].RuleIndex)
	}
}

// TestSARIFCleanRun pins that a clean tree still yields a well-formed
// document with an empty results array — that is how code scanning
// closes previously reported findings.
func TestSARIFCleanRun(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks a package")
	}
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-sarif", "./internal/wire/"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-sarif exit %d: %s", code, stderr.String())
	}
	var log sarifLog
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run should have one run with an empty results array: %s", stdout.String())
	}
}

// TestSARIFExclusiveWithJSON pins that the two machine formats cannot
// be interleaved on one stdout stream.
func TestSARIFExclusiveWithJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := Main([]string{"-json", "-sarif", "./..."}, &stdout, &stderr); code != 1 {
		t.Errorf("-json -sarif exit %d, want 1", code)
	}
}
