// Package driver is the berthavet multichecker: it runs the callgraph,
// bufown, overhead, lockdisc, ctxflow, golife, speccheck, atomdisc,
// and batchcontract analyzers over packages either standalone
// (`berthavet ./...`) or as a
// `go vet -vettool` backend speaking the go command's unitchecker
// protocol (-flags/-V=full handshakes plus a JSON .cfg file per
// package).
//
// Both modes thread cross-package facts. Standalone, the driver orders
// the loaded packages topologically by import dependency and runs each
// wave of mutually independent packages in parallel (DepWaves), sharing
// one in-memory analysis.FactStore, so a pass over a package sees every
// fact its dependencies exported. After the per-package passes it
// assembles the lockdisc LockOrderFacts into one module-global
// lock-order graph and reports deadlock cycles no single pass could
// see whole. Under go vet, facts are gob-encoded into each package's
// .vetx file (VetxOutput) and read back from the .vetx files of its
// dependencies (PackageVetx); each .vetx carries the dependencies'
// facts too, so facts flow transitively.
package driver

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/atomdisc"
	"github.com/bertha-net/bertha/internal/analysis/batchcontract"
	"github.com/bertha-net/bertha/internal/analysis/bufown"
	"github.com/bertha-net/bertha/internal/analysis/callgraph"
	"github.com/bertha-net/bertha/internal/analysis/ctxflow"
	"github.com/bertha-net/bertha/internal/analysis/golife"
	"github.com/bertha-net/bertha/internal/analysis/load"
	"github.com/bertha-net/bertha/internal/analysis/lockdisc"
	"github.com/bertha-net/bertha/internal/analysis/overhead"
	"github.com/bertha-net/bertha/internal/analysis/speccheck"
	"github.com/bertha-net/bertha/internal/analysis/vetversion"
)

// Analyzers is the berthavet suite, in execution order. callgraph runs
// first so its CallGraphFact for the package under analysis is already
// in the store when the interprocedural analyzers run over it.
var Analyzers = []*analysis.Analyzer{
	callgraph.Analyzer,
	bufown.Analyzer,
	overhead.Analyzer,
	lockdisc.Analyzer,
	ctxflow.Analyzer,
	golife.Analyzer,
	speccheck.Analyzer,
	atomdisc.Analyzer,
	batchcontract.Analyzer,
}

func init() {
	analysis.RegisterFactTypes(Analyzers)
}

// Version renders the tool version: module version (when stamped into
// the binary) plus the vet-suite rule revision.
func Version() string { return vetversion.String() }

// Main is the berthavet entry point; it returns the process exit code
// (0 clean, 1 operational failure, 2 diagnostics found).
func Main(args []string, stdout, stderr io.Writer) int {
	var patterns []string
	jsonOut := false
	sarifOut := false
	diffRef := ""
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-diff" || a == "--diff":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "berthavet: -diff requires a git ref")
				return 1
			}
			i++
			diffRef = args[i]
		case strings.HasPrefix(a, "-diff="):
			diffRef = strings.TrimPrefix(a, "-diff=")
		case strings.HasPrefix(a, "--diff="):
			diffRef = strings.TrimPrefix(a, "--diff=")
		case a == "-flags" || a == "--flags":
			// go vet interrogates the tool's flags; we add none beyond
			// the standard handshake set.
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-V=full" || a == "--V=full":
			// The go command hashes this line into its build cache key;
			// SuiteRevision busts the cache when the rules change.
			fmt.Fprintf(stdout, "berthavet version %s\n", Version())
			return 0
		case a == "-version" || a == "--version":
			fmt.Fprintf(stdout, "berthavet %s\n", Version())
			return 0
		case a == "-json" || a == "--json":
			jsonOut = true
		case a == "-sarif" || a == "--sarif":
			sarifOut = true
		case a == "-h" || a == "-help" || a == "--help":
			usage(stdout)
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "berthavet: unknown flag %q\n", a)
			usage(stderr)
			return 1
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return vetUnit(patterns[0], stderr)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if jsonOut && sarifOut {
		fmt.Fprintln(stderr, "berthavet: -json and -sarif are mutually exclusive")
		return 1
	}
	return standalone(patterns, jsonOut, sarifOut, diffRef, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage: berthavet [-json|-sarif] [packages]

Runs the bertha static-analysis suite (%s) over the packages:
`, analysis.SuiteRevision)
	for _, a := range Analyzers {
		fmt.Fprintf(w, "  %-13s %s\n", a.Name, a.Doc)
	}
	fmt.Fprint(w, `
Flags:
  -json       one finding per line as JSON {file, line, col, analyzer,
              category, message} (standalone mode only)
  -sarif      all findings as one SARIF 2.1.0 document on stdout, ready
              for code-scanning upload (standalone mode only)
  -diff REF   report only findings on lines changed versus the git ref
              (git diff -U0 REF); analysis still covers every package
  -version    print the tool and rule-set revision

Also usable as a vettool: go vet -vettool=$(which berthavet) ./...
Suppress a diagnostic with //berthavet:ignore <analyzer> on its line.
`)
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	Message  string `json:"message"`
}

// standalone loads patterns itself and runs every analyzer over the
// packages in dependency order, sharing one fact store.
func standalone(patterns []string, jsonOut, sarifOut bool, diffRef string, stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	modRoot, err := load.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	pkgs, err := load.Patterns(modRoot, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	// -diff: restrict the report to lines changed against the ref. The
	// analysis itself still covers everything — facts must flow — only
	// the output is filtered.
	var changed ChangedLines
	if diffRef != "" {
		changed, err = gitChangedLines(modRoot, diffRef)
		if err != nil {
			fmt.Fprintf(stderr, "berthavet: %v\n", err)
			return 1
		}
	}
	facts := analysis.NewFactStore()
	found := 0
	var findings []sarifFinding
	enc := json.NewEncoder(stdout)
	results, err := Analyze(pkgs, facts)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	for _, r := range results {
		pkg := r.Pkg
		for _, d := range r.Diags {
			pos := pkg.Fset.Position(d.Pos)
			if changed != nil && !changed.Contains(modRoot, pos) {
				continue
			}
			switch {
			case sarifOut:
				f := sarifFinding{Pos: pos, Diag: d}
				if d.End.IsValid() {
					f.End = pkg.Fset.Position(d.End)
				}
				findings = append(findings, f)
			case jsonOut:
				enc.Encode(jsonDiag{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Category: d.Category, Message: d.Message,
				})
			default:
				fmt.Fprintf(stdout, "%s: [%s/%s] %s\n",
					pos, d.Analyzer, d.Category, d.Message)
			}
			found++
		}
	}
	// Module-global deadlock check: lock-order cycles split between
	// sibling packages reach the shared fact store but no single pass's
	// view; assemble and report them here (see lockdisc/module.go).
	sees := factVisibility(pkgs)
	for _, f := range lockdisc.ModuleDeadlocks(facts.ModulePackageFacts("lockdisc"), sees) {
		pos := parseFileLine(f.Pos)
		if changed != nil && !changed.Contains(modRoot, pos) {
			continue
		}
		d := analysis.Diagnostic{Analyzer: "lockdisc", Category: "deadlock", Message: f.Message}
		switch {
		case sarifOut:
			findings = append(findings, sarifFinding{Pos: pos, Diag: d})
		case jsonOut:
			enc.Encode(jsonDiag{
				File: pos.Filename, Line: pos.Line,
				Analyzer: d.Analyzer, Category: d.Category, Message: d.Message,
			})
		default:
			fmt.Fprintf(stdout, "%s: [%s/%s] %s\n", f.Pos, d.Analyzer, d.Category, d.Message)
		}
		found++
	}
	if sarifOut {
		// The document is emitted even when clean: code-scanning uploads
		// expect a well-formed run either way, and an empty results array
		// is how resolved findings get closed.
		if err := writeSARIF(stdout, modRoot, findings); err != nil {
			fmt.Fprintf(stderr, "berthavet: %v\n", err)
			return 1
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "berthavet: %d diagnostic(s)\n", found)
		return 2
	}
	return 0
}

// PkgDiags pairs one analyzed package with its findings.
type PkgDiags struct {
	Pkg   *load.Package
	Diags []analysis.Diagnostic
}

// Analyze runs the whole suite over the packages with inter-package
// parallelism: SortDeps order is partitioned into dependency waves
// (every package's in-set dependencies land in strictly earlier waves),
// the members of a wave are analyzed on separate goroutines sharing the
// fact store, and results come back in deterministic SortDeps order.
func Analyze(pkgs []*load.Package, facts *analysis.FactStore) ([]PkgDiags, error) {
	sorted := SortDeps(pkgs)
	byPath := make(map[string]PkgDiags, len(sorted))
	for _, wave := range DepWaves(sorted) {
		var wg sync.WaitGroup
		results := make([]PkgDiags, len(wave))
		errs := make([]error, len(wave))
		for i, pkg := range wave {
			wg.Add(1)
			go func(i int, pkg *load.Package) {
				defer wg.Done()
				diags, err := RunPackageFacts(pkg, facts)
				results[i] = PkgDiags{Pkg: pkg, Diags: diags}
				errs[i] = err
			}(i, pkg)
		}
		wg.Wait()
		for i, r := range results {
			if errs[i] != nil {
				return nil, errs[i]
			}
			byPath[r.Pkg.ImportPath] = r
		}
	}
	out := make([]PkgDiags, 0, len(sorted))
	for _, pkg := range sorted {
		out = append(out, byPath[pkg.ImportPath])
	}
	return out, nil
}

// DepWaves partitions topologically-sorted packages into waves: a
// package's wave index is one past the deepest wave of any of its
// in-set dependencies, so the members of one wave are mutually
// independent and safe to analyze in parallel.
func DepWaves(sorted []*load.Package) [][]*load.Package {
	level := make(map[string]int, len(sorted))
	var waves [][]*load.Package
	for _, p := range sorted {
		// Walk the transitive import closure: an in-set dependency may
		// be reachable only through packages outside the set, and it
		// still must finish (facts exported) before p starts.
		lvl := 0
		seen := map[string]bool{}
		var walk func(t *types.Package)
		walk = func(t *types.Package) {
			for _, imp := range t.Imports() {
				if seen[imp.Path()] {
					continue
				}
				seen[imp.Path()] = true
				if l, ok := level[imp.Path()]; ok && l+1 > lvl {
					lvl = l + 1
				}
				walk(imp)
			}
		}
		walk(p.Types)
		level[p.ImportPath] = lvl
		for len(waves) <= lvl {
			waves = append(waves, nil)
		}
		waves[lvl] = append(waves[lvl], p)
	}
	return waves
}

// factVisibility returns sees(a, b): whether package a's analysis saw
// package b's exported facts, i.e. b is a or in a's transitive import
// closure. ModuleDeadlocks uses it to skip cycles a per-package pass
// already reported.
func factVisibility(pkgs []*load.Package) func(a, b string) bool {
	closure := make(map[string]map[string]bool, len(pkgs))
	for _, p := range pkgs {
		set := map[string]bool{p.ImportPath: true}
		var walk func(t *types.Package)
		walk = func(t *types.Package) {
			for _, imp := range t.Imports() {
				if !set[imp.Path()] {
					set[imp.Path()] = true
					walk(imp)
				}
			}
		}
		walk(p.Types)
		closure[p.ImportPath] = set
	}
	return func(a, b string) bool {
		if set, ok := closure[a]; ok {
			return set[b]
		}
		return a == b
	}
}

// parseFileLine splits a "file:line" witness string back into a
// position for the structured output formats.
func parseFileLine(s string) token.Position {
	var pos token.Position
	if i := strings.LastIndexByte(s, ':'); i >= 0 {
		pos.Filename = s[:i]
		fmt.Sscanf(s[i+1:], "%d", &pos.Line)
	} else {
		pos.Filename = s
	}
	return pos
}

// SortDeps orders loaded packages topologically: every package after
// all of its dependencies that are also in the slice, ties broken by
// import path for determinism.
func SortDeps(pkgs []*load.Package) []*load.Package {
	byPath := make(map[string]*load.Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
	}
	sorted := make([]*load.Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *load.Package)
	visit = func(p *load.Package) {
		switch state[p.ImportPath] {
		case 1, 2:
			return // cycle (impossible in Go) or already placed
		}
		state[p.ImportPath] = 1
		deps := make([]string, 0, len(p.Types.Imports()))
		for _, imp := range p.Types.Imports() {
			deps = append(deps, imp.Path())
		}
		sort.Strings(deps)
		for _, d := range deps {
			if dp, ok := byPath[d]; ok {
				visit(dp)
			}
		}
		state[p.ImportPath] = 2
		sorted = append(sorted, p)
	}
	ordered := make([]*load.Package, len(pkgs))
	copy(ordered, pkgs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ImportPath < ordered[j].ImportPath })
	for _, p := range ordered {
		visit(p)
	}
	return sorted
}

// RunPackage applies the whole suite to one loaded package with a
// fresh, package-local fact store (no cross-package knowledge).
func RunPackage(pkg *load.Package) ([]analysis.Diagnostic, error) {
	return RunPackageFacts(pkg, analysis.NewFactStore())
}

// RunPackageFacts applies the whole suite to one loaded package,
// reading and writing cross-package facts through the given store.
func RunPackageFacts(pkg *load.Package, facts *analysis.FactStore) ([]analysis.Diagnostic, error) {
	var all []analysis.Diagnostic
	for _, a := range Analyzers {
		diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info, facts)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// vetConfig is the subset of the go command's per-package vet config we
// consume (see cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// writeVetx persists the fact store (or, on skip paths, an empty
// placeholder) to the path go vet expects.
func writeVetx(path string, facts *analysis.FactStore, stderr io.Writer) bool {
	if path == "" {
		return true
	}
	data := []byte("berthavet")
	if facts != nil {
		enc, err := facts.EncodeVetx()
		if err != nil {
			fmt.Fprintf(stderr, "berthavet: %v\n", err)
			return false
		}
		data = enc
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return false
	}
	return true
}

// vetUnit analyzes one package as directed by a go vet .cfg file.
func vetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "berthavet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The suite's invariants concern production code; test files (and
	// test-augmented variants of packages) are skipped — but go still
	// expects a facts file.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		if !writeVetx(cfg.VetxOutput, nil, stderr) {
			return 1
		}
		return 0
	}
	// Merge the facts every dependency exported; missing or pre-fact
	// .vetx files just leave the store sparse (analyzers then fall back
	// to their conservative intra-package behavior).
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		if err := facts.ReadVetxFile(vetx); err != nil {
			fmt.Fprintf(stderr, "berthavet: %v\n", err)
			return 1
		}
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// ImportMap aliases source import paths to canonical ones (vendor,
	// test variants); surface both spellings.
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}
	pkg, err := load.Files(cfg.ImportPath, goFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx(cfg.VetxOutput, nil, stderr) {
				return 1
			}
			return 0
		}
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	diags, err := RunPackageFacts(pkg, facts)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	// The store now holds dependency facts plus this package's; the
	// .vetx therefore carries facts transitively to importers.
	if !writeVetx(cfg.VetxOutput, facts, stderr) {
		return 1
	}
	if cfg.VetxOnly {
		// Facts-only run over a dependency of the requested patterns:
		// report nothing, but the analyzers had to execute to export.
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s/%s] %s\n",
			pkg.Fset.Position(d.Pos), d.Analyzer, d.Category, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
