// Package driver is the berthavet multichecker: it runs the bufown,
// overhead, and lockdisc analyzers over packages either standalone
// (`berthavet ./...`) or as a `go vet -vettool` backend speaking the go
// command's unitchecker protocol (-flags/-V=full handshakes plus a JSON
// .cfg file per package).
package driver

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/bufown"
	"github.com/bertha-net/bertha/internal/analysis/load"
	"github.com/bertha-net/bertha/internal/analysis/lockdisc"
	"github.com/bertha-net/bertha/internal/analysis/overhead"
	"github.com/bertha-net/bertha/internal/analysis/vetversion"
)

// Analyzers is the berthavet suite, in execution order.
var Analyzers = []*analysis.Analyzer{bufown.Analyzer, overhead.Analyzer, lockdisc.Analyzer}

// Version renders the tool version: module version (when stamped into
// the binary) plus the vet-suite rule revision.
func Version() string { return vetversion.String() }

// Main is the berthavet entry point; it returns the process exit code
// (0 clean, 1 operational failure, 2 diagnostics found).
func Main(args []string, stdout, stderr io.Writer) int {
	var patterns []string
	for _, a := range args {
		switch {
		case a == "-flags" || a == "--flags":
			// go vet interrogates the tool's flags; we add none beyond
			// the standard handshake set.
			fmt.Fprintln(stdout, "[]")
			return 0
		case a == "-V=full" || a == "--V=full":
			// The go command hashes this line into its build cache key;
			// SuiteRevision busts the cache when the rules change.
			fmt.Fprintf(stdout, "berthavet version %s\n", Version())
			return 0
		case a == "-version" || a == "--version":
			fmt.Fprintf(stdout, "berthavet %s\n", Version())
			return 0
		case a == "-h" || a == "-help" || a == "--help":
			usage(stdout)
			return 0
		case strings.HasPrefix(a, "-"):
			fmt.Fprintf(stderr, "berthavet: unknown flag %q\n", a)
			usage(stderr)
			return 1
		default:
			patterns = append(patterns, a)
		}
	}
	if len(patterns) == 1 && strings.HasSuffix(patterns[0], ".cfg") {
		return vetUnit(patterns[0], stderr)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	return standalone(patterns, stdout, stderr)
}

func usage(w io.Writer) {
	fmt.Fprintf(w, `usage: berthavet [packages]

Runs the bertha static-analysis suite (%s) over the packages:
`, analysis.SuiteRevision)
	for _, a := range Analyzers {
		fmt.Fprintf(w, "  %-9s %s\n", a.Name, a.Doc)
	}
	fmt.Fprint(w, `
Also usable as a vettool: go vet -vettool=$(which berthavet) ./...
Suppress a diagnostic with //berthavet:ignore <analyzer> on its line.
`)
}

// standalone loads patterns itself and runs every analyzer.
func standalone(patterns []string, stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	modRoot, err := load.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	pkgs, err := load.Patterns(modRoot, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	found := 0
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg)
		if err != nil {
			fmt.Fprintf(stderr, "berthavet: %v\n", err)
			return 1
		}
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s: [%s/%s] %s\n",
				pkg.Fset.Position(d.Pos), d.Analyzer, d.Category, d.Message)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(stderr, "berthavet: %d diagnostic(s)\n", found)
		return 2
	}
	return 0
}

// RunPackage applies the whole suite to one loaded package.
func RunPackage(pkg *load.Package) ([]analysis.Diagnostic, error) {
	var all []analysis.Diagnostic
	for _, a := range Analyzers {
		diags, err := analysis.Run(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// vetConfig is the subset of the go command's per-package vet config we
// consume (see cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package as directed by a go vet .cfg file.
func vetUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "berthavet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects the facts file regardless of outcome; the
	// suite keeps no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("berthavet"), 0o666); err != nil {
			fmt.Fprintf(stderr, "berthavet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// The suite's invariants concern production code; test files (and
	// test-augmented variants of packages) are skipped.
	var goFiles []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// ImportMap aliases source import paths to canonical ones (vendor,
	// test variants); surface both spellings.
	for src, canon := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canon]; ok {
			exports[src] = file
		}
	}
	pkg, err := load.Files(cfg.ImportPath, goFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	diags, err := RunPackage(pkg)
	if err != nil {
		fmt.Fprintf(stderr, "berthavet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: [%s/%s] %s\n",
			pkg.Fset.Position(d.Pos), d.Analyzer, d.Category, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
