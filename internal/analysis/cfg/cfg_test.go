package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses a function body from the statements in src.
func parseBody(t testing.TB, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// checkInvariants asserts the structural well-formedness every graph
// must satisfy (shared with FuzzCFGBuild).
func checkInvariants(t testing.TB, g *Graph) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("missing entry/exit")
	}
	byIndex := map[int]*Block{}
	for i, b := range g.Blocks {
		if b == nil {
			t.Fatalf("nil block at %d", i)
		}
		if b.Index != i {
			t.Fatalf("block %d has Index %d", i, b.Index)
		}
		byIndex[i] = b
	}
	if !g.Entry.Live {
		t.Fatalf("entry not live")
	}
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.From != b {
				t.Fatalf("edge From mismatch in block %d", b.Index)
			}
			if byIndex[e.To.Index] != e.To {
				t.Fatalf("edge to foreign block from %d", b.Index)
			}
			found := false
			for _, p := range e.To.Preds {
				if p == e {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from Preds", e.From.Index, e.To.Index)
			}
			if e.Back && e.Loop == nil {
				t.Fatalf("back edge %d->%d without Loop", e.From.Index, e.To.Index)
			}
		}
		if b.Live {
			live := b == g.Entry
			for _, p := range b.Preds {
				if p.From.Live {
					live = true
				}
			}
			if !live {
				t.Fatalf("block %d live without live predecessor", b.Index)
			}
		}
	}
	for _, rb := range g.Returns {
		if len(rb.Nodes) == 0 {
			t.Fatalf("return block %d has no nodes", rb.Index)
		}
		if _, ok := rb.Nodes[len(rb.Nodes)-1].(*ast.ReturnStmt); !ok {
			t.Fatalf("return block %d does not end in return", rb.Index)
		}
	}
}

// kinds returns the Kind of every live block, for shape assertions.
func kinds(g *Graph) map[string]int {
	m := map[string]int{}
	for _, b := range g.Blocks {
		if b.Live {
			m[b.Kind]++
		}
	}
	return m
}

func TestIfShape(t *testing.T) {
	g := New(parseBody(t, `
		x := 1
		if x > 0 {
			x = 2
		} else {
			x = 3
		}
		_ = x
	`))
	checkInvariants(t, g)
	k := kinds(g)
	if k["if.then"] != 1 || k["if.else"] != 1 || k["if.done"] != 1 {
		t.Fatalf("unexpected shape: %v", k)
	}
	// The entry block's branch edges must carry the condition.
	var condEdges int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				condEdges++
			}
		}
	}
	if condEdges != 2 {
		t.Fatalf("want 2 conditional edges, got %d", condEdges)
	}
	if !g.Exit.Live {
		t.Fatalf("function falls through; exit must be live")
	}
}

func TestAllPathsReturn(t *testing.T) {
	g := New(parseBody(t, `
		if true {
			return
		}
		return
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("every path returns; exit must be dead")
	}
	if len(g.Returns) != 2 {
		t.Fatalf("want 2 return blocks, got %d", len(g.Returns))
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := New(parseBody(t, `
		for i := 0; i < 10; i++ {
			_ = i
		}
	`))
	checkInvariants(t, g)
	var backs int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Back {
				backs++
				if _, ok := e.Loop.(*ast.ForStmt); !ok {
					t.Fatalf("back edge Loop is %T", e.Loop)
				}
			}
		}
	}
	if backs != 1 {
		t.Fatalf("want 1 back edge, got %d", backs)
	}
	if !g.Exit.Live {
		t.Fatalf("bounded loop falls through")
	}
}

func TestInfiniteLoopKillsExit(t *testing.T) {
	g := New(parseBody(t, `
		for {
			_ = 1
		}
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("for{} never falls through; exit must be dead")
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := New(parseBody(t, `
		for {
			if true {
				break
			}
		}
	`))
	checkInvariants(t, g)
	if !g.Exit.Live {
		t.Fatalf("break escapes the loop; exit must be live")
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := New(parseBody(t, `
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if j == i {
					continue outer
				}
				if j > i {
					break outer
				}
			}
		}
	`))
	checkInvariants(t, g)
	if !g.Exit.Live {
		t.Fatalf("labeled break reaches the end")
	}
	var backs int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Back {
				backs++
			}
		}
	}
	// Outer loop: continue-outer edge targets for.post, which back-jumps
	// to the outer head; inner loop has its own back edge.
	if backs < 2 {
		t.Fatalf("want >=2 back edges, got %d", backs)
	}
}

func TestRangeMarker(t *testing.T) {
	g := New(parseBody(t, `
		xs := []int{1, 2}
		for _, x := range xs {
			_ = x
		}
	`))
	checkInvariants(t, g)
	found := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				found = true
				if b.Kind != "range.head" {
					t.Fatalf("range marker in %q block", b.Kind)
				}
			}
		}
	}
	if !found {
		t.Fatalf("range marker node missing")
	}
}

func TestSwitchNoDefaultFallsThrough(t *testing.T) {
	g := New(parseBody(t, `
		x := 1
		switch x {
		case 1:
			return
		case 2:
			return
		}
		_ = x
	`))
	checkInvariants(t, g)
	if !g.Exit.Live {
		t.Fatalf("switch without default must fall through")
	}
}

func TestSwitchAllReturnWithDefault(t *testing.T) {
	g := New(parseBody(t, `
		x := 1
		switch x {
		case 1:
			return
		default:
			return
		}
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("exhaustive switch where all clauses return: exit dead")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := New(parseBody(t, `
		x := 1
		switch x {
		case 1:
			x = 2
			fallthrough
		case 2:
			return
		default:
		}
	`))
	checkInvariants(t, g)
	// The fallthrough edge means clause 1's body can reach clause 2's
	// return; exit stays live via the empty default.
	if !g.Exit.Live {
		t.Fatalf("default clause falls through")
	}
}

func TestSelectBlocksWithoutDefault(t *testing.T) {
	g := New(parseBody(t, `
		ch := make(chan int)
		select {
		case <-ch:
			return
		}
		_ = ch
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("single-case select whose arm returns: exit dead")
	}
}

func TestEmptySelectTerminates(t *testing.T) {
	g := New(parseBody(t, `
		select {}
		_ = 1
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("select{} blocks forever; exit must be dead")
	}
	// The trailing statement lives in a dead block, surfaced by
	// UnreachableSpans.
	if len(g.UnreachableSpans()) == 0 {
		t.Fatalf("statement after select{} should be in a dead span")
	}
}

func TestPanicTerminates(t *testing.T) {
	g := New(parseBody(t, `
		panic("no")
		_ = 1
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("panic terminates the path")
	}
	if len(g.UnreachableSpans()) == 0 {
		t.Fatalf("code after panic is unreachable")
	}
}

func TestOsExitTerminates(t *testing.T) {
	g := New(parseBody(t, `
		os.Exit(1)
		_ = 1
	`))
	checkInvariants(t, g)
	if g.Exit.Live {
		t.Fatalf("os.Exit terminates the path")
	}
}

func TestGoto(t *testing.T) {
	g := New(parseBody(t, `
		i := 0
	loop:
		if i < 3 {
			i++
			goto loop
		}
	`))
	checkInvariants(t, g)
	if !g.Exit.Live {
		t.Fatalf("goto loop exits when cond is false")
	}
}

func TestDeferAndGoAreNodes(t *testing.T) {
	g := New(parseBody(t, `
		defer println("d")
		go println("g")
	`))
	checkInvariants(t, g)
	var def, gon bool
	for _, n := range g.Entry.Nodes {
		switch n.(type) {
		case *ast.DeferStmt:
			def = true
		case *ast.GoStmt:
			gon = true
		}
	}
	if !def || !gon {
		t.Fatalf("defer/go must appear as entry-block nodes")
	}
}

// TestForwardFixpoint exercises the generic engine with a tiny
// "definitely-assigned" analysis: a variable is definitely assigned at
// a point iff every path to it assigns the variable.
func TestForwardFixpoint(t *testing.T) {
	body := parseBody(t, `
		var x int
		if cond {
			x = 1
		}
		_ = x
	`)
	g := New(body)
	type state = map[string]bool
	assigned := func(n ast.Node, s state) {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					s[id.Name] = true
				}
			}
		}
	}
	f := &Flow[state]{
		Entry: func() state { return state{} },
		Clone: func(s state) state {
			c := make(state, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Merge: func(dst, src state) bool {
			// Definite assignment = intersection.
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return changed
		},
		Transfer: assigned,
	}
	in, ok := f.Forward(g)
	if !ok {
		t.Fatalf("fixpoint did not converge")
	}
	if !ReachedExit(g, in) {
		t.Fatalf("exit unreached")
	}
	// x is assigned on only one arm, so it is not definitely assigned
	// at exit.
	if in[g.Exit]["x"] {
		t.Fatalf("x must not be definitely assigned at exit")
	}
}

// TestForwardRefine checks that edge refinement specializes branch
// states: along the true edge of `if v == nil`, v is known nil.
func TestForwardRefine(t *testing.T) {
	body := parseBody(t, `
		if v == nil {
			use(1)
		} else {
			use(2)
		}
	`)
	g := New(body)
	type state = map[string]string // var -> "nil" | "nonnil"
	var thenState, elseState string
	f := &Flow[state]{
		Entry: func() state { return state{} },
		Clone: func(s state) state {
			c := make(state, len(s))
			for k, v := range s {
				c[k] = v
			}
			return c
		},
		Merge: func(dst, src state) bool {
			changed := false
			for k, v := range dst {
				if src[k] != v {
					delete(dst, k)
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s state) {},
		Refine: func(cond ast.Expr, branch bool, s state) {
			be, ok := cond.(*ast.BinaryExpr)
			if !ok || be.Op != token.EQL {
				return
			}
			id, ok := be.X.(*ast.Ident)
			if !ok {
				return
			}
			if _, isNil := be.Y.(*ast.Ident); !isNil {
				return
			}
			if branch {
				s[id.Name] = "nil"
			} else {
				s[id.Name] = "nonnil"
			}
		},
	}
	in, ok := f.Forward(g)
	if !ok {
		t.Fatalf("fixpoint did not converge")
	}
	for _, b := range g.Blocks {
		switch b.Kind {
		case "if.then":
			thenState = in[b]["v"]
		case "if.else":
			elseState = in[b]["v"]
		}
	}
	if thenState != "nil" || elseState != "nonnil" {
		t.Fatalf("refinement missing: then=%q else=%q", thenState, elseState)
	}
	// The states merge at the join: no agreed fact about v survives.
	if v, ok := in[g.Exit]["v"]; ok {
		t.Fatalf("conflicting facts must cancel at the join, got %q", v)
	}
}

// TestFixpointBudget builds a merge that never stabilizes and checks
// the engine bails instead of spinning.
func TestFixpointBudget(t *testing.T) {
	g := New(parseBody(t, `
		for {
			if cond {
				break
			}
		}
	`))
	type state = *int
	n := 0
	f := &Flow[state]{
		Entry:    func() state { v := 0; return &v },
		Clone:    func(s state) state { v := *s; return &v },
		Merge:    func(dst, src state) bool { n++; *dst = n; return true }, // never converges
		Transfer: func(ast.Node, state) {},
		MaxVisits: 8,
	}
	if _, ok := f.Forward(g); ok {
		t.Fatalf("non-monotone merge must exhaust the budget")
	}
}

// TestNestedEverything is a smoke test over deeply mixed control flow.
func TestNestedEverything(t *testing.T) {
	g := New(parseBody(t, `
		ch := make(chan int)
	outer:
		for i := 0; i < 4; i++ {
			switch {
			case i == 0:
				continue
			case i == 1:
				select {
				case v := <-ch:
					if v > 0 {
						break outer
					}
				default:
					defer println("x")
				}
			default:
				for range []int{1, 2} {
					goto done
				}
			}
		}
	done:
		_ = ch
	`))
	checkInvariants(t, g)
	if !g.Exit.Live {
		t.Fatalf("function must be able to fall through")
	}
}

func TestUnreachableSpansContain(t *testing.T) {
	src := `
		return
		println("dead")
	`
	g := New(parseBody(t, src))
	checkInvariants(t, g)
	spans := g.UnreachableSpans()
	if len(spans) == 0 {
		t.Fatalf("no dead spans found")
	}
	// Find the dead call's position and assert containment.
	var deadPos token.Pos
	for _, b := range g.Blocks {
		if b.Live {
			continue
		}
		for _, n := range b.Nodes {
			deadPos = n.Pos()
		}
	}
	hit := false
	for _, sp := range spans {
		if sp.Contains(deadPos) {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("dead node position not covered by spans")
	}
	if strings.Contains(src, "never") {
		t.Fatal("unused")
	}
}
