// Package cfg builds per-function control-flow graphs from go/ast and
// drives forward dataflow analyses over them — the shape of
// golang.org/x/tools/go/cfg plus a generic worklist fixpoint, but
// dependency-free like the rest of the berthavet suite.
//
// A Graph is a set of basic Blocks. Each block holds a straight-line
// run of ast nodes: ordinary statements plus the condition and
// range/switch-tag expressions of the control statement the block
// feeds. Control statements themselves (if/for/range/switch/select)
// never appear as block nodes except for two marker cases clients must
// handle without recursing into sub-statements:
//
//   - *ast.RangeStmt appears in its loop-head block so clients can bind
//     the iteration variables once per iteration (the body is in
//     successor blocks).
//   - the Assign statement of a type switch and the Comm statement of a
//     select clause appear as nodes (they execute, and clients need
//     their bindings), again with bodies elsewhere.
//
// Edges carry the branch condition they refine (Cond + Branch) so
// path-sensitive analyses can specialize state along the true and false
// arms — the `if err != nil` refinement that makes release-on-error
// paths precise. Back edges are marked with the loop statement they
// re-enter, which is what per-iteration leak checks key on.
//
// Terminal statements — return, panic, os.Exit and the conventional
// fatal helpers — end their block with no successors, except that
// return blocks are additionally recorded in Graph.Returns. The Exit
// block is reachable only by falling off the end of the function body,
// so Exit.Live distinguishes "can return implicitly" from "every path
// returns or diverges".
package cfg

import (
	"go/ast"
	"go/token"
)

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks holds every block, entry first, in construction order
	// (roughly source order). Unreachable blocks are kept (their nodes
	// still exist syntactically) with Live == false.
	Blocks []*Block
	// Entry is the function entry block.
	Entry *Block
	// Exit is the implicit-return block: reachable iff control can fall
	// off the end of the body. It holds no nodes.
	Exit *Block
	// Returns lists every block ending in an *ast.ReturnStmt.
	Returns []*Block
}

// A Block is one straight-line run of nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind describes the block's role ("entry", "if.then", "for.head",
	// "select.comm", "unreachable", ...), for debugging and tests.
	Kind string
	// Nodes are the statements and control-condition expressions that
	// execute in this block, in order.
	Nodes []ast.Node
	// Succs and Preds are the outgoing and incoming edges.
	Succs []*Edge
	Preds []*Edge
	// Live reports reachability from Entry.
	Live bool
}

// An Edge connects two blocks.
type Edge struct {
	From, To *Block
	// Cond is the branch condition this edge refines (nil for
	// unconditional edges); Branch is the condition's outcome along it.
	Cond   ast.Expr
	Branch bool
	// Back marks a loop back edge; Loop is the for/range statement the
	// edge re-enters.
	Back bool
	Loop ast.Stmt
}

// New builds the control-flow graph of a function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.labels = map[string]*labelInfo{}
	b.stmtList(body.List)
	// Falling off the end of the body is the implicit return.
	b.jump(b.g.Exit, nil, false)
	b.g.computeLive()
	return b.g
}

// computeLive marks every block reachable from Entry.
func (g *Graph) computeLive() {
	var visit func(b *Block)
	visit = func(b *Block) {
		if b.Live {
			return
		}
		b.Live = true
		for _, e := range b.Succs {
			visit(e.To)
		}
	}
	visit(g.Entry)
}

// UnreachableSpans returns the source spans of the nodes of every dead
// block — the filter reachability-aware clients apply to syntactic
// findings.
func (g *Graph) UnreachableSpans() []Span {
	var spans []Span
	for _, b := range g.Blocks {
		if b.Live {
			continue
		}
		for _, n := range b.Nodes {
			if n.Pos().IsValid() && n.End().IsValid() {
				spans = append(spans, Span{n.Pos(), n.End()})
			}
		}
	}
	return spans
}

// A Span is one [Pos, End) source range.
type Span struct{ Pos, End token.Pos }

// Contains reports whether p falls within the span.
func (s Span) Contains(p token.Pos) bool { return p >= s.Pos && p < s.End }

// ---- builder ----

// branchTarget is one enclosing break/continue destination.
type branchTarget struct {
	label string // enclosing statement's label, "" if none
	block *Block
}

// labelInfo resolves goto and labeled break/continue.
type labelInfo struct {
	block *Block // the labeled statement's entry block
}

type builder struct {
	g *Graph
	// cur is the block under construction; nil after a terminal
	// statement until new code starts an explicitly-unreachable block.
	cur       *Block
	breaks    []branchTarget
	continues []branchTarget
	labels    map[string]*labelInfo
	// pendingLabel is the label of the LabeledStmt being entered, so
	// the next loop/switch/select registers labeled targets.
	pendingLabel string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// block returns the current block, restarting construction in a fresh
// unreachable block when a terminal statement ended the previous one.
func (b *builder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// edge links from → to.
func (b *builder) edge(from, to *Block, cond ast.Expr, branch bool) *Edge {
	e := &Edge{From: from, To: to, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
	return e
}

// jump ends the current block with an edge to to (no-op when the path
// already terminated).
func (b *builder) jump(to *Block, cond ast.Expr, branch bool) {
	if b.cur == nil {
		return
	}
	b.edge(b.cur, to, cond, branch)
	b.cur = nil
}

// backJump ends the current block with a back edge into a loop head.
func (b *builder) backJump(head *Block, loop ast.Stmt) {
	if b.cur == nil {
		return
	}
	e := b.edge(b.cur, head, nil, false)
	e.Back, e.Loop = true, loop
	b.cur = nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for i, s := range list {
		// A fallthrough statement is handled by the enclosing switch
		// clause builder; skip it here.
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			continue
		}
		_ = i
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		blk := b.cur
		b.g.Returns = append(b.g.Returns, blk)
		b.cur = nil
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.cur = nil
		}
	case nil:
		// skip
	default:
		// Assign, Decl, Defer, Go, Send, IncDec, Empty: straight-line.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	head := b.block()
	b.cur = nil
	then := b.newBlock("if.then")
	b.edge(head, then, s.Cond, true)
	done := b.newBlock("if.done")

	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(done, nil, false)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(head, els, s.Cond, false)
		b.cur = els
		b.stmt(s.Else)
		b.jump(done, nil, false)
	} else {
		b.edge(head, done, s.Cond, false)
	}
	b.cur = done
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head, nil, false)
	body := b.newBlock("for.body")
	done := b.newBlock("for.done")
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.edge(head, body, s.Cond, true)
		b.edge(head, done, s.Cond, false)
	} else {
		b.edge(head, body, nil, false)
	}
	// continue runs Post (when present) and re-enters the head.
	contTarget := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock("for.post")
		contTarget = post
	}
	b.pushLoop(label, done, contTarget)
	b.cur = body
	b.stmtList(s.Body.List)
	b.popLoop()
	if post != nil {
		b.jump(post, nil, false)
		b.cur = post
		b.stmt(s.Post)
		b.backJump(head, s)
	} else {
		b.backJump(head, s)
	}
	b.cur = done
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	// The range expression is evaluated once, before the loop.
	b.add(s.X)
	head := b.newBlock("range.head")
	b.jump(head, nil, false)
	// The RangeStmt marker re-binds the iteration variables each trip.
	head.Nodes = append(head.Nodes, s)
	body := b.newBlock("range.body")
	done := b.newBlock("range.done")
	b.edge(head, body, nil, false)
	b.edge(head, done, nil, false)
	b.pushLoop(label, done, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.popLoop()
	b.backJump(head, s)
	b.cur = done
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	head := b.block()
	b.cur = nil
	done := b.newBlock("switch.done")
	b.caseClauses(s.Body, head, done, label, false)
	b.cur = done
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	// The assign (x := y.(type) or plain y.(type)) executes once.
	b.add(s.Assign)
	head := b.block()
	b.cur = nil
	done := b.newBlock("typeswitch.done")
	b.caseClauses(s.Body, head, done, label, false)
	b.cur = done
}

// caseClauses wires a switch/type-switch body: one block per clause,
// all fed from head; a missing default adds the fallthrough edge
// head → done. isTypeSwitchComm is unused for switches (see selectStmt
// for select wiring).
func (b *builder) caseClauses(body *ast.BlockStmt, head, done *Block, label string, _ bool) {
	hasDefault := false
	// Build clause entry blocks first so fallthrough can target the
	// next clause.
	entries := make([]*Block, len(body.List))
	for i, cs := range body.List {
		entries[i] = b.newBlock("case")
		if cc, ok := cs.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			// Case expressions evaluate before the clause is chosen;
			// attach them to the clause entry (they only run when the
			// dispatch reaches this clause).
			for _, x := range cc.List {
				entries[i].Nodes = append(entries[i].Nodes, x)
			}
		}
		b.edge(head, entries[i], nil, false)
	}
	if !hasDefault {
		b.edge(head, done, nil, false)
	}
	b.pushBreak(label, done)
	for i, cs := range body.List {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = entries[i]
		b.stmtList(cc.Body)
		// An explicit fallthrough transfers to the next clause body.
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && i+1 < len(entries) {
				b.jump(entries[i+1], nil, false)
				continue
			}
		}
		b.jump(done, nil, false)
	}
	b.popBreak()
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.block()
	b.cur = nil
	done := b.newBlock("select.done")
	if len(s.Body.List) == 0 {
		// select{} blocks forever: no successors.
		return
	}
	b.pushBreak(label, done)
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		entry := b.newBlock("select.comm")
		b.edge(head, entry, nil, false)
		b.cur = entry
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(done, nil, false)
	}
	b.popBreak()
	// A select with no default blocks until one case proceeds: there is
	// no head → done fallthrough edge in either case (a default arm is
	// just another clause).
	b.cur = done
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	name := s.Label.Name
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{}
		b.labels[name] = li
	}
	if li.block == nil {
		li.block = b.newBlock("label." + name)
	}
	b.jump(li.block, nil, false)
	b.cur = li.block
	b.pendingLabel = name
	b.stmt(s.Stmt)
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, label); t != nil {
			b.jump(t, nil, false)
		} else {
			b.cur = nil
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, label); t != nil {
			b.jump(t, nil, false)
		} else {
			b.cur = nil
		}
	case token.GOTO:
		li := b.labels[label]
		if li == nil {
			li = &labelInfo{}
			b.labels[label] = li
		}
		if li.block == nil {
			li.block = b.newBlock("label." + label)
		}
		b.jump(li.block, nil, false)
	case token.FALLTHROUGH:
		// Handled by caseClauses; a stray fallthrough ends the path.
		b.cur = nil
	}
}

func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	b.continues = append(b.continues, branchTarget{label: label, block: cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreak(label string, brk *Block) {
	b.breaks = append(b.breaks, branchTarget{label: label, block: brk})
	// A switch/select does not introduce a continue target, but an
	// unlabeled continue inside it must still reach the enclosing loop,
	// so the continue stack is left untouched.
}

func (b *builder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// isTerminalCall recognizes call statements that end the path: panic
// and the conventional process-exit helpers.
func isTerminalCall(x ast.Expr) bool {
	call, ok := x.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "Fatalln", "Exit", "Goexit":
			if pkg, ok := fun.X.(*ast.Ident); ok {
				return pkg.Name == "os" || pkg.Name == "log" || pkg.Name == "runtime"
			}
		}
	}
	return false
}
