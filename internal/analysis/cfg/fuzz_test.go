package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// FuzzCFGBuild feeds synthesized (and mutated) function bodies through
// the builder and asserts the structural invariants hold for anything
// that parses: no panics, edges well-formed, every return block ends in
// a return, liveness consistent with predecessors.
func FuzzCFGBuild(f *testing.F) {
	seeds := []string{
		// nested loops with labeled break/continue
		`outer:
		for i := 0; i < 9; i++ {
			for j := i; j > 0; j-- {
				if j == 2 {
					continue outer
				}
				if i+j > 7 {
					break outer
				}
			}
		}`,
		// select with default and defer
		`ch := make(chan int, 1)
		defer close(ch)
		select {
		case v := <-ch:
			_ = v
		case ch <- 1:
		default:
			return
		}`,
		// switch with fallthrough and init
		`switch x := f(); x {
		case 1:
			fallthrough
		case 2:
			return
		default:
			panic("x")
		}`,
		// type switch
		`switch v := any(1).(type) {
		case int:
			_ = v
		case string:
		default:
		}`,
		// goto web
		`i := 0
	top:
		if i > 3 {
			goto end
		}
		i++
		goto top
	end:
		_ = i`,
		// range over map with early return
		`for k, v := range m {
			if k == v {
				return
			}
		}`,
		// infinite loop with select arms
		`for {
			select {
			case <-done:
				return
			case x := <-in:
				if x < 0 {
					continue
				}
			}
		}`,
		// terminal calls
		`if bad {
			os.Exit(2)
		}
		log.Fatalf("x")
		println("dead")`,
		// empty bodies and degenerate forms
		``,
		`;`,
		`{}`,
		`select {}`,
		`for {
		}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		if len(body) > 1<<14 {
			return
		}
		src := "package p\nfunc f() {\n" + body + "\n}\n"
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fz.go", src, 0)
		if err != nil {
			return // not valid Go: out of scope
		}
		fd, ok := file.Decls[0].(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return
		}
		g := New(fd.Body)
		checkInvariants(t, g)
		// Every graph must also survive a trivial fixpoint pass.
		fl := &Flow[*int]{
			Entry:    func() *int { v := 0; return &v },
			Clone:    func(s *int) *int { v := *s; return &v },
			Merge:    func(dst, src *int) bool { return false },
			Transfer: func(ast.Node, *int) {},
		}
		if _, ok := fl.Forward(g); !ok {
			t.Fatalf("monotone no-op fixpoint failed to converge")
		}
	})
}
