package cfg

import "go/ast"

// Flow is a forward dataflow problem over a Graph. The state type S is
// client-defined; the engine only needs to create, copy, merge and
// advance states. Merge must be monotone for termination — the visit
// budget is the backstop when it is not.
type Flow[S any] struct {
	// Entry produces the state on function entry.
	Entry func() S
	// Clone deep-copies a state so per-edge refinement cannot alias.
	Clone func(S) S
	// Merge joins src into dst in place and reports whether dst
	// changed (the block must be revisited).
	Merge func(dst, src S) bool
	// Transfer advances the state across one block node.
	Transfer func(n ast.Node, s S)
	// Refine (optional) specializes the state along a conditional edge:
	// cond is the branch condition, branch its outcome on this edge.
	Refine func(cond ast.Expr, branch bool, s S)
	// MaxVisits bounds how many times one block may be processed
	// (default 64). Exhausting it abandons the fixpoint.
	MaxVisits int
}

// Forward runs the worklist fixpoint and returns the state at entry to
// every reached block. ok is false when the visit budget ran out before
// convergence — callers should then skip reporting for the function
// rather than report from a half-converged state.
func (f *Flow[S]) Forward(g *Graph) (in map[*Block]S, ok bool) {
	budget := f.MaxVisits
	if budget <= 0 {
		budget = 64
	}
	in = make(map[*Block]S, len(g.Blocks))
	visits := make([]int, len(g.Blocks))
	in[g.Entry] = f.Entry()

	work := []*Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false
		visits[b.Index]++
		if visits[b.Index] > budget {
			return in, false
		}

		s := f.Clone(in[b])
		for _, n := range b.Nodes {
			f.Transfer(n, s)
		}
		for _, e := range b.Succs {
			out := f.Clone(s)
			if e.Cond != nil && f.Refine != nil {
				f.Refine(e.Cond, e.Branch, out)
			}
			prev, seen := in[e.To]
			changed := false
			if !seen {
				in[e.To] = out
				changed = true
			} else {
				changed = f.Merge(prev, out)
			}
			if changed && !queued[e.To.Index] {
				queued[e.To.Index] = true
				work = append(work, e.To)
			}
		}
	}
	return in, true
}

// ReachedExit reports whether the fixpoint reached the implicit-return
// block (the function can fall off the end of its body).
func ReachedExit[S any](g *Graph, in map[*Block]S) bool {
	_, ok := in[g.Exit]
	return ok
}
