package batchcontract_test

import (
	"testing"

	"github.com/bertha-net/bertha/internal/analysis/analysistest"
	"github.com/bertha-net/bertha/internal/analysis/batchcontract"
)

func TestBatchcontract(t *testing.T) {
	analysistest.Run(t, "batchcontract_a", batchcontract.Analyzer)
}
