// Package batchcontract checks the vectored-send ownership contract
// of the batch data plane (core.BatchConn): SendBufs consumes every
// element of the burst on every path, RecvBufs never reports delivered
// buffers alongside an error, and callers keep their hands off a burst
// once it has been handed down.
//
// Diagnostic categories:
//
//	tail-leak      an error path of a SendBufs implementation returns
//	               without a suffix-coverage event — no call consumed
//	               the unsent tail (core.ReleaseAll(bs[i:]), a whole-
//	               burst delegation, or — when the burst is proven to
//	               have one element — a single-element send)
//	sent-miscount  a path releases bs[lo:] but returns a BatchError
//	               whose Sent disagrees: Sent must equal lo (tail
//	               starts at the failed element) or lo-1 (the failed
//	               element was consumed separately)
//	recv-partial   a RecvBufs implementation returns a non-zero
//	               delivered count together with an error; the
//	               contract is all-or-nothing per call (n == 0 on
//	               error)
//	use-after-send a caller passes a whole []*wire.Buf burst to
//	               SendBufs or ReleaseAll and then reads an element,
//	               re-passes the slice, or ranges over its values;
//	               ownership of every element left with the callee
//
// The analysis is path-sensitive: each function is lowered to a CFG
// (internal/analysis/cfg) and the contract state — suffix coverage,
// the released tail's start, `len(bs) == K` and `err == nil` branch
// refinements — is driven to a fixpoint before any path is judged.
// That is what lets the single-element degradation in the UDP
// transport (`if len(bs) == 1 { ... SendBuf(ctx, bs[0]) ... }`) pass
// without annotation while a genuinely uncovered tail still fails.
//
// Element stores (bs[i] = nil), len/cap, and index-only ranges remain
// legal after a send: they touch the slice header or overwrite
// pointers, not the transferred buffers.
package batchcontract

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"

	"github.com/bertha-net/bertha/internal/analysis"
	"github.com/bertha-net/bertha/internal/analysis/cfg"
)

// Analyzer is the batchcontract pass.
var Analyzer = &analysis.Analyzer{
	Name: "batchcontract",
	Doc:  "check the SendBufs/RecvBufs batch ownership contract (consume the tail on abort, honest Sent counts, no use after send)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if bs, ok := sendBufsParam(pass, fd); ok {
				checkSendContract(pass, fd, bs)
			}
			if recvBufsShape(pass, fd) {
				checkRecvPartial(pass, fd)
			}
			checkUseAfterSend(pass, fd)
		}
	}
	return nil
}

// sendBufsParam recognizes a SendBufs implementation — a function or
// method named SendBufs whose last parameter is the []*wire.Buf burst
// and whose sole result is error — and returns the burst parameter.
func sendBufsParam(pass *analysis.Pass, fd *ast.FuncDecl) (*types.Var, bool) {
	if fd.Name.Name != "SendBufs" {
		return nil, false
	}
	ft := fd.Type
	if ft.Results == nil || len(ft.Results.List) != 1 || len(ft.Params.List) == 0 {
		return nil, false
	}
	if rt := pass.TypesInfo.TypeOf(ft.Results.List[0].Type); rt == nil || rt.String() != "error" {
		return nil, false
	}
	last := ft.Params.List[len(ft.Params.List)-1]
	if !analysis.IsBufSlice(pass.TypesInfo.TypeOf(last.Type)) || len(last.Names) == 0 {
		return nil, false
	}
	name := last.Names[len(last.Names)-1]
	if name.Name == "_" {
		return nil, false
	}
	v, ok := pass.TypesInfo.Defs[name].(*types.Var)
	return v, ok
}

// recvBufsShape recognizes a RecvBufs implementation: named RecvBufs,
// takes a []*wire.Buf, returns (int, error).
func recvBufsShape(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "RecvBufs" {
		return false
	}
	ft := fd.Type
	if ft.Results == nil || len(ft.Results.List) != 2 {
		return false
	}
	for _, p := range ft.Params.List {
		if analysis.IsBufSlice(pass.TypesInfo.TypeOf(p.Type)) {
			return true
		}
	}
	return false
}

// ---- SendBufs contract (tail-leak, sent-miscount) ----

// affine is a value of the form base+off (base nil for constants),
// the shape of both ReleaseAll(bs[i+1:]) slice bounds and
// BatchError{Sent: i} counts.
type affine struct {
	base *types.Var
	off  int64
}

// cstate is the per-path contract state of one SendBufs body.
type cstate struct {
	// covered records that some call consumed the unsent suffix.
	covered bool
	// lenMax is the exact burst length proven by a len(bs)==K branch,
	// -1 when unknown; it licenses single-element coverage via bs[K-1].
	lenMax int64
	// nilErr holds error variables proven nil on this path.
	nilErr map[*types.Var]bool
	// rel is the start of the most recent ReleaseAll(bs[lo:]) suffix,
	// for auditing BatchError.Sent.
	rel      affine
	relValid bool
}

type sendCheck struct {
	pass   *analysis.Pass
	bs     *types.Var
	report bool
}

func checkSendContract(pass *analysis.Pass, fd *ast.FuncDecl, bs *types.Var) {
	a := &sendCheck{pass: pass, bs: bs}
	g := cfg.New(fd.Body)
	flow := cfg.Flow[*cstate]{
		Entry: func() *cstate { return &cstate{lenMax: -1, nilErr: map[*types.Var]bool{}} },
		Clone: cloneCState,
		Merge: mergeCState,
		Transfer: func(n ast.Node, s *cstate) {
			a.transfer(n, s)
		},
		Refine: func(cond ast.Expr, branch bool, s *cstate) {
			a.refine(cond, branch, s)
		},
	}
	in, ok := flow.Forward(g)
	if !ok {
		return
	}
	a.report = true
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		st := cloneCState(in[b])
		for _, n := range b.Nodes {
			if ret, isRet := n.(*ast.ReturnStmt); isRet && len(ret.Results) == 1 {
				a.transfer(ret, st) // a delegation call in the return covers the tail itself
				a.classify(ret, st)
				continue
			}
			a.transfer(n, st)
		}
	}
}

func cloneCState(s *cstate) *cstate {
	c := &cstate{covered: s.covered, lenMax: s.lenMax, rel: s.rel, relValid: s.relValid,
		nilErr: make(map[*types.Var]bool, len(s.nilErr))}
	for v := range s.nilErr {
		c.nilErr[v] = true
	}
	return c
}

// mergeCState joins src into dst: facts survive only when both paths
// agree, which keeps the lattice monotone (every field only decays).
func mergeCState(dst, src *cstate) bool {
	changed := false
	if dst.covered && !src.covered {
		dst.covered = false
		changed = true
	}
	if dst.lenMax != src.lenMax && dst.lenMax != -1 {
		dst.lenMax = -1
		changed = true
	}
	for v := range dst.nilErr {
		if !src.nilErr[v] {
			delete(dst.nilErr, v)
			changed = true
		}
	}
	if dst.relValid && (!src.relValid || dst.rel != src.rel) {
		dst.relValid = false
		changed = true
	}
	return changed
}

func (a *sendCheck) transfer(n ast.Node, s *cstate) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Loop-head marker: only the ranged expression evaluates here.
		a.scanCalls(n.X, s)
		return
	case *ast.AssignStmt:
		a.scanCalls(n, s)
		for _, l := range n.Lhs {
			a.killVar(l, s)
		}
		return
	case *ast.IncDecStmt:
		a.scanCalls(n.X, s)
		a.killVar(n.X, s)
		return
	}
	a.scanCalls(n, s)
}

// killVar drops facts invalidated by an assignment to the variable.
func (a *sendCheck) killVar(l ast.Expr, s *cstate) {
	id, ok := ast.Unparen(l).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	delete(s.nilErr, v)
	if s.relValid && s.rel.base == v {
		s.relValid = false
	}
	if v == a.bs {
		s.covered, s.lenMax, s.relValid = false, -1, false
	}
}

// scanCalls applies every call inside n to the contract state.
func (a *sendCheck) scanCalls(n ast.Node, s *cstate) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			a.call(call, s)
		}
		return true
	})
}

// call updates coverage for one call: passing the whole burst or an
// unbounded-high suffix consumes the tail; a constant element consumes
// it only when refinement proved the burst that short.
func (a *sendCheck) call(call *ast.CallExpr, s *cstate) {
	if isBuiltin(a.pass.TypesInfo, call) {
		return
	}
	release := calleeName(call) == "ReleaseAll"
	for _, arg := range call.Args {
		switch arg := ast.Unparen(arg).(type) {
		case *ast.Ident:
			if a.pass.TypesInfo.ObjectOf(arg) == a.bs {
				s.covered = true
				if release {
					s.rel, s.relValid = affine{}, true
				}
			}
		case *ast.SliceExpr:
			if !a.isBurst(arg.X) || arg.High != nil || arg.Slice3 {
				continue
			}
			s.covered = true
			if release {
				if lo, ok := a.parseAffine(arg.Low); ok {
					s.rel, s.relValid = lo, true
				} else {
					s.relValid = false
				}
			}
		case *ast.IndexExpr:
			if !a.isBurst(arg.X) {
				continue
			}
			if k, ok := constInt(a.pass.TypesInfo, arg.Index); ok && s.lenMax >= 0 && k+1 >= s.lenMax {
				s.covered = true
			}
		}
	}
}

func (a *sendCheck) isBurst(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && a.pass.TypesInfo.ObjectOf(id) == a.bs
}

// parseAffine reads x as base+off / base-off / const / nil-low.
func (a *sendCheck) parseAffine(x ast.Expr) (affine, bool) {
	if x == nil {
		return affine{}, true
	}
	x = ast.Unparen(x)
	if k, ok := constInt(a.pass.TypesInfo, x); ok {
		return affine{off: k}, true
	}
	if id, ok := x.(*ast.Ident); ok {
		if v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
			return affine{base: v}, true
		}
		return affine{}, false
	}
	if bin, ok := x.(*ast.BinaryExpr); ok && (bin.Op == token.ADD || bin.Op == token.SUB) {
		id, ok := ast.Unparen(bin.X).(*ast.Ident)
		if !ok {
			return affine{}, false
		}
		v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var)
		if !ok {
			return affine{}, false
		}
		k, ok := constInt(a.pass.TypesInfo, bin.Y)
		if !ok {
			return affine{}, false
		}
		if bin.Op == token.SUB {
			k = -k
		}
		return affine{base: v, off: k}, true
	}
	return affine{}, false
}

// refine narrows the state along a conditional edge: len(bs)==K pins
// the burst length, err==nil clears an error variable.
func (a *sendCheck) refine(cond ast.Expr, branch bool, s *cstate) {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return
	}
	// The fact holds on the == true edge and the != false edge.
	holds := (bin.Op == token.EQL) == branch
	if !holds {
		return
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if k, ok := a.lenCompare(x, y); ok {
		s.lenMax = k
		if k == 0 {
			s.covered = true // an empty burst has no tail to consume
		}
		return
	}
	if k, ok := a.lenCompare(y, x); ok {
		s.lenMax = k
		if k == 0 {
			s.covered = true
		}
		return
	}
	if v, ok := nilCompare(a.pass.TypesInfo, x, y); ok {
		s.nilErr[v] = true
	} else if v, ok := nilCompare(a.pass.TypesInfo, y, x); ok {
		s.nilErr[v] = true
	}
}

// lenCompare matches len(bs) against a constant.
func (a *sendCheck) lenCompare(lenSide, constSide ast.Expr) (int64, bool) {
	call, ok := lenSide.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return 0, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "len" {
		return 0, false
	}
	if !a.isBurst(call.Args[0]) {
		return 0, false
	}
	return constInt(a.pass.TypesInfo, constSide)
}

// nilCompare matches an identifier compared against nil.
func nilCompare(info *types.Info, idSide, nilSide ast.Expr) (*types.Var, bool) {
	if tv, ok := info.Types[nilSide]; !ok || !tv.IsNil() {
		return nil, false
	}
	id, ok := idSide.(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := info.ObjectOf(id).(*types.Var)
	return v, ok
}

// classify judges one `return X` of a SendBufs body under the path
// state accumulated up to it.
func (a *sendCheck) classify(ret *ast.ReturnStmt, s *cstate) {
	x := ast.Unparen(ret.Results[0])
	if tv, ok := a.pass.TypesInfo.Types[x]; ok && tv.IsNil() {
		return // success path: the callee transmitted everything
	}
	if id, ok := x.(*ast.Ident); ok {
		if v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && s.nilErr[v] {
			return // refined nil: this is a success path in disguise
		}
	}
	if !s.covered {
		a.pass.Reportf(ret.Pos(), "tail-leak",
			"error path returns without consuming the unsent tail of %s; SendBufs owns every element — core.ReleaseAll the suffix (or delegate the whole burst) before returning",
			a.bs.Name())
	}
	if s.relValid {
		a.auditSent(x, s)
	}
}

// auditSent compares BatchError.Sent against the released suffix
// start lo: Sent==lo means the tail began at the failure, Sent==lo-1
// means the failed element was consumed separately; anything else
// lies to the caller about how many messages went out.
func (a *sendCheck) auditSent(x ast.Expr, s *cstate) {
	ue, ok := x.(*ast.UnaryExpr)
	if !ok || ue.Op != token.AND {
		return
	}
	cl, ok := ast.Unparen(ue.X).(*ast.CompositeLit)
	if !ok || !isBatchError(a.pass.TypesInfo, cl) {
		return
	}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Sent" {
			continue
		}
		sent, ok := a.parseAffine(kv.Value)
		if !ok || sent.base != s.rel.base {
			return
		}
		if diff := sent.off - s.rel.off; diff > 0 || diff < -1 {
			a.pass.Reportf(kv.Value.Pos(), "sent-miscount",
				"BatchError.Sent claims %s but the released tail starts at %s; Sent must count only transmitted messages (the tail start, or one less when the failed element was consumed separately)",
				affineString(sent), affineString(s.rel))
		}
		return
	}
}

func isBatchError(info *types.Info, cl *ast.CompositeLit) bool {
	t := info.TypeOf(cl)
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "BatchError"
}

func affineString(a affine) string {
	switch {
	case a.base == nil:
		return strconv.FormatInt(a.off, 10)
	case a.off == 0:
		return a.base.Name()
	case a.off > 0:
		return a.base.Name() + "+" + strconv.FormatInt(a.off, 10)
	}
	return a.base.Name() + "-" + strconv.FormatInt(-a.off, 10)
}

// ---- RecvBufs contract (recv-partial) ----

// checkRecvPartial flags `return K, err` with a non-zero constant
// count and a non-nil error: the batch receive contract is
// all-or-nothing per call. Reachability comes from the CFG so dead
// returns do not count.
func checkRecvPartial(pass *analysis.Pass, fd *ast.FuncDecl) {
	dead := cfg.New(fd.Body).UnreachableSpans()
	reachable := func(p token.Pos) bool {
		for _, sp := range dead {
			if sp.Contains(p) {
				return false
			}
		}
		return true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 2 || !reachable(ret.Pos()) {
			return true
		}
		k, ok := constInt(pass.TypesInfo, ret.Results[0])
		if !ok || k == 0 {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[ast.Unparen(ret.Results[1])]; ok && tv.IsNil() {
			return true
		}
		pass.Reportf(ret.Pos(), "recv-partial",
			"RecvBufs returns %d delivered buffers alongside an error; the contract is all-or-nothing per call — release the bad elements, compact survivors, and return (0, err) only when nothing was delivered",
			k)
		return true
	})
}

// ---- caller side (use-after-send) ----

// ustate tracks which burst variables have been handed down on this
// path.
type ustate struct {
	sent map[*types.Var]bool
}

type useCheck struct {
	pass   *analysis.Pass
	report bool
}

func checkUseAfterSend(pass *analysis.Pass, fd *ast.FuncDecl) {
	a := &useCheck{pass: pass}
	g := cfg.New(fd.Body)
	flow := cfg.Flow[*ustate]{
		Entry: func() *ustate { return &ustate{sent: map[*types.Var]bool{}} },
		Clone: func(s *ustate) *ustate {
			c := &ustate{sent: make(map[*types.Var]bool, len(s.sent))}
			for v := range s.sent {
				c.sent[v] = true
			}
			return c
		},
		// A variable counts as sent if any path sent it: union merge.
		Merge: func(dst, src *ustate) bool {
			changed := false
			for v := range src.sent {
				if !dst.sent[v] {
					dst.sent[v] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(n ast.Node, s *ustate) {
			a.transfer(n, s)
		},
	}
	in, ok := flow.Forward(g)
	if !ok {
		return
	}
	a.report = true
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		st := flow.Clone(in[b])
		for _, n := range b.Nodes {
			a.transfer(n, st)
		}
	}
}

func (a *useCheck) transfer(n ast.Node, s *ustate) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		// Marker node: the ranged expression and the iteration vars.
		// An index-only range reads just the header; a value variable
		// would copy element pointers the callee already released.
		if v, sentVar := a.sentIdent(n.X, s); sentVar {
			if n.Value != nil && !isBlankExpr(n.Value) {
				a.flag(n.X.Pos(), v)
			}
		} else {
			a.scan(n.X, s)
		}
		return
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			a.scan(r, s)
		}
		for _, l := range n.Lhs {
			switch l := ast.Unparen(l).(type) {
			case *ast.Ident:
				// Rebinding forgets the old burst.
				if v, ok := a.pass.TypesInfo.ObjectOf(l).(*types.Var); ok {
					delete(s.sent, v)
				}
			case *ast.IndexExpr:
				// Element stores stay legal (nil-ing out a flushed
				// burst); only the index expression itself evaluates.
				a.scan(l.Index, s)
			default:
				a.scan(l, s)
			}
		}
		return
	}
	a.scan(n, s)
}

// scan walks an expression flagging uses of sent bursts and applying
// new send events.
func (a *useCheck) scan(n ast.Node, s *ustate) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isBuiltin(a.pass.TypesInfo, x) {
				return false // len/cap read the header, not elements
			}
			a.callUse(x, s)
			return false // callUse walked the subtree itself
		case *ast.IndexExpr:
			if v, sentVar := a.sentIdent(x.X, s); sentVar {
				a.flag(x.Pos(), v)
			}
		case *ast.SliceExpr:
			if v, sentVar := a.sentIdent(x.X, s); sentVar {
				a.flag(x.Pos(), v)
			}
		}
		return true
	})
}

// callUse flags sent bursts re-passed to any call, then marks bursts
// consumed by this call if it is a send/release. All argument
// subtrees are walked before the marks land, so a call's own
// consuming arguments are never flagged against themselves.
func (a *useCheck) callUse(call *ast.CallExpr, s *ustate) {
	a.scan(call.Fun, s)
	name := calleeName(call)
	consumes := name == "SendBufs" || name == "ReleaseAll"
	var marks []*types.Var
	for _, arg := range call.Args {
		inner := ast.Unparen(arg)
		if id, ok := inner.(*ast.Ident); ok {
			v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var)
			if !ok || !analysis.IsBufSlice(v.Type()) {
				continue
			}
			if s.sent[v] {
				a.flag(arg.Pos(), v)
			}
			if consumes {
				marks = append(marks, v)
			}
			continue
		}
		// A suffix argument to a consuming call (ReleaseAll(bs[i:]))
		// consumes the whole logical tail: the base counts as sent
		// afterwards.
		if sl, ok := inner.(*ast.SliceExpr); ok && consumes && sl.High == nil && !sl.Slice3 {
			if v, wasSent := a.sentIdent(sl.X, s); wasSent {
				a.flag(sl.Pos(), v)
			}
			if id, ok := ast.Unparen(sl.X).(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var); ok && analysis.IsBufSlice(v.Type()) {
					marks = append(marks, v)
					a.scan(sl.Low, s)
					continue
				}
			}
		}
		a.scan(arg, s)
	}
	for _, v := range marks {
		s.sent[v] = true
	}
}

func (a *useCheck) sentIdent(x ast.Expr, s *ustate) (*types.Var, bool) {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := a.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || !s.sent[v] {
		return nil, false
	}
	return v, true
}

func (a *useCheck) flag(pos token.Pos, v *types.Var) {
	if !a.report {
		return
	}
	a.pass.Reportf(pos, "use-after-send",
		"%s was handed to the batch send path, which owns (and may already have released) every element; reading or re-passing it here races with that release",
		v.Name())
}

func isBlankExpr(x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	return ok && id.Name == "_"
}

// ---- shared helpers ----

func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func isBuiltin(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

func constInt(info *types.Info, x ast.Expr) (int64, bool) {
	tv, ok := info.Types[ast.Unparen(x)]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(tv.Value)
}
