// Facts: the cross-package memory of the berthavet suite.
//
// An analyzer running over package P may record a Fact about one of P's
// objects (a function, usually) or about P itself. When another package
// later imports P, the analyzers running over the importer can consult
// those facts instead of bailing at the package boundary — a caller in
// internal/chunnels can know that a transport function blocks without
// consuming a context, borrows its Buf parameter, or prepends a bounded
// number of bytes.
//
// Facts travel two ways, mirroring golang.org/x/tools/go/analysis:
//
//   - Standalone (`berthavet ./...`): the driver analyzes packages in
//     dependency order and threads one in-memory FactStore through every
//     pass.
//   - Unitchecker (`go vet -vettool`): each package's facts are
//     gob-encoded into the .vetx file the go command asks the tool to
//     write (VetxOutput), and decoded back from the .vetx files of the
//     package's dependencies (PackageVetx). A package's .vetx carries
//     its dependencies' facts too, so facts flow transitively.
//
// Objects are addressed by (package path, object key), where the key is
// "F" for a package-level function or "T.M" for a method — the only
// object shapes the suite records facts about. Fact types must be
// gob-encodable structs registered via Analyzer.FactTypes.
package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a serializable property of an object or package, produced
// by one analyzer and consumed by later runs over importing packages.
// Implementations must be pointers to gob-encodable structs.
type Fact interface {
	// AFact marks the type as a fact (and gives vet a method to find).
	AFact()
}

// ObjectKey renders the stable cross-package address of an object:
// "F" for a package-level func/var, "T.M" for a method (pointer and
// value receivers collapse to the same key). It returns "" for objects
// the fact system does not address (locals, imported aliases, etc.).
func ObjectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
		return fn.Name()
	}
	// Package-level objects other than functions are addressable by
	// plain name; anything in a local scope is not.
	if obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	return ""
}

// factKey addresses one fact: the analyzer that produced it, the
// package it describes, and the object key ("" for a package fact).
type factKey struct {
	Analyzer string
	Pkg      string
	Obj      string
}

// A FactStore holds every fact known to one driver invocation. It is
// shared across analyzers and packages within a run and is safe for
// concurrent use: the parallel standalone driver analyzes independent
// packages of one dependency wave on separate goroutines, each reading
// its dependencies' facts and writing its own.
type FactStore struct {
	mu sync.RWMutex
	m  map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: map[factKey]Fact{}}
}

func (s *FactStore) put(k factKey, f Fact) {
	s.mu.Lock()
	s.m[k] = f
	s.mu.Unlock()
}

// get copies the stored fact for k into dst when one of the same
// concrete type exists.
func (s *FactStore) get(k factKey, dst Fact) bool {
	s.mu.RLock()
	f, ok := s.m[k]
	s.mu.RUnlock()
	if !ok {
		return false
	}
	dv, fv := reflect.ValueOf(dst), reflect.ValueOf(f)
	if dv.Type() != fv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(fv.Elem())
	return true
}

// PackageFact pairs a fact with the package it describes, for
// AllPackageFacts listings.
type PackageFact struct {
	Path string
	Fact Fact
}

// allPackageFacts returns every package-level fact recorded by the
// named analyzer for any package in paths, sorted by path for
// deterministic diagnostics.
func (s *FactStore) allPackageFacts(analyzer string, paths map[string]bool) []PackageFact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []PackageFact
	for k, f := range s.m {
		if k.Analyzer == analyzer && k.Obj == "" && paths[k.Pkg] {
			out = append(out, PackageFact{Path: k.Pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// ModulePackageFacts returns every package-level fact the named
// analyzer exported for any package in the store, regardless of import
// relationships. This is the standalone driver's module-global view,
// used for whole-module checks (like sibling-package lock-order cycles)
// that no single per-package pass can see.
func (s *FactStore) ModulePackageFacts(analyzer string) []PackageFact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []PackageFact
	for k, f := range s.m {
		if k.Analyzer == analyzer && k.Obj == "" {
			out = append(out, PackageFact{Path: k.Pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// wireFact is the gob frame for one serialized fact.
type wireFact struct {
	Analyzer string
	Pkg      string
	Obj      string
	Fact     Fact
}

// vetxMagic heads every berthavet .vetx payload so a foreign or
// truncated file is rejected rather than misdecoded.
const vetxMagic = "berthavet-facts\n"

// EncodeVetx serializes the whole store for a .vetx file.
func (s *FactStore) EncodeVetx() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(vetxMagic)
	s.mu.RLock()
	frames := make([]wireFact, 0, len(s.m))
	for k, f := range s.m {
		frames = append(frames, wireFact{Analyzer: k.Analyzer, Pkg: k.Pkg, Obj: k.Obj, Fact: f})
	}
	s.mu.RUnlock()
	sort.Slice(frames, func(i, j int) bool {
		a, b := frames[i], frames[j]
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Obj < b.Obj
	})
	if err := gob.NewEncoder(&buf).Encode(frames); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeVetx merges the facts serialized in data into the store. Data
// written before facts existed (the bare "berthavet" placeholder) or by
// another tool is ignored rather than failed: a missing fact only makes
// analyzers conservative.
func (s *FactStore) DecodeVetx(data []byte) error {
	if !bytes.HasPrefix(data, []byte(vetxMagic)) {
		return nil
	}
	var frames []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data[len(vetxMagic):])).Decode(&frames); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	for _, fr := range frames {
		s.put(factKey{Analyzer: fr.Analyzer, Pkg: fr.Pkg, Obj: fr.Obj}, fr.Fact)
	}
	return nil
}

// ReadVetxFile merges facts from a dependency's .vetx file. A file that
// does not exist or predates the fact format is silently skipped.
func (s *FactStore) ReadVetxFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil // dependency vetted by an older tool: no facts
	}
	return s.DecodeVetx(data)
}

// RegisterFactTypes registers every fact type of the analyzers with gob
// so wireFact frames can carry them as interface values. Call once per
// process before encoding or decoding.
func RegisterFactTypes(analyzers []*Analyzer) {
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			gob.Register(f)
		}
	}
}

// ---- Pass-level fact API ----

// ExportObjectFact records a fact about an object of the package under
// analysis. Objects outside the pass's package are rejected: a pass may
// only describe its own package.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() != p.Pkg {
		return
	}
	key := ObjectKey(obj)
	if key == "" {
		return
	}
	p.Facts.put(factKey{Analyzer: p.Analyzer.Name, Pkg: p.Pkg.Path(), Obj: key}, f)
}

// ImportObjectFact copies into f the fact of f's concrete type recorded
// by this analyzer about obj — an object of any package whose facts are
// in the store. It reports whether such a fact existed.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key := ObjectKey(obj)
	if key == "" {
		return false
	}
	return p.Facts.get(factKey{Analyzer: p.Analyzer.Name, Pkg: obj.Pkg().Path(), Obj: key}, f)
}

// ExportPackageFact records a fact about the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if p.Facts == nil {
		return
	}
	p.Facts.put(factKey{Analyzer: p.Analyzer.Name, Pkg: p.Pkg.Path()}, f)
}

// ImportPackageFact copies into f this analyzer's fact about pkg.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if p.Facts == nil || pkg == nil {
		return false
	}
	return p.Facts.get(factKey{Analyzer: p.Analyzer.Name, Pkg: pkg.Path()}, f)
}

// AllPackageFacts returns this analyzer's package facts for every
// package in the transitive import closure of the package under
// analysis (including itself) — the visibility rule of the vetx flow:
// a pass can only know about packages it could have imported facts
// from.
func (p *Pass) AllPackageFacts() []PackageFact {
	if p.Facts == nil {
		return nil
	}
	paths := map[string]bool{p.Pkg.Path(): true}
	var walk func(pkg *types.Package)
	walk = func(pkg *types.Package) {
		for _, imp := range pkg.Imports() {
			if !paths[imp.Path()] {
				paths[imp.Path()] = true
				walk(imp)
			}
		}
	}
	walk(p.Pkg)
	return p.Facts.allPackageFacts(p.Analyzer.Name, paths)
}
