package ycsb

import (
	"math"
	"testing"
	"testing/quick"
)

func gen(t *testing.T, w Workload, dist Distribution, override bool, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(Config{
		Workload: w, Records: 1000, Dist: dist, OverrideDist: override,
		ValueSize: 64, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mix(g *Generator, n int) map[OpKind]int {
	counts := map[OpKind]int{}
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	return counts
}

func TestWorkloadMixes(t *testing.T) {
	const n = 20000
	cases := []struct {
		w    Workload
		want map[OpKind]float64
	}{
		{WorkloadA, map[OpKind]float64{Read: 0.5, Update: 0.5}},
		{WorkloadB, map[OpKind]float64{Read: 0.95, Update: 0.05}},
		{WorkloadC, map[OpKind]float64{Read: 1.0}},
		{WorkloadD, map[OpKind]float64{Read: 0.95, Insert: 0.05}},
		{WorkloadF, map[OpKind]float64{Read: 0.5, ReadModifyWrite: 0.5}},
	}
	for _, c := range cases {
		t.Run(c.w.Name, func(t *testing.T) {
			counts := mix(gen(t, c.w, Uniform, true, 1), n)
			for kind, want := range c.want {
				got := float64(counts[kind]) / n
				if math.Abs(got-want) > 0.02 {
					t.Errorf("%s fraction %.3f, want %.2f", kind, got, want)
				}
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := gen(t, WorkloadA, Uniform, true, 42)
	b := gen(t, WorkloadA, Uniform, true, 42)
	for i := 0; i < 500; i++ {
		oa, ob := a.Next(), b.Next()
		if oa.Kind != ob.Kind || oa.Key != ob.Key {
			t.Fatalf("streams diverge at %d: %v vs %v", i, oa, ob)
		}
	}
	c := gen(t, WorkloadA, Uniform, true, 43)
	same := 0
	for i := 0; i < 500; i++ {
		if a.Next().Key == c.Next().Key {
			same++
		}
	}
	if same > 50 {
		t.Errorf("different seeds look identical: %d/500 matches", same)
	}
}

func TestUniformCoversKeyspaceEvenly(t *testing.T) {
	g := gen(t, WorkloadC, Uniform, true, 7)
	buckets := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		var k int
		if _, err := sscanKey(g.Next().Key, &k); err != nil {
			t.Fatal(err)
		}
		buckets[k*10/1000]++
	}
	for i, b := range buckets {
		frac := float64(b) / n
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("bucket %d fraction %.3f", i, frac)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g := gen(t, WorkloadC, Zipfian, true, 7)
	counts := map[string]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// The most popular key should take far more than the uniform share.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniformShare := n / 1000
	if max < 5*uniformShare {
		t.Errorf("zipfian max %d not skewed vs uniform share %d", max, uniformShare)
	}
	// But the tail must still be covered.
	if len(counts) < 200 {
		t.Errorf("only %d distinct keys drawn", len(counts))
	}
}

func TestLatestSkewsRecent(t *testing.T) {
	g := gen(t, WorkloadC, Latest, true, 7)
	recent := 0
	const n = 20000
	for i := 0; i < n; i++ {
		var k int
		sscanKey(g.Next().Key, &k)
		if k >= 900 {
			recent++
		}
	}
	if float64(recent)/n < 0.5 {
		t.Errorf("latest distribution drew recent keys only %.2f of the time", float64(recent)/n)
	}
}

func TestInsertGrowsKeyspace(t *testing.T) {
	g := gen(t, WorkloadD, Latest, false, 3)
	maxKey := 0
	for i := 0; i < 5000; i++ {
		op := g.Next()
		var k int
		sscanKey(op.Key, &k)
		if op.Kind == Insert && k > maxKey {
			maxKey = k
		}
	}
	if maxKey < 1000 {
		t.Errorf("inserts did not extend the keyspace: max inserted key %d", maxKey)
	}
}

func TestInitialKeysAndKeyFormat(t *testing.T) {
	g := gen(t, WorkloadA, Uniform, true, 1)
	keys := g.InitialKeys()
	if len(keys) != 1000 {
		t.Fatalf("initial keys: %d", len(keys))
	}
	if keys[0] != "000000000000" || keys[999] != "000000000999" {
		t.Errorf("key format: %q .. %q", keys[0], keys[999])
	}
	if len(Key(42)) != 12 {
		t.Errorf("key width: %q", Key(42))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewGenerator(Config{Workload: WorkloadA, Records: 0}); err == nil {
		t.Error("zero records accepted")
	}
	bad := Workload{Name: "X", ReadProp: 0.5}
	if _, err := NewGenerator(Config{Workload: bad, Records: 10}); err == nil {
		t.Error("non-unit mix accepted")
	}
}

func TestQuickKeysInRange(t *testing.T) {
	g := gen(t, WorkloadA, Zipfian, true, 11)
	f := func() bool {
		op := g.Next()
		var k int
		if _, err := sscanKey(op.Key, &k); err != nil {
			return false
		}
		return k >= 0 && k < 1000 && len(op.Key) == 12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOpKindAndDistributionNames(t *testing.T) {
	for k := Read; k <= ReadModifyWrite; k++ {
		if k.String() == "" || k.String()[0] == 'O' {
			t.Errorf("kind %d name: %s", k, k)
		}
	}
	for d := Uniform; d <= Latest; d++ {
		if d.String() == "" || d.String()[0] == 'D' {
			t.Errorf("dist %d name: %s", d, d)
		}
	}
}

// sscanKey parses a zero-padded key.
func sscanKey(key string, out *int) (int, error) {
	n := 0
	for _, c := range key {
		if c < '0' || c > '9' {
			continue
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return 1, nil
}
