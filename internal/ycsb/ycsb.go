// Package ycsb generates YCSB-style key-value workloads (Cooper et al.,
// SoCC 2010 — the benchmark the paper's §5 sharding evaluation uses).
// It reproduces the core workload mixes (A–D and F; E requires range
// scans the store does not expose) and the standard request
// distributions: uniform, zipfian, and latest.
//
// Generators are deterministic for a given seed, so experiments are
// reproducible.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is a workload operation type.
type OpKind uint8

// Operation kinds.
const (
	// Read fetches one record.
	Read OpKind = iota
	// Update rewrites one existing record.
	Update
	// Insert adds a new record.
	Insert
	// ReadModifyWrite reads then rewrites one record (workload F).
	ReadModifyWrite
)

// String returns the kind's name.
func (k OpKind) String() string {
	switch k {
	case Read:
		return "READ"
	case Update:
		return "UPDATE"
	case Insert:
		return "INSERT"
	case ReadModifyWrite:
		return "RMW"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Key  string
	// Value is the payload for writes (nil for reads).
	Value []byte
}

// Distribution selects which record an operation touches.
type Distribution uint8

// Distributions.
const (
	// Uniform picks records equiprobably (the paper's Figure 5 setting).
	Uniform Distribution = iota
	// Zipfian skews toward popular records (YCSB default).
	Zipfian
	// Latest skews toward recently inserted records (workload D).
	Latest
)

// String returns the distribution's name.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	case Latest:
		return "latest"
	default:
		return fmt.Sprintf("Distribution(%d)", uint8(d))
	}
}

// Workload is a named operation mix.
type Workload struct {
	// Name is the YCSB letter.
	Name string
	// ReadProp, UpdateProp, InsertProp, RMWProp are the operation mix
	// (must sum to 1).
	ReadProp, UpdateProp, InsertProp, RMWProp float64
	// DefaultDist is the distribution YCSB specifies for the workload.
	DefaultDist Distribution
}

// Standard workloads.
var (
	// WorkloadA is the update-heavy mix: 50% reads, 50% updates. The
	// paper's Figure 5 runs workload A with uniform keys.
	WorkloadA = Workload{Name: "A", ReadProp: 0.5, UpdateProp: 0.5, DefaultDist: Zipfian}
	// WorkloadB is read-mostly: 95% reads, 5% updates.
	WorkloadB = Workload{Name: "B", ReadProp: 0.95, UpdateProp: 0.05, DefaultDist: Zipfian}
	// WorkloadC is read-only.
	WorkloadC = Workload{Name: "C", ReadProp: 1.0, DefaultDist: Zipfian}
	// WorkloadD is read-latest: 95% reads, 5% inserts.
	WorkloadD = Workload{Name: "D", ReadProp: 0.95, InsertProp: 0.05, DefaultDist: Latest}
	// WorkloadF is read-modify-write: 50% reads, 50% RMW.
	WorkloadF = Workload{Name: "F", ReadProp: 0.5, RMWProp: 0.5, DefaultDist: Zipfian}
)

// Config parameterizes a generator.
type Config struct {
	Workload Workload
	// Records is the initial keyspace size.
	Records int
	// Dist overrides the workload's default distribution (the paper
	// uses Uniform with workload A).
	Dist Distribution
	// OverrideDist must be set for Dist to take effect.
	OverrideDist bool
	// ValueSize is the write payload size in bytes.
	ValueSize int
	// Seed makes the stream deterministic.
	Seed int64
	// ZipfTheta is the zipfian skew (YCSB default 0.99).
	ZipfTheta float64
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *zipfGen
	records int // grows with inserts
	value   []byte
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.Records <= 0 {
		return nil, fmt.Errorf("ycsb: records must be positive, got %d", cfg.Records)
	}
	sum := cfg.Workload.ReadProp + cfg.Workload.UpdateProp + cfg.Workload.InsertProp + cfg.Workload.RMWProp
	if math.Abs(sum-1.0) > 1e-9 {
		return nil, fmt.Errorf("ycsb: workload %s proportions sum to %g, want 1", cfg.Workload.Name, sum)
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 100 // YCSB default field size
	}
	if cfg.ZipfTheta == 0 {
		cfg.ZipfTheta = 0.99
	}
	g := &Generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		records: cfg.Records,
	}
	g.value = make([]byte, cfg.ValueSize)
	g.rng.Read(g.value)
	if g.dist() == Zipfian {
		g.zipf = newZipf(g.rng, cfg.Records, cfg.ZipfTheta)
	}
	return g, nil
}

func (g *Generator) dist() Distribution {
	if g.cfg.OverrideDist {
		return g.cfg.Dist
	}
	return g.cfg.Workload.DefaultDist
}

// Key formats a record number as a fixed-width key (fits kv.KeyLen).
func Key(n int) string {
	return fmt.Sprintf("%012d", n)
}

// pick selects a record under the configured distribution.
func (g *Generator) pick() int {
	switch g.dist() {
	case Uniform:
		return g.rng.Intn(g.records)
	case Zipfian:
		return g.zipf.next() % g.records
	case Latest:
		// Skew toward the most recent records: records-1 - zipf-ish tail.
		back := int(math.Abs(g.rng.ExpFloat64()) * float64(g.records) / 10)
		if back >= g.records {
			back = g.records - 1
		}
		return g.records - 1 - back
	default:
		return g.rng.Intn(g.records)
	}
}

// Next returns the next operation in the stream.
func (g *Generator) Next() Op {
	p := g.rng.Float64()
	w := g.cfg.Workload
	switch {
	case p < w.ReadProp:
		return Op{Kind: Read, Key: Key(g.pick())}
	case p < w.ReadProp+w.UpdateProp:
		return Op{Kind: Update, Key: Key(g.pick()), Value: g.value}
	case p < w.ReadProp+w.UpdateProp+w.InsertProp:
		k := g.records
		g.records++
		return Op{Kind: Insert, Key: Key(k), Value: g.value}
	default:
		return Op{Kind: ReadModifyWrite, Key: Key(g.pick()), Value: g.value}
	}
}

// InitialKeys lists the keys to preload before running the stream.
func (g *Generator) InitialKeys() []string {
	keys := make([]string, g.cfg.Records)
	for i := range keys {
		keys[i] = Key(i)
	}
	return keys
}

// zipfGen implements the Gray et al. bounded zipfian generator YCSB
// uses (quick approximation via the standard incremental method).
type zipfGen struct {
	rng              *rand.Rand
	n                int
	theta            float64
	alpha, zetan     float64
	eta, thetaFactor float64
}

func newZipf(rng *rand.Rand, n int, theta float64) *zipfGen {
	z := &zipfGen{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	z.thetaFactor = zeta(2, theta)
	return z
}

func zeta(n int, theta float64) float64 {
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

func (z *zipfGen) next() int {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}
