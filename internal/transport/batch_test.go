package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

func udpPairT(t *testing.T) (core.Conn, core.Conn) {
	t.Helper()
	a, b, err := UDPPair("a", "b")
	if err != nil {
		t.Fatalf("udp pair: %v", err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func recvN(ctx context.Context, t *testing.T, c core.Conn, n int) []*wire.Buf {
	t.Helper()
	got := make([]*wire.Buf, 0, n)
	scratch := make([]*wire.Buf, n)
	for len(got) < n {
		k, err := core.RecvBufs(ctx, c, scratch[:n-len(got)])
		if err != nil {
			t.Fatalf("recv after %d of %d: %v", len(got), n, err)
		}
		got = append(got, scratch[:k]...)
	}
	return got
}

// TestUDPBatchRoundTrip pushes one equal-size burst (the GSO fast path
// on linux) and one mixed-size burst (per-message sendmmsg framing)
// through a socket pair and checks every datagram arrives intact with
// its boundaries preserved.
func TestUDPBatchRoundTrip(t *testing.T) {
	ctx := ctxT(t)
	a, b := udpPairT(t)

	sizes := [][]int{
		{128, 128, 128, 128, 128, 128, 128, 128}, // uniform: GSO eligible
		{16, 900, 1, 400, 16, 16},                // mixed: plain sendmmsg
		// Uniform but above the GSO segment cap: must ride sendmmsg (a
		// gso_size beyond the path MTU would EINVAL where sendmmsg
		// delivers via IP fragmentation).
		{2048, 2048, 2048, 2048, 2048, 2048},
	}
	for _, burst := range sizes {
		want := make([][]byte, len(burst))
		bs := make([]*wire.Buf, len(burst))
		for i, n := range burst {
			p := make([]byte, n)
			for j := range p {
				p[j] = byte(i + j)
			}
			want[i] = p
			bs[i] = wire.NewBufFrom(0, p)
		}
		if err := core.SendBufs(ctx, a, bs); err != nil {
			t.Fatalf("SendBufs(%v): %v", burst, err)
		}
		got := recvN(ctx, t, b, len(burst))
		for i, g := range got {
			if !bytes.Equal(g.Bytes(), want[i]) {
				t.Errorf("burst %v message %d: got %d bytes %x..., want %d bytes",
					burst, i, g.Len(), g.Bytes()[:min(8, g.Len())], len(want[i]))
			}
			g.Release()
		}
	}
}

// TestUDPBatchOversizeAborts checks the partial-send contract: an
// oversize element aborts the burst at its index, the valid prefix is
// still transmitted, and BatchError.Sent reports it.
func TestUDPBatchOversizeAborts(t *testing.T) {
	ctx := ctxT(t)
	a, b := udpPairT(t)

	bs := []*wire.Buf{
		wire.NewBufFrom(0, []byte("one")),
		wire.NewBufFrom(0, []byte("two")),
		wire.NewBufFrom(0, make([]byte, MaxDatagram+1)),
		wire.NewBufFrom(0, []byte("four")),
	}
	err := core.SendBufs(ctx, a, bs)
	if !errors.Is(err, core.ErrMessageTooLarge) {
		t.Fatalf("SendBufs = %v, want ErrMessageTooLarge", err)
	}
	if sent := core.BatchSent(err); sent != 2 {
		t.Errorf("BatchError.Sent = %d, want 2", sent)
	}
	for _, g := range recvN(ctx, t, b, 2) {
		g.Release()
	}
}

// TestUDPConcurrentBatchWriters hammers one socket with batched writers
// from several goroutines — the single-wmu-per-burst path plus the GSO
// scratch state must hold up under the race detector — and verifies
// every message arrives uncorrupted.
func TestUDPConcurrentBatchWriters(t *testing.T) {
	ctx := ctxT(t)
	a, b := udpPairT(t)

	const (
		writers = 4
		bursts  = 16
		burstSz = 8
		payload = 32
	)
	// Writers can outrun the kernel's receive queue on loopback and the
	// dropped datagrams would starve the exact-count check below; bound
	// the bursts in flight and let the receiver release slots as it
	// drains. The contention the race detector cares about — concurrent
	// SendBufs on one socket — is unaffected.
	inflight := make(chan struct{}, 8)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < bursts; r++ {
				inflight <- struct{}{}
				bs := make([]*wire.Buf, burstSz)
				for i := range bs {
					m := wire.NewBuf(0, payload)
					binary.LittleEndian.PutUint32(m.Bytes()[0:], uint32(w))
					binary.LittleEndian.PutUint32(m.Bytes()[4:], uint32(r*burstSz+i))
					bs[i] = m
				}
				if err := core.SendBufs(ctx, a, bs); err != nil {
					t.Errorf("writer %d burst %d: %v", w, r, err)
					return
				}
			}
		}(w)
	}

	total := writers * bursts * burstSz
	seen := make(map[[2]uint32]bool, total)
	scratch := make([]*wire.Buf, burstSz)
	for received := 0; received < total; {
		n, err := core.RecvBufs(ctx, b, scratch)
		if err != nil {
			t.Fatalf("recv after %d of %d: %v", received, total, err)
		}
		for _, g := range scratch[:n] {
			received++
			if received%burstSz == 0 {
				<-inflight // one burst drained: admit another
			}
			if g.Len() != payload {
				t.Fatalf("received %d bytes, want %d", g.Len(), payload)
			}
			key := [2]uint32{
				binary.LittleEndian.Uint32(g.Bytes()[0:]),
				binary.LittleEndian.Uint32(g.Bytes()[4:]),
			}
			if seen[key] {
				t.Errorf("duplicate message writer=%d seq=%d", key[0], key[1])
			}
			seen[key] = true
			g.Release()
		}
	}
	wg.Wait()
	if len(seen) != total {
		t.Errorf("received %d distinct messages, want %d", len(seen), total)
	}
}

// TestPipeBatchPartialSendCounted aborts a pipe burst mid-way (context
// deadline with the pipe full) and checks the messages that did go out
// are reflected in both BatchError.Sent and the sent counter — the same
// partial-send accounting socketConn.SendBufs does.
func TestPipeBatchPartialSendCounted(t *testing.T) {
	a, _ := Pipe(core.Addr{}, core.Addr{}, 2)
	sent := countersFor("pipe").sent
	before := sent.Value()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	bs := make([]*wire.Buf, 5)
	for i := range bs {
		bs[i] = wire.NewBuf(0, 4)
	}
	err := core.SendBufs(ctx, a, bs)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SendBufs on full pipe = %v, want DeadlineExceeded", err)
	}
	if n := core.BatchSent(err); n != 2 {
		t.Fatalf("BatchError.Sent = %d, want 2 (pipe capacity)", n)
	}
	if d := sent.Value() - before; d != 2 {
		t.Errorf("sent counter advanced by %d, want 2 (partial burst must be counted)", d)
	}
}

// TestBatchOverLossyPartialLoss sends bursts through a lossy link that
// is not batch-aware: core.SendBufs degrades to the per-message loop,
// losses hit individual elements of the burst, and the survivors arrive
// intact.
func TestBatchOverLossyPartialLoss(t *testing.T) {
	ctx := ctxT(t)
	a, b := Pipe(core.Addr{}, core.Addr{}, 1024)
	lossy := Lossy(a, LossConfig{Seed: 11, DropProb: 0.5})

	const bursts, burstSz = 25, 8
	for r := 0; r < bursts; r++ {
		bs := make([]*wire.Buf, burstSz)
		for i := range bs {
			m := wire.NewBuf(0, 4)
			binary.LittleEndian.PutUint32(m.Bytes(), uint32(r*burstSz+i))
			bs[i] = m
		}
		if err := core.SendBufs(ctx, lossy, bs); err != nil {
			t.Fatalf("burst %d: %v", r, err)
		}
	}
	a.Close()

	got := 0
	scratch := make([]*wire.Buf, burstSz)
	for {
		n, err := core.RecvBufs(ctx, b, scratch)
		if err != nil {
			break // peer closed: drained
		}
		for _, g := range scratch[:n] {
			if g.Len() != 4 {
				t.Fatalf("received %d bytes, want 4", g.Len())
			}
			g.Release()
		}
		got += n
	}
	total := bursts * burstSz
	if got == 0 || got == total {
		t.Errorf("drop rate 0.5 delivered %d of %d", got, total)
	}
	if got < total/4 || got > 3*total/4 {
		t.Errorf("implausible delivery count %d for p=0.5", got)
	}
}

// TestBatchOverLossyReorder sends one large burst through a reordering
// link and drains it with RecvBufs: everything arrives exactly once,
// but not in send order.
func TestBatchOverLossyReorder(t *testing.T) {
	ctx := ctxT(t)
	a, b := Pipe(core.Addr{}, core.Addr{}, 1024)
	lossy := Lossy(a, LossConfig{Seed: 3, ReorderProb: 0.5, ReorderDelay: 30 * time.Millisecond})

	const total = 48
	bs := make([]*wire.Buf, total)
	for i := range bs {
		m := wire.NewBuf(0, 4)
		binary.LittleEndian.PutUint32(m.Bytes(), uint32(i))
		bs[i] = m
	}
	if err := core.SendBufs(ctx, lossy, bs); err != nil {
		t.Fatalf("SendBufs: %v", err)
	}

	var order []uint32
	for _, g := range recvN(ctx, t, b, total) {
		order = append(order, binary.LittleEndian.Uint32(g.Bytes()))
		g.Release()
	}
	seen := make(map[uint32]bool, total)
	inOrder := true
	for i, v := range order {
		if seen[v] {
			t.Errorf("message %d delivered twice", v)
		}
		seen[v] = true
		if i > 0 && v < order[i-1] {
			inOrder = false
		}
	}
	if len(seen) != total {
		t.Errorf("received %d distinct messages, want %d", len(seen), total)
	}
	if inOrder {
		t.Error("reorder config delivered the whole burst in order")
	}
}
