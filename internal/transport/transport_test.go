package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// connPair abstracts the different transports for shared conformance tests.
type connPair struct {
	name string
	make func(t *testing.T) (core.Conn, core.Conn)
}

func pairs() []connPair {
	return []connPair{
		{
			name: "pipe",
			make: func(t *testing.T) (core.Conn, core.Conn) {
				a, b := Pipe(core.Addr{Net: "pipe", Host: "h1", Addr: "a"}, core.Addr{Net: "pipe", Host: "h1", Addr: "b"}, 16)
				t.Cleanup(func() { a.Close(); b.Close() })
				return a, b
			},
		},
		{
			name: "udp",
			make: func(t *testing.T) (core.Conn, core.Conn) {
				l, err := ListenUDP("srv", "127.0.0.1:0")
				if err != nil {
					t.Fatalf("listen: %v", err)
				}
				t.Cleanup(func() { l.Close() })
				cli, err := DialUDP("cli", l.Addr().Addr)
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				t.Cleanup(func() { cli.Close() })
				// The server side materializes on first datagram.
				if err := cli.Send(ctxT(t), []byte("hello")); err != nil {
					t.Fatalf("first send: %v", err)
				}
				srv, err := l.Accept(ctxT(t))
				if err != nil {
					t.Fatalf("accept: %v", err)
				}
				if msg, err := srv.Recv(ctxT(t)); err != nil || string(msg) != "hello" {
					t.Fatalf("priming recv: %q %v", msg, err)
				}
				t.Cleanup(func() { srv.Close() })
				return cli, srv
			},
		},
		{
			name: "unix",
			make: func(t *testing.T) (core.Conn, core.Conn) {
				path := filepath.Join(t.TempDir(), "srv.sock")
				l, err := ListenUnix("h1", path)
				if err != nil {
					t.Fatalf("listen: %v", err)
				}
				t.Cleanup(func() { l.Close() })
				cli, err := DialUnix("h1", path)
				if err != nil {
					t.Fatalf("dial: %v", err)
				}
				t.Cleanup(func() { cli.Close() })
				if err := cli.Send(ctxT(t), []byte("hello")); err != nil {
					t.Fatalf("first send: %v", err)
				}
				srv, err := l.Accept(ctxT(t))
				if err != nil {
					t.Fatalf("accept: %v", err)
				}
				if msg, err := srv.Recv(ctxT(t)); err != nil || string(msg) != "hello" {
					t.Fatalf("priming recv: %q %v", msg, err)
				}
				t.Cleanup(func() { srv.Close() })
				return cli, srv
			},
		},
	}
}

func TestConnConformance(t *testing.T) {
	for _, p := range pairs() {
		p := p
		t.Run(p.name+"/roundtrip", func(t *testing.T) {
			a, b := p.make(t)
			ctx := ctxT(t)
			msgs := [][]byte{[]byte("one"), []byte("two"), bytes.Repeat([]byte{0xAA}, 4096)}
			for _, m := range msgs {
				if err := a.Send(ctx, m); err != nil {
					t.Fatalf("send: %v", err)
				}
			}
			for _, want := range msgs {
				got, err := b.Recv(ctx)
				if err != nil {
					t.Fatalf("recv: %v", err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("got %d bytes, want %d", len(got), len(want))
				}
			}
			// Reverse direction.
			if err := b.Send(ctx, []byte("back")); err != nil {
				t.Fatalf("reverse send: %v", err)
			}
			if got, err := a.Recv(ctx); err != nil || string(got) != "back" {
				t.Fatalf("reverse recv: %q %v", got, err)
			}
		})
		t.Run(p.name+"/boundaries", func(t *testing.T) {
			a, b := p.make(t)
			ctx := ctxT(t)
			// Message boundaries: two sends must not coalesce.
			a.Send(ctx, []byte("first"))
			a.Send(ctx, []byte("second"))
			m1, _ := b.Recv(ctx)
			m2, err := b.Recv(ctx)
			if err != nil || string(m1) != "first" || string(m2) != "second" {
				t.Errorf("boundaries violated: %q / %q / %v", m1, m2, err)
			}
		})
		t.Run(p.name+"/ctx-cancel", func(t *testing.T) {
			a, _ := p.make(t)
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			_, err := a.Recv(ctx)
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("expected deadline error, got %v", err)
			}
			// The conn must still be usable afterwards.
			b := ctxT(t)
			if err := a.Send(b, []byte("still alive")); err != nil {
				t.Errorf("send after cancelled recv: %v", err)
			}
		})
		t.Run(p.name+"/close-unblocks", func(t *testing.T) {
			a, _ := p.make(t)
			done := make(chan error, 1)
			go func() {
				_, err := a.Recv(context.Background())
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			a.Close()
			select {
			case err := <-done:
				if err == nil {
					t.Error("recv returned nil after close")
				}
			case <-time.After(2 * time.Second):
				t.Error("recv did not unblock on close")
			}
		})
		t.Run(p.name+"/concurrent", func(t *testing.T) {
			a, b := p.make(t)
			ctx := ctxT(t)
			const n = 200
			var wg sync.WaitGroup
			wg.Add(2)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					if err := a.Send(ctx, []byte(fmt.Sprintf("m%d", i))); err != nil {
						t.Errorf("send %d: %v", i, err)
						return
					}
				}
			}()
			got := map[string]bool{}
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					m, err := b.Recv(ctx)
					if err != nil {
						t.Errorf("recv %d: %v", i, err)
						return
					}
					got[string(m)] = true
				}
			}()
			wg.Wait()
			if len(got) != n {
				t.Errorf("received %d distinct messages, want %d", len(got), n)
			}
		})
	}
}

func TestPipeCloseSemantics(t *testing.T) {
	a, b := Pipe(core.Addr{Addr: "a"}, core.Addr{Addr: "b"}, 4)
	ctx := ctxT(t)
	a.Send(ctx, []byte("buffered"))
	a.Close()
	// Receiver drains buffered data after peer close.
	if m, err := b.Recv(ctx); err != nil || string(m) != "buffered" {
		t.Fatalf("drain after close: %q %v", m, err)
	}
	if _, err := b.Recv(ctx); !errors.Is(err, core.ErrClosed) {
		t.Errorf("expected ErrClosed, got %v", err)
	}
	if err := b.Send(ctx, []byte("x")); !errors.Is(err, core.ErrClosed) {
		t.Errorf("send to closed peer: %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestPipeSendCopiesBuffer(t *testing.T) {
	a, b := Pipe(core.Addr{}, core.Addr{}, 4)
	ctx := ctxT(t)
	buf := []byte("original")
	a.Send(ctx, buf)
	copy(buf, "MUTATED!")
	got, _ := b.Recv(ctx)
	if string(got) != "original" {
		t.Errorf("send aliased caller buffer: %q", got)
	}
}

func TestPipeNetworkDialListen(t *testing.T) {
	n := NewPipeNetwork()
	ctx := ctxT(t)
	l, err := n.Listen("hostA", "svc:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("hostA", "svc:1"); err == nil {
		t.Error("duplicate bind should fail")
	}
	cli, err := n.DialFrom(ctx, "hostB", core.Addr{Net: "pipe", Addr: "svc:1"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cli.LocalAddr().Host != "hostB" || srv.LocalAddr().Host != "hostA" {
		t.Errorf("host labels: cli=%s srv=%s", cli.LocalAddr(), srv.LocalAddr())
	}
	if cli.RemoteAddr().SameHost(cli.LocalAddr()) {
		t.Error("different hosts must not be SameHost")
	}
	cli.Send(ctx, []byte("ping"))
	if m, err := srv.Recv(ctx); err != nil || string(m) != "ping" {
		t.Fatalf("recv: %q %v", m, err)
	}
	// Dial to a missing address fails.
	if _, err := n.Dial(ctx, core.Addr{Net: "pipe", Addr: "nope"}); err == nil {
		t.Error("dial to unbound address should fail")
	}
	l.Close()
	if _, err := n.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc:1"}); err == nil {
		t.Error("dial after listener close should fail")
	}
	// Rebinding after close works.
	if _, err := n.Listen("hostA", "svc:1"); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
}

func TestUDPDemuxMultiplePeers(t *testing.T) {
	ctx := ctxT(t)
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	const npeers = 5
	clients := make([]core.Conn, npeers)
	for i := range clients {
		c, err := DialUDP("cli", l.Addr().Addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
		if err := c.Send(ctx, []byte(fmt.Sprintf("hi from %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for i := 0; i < npeers; i++ {
		sc, err := l.Accept(ctx)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sc.Recv(ctx)
		if err != nil {
			t.Fatal(err)
		}
		seen[string(m)] = true
		// Echo back; the right client must receive it.
		if err := sc.Send(ctx, append([]byte("echo: "), m...)); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != npeers {
		t.Errorf("distinct peers seen: %d", len(seen))
	}
	for i, c := range clients {
		m, err := c.Recv(ctx)
		if err != nil {
			t.Fatalf("client %d echo: %v", i, err)
		}
		want := fmt.Sprintf("echo: hi from %d", i)
		if string(m) != want {
			t.Errorf("client %d got %q want %q", i, m, want)
		}
	}
}

func TestMessageTooLarge(t *testing.T) {
	ctx := ctxT(t)
	l, _ := ListenUDP("srv", "127.0.0.1:0")
	defer l.Close()
	c, _ := DialUDP("cli", l.Addr().Addr)
	defer c.Close()
	err := c.Send(ctx, make([]byte, MaxDatagram+1))
	if !errors.Is(err, core.ErrMessageTooLarge) {
		t.Errorf("expected ErrMessageTooLarge, got %v", err)
	}
}

func TestLossyDrop(t *testing.T) {
	a, b := Pipe(core.Addr{}, core.Addr{}, 256)
	ctx := ctxT(t)
	lossy := Lossy(a, LossConfig{Seed: 42, DropProb: 0.5})
	const n = 200
	for i := 0; i < n; i++ {
		lossy.Send(ctx, []byte{byte(i)})
	}
	a.Close()
	got := 0
	for {
		if _, err := b.Recv(ctx); err != nil {
			break
		}
		got++
	}
	if got == 0 || got == n {
		t.Errorf("drop rate 0.5 delivered %d of %d", got, n)
	}
	if got < n/4 || got > 3*n/4 {
		t.Errorf("implausible delivery count %d for p=0.5", got)
	}
}

func TestLossyDuplicate(t *testing.T) {
	a, b := Pipe(core.Addr{}, core.Addr{}, 1024)
	ctx := ctxT(t)
	lossy := Lossy(a, LossConfig{Seed: 7, DupProb: 1.0})
	const n = 20
	for i := 0; i < n; i++ {
		lossy.Send(ctx, []byte{byte(i)})
	}
	counts := map[byte]int{}
	for i := 0; i < 2*n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		counts[m[0]]++
	}
	for i := 0; i < n; i++ {
		if counts[byte(i)] != 2 {
			t.Errorf("message %d delivered %d times, want 2", i, counts[byte(i)])
		}
	}
}

func TestLossyReorder(t *testing.T) {
	a, b := Pipe(core.Addr{}, core.Addr{}, 1024)
	ctx := ctxT(t)
	lossy := Lossy(a, LossConfig{Seed: 3, ReorderProb: 0.5, ReorderDelay: 30 * time.Millisecond})
	const n = 40
	for i := 0; i < n; i++ {
		lossy.Send(ctx, []byte{byte(i)})
	}
	var order []byte
	for i := 0; i < n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv: %v", err)
		}
		order = append(order, m[0])
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("reorder config delivered everything in order")
	}
}

func TestMultiDialer(t *testing.T) {
	ctx := ctxT(t)
	pn := NewPipeNetwork()
	l, _ := pn.Listen("h1", "svc")
	defer l.Close()
	md := &MultiDialer{HostID: "h2", Pipe: pn}
	c, err := md.Dial(ctx, core.Addr{Net: "pipe", Addr: "svc"})
	if err != nil {
		t.Fatalf("pipe dial: %v", err)
	}
	if c.LocalAddr().Host != "h2" {
		t.Errorf("host label: %s", c.LocalAddr())
	}
	if _, err := md.Dial(ctx, core.Addr{Net: "bogus", Addr: "x"}); err == nil {
		t.Error("unknown network should fail")
	}
	ul, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ul.Close()
	uc, err := md.Dial(ctx, core.Addr{Net: "udp", Addr: ul.Addr().Addr})
	if err != nil {
		t.Fatalf("udp dial: %v", err)
	}
	uc.Close()
}
