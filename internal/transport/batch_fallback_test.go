package transport

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// perMsgConn hides the wrapped connection's buffer and batch fast paths
// (interface embedding exposes only core.Conn), forcing core.SendBufs
// through its per-message fallback loop, and fails every send after the
// first failAfter successes.
type perMsgConn struct {
	core.Conn
	sent      int
	failAfter int
	err       error
}

func (f *perMsgConn) Send(ctx context.Context, p []byte) error {
	if f.sent >= f.failAfter {
		return f.err
	}
	if err := f.Conn.Send(ctx, p); err != nil {
		return err
	}
	f.sent++
	return nil
}

// bufReleased reports whether b was released (any access after
// Release/Detach panics).
func bufReleased(b *wire.Buf) (released bool) {
	defer func() {
		if recover() != nil {
			released = true
		}
	}()
	b.Len()
	return false
}

// TestSendBufsFallbackReleasesUnsentTail is the regression test for the
// core.SendBufs per-message fallback loop's BatchError contract: on a
// mid-burst error the callee must have consumed every buffer — the sent
// head and the failed message via SendBuf, the unsent tail via
// ReleaseAll — and Sent must count exactly the messages that went out.
func TestSendBufsFallbackReleasesUnsentTail(t *testing.T) {
	cli, srv := Pipe(core.Addr{Net: "pipe", Addr: "a"}, core.Addr{Net: "pipe", Addr: "b"}, 16)
	defer cli.Close()
	defer srv.Close()
	boom := errors.New("boom")
	f := &perMsgConn{Conn: cli, failAfter: 2, err: boom}

	// WrapBuf adopts unpooled backings, so a released probe buffer can
	// never be resurrected by the pipe's own pool traffic.
	bs := make([]*wire.Buf, 5)
	for i := range bs {
		bs[i] = wire.WrapBuf([]byte{byte(i)})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := core.SendBufs(ctx, f, bs)

	var be *core.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("SendBufs error = %v, want *core.BatchError", err)
	}
	if be.Sent != 2 {
		t.Fatalf("BatchError.Sent = %d, want 2", be.Sent)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("BatchError does not unwrap to the send error: %v", err)
	}
	for i, b := range bs {
		if !bufReleased(b) {
			t.Fatalf("bs[%d] was not released", i)
		}
	}
	// The head of the burst really went out before the failure.
	for i := 0; i < 2; i++ {
		m, err := srv.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if len(m) != 1 || m[0] != byte(i) {
			t.Fatalf("recv %d = %v, want [%d]", i, m, i)
		}
	}
}
