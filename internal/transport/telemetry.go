package transport

import (
	"sync"

	"github.com/bertha-net/bertha/internal/telemetry"
)

// netCounters holds one transport kind's datagram counters, resolved
// once per kind from the process telemetry registry so the data path
// never touches a map: sends and receives are single atomic adds.
type netCounters struct {
	sent  *telemetry.Counter
	recvd *telemetry.Counter
	// dropped counts datagrams discarded at a full demux queue or accept
	// backlog — legal under datagram semantics, but visible.
	dropped *telemetry.Counter
}

var (
	netCountersMu sync.Mutex
	netCountersBy = map[string]*netCounters{}
)

// countersFor returns the shared counters for a transport kind ("udp",
// "unix", "pipe"), creating them in telemetry.Default() on first use.
// Call at connection setup, never per datagram.
func countersFor(netName string) *netCounters {
	netCountersMu.Lock()
	defer netCountersMu.Unlock()
	c, ok := netCountersBy[netName]
	if !ok {
		reg := telemetry.Default()
		prefix := "transport/" + netName + "/"
		c = &netCounters{
			sent:    reg.Counter(prefix + "datagrams_sent"),
			recvd:   reg.Counter(prefix + "datagrams_recvd"),
			dropped: reg.Counter(prefix + "datagrams_dropped"),
		}
		netCountersBy[netName] = c
	}
	return c
}
