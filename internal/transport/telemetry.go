package transport

import (
	"sync"

	"github.com/bertha-net/bertha/internal/telemetry"
)

// netCounters holds one transport kind's datagram counters, resolved
// once per kind from the process telemetry registry so the data path
// never touches a map: sends and receives are single atomic adds.
type netCounters struct {
	sent  *telemetry.Counter
	recvd *telemetry.Counter
	// dropped counts every datagram discarded by the demux path — legal
	// under datagram semantics, but visible. The reason counters below
	// partition it.
	dropped *telemetry.Counter
	// acceptDropped counts new peers discarded because the accept
	// backlog was full (the peer's first datagram is lost; its
	// retransmission re-materializes the connection).
	acceptDropped *telemetry.Counter
	// droppedQueueFull counts datagrams discarded at a full
	// per-connection receive ring (head-of-line pressure on a slow
	// consumer).
	droppedQueueFull *telemetry.Counter
	// droppedMalformed counts datagrams the demux path rejected on
	// sight: oversized (truncated by the receive buffer) or carrying an
	// unparseable source address.
	droppedMalformed *telemetry.Counter
}

var (
	netCountersMu sync.Mutex
	netCountersBy = map[string]*netCounters{}
)

// countersFor returns the shared counters for a transport kind ("udp",
// "unix", "pipe"), creating them in telemetry.Default() on first use.
// Call at connection setup, never per datagram.
func countersFor(netName string) *netCounters {
	netCountersMu.Lock()
	defer netCountersMu.Unlock()
	c, ok := netCountersBy[netName]
	if !ok {
		reg := telemetry.Default()
		prefix := "transport/" + netName + "/"
		c = &netCounters{
			sent:             reg.Counter(prefix + "datagrams_sent"),
			recvd:            reg.Counter(prefix + "datagrams_recvd"),
			dropped:          reg.Counter(prefix + "datagrams_dropped"),
			acceptDropped:    reg.Counter(prefix + "accept_dropped"),
			droppedQueueFull: reg.Counter(prefix + "datagrams_dropped_queue_full"),
			droppedMalformed: reg.Counter(prefix + "datagrams_dropped_malformed"),
		}
		netCountersBy[netName] = c
	}
	return c
}

// Live reactor listeners, aggregated into process-wide gauges in
// /debug/bertha: connection, goroutine, ring-occupancy, and
// memory-per-connection accounting for every reactor in the process,
// plus per-shard connection counts. Registration happens when a
// listener starts its reactor; the probes read the set at snapshot
// time.
var (
	reactorsMu          sync.Mutex
	reactors            = map[*reactorListener]struct{}{}
	reactorProbesOnce   sync.Once
	reactorShardGauges  int
	registerShardGauges func(upto int)
)

// reactorAgg is the process-wide rollup across live reactors.
type reactorAgg struct {
	conns, goroutines, ringOccupied, connMem int64
}

func reactorTotals() (agg reactorAgg) {
	reactorsMu.Lock()
	ls := make([]*reactorListener, 0, len(reactors))
	for l := range reactors {
		ls = append(ls, l)
	}
	reactorsMu.Unlock()
	for _, l := range ls {
		st := l.ReactorStats()
		agg.conns += st.Conns
		agg.goroutines += st.Goroutines
		agg.ringOccupied += st.RingOccupied
		agg.connMem += st.ConnMemBytes
	}
	return agg
}

// shardConnsAcross sums shard idx's connection count across live
// reactors.
func shardConnsAcross(idx int) int64 {
	reactorsMu.Lock()
	ls := make([]*reactorListener, 0, len(reactors))
	for l := range reactors {
		ls = append(ls, l)
	}
	reactorsMu.Unlock()
	var n int64
	for _, l := range ls {
		st := l.ReactorStats()
		if idx < len(st.ShardConns) {
			n += st.ShardConns[idx]
		}
	}
	return n
}

// registerReactor adds a started listener to the accounting set and
// (first time through) publishes the process-wide reactor gauges.
func registerReactor(l *reactorListener) {
	reactorProbesOnce.Do(func() {
		reg := telemetry.Default()
		reg.RegisterGaugeProbe("transport/reactor/conns", func() int64 {
			return reactorTotals().conns
		})
		reg.RegisterGaugeProbe("transport/reactor/goroutines", func() int64 {
			return reactorTotals().goroutines
		})
		reg.RegisterGaugeProbe("transport/reactor/ring_occupied", func() int64 {
			return reactorTotals().ringOccupied
		})
		reg.RegisterGaugeProbe("transport/reactor/conn_mem_bytes", func() int64 {
			return reactorTotals().connMem
		})
		reg.RegisterGaugeProbe("transport/reactor/mem_per_conn_bytes", func() int64 {
			a := reactorTotals()
			if a.conns == 0 {
				return 0
			}
			return a.connMem / a.conns
		})
		registerShardGauges = func(upto int) {
			for i := reactorShardGauges; i < upto; i++ {
				idx := i
				reg.RegisterGaugeProbe(shardGaugeName(idx), func() int64 {
					return shardConnsAcross(idx)
				})
			}
			if upto > reactorShardGauges {
				reactorShardGauges = upto
			}
		}
	})
	reactorsMu.Lock()
	reactors[l] = struct{}{}
	upto := l.cfg.Shards
	reg := registerShardGauges
	cur := reactorShardGauges
	reactorsMu.Unlock()
	if reg != nil && upto > cur {
		reg(upto)
	}
}

func unregisterReactor(l *reactorListener) {
	reactorsMu.Lock()
	delete(reactors, l)
	reactorsMu.Unlock()
}

// shardGaugeName renders "transport/reactor/shard/<i>/conns" without
// fmt (this runs at listener start, not on a hot path, but stays
// dependency-light).
func shardGaugeName(i int) string {
	digits := [20]byte{}
	pos := len(digits)
	n := i
	for {
		pos--
		digits[pos] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return "transport/reactor/shard/" + string(digits[pos:]) + "/conns"
}
