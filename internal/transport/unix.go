package transport

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net"
	"os"
	"path/filepath"

	"github.com/bertha-net/bertha/internal/core"
)

// UNIX datagram transport: the efficient same-host IPC path the local
// fast-path chunnel switches to (Listing 1; the paper's prototype uses
// "UNIX named sockets" for host-local connections).

// ListenUnix binds a demultiplexing UNIX datagram listener at path. The
// socket file is removed on Close. hostID labels the listener's host.
func ListenUnix(hostID, path string) (core.Listener, error) {
	ua, err := net.ResolveUnixAddr("unixgram", path)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve unix %q: %w", path, err)
	}
	// Remove a stale socket from a previous run.
	if _, statErr := os.Stat(path); statErr == nil {
		os.Remove(path)
	}
	pc, err := net.ListenUnixgram("unixgram", ua)
	if err != nil {
		return nil, fmt.Errorf("transport: listen unixgram %q: %w", path, err)
	}
	addr := core.Addr{Net: "unix", Host: hostID, Addr: path}
	return &unixListener{reactorListener: newDemuxListener(unixPC{pc}, addr), path: path}, nil
}

type unixListener struct {
	*reactorListener
	path string
}

func (l *unixListener) Close() error {
	err := l.reactorListener.Close()
	os.Remove(l.path)
	return err
}

// unixPC adapts net.UnixConn to the packetConn interface (ReadFrom on
// *net.UnixConn returns *net.UnixAddr via the generic method already).
type unixPC struct{ *net.UnixConn }

func (u unixPC) WriteTo(b []byte, addr net.Addr) (int, error) {
	ua, ok := addr.(*net.UnixAddr)
	if !ok {
		return 0, fmt.Errorf("transport: non-unix peer address %T", addr)
	}
	return u.UnixConn.WriteToUnix(b, ua)
}

// DialUnix opens a connected UNIX datagram connection to the server at
// path. Because unixgram servers reply to the client's bound address, the
// client binds a unique socket in the same directory (removed on Close).
func DialUnix(hostID, path string) (core.Conn, error) {
	var suffix [6]byte
	if _, err := rand.Read(suffix[:]); err != nil {
		return nil, fmt.Errorf("transport: random suffix: %w", err)
	}
	clientPath := filepath.Join(filepath.Dir(path),
		fmt.Sprintf(".%s.cli.%d.%s", filepath.Base(path), os.Getpid(), hex.EncodeToString(suffix[:])))
	laddr, err := net.ResolveUnixAddr("unixgram", clientPath)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", clientPath, err)
	}
	raddr, err := net.ResolveUnixAddr("unixgram", path)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", path, err)
	}
	uc, err := net.DialUnix("unixgram", laddr, raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial unixgram %q: %w", path, err)
	}
	return &unixConn{
		socketConn: socketConn{
			conn:   uc,
			local:  core.Addr{Net: "unix", Host: hostID, Addr: clientPath},
			remote: core.Addr{Net: "unix", Host: hostID, Addr: path},
			tel:    countersFor("unix"),
		},
		clientPath: clientPath,
	}, nil
}

type unixConn struct {
	socketConn
	clientPath string
}

func (u *unixConn) Close() error {
	err := u.socketConn.Close()
	os.Remove(u.clientPath)
	return err
}
