package transport

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
)

// LossConfig parameterizes an adversarial link for testing chunnels:
// probabilistic drops, duplications, reordering delays, and a fixed base
// latency. A zero config passes traffic through unchanged.
type LossConfig struct {
	// Seed makes the schedule deterministic.
	Seed int64
	// DropProb is the probability a sent message is silently dropped.
	DropProb float64
	// DupProb is the probability a sent message is delivered twice.
	DupProb float64
	// ReorderProb is the probability a message is delayed by ReorderDelay,
	// letting later messages overtake it.
	ReorderProb float64
	// ReorderDelay is the extra delay applied to reordered messages.
	ReorderDelay time.Duration
	// Latency is a fixed delay applied to every delivered message.
	Latency time.Duration
}

// lateSendTimeout bounds a delayed (reordered or latency-simulating)
// delivery once its timer fires, detached from the original Send's ctx.
const lateSendTimeout = 5 * time.Second

// Lossy wraps conn's send path with the configured adversarial behaviour.
// Receives are unaffected (wrap both ends to perturb both directions).
func Lossy(conn core.Conn, cfg LossConfig) core.Conn {
	return &lossyConn{
		Conn: conn,
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
}

type lossyConn struct {
	core.Conn
	cfg LossConfig

	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lossyConn) Send(ctx context.Context, p []byte) error {
	l.mu.Lock()
	drop := l.rng.Float64() < l.cfg.DropProb
	dup := l.rng.Float64() < l.cfg.DupProb
	reorder := l.rng.Float64() < l.cfg.ReorderProb
	l.mu.Unlock()

	if drop {
		return nil // silently dropped
	}
	deliver := func(delay time.Duration, msg []byte) {
		if delay > 0 {
			buf := make([]byte, len(msg))
			copy(buf, msg)
			time.AfterFunc(delay, func() {
				// Best effort: late delivery on a closed conn is lost. The
				// caller's ctx is long gone when the timer fires; bound the
				// send so a wedged conn cannot pile up delivery goroutines.
				sctx, cancel := context.WithTimeout(context.Background(), lateSendTimeout)
				defer cancel()
				_ = l.Conn.Send(sctx, buf)
			})
			return
		}
		_ = l.Conn.Send(ctx, msg)
	}
	delay := l.cfg.Latency
	if reorder {
		delay += l.cfg.ReorderDelay
	}
	if delay > 0 {
		deliver(delay, p)
	} else if err := l.Conn.Send(ctx, p); err != nil {
		return err
	}
	if dup {
		deliver(delay, p)
	}
	return nil
}
