package transport

import (
	"fmt"
	"net"

	"github.com/bertha-net/bertha/internal/core"
)

// UDPPair returns two mutually connected loopback UDP connections. Both
// ends are connected sockets reading with Read rather than ReadFrom, so
// neither pays the demultiplexing listener's per-datagram source-address
// allocation — this is the transport the zero-allocation data-plane
// benchmarks and tests build on. hostA and hostB label the two ends'
// hosts for locality checks.
func UDPPair(hostA, hostB string) (core.Conn, core.Conn, error) {
	var err error
	// Ports are reserved by binding and released just before the
	// connected re-bind; retry the (tiny) window where another process
	// could steal one.
	for attempt := 0; attempt < 5; attempt++ {
		var a, b core.Conn
		a, b, err = udpPairOnce(hostA, hostB)
		if err == nil {
			return a, b, nil
		}
	}
	return nil, nil, fmt.Errorf("transport: udp pair: %w", err)
}

func udpPairOnce(hostA, hostB string) (core.Conn, core.Conn, error) {
	loop := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)}
	ra, err := net.ListenUDP("udp", loop)
	if err != nil {
		return nil, nil, err
	}
	rb, err := net.ListenUDP("udp", loop)
	if err != nil {
		ra.Close()
		return nil, nil, err
	}
	addrA := ra.LocalAddr().(*net.UDPAddr)
	addrB := rb.LocalAddr().(*net.UDPAddr)
	ra.Close()
	rb.Close()

	ca, err := net.DialUDP("udp", addrA, addrB)
	if err != nil {
		return nil, nil, err
	}
	cb, err := net.DialUDP("udp", addrB, addrA)
	if err != nil {
		ca.Close()
		return nil, nil, err
	}
	mk := func(c *net.UDPConn, host, peerHost string) *socketConn {
		return &socketConn{
			conn:   c,
			local:  core.Addr{Net: "udp", Host: host, Addr: c.LocalAddr().String()},
			remote: core.Addr{Net: "udp", Host: peerHost, Addr: c.RemoteAddr().String()},
			tel:    countersFor("udp"),
		}
	}
	return mk(ca, hostA, hostB), mk(cb, hostB, hostA), nil
}
