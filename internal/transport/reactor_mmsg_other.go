//go:build !linux || (!amd64 && !arm64)

package transport

import "github.com/bertha-net/bertha/internal/wire"

// runBurst is the linux recvmmsg fast path; the portable build reports
// false so reactor goroutines run the single-read loop. (Unreachable in
// practice: batchRecvSupported gates the call.)
func (l *reactorListener) runBurst(pool *wire.LocalPool) bool { return false }
