package transport

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/testutil"
)

// TestUDPConcurrentSendDeadline hammers one socketConn from senders with
// and without context deadlines. Before wmu serialized writes and
// deadline management, a deadline-bearing sender's SetWriteDeadline
// raced concurrent plain senders: their writes spuriously timed out, and
// the deferred reset could clear a deadline a third sender had just
// armed. Plain senders must never observe a timeout.
func TestUDPConcurrentSendDeadline(t *testing.T) {
	cli, srv, err := UDPPair("a", "b")
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	defer cli.Close()
	defer srv.Close()

	// Drain the receiver so kernel buffers never push back.
	drainCtx, stopDrain := context.WithCancel(context.Background())
	defer stopDrain()
	go func() {
		for {
			if _, err := srv.Recv(drainCtx); err != nil {
				return
			}
		}
	}()

	const (
		senders = 8
		sends   = 300
	)
	payload := []byte("deadline-race-probe")
	var wg sync.WaitGroup
	errs := make(chan error, senders)
	for i := 0; i < senders; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < sends; n++ {
				if i%2 == 0 {
					// Plain sender: no deadline, must never time out.
					if err := cli.Send(context.Background(), payload); err != nil {
						errs <- err
						return
					}
				} else {
					// Deadline sender: generous deadline, created fresh
					// each send so deadlines constantly arm and reset.
					ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
					err := cli.Send(ctx, payload)
					cancel()
					if err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent send: %v", err)
	}

	// The socket must be left with no write deadline armed.
	if err := cli.Send(context.Background(), payload); err != nil {
		t.Fatalf("send after storm: %v", err)
	}
}

// TestUDPRecvAfterStaleDeadline covers the hot-spin fix: a cancelled
// context leaves an immediate read deadline on the socket; a later
// deadline-free Recv must clear it and block normally instead of
// spinning on (or forever re-hitting) the expired deadline.
func TestUDPRecvAfterStaleDeadline(t *testing.T) {
	cli, srv, err := UDPPair("a", "b")
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	defer cli.Close()
	defer srv.Close()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Recv(cancelled); err == nil {
		t.Fatal("recv with cancelled ctx: want error")
	}

	got := make(chan error, 1)
	go func() {
		msg, err := srv.Recv(context.Background())
		if err == nil && string(msg) != "after-stale" {
			err = context.DeadlineExceeded
		}
		got <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the reader block first
	if err := cli.Send(context.Background(), []byte("after-stale")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("recv after stale deadline: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv after stale deadline never completed")
	}
}

// TestUDPRecvAllocs pins the pooled receive path: steady-state RecvBuf
// on a connected socket performs no allocations.
func TestUDPRecvAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cli, srv, err := UDPPair("a", "b")
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	defer cli.Close()
	defer srv.Close()

	bc, ok := srv.(core.BufConn)
	if !ok {
		t.Fatal("socketConn must implement core.BufConn")
	}

	const runs = 50
	payload := make([]byte, 64)
	ctx := context.Background()
	// Pre-send every datagram (warmup run + measured runs) so the
	// measurement loop only receives; 64-byte messages sit comfortably
	// in the kernel socket buffer.
	for i := 0; i < runs+1; i++ {
		if err := cli.Send(ctx, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	avg := testing.AllocsPerRun(runs, func() {
		b, err := bc.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		b.Release()
	})
	if avg >= 1 {
		t.Fatalf("udp RecvBuf allocates %.2f objects/op, want 0", avg)
	}
}

// TestUDPRecvAllocsInstrumented is TestUDPRecvAllocs with the socket
// wrapped in telemetry instrumentation: the per-message latency
// histogram and byte counters must add zero allocations on top of the
// pooled receive path.
func TestUDPRecvAllocsInstrumented(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	cli, srv, err := UDPPair("a", "b")
	if err != nil {
		t.Fatalf("pair: %v", err)
	}
	defer cli.Close()
	defer srv.Close()

	reg := telemetry.New()
	m := reg.Conn("transport", "udp")
	bc, ok := core.Instrument(srv, m).(core.BufConn)
	if !ok {
		t.Fatal("instrumented socketConn must implement core.BufConn")
	}

	const runs = 50
	payload := make([]byte, 64)
	ctx := context.Background()
	for i := 0; i < runs+1; i++ {
		if err := cli.Send(ctx, payload); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	avg := testing.AllocsPerRun(runs, func() {
		b, err := bc.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		b.Release()
	})
	if avg >= 1 {
		t.Fatalf("instrumented udp RecvBuf allocates %.2f objects/op, want 0", avg)
	}
	snap := reg.Snapshot()
	if len(snap.Conns) != 1 || snap.Conns[0].Recvs < runs {
		t.Fatalf("instrumentation recorded %+v, want ≥%d recvs", snap.Conns, runs)
	}
}
