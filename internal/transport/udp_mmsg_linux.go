//go:build linux && (amd64 || arm64)

// Batched datagram I/O via sendmmsg(2)/recvmmsg(2). One syscall moves a
// whole burst, which is where the batch path's throughput win comes
// from: the per-message cost drops from one syscall + one lock to a
// share of one syscall. The raw syscalls are driven through
// syscall.RawConn so the runtime poller still parks the goroutine on
// EAGAIN instead of spinning.
//
// Everything here is careful about allocation: the mmsghdr/iovec scratch
// arrays are fixed-size fields of mmsgState, the RawConn callbacks are
// method values created once, and receive-side buffers are pooled and
// retained across calls. SendBufs/RecvBufs stay at 0 allocs/op.

package transport

import (
	"net"
	"syscall"
	"unsafe"

	"github.com/bertha-net/bertha/internal/wire"
)

// batchRecvSupported gates socketConn.RecvBufs onto readBurst; the
// portable build degrades to single-message receives instead.
const batchRecvSupported = true

// mmsgChunk bounds one sendmmsg/recvmmsg invocation. Linux caps vlen at
// UIO_MAXIOV internally; 64 keeps the fixed scratch arrays small while
// amortizing the syscall ~60x.
const mmsgChunk = 64

// UDP generalized segmentation offload: a burst of equal-size datagrams
// goes down as ONE sendmsg whose payload the kernel splits back into
// datagrams at the device (UDP_SEGMENT cmsg, linux ≥ 4.18). Where
// sendmmsg only amortizes syscall entry — the kernel still runs the
// full udp_sendmsg path per datagram — GSO runs the socket/route/skb
// setup once per burst, which is where most of the per-datagram kernel
// time lives on loopback.
const (
	solUDP     = 17  // SOL_UDP
	udpSegment = 103 // UDP_SEGMENT: gso_size for this sendmsg

	gsoMaxSegs  = 64    // UDP_MAX_SEGMENTS
	gsoMaxBytes = 64000 // total payload ceiling for one GSO super-datagram

	// gsoMaxSeg caps the per-segment size eligible for the GSO path. The
	// kernel rejects a sendmsg whose gso_size plus headers exceeds the
	// path MTU (udp_send_skb returns EINVAL), where plain sendmmsg would
	// have delivered via IP fragmentation — so larger segments ride
	// sendmmsg instead. 1400 clears a standard 1500-byte ethernet MTU
	// with room for IP/UDP headers and modest encapsulation.
	gsoMaxSeg = 1400

	cmsgSegLen   = 18 // CMSG_LEN(2): cmsghdr + uint16 payload
	cmsgSegSpace = 24 // CMSG_SPACE(2): the above, padded to cmsg alignment
)

// GSO support is probed with the first eligible burst: kernels without
// UDP_SEGMENT reject the unknown cmsg with EINVAL before sending
// anything, and the state degrades to plain sendmmsg permanently. A
// rejection after the probe has succeeded (e.g. a path MTU smaller than
// the segment size) is treated as transient: the burst falls back to
// sendmmsg without touching the latched state.
const (
	gsoUnknown = iota
	gsoYes
	gsoNo
)

// sendmsg issues SYS_SENDMSG through a package variable so tests can
// inject the kernel's EINVAL-class UDP_SEGMENT rejections (a path MTU
// below the segment size, a pre-4.18 kernel), which loopback — with its
// 64k MTU and modern kernels — cannot produce organically.
var sendmsg = func(fd, msg uintptr) syscall.Errno {
	_, _, errno := syscall.Syscall6(syscall.SYS_SENDMSG, fd, msg, 0, 0, 0, 0)
	return errno
}

// mmsghdr mirrors struct mmsghdr on linux amd64/arm64: a msghdr plus the
// per-message transfer count, padded to 8-byte alignment (64 bytes).
type mmsghdr struct {
	hdr    syscall.Msghdr
	msgLen uint32
	_      [4]byte
}

// mmsgState is one direction's batch-syscall scratch: the cached
// RawConn, header/iovec arrays, and the in/out fields the pre-created
// RawConn callback communicates through (a fresh closure per burst
// would allocate). An instance serves either sends or receives, guarded
// by the owning socketConn's wmu or rmu respectively.
type mmsgState struct {
	raw   syscall.RawConn
	tried bool // SyscallConn attempted; raw may still be nil (fallback)
	fn    func(fd uintptr) bool

	hdrs [mmsgChunk]mmsghdr
	iovs [mmsgChunk]syscall.Iovec

	// Send-side callback state: the burst being written and the running
	// count of messages the kernel accepted.
	bs []*wire.Buf
	// GSO fast-path state: probe result, the segment size of the burst
	// in flight, the pre-created sendGSO callback, and the UDP_SEGMENT
	// control message (a struct field so it stays addressable across the
	// syscall without allocating).
	gso int
	seg int
	// gsoFallback is set when the kernel rejected a UDP_SEGMENT sendmsg
	// (EINVAL-class): the burst's unsent tail must be replayed through
	// plain sendmmsg.
	gsoFallback bool
	gsoFn       func(fd uintptr) bool
	ctrl        [cmsgSegSpace]byte
	// Recv-side callback state: how many slots the caller wants, and
	// pooled buffers retained across calls so a drained burst costs no
	// pool round-trips.
	want    int
	scratch [mmsgChunk]*wire.Buf

	n   int
	err error
}

// initRaw resolves the RawConn once. A nil raw after init means the
// underlying conn does not expose a raw fd (never the case for the net
// package's UDP/unixgram sockets) and callers fall back.
func (m *mmsgState) initRaw(s *socketConn, fn func(fd uintptr) bool) {
	m.tried = true
	sc, ok := s.conn.(syscall.Conn)
	if !ok {
		return
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return
	}
	m.raw = raw
	m.fn = fn
}

// writeBurst transmits bs with sendmmsg, honouring the write deadline
// already armed by SendBufs (RawConn.Write surfaces it as a timeout
// error). Caller holds wmu. Returns how many messages went out.
func (s *socketConn) writeBurst(bs []*wire.Buf) (int, error) {
	m := &s.sendmm
	if !m.tried {
		m.initRaw(s, m.sendChunks)
		m.gsoFn = m.sendGSO
		if _, ok := s.conn.(*net.UDPConn); !ok {
			// UDP_SEGMENT is UDP-only; never fire the doomed probe cmsg
			// on unixgram sockets.
			m.gso = gsoNo
		}
	}
	if m.raw == nil {
		return s.writeBurstLoop(bs)
	}
	// Oversize messages abort the burst at their index; the valid prefix
	// is still transmitted so BatchError.Sent stays accurate.
	limit := len(bs)
	var sizeErr error
	for i, b := range bs {
		if b.Len() > MaxDatagram {
			limit = i
			sizeErr = oversizeErr(b.Len())
			break
		}
	}
	m.bs = bs[:limit]
	m.n = 0
	m.err = nil
	var err error
	if seg, ok := gsoEligible(m.bs); ok && m.gso != gsoNo {
		m.seg = seg
		m.gsoFallback = false
		err = m.raw.Write(m.gsoFn)
		if m.gsoFallback && m.err == nil && err == nil {
			// The kernel rejected UDP_SEGMENT (probe failure, or a path
			// MTU smaller than the segment size mid-burst): replay the
			// unsent tail through plain sendmmsg, which delivers via IP
			// fragmentation. sendChunks resumes from m.n.
			err = m.raw.Write(m.fn)
		}
	} else {
		err = m.raw.Write(m.fn)
	}
	sent, werr := m.n, m.err
	m.bs = nil
	if werr == nil {
		werr = err // deadline/closed-fd errors from the poller
	}
	if werr == nil {
		werr = sizeErr
	}
	return sent, werr
}

// gsoEligible reports whether bs can ride the UDP_SEGMENT fast path:
// at least two messages, every one the same nonzero size. (The kernel
// also allows a short final segment, but uniform bursts are what the
// chunnel stack produces and the check stays branch-trivial.)
func gsoEligible(bs []*wire.Buf) (seg int, ok bool) {
	if len(bs) < 2 {
		return 0, false
	}
	seg = bs[0].Len()
	if seg == 0 || seg > gsoMaxSeg {
		return 0, false
	}
	for _, b := range bs[1:] {
		if b.Len() != seg {
			return 0, false
		}
	}
	return seg, true
}

// sendChunks is the RawConn.Write callback: it pushes m.bs through
// sendmmsg in ≤mmsgChunk slices. Returning false parks the goroutine in
// the poller until the socket is writable again.
func (m *mmsgState) sendChunks(fd uintptr) bool {
	for m.n < len(m.bs) {
		pending := m.bs[m.n:]
		cnt := len(pending)
		if cnt > mmsgChunk {
			cnt = mmsgChunk
		}
		for i := 0; i < cnt; i++ {
			p := pending[i].Bytes()
			m.iovs[i] = syscall.Iovec{Len: uint64(len(p))}
			if len(p) > 0 {
				m.iovs[i].Base = &p[0]
			}
			m.hdrs[i] = mmsghdr{}
			m.hdrs[i].hdr.Iov = &m.iovs[i]
			m.hdrs[i].hdr.Iovlen = 1
		}
		r1, _, errno := syscall.Syscall6(sysSENDMMSG,
			fd, uintptr(unsafe.Pointer(&m.hdrs[0])), uintptr(cnt), 0, 0, 0)
		switch errno {
		case 0:
			m.n += int(r1)
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		default:
			m.err = errno
			return true
		}
	}
	return true
}

// sendGSO is the RawConn.Write callback for uniform bursts: each
// ≤gsoMaxSegs slice of m.bs becomes one sendmsg whose iovec array
// concatenates the messages and whose UDP_SEGMENT cmsg tells the kernel
// where to cut them apart again. The first successful call locks the
// probe to gsoYes; an EINVAL-class rejection by an unprobed socket locks
// it to gsoNo. Either way a rejection sets gsoFallback and the caller
// replays the unsent tail via sendmmsg — a rejected burst is never
// failed, because plain sendmmsg can still deliver it (the kernel also
// returns EINVAL when gso_size exceeds the path MTU minus headers, a
// per-burst condition, not a capability verdict).
func (m *mmsgState) sendGSO(fd uintptr) bool {
	for m.n < len(m.bs) {
		pending := m.bs[m.n:]
		cnt := len(pending)
		if cnt > gsoMaxSegs {
			cnt = gsoMaxSegs
		}
		if max := gsoMaxBytes / m.seg; cnt > max {
			cnt = max
		}
		for i := 0; i < cnt; i++ {
			p := pending[i].Bytes()
			m.iovs[i] = syscall.Iovec{Base: &p[0], Len: uint64(len(p))}
		}
		*(*uint64)(unsafe.Pointer(&m.ctrl[0])) = cmsgSegLen
		*(*int32)(unsafe.Pointer(&m.ctrl[8])) = solUDP
		*(*int32)(unsafe.Pointer(&m.ctrl[12])) = udpSegment
		*(*uint16)(unsafe.Pointer(&m.ctrl[16])) = uint16(m.seg)
		h := &m.hdrs[0].hdr
		*h = syscall.Msghdr{
			Iov:        &m.iovs[0],
			Iovlen:     uint64(cnt),
			Control:    &m.ctrl[0],
			Controllen: cmsgSegSpace,
		}
		errno := sendmsg(fd, uintptr(unsafe.Pointer(h)))
		switch errno {
		case 0:
			// UDP sendmsg is atomic: the whole super-datagram went out.
			m.gso = gsoYes
			m.n += cnt
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		case syscall.EINVAL, syscall.EOPNOTSUPP, syscall.ENOPROTOOPT:
			// The kernel rejected the UDP_SEGMENT cmsg. On an unprobed
			// socket that never sent a segment this means no UDP_SEGMENT
			// support: latch gsoNo so future bursts skip the attempt.
			// After a successful probe it is a transient, parameter-
			// dependent rejection (e.g. the path MTU shrank below the
			// segment size) and the latched state stays gsoYes. Either
			// way the caller replays the unsent tail through sendmmsg
			// rather than failing the burst.
			if m.gso != gsoYes && m.n == 0 {
				m.gso = gsoNo
			}
			m.gsoFallback = true
			return true
		default:
			m.err = errno
			return true
		}
	}
	return true
}

// readBurst fills into with up to len(into) datagrams from one recvmmsg
// call, blocking (in the poller) only until the first arrives. Caller
// holds rmu. The returned buffers are pooled and owned by the caller.
func (s *socketConn) readBurst(into []*wire.Buf) (int, error) {
	m := &s.recvmm
	if !m.tried {
		m.initRaw(s, m.recvChunk)
	}
	if m.raw == nil {
		// No raw fd: single-message read, mapped by the caller exactly
		// like RecvBuf's error path.
		b := wire.NewBuf(wire.DefaultHeadroom, MaxDatagram+1)
		n, err := s.conn.Read(b.Bytes())
		if err != nil {
			b.Release()
			return 0, err
		}
		b.Truncate(n)
		into[0] = b
		return 1, nil
	}
	m.want = len(into)
	m.n = 0
	m.err = nil
	err := m.raw.Read(m.fn)
	if m.err == nil {
		m.err = err // deadline/closed-fd errors from the poller
	}
	if m.err != nil {
		return 0, m.err
	}
	for i := 0; i < m.n; i++ {
		b := m.scratch[i]
		m.scratch[i] = nil
		b.Truncate(int(m.hdrs[i].msgLen))
		into[i] = b
	}
	return m.n, nil
}

// recvChunk is the RawConn.Read callback: one recvmmsg for up to
// m.want messages. On a non-blocking socket recvmmsg returns whatever
// is queued without waiting once at least one datagram is available, so
// a burst costs one syscall; EAGAIN (nothing queued) parks the
// goroutine in the poller.
func (m *mmsgState) recvChunk(fd uintptr) bool {
	cnt := m.want
	if cnt > mmsgChunk {
		cnt = mmsgChunk
	}
	for i := 0; i < cnt; i++ {
		if m.scratch[i] == nil {
			m.scratch[i] = wire.NewBuf(wire.DefaultHeadroom, MaxDatagram+1)
		}
		p := m.scratch[i].Bytes()
		m.iovs[i] = syscall.Iovec{Base: &p[0], Len: uint64(len(p))}
		m.hdrs[i] = mmsghdr{}
		m.hdrs[i].hdr.Iov = &m.iovs[i]
		m.hdrs[i].hdr.Iovlen = 1
	}
	for {
		r1, _, errno := syscall.Syscall6(sysRECVMMSG,
			fd, uintptr(unsafe.Pointer(&m.hdrs[0])), uintptr(cnt), 0, 0, 0)
		switch errno {
		case 0:
			m.n = int(r1)
			return true
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		default:
			m.err = errno
			return true
		}
	}
}
