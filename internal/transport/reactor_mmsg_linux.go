//go:build linux && (amd64 || arm64)

package transport

import (
	"net/netip"
	"syscall"
	"unsafe"

	"github.com/bertha-net/bertha/internal/wire"
)

// reactorMMsg is one reactor goroutine's recvmmsg scratch: header and
// iovec arrays plus per-message sockaddr buffers (msg_name), so one
// syscall yields a burst of datagrams each tagged with its source
// address. It is the listener-side analog of mmsgState, which serves
// connected sockets and needs no source capture. Each reactor goroutine
// owns one instance, so nothing here is shared or locked.
type reactorMMsg struct {
	raw syscall.RawConn
	fn  func(fd uintptr) bool

	hdrs  [mmsgChunk]mmsghdr
	iovs  [mmsgChunk]syscall.Iovec
	names [mmsgChunk]syscall.RawSockaddrInet6

	// scratch holds the receive buffers for the next burst, refilled
	// from the shard-local pool each lap and retained across laps so a
	// quiet socket costs no pool churn.
	scratch [mmsgChunk]*wire.Buf

	n   int
	err error
}

// recvChunk is the RawConn.Read callback: one recvmmsg for up to
// mmsgChunk messages with source-address capture. The run loop
// pre-fills the scratch buffers. EAGAIN parks the goroutine in the
// runtime poller until the socket is readable.
func (m *reactorMMsg) recvChunk(fd uintptr) bool {
	for i := 0; i < mmsgChunk; i++ {
		p := m.scratch[i].Bytes()
		m.iovs[i] = syscall.Iovec{Base: &p[0], Len: uint64(len(p))}
		m.hdrs[i] = mmsghdr{}
		m.hdrs[i].hdr.Iov = &m.iovs[i]
		m.hdrs[i].hdr.Iovlen = 1
		m.hdrs[i].hdr.Name = (*byte)(unsafe.Pointer(&m.names[i]))
		m.hdrs[i].hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	for {
		r1, _, errno := syscall.Syscall6(sysRECVMMSG,
			fd, uintptr(unsafe.Pointer(&m.hdrs[0])), uintptr(mmsgChunk), 0, 0, 0)
		switch errno {
		case 0:
			m.n = int(r1)
			return true
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		default:
			m.err = errno
			return true
		}
	}
}

// source decodes message i's captured sockaddr. ok is false for an
// address family the demux path cannot key (counted as malformed by the
// caller). IPv6 zone identifiers are not resolved: link-local peers are
// keyed by address and port alone.
func (m *reactorMMsg) source(i int) (netip.AddrPort, bool) {
	sa := &m.names[i]
	// The port field sits at the same offset for both families and is in
	// network byte order in the raw sockaddr; read it byte-wise so the
	// decode is endian-safe.
	pb := (*[2]byte)(unsafe.Pointer(&sa.Port))
	port := uint16(pb[0])<<8 | uint16(pb[1])
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), port), true
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), port), true
	default:
		return netip.AddrPort{}, false
	}
}

// runBurst is the linux reactor receive loop: each lap refills the
// scratch buffers from the shard pool, takes one recvmmsg burst off the
// shared socket, and delivers every datagram keyed by its captured
// source address. It reports false — without having consumed anything —
// when the socket exposes no raw fd, sending the goroutine to the
// portable single-read loop instead.
func (l *reactorListener) runBurst(pool *wire.LocalPool) bool {
	sc, err := l.udp.SyscallConn()
	if err != nil {
		return false
	}
	m := &reactorMMsg{raw: sc}
	m.fn = m.recvChunk
	defer m.drainScratch(pool)
	for {
		for i := 0; i < mmsgChunk; i++ {
			if m.scratch[i] == nil {
				m.scratch[i] = pool.Get()
			}
		}
		m.n = 0
		m.err = nil
		rerr := m.raw.Read(m.fn)
		if m.err == nil {
			m.err = rerr // closed-fd errors surface from the poller
		}
		if m.err != nil {
			select {
			case <-l.closed:
				return true
			default:
			}
			if isClosedErr(m.err) {
				l.Close()
				return true
			}
			continue // transient (e.g. ICMP-induced ECONNREFUSED)
		}
		for i := 0; i < m.n; i++ {
			b := m.scratch[i]
			m.scratch[i] = nil
			ap, ok := m.source(i)
			n := int(m.hdrs[i].msgLen)
			if !ok || n > MaxDatagram {
				// Unkeyable source or truncated-by-our-buffer oversize:
				// malformed, not queue pressure.
				pool.Put(b)
				l.tel.dropped.Inc()
				l.tel.droppedMalformed.Inc()
				continue
			}
			b.Truncate(n)
			l.tel.recvd.Inc()
			l.deliver(peerKey{ap: ap}, nil, b, pool)
		}
	}
}

// drainScratch returns unused scratch buffers to the pool on loop exit.
func (m *reactorMMsg) drainScratch(pool *wire.LocalPool) {
	for i := range m.scratch {
		if m.scratch[i] != nil {
			pool.Put(m.scratch[i])
			m.scratch[i] = nil
		}
	}
}
