package transport

import (
	"context"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/wire"
)

// counterValue reads a process-wide transport counter.
func counterValue(name string) uint64 {
	return telemetry.Default().Counter(name).Value()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConnRing pins the ring protocol: FIFO order, wraparound, the
// full-ring drop (which consumes the buffer), and re-use after drain.
func TestConnRing(t *testing.T) {
	start := wire.BufsOutstanding()
	r := newConnRing(4)
	mk := func(tag byte) *wire.Buf {
		b := wire.NewBuf(0, 8)
		b.Bytes()[0] = tag
		b.Truncate(1)
		return b
	}
	for lap := 0; lap < 3; lap++ {
		for i := byte(0); i < 4; i++ {
			if !r.push(mk(i)) {
				t.Fatalf("lap %d: push %d rejected on non-full ring", lap, i)
			}
		}
		if r.occupied() != 4 {
			t.Fatalf("occupied = %d, want 4", r.occupied())
		}
		// Fifth push: full ring releases the buffer and reports false.
		if r.push(mk(99)) {
			t.Fatal("push on full ring succeeded")
		}
		for i := byte(0); i < 4; i++ {
			b := r.pop()
			if b == nil {
				t.Fatalf("lap %d: pop %d on non-empty ring returned nil", lap, i)
			}
			if got := b.Bytes()[0]; got != i {
				t.Fatalf("lap %d: pop order: got tag %d, want %d", lap, got, i)
			}
			b.Release()
		}
		if b := r.pop(); b != nil {
			t.Fatal("pop on empty ring returned a buffer")
		}
	}
	if n := wire.BufsOutstanding(); n != start {
		t.Fatalf("outstanding buffers: %d, want %d (full-ring push must release)", n, start)
	}
}

// TestConnRingConcurrentProducers races multiple producers against one
// consumer: every successfully pushed buffer is popped exactly once and
// nothing leaks (run under -race to check the publication protocol).
func TestConnRingConcurrentProducers(t *testing.T) {
	start := wire.BufsOutstanding()
	r := newConnRing(64)
	const producers = 4
	const perProducer = 2000
	var pushed atomic.Int64
	var wg sync.WaitGroup
	var popMu sync.Mutex
	prodDone := make(chan struct{})
	done := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b := wire.NewBuf(0, 16)
				if r.push(b) {
					pushed.Add(1)
				}
			}
		}()
	}
	go func() { wg.Wait(); close(prodDone) }()
	var popped int64
	go func() {
		defer close(done)
		quiescent := false
		for {
			popMu.Lock()
			b := r.pop()
			popMu.Unlock()
			if b != nil {
				popped++
				b.Release()
				continue
			}
			if quiescent {
				// Producers finished before this empty pop: definitive.
				return
			}
			select {
			case <-prodDone:
				quiescent = true
			default:
				runtime.Gosched()
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("consumer did not drain")
	}
	if popped != pushed.Load() {
		t.Fatalf("popped %d, pushed %d", popped, pushed.Load())
	}
	if n := wire.BufsOutstanding(); n != start {
		t.Fatalf("outstanding buffers: %d, want %d", n, start)
	}
}

// TestReactorPeerChurn is the reactor's churn gate: 1k rapid
// connect/close/reconnect cycles across concurrent clients leave no
// stale table entries, no leaked pooled buffers, and no leaked
// goroutines (sized for -race; run in CI's race job).
func TestReactorPeerChurn(t *testing.T) {
	ctx := ctxT(t)
	startGoroutines := runtime.NumGoroutine()
	startBufs := wire.BufsOutstanding()

	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rl := l.(ReactorListener)

	const workers = 8
	const perWorker = 125 // 1000 peer lifetimes total
	addr := l.Addr().Addr

	// Server side: accept every materialized peer, echo its hello, close
	// the server conn immediately — the close half of the churn.
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			sc, err := l.Accept(ctx)
			if err != nil {
				return
			}
			go func() {
				if m, err := sc.Recv(ctx); err == nil {
					sc.Send(ctx, m)
				}
				sc.Close()
			}()
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c, err := DialUDP("cli", addr)
				if err != nil {
					errs <- err
					return
				}
				if err := c.Send(ctx, []byte("hello")); err != nil {
					c.Close()
					errs <- err
					return
				}
				if _, err := c.Recv(ctx); err != nil {
					c.Close()
					errs <- err
					return
				}
				c.Close()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Every server conn was closed after its echo: the table must drain
	// to zero — no stale entries for any of the 1000 peer lifetimes.
	waitFor(t, 5*time.Second, "connection table to drain", func() bool {
		return rl.ReactorStats().Conns == 0
	})
	st := rl.ReactorStats()
	for i, n := range st.ShardConns {
		if n != 0 {
			t.Errorf("shard %d still accounts %d conns", i, n)
		}
	}
	if st.Goroutines != int64(st.Shards) {
		t.Errorf("reactor goroutines = %d, want %d (one per shard)", st.Goroutines, st.Shards)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	<-acceptDone
	// Reactor goroutines exit and return their pools; pooled buffers and
	// goroutine counts return to baseline.
	waitFor(t, 5*time.Second, "pooled buffers to return", func() bool {
		return wire.BufsOutstanding() == startBufs
	})
	waitFor(t, 5*time.Second, "goroutines to exit", func() bool {
		runtime.GC() // nudge any finalizer-held goroutines
		return runtime.NumGoroutine() <= startGoroutines+2
	})
}

// TestReactorReconnectSamePeer pins close semantics for a reused source
// address: closing the server conn removes the table entry, and the
// peer's next datagram materializes a fresh connection.
func TestReactorReconnectSamePeer(t *testing.T) {
	ctx := ctxT(t)
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rl := l.(ReactorListener)

	c, err := DialUDP("cli", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Send(ctx, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s1, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m, err := s1.Recv(ctx); err != nil || string(m) != "one" {
		t.Fatalf("first generation recv: %q %v", m, err)
	}
	s1.Close()
	waitFor(t, 2*time.Second, "table entry removal", func() bool {
		return rl.ReactorStats().Conns == 0
	})

	// Same client socket (same source address): a new send must
	// materialize a second-generation connection.
	if err := c.Send(ctx, []byte("two")); err != nil {
		t.Fatal(err)
	}
	s2, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if m, err := s2.Recv(ctx); err != nil || string(m) != "two" {
		t.Fatalf("second generation recv: %q %v", m, err)
	}
	if s1 == s2 {
		t.Fatal("accept returned the closed first-generation conn")
	}
	// The closed first generation stays closed.
	if _, err := s1.Recv(ctx); err != core.ErrClosed {
		t.Fatalf("first generation recv after close: %v, want ErrClosed", err)
	}
}

// TestReactorCloseMidBurst closes the server conn while the peer is
// still flooding: the drain sweep must release every rung buffer and
// the reactor must keep serving other peers.
func TestReactorCloseMidBurst(t *testing.T) {
	ctx := ctxT(t)
	startBufs := wire.BufsOutstanding()
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rl := l.(ReactorListener)

	flooder, err := DialUDP("cli", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 128)
	if err := flooder.Send(ctx, payload); err != nil {
		t.Fatal(err)
	}
	sc, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Flood concurrently with the close.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			select {
			case <-stop:
				return
			default:
			}
			flooder.Send(ctx, payload)
		}
	}()
	time.Sleep(time.Millisecond)
	sc.Close()
	close(stop)
	wg.Wait()
	flooder.Close()

	waitFor(t, 2*time.Second, "flooded conn to leave the table", func() bool {
		return rl.ReactorStats().Conns <= 1 // its tail datagrams may re-materialize it
	})

	// A different peer still gets clean service post-flood. Datagram
	// semantics: the flood may still fill the kernel receive buffer, so
	// the hello retransmits until the listener materializes the peer —
	// the same contract accept-dropped peers rely on.
	other, err := DialUDP("cli2", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	var oc core.Conn
	helloDeadline := time.Now().Add(8 * time.Second)
	for oc == nil {
		if time.Now().After(helloDeadline) {
			t.Fatal("new peer was never accepted post-flood")
		}
		if err := other.Send(ctx, []byte("still here")); err != nil {
			t.Fatal(err)
		}
		actx, acancel := context.WithTimeout(ctx, 200*time.Millisecond)
		c, err := l.Accept(actx)
		acancel()
		if err != nil {
			continue // hello lost in the flood: retransmit
		}
		if c.RemoteAddr().Addr == other.LocalAddr().Addr {
			oc = c
			break
		}
		c.Close() // the flooder's tail datagrams re-materialized it
	}
	if m, err := oc.Recv(ctx); err != nil || string(m) != "still here" {
		t.Fatalf("post-flood recv: %q %v", m, err)
	}
	oc.Close()

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "pooled buffers to return", func() bool {
		return wire.BufsOutstanding() == startBufs
	})
}

// TestReactorAcceptDropCounter pins satellite telemetry: peers that
// materialize while the accept backlog is full are dropped and counted
// in transport/udp/accept_dropped.
func TestReactorAcceptDropCounter(t *testing.T) {
	ctx := ctxT(t)
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rl := l.(ReactorListener)
	// Force the reactor up without consuming the accept queue.
	rl.Shards()

	before := counterValue("transport/udp/accept_dropped")
	beforeDropped := counterValue("transport/udp/datagrams_dropped")
	const peers = acceptBacklog + 32
	conns := make([]core.Conn, 0, peers)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < peers; i++ {
		c, err := DialUDP("cli", l.Addr().Addr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
		if err := c.Send(ctx, []byte("hi")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "accept-drop counter", func() bool {
		return counterValue("transport/udp/accept_dropped") >= before+32
	})
	if got := counterValue("transport/udp/datagrams_dropped"); got < beforeDropped+32 {
		t.Errorf("aggregate dropped = %d, want >= %d (accept drops roll up)", got, beforeDropped+32)
	}
	if q := rl.ReactorStats().AcceptQueue; q != acceptBacklog {
		t.Errorf("accept queue = %d, want full backlog %d", q, acceptBacklog)
	}
}

// TestReactorQueueFullDropCounter pins the per-peer backpressure drop:
// a slow consumer's full ring increments the aggregate dropped counter
// AND the queue-full reason counter.
func TestReactorQueueFullDropCounter(t *testing.T) {
	ctx := ctxT(t)
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.(core.ReactorConfigurer).ConfigureReactor(core.ReactorConfig{Shards: 1, RingSize: 8}); err != nil {
		t.Fatal(err)
	}
	// Force the reactor up (it starts lazily) so the flood is demuxed.
	l.(ReactorListener).Shards()

	before := counterValue("transport/udp/datagrams_dropped_queue_full")
	beforeDropped := counterValue("transport/udp/datagrams_dropped")
	c, err := DialUDP("cli", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// 64 datagrams into an 8-slot ring that nobody drains.
	for i := 0; i < 64; i++ {
		if err := c.Send(ctx, []byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, "queue-full counter", func() bool {
		return counterValue("transport/udp/datagrams_dropped_queue_full") > before
	})
	waitFor(t, 5*time.Second, "aggregate dropped counter", func() bool {
		return counterValue("transport/udp/datagrams_dropped") > beforeDropped
	})
	// The accepted conn still delivers the ring's worth.
	sc, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if m, err := sc.Recv(ctx); err != nil || string(m) != "flood" {
		t.Fatalf("recv: %q %v", m, err)
	}
}

// TestReactorMalformedDropCounter pins the malformed reason: a raw
// datagram above MaxDatagram (truncated by the receive buffer) is
// dropped as malformed, not as queue pressure.
func TestReactorMalformedDropCounter(t *testing.T) {
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.(ReactorListener).Shards() // force the reactor up

	before := counterValue("transport/udp/datagrams_dropped_malformed")
	raw, err := net.Dial("udp", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	oversize := make([]byte, MaxDatagram+1000)
	if _, err := raw.Write(oversize); err != nil {
		t.Skipf("kernel rejected %d-byte datagram: %v", len(oversize), err)
	}
	waitFor(t, 5*time.Second, "malformed counter", func() bool {
		return counterValue("transport/udp/datagrams_dropped_malformed") > before
	})
}

// TestReactorReadyRearm drives the edge-triggered readiness API: worker
// goroutines — one per shard, O(shards) total — serve every peer via
// Ready/Rearm without any per-connection receiver.
func TestReactorReadyRearm(t *testing.T) {
	ctx, cancel := context.WithCancel(ctxT(t))
	defer cancel()
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.(core.ReactorConfigurer).ConfigureReactor(core.ReactorConfig{Shards: 2, RingSize: 64}); err != nil {
		t.Fatal(err)
	}
	rl := l.(ReactorListener)

	const peers = 20
	const perPeer = 25
	var served atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < rl.Shards(); s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			bufs := make([]*wire.Buf, 16)
			for {
				conn, err := rl.Ready(ctx, shard)
				if err != nil {
					return
				}
				bc := conn.(core.BatchConn)
				// Drain without blocking: the readiness edge guarantees at
				// least one message; take what is there and re-arm.
				for {
					rctx, rcancel := context.WithTimeout(ctx, 10*time.Millisecond)
					n, err := bc.RecvBufs(rctx, bufs)
					rcancel()
					if err != nil {
						break
					}
					for i := 0; i < n; i++ {
						served.Add(1)
						bufs[i].Release()
						bufs[i] = nil
					}
					if n < len(bufs) {
						break
					}
				}
				rl.Rearm(conn)
			}
		}(s)
	}

	recvd0 := counterValue("transport/udp/datagrams_recvd")
	clients := make([]core.Conn, peers)
	for i := range clients {
		c, err := DialUDP("cli", l.Addr().Addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	// Pace the rounds: an unpaced 500-datagram burst overflows the
	// kernel receive buffer and drops are invisible to the reactor. The
	// assertion is conservation — every datagram the reactor receives is
	// served through Ready/Rearm — plus a floor proving real traffic.
	for round := 0; round < perPeer; round++ {
		for _, c := range clients {
			if err := c.Send(ctx, []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
		time.Sleep(time.Millisecond)
	}
	waitFor(t, 10*time.Second, "workers to serve every received datagram", func() bool {
		recvd := counterValue("transport/udp/datagrams_recvd") - recvd0
		return recvd >= peers && served.Load() == int64(recvd)
	})
	cancel()
	wg.Wait()
}

// TestReactorShardOutOfRange pins Ready's bounds checking.
func TestReactorShardOutOfRange(t *testing.T) {
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rl := l.(ReactorListener)
	if _, err := rl.Ready(ctxT(t), rl.Shards()); err == nil {
		t.Fatal("Ready accepted an out-of-range shard")
	}
	if _, err := rl.Ready(ctxT(t), -1); err == nil {
		t.Fatal("Ready accepted a negative shard")
	}
}

// TestReactorConfigure pins the configuration seam: WithReactor-shaped
// config applies before start, errors after.
func TestReactorConfigure(t *testing.T) {
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	rc := l.(core.ReactorConfigurer)
	if err := rc.ConfigureReactor(core.ReactorConfig{Shards: 3, RingSize: 100}); err != nil {
		t.Fatal(err)
	}
	rl := l.(ReactorListener)
	if got := rl.Shards(); got != 3 { // forces start
		t.Fatalf("shards = %d, want 3", got)
	}
	st := rl.ReactorStats()
	if st.RingSize != 128 {
		t.Errorf("ring size = %d, want 128 (rounded up to a power of two)", st.RingSize)
	}
	waitFor(t, 2*time.Second, "reactor goroutines", func() bool {
		return rl.ReactorStats().Goroutines == 3
	})
	if err := rc.ConfigureReactor(core.ReactorConfig{}); err == nil {
		t.Fatal("ConfigureReactor after start must error")
	}
}

// TestReactorRecvAllocs gates the reactor hot path: a send → reactor
// delivery → ring pop round trip performs no allocations at steady
// state. This covers the whole datapath the connections benchmark
// sweeps — pool get, demux lookup, ring push, wakeup, pop.
func TestReactorRecvAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	ctx := context.Background()
	l, err := ListenUDP("srv", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	cli, err := DialUDP("cli", l.Addr().Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	payload := make([]byte, 64)
	if err := cli.Send(ctx, payload); err != nil {
		t.Fatal(err)
	}
	sc, err := l.Accept(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	bc := sc.(core.BufConn)
	// Warm up: materialization, pools, counters, ready queue.
	for i := 0; i < 32; i++ {
		if err := cli.Send(ctx, payload); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 33; i++ {
		b, err := bc.RecvBuf(ctx)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}

	avg := testing.AllocsPerRun(50, func() {
		if err := cli.Send(ctx, payload); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		b, err := bc.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		b.Release()
	})
	if avg >= 1 {
		t.Fatalf("reactor send+deliver+recv allocates %.2f objects/op, want 0", avg)
	}
}
