package transport

import (
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/wire"
)

// connRing is the per-connection receive ring of the reactor runtime: a
// bounded multi-producer queue of pooled buffers in the style of
// Vyukov's MPMC ring, drained by one consumer at a time.
//
// Producers are reactor goroutines. On a shared socket any reactor may
// receive any peer's datagrams, so the producer side cannot be a strict
// single producer: each slot carries a sequence number and producers
// claim slots by CAS on the head, which degenerates to an uncontended
// CAS when (as almost always) one reactor at a time is delivering to a
// given connection. The consumer side is the connection's Recv path,
// serialized by the connection's pop mutex.
//
// Ownership (DESIGN.md §12): push transfers the buffer into the slot
// array — pop's callers (the connection's Recv path, or its close-time
// drain) own the release. A push against a full ring releases the
// buffer itself and reports false, so callers only account the drop.
type connRing struct {
	mask uint64
	// slots is the ring storage. A slot is writable by a producer when
	// seq == index, readable by the consumer when seq == index+1; pop
	// re-arms seq to index+mask+1 for the next lap.
	slots []ringSlot //bertha:queue drained by pop, whose callers own the release
	_     [48]byte   // keep head and tail on separate cache lines
	head  atomic.Uint64
	_     [56]byte
	// tail is consumer-owned (guarded by the connection's pop mutex);
	// atomic so occupancy accounting can read it from other goroutines.
	tail atomic.Uint64
}

type ringSlot struct {
	seq atomic.Uint64
	b   *wire.Buf
}

// newConnRing returns a ring of the given power-of-two capacity.
func newConnRing(size int) *connRing {
	r := &connRing{
		mask:  uint64(size - 1),
		slots: make([]ringSlot, size),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues b, transferring ownership to the drain path. On a full
// ring it releases b and reports false.
func (r *connRing) push(b *wire.Buf) bool {
	h := r.head.Load()
	for {
		slot := &r.slots[h&r.mask]
		seq := slot.seq.Load()
		switch {
		case seq == h:
			if r.head.CompareAndSwap(h, h+1) {
				r.slots[h&r.mask].b = b
				// The seq store publishes the slot to the consumer; the
				// buffer write above happens-before it.
				slot.seq.Store(h + 1)
				return true
			}
			h = r.head.Load()
		case seq < h:
			// The slot still holds a message from mask+1 pushes ago:
			// the ring is full. Datagram semantics: drop.
			b.Release()
			return false
		default:
			// Another producer claimed h; chase the head.
			h = r.head.Load()
		}
	}
}

// pop dequeues the next buffer, nil when the ring is empty. The caller
// must hold the connection's pop mutex (single consumer) and owns the
// returned buffer.
func (r *connRing) pop() *wire.Buf {
	t := r.tail.Load()
	slot := &r.slots[t&r.mask]
	if slot.seq.Load() != t+1 {
		return nil
	}
	b := slot.b
	slot.b = nil
	// Re-arm the slot for the producers' next lap.
	slot.seq.Store(t + r.mask + 1)
	r.tail.Store(t + 1)
	return b
}

// occupied reports the number of undelivered messages (approximate
// under concurrent pushes; exact when quiescent).
func (r *connRing) occupied() int64 {
	n := int64(r.head.Load()) - int64(r.tail.Load())
	if n < 0 {
		n = 0
	}
	return n
}

// memBytes is the ring's slot-array footprint, for per-connection
// accounting.
func (r *connRing) memBytes() int64 {
	return int64(len(r.slots)) * 16
}
