package transport

import (
	"context"
	"fmt"

	"github.com/bertha-net/bertha/internal/core"
)

// MultiDialer routes Dial calls by address network ("udp", "unix",
// "pipe", "sim"). The runtime installs one in each endpoint's Env so
// chunnel implementations can open connections on whichever transport an
// address names — the local fast-path chunnel, for example, dials the
// server's "unix" address when the hosts match.
type MultiDialer struct {
	// HostID labels connections opened by this dialer.
	HostID string
	// Pipe, when set, serves "pipe" addresses.
	Pipe *PipeNetwork
	// Extra maps additional network names to dialers (e.g. "sim").
	Extra map[string]core.Dialer
}

// Dial implements core.Dialer.
func (m *MultiDialer) Dial(ctx context.Context, addr core.Addr) (core.Conn, error) {
	switch addr.Net {
	case "udp":
		return DialUDP(m.HostID, addr.Addr)
	case "unix":
		return DialUnix(m.HostID, addr.Addr)
	case "pipe":
		if m.Pipe == nil {
			return nil, fmt.Errorf("transport: no pipe network configured")
		}
		return m.Pipe.DialFrom(ctx, m.HostID, addr)
	default:
		if d, ok := m.Extra[addr.Net]; ok {
			return d.Dial(ctx, addr)
		}
		return nil, fmt.Errorf("transport: unknown network %q in %s", addr.Net, addr)
	}
}
