//go:build !linux || (!amd64 && !arm64)

// Portable stand-ins for the linux sendmmsg/recvmmsg batch path. Sends
// degrade to a write loop behind the same single wmu acquisition;
// batched receives are disabled (RecvBufs delivers one message per
// call), so callers still see correct — just unamortized — behaviour.

package transport

import (
	"errors"

	"github.com/bertha-net/bertha/internal/wire"
)

// batchRecvSupported: RecvBufs falls back to single-message receives.
const batchRecvSupported = false

// mmsgState is empty without kernel batch syscalls.
type mmsgState struct{}

// writeBurst degrades to the per-message write loop. Caller holds wmu,
// so the burst still pays the lock and deadline management only once.
func (s *socketConn) writeBurst(bs []*wire.Buf) (int, error) {
	return s.writeBurstLoop(bs)
}

// readBurst is unreachable (batchRecvSupported is false); it exists so
// RecvBufs compiles on every platform.
func (s *socketConn) readBurst(into []*wire.Buf) (int, error) {
	return 0, errors.New("transport: batched receive not supported on this platform")
}
