// Package transport provides the base connections Bertha chunnel stacks
// compose over: in-process pipes, UDP sockets, UNIX datagram sockets, a
// peer-demultiplexing datagram listener, and a lossy wrapper for testing
// chunnels under adverse network schedules.
//
// All transports implement core.Conn with datagram semantics: one Send is
// one Recv, message boundaries preserved.
package transport

import (
	"context"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// DefaultPipeCapacity is the per-direction buffered message capacity of an
// in-process pipe.
const DefaultPipeCapacity = 256

// pipeHalf is one direction of an in-process pipe connection. The
// channels carry owned wire.Buf messages, so the SendBuf/RecvBuf path
// moves a message across the pipe without copying it at all.
type pipeHalf struct {
	local, remote core.Addr
	tel           *netCounters
	send          chan *wire.Buf
	recv          chan *wire.Buf

	closeOnce  sync.Once
	closed     chan struct{} // closed when *this* half is closed
	peerClosed chan struct{} // closed when the peer half is closed
}

// Pipe returns a connected in-process pair: what one side sends, the other
// receives. Each direction buffers up to capacity messages (Send blocks
// when full). Payloads are copied on Send, so callers may reuse buffers.
func Pipe(a, b core.Addr, capacity int) (core.Conn, core.Conn) {
	if capacity <= 0 {
		capacity = DefaultPipeCapacity
	}
	ab := make(chan *wire.Buf, capacity)
	ba := make(chan *wire.Buf, capacity)
	ca := make(chan struct{})
	cb := make(chan struct{})
	tel := countersFor("pipe")
	x := &pipeHalf{local: a, remote: b, tel: tel, send: ab, recv: ba, closed: ca, peerClosed: cb}
	y := &pipeHalf{local: b, remote: a, tel: tel, send: ba, recv: ab, closed: cb, peerClosed: ca}
	return x, y
}

// Send implements core.Conn (copies p, per the ownership convention).
func (p *pipeHalf) Send(ctx context.Context, b []byte) error {
	return p.SendBuf(ctx, wire.NewBufFrom(wire.DefaultHeadroom, b))
}

// SendBuf hands the buffer to the peer without copying.
func (p *pipeHalf) SendBuf(ctx context.Context, b *wire.Buf) error {
	// Fail fast on a known-closed pipe so Send after Close is
	// deterministic even when buffer space remains.
	select {
	case <-p.closed:
		b.Release()
		return core.ErrClosed
	case <-p.peerClosed:
		b.Release()
		return core.ErrClosed
	default:
	}
	select {
	case <-p.closed:
		b.Release()
		return core.ErrClosed
	case <-p.peerClosed:
		b.Release()
		return core.ErrClosed
	case <-ctx.Done():
		b.Release()
		return ctx.Err()
	case p.send <- b:
		p.tel.sent.Inc()
		return nil
	}
}

// SendBufs enqueues the burst with one closed-state check up front;
// each message still lands in the channel individually (capacity
// backpressure applies per message). The first failure aborts the burst
// and releases the unsent tail.
func (p *pipeHalf) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	select {
	case <-p.closed:
		core.ReleaseAll(bs)
		return &core.BatchError{Sent: 0, Err: core.ErrClosed}
	case <-p.peerClosed:
		core.ReleaseAll(bs)
		return &core.BatchError{Sent: 0, Err: core.ErrClosed}
	default:
	}
	for i, b := range bs {
		select {
		case <-p.closed:
			p.tel.sent.Add(uint64(i)) // count the partial send, like socketConn
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i, Err: core.ErrClosed}
		case <-p.peerClosed:
			p.tel.sent.Add(uint64(i))
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i, Err: core.ErrClosed}
		case <-ctx.Done():
			p.tel.sent.Add(uint64(i))
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i, Err: ctx.Err()}
		case p.send <- b:
		}
	}
	p.tel.sent.Add(uint64(len(bs)))
	return nil
}

// RecvBufs blocks for the first message, then drains whatever the peer
// has already buffered — a burst costs one blocking receive.
func (p *pipeHalf) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	b, err := p.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	into[0] = b
	n := 1
	for n < len(into) {
		select {
		case b := <-p.recv:
			into[n] = b
			n++
		default:
			p.tel.recvd.Add(uint64(n - 1)) // RecvBuf counted the first
			return n, nil
		}
	}
	p.tel.recvd.Add(uint64(n - 1))
	return n, nil
}

// Headroom: transports terminate the stack, no headers below.
func (p *pipeHalf) Headroom() int { return 0 }

// Recv implements core.Conn.
func (p *pipeHalf) Recv(ctx context.Context) ([]byte, error) {
	b, err := p.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf implements core.BufConn.
func (p *pipeHalf) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	// Drain buffered messages even after close so no data is lost, but
	// fail once both the buffer is empty and a side is closed.
	select {
	case b := <-p.recv:
		p.tel.recvd.Inc()
		return b, nil
	default:
	}
	select {
	case b := <-p.recv:
		p.tel.recvd.Inc()
		return b, nil
	case <-p.closed:
		return nil, core.ErrClosed
	case <-p.peerClosed:
		// Peer closed: deliver anything still buffered.
		select {
		case b := <-p.recv:
			p.tel.recvd.Inc()
			return b, nil
		default:
			return nil, core.ErrClosed
		}
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// LocalAddr implements core.Conn.
func (p *pipeHalf) LocalAddr() core.Addr { return p.local }

// RemoteAddr implements core.Conn.
func (p *pipeHalf) RemoteAddr() core.Addr { return p.remote }

// Close implements core.Conn.
func (p *pipeHalf) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}

// PipeNetwork is an in-process datagram "network": named listeners on
// virtual hosts, with Dial connecting a fresh pipe to a listener. It lets
// a single test process stand in for multiple hosts (addresses carry a
// host identity for locality decisions).
type PipeNetwork struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener // key: addr string
	nextPort  int
	capacity  int
}

// NewPipeNetwork returns an empty in-process network.
func NewPipeNetwork() *PipeNetwork {
	return &PipeNetwork{listeners: make(map[string]*pipeListener), capacity: DefaultPipeCapacity}
}

// Listen binds a listener at the given virtual host and address name.
func (n *PipeNetwork) Listen(host, name string) (core.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("transport: pipe address %q already bound", name)
	}
	l := &pipeListener{
		net:    n,
		addr:   core.Addr{Net: "pipe", Host: host, Addr: name},
		accept: make(chan core.Conn, 64),
		closed: make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to a listener in this network. The caller's host identity
// is taken from the dialing address when provided via DialFrom; plain Dial
// uses an anonymous host.
func (n *PipeNetwork) Dial(ctx context.Context, addr core.Addr) (core.Conn, error) {
	return n.DialFrom(ctx, "", addr)
}

// DialFrom connects to a listener, labeling the client side with the given
// host identity (so host-locality checks reflect the virtual topology).
func (n *PipeNetwork) DialFrom(ctx context.Context, fromHost string, addr core.Addr) (core.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr.Addr]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: no pipe listener at %q", addr.Addr)
	}
	n.nextPort++
	port := n.nextPort
	capacity := n.capacity
	n.mu.Unlock()

	clientAddr := core.Addr{Net: "pipe", Host: fromHost, Addr: fmt.Sprintf("%s#%d", addr.Addr, port)}
	cliConn, srvConn := Pipe(clientAddr, l.addr, capacity)
	select {
	case l.accept <- srvConn:
		return cliConn, nil
	case <-l.closed:
		cliConn.Close()
		return nil, core.ErrClosed
	case <-ctx.Done():
		cliConn.Close()
		return nil, ctx.Err()
	}
}

// Dialer returns a core.Dialer dialing into this network from the given
// host identity.
func (n *PipeNetwork) Dialer(fromHost string) core.Dialer {
	return core.DialerFunc(func(ctx context.Context, addr core.Addr) (core.Conn, error) {
		return n.DialFrom(ctx, fromHost, addr)
	})
}

type pipeListener struct {
	net    *PipeNetwork
	addr   core.Addr
	accept chan core.Conn
	closed chan struct{}
	once   sync.Once
}

func (l *pipeListener) Accept(ctx context.Context) (core.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *pipeListener) Addr() core.Addr { return l.addr }

func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr.Addr)
		l.net.mu.Unlock()
	})
	return nil
}
