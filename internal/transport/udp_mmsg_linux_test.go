//go:build linux && (amd64 || arm64)

package transport

import (
	"path/filepath"
	"syscall"
	"testing"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// rawFD adapts a plain file descriptor to syscall.RawConn for driving
// the mmsg callbacks directly in tests. Blocking sockets never return
// EAGAIN, so the retry loops cannot spin.
type rawFD uintptr

func (r rawFD) Control(f func(fd uintptr)) error { f(uintptr(r)); return nil }

func (r rawFD) Read(f func(fd uintptr) bool) error {
	for !f(uintptr(r)) {
	}
	return nil
}

func (r rawFD) Write(f func(fd uintptr) bool) error {
	for !f(uintptr(r)) {
	}
	return nil
}

func mkUniform(n, size int) []*wire.Buf {
	bs := make([]*wire.Buf, n)
	for i := range bs {
		bs[i] = wire.NewBuf(0, size)
		p := bs[i].Bytes()
		for j := range p {
			p[j] = byte(i)
		}
	}
	return bs
}

// TestGSOEligibleSegmentCap pins the MTU guard: uniform bursts above
// gsoMaxSeg must not take the GSO path, because the kernel rejects a
// gso_size exceeding the path MTU with EINVAL where sendmmsg would have
// delivered via IP fragmentation.
func TestGSOEligibleSegmentCap(t *testing.T) {
	cases := []struct {
		n, size int
		ok      bool
	}{
		{2, gsoMaxSeg, true},
		{2, gsoMaxSeg + 1, false},
		{8, 128, true},
		{1, 128, false}, // single message: nothing to coalesce
		{2, 0, false},
	}
	for _, tc := range cases {
		bs := mkUniform(tc.n, tc.size)
		seg, ok := gsoEligible(bs)
		if ok != tc.ok {
			t.Errorf("gsoEligible(%d x %d bytes) = %v, want %v", tc.n, tc.size, ok, tc.ok)
		}
		if ok && seg != tc.size {
			t.Errorf("gsoEligible(%d x %d bytes) seg = %d, want %d", tc.n, tc.size, seg, tc.size)
		}
		core.ReleaseAll(bs)
	}
}

// rejectingConn builds a socketConn over a datagram socketpair whose
// GSO sendmsg path is forced to fail with errno (the injection seam —
// loopback's 64k MTU cannot produce the path-MTU EINVAL organically).
// The restore function must be deferred; reads come from the returned
// peer fd. sendmmsg/recvmmsg remain real syscalls.
func rejectingConn(t *testing.T, errno syscall.Errno) (s *socketConn, peer int, restore func()) {
	t.Helper()
	fds, err := syscall.Socketpair(syscall.AF_UNIX, syscall.SOCK_DGRAM, 0)
	if err != nil {
		t.Fatalf("socketpair: %v", err)
	}
	t.Cleanup(func() { syscall.Close(fds[0]); syscall.Close(fds[1]) })

	s = &socketConn{tel: countersFor("udp")}
	m := &s.sendmm
	m.tried = true // skip initRaw: drive the callbacks over the raw fd
	m.raw = rawFD(fds[0])
	m.fn = m.sendChunks
	m.gsoFn = m.sendGSO

	prev := sendmsg
	sendmsg = func(fd, msg uintptr) syscall.Errno { return errno }
	return s, fds[1], func() { sendmsg = prev }
}

// TestGSOMidBurstRejectFallsBack reproduces an EINVAL-class UDP_SEGMENT
// rejection after the probe has latched gsoYes (in production: a path
// MTU smaller than the segment size). The burst must fall back to
// sendmmsg and deliver everything, not fail, and the latched state must
// survive — a transient rejection is not a capability verdict.
func TestGSOMidBurstRejectFallsBack(t *testing.T) {
	s, peer, restore := rejectingConn(t, syscall.EINVAL)
	defer restore()
	s.sendmm.gso = gsoYes // as if an earlier burst's probe succeeded

	const n, size = 4, 256
	bs := mkUniform(n, size) // uniform and small: GSO-eligible
	sent, err := s.writeBurst(bs)
	if err != nil {
		t.Fatalf("writeBurst after UDP_SEGMENT rejection = %v, want sendmmsg fallback", err)
	}
	if sent != n {
		t.Fatalf("sent = %d, want %d", sent, n)
	}
	if s.sendmm.gso != gsoYes {
		t.Errorf("gso state = %d after transient rejection, want gsoYes (%d)", s.sendmm.gso, gsoYes)
	}
	core.ReleaseAll(bs)

	buf := make([]byte, size+1)
	for i := 0; i < n; i++ {
		k, err := syscall.Read(peer, buf)
		if err != nil {
			t.Fatalf("read datagram %d: %v", i, err)
		}
		if k != size || buf[0] != byte(i) {
			t.Fatalf("datagram %d: %d bytes first=%#x, want %d bytes first=%#x", i, k, buf[0], size, byte(i))
		}
	}
}

// TestGSOProbeFailureReplaysBurst drives the unprobed path into the
// same rejection: the first eligible burst latches gsoNo and the whole
// burst still goes out via sendmmsg.
func TestGSOProbeFailureReplaysBurst(t *testing.T) {
	s, peer, restore := rejectingConn(t, syscall.EOPNOTSUPP)
	defer restore()

	const n, size = 3, 64
	bs := mkUniform(n, size)
	sent, err := s.writeBurst(bs)
	if err != nil {
		t.Fatalf("writeBurst on non-GSO socket = %v, want sendmmsg replay", err)
	}
	if sent != n {
		t.Fatalf("sent = %d, want %d", sent, n)
	}
	if s.sendmm.gso != gsoNo {
		t.Errorf("gso state = %d after probe failure, want gsoNo (%d)", s.sendmm.gso, gsoNo)
	}
	core.ReleaseAll(bs)

	buf := make([]byte, size+1)
	for i := 0; i < n; i++ {
		if _, err := syscall.Read(peer, buf); err != nil {
			t.Fatalf("read datagram %d: %v", i, err)
		}
	}
}

// TestUnixgramBurstSkipsGSO checks the transport guard: unixgram
// sockets never attempt the UDP-only UDP_SEGMENT probe — the state is
// latched gsoNo at init and eligible bursts ride plain sendmmsg.
func TestUnixgramBurstSkipsGSO(t *testing.T) {
	ctx := ctxT(t)
	path := filepath.Join(t.TempDir(), "srv.sock")
	l, err := ListenUnix("h", path)
	if err != nil {
		t.Fatalf("listen unix: %v", err)
	}
	defer l.Close()
	cli, err := DialUnix("h", path)
	if err != nil {
		t.Fatalf("dial unix: %v", err)
	}
	defer cli.Close()

	const n, size = 4, 64
	if err := core.SendBufs(ctx, cli, mkUniform(n, size)); err != nil {
		t.Fatalf("SendBufs: %v", err)
	}
	srv, err := l.Accept(ctx)
	if err != nil {
		t.Fatalf("accept: %v", err)
	}
	for _, g := range recvN(ctx, t, srv, n) {
		if g.Len() != size {
			t.Errorf("received %d bytes, want %d", g.Len(), size)
		}
		g.Release()
	}
	if gso := cli.(*unixConn).sendmm.gso; gso != gsoNo {
		t.Errorf("unixgram gso state = %d, want gsoNo (%d)", gso, gsoNo)
	}
}
