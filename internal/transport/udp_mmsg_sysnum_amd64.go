//go:build linux && amd64

package transport

// Syscall numbers for the batch datagram syscalls. sendmmsg postdates
// the frozen syscall package's generated tables, so both numbers are
// pinned here per architecture.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
