package transport

import (
	"context"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// The sharded reactor runtime: the receive datapath of every demuxing
// datagram listener. N reactor goroutines (core.ReactorConfig.Shards)
// drain the shared kernel socket — through recvmmsg bursts on linux,
// single reads elsewhere — and demultiplex each datagram by source
// address into a sharded connection table, delivering into the target
// connection's bounded ring (ring.go). Connections own no goroutines:
// the listener's goroutine count is O(shards) however many peers the
// socket carries, which is what lets one socket serve 100k+ logical
// connections without scheduler collapse.
//
// Concurrency notes. Reads on one fd serialize on the runtime poller's
// internal read lock, so the shards alternate taking bursts off the
// socket rather than reading truly in parallel; what the sharding buys
// is running the demux work — address hashing, table lookup, ring
// delivery, wakeups — outside that lock and spread across cores, plus
// shard-local buffer pools. The connection table is per-shard
// open-addressing with atomic entry loads on the hot lookup; the shard
// mutex is taken only to insert, remove, or grow.

// reactorPoolCap bounds each shard's local buffer cache (LocalPool).
const reactorPoolCap = 256

// acceptBacklog is the accept-queue capacity, unchanged from the
// pre-reactor demux listener. New peers materializing while it is full
// are dropped and counted (transport/<net>/accept_dropped); the peer's
// retransmission re-creates the connection.
const acceptBacklog = 128

// PacketConn abstracts net.UDPConn and net.UnixConn for the shared
// demultiplexing listener; exported so harnesses (the connections
// benchmark's in-memory network) can drive a reactor listener over a
// custom socket via NewPacketListener.
type PacketConn interface {
	ReadFrom(b []byte) (int, net.Addr, error)
	WriteTo(b []byte, addr net.Addr) (int, error)
	Close() error
	LocalAddr() net.Addr
	SetReadDeadline(t time.Time) error
}

// AddrPortPacketConn is the allocation-free demux fast path: sources
// are identified by netip.AddrPort values, so the per-datagram receive
// performs no net.Addr or key-string allocation. *net.UDPConn rides it
// via udpPC; in-memory harness sockets implement it directly.
type AddrPortPacketConn interface {
	PacketConn
	ReadFromAddrPort(p []byte) (int, netip.AddrPort, error)
	WriteToAddrPort(p []byte, ap netip.AddrPort) (int, error)
}

// udpPC adapts *net.UDPConn to AddrPortPacketConn.
type udpPC struct{ *net.UDPConn }

func (u udpPC) ReadFromAddrPort(p []byte) (int, netip.AddrPort, error) {
	return u.ReadFromUDPAddrPort(p)
}

func (u udpPC) WriteToAddrPort(p []byte, ap netip.AddrPort) (int, error) {
	return u.WriteToUDPAddrPort(p, ap)
}

// ReactorListener is the readiness interface a reactor listener exports
// beyond core.Listener: epoll-style edge-triggered connection readiness
// per shard, so a server can serve every connection with O(shards)
// worker goroutines instead of one blocked receiver per connection.
//
// Protocol: Ready blocks until some connection on the shard has
// undelivered messages and returns it exactly once per readiness edge.
// The worker drains what it wants (RecvBuf/RecvBufs) and then calls
// Rearm; if messages remain (or raced in), the connection is re-queued
// immediately. A connection never appears in the ready queue twice
// concurrently.
type ReactorListener interface {
	core.Listener
	core.ReactorAccountant
	// Shards reports the reactor width; valid shard indices for Ready
	// are [0, Shards()).
	Shards() int
	// Ready returns the next readable connection on a shard.
	Ready(ctx context.Context, shard int) (core.Conn, error)
	// Rearm re-enables readiness edges for a connection obtained from
	// Ready, re-queueing it at once if messages are pending.
	Rearm(conn core.Conn)
}

// peerKey identifies a demultiplexed peer: an AddrPort on the fast
// path, the address's string form otherwise. Exactly one field is set.
type peerKey struct {
	ap netip.AddrPort
	s  string
}

func (k peerKey) String() string {
	if k.s != "" {
		return k.s
	}
	return k.ap.String()
}

// hash is FNV-1a over the key's bytes. Peers hash to table shards with
// it; within a shard it doubles as the probe start.
func (k peerKey) hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	if k.s != "" {
		for i := 0; i < len(k.s); i++ {
			h = (h ^ uint64(k.s[i])) * prime64
		}
		return h
	}
	a := k.ap.Addr().As16()
	for _, c := range a {
		h = (h ^ uint64(c)) * prime64
	}
	p := k.ap.Port()
	h = (h ^ uint64(p&0xff)) * prime64
	h = (h ^ uint64(p>>8)) * prime64
	return h
}

// newDemuxListener builds a reactor listener over pc. The reactor
// goroutines start lazily on the first Accept/Ready call, so
// ConfigureReactor (via core.WithReactor) can still adjust the shape.
func newDemuxListener(pc PacketConn, addr core.Addr) *reactorListener {
	l := &reactorListener{
		pc:     pc,
		addr:   addr,
		tel:    countersFor(addr.Net),
		accept: make(chan *reactorConn, acceptBacklog),
		closed: make(chan struct{}),
	}
	if apc, ok := pc.(AddrPortPacketConn); ok {
		l.apc = apc
	}
	if u, ok := pc.(udpPC); ok {
		l.udp = u.UDPConn
	}
	return l
}

// NewPacketListener builds a reactor listener over a caller-supplied
// socket with an explicit configuration (the zero value selects the
// defaults). Harnesses use it to run the reactor over in-memory
// networks; production listeners come from ListenUDP/ListenUnix.
func NewPacketListener(pc PacketConn, addr core.Addr, cfg core.ReactorConfig) ReactorListener {
	l := newDemuxListener(pc, addr)
	l.cfg = cfg
	return l
}

// reactorListener demultiplexes one datagram socket into per-peer
// core.Conns on the sharded reactor runtime: the datagram analog of
// accept(), scaled past goroutine-per-peer.
type reactorListener struct {
	pc   PacketConn
	apc  AddrPortPacketConn // non-nil: allocation-free source addressing
	udp  *net.UDPConn       // non-nil: recvmmsg burst receive on linux
	addr core.Addr
	tel  *netCounters

	cfg       core.ReactorConfig
	startOnce sync.Once
	started   atomic.Bool

	shards []*reactorShard
	accept chan *reactorConn
	closed chan struct{}
	once   sync.Once

	goroutines atomic.Int64
}

// reactorShard is one slice of the runtime: a table shard, its ready
// queue, and the shard's connection count. Reactor goroutine i also
// owns LocalPool i, created in its loop.
type reactorShard struct {
	table peerTable
	ready readyQueue
	conns atomic.Int64
}

// ConfigureReactor implements core.ReactorConfigurer. It must run
// before the listener starts serving (Endpoint.Listen applies it
// immediately after the base listener is constructed).
func (l *reactorListener) ConfigureReactor(cfg core.ReactorConfig) error {
	if l.started.Load() {
		return fmt.Errorf("transport: reactor already started")
	}
	l.cfg = cfg
	return nil
}

// start spins up the reactor goroutines (idempotent). Datagrams
// arriving beforehand wait in the kernel socket buffer, so lazy start
// loses nothing.
func (l *reactorListener) start() {
	l.startOnce.Do(func() {
		l.cfg.Fill()
		l.started.Store(true)
		l.shards = make([]*reactorShard, l.cfg.Shards)
		for i := range l.shards {
			l.shards[i] = &reactorShard{}
			l.shards[i].ready.ch = make(chan struct{}, 1)
		}
		registerReactor(l)
		for i := 0; i < l.cfg.Shards; i++ {
			l.goroutines.Add(1)
			go l.run()
		}
	})
}

// run is one reactor goroutine: burst receive where the platform and
// socket support it, single reads otherwise. Exits when the socket
// closes.
func (l *reactorListener) run() {
	defer l.goroutines.Add(-1)
	pool := wire.NewLocalPool(wire.DefaultHeadroom, MaxDatagram+1, reactorPoolCap)
	defer pool.Drain()
	if l.udp != nil && batchRecvSupported && l.runBurst(pool) {
		return
	}
	l.runSingle(pool)
}

// runSingle is the portable receive loop: one datagram per read.
func (l *reactorListener) runSingle(pool *wire.LocalPool) {
	for {
		b := pool.Get()
		var (
			n    int
			err  error
			key  peerKey
			from net.Addr
		)
		if l.apc != nil {
			var ap netip.AddrPort
			n, ap, err = l.apc.ReadFromAddrPort(b.Bytes())
			key = peerKey{ap: ap}
		} else {
			n, from, err = l.pc.ReadFrom(b.Bytes())
			if err == nil {
				key = peerKey{s: from.String()}
			}
		}
		if err != nil {
			pool.Put(b)
			select {
			case <-l.closed:
				return
			default:
			}
			if isClosedErr(err) {
				l.Close()
				return
			}
			continue // transient error (e.g. ICMP-induced)
		}
		if n > MaxDatagram {
			// Truncated by our own read buffer: the sender violated the
			// datagram ceiling. Malformed, not queue pressure.
			pool.Put(b)
			l.tel.dropped.Inc()
			l.tel.droppedMalformed.Inc()
			continue
		}
		b.Truncate(n)
		l.tel.recvd.Inc()
		l.deliver(key, from, b, pool)
	}
}

// deliver routes one received datagram to its connection's ring,
// materializing the connection on first contact. It consumes b on every
// path.
func (l *reactorListener) deliver(key peerKey, from net.Addr, b *wire.Buf, pool *wire.LocalPool) {
	sh := l.shards[key.hash()%uint64(len(l.shards))]
	c := sh.table.lookup(key)
	if c == nil {
		c = l.materialize(sh, key, from)
		if c == nil {
			// Accept backlog full: drop the peer (client retries).
			pool.Put(b)
			l.tel.dropped.Inc()
			l.tel.acceptDropped.Inc()
			return
		}
	}
	if !c.ring.push(b) {
		// Ring full: push released the buffer (datagram semantics).
		l.tel.dropped.Inc()
		l.tel.droppedQueueFull.Inc()
		return
	}
	if c.closedFlag.Load() {
		// The push raced Close's drain; sweep what it may have missed.
		c.drain()
		return
	}
	c.wake(sh)
}

// materialize creates (or, racing another reactor, finds) the
// connection for a new peer and offers it to the accept queue. A full
// backlog retracts the connection and reports nil.
func (l *reactorListener) materialize(sh *reactorShard, key peerKey, from net.Addr) *reactorConn {
	sh.table.mu.Lock()
	if c := sh.table.lookupLocked(key); c != nil {
		sh.table.mu.Unlock()
		return c
	}
	c := &reactorConn{
		l:      l,
		shard:  sh,
		key:    key,
		peer:   from,
		local:  l.addr,
		remote: core.Addr{Net: l.addr.Net, Addr: key.String()},
		ring:   newConnRing(l.cfg.RingSize),
		notify: make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	sh.table.insertLocked(key, c)
	sh.table.mu.Unlock()
	sh.conns.Add(1)
	select {
	case l.accept <- c:
		return c
	default:
		c.Close()
		return nil
	}
}

func (l *reactorListener) Accept(ctx context.Context) (core.Conn, error) {
	l.start()
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *reactorListener) Addr() core.Addr { return l.addr }

func (l *reactorListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.pc.Close()
		unregisterReactor(l)
		for _, sh := range l.shards {
			for _, c := range sh.table.closeAll() {
				c.closePeer()
			}
			sh.conns.Store(0)
		}
	})
	return nil
}

// Shards reports the reactor width (ReactorListener).
func (l *reactorListener) Shards() int {
	l.start()
	return l.cfg.Shards
}

// Ready returns the next readable connection on a shard
// (ReactorListener).
func (l *reactorListener) Ready(ctx context.Context, shard int) (core.Conn, error) {
	l.start()
	if shard < 0 || shard >= len(l.shards) {
		return nil, fmt.Errorf("transport: shard %d out of range [0,%d)", shard, len(l.shards))
	}
	sh := l.shards[shard]
	for {
		if c := sh.ready.pop(); c != nil {
			return c, nil
		}
		select {
		case <-sh.ready.ch:
		case <-l.closed:
			return nil, core.ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Rearm re-enables readiness edges for c (ReactorListener).
func (l *reactorListener) Rearm(conn core.Conn) {
	c, ok := conn.(*reactorConn)
	if !ok {
		return
	}
	c.queued.Store(false)
	if c.ring.occupied() > 0 && c.queued.CompareAndSwap(false, true) {
		c.shard.ready.push(c)
	}
}

// reactorConnOverhead approximates a connection's fixed footprint
// beyond its ring slots: the conn struct, the ring header, the notify
// and closed channels, and its table slot.
var reactorConnOverhead = int64(unsafe.Sizeof(reactorConn{})) + 192

// ReactorStats implements core.ReactorAccountant.
func (l *reactorListener) ReactorStats() core.ReactorStats {
	st := core.ReactorStats{
		Shards:      l.cfg.Shards,
		RingSize:    l.cfg.RingSize,
		Goroutines:  l.goroutines.Load(),
		AcceptQueue: len(l.accept),
	}
	if !l.started.Load() {
		return st
	}
	st.ShardConns = make([]int64, len(l.shards))
	for i, sh := range l.shards {
		n := sh.conns.Load()
		st.ShardConns[i] = n
		st.Conns += n
		occ, tableBytes := sh.table.account()
		st.RingOccupied += occ
		st.ConnMemBytes += tableBytes
	}
	st.ConnMemBytes += st.Conns * (reactorConnOverhead + int64(l.cfg.RingSize)*16)
	return st
}

// readyQueue is one shard's FIFO of readiness edges. Pushes come from
// reactor goroutines and Rearm; pops from Ready callers. Entries are
// unique (the connection's queued flag gates pushes), so the queue
// holds at most one slot per live connection and its backing array
// stops growing once warm.
type readyQueue struct {
	mu   sync.Mutex
	q    []*reactorConn
	head int
	ch   chan struct{} // cap 1: wake for blocked Ready callers
}

func (r *readyQueue) push(c *reactorConn) {
	r.mu.Lock()
	r.q = append(r.q, c)
	r.mu.Unlock()
	select {
	case r.ch <- struct{}{}:
	default:
	}
}

func (r *readyQueue) pop() *reactorConn {
	r.mu.Lock()
	var c *reactorConn
	if r.head < len(r.q) {
		c = r.q[r.head]
		r.q[r.head] = nil
		r.head++
		if r.head == len(r.q) {
			r.q = r.q[:0]
			r.head = 0
		}
	}
	r.mu.Unlock()
	return c
}

// peerTable is one shard's open-addressing connection table. Lookups
// are lock-free: linear probing over atomic entry loads. Inserts,
// removes, and growth serialize on mu; growth installs a rebuilt array
// with a single pointer swap, so a concurrent reader sees either the
// old or the new generation (a reader racing an insert into the new
// generation may miss it — the reactor re-checks under mu before
// materializing, so a miss never duplicates a connection).
type peerTable struct {
	mu    sync.Mutex
	slots atomic.Pointer[peerSlots]
	live  int // entries holding a connection (guarded by mu)
	used  int // slots consumed, tombstones included (guarded by mu)
}

type peerSlots struct {
	mask    uint64
	entries []peerEntry
}

type peerEntry struct {
	c atomic.Pointer[reactorConn]
}

// tombstone marks a vacated slot so probe chains stay connected.
var tombstone = &reactorConn{}

// lookup finds the live connection for key, lock-free.
func (t *peerTable) lookup(key peerKey) *reactorConn {
	s := t.slots.Load()
	if s == nil {
		return nil
	}
	h := key.hash()
	for probe := uint64(0); probe <= s.mask; probe++ {
		c := s.entries[(h+probe)&s.mask].c.Load()
		if c == nil {
			return nil
		}
		if c != tombstone && c.key == key {
			return c
		}
	}
	return nil
}

// lookupLocked is lookup under mu (no new generation can race in).
func (t *peerTable) lookupLocked(key peerKey) *reactorConn {
	return t.lookup(key)
}

// insertLocked adds a connection; the caller holds mu and has verified
// the key is absent.
func (t *peerTable) insertLocked(key peerKey, c *reactorConn) {
	s := t.slots.Load()
	if s == nil || uint64(t.used+1) > (s.mask+1)*3/4 {
		s = t.grow(s)
	}
	h := key.hash()
	for probe := uint64(0); ; probe++ {
		e := &s.entries[(h+probe)&s.mask]
		cur := e.c.Load()
		if cur == nil {
			t.used++
			t.live++
			e.c.Store(c)
			return
		}
		if cur == tombstone {
			t.live++
			e.c.Store(c)
			return
		}
	}
}

// remove tombstones key's slot.
func (t *peerTable) remove(key peerKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.slots.Load()
	if s == nil {
		return
	}
	h := key.hash()
	for probe := uint64(0); probe <= s.mask; probe++ {
		e := &s.entries[(h+probe)&s.mask]
		c := e.c.Load()
		if c == nil {
			return
		}
		if c != tombstone && c.key == key {
			e.c.Store(tombstone)
			t.live--
			return
		}
	}
}

// grow installs a generation sized for the live population (tombstones
// compacted away) and returns it. Caller holds mu.
func (t *peerTable) grow(old *peerSlots) *peerSlots {
	size := 64
	for size < (t.live+1)*2 {
		size <<= 1
	}
	ns := &peerSlots{mask: uint64(size - 1), entries: make([]peerEntry, size)}
	t.used = 0
	if old != nil {
		for i := range old.entries {
			c := old.entries[i].c.Load()
			if c == nil || c == tombstone {
				continue
			}
			h := c.key.hash()
			for probe := uint64(0); ; probe++ {
				e := &ns.entries[(h+probe)&ns.mask]
				if e.c.Load() == nil {
					e.c.Store(c)
					t.used++
					break
				}
			}
		}
	}
	t.slots.Store(ns)
	return ns
}

// closeAll empties the table (listener shutdown) and returns the
// connections that were live.
func (t *peerTable) closeAll() []*reactorConn {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.slots.Load()
	if s == nil {
		return nil
	}
	conns := make([]*reactorConn, 0, t.live)
	for i := range s.entries {
		if c := s.entries[i].c.Load(); c != nil && c != tombstone {
			conns = append(conns, c)
			s.entries[i].c.Store(tombstone)
		}
	}
	t.live = 0
	return conns
}

// account sums live connections' ring occupancy and the table's own
// footprint (snapshot time only).
func (t *peerTable) account() (occupied, tableBytes int64) {
	s := t.slots.Load()
	if s == nil {
		return 0, 0
	}
	tableBytes = int64(len(s.entries)) * 8
	for i := range s.entries {
		if c := s.entries[i].c.Load(); c != nil && c != tombstone {
			occupied += c.ring.occupied()
		}
	}
	return occupied, tableBytes
}

// reactorConn is the per-peer connection handed out by a reactor
// listener: sends go straight to the shared socket; receives drain the
// connection's ring, filled by the reactor goroutines.
type reactorConn struct {
	l             *reactorListener
	shard         *reactorShard
	key           peerKey
	peer          net.Addr // non-nil only on the non-AddrPort path
	local, remote core.Addr

	ring   *connRing
	popMu  sync.Mutex    // serializes consumers over ring.pop
	notify chan struct{} // cap 1: wake for blocked RecvBuf callers

	queued     atomic.Bool // readiness edge pending in the shard queue
	closedFlag atomic.Bool
	closed     chan struct{}
	once       sync.Once
}

// wake publishes a delivery: a token for blocked receivers, a readiness
// edge for Ready workers.
func (c *reactorConn) wake(sh *reactorShard) {
	select {
	case c.notify <- struct{}{}:
	default:
	}
	if c.queued.CompareAndSwap(false, true) {
		sh.ready.push(c)
	}
}

// writeTo sends one datagram to the peer over the shared socket.
func (c *reactorConn) writeTo(p []byte) error {
	var err error
	if c.l.apc != nil {
		_, err = c.l.apc.WriteToAddrPort(p, c.key.ap)
	} else {
		_, err = c.l.pc.WriteTo(p, c.peer)
	}
	return err
}

func (c *reactorConn) Send(ctx context.Context, p []byte) error {
	if len(p) > MaxDatagram {
		return oversizeErr(len(p))
	}
	if c.closedFlag.Load() {
		return core.ErrClosed
	}
	if err := c.writeTo(p); err != nil {
		if isClosedErr(err) {
			return core.ErrClosed
		}
		return err
	}
	c.l.tel.sent.Inc()
	return nil
}

// SendBuf writes the buffer and releases it.
func (c *reactorConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	err := c.Send(ctx, b.Bytes())
	b.Release()
	return err
}

// SendBufs writes the burst through the shared listener socket with one
// closed-state check up front. WriteTo is already serialized by the
// kernel; the first failure aborts the burst.
func (c *reactorConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	if c.closedFlag.Load() {
		core.ReleaseAll(bs)
		return &core.BatchError{Sent: 0, Err: core.ErrClosed}
	}
	for i, b := range bs {
		if b.Len() > MaxDatagram {
			err := oversizeErr(b.Len())
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i, Err: err}
		}
		if err := c.writeTo(b.Bytes()); err != nil {
			if isClosedErr(err) {
				err = core.ErrClosed
			}
			core.ReleaseAll(bs[i:])
			return &core.BatchError{Sent: i, Err: err}
		}
		c.l.tel.sent.Inc()
		b.Release()
	}
	return nil
}

// RecvBuf hands the next ring buffer to the caller, blocking until the
// reactor delivers one.
func (c *reactorConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	for {
		c.popMu.Lock()
		b := c.ring.pop()
		c.popMu.Unlock()
		if b != nil {
			return b, nil
		}
		select {
		case <-c.notify:
		case <-c.closed:
			return nil, core.ErrClosed
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// RecvBufs drains the ring: blocking for the first message, then taking
// whatever the reactor has already delivered — a burst costs one
// blocking receive however large it is.
func (c *reactorConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	into[0] = b
	n := 1
	c.popMu.Lock()
	for n < len(into) {
		b := c.ring.pop()
		if b == nil {
			break
		}
		into[n] = b
		n++
	}
	c.popMu.Unlock()
	return n, nil
}

// Headroom: transports terminate the stack, no headers below.
func (c *reactorConn) Headroom() int { return 0 }

func (c *reactorConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

func (c *reactorConn) LocalAddr() core.Addr  { return c.local }
func (c *reactorConn) RemoteAddr() core.Addr { return c.remote }

// Close detaches the peer connection from the listener. The listener's
// socket stays open for other peers; a reused source address
// materializes a fresh connection.
func (c *reactorConn) Close() error {
	c.once.Do(func() {
		c.closedFlag.Store(true)
		close(c.closed)
		c.shard.table.remove(c.key)
		c.shard.conns.Add(-1)
		c.drain()
	})
	return nil
}

// closePeer closes the conn on listener shutdown; the table is being
// emptied wholesale, so no per-key removal.
func (c *reactorConn) closePeer() {
	c.once.Do(func() {
		c.closedFlag.Store(true)
		close(c.closed)
		c.drain()
	})
}

// drain releases undelivered pooled buffers. Close drains after
// removing the table entry; a producer that raced the removal re-drains
// after its push (deliver's closedFlag check), so no buffer strands in
// a dead ring.
func (c *reactorConn) drain() {
	c.popMu.Lock()
	for {
		b := c.ring.pop()
		if b == nil {
			break
		}
		b.Release()
	}
	c.popMu.Unlock()
}
