package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
)

// MaxDatagram is the largest message the socket transports accept. It
// stays under the UDP payload ceiling with headroom for chunnel headers.
const MaxDatagram = 60000

// recvQueueLen is the per-peer buffered message capacity of a demuxing
// listener before packets are dropped (datagram semantics: drops are
// legal and the reliability chunnel recovers them).
const recvQueueLen = 1024

// packetConn abstracts net.UDPConn and net.UnixConn for the shared
// demultiplexing listener.
type packetConn interface {
	ReadFrom(b []byte) (int, net.Addr, error)
	WriteTo(b []byte, addr net.Addr) (int, error)
	Close() error
	LocalAddr() net.Addr
	SetReadDeadline(t time.Time) error
}

// ListenUDP binds a demultiplexing datagram listener on bind (e.g.
// "127.0.0.1:0"). hostID labels the listener's host for locality checks.
func ListenUDP(hostID, bind string) (core.Listener, error) {
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", bind, err)
	}
	addr := core.Addr{Net: "udp", Host: hostID, Addr: pc.LocalAddr().String()}
	return newDemuxListener(pc, addr), nil
}

// DialUDP opens a connected datagram connection to raddr.
func DialUDP(hostID, raddr string) (core.Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", raddr, err)
	}
	uc, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp %q: %w", raddr, err)
	}
	return &socketConn{
		conn:   uc,
		local:  core.Addr{Net: "udp", Host: hostID, Addr: uc.LocalAddr().String()},
		remote: core.Addr{Net: "udp", Host: "", Addr: raddr},
	}, nil
}

// socketConn adapts a connected net datagram socket to core.Conn.
type socketConn struct {
	conn          net.Conn
	local, remote core.Addr
	closeOnce     sync.Once
	closeErr      error
}

func (s *socketConn) Send(ctx context.Context, p []byte) error {
	if len(p) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", core.ErrMessageTooLarge, len(p))
	}
	if d, ok := ctx.Deadline(); ok {
		s.conn.SetWriteDeadline(d)
		defer s.conn.SetWriteDeadline(time.Time{})
	}
	_, err := s.conn.Write(p)
	if err != nil && isClosedErr(err) {
		return core.ErrClosed
	}
	return err
}

func (s *socketConn) Recv(ctx context.Context) ([]byte, error) {
	buf := make([]byte, MaxDatagram+1)
	stop := ctxDeadline(ctx, s.conn.SetReadDeadline)
	defer stop()
	for {
		n, err := s.conn.Read(buf)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if isClosedErr(err) {
				return nil, core.ErrClosed
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				// The socket deadline mirrors the context deadline and can
				// fire a hair earlier; report the context's error.
				if _, hasDeadline := ctx.Deadline(); hasDeadline {
					return nil, context.DeadlineExceeded
				}
				continue // stale deadline from an earlier context
			}
			return nil, err
		}
		out := make([]byte, n)
		copy(out, buf[:n])
		return out, nil
	}
}

func (s *socketConn) LocalAddr() core.Addr  { return s.local }
func (s *socketConn) RemoteAddr() core.Addr { return s.remote }

func (s *socketConn) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.conn.Close() })
	return s.closeErr
}

// ctxDeadline propagates context cancellation into a deadline-based socket
// API: it sets an immediate deadline when ctx is done. The returned stop
// function must be deferred.
func ctxDeadline(ctx context.Context, set func(time.Time) error) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	if d, ok := ctx.Deadline(); ok {
		set(d)
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			set(time.Unix(1, 0)) // immediate timeout unblocks the read
		case <-done:
		}
	}()
	return func() {
		close(done)
		set(time.Time{})
	}
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrClosed)
}

// demuxListener demultiplexes one datagram socket into per-peer core.Conns
// keyed by source address: the datagram analog of accept().
type demuxListener struct {
	pc   packetConn
	addr core.Addr

	mu     sync.Mutex
	peers  map[string]*demuxConn
	accept chan *demuxConn
	closed chan struct{}
	once   sync.Once
}

func newDemuxListener(pc packetConn, addr core.Addr) *demuxListener {
	l := &demuxListener{
		pc:     pc,
		addr:   addr,
		peers:  make(map[string]*demuxConn),
		accept: make(chan *demuxConn, 128),
		closed: make(chan struct{}),
	}
	go l.readLoop()
	return l
}

func (l *demuxListener) readLoop() {
	buf := make([]byte, MaxDatagram+1)
	for {
		n, from, err := l.pc.ReadFrom(buf)
		if err != nil {
			select {
			case <-l.closed:
				return
			default:
			}
			if isClosedErr(err) {
				l.Close()
				return
			}
			continue // transient error (e.g. ICMP-induced)
		}
		key := from.String()
		msg := make([]byte, n)
		copy(msg, buf[:n])

		l.mu.Lock()
		peer, ok := l.peers[key]
		if !ok {
			peer = &demuxConn{
				l:      l,
				peer:   from,
				local:  l.addr,
				remote: core.Addr{Net: l.addr.Net, Addr: key},
				recv:   make(chan []byte, recvQueueLen),
				closed: make(chan struct{}),
			}
			l.peers[key] = peer
			select {
			case l.accept <- peer:
			default:
				// Accept backlog full: drop the peer (client retries).
				delete(l.peers, key)
				l.mu.Unlock()
				continue
			}
		}
		l.mu.Unlock()

		select {
		case peer.recv <- msg:
		default:
			// Per-peer queue full: drop (datagram semantics).
		}
	}
}

func (l *demuxListener) Accept(ctx context.Context) (core.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.closed:
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (l *demuxListener) Addr() core.Addr { return l.addr }

func (l *demuxListener) Close() error {
	l.once.Do(func() {
		close(l.closed)
		l.pc.Close()
		l.mu.Lock()
		for _, p := range l.peers {
			p.closePeer()
		}
		l.mu.Unlock()
	})
	return nil
}

// demuxConn is the per-peer connection handed out by a demuxListener.
type demuxConn struct {
	l             *demuxListener
	peer          net.Addr
	local, remote core.Addr
	recv          chan []byte
	closed        chan struct{}
	once          sync.Once
}

func (c *demuxConn) Send(ctx context.Context, p []byte) error {
	if len(p) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", core.ErrMessageTooLarge, len(p))
	}
	select {
	case <-c.closed:
		return core.ErrClosed
	default:
	}
	_, err := c.l.pc.WriteTo(p, c.peer)
	if err != nil && isClosedErr(err) {
		return core.ErrClosed
	}
	return err
}

func (c *demuxConn) Recv(ctx context.Context) ([]byte, error) {
	select {
	case m := <-c.recv:
		return m, nil
	default:
	}
	select {
	case m := <-c.recv:
		return m, nil
	case <-c.closed:
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *demuxConn) LocalAddr() core.Addr  { return c.local }
func (c *demuxConn) RemoteAddr() core.Addr { return c.remote }

// Close detaches the peer connection from the listener. The listener's
// socket stays open for other peers.
func (c *demuxConn) Close() error {
	c.once.Do(func() {
		close(c.closed)
		c.l.mu.Lock()
		delete(c.l.peers, c.peer.String())
		c.l.mu.Unlock()
	})
	return nil
}

// closePeer closes the conn on listener shutdown without re-locking.
func (c *demuxConn) closePeer() {
	c.once.Do(func() { close(c.closed) })
}
