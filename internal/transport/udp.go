package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// MaxDatagram is the largest message the socket transports accept. It
// stays under the UDP payload ceiling with headroom for chunnel headers.
const MaxDatagram = 60000

// ListenUDP binds a demultiplexing datagram listener on bind (e.g.
// "127.0.0.1:0"), served by the sharded reactor runtime (reactor.go).
// hostID labels the listener's host for locality checks.
func ListenUDP(hostID, bind string) (core.Listener, error) {
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", bind, err)
	}
	pc, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", bind, err)
	}
	addr := core.Addr{Net: "udp", Host: hostID, Addr: pc.LocalAddr().String()}
	return newDemuxListener(udpPC{pc}, addr), nil
}

// DialUDP opens a connected datagram connection to raddr.
func DialUDP(hostID, raddr string) (core.Conn, error) {
	ua, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", raddr, err)
	}
	uc, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, fmt.Errorf("transport: dial udp %q: %w", raddr, err)
	}
	return &socketConn{
		conn:   uc,
		local:  core.Addr{Net: "udp", Host: hostID, Addr: uc.LocalAddr().String()},
		remote: core.Addr{Net: "udp", Host: "", Addr: raddr},
		tel:    countersFor("udp"),
	}, nil
}

// socketConn adapts a connected net datagram socket to core.Conn.
type socketConn struct {
	conn          net.Conn
	local, remote core.Addr
	// tel is the transport kind's shared datagram counters, resolved at
	// construction (constructors must set it).
	tel       *netCounters
	closeOnce sync.Once
	closeErr  error

	// wmu serializes writes *and* write-deadline management. Without it
	// a deadline-bearing sender's deadline reset races concurrent
	// senders: A sets a deadline, B's write spuriously times out, then
	// A's reset (the old code's deferred SetWriteDeadline(time.Time{}))
	// clears a deadline a third sender just armed.
	//
	// The batch path takes wmu exactly once per burst: SendBufs arms the
	// deadline, transmits the whole burst (one sendmmsg on linux, a
	// write loop elsewhere), and resets — per-message locking would
	// interleave concurrent bursts and pay the acquisition n times.
	wmu sync.Mutex
	// sendmm/recvmm hold the platform batch-syscall state (cached raw
	// conn, scratch header arrays). sendmm is guarded by wmu; recvmm by
	// rmu, which also serializes concurrent RecvBufs callers so a burst
	// is drained by one reader at a time.
	sendmm mmsgState
	rmu    sync.Mutex
	recvmm mmsgState
}

func (s *socketConn) Send(ctx context.Context, p []byte) error {
	if len(p) > MaxDatagram {
		return fmt.Errorf("%w: %d bytes", core.ErrMessageTooLarge, len(p))
	}
	s.wmu.Lock()
	d, hasDeadline := ctx.Deadline()
	if hasDeadline {
		s.conn.SetWriteDeadline(d)
	}
	_, err := s.conn.Write(p)
	if hasDeadline {
		// Reset only the deadline we set; no-deadline senders never
		// touch the socket deadline.
		s.conn.SetWriteDeadline(time.Time{})
	}
	s.wmu.Unlock()
	if err != nil {
		if isClosedErr(err) {
			return core.ErrClosed
		}
		if ne, ok := err.(net.Error); ok && ne.Timeout() && hasDeadline {
			return context.DeadlineExceeded
		}
		return err
	}
	s.tel.sent.Inc()
	return nil
}

// SendBuf writes the buffer and releases it — datagram sockets do not
// retain payloads, so ownership ends at the syscall.
func (s *socketConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	err := s.Send(ctx, b.Bytes())
	b.Release()
	return err
}

// SendBufs transmits the burst behind a single wmu acquisition: one
// deadline arm, the whole burst (one sendmmsg syscall on linux, a write
// loop elsewhere), one reset. Ownership of every element ends here —
// datagram sockets do not retain payloads — so all buffers are released
// before returning. The first failure aborts the burst; the returned
// *core.BatchError reports how many messages went out.
func (s *socketConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	if len(bs) == 0 {
		return nil
	}
	if len(bs) == 1 {
		// A burst of one gains nothing from the mmsghdr machinery and
		// pays its setup cost; degrade to the plain single-datagram
		// write so SendBufs is safe to call unconditionally (the
		// coalescer hands it every flush, including size-1 flushes).
		if err := s.SendBuf(ctx, bs[0]); err != nil {
			return &core.BatchError{Sent: 0, Err: err}
		}
		return nil
	}
	s.wmu.Lock()
	d, hasDeadline := ctx.Deadline()
	if hasDeadline {
		s.conn.SetWriteDeadline(d)
	}
	sent, err := s.writeBurst(bs)
	if hasDeadline {
		s.conn.SetWriteDeadline(time.Time{})
	}
	s.wmu.Unlock()
	if sent > 0 {
		s.tel.sent.Add(uint64(sent))
	}
	core.ReleaseAll(bs)
	if err != nil {
		return &core.BatchError{Sent: sent, Err: s.mapSendErr(err, hasDeadline)}
	}
	return nil
}

// mapSendErr normalizes a burst write failure the same way Send does.
func (s *socketConn) mapSendErr(err error, hasDeadline bool) error {
	if isClosedErr(err) {
		return core.ErrClosed
	}
	if ne, ok := err.(net.Error); ok && ne.Timeout() && hasDeadline {
		return context.DeadlineExceeded
	}
	return err
}

// writeBurstLoop is the portable burst path: one Write per message, the
// deadline and lock already handled by the caller.
func (s *socketConn) writeBurstLoop(bs []*wire.Buf) (int, error) {
	for i, b := range bs {
		if b.Len() > MaxDatagram {
			return i, oversizeErr(b.Len())
		}
		if _, err := s.conn.Write(b.Bytes()); err != nil {
			return i, err
		}
	}
	return len(bs), nil
}

// RecvBufs drains a burst of datagrams into pooled buffers owned by the
// caller, blocking only for the first. On linux the drain is one
// recvmmsg syscall; elsewhere it degrades to a single-message receive.
func (s *socketConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	if !batchRecvSupported || len(into) == 1 {
		// recvmmsg for a single message costs more than the plain read
		// path; a one-slot burst degrades to RecvBuf.
		b, err := s.RecvBuf(ctx)
		if err != nil {
			return 0, err
		}
		into[0] = b
		return 1, nil
	}
	if ctx.Done() != nil {
		stop := ctxDeadline(ctx, s.conn.SetReadDeadline)
		defer stop()
	}
	for {
		s.rmu.Lock()
		n, err := s.readBurst(into)
		s.rmu.Unlock()
		if err != nil {
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			if isClosedErr(err) {
				return 0, core.ErrClosed
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if d, hasDeadline := ctx.Deadline(); hasDeadline {
					if time.Until(d) > 0 {
						// Stale immediate deadline (see RecvBuf): re-arm
						// to our own deadline and retry.
						s.conn.SetReadDeadline(d)
						continue
					}
					return 0, context.DeadlineExceeded
				}
				// Stale deadline from an earlier context: clear and retry
				// (see RecvBuf).
				s.conn.SetReadDeadline(time.Time{})
				continue
			}
			return 0, err
		}
		s.tel.recvd.Add(uint64(n))
		return n, nil
	}
}

// Headroom: transports terminate the stack, no headers below.
func (s *socketConn) Headroom() int { return 0 }

func (s *socketConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := s.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf reads the next datagram into a pooled buffer owned by the
// caller. The buffer keeps the headroom a reply path needs to prepend
// its headers without reallocating.
func (s *socketConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	b := wire.NewBuf(wire.DefaultHeadroom, MaxDatagram+1)
	if ctx.Done() != nil {
		// Only cancellable contexts arm the deadline machinery; building
		// the method value alone would cost an allocation per receive.
		stop := ctxDeadline(ctx, s.conn.SetReadDeadline)
		defer stop()
	}
	for {
		n, err := s.conn.Read(b.Bytes())
		if err != nil {
			if ctx.Err() != nil {
				b.Release()
				return nil, ctx.Err()
			}
			if isClosedErr(err) {
				b.Release()
				return nil, core.ErrClosed
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				if d, hasDeadline := ctx.Deadline(); hasDeadline {
					if time.Until(d) > 0 {
						// Our deadline is still in the future, so this
						// timeout came from a *stale* immediate deadline —
						// an earlier context's cancellation racing its
						// reset (see ctxDeadline). Re-arm to our own
						// deadline and retry.
						s.conn.SetReadDeadline(d)
						continue
					}
					// The socket deadline mirrors the context deadline and
					// can fire a hair earlier; report the context's error.
					b.Release()
					return nil, context.DeadlineExceeded
				}
				// A stale deadline fires here with no deadline of our
				// own: clear it before retrying, or this loop spins hot
				// on an always-expired deadline.
				s.conn.SetReadDeadline(time.Time{})
				continue
			}
			b.Release()
			return nil, err
		}
		b.Truncate(n)
		s.tel.recvd.Inc()
		return b, nil
	}
}

func (s *socketConn) LocalAddr() core.Addr  { return s.local }
func (s *socketConn) RemoteAddr() core.Addr { return s.remote }

func (s *socketConn) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.conn.Close() })
	return s.closeErr
}

// ctxDeadline propagates context cancellation into a deadline-based socket
// API: it sets an immediate deadline when ctx is done. The returned stop
// function must be deferred. Contexts that can never be cancelled cost
// nothing. stop resets the socket deadline only when one was actually
// armed, so deadline-free readers never clobber another caller's
// deadline. (A cancellation racing stop can leave a stale immediate
// deadline behind; RecvBuf's timeout branch clears those.)
func ctxDeadline(ctx context.Context, set func(time.Time) error) (stop func()) {
	if ctx.Done() == nil {
		return func() {}
	}
	var (
		mu    sync.Mutex
		armed bool
	)
	if d, ok := ctx.Deadline(); ok {
		set(d)
		armed = true
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			armed = true
			mu.Unlock()
			set(time.Unix(1, 0)) // immediate timeout unblocks the read
		case <-done:
		}
	}()
	return func() {
		close(done)
		mu.Lock()
		wasArmed := armed
		mu.Unlock()
		if wasArmed {
			set(time.Time{})
		}
	}
}

func isClosedErr(err error) bool {
	return errors.Is(err, net.ErrClosed) || errors.Is(err, os.ErrClosed)
}

// oversizeErr reports a datagram exceeding MaxDatagram.
func oversizeErr(n int) error {
	return fmt.Errorf("%w: %d bytes", core.ErrMessageTooLarge, n)
}
