// Package compress implements the compression chunnel (DEFLATE per
// message). It is an extra composable stage used by the optimizer
// ablations: it is idempotent metadata-wise (compressing twice wastes
// cycles for no benefit, so the optimizer eliminates adjacent
// duplicates) and commutes with nothing by default (compressing after
// encryption is useless, and the metadata encodes that by omission).
package compress

import (
	"bytes"
	"compress/flate"
	"context"
	"fmt"
	"io"
	"sync"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "compress"

// Node builds the DAG node: compress(level). Level follows
// compress/flate (1 fastest … 9 best, -1 default).
func Node(level int) spec.Node {
	return spec.New(Type, wire.Int(int64(level)))
}

// Register installs the userspace fallback implementation and optimizer
// metadata.
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:     Type + "/flate",
			Type:     Type,
			Endpoint: spec.EndpointBoth,
			Location: core.LocUserspace,
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			level := int(base.IntOr(args, 0, int64(flate.DefaultCompression)))
			return New(conn, level)
		},
	})
	reg.SetTypeMeta(Type, core.TypeMeta{Idempotent: true})
}

// New wraps conn with per-message DEFLATE compression.
func New(conn core.Conn, level int) (core.Conn, error) {
	if level < flate.HuffmanOnly || level > flate.BestCompression {
		return nil, fmt.Errorf("compress: invalid level %d", level)
	}
	return &compConn{Conn: conn, level: level}, nil
}

type compConn struct {
	core.Conn
	level int
	mu    sync.Mutex
	buf   bytes.Buffer
	w     *flate.Writer
}

func (c *compConn) Send(ctx context.Context, p []byte) error {
	c.mu.Lock()
	c.buf.Reset()
	if c.w == nil {
		w, err := flate.NewWriter(&c.buf, c.level)
		if err != nil {
			c.mu.Unlock()
			return fmt.Errorf("compress: %w", err)
		}
		c.w = w
	} else {
		c.w.Reset(&c.buf)
	}
	if _, err := c.w.Write(p); err != nil {
		c.mu.Unlock()
		return fmt.Errorf("compress: %w", err)
	}
	if err := c.w.Close(); err != nil {
		c.mu.Unlock()
		return fmt.Errorf("compress: %w", err)
	}
	// The compressed bytes move to a pooled buffer with headroom for the
	// layers below, then travel zero-copy from here down.
	out := wire.NewBufFrom(core.HeadroomOf(c.Conn), c.buf.Bytes())
	c.mu.Unlock()
	return core.SendBuf(ctx, c.Conn, out)
}

// SendBuf consumes b. Compression rewrites the whole message, so this
// is inherently a copy boundary, not a prepend.
func (c *compConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	err := c.Send(ctx, b.Bytes())
	b.Release()
	return err
}

// Headroom: compression re-buffers the message, so upstream headroom
// cannot reach the layers below; reserving it would be waste.
func (c *compConn) Headroom() int { return 0 }

func (c *compConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := core.RecvBuf(ctx, c.Conn)
	if err != nil {
		return nil, err
	}
	r := flate.NewReader(bytes.NewReader(b.Bytes()))
	out, err := io.ReadAll(r)
	r.Close()
	b.Release()
	if err != nil {
		return nil, fmt.Errorf("compress: inflate: %w", err)
	}
	return out, nil
}

// RecvBuf is Recv wrapped in an unpooled buffer (inflation allocates
// its output regardless).
func (c *compConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	p, err := c.Recv(ctx)
	if err != nil {
		return nil, err
	}
	return wire.WrapBuf(p), nil
}
