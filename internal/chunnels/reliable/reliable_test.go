package reliable

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/transport"
)

// White-box tests for the ARQ internals: acknowledgement semantics,
// window bookkeeping, and wire-format details. End-to-end behaviour
// (loss/reorder/duplication recovery) is covered in
// internal/chunnels/chunnels_test.go.

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestDataFrameEncoding(t *testing.T) {
	buf := encodeData(0x0102030405060708, []byte("payload"))
	if buf[0] != kindData {
		t.Errorf("kind byte: %#x", buf[0])
	}
	if got := binary.LittleEndian.Uint64(buf[1:9]); got != 0x0102030405060708 {
		t.Errorf("seq: %#x", got)
	}
	if string(buf[9:]) != "payload" {
		t.Errorf("payload: %q", buf[9:])
	}
}

func TestCumulativeAckReleasesWindow(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 256)
	a, err := New(ra, Config{Window: 3, RTO: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer rb.Close()

	// Fill the window.
	for i := 0; i < 3; i++ {
		if err := a.Send(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Window full: next send blocks.
	sctx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	if err := a.Send(sctx, []byte{9}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected window block, got %v", err)
	}
	cancel()

	// Hand-craft a cumulative ack for seq 1-2.
	ack := make([]byte, 17)
	ack[0] = kindAck
	binary.LittleEndian.PutUint64(ack[1:9], 2) // cum ack
	if err := rb.Send(ctx, ack); err != nil {
		t.Fatal(err)
	}
	// Two slots free: two sends succeed, the third blocks again.
	for i := 0; i < 2; i++ {
		sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := a.Send(sctx, []byte{byte(10 + i)})
		cancel()
		if err != nil {
			t.Fatalf("send after ack %d: %v", i, err)
		}
	}
	sctx2, cancel2 := context.WithTimeout(ctx, 50*time.Millisecond)
	if err := a.Send(sctx2, []byte{99}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("window should be full again, got %v", err)
	}
	cancel2()
}

func TestSelectiveAckBitmap(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 256)
	a, err := New(ra, Config{Window: 8, RTO: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer rb.Close()

	for i := 0; i < 4; i++ {
		a.Send(ctx, []byte{byte(i)}) // seqs 1..4
	}
	// SACK seqs 2 and 4 (bitmap bits 1 and 3 above cum=0).
	ack := make([]byte, 17)
	ack[0] = kindAck
	binary.LittleEndian.PutUint64(ack[1:9], 0)
	binary.LittleEndian.PutUint64(ack[9:17], 0b1010)
	rb.Send(ctx, ack)
	time.Sleep(50 * time.Millisecond)

	a.(*arqConn).sendMu.Lock()
	remaining := len(a.(*arqConn).unacked)
	_, has1 := a.(*arqConn).unacked[1]
	_, has3 := a.(*arqConn).unacked[3]
	a.(*arqConn).sendMu.Unlock()
	if remaining != 2 || !has1 || !has3 {
		t.Errorf("after SACK: %d unacked (want 2: seqs 1 and 3)", remaining)
	}
}

func TestReceiverAcksDuplicates(t *testing.T) {
	// A duplicate DATA must be re-acked (the ack may have been lost) but
	// not redelivered.
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 256)
	b, err := New(rb, Config{Window: 8, RTO: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	defer ra.Close()

	data := encodeData(1, []byte("once"))
	ra.Send(ctx, data)
	if m, err := b.Recv(ctx); err != nil || string(m) != "once" {
		t.Fatalf("first delivery: %q %v", m, err)
	}
	// First ack.
	ackMsg, err := ra.Recv(ctx)
	if err != nil || ackMsg[0] != kindAck {
		t.Fatalf("first ack: %v %v", ackMsg, err)
	}
	// Duplicate.
	ra.Send(ctx, data)
	ackMsg, err = ra.Recv(ctx)
	if err != nil || ackMsg[0] != kindAck {
		t.Fatalf("dup ack: %v %v", ackMsg, err)
	}
	if cum := binary.LittleEndian.Uint64(ackMsg[1:9]); cum != 1 {
		t.Errorf("dup ack cum: %d", cum)
	}
	// No redelivery.
	rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	if m, err := b.Recv(rctx); err == nil {
		t.Errorf("duplicate was redelivered: %q", m)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.fill()
	if c.Window != DefaultWindow || c.RTO != DefaultRTO || c.MaxRetries != MaxRetries {
		t.Errorf("defaults: %+v", c)
	}
}

func TestMalformedFramesIgnored(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 64)
	b, _ := New(rb, Config{})
	defer b.Close()
	defer ra.Close()
	// Garbage, runt ack, runt data, empty: all must be ignored safely.
	ra.Send(ctx, []byte{0x77, 1, 2})
	ra.Send(ctx, []byte{kindAck, 1})
	ra.Send(ctx, []byte{kindData})
	ra.Send(ctx, []byte{})
	// A valid frame still gets through.
	ra.Send(ctx, encodeData(1, []byte("ok")))
	if m, err := b.Recv(ctx); err != nil || string(m) != "ok" {
		t.Fatalf("after garbage: %q %v", m, err)
	}
}
