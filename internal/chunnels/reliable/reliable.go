// Package reliable implements the reliability chunnel (Listing 5's
// ReliableChunnel): exactly-once, in-order message delivery over a lossy
// datagram connection, via sequence numbers, cumulative plus selective
// acknowledgements, retransmission with exponential backoff, and a
// fixed-size sender window for flow control. It is the "tcp" stage of
// the §6 pipeline example, and the mTCP-style host fallback the paper
// expects applications to link.
package reliable

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "reliable"

// Defaults.
const (
	// DefaultWindow is the sender window (unacknowledged messages).
	DefaultWindow = 128
	// DefaultRTO is the initial retransmission timeout.
	DefaultRTO = 50 * time.Millisecond
	// MaxRetries bounds per-message retransmissions before the
	// connection is declared broken.
	MaxRetries = 12
)

// ErrBroken is returned once a message exhausts its retransmissions.
var ErrBroken = errors.New("reliable: peer unreachable (retransmissions exhausted)")

// RetransmitsCounter is the telemetry counter name for messages resent
// after an RTO expiry, registered in the process registry. A high rate
// relative to the transport's datagram counters indicates loss below
// the reliability layer.
const RetransmitsCounter = "chunnel/reliable/retransmits"

// Message kinds.
const (
	kindData byte = 0x01
	kindAck  byte = 0x02
)

// Node builds the DAG node: reliable(window, rtoMillis).
func Node() spec.Node {
	return spec.New(Type, wire.Int(DefaultWindow), wire.Int(int64(DefaultRTO/time.Millisecond)))
}

// NodeWith builds the DAG node with explicit parameters.
func NodeWith(window int, rto time.Duration) spec.Node {
	return spec.New(Type, wire.Int(int64(window)), wire.Int(int64(rto/time.Millisecond)))
}

// Register installs the userspace fallback implementation and the
// optimizer fusion target metadata (encrypt∘reliable → tls).
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:         Type + "/arq",
			Type:         Type,
			Endpoint:     spec.EndpointBoth,
			Location:     core.LocUserspace,
			SendOverhead: 9, // kind byte + sequence number
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			window := int(base.IntOr(args, 0, DefaultWindow))
			rto := time.Duration(base.IntOr(args, 1, int64(DefaultRTO/time.Millisecond))) * time.Millisecond
			return New(conn, Config{Window: window, RTO: rto})
		},
	})
}

// Config parameterizes an ARQ connection.
type Config struct {
	// Window is the maximum number of unacknowledged outbound messages.
	Window int
	// RTO is the initial retransmission timeout.
	RTO time.Duration
	// MaxRetries overrides the per-message retransmission bound.
	MaxRetries int
}

func (c *Config) fill() {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.RTO <= 0 {
		c.RTO = DefaultRTO
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = MaxRetries
	}
}

// New wraps conn with ARQ reliability. Both endpoints must wrap
// (spec.EndpointBoth).
func New(conn core.Conn, cfg Config) (core.Conn, error) {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	a := &arqConn{
		base:        conn,
		cfg:         cfg,
		retransmits: telemetry.Default().Counter(RetransmitsCounter),
		unacked:     map[uint64]*pending{},
		slots:       make(chan struct{}, cfg.Window),
		out:         make(chan *wire.Buf, cfg.Window),
		oob:         map[uint64]*wire.Buf{},
		expect:      1,
		ctx:         ctx,
		cancel:      cancel,
	}
	go a.pump()
	go a.retransmitLoop()
	return a, nil
}

type pending struct {
	payload  []byte
	lastSent time.Time
	retries  int
}

type arqConn struct {
	base core.Conn
	cfg  Config
	// retransmits is the shared process-wide resend counter
	// (RetransmitsCounter), resolved once at wrap time.
	retransmits *telemetry.Counter

	sendMu  sync.Mutex
	nextSeq uint64
	cumAck  uint64 // highest seq with all predecessors acked (peer's view)
	unacked map[uint64]*pending
	slots   chan struct{}

	recvMu sync.Mutex
	expect uint64
	oob    map[uint64]*wire.Buf
	out    chan *wire.Buf

	ctx    context.Context
	cancel context.CancelFunc
	once   sync.Once

	errMu sync.Mutex
	err   error
}

func (a *arqConn) fail(err error) {
	a.errMu.Lock()
	if a.err == nil {
		a.err = err
	}
	a.errMu.Unlock()
	a.cancel()
}

func (a *arqConn) failure() error {
	a.errMu.Lock()
	defer a.errMu.Unlock()
	return a.err
}

// Send transmits one message reliably. It blocks when the window is
// full.
func (a *arqConn) Send(ctx context.Context, p []byte) error {
	return a.SendBuf(ctx, wire.NewBufFrom(a.Headroom(), p))
}

// SendBuf transmits one message reliably, consuming b. The header is
// prepended in place; the framed bytes are then detached from the pool
// (the retransmission queue must hold them for an unbounded time, and a
// pooled buffer could be recycled under a concurrent retransmit).
func (a *arqConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	select {
	case a.slots <- struct{}{}:
	case <-a.ctx.Done():
		b.Release()
		return a.closeErr()
	case <-ctx.Done():
		b.Release()
		return ctx.Err()
	}

	a.sendMu.Lock()
	a.nextSeq++
	seq := a.nextSeq
	hdr := b.Prepend(1 + 8)
	hdr[0] = kindData
	binary.LittleEndian.PutUint64(hdr[1:9], seq)
	buf := b.Detach() //bertha:transfers retransmit queue owns the raw bytes
	a.unacked[seq] = &pending{payload: buf, lastSent: time.Now()}
	a.sendMu.Unlock()

	if err := a.base.Send(ctx, buf); err != nil {
		// First transmission failed; the retransmit loop will retry
		// unless the underlying conn is closed.
		if errors.Is(err, core.ErrClosed) {
			a.fail(err)
			return err
		}
	}
	return nil
}

// Headroom implements core.HeadroomConn.
func (a *arqConn) Headroom() int { return 1 + 8 + core.HeadroomOf(a.base) }

// Recv returns the next message in order, exactly once.
func (a *arqConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := a.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf is Recv's zero-copy form.
func (a *arqConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	select {
	case m := <-a.out:
		return m, nil
	default:
	}
	select {
	case m := <-a.out:
		return m, nil
	case <-a.ctx.Done():
		return nil, a.closeErr()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *arqConn) closeErr() error {
	if err := a.failure(); err != nil {
		return err
	}
	return core.ErrClosed
}

func (a *arqConn) LocalAddr() core.Addr  { return a.base.LocalAddr() }
func (a *arqConn) RemoteAddr() core.Addr { return a.base.RemoteAddr() }

func (a *arqConn) Close() error {
	a.once.Do(func() {
		a.cancel()
	})
	return a.base.Close()
}

// pump is the single reader of the underlying connection: it dispatches
// acknowledgements to the sender state and data to the reorder buffer.
func (a *arqConn) pump() {
	for {
		b, err := core.RecvBuf(a.ctx, a.base)
		if err != nil {
			if a.ctx.Err() == nil {
				a.fail(err)
			}
			return
		}
		msg := b.Bytes()
		if len(msg) < 1 {
			b.Release()
			continue
		}
		switch msg[0] {
		case kindAck:
			if len(msg) == 1+8+8 {
				cum := binary.LittleEndian.Uint64(msg[1:9])
				bitmap := binary.LittleEndian.Uint64(msg[9:17])
				a.handleAck(cum, bitmap)
			}
			b.Release()
		case kindData:
			if len(msg) >= 1+8 {
				seq := binary.LittleEndian.Uint64(msg[1:9])
				b.TrimFront(1 + 8)
				a.handleData(seq, b) // takes ownership of b
			} else {
				b.Release()
			}
		default:
			b.Release()
		}
	}
}

func (a *arqConn) handleAck(cum uint64, bitmap uint64) {
	a.sendMu.Lock()
	released := 0
	for seq := range a.unacked {
		acked := seq <= cum
		if !acked && seq > cum && seq <= cum+64 {
			acked = bitmap&(1<<(seq-cum-1)) != 0
		}
		if acked {
			delete(a.unacked, seq)
			released++
		}
	}
	a.sendMu.Unlock()
	for i := 0; i < released; i++ {
		select {
		case <-a.slots:
		default:
		}
	}
}

// handleData takes ownership of b (the payload with the ARQ header
// already trimmed).
func (a *arqConn) handleData(seq uint64, b *wire.Buf) {
	a.recvMu.Lock()
	switch {
	case seq < a.expect:
		// Duplicate: re-ack below, do not deliver.
		b.Release()
	case seq == a.expect:
		a.deliverLocked(b)
		a.expect++
		for {
			next, ok := a.oob[a.expect]
			if !ok {
				break
			}
			delete(a.oob, a.expect)
			a.deliverLocked(next)
			a.expect++
		}
	default:
		if _, dup := a.oob[seq]; !dup && seq < a.expect+uint64(4*a.cfg.Window) { // bound the buffer
			a.oob[seq] = b
		} else {
			b.Release()
		}
	}
	// Build the ack under the lock for a consistent snapshot.
	cum := a.expect - 1
	var bitmap uint64
	for s := range a.oob {
		if s > cum && s <= cum+64 {
			bitmap |= 1 << (s - cum - 1)
		}
	}
	a.recvMu.Unlock()

	ack := wire.NewBuf(core.HeadroomOf(a.base), 1+8+8)
	ap := ack.Bytes()
	ap[0] = kindAck
	binary.LittleEndian.PutUint64(ap[1:9], cum)
	binary.LittleEndian.PutUint64(ap[9:17], bitmap)
	_ = core.SendBuf(a.ctx, a.base, ack) // ack loss recovered by retransmission
}

func (a *arqConn) deliverLocked(b *wire.Buf) {
	select {
	case a.out <- b:
	case <-a.ctx.Done():
		b.Release()
	}
}

// retransmitLoop resends unacknowledged messages after their timeout,
// with exponential backoff per message.
func (a *arqConn) retransmitLoop() {
	tick := time.NewTicker(a.cfg.RTO / 4)
	defer tick.Stop()
	for {
		select {
		case <-a.ctx.Done():
			return
		case <-tick.C:
		}
		now := time.Now()
		var resend [][]byte
		a.sendMu.Lock()
		for _, p := range a.unacked {
			timeout := a.cfg.RTO << uint(p.retries)
			if maxRTO := 2 * time.Second; timeout > maxRTO {
				timeout = maxRTO
			}
			if now.Sub(p.lastSent) < timeout {
				continue
			}
			p.retries++
			if p.retries > a.cfg.MaxRetries {
				a.sendMu.Unlock()
				a.fail(fmt.Errorf("%w: %d retries", ErrBroken, p.retries-1))
				return
			}
			p.lastSent = now
			resend = append(resend, p.payload)
		}
		a.sendMu.Unlock()
		if len(resend) > 0 {
			a.retransmits.Add(uint64(len(resend)))
		}
		for _, buf := range resend {
			if err := a.base.Send(a.ctx, buf); err != nil {
				if errors.Is(err, core.ErrClosed) {
					a.fail(err)
					return
				}
			}
		}
	}
}

func encodeData(seq uint64, payload []byte) []byte {
	buf := make([]byte, 1+8+len(payload))
	buf[0] = kindData
	binary.LittleEndian.PutUint64(buf[1:9], seq)
	copy(buf[9:], payload)
	return buf
}
