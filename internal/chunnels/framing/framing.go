// Package framing implements an HTTP/2-flavoured stream-framing chunnel:
// each message becomes a typed frame with a stream identifier, and large
// messages are split into CONTINUATION frames reassembled at the
// receiver. It is the "http2" stage of the paper's §6 pipeline example.
//
// # Reliability pairing
//
// Framing itself is not reliable: fragments travel as independent
// datagrams, so on a lossy or reordering transport a CONTINUATION can
// arrive out of order and the whole stream must be discarded (partial
// messages are never delivered). Discards are counted rather than
// silent: the "chunnel/http2/dropped_streams" counter in the process
// telemetry registry (telemetry.Default(), served at /debug/bertha)
// increments per discarded stream. A non-zero value on a supposedly
// reliable stack means the DAG is missing the reliability chunnel below
// framing: on transports that can lose or reorder datagrams, place
// reliability *below* framing (closer to the wire) so fragments are
// retransmitted and ordered before reassembly; then the counter stays
// at zero.
package framing

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "http2"

// Frame types (a subset of HTTP/2's, enough for message framing).
const (
	frameData         = 0x0
	frameContinuation = 0x9
)

// flagEndStream marks the final frame of a message.
const flagEndStream = 0x1

// headerLen is type(1) + flags(1) + stream(4) + fragment index(2).
const headerLen = 8

// DefaultMaxFrame is the fragment payload ceiling.
const DefaultMaxFrame = 16 << 10

// Node builds the DAG node: http2(maxFrame).
func Node(maxFrame int) spec.Node {
	return spec.New(Type, wire.Int(int64(maxFrame)))
}

// Register installs the userspace fallback implementation.
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:         Type + "/sw",
			Type:         Type,
			Endpoint:     spec.EndpointBoth,
			Location:     core.LocUserspace,
			SendOverhead: headerLen,
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			maxFrame := int(base.IntOr(args, 0, DefaultMaxFrame))
			return New(conn, maxFrame)
		},
	})
}

// DroppedStreamsCounter is the telemetry counter name for reassembly
// streams discarded on fragment loss/reorder, registered in the process
// registry (telemetry.Default()).
const DroppedStreamsCounter = "chunnel/http2/dropped_streams"

// MalformedFramesCounter counts malformed frames (short, or unknown
// frame type) discarded on the batch receive path. RecvBuf fails on the
// first malformed frame, but RecvBufs keeps the rest of a burst that
// already produced messages — this counter keeps those discards visible.
const MalformedFramesCounter = "chunnel/http2/malformed_frames"

// New wraps conn with frame encoding. maxFrame bounds each fragment's
// payload; messages larger than maxFrame are split and reassembled.
func New(conn core.Conn, maxFrame int) (core.Conn, error) {
	if maxFrame <= 0 {
		return nil, fmt.Errorf("http2: invalid max frame %d", maxFrame)
	}
	return &frameConn{
		Conn:      conn,
		maxFrame:  maxFrame,
		dropped:   telemetry.Default().Counter(DroppedStreamsCounter),
		malformed: telemetry.Default().Counter(MalformedFramesCounter),
		partial:   map[uint32][]*wire.Buf{},
	}, nil
}

type frameConn struct {
	core.Conn
	maxFrame   int
	nextStream atomic.Uint32
	// dropped and malformed are the shared process-wide discard
	// counters, resolved once at wrap time so the receive path never
	// touches the registry.
	dropped   *telemetry.Counter
	malformed *telemetry.Counter

	mu      sync.Mutex
	partial map[uint32][]*wire.Buf
}

// fillHeader writes the frame header for fragment i of frags into h.
func fillHeader(h []byte, stream uint32, i, frags int) {
	ft := byte(frameData)
	if i > 0 {
		ft = frameContinuation
	}
	var flags byte
	if i == frags-1 {
		flags = flagEndStream
	}
	h[0] = ft
	h[1] = flags
	binary.LittleEndian.PutUint32(h[2:6], stream)
	binary.LittleEndian.PutUint16(h[6:8], uint16(i))
}

func (c *frameConn) Send(ctx context.Context, p []byte) error {
	if len(p) <= c.maxFrame {
		return c.SendBuf(ctx, wire.NewBufFrom(c.Headroom(), p))
	}
	return c.sendFragments(ctx, p)
}

// SendBuf frames the message in place. The common case — the whole
// message fits one frame — prepends the header into b's headroom and
// keeps the zero-copy path; oversized messages fall back to per-fragment
// buffers.
func (c *frameConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	if b.Len() <= c.maxFrame {
		stream := c.nextStream.Add(1)
		fillHeader(b.Prepend(headerLen), stream, 0, 1)
		return core.SendBuf(ctx, c.Conn, b)
	}
	err := c.sendFragments(ctx, b.Bytes())
	b.Release()
	return err
}

// SendBufs frames a burst. The common case — every message fits one
// frame — stamps all headers in one pass and hands the burst down
// whole; mixed bursts vectorize the maximal single-frame runs and fall
// back to per-fragment sends for oversized messages. BatchError.Sent
// counts whole messages at this layer (a message whose fragments were
// partially transmitted is not counted).
func (c *frameConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	small := true
	for _, b := range bs {
		if b.Len() > c.maxFrame {
			small = false
			break
		}
	}
	if small {
		for _, b := range bs {
			fillHeader(b.Prepend(headerLen), c.nextStream.Add(1), 0, 1)
		}
		return core.SendBufs(ctx, c.Conn, bs)
	}
	sent := 0
	i := 0
	for i < len(bs) {
		if bs[i].Len() <= c.maxFrame {
			j := i + 1
			for j < len(bs) && bs[j].Len() <= c.maxFrame {
				j++
			}
			run := bs[i:j]
			for _, b := range run {
				fillHeader(b.Prepend(headerLen), c.nextStream.Add(1), 0, 1)
			}
			if err := core.SendBufs(ctx, c.Conn, run); err != nil {
				core.ReleaseAll(bs[j:])
				cause := err
				if be, ok := err.(*core.BatchError); ok {
					cause = be.Err
				}
				return &core.BatchError{Sent: sent + core.BatchSent(err), Err: cause}
			}
			sent += len(run)
			i = j
			continue
		}
		p := bs[i].Bytes()
		err := c.sendFragments(ctx, p)
		bs[i].Release()
		if err != nil {
			core.ReleaseAll(bs[i+1:])
			return &core.BatchError{Sent: sent, Err: err}
		}
		sent++
		i++
	}
	return nil
}

// Headroom implements core.HeadroomConn.
func (c *frameConn) Headroom() int { return headerLen + core.HeadroomOf(c.Conn) }

// sendFragments splits p across maxFrame-sized frames, each in a pooled
// buffer with headroom for the layers below.
func (c *frameConn) sendFragments(ctx context.Context, p []byte) error {
	stream := c.nextStream.Add(1)
	frags := (len(p) + c.maxFrame - 1) / c.maxFrame
	if frags == 0 {
		frags = 1
	}
	if frags > 1<<16-1 {
		return fmt.Errorf("%w: %d fragments", core.ErrMessageTooLarge, frags)
	}
	inner := core.HeadroomOf(c.Conn)
	for i := 0; i < frags; i++ {
		lo := i * c.maxFrame
		hi := lo + c.maxFrame
		if hi > len(p) {
			hi = len(p)
		}
		fb := wire.NewBufFrom(inner+headerLen, p[lo:hi])
		fillHeader(fb.Prepend(headerLen), stream, i, frags)
		if err := core.SendBuf(ctx, c.Conn, fb); err != nil {
			return err
		}
	}
	return nil
}

func (c *frameConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf reassembles the next message. Single-frame messages — the
// common case — are returned as the transport's buffer with the header
// trimmed off: zero copies.
func (c *frameConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	for {
		fb, err := core.RecvBuf(ctx, c.Conn)
		if err != nil {
			return nil, err
		}
		msg, err := c.processFrame(fb)
		if err != nil {
			return nil, err
		}
		if msg != nil {
			return msg, nil
		}
	}
}

// processFrame absorbs one arriving frame, consuming fb in every case:
// a completed message is returned (single-frame messages zero-copy, the
// header trimmed in place); continuations park in the reassembly map
// and return (nil, nil); malformed frames are an error.
func (c *frameConn) processFrame(fb *wire.Buf) (*wire.Buf, error) {
	f := fb.Bytes()
	if len(f) < headerLen {
		n := len(f)
		fb.Release()
		return nil, fmt.Errorf("http2: short frame (%d bytes)", n)
	}
	ft, flags := f[0], f[1]
	stream := binary.LittleEndian.Uint32(f[2:6])
	idx := binary.LittleEndian.Uint16(f[6:8])
	if ft != frameData && ft != frameContinuation {
		fb.Release()
		return nil, fmt.Errorf("http2: unknown frame type %#x", ft)
	}
	fb.TrimFront(headerLen)

	c.mu.Lock()
	frags := c.partial[stream]
	if int(idx) != len(frags) {
		// Fragment loss or reorder below us: the stream cannot be
		// reassembled. Drop it *visibly* (counters) — and pair with
		// the reliability chunnel on lossy transports (see the
		// package documentation).
		delete(c.partial, stream)
		c.mu.Unlock()
		c.dropped.Inc()
		fb.Release()
		releaseAll(frags)
		return nil, nil
	}
	if flags&flagEndStream == 0 {
		c.partial[stream] = append(frags, fb)
		c.mu.Unlock()
		return nil, nil
	}
	delete(c.partial, stream)
	c.mu.Unlock()

	if len(frags) == 0 {
		return fb, nil // single-frame message: zero-copy
	}
	total := fb.Len()
	for _, fr := range frags {
		total += fr.Len()
	}
	out := wire.NewBuf(wire.DefaultHeadroom, total)
	dst := out.Bytes()
	n := 0
	for _, fr := range frags {
		n += copy(dst[n:], fr.Bytes())
		fr.Release()
	}
	copy(dst[n:], fb.Bytes())
	fb.Release()
	return out, nil
}

// RecvBufs receives a burst of frames and reassembles in one pass:
// completed messages compact into into's prefix, continuations park for
// later, and malformed frames drop individually — each counted in
// MalformedFramesCounter so a peer sending garbage stays visible even
// when the burst still produced messages (the call only fails when a
// burst produced no messages and at least one frame was bad).
func (c *frameConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	for {
		n, err := core.RecvBufs(ctx, c.Conn, into)
		if err != nil {
			return 0, err
		}
		out := 0
		var firstErr error
		for i := 0; i < n; i++ {
			// out ≤ i at every write: each consumed frame yields at most
			// one message, so compaction never overtakes the read index.
			msg, err := c.processFrame(into[i])
			if err != nil {
				c.malformed.Inc()
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if msg != nil {
				into[out] = msg
				out++
			}
		}
		if out > 0 {
			return out, nil
		}
		if firstErr != nil {
			return 0, firstErr
		}
		// Whole burst was continuations (or dropped streams): go again.
	}
}

// Close releases any partially reassembled streams.
func (c *frameConn) Close() error {
	err := c.Conn.Close()
	c.mu.Lock()
	for s, frags := range c.partial {
		delete(c.partial, s)
		releaseAll(frags)
	}
	c.mu.Unlock()
	return err
}

func releaseAll(frags []*wire.Buf) {
	for _, fr := range frags {
		fr.Release()
	}
}
