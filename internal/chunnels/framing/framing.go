// Package framing implements an HTTP/2-flavoured stream-framing chunnel:
// each message becomes a typed frame with a stream identifier, and large
// messages are split into CONTINUATION frames reassembled at the
// receiver. It is the "http2" stage of the paper's §6 pipeline example.
package framing

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "http2"

// Frame types (a subset of HTTP/2's, enough for message framing).
const (
	frameData         = 0x0
	frameContinuation = 0x9
)

// flagEndStream marks the final frame of a message.
const flagEndStream = 0x1

// headerLen is type(1) + flags(1) + stream(4) + fragment index(2).
const headerLen = 8

// DefaultMaxFrame is the fragment payload ceiling.
const DefaultMaxFrame = 16 << 10

// Node builds the DAG node: http2(maxFrame).
func Node(maxFrame int) spec.Node {
	return spec.New(Type, wire.Int(int64(maxFrame)))
}

// Register installs the userspace fallback implementation.
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:     Type + "/sw",
			Type:     Type,
			Endpoint: spec.EndpointBoth,
			Location: core.LocUserspace,
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			maxFrame := int(base.IntOr(args, 0, DefaultMaxFrame))
			return New(conn, maxFrame)
		},
	})
}

// New wraps conn with frame encoding. maxFrame bounds each fragment's
// payload; messages larger than maxFrame are split and reassembled.
func New(conn core.Conn, maxFrame int) (core.Conn, error) {
	if maxFrame <= 0 {
		return nil, fmt.Errorf("http2: invalid max frame %d", maxFrame)
	}
	return &frameConn{Conn: conn, maxFrame: maxFrame, partial: map[uint32][][]byte{}}, nil
}

type frameConn struct {
	core.Conn
	maxFrame   int
	nextStream atomic.Uint32

	mu      sync.Mutex
	partial map[uint32][][]byte
}

func (c *frameConn) Send(ctx context.Context, p []byte) error {
	stream := c.nextStream.Add(1)
	frags := (len(p) + c.maxFrame - 1) / c.maxFrame
	if frags == 0 {
		frags = 1
	}
	if frags > 1<<16-1 {
		return fmt.Errorf("%w: %d fragments", core.ErrMessageTooLarge, frags)
	}
	for i := 0; i < frags; i++ {
		lo := i * c.maxFrame
		hi := lo + c.maxFrame
		if hi > len(p) {
			hi = len(p)
		}
		ft := byte(frameData)
		if i > 0 {
			ft = frameContinuation
		}
		var flags byte
		if i == frags-1 {
			flags = flagEndStream
		}
		buf := make([]byte, headerLen+hi-lo)
		buf[0] = ft
		buf[1] = flags
		binary.LittleEndian.PutUint32(buf[2:6], stream)
		binary.LittleEndian.PutUint16(buf[6:8], uint16(i))
		copy(buf[headerLen:], p[lo:hi])
		if err := c.Conn.Send(ctx, buf); err != nil {
			return err
		}
	}
	return nil
}

func (c *frameConn) Recv(ctx context.Context) ([]byte, error) {
	for {
		f, err := c.Conn.Recv(ctx)
		if err != nil {
			return nil, err
		}
		if len(f) < headerLen {
			return nil, fmt.Errorf("http2: short frame (%d bytes)", len(f))
		}
		ft, flags := f[0], f[1]
		stream := binary.LittleEndian.Uint32(f[2:6])
		idx := binary.LittleEndian.Uint16(f[6:8])
		payload := f[headerLen:]
		if ft != frameData && ft != frameContinuation {
			return nil, fmt.Errorf("http2: unknown frame type %#x", ft)
		}

		c.mu.Lock()
		frags := c.partial[stream]
		if int(idx) != len(frags) {
			// Fragment loss or reorder below us: drop the stream. Pair
			// with the reliability chunnel for lossy transports.
			delete(c.partial, stream)
			c.mu.Unlock()
			continue
		}
		frags = append(frags, payload)
		if flags&flagEndStream == 0 {
			c.partial[stream] = frags
			c.mu.Unlock()
			continue
		}
		delete(c.partial, stream)
		c.mu.Unlock()

		total := 0
		for _, fr := range frags {
			total += len(fr)
		}
		out := make([]byte, 0, total)
		for _, fr := range frags {
			out = append(out, fr...)
		}
		return out, nil
	}
}
