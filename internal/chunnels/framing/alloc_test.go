package framing

import (
	"bytes"
	"context"
	"encoding/binary"
	"testing"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

// loopConn is a loopback BufConn: SendBuf hands buffers straight to
// RecvBuf with zero copies or allocations.
type loopConn struct {
	ch chan *wire.Buf
}

func newLoopConn(depth int) *loopConn { return &loopConn{ch: make(chan *wire.Buf, depth)} }

func (c *loopConn) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(0, p))
}

func (c *loopConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	c.ch <- b
	return nil
}

func (c *loopConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

func (c *loopConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	return <-c.ch, nil
}

func (c *loopConn) Headroom() int         { return 0 }
func (c *loopConn) LocalAddr() core.Addr  { return core.Addr{} }
func (c *loopConn) RemoteAddr() core.Addr { return core.Addr{} }
func (c *loopConn) Close() error          { return nil }

// TestSingleFrameAllocs pins the zero-copy single-frame path: header
// prepend on send, header trim on receive, no allocations once the pool
// is warm.
func TestSingleFrameAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	conn, err := New(newLoopConn(1), DefaultMaxFrame)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	bc := conn.(core.BufConn)
	ctx := context.Background()
	payload := make([]byte, 64)
	headroom := core.HeadroomOf(conn)

	avg := testing.AllocsPerRun(200, func() {
		b := wire.NewBufFrom(headroom, payload)
		if err := bc.SendBuf(ctx, b); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		r, err := bc.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if r.Len() != len(payload) {
			t.Errorf("len = %d, want %d", r.Len(), len(payload))
		}
		r.Release()
	})
	if avg >= 1 {
		t.Fatalf("framing single-frame round trip allocates %.2f objects/op, want 0", avg)
	}
}

// TestFragmentReassembly round-trips a message larger than maxFrame.
func TestFragmentReassembly(t *testing.T) {
	const maxFrame = 128
	conn, err := New(newLoopConn(64), maxFrame)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	ctx := context.Background()
	msg := bytes.Repeat([]byte("fragmented-payload!"), 40) // ~760 bytes, 6 frames
	if err := conn.Send(ctx, msg); err != nil {
		t.Fatalf("send: %v", err)
	}
	got, err := conn.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("reassembled %d bytes, want %d (content mismatch)", len(got), len(msg))
	}
}

// TestDroppedStreamsCounter injects an out-of-order CONTINUATION frame
// and checks the discard is visible on the telemetry registry's
// dropped-streams counter, and that the connection keeps delivering
// later messages.
func TestDroppedStreamsCounter(t *testing.T) {
	inner := newLoopConn(8)
	conn, err := New(inner, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	ctx := context.Background()

	// A CONTINUATION (idx 1) for a stream with no DATA frame received:
	// reassembly is impossible, the stream must be dropped and counted.
	dropped := telemetry.Default().Counter(DroppedStreamsCounter)
	before := dropped.Value()
	rogue := make([]byte, headerLen+4)
	rogue[0] = frameContinuation
	rogue[1] = flagEndStream
	binary.LittleEndian.PutUint32(rogue[2:6], 7777)
	binary.LittleEndian.PutUint16(rogue[6:8], 1)
	if err := inner.Send(ctx, rogue); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if err := conn.Send(ctx, []byte("after-drop")); err != nil {
		t.Fatalf("send: %v", err)
	}

	got, err := conn.Recv(ctx)
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if string(got) != "after-drop" {
		t.Fatalf("recv = %q, want %q", got, "after-drop")
	}
	if n := dropped.Value(); n != before+1 {
		t.Fatalf("dropped_streams counter = %d, want %d", n, before+1)
	}
}

// TestMalformedFramesCounterBatch sends a burst holding one good frame
// and one unknown-type frame through the batch receive path: RecvBufs
// keeps the good message (so it reports no error) and the discarded
// malformed frame must surface on the malformed-frames counter.
func TestMalformedFramesCounterBatch(t *testing.T) {
	a, b := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	conn, err := New(b, DefaultMaxFrame)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	ctx := context.Background()

	malformed := telemetry.Default().Counter(MalformedFramesCounter)
	before := malformed.Value()

	good := make([]byte, headerLen+2)
	good[0] = frameData
	good[1] = flagEndStream
	binary.LittleEndian.PutUint32(good[2:6], 1)
	copy(good[headerLen:], "ok")
	rogue := make([]byte, headerLen+2)
	rogue[0] = 0x5 // not DATA or CONTINUATION
	burst := []*wire.Buf{wire.NewBufFrom(0, good), wire.NewBufFrom(0, rogue)}
	if err := core.SendBufs(ctx, a, burst); err != nil {
		t.Fatalf("inject burst: %v", err)
	}

	into := make([]*wire.Buf, 4)
	n, err := conn.(core.BatchConn).RecvBufs(ctx, into)
	if err != nil {
		t.Fatalf("RecvBufs: %v (good message must mask the malformed frame's error)", err)
	}
	if n != 1 || string(into[0].Bytes()) != "ok" {
		t.Fatalf("RecvBufs = %d messages (first %q), want 1 %q", n, into[0].Bytes(), "ok")
	}
	into[0].Release()
	if v := malformed.Value(); v != before+1 {
		t.Errorf("malformed_frames counter = %d, want %d", v, before+1)
	}
}
