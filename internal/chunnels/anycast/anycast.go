// Package anycast implements the anycast chunnel of §3.2: service names
// resolve to instance addresses at connection-establishment time, and
// the application can "dynamically choose between DNS-based and
// IP-anycast based approaches depending on where they are deployed".
//
// Instances advertise themselves in a Directory (backed by the Bertha
// discovery service); clients resolve through a Strategy:
//
//   - DNS strategy: round-robin over all advertised instances, with a
//     TTL cache (the CDN-operator approach the paper cites).
//   - Anycast strategy: route to the "nearest" instance — a host-local
//     instance when one exists, otherwise the lowest-cost advertised
//     instance (the IP-anycast behaviour).
//
// Because resolution runs per connection, starting a closer instance is
// picked up by the very next connection with no client reconfiguration —
// the dynamic-name-resolution experiment of Figure 4.
package anycast

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/discovery"
)

// Instance is one advertised service instance.
type Instance struct {
	// Name identifies the instance (unique per service).
	Name string
	// Addr is the instance's dialable address.
	Addr core.Addr
	// Cost orders instances by distance/preference (lower is nearer).
	Cost int
}

// Directory resolves service names to live instances.
type Directory interface {
	// Instances returns the live instances of a service.
	Instances(ctx context.Context, service string) ([]Instance, error)
}

// Registrar lets instances advertise themselves.
type Registrar interface {
	// Advertise registers (or refreshes) an instance of a service.
	Advertise(ctx context.Context, service string, inst Instance, ttl time.Duration) error
	// Withdraw removes an instance advertisement.
	Withdraw(ctx context.Context, service string, name string) error
}

// typePrefix namespaces anycast advertisements within the discovery
// service's offer table.
const typePrefix = "anycast:"

// encodeMeta packs an instance address and cost into the offer Meta.
func encodeMeta(inst Instance) string {
	return fmt.Sprintf("%s|%s|%s|%d", inst.Addr.Net, inst.Addr.Host, inst.Addr.Addr, inst.Cost)
}

func decodeMeta(meta string) (core.Addr, int, error) {
	parts := strings.Split(meta, "|")
	if len(parts) != 4 {
		return core.Addr{}, 0, fmt.Errorf("anycast: malformed advertisement %q", meta)
	}
	cost := 0
	fmt.Sscanf(parts[3], "%d", &cost)
	return core.Addr{Net: parts[0], Host: parts[1], Addr: parts[2]}, cost, nil
}

// DiscoveryDirectory is a Directory and Registrar backed by the Bertha
// discovery service (either the in-process Service or a remote Client).
type DiscoveryDirectory struct {
	disc discoveryAPI
}

// discoveryAPI is the subset of discovery operations the directory uses;
// both *discovery.Service and *discovery.Client satisfy it (the Service
// via the Adapt* helpers below).
type discoveryAPI interface {
	core.DiscoveryClient
	Register(ctx context.Context, offer core.ImplOffer, capacity int, ttl time.Duration) error
	Withdraw(ctx context.Context, name string) error
}

// serviceAdapter lifts *discovery.Service to discoveryAPI (the Service's
// Register/Withdraw are not context-taking).
type serviceAdapter struct {
	*discovery.Service
}

func (a serviceAdapter) Register(ctx context.Context, offer core.ImplOffer, capacity int, ttl time.Duration) error {
	return a.Service.Register(offer, capacity, ttl)
}

func (a serviceAdapter) Withdraw(ctx context.Context, name string) error {
	a.Service.Withdraw(name)
	return nil
}

// NewLocalDirectory returns a directory over an in-process discovery
// service.
func NewLocalDirectory(svc *discovery.Service) *DiscoveryDirectory {
	return &DiscoveryDirectory{disc: serviceAdapter{svc}}
}

// NewRemoteDirectory returns a directory over a remote discovery client.
func NewRemoteDirectory(c *discovery.Client) *DiscoveryDirectory {
	return &DiscoveryDirectory{disc: c}
}

// Advertise implements Registrar.
func (d *DiscoveryDirectory) Advertise(ctx context.Context, service string, inst Instance, ttl time.Duration) error {
	offer := core.ImplOffer{
		Name: typePrefix + service + "/" + inst.Name,
		Type: typePrefix + service,
		Host: inst.Addr.Host,
		Meta: encodeMeta(inst),
	}
	return d.disc.Register(ctx, offer, 0, ttl)
}

// Withdraw implements Registrar.
func (d *DiscoveryDirectory) Withdraw(ctx context.Context, service, name string) error {
	return d.disc.Withdraw(ctx, typePrefix+service+"/"+name)
}

// Instances implements Directory.
func (d *DiscoveryDirectory) Instances(ctx context.Context, service string) ([]Instance, error) {
	offers, err := d.disc.Query(ctx, []string{typePrefix + service})
	if err != nil {
		return nil, err
	}
	out := make([]Instance, 0, len(offers))
	for _, o := range offers {
		addr, cost, err := decodeMeta(o.Meta)
		if err != nil {
			continue // skip malformed advertisements
		}
		name := strings.TrimPrefix(o.Name, typePrefix+service+"/")
		out = append(out, Instance{Name: name, Addr: addr, Cost: cost})
	}
	return out, nil
}

// Strategy picks an instance for one connection.
type Strategy interface {
	Pick(ctx context.Context, dir Directory, service, fromHost string) (Instance, error)
}

// ErrNoInstances is returned when a service has no live instances.
var errNoInstances = func(service string) error {
	return fmt.Errorf("anycast: no live instances of %q", service)
}

// DNS is the DNS-style strategy: resolve all instances, cache for TTL,
// round-robin among them.
type DNS struct {
	// TTL is the cache lifetime (DNS record TTL analog).
	TTL time.Duration

	mu      sync.Mutex
	service string
	cached  []Instance
	expiry  time.Time
	next    int
}

// Pick implements Strategy.
func (s *DNS) Pick(ctx context.Context, dir Directory, service, fromHost string) (Instance, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.service != service || time.Now().After(s.expiry) || len(s.cached) == 0 {
		insts, err := dir.Instances(ctx, service)
		if err != nil {
			return Instance{}, err
		}
		ttl := s.TTL
		if ttl <= 0 {
			ttl = 5 * time.Second
		}
		// The rotation counter survives refreshes so round-robin stays
		// fair across TTL boundaries.
		s.service, s.cached, s.expiry = service, insts, time.Now().Add(ttl)
	}
	if len(s.cached) == 0 {
		return Instance{}, errNoInstances(service)
	}
	inst := s.cached[s.next%len(s.cached)]
	s.next++
	return inst, nil
}

// Nearest is the IP-anycast-style strategy: always resolve fresh (the
// network routes each connection), prefer a host-local instance, then
// the lowest cost.
type Nearest struct{}

// Pick implements Strategy.
func (Nearest) Pick(ctx context.Context, dir Directory, service, fromHost string) (Instance, error) {
	insts, err := dir.Instances(ctx, service)
	if err != nil {
		return Instance{}, err
	}
	if len(insts) == 0 {
		return Instance{}, errNoInstances(service)
	}
	best := insts[0]
	bestLocal := best.Addr.Host != "" && best.Addr.Host == fromHost
	for _, in := range insts[1:] {
		local := in.Addr.Host != "" && in.Addr.Host == fromHost
		switch {
		case local && !bestLocal:
			best, bestLocal = in, true
		case local == bestLocal && in.Cost < best.Cost:
			best = in
		}
	}
	return best, nil
}

// Resolver combines a directory, strategy, and dialer: Dial resolves the
// service and opens a base connection to the chosen instance, ready for
// Endpoint.Connect.
type Resolver struct {
	Directory Directory
	Strategy  Strategy
	Dialer    core.Dialer
	// FromHost is the client's host identity for locality decisions.
	FromHost string
}

// Dial resolves service and dials the chosen instance.
func (r *Resolver) Dial(ctx context.Context, service string) (core.Conn, Instance, error) {
	inst, err := r.Strategy.Pick(ctx, r.Directory, service, r.FromHost)
	if err != nil {
		return nil, Instance{}, err
	}
	conn, err := r.Dialer.Dial(ctx, inst.Addr)
	if err != nil {
		return nil, inst, fmt.Errorf("anycast: dial %s (%s): %w", inst.Name, inst.Addr, err)
	}
	return conn, inst, nil
}
