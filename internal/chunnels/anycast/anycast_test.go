package anycast_test

import (
	"context"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/anycast"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/discovery"
	"github.com/bertha-net/bertha/internal/transport"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func inst(name, host string, cost int) anycast.Instance {
	return anycast.Instance{
		Name: name,
		Addr: core.Addr{Net: "pipe", Host: host, Addr: name},
		Cost: cost,
	}
}

func TestDirectoryAdvertiseResolveWithdraw(t *testing.T) {
	ctx := ctxT(t)
	dir := anycast.NewLocalDirectory(discovery.NewService())
	if err := dir.Advertise(ctx, "kv", inst("i1", "h1", 5), time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := dir.Advertise(ctx, "kv", inst("i2", "h2", 3), time.Minute); err != nil {
		t.Fatal(err)
	}
	dir.Advertise(ctx, "other", inst("x", "h9", 1), time.Minute)

	got, err := dir.Instances(ctx, "kv")
	if err != nil || len(got) != 2 {
		t.Fatalf("instances: %v %v", got, err)
	}
	names := map[string]anycast.Instance{}
	for _, in := range got {
		names[in.Name] = in
	}
	if names["i1"].Addr.Host != "h1" || names["i1"].Cost != 5 {
		t.Errorf("i1: %+v", names["i1"])
	}
	if err := dir.Withdraw(ctx, "kv", "i1"); err != nil {
		t.Fatal(err)
	}
	got, _ = dir.Instances(ctx, "kv")
	if len(got) != 1 || got[0].Name != "i2" {
		t.Errorf("after withdraw: %v", got)
	}
}

func TestNearestPrefersLocalThenCost(t *testing.T) {
	ctx := ctxT(t)
	dir := anycast.NewLocalDirectory(discovery.NewService())
	dir.Advertise(ctx, "kv", inst("far", "hostZ", 1), time.Minute)
	dir.Advertise(ctx, "kv", inst("near", "hostA", 10), time.Minute)

	var s anycast.Nearest
	got, err := s.Pick(ctx, dir, "kv", "hostA")
	if err != nil || got.Name != "near" {
		t.Errorf("local preference: %+v %v", got, err)
	}
	// No local instance: lowest cost wins.
	got, _ = s.Pick(ctx, dir, "kv", "hostQ")
	if got.Name != "far" {
		t.Errorf("cost preference: %+v", got)
	}
	// Empty service errors.
	if _, err := s.Pick(ctx, dir, "none", "hostA"); err == nil {
		t.Error("empty service should error")
	}
}

func TestDNSRoundRobinAndTTL(t *testing.T) {
	ctx := ctxT(t)
	dir := anycast.NewLocalDirectory(discovery.NewService())
	dir.Advertise(ctx, "kv", inst("a", "h1", 0), time.Minute)
	dir.Advertise(ctx, "kv", inst("b", "h2", 0), time.Minute)

	s := &anycast.DNS{TTL: time.Hour}
	seen := map[string]int{}
	for i := 0; i < 6; i++ {
		in, err := s.Pick(ctx, dir, "kv", "hX")
		if err != nil {
			t.Fatal(err)
		}
		seen[in.Name]++
	}
	if seen["a"] != 3 || seen["b"] != 3 {
		t.Errorf("round robin: %v", seen)
	}

	// A new instance is invisible until the TTL expires.
	dir.Advertise(ctx, "kv", inst("c", "h3", 0), time.Minute)
	for i := 0; i < 4; i++ {
		in, _ := s.Pick(ctx, dir, "kv", "hX")
		if in.Name == "c" {
			t.Fatal("cached strategy saw a new instance before TTL expiry")
		}
	}
	// Short-TTL strategy sees it immediately.
	s2 := &anycast.DNS{TTL: time.Nanosecond}
	time.Sleep(time.Millisecond)
	found := false
	for i := 0; i < 6; i++ {
		in, _ := s2.Pick(ctx, dir, "kv", "hX")
		if in.Name == "c" {
			found = true
		}
	}
	if !found {
		t.Error("expired cache should re-resolve")
	}
}

// TestFigure4Shape reproduces the Figure 4 mechanism: while only a
// remote instance exists, connections resolve remote; the moment a local
// instance registers, the next connection resolves local.
func TestFigure4Shape(t *testing.T) {
	ctx := ctxT(t)
	svc := discovery.NewService()
	dir := anycast.NewLocalDirectory(svc)
	pn := transport.NewPipeNetwork()

	// Remote instance is up from the start.
	remoteL, _ := pn.Listen("remotehost", "kv-remote")
	defer remoteL.Close()
	dir.Advertise(ctx, "kv", anycast.Instance{Name: "remote", Addr: remoteL.Addr(), Cost: 10}, time.Minute)

	r := &anycast.Resolver{
		Directory: dir,
		Strategy:  anycast.Nearest{},
		Dialer:    pn.Dialer("clienthost"),
		FromHost:  "clienthost",
	}
	conn, in, err := r.Dial(ctx, "kv")
	if err != nil || in.Name != "remote" {
		t.Fatalf("initial dial: %+v %v", in, err)
	}
	conn.Close()

	// t=4s: a local instance starts and registers.
	localL, _ := pn.Listen("clienthost", "kv-local")
	defer localL.Close()
	dir.Advertise(ctx, "kv", anycast.Instance{Name: "local", Addr: localL.Addr(), Cost: 1}, time.Minute)

	conn, in, err = r.Dial(ctx, "kv")
	if err != nil || in.Name != "local" {
		t.Fatalf("post-start dial: %+v %v", in, err)
	}
	conn.Close()

	// The local instance terminates: back to remote, no reconfiguration.
	dir.Withdraw(ctx, "kv", "local")
	conn, in, err = r.Dial(ctx, "kv")
	if err != nil || in.Name != "remote" {
		t.Fatalf("post-withdraw dial: %+v %v", in, err)
	}
	conn.Close()
}
