// Package base provides shared scaffolding for chunnel implementations:
// a function-field core.Impl, argument accessors, and registration
// helpers used by every chunnel package.
package base

import (
	"context"
	"fmt"

	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/wire"
)

// Impl adapts plain functions to core.Impl. Nil functions default to
// no-ops (Init/Teardown) or identity (Wrap).
type Impl struct {
	// Info describes the implementation.
	ImplInfo core.ImplInfo
	// InitFn configures the system/network for the implementation.
	InitFn func(ctx context.Context, env *core.Env, args []wire.Value) error
	// TeardownFn reverses InitFn.
	TeardownFn func(ctx context.Context, env *core.Env) error
	// WrapFn layers the chunnel over a connection.
	WrapFn func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error)
	// ParamsFn, when set, contributes negotiation parameters from the
	// server side (core.ParamProvider).
	ParamsFn func(ctx context.Context, env *core.Env, args []wire.Value) ([]wire.Value, error)
	// ValidateFn, when set, checks node arguments during negotiation
	// (core.ArgValidator).
	ValidateFn func(args []wire.Value) error
}

// ValidateArgs implements core.ArgValidator when ValidateFn is set.
func (b *Impl) ValidateArgs(args []wire.Value) error {
	if b.ValidateFn == nil {
		return nil
	}
	return b.ValidateFn(args)
}

// Info implements core.Impl.
func (b *Impl) Info() core.ImplInfo { return b.ImplInfo }

// Init implements core.Impl.
func (b *Impl) Init(ctx context.Context, env *core.Env, args []wire.Value) error {
	if b.InitFn == nil {
		return nil
	}
	return b.InitFn(ctx, env, args)
}

// Teardown implements core.Impl.
func (b *Impl) Teardown(ctx context.Context, env *core.Env) error {
	if b.TeardownFn == nil {
		return nil
	}
	return b.TeardownFn(ctx, env)
}

// Wrap implements core.Impl.
func (b *Impl) Wrap(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	if b.WrapFn == nil {
		return conn, nil
	}
	return b.WrapFn(ctx, conn, args, params, side, env)
}

// NegotiateParams implements core.ParamProvider when ParamsFn is set.
func (b *Impl) NegotiateParams(ctx context.Context, env *core.Env, args []wire.Value) ([]wire.Value, error) {
	if b.ParamsFn == nil {
		return nil, nil
	}
	return b.ParamsFn(ctx, env, args)
}

// Argument accessors. Each returns a typed argument at index i or an
// error naming the chunnel for diagnosis.

// Str extracts a string argument.
func Str(chunnel string, args []wire.Value, i int) (string, error) {
	if i >= len(args) {
		return "", fmt.Errorf("%s: missing argument %d", chunnel, i)
	}
	s, ok := args[i].AsString()
	if !ok {
		return "", fmt.Errorf("%s: argument %d is %s, want string", chunnel, i, args[i].Kind())
	}
	return s, nil
}

// Int extracts an integer argument.
func Int(chunnel string, args []wire.Value, i int) (int64, error) {
	if i >= len(args) {
		return 0, fmt.Errorf("%s: missing argument %d", chunnel, i)
	}
	v, ok := args[i].AsInt()
	if !ok {
		return 0, fmt.Errorf("%s: argument %d is %s, want int", chunnel, i, args[i].Kind())
	}
	return v, nil
}

// IntOr extracts an optional integer argument with a default.
func IntOr(args []wire.Value, i int, def int64) int64 {
	if i >= len(args) {
		return def
	}
	if v, ok := args[i].AsInt(); ok {
		return v
	}
	return def
}

// Bytes extracts a bytes argument.
func Bytes(chunnel string, args []wire.Value, i int) ([]byte, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("%s: missing argument %d", chunnel, i)
	}
	b, ok := args[i].AsBytes()
	if !ok {
		return nil, fmt.Errorf("%s: argument %d is %s, want bytes", chunnel, i, args[i].Kind())
	}
	return b, nil
}

// StrList extracts a list-of-strings argument.
func StrList(chunnel string, args []wire.Value, i int) ([]string, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("%s: missing argument %d", chunnel, i)
	}
	l, ok := args[i].AsList()
	if !ok {
		return nil, fmt.Errorf("%s: argument %d is %s, want list", chunnel, i, args[i].Kind())
	}
	out := make([]string, 0, len(l))
	for j, v := range l {
		s, ok := v.AsString()
		if !ok {
			return nil, fmt.Errorf("%s: argument %d element %d is %s, want string", chunnel, i, j, v.Kind())
		}
		out = append(out, s)
	}
	return out, nil
}

// AddrList extracts a list of encoded core.Addr arguments (each encoded
// as a 3-element list [net, host, addr]).
func AddrList(chunnel string, args []wire.Value, i int) ([]core.Addr, error) {
	if i >= len(args) {
		return nil, fmt.Errorf("%s: missing argument %d", chunnel, i)
	}
	l, ok := args[i].AsList()
	if !ok {
		return nil, fmt.Errorf("%s: argument %d is %s, want list", chunnel, i, args[i].Kind())
	}
	out := make([]core.Addr, 0, len(l))
	for j, v := range l {
		a, err := DecodeAddr(v)
		if err != nil {
			return nil, fmt.Errorf("%s: argument %d element %d: %w", chunnel, i, j, err)
		}
		out = append(out, a)
	}
	return out, nil
}

// EncodeAddr converts a core.Addr to a wire.Value ([net, host, addr]).
func EncodeAddr(a core.Addr) wire.Value {
	return wire.List(wire.Str(a.Net), wire.Str(a.Host), wire.Str(a.Addr))
}

// EncodeAddrs converts a slice of addresses to a wire list value.
func EncodeAddrs(addrs []core.Addr) wire.Value {
	vs := make([]wire.Value, len(addrs))
	for i, a := range addrs {
		vs[i] = EncodeAddr(a)
	}
	return wire.List(vs...)
}

// DecodeAddr converts a wire.Value back to a core.Addr.
func DecodeAddr(v wire.Value) (core.Addr, error) {
	l, ok := v.AsList()
	if !ok || len(l) != 3 {
		return core.Addr{}, fmt.Errorf("address value must be [net, host, addr], got %s", v)
	}
	n, ok1 := l[0].AsString()
	h, ok2 := l[1].AsString()
	a, ok3 := l[2].AsString()
	if !ok1 || !ok2 || !ok3 {
		return core.Addr{}, fmt.Errorf("address elements must be strings: %s", v)
	}
	return core.Addr{Net: n, Host: h, Addr: a}, nil
}
