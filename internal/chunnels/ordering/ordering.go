// Package ordering implements the in-order delivery chunnel: sequence
// numbers plus a bounded reorder buffer, without retransmission. Late
// packets beyond the buffer, and packets lost below, are skipped after a
// gap timeout — the delivery model of media and telemetry protocols, and
// a building block cheaper than full reliability when the transport is
// mostly ordered already.
package ordering

import (
	"context"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "ordering"

// Defaults.
const (
	// DefaultBuffer is the reorder buffer size in messages.
	DefaultBuffer = 64
	// DefaultGapTimeout is how long delivery stalls on a missing
	// sequence number before skipping it.
	DefaultGapTimeout = 20 * time.Millisecond
)

// Node builds the DAG node: ordering(buffer, gapTimeoutMillis).
func Node() spec.Node {
	return spec.New(Type, wire.Int(DefaultBuffer), wire.Int(int64(DefaultGapTimeout/time.Millisecond)))
}

// Register installs the userspace fallback implementation.
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:         Type + "/buffer",
			Type:         Type,
			Endpoint:     spec.EndpointBoth,
			Location:     core.LocUserspace,
			SendOverhead: 8, // sequence number
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			buf := int(base.IntOr(args, 0, DefaultBuffer))
			gap := time.Duration(base.IntOr(args, 1, int64(DefaultGapTimeout/time.Millisecond))) * time.Millisecond
			return New(conn, buf, gap)
		},
	})
}

// New wraps conn with ordered delivery.
func New(conn core.Conn, buffer int, gapTimeout time.Duration) (core.Conn, error) {
	if buffer <= 0 {
		return nil, fmt.Errorf("ordering: invalid buffer %d", buffer)
	}
	if gapTimeout <= 0 {
		gapTimeout = DefaultGapTimeout
	}
	return &orderConn{
		Conn:    conn,
		buffer:  buffer,
		gap:     gapTimeout,
		pendMap: map[uint64]*wire.Buf{},
		expect:  1,
	}, nil
}

type orderConn struct {
	core.Conn
	buffer int
	gap    time.Duration

	sendMu  sync.Mutex
	nextSeq uint64

	recvMu   sync.Mutex
	expect   uint64
	pendMap  map[uint64]*wire.Buf
	gapSince time.Time
}

func (c *orderConn) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(c.Headroom(), p))
}

// SendBuf prepends the sequence number into b's headroom.
func (c *orderConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	c.sendMu.Lock()
	c.nextSeq++
	seq := c.nextSeq
	c.sendMu.Unlock()
	binary.LittleEndian.PutUint64(b.Prepend(8), seq)
	return core.SendBuf(ctx, c.Conn, b)
}

// SendBufs reserves a contiguous sequence range under one sendMu
// acquisition and stamps the burst in slice order, then hands it down
// whole. If the burst aborts partway the unsent tail's sequence numbers
// are burned; the receiver's gap handling skips them like any loss.
func (c *orderConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	if len(bs) == 0 {
		return nil
	}
	c.sendMu.Lock()
	base := c.nextSeq + 1
	c.nextSeq += uint64(len(bs))
	c.sendMu.Unlock()
	for i, b := range bs {
		binary.LittleEndian.PutUint64(b.Prepend(8), base+uint64(i))
	}
	return core.SendBufs(ctx, c.Conn, bs)
}

// RecvBufs delivers a contiguous in-order run: first whatever the
// reorder buffer already holds (one lock acquisition for the whole
// run), otherwise one ordered receive — with RecvBuf's full gap
// handling — followed by a drain of anything it unblocked.
func (c *orderConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	if n := c.drainReady(into); n > 0 {
		return n, nil
	}
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	into[0] = b
	return 1 + c.drainReady(into[1:]), nil
}

// drainReady moves the longest already-buffered in-order run into into
// under one recvMu acquisition.
func (c *orderConn) drainReady(into []*wire.Buf) int {
	n := 0
	c.recvMu.Lock()
	for n < len(into) {
		b, ok := c.pendMap[c.expect]
		if !ok {
			break
		}
		delete(c.pendMap, c.expect)
		c.expect++
		c.gapSince = time.Time{}
		into[n] = b
		n++
	}
	c.recvMu.Unlock()
	return n
}

// Headroom implements core.HeadroomConn.
func (c *orderConn) Headroom() int { return 8 + core.HeadroomOf(c.Conn) }

// Recv returns messages in sequence order, skipping gaps after the gap
// timeout. Recv is not safe for concurrent callers (like most ordered
// streams, one reader owns the stream).
func (c *orderConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf is Recv's zero-copy form; the reorder buffer holds the
// transports' pooled buffers directly.
func (c *orderConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	for {
		// Deliver anything already in order.
		c.recvMu.Lock()
		if b, ok := c.pendMap[c.expect]; ok {
			delete(c.pendMap, c.expect)
			c.expect++
			c.gapSince = time.Time{}
			c.recvMu.Unlock()
			return b, nil
		}
		// Gap handling: if we have buffered future messages and the gap
		// has persisted, skip to the oldest buffered message.
		if len(c.pendMap) > 0 {
			if c.gapSince.IsZero() {
				c.gapSince = time.Now()
			} else if time.Since(c.gapSince) >= c.gap || len(c.pendMap) >= c.buffer {
				lowest := uint64(0)
				for s := range c.pendMap {
					if lowest == 0 || s < lowest {
						lowest = s
					}
				}
				c.expect = lowest
				c.gapSince = time.Time{}
				c.recvMu.Unlock()
				continue
			}
		}
		c.recvMu.Unlock()

		// Wait for more data, bounded by the gap timeout when a gap is
		// open so skipping can proceed.
		rctx := ctx
		var cancel context.CancelFunc
		c.recvMu.Lock()
		waiting := !c.gapSince.IsZero()
		since := c.gapSince
		c.recvMu.Unlock()
		if waiting {
			rctx, cancel = context.WithDeadline(ctx, since.Add(c.gap))
		}
		msg, err := core.RecvBuf(rctx, c.Conn)
		if cancel != nil {
			cancel()
		}
		if err != nil {
			if waiting && rctx.Err() != nil && ctx.Err() == nil {
				continue // gap timer fired: loop and skip
			}
			return nil, err
		}
		if msg.Len() < 8 {
			msg.Release()
			continue // malformed: drop
		}
		seq := binary.LittleEndian.Uint64(msg.Bytes()[:8])
		msg.TrimFront(8)

		c.recvMu.Lock()
		switch {
		case seq < c.expect:
			// Late packet beyond its window: drop (already skipped).
			c.recvMu.Unlock()
			msg.Release()
		case seq == c.expect:
			c.expect++
			c.gapSince = time.Time{}
			c.recvMu.Unlock()
			return msg, nil
		default:
			if len(c.pendMap) < c.buffer {
				c.pendMap[seq] = msg
			} else {
				msg.Release()
			}
			c.recvMu.Unlock()
		}
	}
}

// Close releases any buffered out-of-order messages.
func (c *orderConn) Close() error {
	err := c.Conn.Close()
	c.recvMu.Lock()
	for s, b := range c.pendMap {
		delete(c.pendMap, s)
		b.Release()
	}
	c.recvMu.Unlock()
	return err
}
