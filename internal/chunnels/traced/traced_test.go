package traced_test

import (
	"context"
	"testing"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/traced"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/telemetry"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/testutil"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// tracedPair negotiates one connection between endpoints that both
// register the trace chunnel, with per-side isolated telemetry.
func tracedPair(t *testing.T, cliOpts, srvOpts []core.Option) (cli, srv core.Conn, cliTel, srvTel *telemetry.Registry) {
	t.Helper()
	ctx := ctxT(t)

	cliReg := core.NewRegistry()
	traced.Register(cliReg)
	srvReg := core.NewRegistry()
	traced.Register(srvReg)
	cliTel = telemetry.New()
	srvTel = telemetry.New()

	cliEP, err := core.NewEndpoint("cli", nil,
		append([]core.Option{core.WithRegistry(cliReg), core.WithTelemetry(cliTel)}, cliOpts...)...)
	if err != nil {
		t.Fatal(err)
	}
	srvEP, err := core.NewEndpoint("srv", nil,
		append([]core.Option{core.WithRegistry(srvReg), core.WithTelemetry(srvTel)}, srvOpts...)...)
	if err != nil {
		t.Fatal(err)
	}

	pn := transport.NewPipeNetwork()
	base, err := pn.Listen("srvhost", "svc")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { base.Close() })
	nl, err := srvEP.Listen(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		conn core.Conn
		err  error
	}
	srvCh := make(chan res, 1)
	go func() {
		c, err := nl.Accept(ctx)
		srvCh <- res{c, err}
	}()
	raw, err := pn.DialFrom(ctx, "clihost", core.Addr{Net: "pipe", Addr: "svc"})
	if err != nil {
		t.Fatal(err)
	}
	cconn, err := cliEP.Connect(ctx, raw)
	if err != nil {
		t.Fatalf("client connect: %v", err)
	}
	r := <-srvCh
	if r.err != nil {
		t.Fatalf("server accept: %v", r.err)
	}
	t.Cleanup(func() { cconn.Close(); r.conn.Close() })
	return cconn, r.conn, cliTel, srvTel
}

// TestTracedNegotiatedE2E drives sampled traffic through a negotiated
// traced stack and asserts the full journey reassembles: client send
// spans + server recv spans merge into one complete tree whose per-hop
// exclusive latencies telescope to the end-to-end latency exactly.
func TestTracedNegotiatedE2E(t *testing.T) {
	ctx := ctxT(t)
	cfg := core.TraceConfig{SampleRate: 1, RingSize: 1024}
	cconn, sconn, cliTel, srvTel := tracedPair(t,
		[]core.Option{core.WithTracing(cfg)}, []core.Option{core.WithTracing(cfg)})

	const msgs = 8
	for i := 0; i < msgs; i++ {
		b := wire.NewBuf(64, 32)
		copy(b.Bytes(), "trace-me")
		if err := cconn.(core.BufConn).SendBuf(ctx, b); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		rb, err := sconn.(core.BufConn).RecvBuf(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !rb.Traced() {
			t.Fatalf("message %d arrived without its trace context (rate-1 sampling)", i)
		}
		rb.Release()
	}

	cliRing, srvRing := cliTel.Spans(), srvTel.Spans()
	if cliRing == nil || srvRing == nil {
		t.Fatal("span rings not enabled by assemble")
	}
	merged := append(cliRing.Snapshot(), srvRing.Snapshot()...)
	trees := tracing.BuildTrees(merged)
	complete := 0
	for _, tr := range trees {
		if !tr.Complete {
			continue
		}
		complete++
		if tr.ExclSum != tr.EndToEnd {
			t.Fatalf("telescoping broken: Σexcl %dns != end-to-end %dns\n%s",
				tr.ExclSum, tr.EndToEnd, tr.String())
		}
		kinds := map[string]bool{}
		for _, h := range tr.Hops {
			kinds[h.KindName+"/"+h.Layer] = true
		}
		for _, want := range []string{"send/trace", "send/transport", "recv/trace"} {
			if !kinds[want] {
				t.Fatalf("tree missing %s hop: %v", want, kinds)
			}
		}
	}
	if complete != msgs {
		t.Fatalf("reassembled %d complete trees, want %d", complete, msgs)
	}

	// The per-connection rollup: exclusive p50/p95 per layer, outermost
	// first, folded into ConnMetrics EWMAs.
	hops := core.ConnHopStats(cconn)
	if len(hops) < 2 {
		t.Fatalf("HopStats returned %d layers, want the traced stack's >= 2", len(hops))
	}
	if hops[len(hops)-1].Chunnel != "transport" {
		t.Fatalf("innermost hop should be the transport, got %+v", hops)
	}
	snap := cliTel.Snapshot()
	found := false
	for _, c := range snap.Conns {
		if c.Chunnel == "transport" && c.HopExclP95 > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("HopStats did not fold EWMAs into the snapshot: %+v", snap.Conns)
	}
	if snap.SpanTotal == 0 {
		t.Fatal("snapshot span_total is zero after traced traffic")
	}
}

// TestTracedUnsampledMarker verifies the wire protocol between traced
// peers when sampling skips a message: one marker byte, no context, and
// the receive side leaves the Buf untraced.
func TestTracedUnsampledMarker(t *testing.T) {
	ctx := ctxT(t)
	// Sample "rate" so low the interval sampler never fires in this test.
	cfg := core.TraceConfig{SampleRate: 1e-9, RingSize: 64}
	cconn, sconn, _, _ := tracedPair(t,
		[]core.Option{core.WithTracing(cfg)}, []core.Option{core.WithTracing(cfg)})

	b := wire.NewBuf(64, 8)
	copy(b.Bytes(), "plain")
	if err := cconn.(core.BufConn).SendBuf(ctx, b); err != nil {
		t.Fatal(err)
	}
	rb, err := sconn.(core.BufConn).RecvBuf(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Release()
	if rb.Traced() {
		t.Fatal("unsampled message arrived traced")
	}
	if got := string(rb.Bytes()[:5]); got != "plain" {
		t.Fatalf("payload corrupted: %q", got)
	}
}

// TestTracedNotNegotiatedWithoutOptIn: without WithTracing on the
// server, the stack carries no trace chunnel even when both registries
// offer it — tracing is an explicit opt-in.
func TestTracedNotNegotiatedWithoutOptIn(t *testing.T) {
	ctx := ctxT(t)
	cconn, sconn, cliTel, srvTel := tracedPair(t, nil, nil)
	if cliTel.Spans() != nil || srvTel.Spans() != nil {
		t.Fatal("span ring enabled without WithTracing")
	}
	b := wire.NewBuf(64, 8)
	copy(b.Bytes(), "notrace!")
	if err := cconn.(core.BufConn).SendBuf(ctx, b); err != nil {
		t.Fatal(err)
	}
	rb, err := sconn.(core.BufConn).RecvBuf(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Release()
	if rb.Traced() {
		t.Fatal("untraced stack produced a traced buffer")
	}
	if got := string(rb.Bytes()); got != "notrace!" {
		t.Fatalf("payload corrupted: %q", got)
	}
}

// TestTracingAllocs is the CI gate for the tentpole's cost claim: with
// tracing negotiated but the message unsampled, a full send+recv round
// through the stack allocates nothing beyond the pooled buffer cycle
// (which nets to zero).
func TestTracingAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	ctx := context.Background()
	cfg := core.TraceConfig{SampleRate: 1e-9, RingSize: 64}
	cconn, sconn, _, _ := tracedPair(t,
		[]core.Option{core.WithTracing(cfg)}, []core.Option{core.WithTracing(cfg)})
	cb, sb := cconn.(core.BufConn), sconn.(core.BufConn)

	send := func() {
		b := wire.NewBuf(64, 32)
		if err := cb.SendBuf(ctx, b); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		rb, err := sb.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		rb.Release()
	}
	// Warm the buffer pools and any lazily allocated internals.
	for i := 0; i < 10; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(100, send); avg >= 1 {
		t.Fatalf("unsampled traced round trip allocates %.2f objects/op, want 0", avg)
	}
}

// TestTracedSampledAllocs gates the sampled path too: recording spans
// into the ring is atomic stores on preallocated slots, so even traced
// messages allocate nothing until someone snapshots the ring.
func TestTracedSampledAllocs(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	ctx := context.Background()
	a := core.Addr{Net: "pipe", Host: "a", Addr: "a"}
	bAddr := core.Addr{Net: "pipe", Host: "b", Addr: "b"}
	p1, p2 := transport.Pipe(a, bAddr, 64)
	ring := tracing.NewSpanRing(256)
	tel := telemetry.New()
	cli := core.InstrumentTraced(traced.New(p1, ring), tel.Conn("trace", core.TraceImplName),
		ring.Handle("trace", core.TraceImplName)).(core.BufConn)
	srv := traced.New(p2, ring).(core.BufConn)

	send := func() {
		b := wire.NewBuf(64, 32)
		b.SetTrace(tracing.NewTraceID(), 0, 0)
		if err := cli.SendBuf(ctx, b); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		rb, err := srv.RecvBuf(ctx)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		if !rb.Traced() {
			t.Error("sampled message lost its context")
		}
		rb.Release()
	}
	for i := 0; i < 10; i++ {
		send()
	}
	if avg := testing.AllocsPerRun(100, send); avg >= 1 {
		t.Fatalf("sampled traced round trip allocates %.2f objects/op, want 0", avg)
	}
	if ring.Total() == 0 {
		t.Fatal("sampled runs recorded no spans")
	}
}
