// Package traced implements the trace pseudo-chunnel: the layer that
// carries a distributed-tracing context across the wire. It is never
// declared in an application spec — negotiation appends it as the
// innermost chunnel when the server endpoint enables tracing
// (core.WithTracing) and both peers register it — so its header lands
// directly after the mux tag byte, where simnet switches peek at it.
//
// On the send path it serializes the wire.Buf's trace context (stamped
// by the endpoint's sampler at the top of the stack) into 16 bytes of
// headroom; unsampled messages pay a single marker byte. On the receive
// path it parses the context back onto the Buf before any layer above
// runs, and self-records the innermost receive span — including on the
// plain []byte Recv path, where the Buf (and its context fields) do not
// survive the copy out.
package traced

import (
	"context"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/telemetry/tracing"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name ("trace").
const Type = core.TraceChunnelType

// Node builds the DAG node. Applications normally never use it — the
// chunnel rides negotiation — but manual stacks (benchmarks) can.
func Node() spec.Node { return spec.New(Type) }

// Register installs the in-band context-stamping implementation.
func Register(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:         core.TraceImplName,
			Type:         Type,
			Endpoint:     spec.EndpointBoth,
			Location:     core.LocUserspace,
			SendOverhead: tracing.ContextSize, // sampled sends; unsampled pay 1 marker byte
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			var ring *tracing.SpanRing
			if v, ok := env.Lookup(core.EnvTraceRing); ok {
				ring, _ = v.(*tracing.SpanRing)
			}
			// A missing ring (peer-driven tracing with local telemetry
			// off) still stamps and parses the wire format so the two
			// sides stay interoperable; it just records nothing here.
			return New(conn, ring), nil
		},
	})
}

// New wraps conn with trace-context stamping, recording receive spans
// into ring (nil: wire format only, no recording). Exported for manual
// stacks; negotiated stacks get it via Register.
func New(conn core.Conn, ring *tracing.SpanRing) core.Conn {
	return &tracedConn{Conn: conn, recv: ring.Handle(Type, core.TraceImplName)}
}

type tracedConn struct {
	core.Conn
	recv tracing.Handle
}

// stamp serializes b's trace context into headroom: the full 16-byte
// context when sampled, the 1-byte marker otherwise.
func stamp(b *wire.Buf) {
	if id, span, hop, ok := b.Trace(); ok {
		tracing.EncodeContext(b.Prepend(16), id, span, hop)
	} else {
		b.Prepend(1)[0] = tracing.FlagUnsampled
	}
}

// parse consumes b's leading context, restoring the trace fields onto
// the Buf for the layers above. Returns the sampled context for span
// recording (ok only when sampled).
func parse(b *wire.Buf) (id uint64, hop uint8, ok bool) {
	n, id, span, hop, sampled, valid := tracing.ParseContext(b.Bytes())
	if !valid {
		// The peer did not run the trace chunnel (or the message is
		// corrupt); leave the payload untouched for the layers above.
		return 0, 0, false
	}
	b.TrimFront(n)
	if sampled {
		b.SetTrace(id, span, hop)
		return id, hop, true
	}
	return 0, 0, false
}

func (c *tracedConn) Send(ctx context.Context, p []byte) error {
	// Plain []byte sends carry no Buf to hold a context; they ride the
	// unsampled marker path.
	return c.SendBuf(ctx, wire.NewBufFrom(c.Headroom(), p))
}

func (c *tracedConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	stamp(b)
	return core.SendBuf(ctx, c.Conn, b)
}

// SendBufs stamps every element in place — each datagram needs its own
// context or marker on the wire — then hands the burst down whole so
// the vectored path is preserved.
func (c *tracedConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	for _, b := range bs {
		stamp(b)
	}
	return core.SendBufs(ctx, c.Conn, bs)
}

func (c *tracedConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	// CopyOut drops the Buf (and the context fields with it); the span
	// was already recorded by RecvBuf, so only per-layer attribution
	// above this point is lost on the plain path.
	return b.CopyOut(), nil
}

func (c *tracedConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	t0 := time.Now()
	b, err := core.RecvBuf(ctx, c.Conn)
	if err != nil {
		return nil, err
	}
	if id, hop, ok := parse(b); ok && c.recv.Active() {
		c.recv.Record(tracing.KindRecv, id, t0, time.Since(t0), b.Len(), 1, hop, false)
	}
	return b, nil
}

func (c *tracedConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	t0 := time.Now()
	n, err := core.RecvBufs(ctx, c.Conn, into)
	var tid uint64
	var thop uint8
	traced := false
	bytes := 0
	for _, b := range into[:n] {
		id, hop, ok := parse(b)
		bytes += b.Len()
		if ok && !traced {
			tid, thop, traced = id, hop, true
		}
	}
	if traced && c.recv.Active() {
		c.recv.Record(tracing.KindRecv, tid, t0, time.Since(t0), bytes, n, thop, false)
	}
	return n, err
}

// Headroom adds the sampled context size — the worst case — so callers
// allocating against the stack's headroom never force a reallocating
// Prepend.
func (c *tracedConn) Headroom() int {
	return tracing.ContextSize + core.HeadroomOf(c.Conn)
}
