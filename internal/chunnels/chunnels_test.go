// Package chunnels_test holds cross-chunnel integration and conformance
// tests: every data-transform chunnel must round-trip arbitrary payloads,
// compose with the others, and behave under loss where applicable.
package chunnels_test

import (
	"bytes"
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/bertha-net/bertha/internal/chunnels/compress"
	"github.com/bertha-net/bertha/internal/chunnels/crypt"
	"github.com/bertha-net/bertha/internal/chunnels/framing"
	"github.com/bertha-net/bertha/internal/chunnels/ordering"
	"github.com/bertha-net/bertha/internal/chunnels/reliable"
	"github.com/bertha-net/bertha/internal/chunnels/serialize"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/transport"
	"github.com/bertha-net/bertha/internal/wire"
)

func ctxT(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// wrapPair applies the same wrapper to both halves of a pipe.
func wrapPair(t *testing.T, wrap func(core.Conn) (core.Conn, error)) (core.Conn, core.Conn) {
	t.Helper()
	a, b := transport.Pipe(core.Addr{Addr: "a"}, core.Addr{Addr: "b"}, 2048)
	wa, err := wrap(a)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := wrap(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { wa.Close(); wb.Close() })
	return wa, wb
}

func roundTrip(t *testing.T, a, b core.Conn, payloads [][]byte) {
	t.Helper()
	ctx := ctxT(t)
	for _, p := range payloads {
		if err := a.Send(ctx, p); err != nil {
			t.Fatalf("send %d bytes: %v", len(p), err)
		}
	}
	for i, want := range payloads {
		got, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
}

func samplePayloads() [][]byte {
	return [][]byte{
		[]byte("short"),
		{},
		bytes.Repeat([]byte("pattern"), 1000),
		make([]byte, 3),
	}
}

func TestCryptRoundTrip(t *testing.T) {
	a, b := wrapPair(t, func(c core.Conn) (core.Conn, error) {
		return crypt.New(c, []byte("secret key"))
	})
	roundTrip(t, a, b, samplePayloads())
}

func TestCryptRejectsTamperedAndWrongKey(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	a, _ := crypt.New(ra, []byte("key1"))
	bWrong, _ := crypt.New(rb, []byte("key2"))
	a.Send(ctx, []byte("hello"))
	if _, err := bWrong.Recv(ctx); err == nil {
		t.Error("wrong key must fail authentication")
	}
	// Tampered ciphertext.
	ra2, rb2 := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	a2, _ := crypt.New(ra2, []byte("key"))
	b2, _ := crypt.New(rb2, []byte("key"))
	a2.Send(ctx, []byte("payload"))
	raw, _ := rb2.Recv(ctx) // intercept below the crypt layer
	raw[len(raw)-1] ^= 0xFF
	rb2.Send(context.Background(), nil) // unused; direct injection instead
	// Re-inject through a fresh pair to simulate on-path tampering.
	ra3, rb3 := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	b3, _ := crypt.New(rb3, []byte("key"))
	ra3.Send(ctx, raw)
	if _, err := b3.Recv(ctx); err == nil {
		t.Error("tampered ciphertext must fail authentication")
	}
	_ = b2
}

func TestCryptCiphertextDiffersFromPlaintext(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	a, _ := crypt.New(ra, []byte("key"))
	msg := []byte("confidential data")
	a.Send(ctx, msg)
	raw, _ := rb.Recv(ctx)
	if bytes.Contains(raw, msg) {
		t.Error("ciphertext contains plaintext")
	}
	if len(raw) <= len(msg) {
		t.Error("ciphertext should carry nonce and tag overhead")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	a, b := wrapPair(t, func(c core.Conn) (core.Conn, error) {
		return compress.New(c, 6)
	})
	roundTrip(t, a, b, samplePayloads())
}

func TestCompressActuallyCompresses(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	a, _ := compress.New(ra, 6)
	msg := bytes.Repeat([]byte("compressible "), 500)
	a.Send(ctx, msg)
	raw, _ := rb.Recv(ctx)
	if len(raw) >= len(msg)/2 {
		t.Errorf("compressed %d -> %d bytes: not compressing", len(msg), len(raw))
	}
}

func TestCompressInvalidLevel(t *testing.T) {
	ra, _ := transport.Pipe(core.Addr{}, core.Addr{}, 1)
	if _, err := compress.New(ra, 42); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestFramingRoundTripAndFragmentation(t *testing.T) {
	a, b := wrapPair(t, func(c core.Conn) (core.Conn, error) {
		return framing.New(c, 128) // force fragmentation
	})
	payloads := [][]byte{
		bytes.Repeat([]byte{0xCD}, 1000), // 8 fragments
		[]byte("small"),
		{},
		bytes.Repeat([]byte{0xEF}, 128), // exactly one fragment
		bytes.Repeat([]byte{0x01}, 129), // one byte over
	}
	roundTrip(t, a, b, payloads)
}

func TestFramingFragmentsOnWire(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 64)
	a, _ := framing.New(ra, 100)
	a.Send(ctx, bytes.Repeat([]byte{1}, 250)) // 3 fragments
	count := 0
	for {
		rctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
		_, err := rb.Recv(rctx)
		cancel()
		if err != nil {
			break
		}
		count++
	}
	if count != 3 {
		t.Errorf("expected 3 fragments on the wire, saw %d", count)
	}
}

func TestFramingInterleavedStreams(t *testing.T) {
	// Two senders on the same conn interleave their fragments; the
	// receiver must reassemble both correctly by stream id.
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 2048)
	a, _ := framing.New(ra, 64)
	b, _ := framing.New(rb, 64)
	m1 := bytes.Repeat([]byte{0xAA}, 200)
	m2 := bytes.Repeat([]byte{0xBB}, 200)
	done := make(chan struct{})
	go func() {
		a.Send(ctx, m1)
		close(done)
	}()
	a.Send(ctx, m2)
	<-done
	got1, err1 := b.Recv(ctx)
	got2, err2 := b.Recv(ctx)
	if err1 != nil || err2 != nil {
		t.Fatalf("recv: %v %v", err1, err2)
	}
	sum := int(got1[0]) + int(got2[0])
	if sum != 0xAA+0xBB {
		t.Errorf("stream payloads corrupted: %#x %#x", got1[0], got2[0])
	}
	if len(got1) != 200 || len(got2) != 200 {
		t.Errorf("lengths: %d %d", len(got1), len(got2))
	}
}

func TestSerializeTagging(t *testing.T) {
	a, b := wrapPair(t, func(c core.Conn) (core.Conn, error) {
		return serialize.New(c, serialize.FormatBincode)
	})
	roundTrip(t, a, b, samplePayloads())

	if _, err := serialize.New(nil, "nope"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestSerializeObjConn(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 16)
	a := serialize.Objects[string](ra, serialize.StringCodec{})
	b := serialize.Objects[string](rb, serialize.StringCodec{})
	if err := a.Send(ctx, "typed message"); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv(ctx)
	if err != nil || got != "typed message" {
		t.Fatalf("recv: %q %v", got, err)
	}

	vA := serialize.Objects[wire.Value](ra, serialize.ValueCodec{})
	vB := serialize.Objects[wire.Value](rb, serialize.ValueCodec{})
	want := wire.Map(map[string]wire.Value{"op": wire.Str("get"), "n": wire.Int(3)})
	vA.Send(ctx, want)
	gotV, err := vB.Recv(ctx)
	if err != nil || !gotV.Equal(want) {
		t.Fatalf("value round trip: %s %v", gotV, err)
	}

	bcA := serialize.Objects[[]byte](ra, serialize.BytesCodec{})
	bcB := serialize.Objects[[]byte](rb, serialize.BytesCodec{})
	bcA.Send(ctx, []byte{1, 2, 3})
	gotB, err := bcB.Recv(ctx)
	if err != nil || !bytes.Equal(gotB, []byte{1, 2, 3}) {
		t.Fatalf("bytes round trip: %v %v", gotB, err)
	}
	if bcA.Conn() != ra {
		t.Error("Conn accessor")
	}
}

func TestReliableInOrderNoLoss(t *testing.T) {
	a, b := wrapPair(t, func(c core.Conn) (core.Conn, error) {
		return reliable.New(c, reliable.Config{})
	})
	ctx := ctxT(t)
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			p := make([]byte, 4)
			p[0], p[1] = byte(i), byte(i>>8)
			a.Send(ctx, p)
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got := int(m[0]) | int(m[1])<<8; got != i {
			t.Fatalf("out of order: got %d at %d", got, i)
		}
	}
}

func TestReliableRecoversFromLossDupsReorder(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 4096)
	// Perturb both directions: drops, dups, reordering.
	cfg := transport.LossConfig{Seed: 21, DropProb: 0.2, DupProb: 0.15, ReorderProb: 0.2, ReorderDelay: 5 * time.Millisecond}
	la := transport.Lossy(ra, cfg)
	cfg.Seed = 22
	lb := transport.Lossy(rb, cfg)
	a, _ := reliable.New(la, reliable.Config{RTO: 20 * time.Millisecond})
	b, _ := reliable.New(lb, reliable.Config{RTO: 20 * time.Millisecond})
	defer a.Close()
	defer b.Close()

	const n = 200
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			p := []byte{byte(i), byte(i >> 8)}
			if err := a.Send(ctx, p); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got := int(m[0]) | int(m[1])<<8; got != i {
			t.Fatalf("exactly-once violated: got %d at %d", got, i)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func TestReliableBidirectional(t *testing.T) {
	a, b := wrapPair(t, func(c core.Conn) (core.Conn, error) {
		return reliable.New(c, reliable.Config{})
	})
	ctx := ctxT(t)
	const n = 100
	errc := make(chan error, 2)
	go func() {
		for i := 0; i < n; i++ {
			if err := a.Send(ctx, []byte{byte(i)}); err != nil {
				errc <- err
				return
			}
			if m, err := a.Recv(ctx); err != nil || m[0] != byte(i) {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	go func() {
		for i := 0; i < n; i++ {
			m, err := b.Recv(ctx)
			if err != nil {
				errc <- err
				return
			}
			if err := b.Send(ctx, m); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

func TestReliableBrokenPeerFails(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 64)
	// Black hole: every packet from a is dropped.
	blackhole := transport.Lossy(ra, transport.LossConfig{Seed: 1, DropProb: 1.0})
	a, _ := reliable.New(blackhole, reliable.Config{RTO: 5 * time.Millisecond, MaxRetries: 3})
	defer a.Close()
	_ = rb
	if err := a.Send(ctx, []byte("into the void")); err != nil {
		t.Fatalf("first send should succeed: %v", err)
	}
	// Recv should eventually report the broken connection.
	_, err := a.Recv(ctx)
	if err == nil {
		t.Fatal("expected failure after retransmissions exhausted")
	}
}

func TestReliableWindowBackpressure(t *testing.T) {
	ctx := ctxT(t)
	ra, _ := transport.Pipe(core.Addr{}, core.Addr{}, 4096)
	// No peer ARQ: acks never come, so the window must fill and block.
	a, _ := reliable.New(ra, reliable.Config{Window: 4, RTO: time.Hour})
	defer a.Close()
	for i := 0; i < 4; i++ {
		if err := a.Send(ctx, []byte{byte(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	sctx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	err := a.Send(sctx, []byte{9})
	if err == nil {
		t.Fatal("5th send should block on a window of 4")
	}
}

func TestOrderingReordersWithinBuffer(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 1024)
	la := transport.Lossy(ra, transport.LossConfig{Seed: 17, ReorderProb: 0.4, ReorderDelay: 3 * time.Millisecond})
	a, _ := ordering.New(la, 128, 200*time.Millisecond)
	b, _ := ordering.New(rb, 128, 200*time.Millisecond)
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			a.Send(ctx, []byte{byte(i)})
			time.Sleep(time.Millisecond) // let reordered packets interleave
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m[0] != byte(i) {
			t.Fatalf("ordering violated: got %d at %d", m[0], i)
		}
	}
}

func TestOrderingSkipsLostMessages(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 1024)
	b, _ := ordering.New(rb, 16, 20*time.Millisecond)
	// Inject seq 1, 3, 4 manually (2 lost forever).
	send := func(seq uint64, v byte) {
		buf := make([]byte, 9)
		buf[7] = byte(seq >> 56) // wrong spot; use binary below
		_ = buf
		msg := make([]byte, 9)
		for i := 0; i < 8; i++ {
			msg[i] = byte(seq >> (8 * i))
		}
		msg[8] = v
		ra.Send(ctx, msg)
	}
	send(1, 'a')
	send(3, 'c')
	send(4, 'd')
	got := ""
	for i := 0; i < 3; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		got += string(m)
	}
	if got != "acd" {
		t.Errorf("delivered %q, want acd (2 skipped)", got)
	}
}

func TestOrderingInvalidBuffer(t *testing.T) {
	if _, err := ordering.New(nil, 0, time.Millisecond); err == nil {
		t.Error("zero buffer accepted")
	}
}

// TestComposedStack layers serialize |> compress |> encrypt |> http2 |>
// reliable over a lossy pipe — the full §6-style pipeline — and checks
// end-to-end integrity.
func TestComposedStack(t *testing.T) {
	ctx := ctxT(t)
	ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 8192)
	la := transport.Lossy(ra, transport.LossConfig{Seed: 31, DropProb: 0.1})
	lb := transport.Lossy(rb, transport.LossConfig{Seed: 32, DropProb: 0.1})

	build := func(c core.Conn) core.Conn {
		r, err := reliable.New(c, reliable.Config{RTO: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		f, err := framing.New(r, 256)
		if err != nil {
			t.Fatal(err)
		}
		e, err := crypt.New(f, []byte("pipeline key"))
		if err != nil {
			t.Fatal(err)
		}
		z, err := compress.New(e, 6)
		if err != nil {
			t.Fatal(err)
		}
		s, err := serialize.New(z, serialize.FormatBincode)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := build(la)
	b := build(lb)
	defer a.Close()
	defer b.Close()

	rng := rand.New(rand.NewSource(8))
	const n = 40
	sent := make(chan []byte, n)
	go func() {
		for i := 0; i < n; i++ {
			p := make([]byte, 1+rng.Intn(2000))
			rng.Read(p)
			sent <- p
			a.Send(ctx, p)
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv(ctx)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := <-sent; !bytes.Equal(m, want) {
			t.Fatalf("message %d corrupted through the stack", i)
		}
	}
}

// Property: for any payload, each transform chunnel is lossless.
func TestQuickTransformsLossless(t *testing.T) {
	ctx := ctxT(t)
	type mk func(core.Conn) (core.Conn, error)
	cases := map[string]mk{
		"crypt":     func(c core.Conn) (core.Conn, error) { return crypt.New(c, []byte("k")) },
		"compress":  func(c core.Conn) (core.Conn, error) { return compress.New(c, 1) },
		"framing":   func(c core.Conn) (core.Conn, error) { return framing.New(c, 64) },
		"serialize": func(c core.Conn) (core.Conn, error) { return serialize.New(c, serialize.FormatBincode) },
	}
	for name, mkFn := range cases {
		mkFn := mkFn
		t.Run(name, func(t *testing.T) {
			ra, rb := transport.Pipe(core.Addr{}, core.Addr{}, 4096)
			a, err := mkFn(ra)
			if err != nil {
				t.Fatal(err)
			}
			b, err := mkFn(rb)
			if err != nil {
				t.Fatal(err)
			}
			f := func(p []byte) bool {
				if err := a.Send(ctx, p); err != nil {
					return false
				}
				got, err := b.Recv(ctx)
				return err == nil && bytes.Equal(got, p)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
				t.Error(err)
			}
		})
	}
}
