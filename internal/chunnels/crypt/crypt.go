// Package crypt implements the encryption chunnel: AES-GCM sealing of
// every message. It is the "encrypt" stage of the paper's §6 pipeline
// example (encrypt |> http2 |> tcp) and registers the optimizer metadata
// that lets the runtime reorder it across framing stages and fuse it with
// the reliability chunnel into "tls" when a fused offload exists.
package crypt

import (
	"context"
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"fmt"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
)

// Type is the chunnel type name.
const Type = "encrypt"

// Node builds the DAG node: encrypt(key). The pre-shared key is any
// byte string; it is expanded with SHA-256. (Key exchange is out of
// scope for the prototype, as in the paper.)
func Node(key []byte) spec.Node {
	return spec.New(Type, wire.BytesVal(key))
}

// Register installs the userspace fallback implementation and optimizer
// metadata into reg. A simulated SmartNIC variant can additionally be
// registered with RegisterNIC for §6 experiments.
func Register(reg *core.Registry) {
	reg.MustRegister(fallback())
	// Encryption commutes with framing stages: both ends apply the same
	// reordered stack, so moving encrypt below http2 only changes which
	// bytes are opaque on the wire (§6's reordering example).
	reg.SetTypeMeta(Type, core.TypeMeta{Commutes: []string{"http2", "compress"}})
	reg.AddFusion(Type, "reliable", "tls")
}

// RegisterNIC installs a simulated SmartNIC variant (same wire format,
// higher priority, NIC location) used by the optimizer experiments.
func RegisterNIC(reg *core.Registry) {
	impl := fallback()
	impl.ImplInfo.Name = Type + "/nic"
	impl.ImplInfo.Priority = 30
	impl.ImplInfo.Location = core.LocSmartNIC
	impl.ImplInfo.DiscoveryOnly = true
	reg.MustRegister(impl)
}

func fallback() *base.Impl {
	return &base.Impl{
		ImplInfo: core.ImplInfo{
			Name:         Type + "/aesgcm",
			Type:         Type,
			Endpoint:     spec.EndpointBoth,
			Location:     core.LocUserspace,
			SendOverhead: 12, // GCM standard nonce size (tag is tailroom)
		},
		WrapFn: func(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
			key, err := base.Bytes(Type, args, 0)
			if err != nil {
				return nil, err
			}
			return New(conn, key)
		},
	}
}

// New wraps conn with AES-GCM encryption using the pre-shared key.
func New(conn core.Conn, key []byte) (core.Conn, error) {
	sum := sha256.Sum256(key)
	block, err := aes.NewCipher(sum[:])
	if err != nil {
		return nil, fmt.Errorf("encrypt: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("encrypt: %w", err)
	}
	return &cryptConn{Conn: conn, aead: aead}, nil
}

type cryptConn struct {
	core.Conn
	aead cipher.AEAD
}

func (c *cryptConn) Send(ctx context.Context, p []byte) error {
	return c.SendBuf(ctx, wire.NewBufFrom(c.Headroom(), p))
}

// SendBuf seals the message in place: the nonce goes into headroom, the
// plaintext is encrypted where it lies, and the GCM tag lands in
// tailroom — no allocation on the steady-state path.
func (c *cryptConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	ns := c.aead.NonceSize()
	plainLen := b.Len()
	nonce := b.Prepend(ns) //bertha:overhead 12 GCM standard nonce, matches SendOverhead
	if _, err := rand.Read(nonce); err != nil {
		b.Release()
		return fmt.Errorf("encrypt: nonce: %w", err)
	}
	b.Extend(c.aead.Overhead())
	msg := b.Bytes() // nonce | plaintext | tag space
	c.aead.Seal(msg[ns:ns], msg[:ns], msg[ns:ns+plainLen], nil)
	return core.SendBuf(ctx, c.Conn, b)
}

// SendBufs seals the whole burst in one pass — each message in place
// with its own fresh nonce — then hands the sealed burst down whole. A
// nonce failure aborts before anything is transmitted.
func (c *cryptConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	ns := c.aead.NonceSize()
	for _, b := range bs {
		plainLen := b.Len()
		nonce := b.Prepend(ns) //bertha:overhead 12 GCM standard nonce, matches SendOverhead
		if _, err := rand.Read(nonce); err != nil {
			core.ReleaseAll(bs)
			return &core.BatchError{Sent: 0, Err: fmt.Errorf("encrypt: nonce: %w", err)}
		}
		b.Extend(c.aead.Overhead())
		msg := b.Bytes() // nonce | plaintext | tag space
		c.aead.Seal(msg[ns:ns], msg[:ns], msg[ns:ns+plainLen], nil)
	}
	return core.SendBufs(ctx, c.Conn, bs)
}

// RecvBufs opens a burst in one pass. Messages that fail authentication
// (or are too short) are dropped individually — datagram semantics —
// and the plaintexts compact into into's prefix; the call only fails
// when an entire burst was bad.
func (c *cryptConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	ns := c.aead.NonceSize()
	for {
		n, err := core.RecvBufs(ctx, c.Conn, into)
		if err != nil {
			return 0, err
		}
		out := 0
		var firstErr error
		for i := 0; i < n; i++ {
			b := into[i]
			sealed := b.Bytes()
			if len(sealed) < ns+c.aead.Overhead() {
				if firstErr == nil {
					firstErr = fmt.Errorf("encrypt: short ciphertext (%d bytes)", len(sealed))
				}
				b.Release()
				continue
			}
			if _, err := c.aead.Open(sealed[ns:ns], sealed[:ns], sealed[ns:], nil); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("encrypt: authentication failed: %w", err)
				}
				b.Release()
				continue
			}
			b.TrimFront(ns)
			b.TrimBack(c.aead.Overhead())
			into[out] = b
			out++
		}
		if out > 0 {
			return out, nil
		}
		if firstErr != nil {
			return 0, firstErr
		}
	}
}

// Headroom implements core.HeadroomConn.
func (c *cryptConn) Headroom() int { return c.aead.NonceSize() + core.HeadroomOf(c.Conn) }

func (c *cryptConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := c.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf opens the message in place and trims the nonce and tag off.
func (c *cryptConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	b, err := core.RecvBuf(ctx, c.Conn)
	if err != nil {
		return nil, err
	}
	ns := c.aead.NonceSize()
	sealed := b.Bytes()
	if len(sealed) < ns+c.aead.Overhead() {
		n := len(sealed)
		b.Release()
		return nil, fmt.Errorf("encrypt: short ciphertext (%d bytes)", n)
	}
	if _, err := c.aead.Open(sealed[ns:ns], sealed[:ns], sealed[ns:], nil); err != nil {
		b.Release()
		return nil, fmt.Errorf("encrypt: authentication failed: %w", err)
	}
	b.TrimFront(ns)
	b.TrimBack(c.aead.Overhead())
	return b, nil
}
