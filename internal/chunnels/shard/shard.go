// Package shard implements the sharding chunnel of Listing 4: a service
// exposes one canonical address, and each request is routed to one of
// several backend shards by a declarative shard function
// (hash(payload[off:off+len]) % nshards — the paper's
// hash(p.payload[10..14]) % 3).
//
// Three implementations are registered, matching the §5 evaluation:
//
//   - shard/client-push (client endpoint, userspace): the client computes
//     the shard locally and sends requests directly to the shard's
//     address, eliminating the server-side steering hop entirely.
//   - shard/xdp (server endpoint, kernel datapath): requests arriving at
//     the canonical address are steered to per-shard queues by a
//     simulated XDP program in the receive path — no re-serialization,
//     no extra network hop, no shared userspace bottleneck.
//   - shard/server (server endpoint, userspace fallback): a single
//     steering worker receives each request, computes the shard, and
//     forwards it over the network to the shard's address; replies are
//     relayed back. Correct everywhere, but the steering worker is the
//     bottleneck — the paper's "Server Fallback" scenario.
//
// The shard function must be declarative (a FieldHash spec) so it can be
// negotiated to clients and offloads; an opaque Go closure could only
// ever run in the server process, which is exactly the hybrid-routing
// ossification the paper argues against.
package shard

import (
	"context"
	"fmt"
	"sync"

	"github.com/bertha-net/bertha/internal/chunnels/base"
	"github.com/bertha-net/bertha/internal/core"
	"github.com/bertha-net/bertha/internal/spec"
	"github.com/bertha-net/bertha/internal/wire"
	"github.com/bertha-net/bertha/internal/xdp"
)

// Type is the chunnel type name.
const Type = "shard"

// Implementation names.
const (
	ImplClientPush = Type + "/client-push"
	ImplXDP        = Type + "/xdp"
	ImplServer     = Type + "/server"
)

// EnvQueues is the Env key under which the server application provides
// its per-shard request queues ([]chan Steered) for steered delivery.
const EnvQueues = "shard:queues"

// Steered is one request routed to a shard worker.
type Steered struct {
	// Payload is the raw request.
	Payload []byte
	// Reply sends a response back to the requesting client.
	Reply func(ctx context.Context, p []byte) error
}

// Node builds the Listing 4 DAG node: shard(choices, fn).
func Node(shards []core.Addr, fh xdp.FieldHash) spec.Node {
	return spec.New(Type, base.EncodeAddrs(shards), encodeFieldHash(fh))
}

func encodeFieldHash(fh xdp.FieldHash) wire.Value {
	return wire.Map(map[string]wire.Value{
		"offset": wire.Int(int64(fh.Offset)),
		"length": wire.Int(int64(fh.Length)),
		"shards": wire.Int(int64(fh.Shards)),
	})
}

func decodeArgs(args []wire.Value) ([]core.Addr, xdp.FieldHash, error) {
	addrs, err := base.AddrList(Type, args, 0)
	if err != nil {
		return nil, xdp.FieldHash{}, err
	}
	if len(args) < 2 {
		return nil, xdp.FieldHash{}, fmt.Errorf("shard: missing shard function argument")
	}
	m, ok := args[1].AsMap()
	if !ok {
		return nil, xdp.FieldHash{}, fmt.Errorf("shard: shard function must be a map, got %s", args[1].Kind())
	}
	geti := func(k string) int {
		v, _ := m[k].AsInt()
		return int(v)
	}
	fh := xdp.FieldHash{Offset: geti("offset"), Length: geti("length"), Shards: geti("shards")}
	if fh.Shards <= 0 {
		fh.Shards = len(addrs)
	}
	if fh.Shards != len(addrs) {
		return nil, xdp.FieldHash{}, fmt.Errorf("shard: %d shards but %d addresses", fh.Shards, len(addrs))
	}
	return addrs, fh, nil
}

// RegisterClient installs the client-push implementation (what Listing
// 5's client links).
func RegisterClient(reg *core.Registry) {
	reg.MustRegister(&base.Impl{
		ImplInfo: core.ImplInfo{
			Name:     ImplClientPush,
			Type:     Type,
			Endpoint: spec.EndpointClient,
			Priority: 10,
			Location: core.LocUserspace,
		},
		WrapFn:     wrapClientPush,
		ValidateFn: validateArgs,
	})
}

// RegisterServer installs the server fallback implementation.
func RegisterServer(reg *core.Registry) {
	reg.MustRegister(newServerImpl())
}

// RegisterXDP installs the simulated-XDP accelerated implementation.
// The returned impl exposes hook statistics for experiments.
func RegisterXDP(reg *core.Registry) *XDPImpl {
	impl := newXDPImpl()
	reg.MustRegister(impl)
	return impl
}

// validateArgs checks the node arguments during negotiation.
func validateArgs(args []wire.Value) error {
	_, _, err := decodeArgs(args)
	return err
}

// --- client push ---

func wrapClientPush(ctx context.Context, conn core.Conn, args, params []wire.Value, side core.Side, env *core.Env) (core.Conn, error) {
	addrs, fh, err := decodeArgs(args)
	if err != nil {
		return nil, err
	}
	d := env.Dialer()
	if d == nil {
		return nil, fmt.Errorf("shard: no dialer in environment")
	}
	conns := make([]core.Conn, len(addrs))
	for i, a := range addrs {
		c, err := d.Dial(ctx, a)
		if err != nil {
			for _, open := range conns[:i] {
				open.Close()
			}
			return nil, fmt.Errorf("shard: dial shard %d (%s): %w", i, a, err)
		}
		conns[i] = c
	}
	pc := &pushConn{
		canonical: conn,
		shards:    conns,
		fh:        fh,
		in:        make(chan *wire.Buf, 1024),
	}
	pc.ctx, pc.cancel = context.WithCancel(context.Background())
	for _, c := range conns {
		go pc.fanIn(c)
	}
	go pc.fanIn(conn) // canonical address may also carry replies
	return pc, nil
}

// pushConn routes sends to per-shard connections and fans replies in.
type pushConn struct {
	canonical core.Conn
	shards    []core.Conn
	fh        xdp.FieldHash
	in        chan *wire.Buf

	ctx    context.Context
	cancel context.CancelFunc
	once   sync.Once
}

func (p *pushConn) fanIn(c core.Conn) {
	for {
		m, err := core.RecvBuf(p.ctx, c)
		if err != nil {
			return
		}
		select {
		case p.in <- m:
		case <-p.ctx.Done():
			m.Release()
			return
		}
	}
}

func (p *pushConn) Send(ctx context.Context, b []byte) error {
	return p.shards[p.fh.Apply(b)].Send(ctx, b)
}

// SendBuf routes the buffer to its shard's connection — sharding adds no
// header, so this is pure passthrough.
func (p *pushConn) SendBuf(ctx context.Context, b *wire.Buf) error {
	return core.SendBuf(ctx, p.shards[p.fh.Apply(b.Bytes())], b)
}

// SendBufs steers the burst in one pass: the shard function runs per
// message, and contiguous same-shard runs travel down as sub-bursts so
// a burst destined for one shard stays a single vectored send.
func (p *pushConn) SendBufs(ctx context.Context, bs []*wire.Buf) error {
	sent := 0
	i := 0
	for i < len(bs) {
		shard := p.fh.Apply(bs[i].Bytes())
		j := i + 1
		for j < len(bs) && p.fh.Apply(bs[j].Bytes()) == shard {
			j++
		}
		if err := core.SendBufs(ctx, p.shards[shard], bs[i:j]); err != nil {
			core.ReleaseAll(bs[j:])
			cause := err
			if be, ok := err.(*core.BatchError); ok {
				cause = be.Err
			}
			return &core.BatchError{Sent: sent + core.BatchSent(err), Err: cause}
		}
		sent += j - i
		i = j
	}
	return nil
}

// RecvBufs blocks for the first fanned-in reply, then drains whatever
// the fan-in workers have already queued.
func (p *pushConn) RecvBufs(ctx context.Context, into []*wire.Buf) (int, error) {
	if len(into) == 0 {
		return 0, nil
	}
	b, err := p.RecvBuf(ctx)
	if err != nil {
		return 0, err
	}
	into[0] = b
	n := 1
	for n < len(into) {
		select {
		case m := <-p.in:
			into[n] = m
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

// Headroom reports the worst case across shard connections, so one
// buffer suffices whichever shard the message hashes to.
func (p *pushConn) Headroom() int {
	max := 0
	for _, c := range p.shards {
		if h := core.HeadroomOf(c); h > max {
			max = h
		}
	}
	return max
}

func (p *pushConn) Recv(ctx context.Context) ([]byte, error) {
	b, err := p.RecvBuf(ctx)
	if err != nil {
		return nil, err
	}
	return b.CopyOut(), nil
}

// RecvBuf is Recv's zero-copy form.
func (p *pushConn) RecvBuf(ctx context.Context) (*wire.Buf, error) {
	select {
	case m := <-p.in:
		return m, nil
	case <-p.ctx.Done():
		return nil, core.ErrClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *pushConn) LocalAddr() core.Addr  { return p.canonical.LocalAddr() }
func (p *pushConn) RemoteAddr() core.Addr { return p.canonical.RemoteAddr() }

func (p *pushConn) Close() error {
	p.once.Do(func() {
		p.cancel()
		for _, c := range p.shards {
			c.Close()
		}
		p.canonical.Close()
	})
	return nil
}
